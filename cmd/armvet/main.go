// Command armvet runs the armbar static-analysis suite (determvet,
// lockvet, atomicvet, allocvet, metricvet, progvet) over package
// patterns and exits nonzero if any finding survives //armvet:ignore
// suppression. The fencevet subcommand verifies fence placements
// instead of source: it explores every litmus shape's placement
// lattice under the reorder-bounded semantics and cross-checks the
// verdicts against absmodel's closed-form requirements (see
// internal/explore).
//
//	armvet ./...          # what make lint runs
//	armvet -list          # describe the passes
//	armvet internal/sim   # one directory
//	armvet fencevet       # what make fencecheck runs
//
// See internal/analysis for the pass semantics and the annotation
// directives (armvet:guardedby, armvet:holds, armvet:hotpath,
// armvet:ignore).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"armbar/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main minus the process exit, so tests can drive it. Returns
// 0 for a clean tree, 1 when findings remain, 2 on usage or load
// errors.
func run(args []string, stdout, stderr io.Writer) int {
	if len(args) > 0 && args[0] == "fencevet" {
		return runFenceVet(args[1:], stdout, stderr)
	}
	fs := flag.NewFlagSet("armvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "print the analyzers and exit")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: armvet [-list] [packages]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	analyzers := analysis.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-10s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	loader, err := analysis.NewLoader(".")
	if err != nil {
		fmt.Fprintln(stderr, "armvet:", err)
		return 2
	}
	pkgs, err := loader.LoadPatterns(patterns)
	if err != nil {
		fmt.Fprintln(stderr, "armvet:", err)
		return 2
	}
	findings, err := analysis.RunAnalyzers(loader.Fset, pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(stderr, "armvet:", err)
		return 2
	}
	for _, f := range findings {
		fmt.Fprintln(stdout, f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "armvet: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}
