package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestBadFixtureExitsNonzero is the end-to-end smoke test: the
// multichecker must exit 1 on the seeded-defect fixture and name the
// defect.
func TestBadFixtureExitsNonzero(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"../../internal/analysis/testdata/src/badpkg"}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (stdout %q, stderr %q)", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), `v is guarded by "mu"`) {
		t.Errorf("stdout does not name the defect:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "(lockvet)") {
		t.Errorf("stdout does not attribute the finding to lockvet:\n%s", out.String())
	}
}

// TestCleanPackageExitsZero runs the suite over a package with no
// annotations or hot paths: silence, exit 0.
func TestCleanPackageExitsZero(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"../../internal/topo"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0 (stdout %q, stderr %q)", code, out.String(), errb.String())
	}
	if out.Len() != 0 {
		t.Errorf("unexpected output on clean package:\n%s", out.String())
	}
}

func TestListFlag(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-list"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0", code)
	}
	for _, name := range []string{"determvet", "lockvet", "atomicvet", "allocvet", "metricvet", "progvet"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing %s:\n%s", name, out.String())
		}
	}
}

// TestFenceVetSubcommand runs the program-level verifier end to end:
// every shape must minimize cleanly, agree with the formula oracle,
// and the Pilot derivation must machine-check, so the subcommand
// exits 0 and reports the load-side removal as the safe one.
func TestFenceVetSubcommand(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"fencevet"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0 (stdout %q, stderr %q)", code, out.String(), errb.String())
	}
	for _, want := range []string{
		"minimal={push pull}",  // MP under WMM
		"pilot: chan - avail",  // the removal the paper derives
		"pilot: chan - publish",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("fencevet output missing %q:\n%s", want, out.String())
		}
	}
	if strings.Contains(out.String(), "MISMATCH") || strings.Contains(out.String(), "UNSAFE") {
		t.Errorf("fencevet reports violations:\n%s", out.String())
	}
}

func TestFenceVetUsageExitsTwo(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"fencevet", "extra-arg"}, &out, &errb); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
}

func TestBadPatternExitsTwo(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"./no/such/dir"}, &out, &errb)
	if code != 2 {
		t.Fatalf("exit code = %d, want 2 (stderr %q)", code, errb.String())
	}
}
