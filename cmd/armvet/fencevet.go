package main

import (
	"flag"
	"fmt"
	"io"

	"armbar/internal/absmodel"
	"armbar/internal/explore"
	"armbar/internal/sim"
)

// runFenceVet is the fencevet subcommand: unlike the source-level
// passes it verifies programs, not code — every litmus shape's
// placement lattice is explored under the reorder-bounded semantics,
// cross-checked against absmodel's closed-form fence requirements,
// and the paper's Pilot transformation is machine-checked step by
// step. Exit 0 when every shape has a safe naive placement, every
// lattice verdict agrees with the formula oracle, and every Pilot
// step matches its expectation; 1 on any violation; 2 on usage
// errors.
func runFenceVet(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("armvet fencevet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	bound := fs.Int("bound", explore.DefaultBound, "reorder bound (store-buffer reorderings plus stale reads per execution)")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: armvet fencevet [-bound n]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 0 {
		fs.Usage()
		return 2
	}

	bad := 0
	for _, mode := range []sim.Mode{sim.WMM, sim.TSO} {
		fmt.Fprintf(stdout, "== %v (bound %d) ==\n", mode, *bound)
		for _, s := range explore.All() {
			rep := explore.Minimize(s, mode, *bound)
			agree := latticeAgrees(s, mode, *bound)
			status := "ok"
			if !rep.NaiveSafe {
				status = "NAIVE UNSAFE"
				bad++
			}
			if !agree {
				status = "MODEL DISAGREES"
				bad++
			}
			fmt.Fprintf(stdout, "%-8s slots=%d minimal=%-24s explored=%-3d pruned=%-3d states=%-6d model=%v %s\n",
				s.Name, len(s.Slots), rep.MinimalDescribe(s), rep.Explored, rep.Pruned, rep.States, agree, status)
		}
		pilot := explore.PilotCheck(mode, *bound)
		for _, st := range pilot.Steps {
			verdict := "ok"
			if !st.OK() {
				verdict = "MISMATCH"
				bad++
			}
			fmt.Fprintf(stdout, "pilot: %-16s safe=%-5v expect=%-5v %s\n", st.Name, st.Safe, st.ExpectSafe, verdict)
		}
	}
	if bad > 0 {
		fmt.Fprintf(stderr, "armvet fencevet: %d violation(s)\n", bad)
		return 1
	}
	return 0
}

// latticeAgrees checks every placement of the shape against absmodel's
// closed-form fence requirements.
func latticeAgrees(s *explore.Shape, mode sim.Mode, bound int) bool {
	if !absmodel.KnownShape(s.Name) {
		return false
	}
	for pl := explore.Placement(0); pl <= explore.Naive(s); pl++ {
		got := explore.Explore(s, pl, mode, bound).Safe()
		want := absmodel.FenceSafe(s.Name, explore.SlotBarriers(s, pl), mode)
		if got != want {
			return false
		}
	}
	return true
}
