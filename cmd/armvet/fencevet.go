package main

import (
	"flag"
	"fmt"
	"io"
	"runtime"

	"armbar/internal/absmodel"
	"armbar/internal/explore"
	"armbar/internal/platform"
	"armbar/internal/runner"
	"armbar/internal/sim"
)

// runFenceVet is the fencevet subcommand: unlike the source-level
// passes it verifies programs, not code — every litmus shape's
// placement lattice is explored under the reorder-bounded semantics,
// cross-checked against absmodel's closed-form fence requirements,
// and the paper's Pilot transformation is machine-checked step by
// step. Exit 0 when every shape has a safe naive placement, every
// lattice verdict agrees with the formula oracle, and every Pilot
// step matches its expectation; 1 on any violation; 2 on usage
// errors.
func runFenceVet(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("armvet fencevet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	bound := fs.Int("bound", explore.DefaultBound, "reorder bound (store-buffer reorderings plus stale reads per execution)")
	fuzz := fs.Int("fuzz", 0, "also fuzz n generated litmus shapes through the three oracles (0 = off)")
	fuzzSeed := fs.Int64("fuzzseed", 42, "seed for the generated fuzz corpus")
	runs := fs.Int("runs", 4, "sim samples per fuzzed placement (0 skips the containment oracle)")
	par := fs.Int("par", runtime.GOMAXPROCS(0), "worker pool width for the fuzz batch (1 = inline)")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: armvet fencevet [-bound n] [-fuzz n] [-fuzzseed s] [-runs n] [-par n]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 0 {
		fs.Usage()
		return 2
	}

	bad := 0
	for _, mode := range []sim.Mode{sim.WMM, sim.TSO} {
		fmt.Fprintf(stdout, "== %v (bound %d) ==\n", mode, *bound)
		for _, s := range explore.All() {
			rep := explore.Minimize(s, mode, *bound)
			agree := latticeAgrees(s, mode, *bound)
			status := "ok"
			if !rep.NaiveSafe {
				status = "NAIVE UNSAFE"
				bad++
			}
			if !agree {
				status = "MODEL DISAGREES"
				bad++
			}
			fmt.Fprintf(stdout, "%-8s slots=%d minimal=%-24s explored=%-3d pruned=%-3d states=%-6d model=%v %s\n",
				s.Name, len(s.Slots), rep.MinimalDescribe(s), rep.Explored, rep.Pruned, rep.States, agree, status)
		}
		pilot := explore.PilotCheck(mode, *bound)
		for _, st := range pilot.Steps {
			verdict := "ok"
			if !st.OK() {
				verdict = "MISMATCH"
				bad++
			}
			fmt.Fprintf(stdout, "pilot: %-16s safe=%-5v expect=%-5v %s\n", st.Name, st.Safe, st.ExpectSafe, verdict)
		}
	}
	if *fuzz > 0 {
		bad += runFuzz(stdout, *fuzz, *fuzzSeed, *runs, *par)
	}
	if bad > 0 {
		fmt.Fprintf(stderr, "armvet fencevet: %d violation(s)\n", bad)
		return 1
	}
	return 0
}

// runFuzz runs the generated-corpus leg: n seeded shapes, each checked
// across its full placement lattice under both modes against the
// explorer, the clause formula, and sim sampling containment. Prints
// one aggregate line per skeleton family plus the first disagreement's
// full program listing, and returns the number of disagreeing shapes.
func runFuzz(stdout io.Writer, n int, seed int64, runs, par int) int {
	var pool *runner.Pool
	if par != 1 {
		pool = runner.New(par)
		defer pool.Close()
	}
	rep := explore.FuzzShapes(seed, n, runs, platform.Kunpeng916(), pool)

	fmt.Fprintf(stdout, "== fuzz (seed %d, %d shapes, %d sim runs) ==\n", seed, n, runs)
	type agg struct {
		cases, explored, states, bad int
	}
	byFam := map[string]*agg{}
	var fams []string
	firstErr := ""
	for _, c := range rep.Cases {
		a := byFam[c.Family]
		if a == nil {
			a = &agg{}
			byFam[c.Family] = a
			fams = append(fams, c.Family)
		}
		a.cases++
		a.explored += c.Explored
		a.states += c.States
		if c.Err != "" {
			a.bad++
			if firstErr == "" {
				firstErr = c.Name + ": " + c.Err
			}
		}
	}
	for _, fam := range fams {
		a := byFam[fam]
		status := "ok"
		if a.bad > 0 {
			status = fmt.Sprintf("%d DISAGREE", a.bad)
		}
		fmt.Fprintf(stdout, "fuzz: %-8s cases=%-4d placements=%-5d states=%-8d %s\n",
			fam, a.cases, a.explored, a.states, status)
	}
	if firstErr != "" {
		fmt.Fprintf(stdout, "first disagreement:\n%s\n", firstErr)
	}
	return rep.Bad
}

// latticeAgrees checks every placement of the shape against absmodel's
// closed-form fence requirements.
func latticeAgrees(s *explore.Shape, mode sim.Mode, bound int) bool {
	if !absmodel.KnownShape(s.Name) {
		return false
	}
	for pl := explore.Placement(0); pl <= explore.Naive(s); pl++ {
		got := explore.Explore(s, pl, mode, bound).Safe()
		want := absmodel.FenceSafe(s.Name, explore.SlotBarriers(s, pl), mode)
		if got != want {
			return false
		}
	}
	return true
}
