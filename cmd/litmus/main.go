// Command litmus runs the memory-model litmus tests on the simulated
// platforms and prints outcome histograms under both the weakly-ordered
// model and TSO, reproducing the paper's Table 1 and validating the
// barrier pairs that forbid the message-passing anomaly.
//
// Usage:
//
//	litmus [-runs N] [-seed N] [-platform name]
package main

import (
	"flag"
	"fmt"
	"os"

	"armbar/internal/isa"
	"armbar/internal/litmus"
	"armbar/internal/platform"
	"armbar/internal/sim"
)

func main() {
	runs := flag.Int("runs", 1000, "iterations per test")
	seed := flag.Int64("seed", 42, "base seed")
	plat := flag.String("platform", "Kunpeng916", "platform model name")
	flag.Parse()

	p := platform.ByName(*plat)
	if p == nil {
		fmt.Fprintf(os.Stderr, "litmus: unknown platform %q\n", *plat)
		os.Exit(2)
	}

	tests := []*litmus.Test{
		litmus.MessagePassing(isa.None, isa.None),
		litmus.MessagePassing(isa.DMBSt, isa.DMBLd),
		litmus.MessagePassing(isa.DMBSt, isa.AddrDep),
		litmus.MessagePassing(isa.DMBFull, isa.DMBFull),
		litmus.MPWithAcquireRelease(),
		litmus.StoreBuffering(isa.None),
		litmus.StoreBuffering(isa.DSBFull),
		litmus.CoWW(),
	}
	for _, test := range tests {
		for _, mode := range []sim.Mode{sim.WMM, sim.TSO} {
			res := litmus.Run(p, mode, test, *runs, *seed)
			fmt.Println(res.String())
		}
	}
}
