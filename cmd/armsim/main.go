// Command armsim runs a JSON-described workload scenario on the
// weakly-ordered simulator and prints cycles, per-thread statistics
// and final shared-variable values — the characterization methodology
// applied to your own code shape instead of the paper's.
//
// Usage:
//
//	armsim [-trace out.json] scenario.json
//	armsim -example            # print a ready-to-edit scenario
//
// The scenario format is documented in internal/scenario.
package main

import (
	"flag"
	"fmt"
	"os"

	"armbar/internal/scenario"
	"armbar/internal/sim"
	"armbar/internal/trace"
)

// exampleSpec is the message-passing scenario of the paper's Table 1,
// with the fix applied (DMB st / DMB ld) — edit away.
const exampleSpec = `{
  "platform": "Kunpeng916",
  "mode": "WMM",
  "seed": 1,
  "vars": ["data", "flag", "ack"],
  "threads": [
    {
      "core": 0,
      "loop": 200,
      "ops": [
        {"op": "store", "var": "data", "value": 23},
        {"op": "barrier", "barrier": "DMB st"},
        {"op": "fetchadd", "var": "flag", "value": 1},
        {"op": "spin_ne", "var": "ack", "value": 0},
        {"op": "swap", "var": "ack", "value": 0},
        {"op": "nops", "n": 40}
      ]
    },
    {
      "core": 32,
      "loop": 200,
      "ops": [
        {"op": "spin_ne", "var": "flag", "value": 0},
        {"op": "swap", "var": "flag", "value": 0},
        {"op": "barrier", "barrier": "DMB ld"},
        {"op": "load", "var": "data"},
        {"op": "fetchadd", "var": "ack", "value": 1}
      ]
    }
  ]
}`

func main() {
	traceOut := flag.String("trace", "", "write a Chrome-trace JSON of the run")
	example := flag.Bool("example", false, "print an example scenario and exit")
	engineName := flag.String("engine", "compiled",
		"simulation engine: compiled or interp (byte-identical results)")
	flag.Parse()

	if *example {
		fmt.Println(exampleSpec)
		return
	}
	engine, err := sim.ParseEngine(*engineName)
	if err != nil {
		fatal(err)
	}
	sim.SetDefaultEngine(engine)
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: armsim [-trace out.json] [-engine compiled|interp] scenario.json")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	spec, err := scenario.Parse(f)
	f.Close()
	if err != nil {
		fatal(err)
	}

	var rec *trace.Recorder
	var res *scenario.Result
	if *traceOut != "" {
		rec = trace.NewRecorder(0)
		res, err = spec.Run(rec)
	} else {
		res, err = spec.Run(nil)
	}
	if err != nil {
		fatal(err)
	}

	fmt.Printf("platform %s (%s), %d threads\n", spec.Platform, modeOf(spec), len(spec.Threads))
	fmt.Printf("elapsed: %.0f cycles (%.3f ms simulated)\n", res.Cycles, res.Seconds*1e3)
	fmt.Printf("%-4s %10s %10s %8s %8s %12s\n",
		"thr", "loads", "stores", "misses", "stale", "barrier-stall")
	for i, ts := range res.Threads {
		fmt.Printf("t%-3d %10d %10d %8d %8d %12.1f\n",
			i, ts.Loads, ts.Stores, ts.Misses, ts.StaleReads, ts.BarrierStalled)
	}
	fmt.Println("final values:")
	for _, v := range spec.Vars {
		fmt.Printf("  %-12s = %d\n", v, res.Final[v])
	}

	if rec != nil {
		out, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		defer out.Close()
		if err := rec.WriteChromeJSON(out); err != nil {
			fatal(err)
		}
		fmt.Printf("trace written to %s (%d events)\n", *traceOut, len(rec.Events()))
	}
}

func modeOf(s *scenario.Spec) string {
	if s.Mode == "" {
		return "WMM"
	}
	return s.Mode
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "armsim:", err)
	os.Exit(1)
}
