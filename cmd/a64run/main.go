// Command a64run executes a multi-threaded AArch64 assembly snippet on
// the weakly-ordered simulator — a litmus runner for the paper's own
// instruction vocabulary (ldr/str/dmb/dsb/isb/ldar/stlr plus ALU and
// branches).
//
// File format: directives, shared variables, then per-thread assembly
// blocks. Lines starting with "//" or ";" are comments.
//
//	platform Kunpeng916
//	mode WMM
//	seed 7
//	runs 100
//	var data
//	var flag
//
//	thread core=0
//	  mov x1, =data
//	  mov x2, #23
//	  str x2, [x1]
//	  dmb ishst
//	  mov x3, =flag
//	  mov x4, #1
//	  str x4, [x3]
//	end
//
//	thread core=32
//	  mov x1, =flag
//	  wait: ldr x2, [x1]
//	  cbz x2, wait
//	  dmb ishld
//	  mov x3, =data
//	  ldr x0, [x3]
//	end
//
// After each run, every thread's x0 is reported; across runs the
// distinct (x0...) tuples are histogrammed — litmus-style.
//
// Usage: a64run file.s  |  a64run -example
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"armbar/internal/a64"
	"armbar/internal/platform"
	"armbar/internal/sim"
	"armbar/internal/topo"
)

// spec is the parsed runner file.
type spec struct {
	platform string
	mode     string
	seed     int64
	runs     int
	vars     []string
	threads  []threadSrc
}

type threadSrc struct {
	core int
	src  string
}

func parseFile(text string) (*spec, error) {
	s := &spec{platform: "Kunpeng916", mode: "WMM", runs: 1, seed: 1}
	lines := strings.Split(text, "\n")
	i := 0
	for i < len(lines) {
		line := strings.TrimSpace(lines[i])
		i++
		if line == "" || strings.HasPrefix(line, "//") || strings.HasPrefix(line, ";") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "platform":
			if len(fields) < 2 {
				return nil, fmt.Errorf("a64run: platform needs a name")
			}
			s.platform = strings.Join(fields[1:], " ")
		case "mode":
			s.mode = fields[1]
		case "seed":
			v, err := strconv.ParseInt(fields[1], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("a64run: bad seed: %w", err)
			}
			s.seed = v
		case "runs":
			v, err := strconv.Atoi(fields[1])
			if err != nil || v <= 0 {
				return nil, fmt.Errorf("a64run: bad runs %q", fields[1])
			}
			s.runs = v
		case "var":
			s.vars = append(s.vars, fields[1])
		case "thread":
			core := 0
			for _, f := range fields[1:] {
				if v, ok := strings.CutPrefix(f, "core="); ok {
					c, err := strconv.Atoi(v)
					if err != nil {
						return nil, fmt.Errorf("a64run: bad core %q", v)
					}
					core = c
				}
			}
			var body []string
			for i < len(lines) {
				l := strings.TrimSpace(lines[i])
				i++
				if l == "end" {
					break
				}
				body = append(body, lines[i-1])
			}
			s.threads = append(s.threads, threadSrc{core: core, src: strings.Join(body, "\n")})
		default:
			return nil, fmt.Errorf("a64run: unknown directive %q", fields[0])
		}
	}
	if len(s.threads) == 0 {
		return nil, fmt.Errorf("a64run: no threads")
	}
	return s, nil
}

// run executes the spec once and returns each thread's final x0.
func run(s *spec, p *platform.Platform, seed int64) ([]uint64, error) {
	mode := sim.WMM
	if strings.EqualFold(s.mode, "TSO") {
		mode = sim.TSO
	}
	m := sim.New(sim.Config{Plat: p, Mode: mode, Seed: seed})
	symbols := map[string]uint64{}
	for _, v := range s.vars {
		symbols[v] = m.Alloc(1)
	}
	progs := make([]*a64.Program, len(s.threads))
	for i, th := range s.threads {
		prog, err := a64.ParseWithSymbols(th.src, symbols)
		if err != nil {
			return nil, fmt.Errorf("thread %d: %w", i, err)
		}
		progs[i] = prog
	}
	results := make([]uint64, len(s.threads))
	var execErr error
	for i, th := range s.threads {
		i, th := i, th
		m.Spawn(topo.CoreID(th.core), func(t *sim.Thread) {
			regs, _, err := progs[i].Exec(t, a64.Regs{}, 0)
			if err != nil && execErr == nil {
				execErr = fmt.Errorf("thread %d: %w", i, err)
			}
			results[i] = regs[0]
		})
	}
	m.Run()
	return results, execErr
}

const example = `platform Kunpeng916
mode WMM
seed 7
runs 500
var data
var flag

// Table 1 of the barrier study: message passing WITHOUT barriers.
// Expect a nonzero count of "0 23"-style anomalies under WMM; switch
// mode to TSO (or add dmb ishst / dmb ishld) and they vanish.
thread core=0
  mov x1, =data
  mov x2, #23
  str x2, [x1]
  mov x3, =flag
  mov x4, #1
  str x4, [x3]
end

thread core=32
  mov x3, =data
  ldr x5, [x3]   // warm the data line (hold a cacheable copy)
  mov x1, =flag
wait:
  ldr x2, [x1]
  cbz x2, wait
  ldr x0, [x3]
end
`

func main() {
	showExample := flag.Bool("example", false, "print an example file and exit")
	flag.Parse()
	if *showExample {
		fmt.Print(example)
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: a64run [-example] file.s")
		os.Exit(2)
	}
	text, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	s, err := parseFile(string(text))
	if err != nil {
		fatal(err)
	}
	p := platform.ByName(s.platform)
	if p == nil {
		fatal(fmt.Errorf("a64run: unknown platform %q", s.platform))
	}

	hist := map[string]int{}
	for r := 0; r < s.runs; r++ {
		res, err := run(s, p, s.seed+int64(r))
		if err != nil {
			fatal(err)
		}
		parts := make([]string, len(res))
		for i, v := range res {
			parts[i] = fmt.Sprintf("x0[%d]=%d", i, v)
		}
		hist[strings.Join(parts, " ")]++
	}
	keys := make([]string, 0, len(hist))
	for k := range hist {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fmt.Printf("%s, %s, %d runs:\n", s.platform, s.mode, s.runs)
	for _, k := range keys {
		fmt.Printf("  %-40s %6d\n", k, hist[k])
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
