package main

import (
	"strings"
	"testing"

	"armbar/internal/platform"
)

func TestParseFileDirectives(t *testing.T) {
	s, err := parseFile(example)
	if err != nil {
		t.Fatal(err)
	}
	if s.platform != "Kunpeng916" || s.mode != "WMM" || s.runs != 500 || s.seed != 7 {
		t.Fatalf("directives parsed wrong: %+v", s)
	}
	if len(s.vars) != 2 || s.vars[0] != "data" || s.vars[1] != "flag" {
		t.Fatalf("vars = %v", s.vars)
	}
	if len(s.threads) != 2 || s.threads[0].core != 0 || s.threads[1].core != 32 {
		t.Fatalf("threads parsed wrong")
	}
}

func TestParseFileErrors(t *testing.T) {
	cases := map[string]string{
		"bogus directive":            "unknown directive",
		"platform":                   "platform needs a name",
		"runs x\nthread core=0\nend": "bad runs",
		"seed x\nthread core=0\nend": "bad seed",
		"thread core=x\nend":         "bad core",
		"var x":                      "no threads",
	}
	for src, want := range cases {
		_, err := parseFile(src)
		if err == nil || !strings.Contains(err.Error(), want) {
			t.Errorf("parseFile(%q) error = %v, want containing %q", src, err, want)
		}
	}
}

func TestRunExampleUnderBothModes(t *testing.T) {
	s, err := parseFile(example)
	if err != nil {
		t.Fatal(err)
	}
	p := platform.ByName(s.platform)

	// WMM: across a bunch of seeds the anomaly (consumer x0 == 0) must
	// appear at least once, and the intended 23 as well.
	sawAnomaly, sawIntended := false, false
	for r := 0; r < 120; r++ {
		res, err := run(s, p, int64(100+r))
		if err != nil {
			t.Fatal(err)
		}
		switch res[1] {
		case 0:
			sawAnomaly = true
		case 23:
			sawIntended = true
		default:
			t.Fatalf("impossible consumer value %d", res[1])
		}
	}
	if !sawAnomaly || !sawIntended {
		t.Fatalf("WMM outcomes incomplete: anomaly=%v intended=%v", sawAnomaly, sawIntended)
	}

	// TSO: never the anomaly.
	s.mode = "TSO"
	for r := 0; r < 60; r++ {
		res, err := run(s, p, int64(100+r))
		if err != nil {
			t.Fatal(err)
		}
		if res[1] != 23 {
			t.Fatalf("TSO produced the anomaly: %v", res)
		}
	}
}
