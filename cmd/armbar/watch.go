package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"
	"time"

	"armbar/internal/progress"
)

// watchMain implements `armbar watch`: poll a running armbar's -serve
// /progress endpoint and render the live run state block by block (no
// terminal control codes — the output pipes and logs cleanly). The
// watch exits 0 when the watched run reports done, and 1 when the
// server becomes unreachable (the run exited, taking its server with
// it, or was never started with -serve).
func watchMain(argv []string) int {
	fs := flag.NewFlagSet("watch", flag.ExitOnError)
	addr := fs.String("addr", "http://127.0.0.1:8377",
		"base URL of the armbar -serve endpoint (host:port also accepted)")
	interval := fs.Duration("interval", time.Second, "poll interval")
	once := fs.Bool("once", false, "print one snapshot and exit")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: armbar watch [-addr http://127.0.0.1:8377] [-interval 1s] [-once]\n")
		fs.PrintDefaults()
	}
	fs.Parse(argv)

	base := *addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	base = strings.TrimRight(base, "/")
	client := &http.Client{Timeout: 5 * time.Second}

	failures := 0
	for {
		rep, err := fetchProgress(client, base+"/progress")
		if err != nil {
			failures++
			fmt.Fprintf(os.Stderr, "armbar watch: %v\n", err)
			// One transient failure is forgiven (the run may be between
			// bind and first experiment); two in a row means gone.
			if *once || failures >= 2 {
				return 1
			}
			time.Sleep(*interval)
			continue
		}
		failures = 0
		fmt.Print(rep.String())
		if *once {
			return 0
		}
		if rep.State == progress.StateDone {
			return 0
		}
		time.Sleep(*interval)
	}
}

// fetchProgress reads one /progress document.
func fetchProgress(client *http.Client, url string) (progress.Report, error) {
	var rep progress.Report
	resp, err := client.Get(url)
	if err != nil {
		return rep, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return rep, fmt.Errorf("%s: HTTP %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		return rep, fmt.Errorf("%s: %v", url, err)
	}
	return rep, nil
}
