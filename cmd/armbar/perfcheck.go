package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strings"
	"testing"

	"armbar/internal/perfgate"
	"armbar/internal/sim"
	"armbar/internal/simbench"
)

// perfcheckMain implements `armbar perfcheck`: rerun the simulator
// hot-path microbenchmarks in-process (via testing.Benchmark, the same
// bodies `go test -bench` measures) and gate them against the
// committed BENCH_sim.json. Exit status 1 means a regression — or an
// improvement so large the committed snapshot went stale and must be
// regenerated with `make bench-snapshot`.
func perfcheckMain(argv []string) int {
	fs := flag.NewFlagSet("perfcheck", flag.ExitOnError)
	snapPath := fs.String("snapshot", "BENCH_sim.json", "committed benchmark snapshot to gate against")
	threshold := fs.Float64("threshold", 1.8, "fail when ns/op exceeds the snapshot by this ratio")
	improve := fs.Float64("improve-threshold", 1.5, "fail when ns/op improves beyond this ratio (stale snapshot; 0 disables)")
	runs := fs.Int("runs", 3, "repetitions per benchmark; the fastest repetition is compared (noise guard)")
	handicap := fs.Float64("handicap", 1, "multiply measured ns/op — inject a synthetic slowdown to demonstrate the gate")
	history := fs.String("history", "BENCH_history.jsonl", "benchmark history (JSONL of snapshots); shown when present, \"\" disables")
	historyN := fs.Int("history-n", 5, "history entries to show")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: armbar perfcheck [-snapshot file] [-threshold x] [-improve-threshold x] [-runs n] [-handicap x] [-history file] [-history-n n]\n")
		fs.PrintDefaults()
	}
	fs.Parse(argv)

	snap, err := perfgate.Load(*snapPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "perfcheck: %v\n", err)
		return 1
	}
	fmt.Fprintf(os.Stderr, "# gating against %s (%s, %s), %d runs per benchmark\n",
		*snapPath, snap.Date, snap.Go, *runs)
	if snap.ColdWallSeconds > 0 && snap.WarmWallSeconds > 0 {
		fmt.Fprintf(os.Stderr, "# snapshot result-cache context: `-quick all` cold %.1fs, warm %.1fs (%.0f%% of cold)\n",
			snap.ColdWallSeconds, snap.WarmWallSeconds, 100*snap.WarmWallSeconds/snap.ColdWallSeconds)
	}
	// Baseline drift context: how the committed snapshot itself moved
	// across regenerations. Informational — history entries predate the
	// working tree, so only the snapshot comparison below is gated.
	if *history != "" {
		if snaps, err := perfgate.LoadHistory(*history, *historyN); err == nil {
			fmt.Fprintf(os.Stderr, "# snapshot history (%s, last %d of the file):\n", *history, len(snaps))
			for _, line := range strings.Split(strings.TrimRight(perfgate.HistoryTable(snaps), "\n"), "\n") {
				fmt.Fprintf(os.Stderr, "#   %s\n", line)
			}
		} else if !os.IsNotExist(err) {
			fmt.Fprintf(os.Stderr, "perfcheck: history: %v\n", err)
			return 1
		}
	}
	if snap.InterpColdWallSeconds > 0 && snap.ColdWallSeconds > 0 {
		fmt.Fprintf(os.Stderr, "# snapshot engine context: `-quick all` cold interp %.1fs vs compiled %.1fs (%.2fx)\n",
			snap.InterpColdWallSeconds, snap.ColdWallSeconds,
			snap.InterpColdWallSeconds/snap.ColdWallSeconds)
	}

	cur := make([]perfgate.Bench, 0, len(simbench.Benches))
	for _, nb := range simbench.Benches {
		best := perfgate.Bench{Name: nb.Name, NsPerOp: math.Inf(1)}
		for r := 0; r < *runs; r++ {
			res := testing.Benchmark(nb.Fn)
			if res.N == 0 {
				continue
			}
			ns := float64(res.T.Nanoseconds()) / float64(res.N)
			if ns < best.NsPerOp {
				best.NsPerOp = ns
				best.Iters = int64(res.N)
				best.BytesPerOp = res.AllocedBytesPerOp()
				best.AllocsPerOp = res.AllocsPerOp()
			}
		}
		best.NsPerOp *= *handicap
		fmt.Fprintf(os.Stderr, "# %-32s %10.1f ns/op %6d B/op %4d allocs/op\n",
			best.Name, best.NsPerOp, best.BytesPerOp, best.AllocsPerOp)
		cur = append(cur, best)
	}

	// Engine ratio: remeasure the two store-path benchmarks with the
	// interpreted engine and report how much the compiled default buys.
	// Informational — the gate above already holds the compiled numbers
	// to the snapshot.
	sim.SetDefaultEngine(sim.EngineInterp)
	for _, nb := range simbench.Benches {
		if nb.Name != "BenchmarkStoreCommit" && nb.Name != "BenchmarkStoreDMBFull" {
			continue
		}
		var compiledNs float64
		for _, c := range cur {
			if c.Name == nb.Name {
				compiledNs = c.NsPerOp
			}
		}
		res := testing.Benchmark(nb.Fn)
		if res.N == 0 || compiledNs <= 0 {
			continue
		}
		interpNs := float64(res.T.Nanoseconds()) / float64(res.N)
		fmt.Fprintf(os.Stderr, "# %-32s interp %8.1f ns/op vs compiled %8.1f ns/op (%.2fx)\n",
			nb.Name, interpNs, compiledNs, interpNs/compiledNs)
	}
	sim.SetDefaultEngine(sim.EngineDefault)

	deltas, ok := perfgate.Compare(snap, cur, *threshold, *improve)
	fmt.Print(perfgate.Table(deltas, *threshold, *improve))
	if !ok {
		fmt.Println("perfcheck: FAIL — hot-path performance moved beyond the gate (regression, or an improvement that needs a snapshot refresh)")
		return 1
	}
	fmt.Println("perfcheck: OK")
	return 0
}
