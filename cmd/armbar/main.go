// Command armbar regenerates the tables and figures of the ARM-barrier
// study from the simulator-based reproduction.
//
// Usage:
//
//	armbar [-quick] [-seed N] [-par N] [-csv] [-metrics f] [-trace-out f] <experiment> [...]
//	armbar perfcheck [-snapshot BENCH_sim.json] [-threshold 1.8]
//
// Experiments: table1 table2 table3 fig2 fig3 fig4 fig5 fig6a fig6b
// fig6c fig6d fig7a fig7b fig7c fig8a fig8b fig8c fig8d platforms all.
//
// -par N fans each experiment's independent simulation cells out over
// N workers (default GOMAXPROCS; 1 forces the inline sequential path).
// Output is byte-identical at every -par value and seed: parallelism
// only changes when a cell computes, never what it computes.
//
// Observability (see README "Observability"): -metrics writes a JSON
// snapshot of simulator, runner and per-experiment metrics ("-" for
// stdout, after the tables); -metrics-prom selects Prometheus text
// instead; -trace-out writes a merged Chrome/Perfetto trace of the
// simulated machines; -manifest writes a run manifest (also written as
// manifest.json into the -o directory). -serve :PORT runs the embedded
// observability server (/healthz, /metrics, /progress, /profile,
// /debug/pprof) for the duration of the run, and `armbar watch` polls
// it from another terminal. -profile-out writes the cycle-attribution
// profile as folded stacks for flamegraph tooling. perfcheck reruns
// the hot-path microbenchmarks and fails when they regress against
// BENCH_sim.json.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"sort"
	"strings"
	"time"

	"armbar/internal/cellcache"
	"armbar/internal/figures"
	"armbar/internal/metrics"
	"armbar/internal/progress"
	"armbar/internal/runner"
	"armbar/internal/serve"
	"armbar/internal/sim"
	"armbar/internal/trace"
)

var (
	quick  = flag.Bool("quick", false, "shrink iteration counts for a fast smoke run")
	seed   = flag.Int64("seed", 42, "simulation seed")
	csv    = flag.Bool("csv", false, "emit CSV instead of aligned text")
	md     = flag.Bool("md", false, "emit markdown instead of aligned text")
	outDir = flag.String("o", "", "also write each table as a CSV file into this directory")
	par    = flag.Int("par", runtime.GOMAXPROCS(0),
		"worker count for experiment cells (1 = sequential, 0 = GOMAXPROCS)")
	times = flag.Bool("times", true, "report per-experiment wall time on stderr")

	engineName = flag.String("engine", "compiled",
		"simulation engine: compiled (precompiled micro-op programs, the default) or interp (original closure bodies); outputs are byte-identical")

	serveAddr = flag.String("serve", "",
		"run the observability HTTP server on this address for the duration of the run (e.g. :8377; exposes /healthz /metrics /progress /profile /debug/pprof)")
	profileOut = flag.String("profile-out", "",
		"write the cycle-attribution profile as folded stacks (flamegraph.pl / speedscope input) to this file")

	metricsOut  = flag.String("metrics", "", "write run metrics as JSON to this file (\"-\" = stdout, after the tables)")
	metricsProm = flag.Bool("metrics-prom", false, "write -metrics output in Prometheus text format instead of JSON")
	traceOut    = flag.String("trace-out", "", "write a merged Chrome/Perfetto trace of the simulated machines to this file")
	traceCap    = flag.Int("trace-cap", 4096, "with -trace-out: most recent events kept per machine (0 = unlimited)")
	traceMach   = flag.Int("trace-machines", 256, "with -trace-out: maximum machines traced")
	manifestOut = flag.String("manifest", "", "write a run manifest (seed, flags, git rev, per-experiment metrics) to this file")

	cacheOn  = onOff(true)
	cacheDir = flag.String("cache-dir", ".armbar-cache", "result-cache directory (see README \"Result cache\")")
)

func init() {
	flag.Var(&cacheOn, "cache", "consult the persistent result cache: on|off (default on; -cache=off recomputes everything)")
}

// onOff is a boolean flag that additionally accepts the on/off
// spelling the docs use (`-cache=off`), while keeping bare `-cache`
// working like a normal bool flag.
type onOff bool

func (o *onOff) String() string {
	if o != nil && bool(*o) {
		return "on"
	}
	return "off"
}

func (o *onOff) Set(s string) error {
	switch strings.ToLower(s) {
	case "", "on", "true", "1", "yes":
		*o = true
	case "off", "false", "0", "no":
		*o = false
	default:
		return fmt.Errorf("want on or off, got %q", s)
	}
	return nil
}

func (o *onOff) IsBoolFlag() bool { return true }

// manifest is the self-describing record written next to a run's
// results: everything needed to reproduce or audit the run.
type manifest struct {
	Tool        string                  `json:"tool"`
	Date        string                  `json:"date"`
	GoVersion   string                  `json:"go_version"`
	GitRevision string                  `json:"git_revision"`
	GOMAXPROCS  int                     `json:"gomaxprocs"`
	Seed        int64                   `json:"seed"`
	Quick       bool                    `json:"quick"`
	Par         int                     `json:"par"`
	Engine      string                  `json:"engine"`
	Args        []string                `json:"args"`
	WallSeconds float64                 `json:"wall_seconds"`
	Experiments []figures.ExperimentRun `json:"experiments"`
	MetricsFile string                  `json:"metrics_file,omitempty"`
	TraceFile   string                  `json:"trace_file,omitempty"`
	ProfileFile string                  `json:"profile_file,omitempty"`
	Cache       *cellcache.Stats        `json:"cache,omitempty"`
	Profile     *sim.ProfileReport      `json:"profile,omitempty"`
}

// gitRevision reads the VCS revision stamped into the binary, falling
// back to "unknown" (e.g. for plain `go run` of a non-VCS tree).
func gitRevision() string {
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return "unknown"
	}
	rev, dirty := "unknown", ""
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			if s.Value == "true" {
				dirty = "+dirty"
			}
		}
	}
	return rev + dirty
}

// teeTracer fans one machine's events out to both observability sinks.
type teeTracer struct{ a, b sim.Tracer }

func (t teeTracer) Event(ev sim.TraceEvent) {
	t.a.Event(ev)
	t.b.Event(ev)
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "armbar: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	if len(os.Args) > 1 && os.Args[1] == "perfcheck" {
		os.Exit(perfcheckMain(os.Args[2:]))
	}
	if len(os.Args) > 1 && os.Args[1] == "cache" {
		os.Exit(cacheMain(os.Args[2:]))
	}
	if len(os.Args) > 1 && os.Args[1] == "watch" {
		os.Exit(watchMain(os.Args[2:]))
	}
	flag.Parse()
	engine, err := sim.ParseEngine(*engineName)
	if err != nil {
		fail("%v", err)
	}
	sim.SetDefaultEngine(engine)
	args := flag.Args()
	if len(args) == 0 {
		fmt.Fprintf(os.Stderr, "usage: armbar [-quick] [-seed N] [-par N] [-csv] [-engine compiled|interp] [-cache=off] <experiment> [...]\n")
		fmt.Fprintf(os.Stderr, "       armbar perfcheck [-snapshot BENCH_sim.json]\n")
		fmt.Fprintf(os.Stderr, "       armbar cache [stats|gc|clear] [-dir .armbar-cache]\n")
		fmt.Fprintf(os.Stderr, "       armbar watch [-addr http://127.0.0.1:8377] [-interval 1s] [-once]\n")
		fmt.Fprintf(os.Stderr, "experiments: %s all\n", strings.Join(figures.Names(), " "))
		os.Exit(2)
	}
	for _, a := range args {
		// flag stops at the first experiment name; a stray "-quick" after
		// it would otherwise be silently dropped (and regenerate at full
		// scale), so reject flag-looking positionals outright.
		if strings.HasPrefix(a, "-") {
			fmt.Fprintf(os.Stderr, "armbar: flag %q after experiment names; flags must come first\n", a)
			os.Exit(2)
		}
	}
	requested := append([]string(nil), args...)
	if args[0] == "all" {
		args = figures.Names()
	} else if args[0] == "platforms" {
		args = []string{"table2"}
	}

	// Observability sinks. All hooks are installed before any machine
	// is built and cost nothing when their flags are unset. -serve
	// implies a registry (it has a /metrics endpoint to feed) and a
	// profile collector; -profile-out implies just the collector.
	var reg *metrics.Registry
	if *metricsOut != "" || *serveAddr != "" {
		reg = metrics.NewRegistry()
		sim.SetGlobalMetrics(reg)
	}
	var profc *sim.ProfileCollector
	if *serveAddr != "" || *profileOut != "" {
		profc = sim.NewProfileCollector()
		sim.SetGlobalProfile(profc)
	}
	var collector *trace.Collector
	if *traceOut != "" {
		collector = trace.NewCollector(*traceCap, *traceMach)
	}
	if reg != nil || collector != nil {
		var mt sim.Tracer
		if reg != nil {
			mt = sim.NewMetricsTracer(reg)
		}
		sim.SetMachineTracerFactory(func() sim.Tracer {
			var rec sim.Tracer
			if collector != nil {
				rec = collector.NewTracer()
			}
			switch {
			case mt != nil && rec != nil:
				return teeTracer{mt, rec}
			case mt != nil:
				return mt
			default:
				return rec
			}
		})
	}

	// Live observability plane: the progress tracker feeds /progress
	// through the pool's cell hooks, and the HTTP server reads all
	// sinks for the duration of the run.
	var tracker *progress.Tracker
	var server *serve.Server
	if *serveAddr != "" {
		tracker = progress.New(args)
		server = serve.New(serve.Options{Registry: reg, Profile: profc, Tracker: tracker})
		bound, err := server.Start(*serveAddr)
		if err != nil {
			fail("%v", err)
		}
		defer server.Close()
		fmt.Fprintf(os.Stderr, "# serve    listening on http://%s (healthz, metrics, progress, profile, debug/pprof)\n", bound)
	}

	// One pool for the whole invocation; -par 1 keeps cells inline on
	// this goroutine so the sequential baseline spawns no workers.
	var pool *runner.Pool
	if *par != 1 {
		pool = runner.New(*par)
		pool.SetMetrics(reg) // nil-safe: dark without -metrics
		if tracker != nil {
			pool.SetProgress(tracker)
		}
		defer pool.Close()
	}
	o := figures.Options{Quick: *quick, Seed: *seed, Pool: pool}

	// Persistent result cache: cells hit before they simulate. -cache=off
	// disables both lookup and store, reproducing the uncached pipeline.
	var cache *cellcache.Cache
	if bool(cacheOn) {
		cache = cellcache.Open(*cacheDir)
		cache.SetMetrics(reg) // nil-safe: dark without -metrics
		defer cache.Close()
		o.Cache = cache
	}

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fail("%v", err)
		}
	}
	man := manifest{
		Tool:        "armbar",
		Date:        time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GitRevision: gitRevision(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Seed:        *seed,
		Quick:       *quick,
		Par:         *par,
		Engine:      engine.String(),
		Args:        requested,
		MetricsFile: *metricsOut,
		TraceFile:   *traceOut,
	}
	start := time.Now()
	for _, name := range args {
		exp, ok := figures.ByName(name)
		if !ok {
			fmt.Fprintf(os.Stderr, "armbar: unknown experiment %q (have: %s)\n",
				name, strings.Join(figures.Names(), " "))
			os.Exit(2)
		}
		if tracker != nil {
			tracker.StartExperiment(name)
		}
		tables, run := figures.RunInstrumented(exp, o, reg)
		if tracker != nil {
			tracker.FinishExperiment(name, run.Cells, run.CacheHits, run.WallSeconds)
		}
		man.Experiments = append(man.Experiments, run)
		if *times {
			fmt.Fprintf(os.Stderr, "# %-8s %2d table(s) in %v\n", name, len(tables),
				time.Duration(run.WallSeconds*float64(time.Second)).Round(time.Millisecond))
		}
		if len(tables) != exp.Tables {
			fail("%s emitted %d tables, registry says %d", name, len(tables), exp.Tables)
		}
		for i, t := range tables {
			switch {
			case *csv:
				fmt.Print(t.CSV())
			case *md:
				fmt.Println(t.Markdown())
			default:
				fmt.Println(t.String())
			}
			if *outDir != "" {
				file := filepath.Join(*outDir, name+".csv")
				if len(tables) > 1 {
					file = filepath.Join(*outDir, fmt.Sprintf("%s_%d.csv", name, i))
				}
				if err := os.WriteFile(file, []byte(t.CSV()), 0o644); err != nil {
					fail("%v", err)
				}
			}
		}
	}
	man.WallSeconds = time.Since(start).Seconds()
	if *times {
		fmt.Fprintf(os.Stderr, "# total    %v (par=%d)\n",
			time.Duration(man.WallSeconds*float64(time.Second)).Round(time.Millisecond), *par)
	}

	// Close the pool before exporting so the derived whole-run gauges
	// (worker utilization, cells/sec) are frozen; the deferred Close is
	// then a no-op. The cache closes next so its shard files and index
	// are durable before the manifest records its final stats.
	pool.Close()
	if tracker != nil {
		tracker.Finish()
	}
	if cache != nil {
		cache.Close()
		st := cache.Stats()
		man.Cache = &st
	}

	if profc != nil {
		p := profc.Snapshot()
		rep := p.Report()
		man.Profile = &rep
		if reg != nil {
			// Final fold so a -metrics file carries the profile gauges the
			// /metrics endpoint refreshed per scrape.
			p.MetricsInto(reg)
		}
		if *profileOut != "" {
			if err := writeFoldedStacks(man, *profileOut); err != nil {
				fail("%v", err)
			}
			man.ProfileFile = *profileOut
			fmt.Fprintf(os.Stderr, "# profile  %s: %d cause(s) across %d machine(s), %d gap(s) — fold with flamegraph.pl or load into speedscope\n",
				*profileOut, len(rep.Causes), rep.Machines, rep.Gaps)
		}
	}

	if reg != nil && *metricsOut != "" {
		if err := writeMetrics(reg, *metricsOut, *metricsProm); err != nil {
			fail("%v", err)
		}
	}
	if collector != nil {
		f, err := os.Create(*traceOut)
		if err != nil {
			fail("%v", err)
		}
		if err := collector.WriteChromeJSON(f); err != nil {
			fail("%v", err)
		}
		if err := f.Close(); err != nil {
			fail("%v", err)
		}
		fmt.Fprintf(os.Stderr, "# trace    %s: %d machine(s), %d dropped event(s), %d machine(s) untraced — open at https://ui.perfetto.dev\n",
			*traceOut, collector.Machines(), collector.Dropped(), collector.Skipped())
	}
	manifestPath := *manifestOut
	if manifestPath == "" && *outDir != "" {
		manifestPath = filepath.Join(*outDir, "manifest.json")
	}
	if manifestPath != "" {
		if err := writeManifest(man, manifestPath); err != nil {
			fail("%v", err)
		}
	}
}

// writeFoldedStacks renders the per-experiment attribution rollup in
// the folded-stacks format flamegraph tooling consumes: one line per
// stack ("armbar;<experiment>;<cause>") weighted by simulated cycles.
// Cause rows are emitted in sorted order so the file is deterministic
// for a given run.
func writeFoldedStacks(man manifest, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	for _, run := range man.Experiments {
		names := make([]string, 0, len(run.ProfileCycles))
		for name := range run.ProfileCycles {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			cyc := run.ProfileCycles[name]
			if cyc <= 0 {
				continue
			}
			if _, err := fmt.Fprintf(f, "armbar;%s;%s %d\n", run.Name, name, int64(cyc+0.5)); err != nil {
				f.Close()
				return err
			}
		}
	}
	return f.Close()
}

func writeMetrics(reg *metrics.Registry, dest string, prom bool) error {
	w := os.Stdout
	if dest != "-" {
		f, err := os.Create(dest)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if prom {
		return reg.WriteProm(w)
	}
	return reg.WriteJSON(w)
}

func writeManifest(man manifest, path string) error {
	data, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
