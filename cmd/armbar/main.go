// Command armbar regenerates the tables and figures of the ARM-barrier
// study from the simulator-based reproduction.
//
// Usage:
//
//	armbar [-quick] [-seed N] [-csv] <experiment> [...]
//
// Experiments: table1 table2 table3 fig2 fig3 fig4 fig5 fig6a fig6b
// fig6c fig6d fig7a fig7b fig7c fig8a fig8b fig8c fig8d platforms all.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"armbar/internal/ablation"
	"armbar/internal/figures"
	"armbar/internal/report"
)

var (
	quick  = flag.Bool("quick", false, "shrink iteration counts for a fast smoke run")
	seed   = flag.Int64("seed", 42, "simulation seed")
	csv    = flag.Bool("csv", false, "emit CSV instead of aligned text")
	md     = flag.Bool("md", false, "emit markdown instead of aligned text")
	outDir = flag.String("o", "", "also write each table as a CSV file into this directory")
)

// experiments maps names to generator functions.
var experiments = map[string]func(figures.Options) []*report.Table{
	"table1":  single(figures.Table1),
	"table2":  single(figures.Table2),
	"table3":  single(figures.Table3),
	"fig2":    figures.Fig2,
	"fig3":    figures.Fig3,
	"fig4":    single(figures.Fig4),
	"fig5":    single(figures.Fig5),
	"fig6a":   single(figures.Fig6a),
	"fig6b":   single(figures.Fig6b),
	"fig6c":   single(figures.Fig6c),
	"fig6d":   single(figures.Fig6d),
	"fig7a":   single(figures.Fig7a),
	"fig7b":   single(figures.Fig7b),
	"fig7c":   single(figures.Fig7c),
	"fig8a":   single(figures.Fig8a),
	"fig8b":   single(figures.Fig8b),
	"fig8c":   single(figures.Fig8c),
	"fig8d":   single(figures.Fig8d),
	"inplace": single(figures.InPlaceLocks),
	"mpmc":    single(figures.MPMCFanIn),
	"tso":     single(figures.TSOPorting),
	"seqlock": single(figures.SeqlockVsPilot),
	"a64":     single(figures.A64CrossCheck),
	"ablation": func(o figures.Options) []*report.Table {
		return ablation.All(ablation.Options{Quick: o.Quick, Seed: o.Seed})
	},
}

func single(f func(figures.Options) *report.Table) func(figures.Options) []*report.Table {
	return func(o figures.Options) []*report.Table { return []*report.Table{f(o)} }
}

func names() []string {
	out := make([]string, 0, len(experiments))
	for k := range experiments {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func main() {
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		fmt.Fprintf(os.Stderr, "usage: armbar [-quick] [-seed N] [-csv] <experiment> [...]\n")
		fmt.Fprintf(os.Stderr, "experiments: %s all\n", strings.Join(names(), " "))
		os.Exit(2)
	}
	if args[0] == "all" {
		args = names()
	} else if args[0] == "platforms" {
		args = []string{"table2"}
	}
	o := figures.Options{Quick: *quick, Seed: *seed}
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "armbar: %v\n", err)
			os.Exit(1)
		}
	}
	for _, name := range args {
		gen, ok := experiments[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "armbar: unknown experiment %q (have: %s)\n",
				name, strings.Join(names(), " "))
			os.Exit(2)
		}
		tables := gen(o)
		for i, t := range tables {
			switch {
			case *csv:
				fmt.Print(t.CSV())
			case *md:
				fmt.Println(t.Markdown())
			default:
				fmt.Println(t.String())
			}
			if *outDir != "" {
				file := filepath.Join(*outDir, name+".csv")
				if len(tables) > 1 {
					file = filepath.Join(*outDir, fmt.Sprintf("%s_%d.csv", name, i))
				}
				if err := os.WriteFile(file, []byte(t.CSV()), 0o644); err != nil {
					fmt.Fprintf(os.Stderr, "armbar: %v\n", err)
					os.Exit(1)
				}
			}
		}
	}
}
