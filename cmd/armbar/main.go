// Command armbar regenerates the tables and figures of the ARM-barrier
// study from the simulator-based reproduction.
//
// Usage:
//
//	armbar [-quick] [-seed N] [-par N] [-csv] <experiment> [...]
//
// Experiments: table1 table2 table3 fig2 fig3 fig4 fig5 fig6a fig6b
// fig6c fig6d fig7a fig7b fig7c fig8a fig8b fig8c fig8d platforms all.
//
// -par N fans each experiment's independent simulation cells out over
// N workers (default GOMAXPROCS; 1 forces the inline sequential path).
// Output is byte-identical at every -par value and seed: parallelism
// only changes when a cell computes, never what it computes.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"armbar/internal/figures"
	"armbar/internal/runner"
)

var (
	quick  = flag.Bool("quick", false, "shrink iteration counts for a fast smoke run")
	seed   = flag.Int64("seed", 42, "simulation seed")
	csv    = flag.Bool("csv", false, "emit CSV instead of aligned text")
	md     = flag.Bool("md", false, "emit markdown instead of aligned text")
	outDir = flag.String("o", "", "also write each table as a CSV file into this directory")
	par    = flag.Int("par", runtime.GOMAXPROCS(0),
		"worker count for experiment cells (1 = sequential, 0 = GOMAXPROCS)")
	times = flag.Bool("times", true, "report per-experiment wall time on stderr")
)

func main() {
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		fmt.Fprintf(os.Stderr, "usage: armbar [-quick] [-seed N] [-par N] [-csv] <experiment> [...]\n")
		fmt.Fprintf(os.Stderr, "experiments: %s all\n", strings.Join(figures.Names(), " "))
		os.Exit(2)
	}
	for _, a := range args {
		// flag stops at the first experiment name; a stray "-quick" after
		// it would otherwise be silently dropped (and regenerate at full
		// scale), so reject flag-looking positionals outright.
		if strings.HasPrefix(a, "-") {
			fmt.Fprintf(os.Stderr, "armbar: flag %q after experiment names; flags must come first\n", a)
			os.Exit(2)
		}
	}
	if args[0] == "all" {
		args = figures.Names()
	} else if args[0] == "platforms" {
		args = []string{"table2"}
	}

	// One pool for the whole invocation; -par 1 keeps cells inline on
	// this goroutine so the sequential baseline spawns no workers.
	var pool *runner.Pool
	if *par != 1 {
		pool = runner.New(*par)
		defer pool.Close()
	}
	o := figures.Options{Quick: *quick, Seed: *seed, Pool: pool}

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "armbar: %v\n", err)
			os.Exit(1)
		}
	}
	total := time.Duration(0)
	for _, name := range args {
		exp, ok := figures.ByName(name)
		if !ok {
			fmt.Fprintf(os.Stderr, "armbar: unknown experiment %q (have: %s)\n",
				name, strings.Join(figures.Names(), " "))
			os.Exit(2)
		}
		start := time.Now()
		tables := exp.Gen(o)
		elapsed := time.Since(start)
		total += elapsed
		if *times {
			fmt.Fprintf(os.Stderr, "# %-8s %2d table(s) in %v\n", name, len(tables), elapsed.Round(time.Millisecond))
		}
		if len(tables) != exp.Tables {
			fmt.Fprintf(os.Stderr, "armbar: %s emitted %d tables, registry says %d\n",
				name, len(tables), exp.Tables)
			os.Exit(1)
		}
		for i, t := range tables {
			switch {
			case *csv:
				fmt.Print(t.CSV())
			case *md:
				fmt.Println(t.Markdown())
			default:
				fmt.Println(t.String())
			}
			if *outDir != "" {
				file := filepath.Join(*outDir, name+".csv")
				if len(tables) > 1 {
					file = filepath.Join(*outDir, fmt.Sprintf("%s_%d.csv", name, i))
				}
				if err := os.WriteFile(file, []byte(t.CSV()), 0o644); err != nil {
					fmt.Fprintf(os.Stderr, "armbar: %v\n", err)
					os.Exit(1)
				}
			}
		}
	}
	if *times {
		fmt.Fprintf(os.Stderr, "# total    %v (par=%d)\n", total.Round(time.Millisecond), *par)
	}
}
