package main

import (
	"flag"
	"fmt"
	"os"

	"armbar/internal/cellcache"
)

// cacheMain implements `armbar cache [stats|gc|clear]`, the maintenance
// verbs of the persistent result cache (see README "Result cache").
// stats prints the cache's self-description; gc drops records written
// by other code versions (and, with -max-age, whole shard files not
// touched for that long); clear removes everything.
func cacheMain(args []string) int {
	fs := flag.NewFlagSet("armbar cache", flag.ExitOnError)
	dir := fs.String("dir", ".armbar-cache", "cache directory to operate on")
	maxAge := fs.Duration("max-age", 0, "with gc: also drop shard files older than this (0 = keep all ages)")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: armbar cache [stats|gc|clear] [-dir .armbar-cache] [-max-age 720h]\n")
		fs.PrintDefaults()
	}
	verb := "stats"
	if len(args) > 0 && args[0] != "" && args[0][0] != '-' {
		verb = args[0]
		args = args[1:]
	}
	fs.Parse(args)

	c := cellcache.Open(*dir)
	defer c.Close()
	switch verb {
	case "stats":
		// nothing extra: stats print below for every verb
	case "gc":
		removed, reclaimed := c.GC(*maxAge)
		fmt.Printf("gc: removed %d record(s), reclaimed %d byte(s)\n", removed, reclaimed)
	case "clear":
		c.Clear()
		fmt.Printf("clear: cache emptied\n")
	default:
		fmt.Fprintf(os.Stderr, "armbar cache: unknown verb %q (want stats, gc or clear)\n", verb)
		fs.Usage()
		return 2
	}
	st := c.Stats()
	fmt.Printf("dir:       %s\n", st.Dir)
	fmt.Printf("code hash: %s\n", st.CodeHash)
	fmt.Printf("entries:   %d (%d from other code versions)\n", st.Entries, st.StaleEntries)
	fmt.Printf("bytes:     %d", st.Bytes)
	if st.Entries > 0 {
		fmt.Printf(" (mean %d, max %d per entry)", st.MeanEntryBytes, st.MaxEntryBytes)
	}
	fmt.Println()
	if st.LargeEntries > 0 {
		fmt.Printf("warning:   %d entr%s over %d bytes — some generator caches whole sweeps instead of cells\n",
			st.LargeEntries, plural(st.LargeEntries, "y is", "ies are"), int64(cellcache.LargeEntryBytes))
	}
	if st.DamagedFiles > 0 {
		fmt.Printf("damaged:   %d shard file(s) had a corrupt tail (discarded)\n", st.DamagedFiles)
	}
	if st.MemoryOnly {
		fmt.Printf("warning:   directory unusable; cache is memory-only\n")
	}
	return 0
}

// plural picks a suffix by count, for the stats warnings.
func plural(n int, one, many string) string {
	if n == 1 {
		return one
	}
	return many
}
