module armbar

go 1.22

// No requirements — stdlib only, and that is deliberate. The static
// analyzers in internal/analysis implement the go/analysis API shape
// (Analyzer/Pass/analysistest) as a small in-tree subset on
// go/ast + go/types with the source importer, instead of requiring
// golang.org/x/tools: the build must work hermetically offline, and
// x/tools would be the module's only dependency. If a vendored
// x/tools ever becomes available, the suite can be ported by
// swapping internal/analysis's driver for multichecker.

