module armbar

go 1.22
