package litmus

import (
	"fmt"

	"armbar/internal/isa"
	"armbar/internal/sim"
	"armbar/internal/topo"
)

// LoadBuffering is the classic LB test: each thread loads the other's
// location then stores to its own. The out-of-thin-air-adjacent
// outcome r0=1,r1=1 would require both loads to read the other's later
// store; a sane model forbids it (stores never commit before their
// issue, and loads bind no later than issue), with or without
// dependencies.
func LoadBuffering(dep isa.Barrier) *Test {
	return &Test{
		Name:  fmt.Sprintf("LB(%v)", dep),
		Cores: []topo.CoreID{0, 4},
		Lines: 2,
		Body: func(i int, t *sim.Thread, addr []uint64) []uint64 {
			mine, theirs := addr[i], addr[1-i]
			r := t.Load(theirs)
			if dep != isa.None {
				t.Barrier(dep)
			}
			t.Store(mine, 1)
			return []uint64{r}
		},
		Format: FormatRegs(Reg("r0", 0, 0), Reg("r1", 1, 0)),
	}
}

// CoRR checks per-location read coherence: two program-ordered loads
// of one location (joined by an address dependency) must not observe
// values in reverse commit order once a remote store lands.
func CoRR() *Test {
	return &Test{
		Name:  "CoRR",
		Cores: []topo.CoreID{0, 4},
		Lines: 1,
		Body: func(i int, t *sim.Thread, addr []uint64) []uint64 {
			x := addr[0]
			if i == 0 {
				t.Store(x, 1)
				return nil
			}
			r1 := t.Load(x)
			t.Barrier(isa.AddrDep)
			r2 := t.Load(x)
			return []uint64{r1, r2}
		},
		Format: FormatRegs(Reg("r1", 1, 0), Reg("r2", 1, 1)),
	}
}

// SBWithRMW is store buffering resolved by acquire-release atomics:
// both threads use an atomic swap for the store, which drains the
// buffer, so r0=r1=0 is forbidden.
func SBWithRMW() *Test {
	return &Test{
		Name:  "SB(SWPAL)",
		Cores: []topo.CoreID{0, 4},
		Lines: 2,
		Body: func(i int, t *sim.Thread, addr []uint64) []uint64 {
			mine, theirs := addr[i], addr[1-i]
			t.Swap(mine, 1)
			return []uint64{t.Load(theirs)}
		},
		Format: FormatRegs(Reg("r0", 0, 0), Reg("r1", 1, 0)),
	}
}
