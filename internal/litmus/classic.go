package litmus

import (
	"fmt"

	"armbar/internal/isa"
	"armbar/internal/sim"
	"armbar/internal/topo"
)

// STest is the classic S shape: T0 stores x=2 then (ordered) y=1;
// T1 reads y and, dependent on it, stores x=1. The forbidden-under-SC
// outcome is "T1 read y=1 yet x finishes 2": T1's store was ordered
// after its read of y, which was after T0's store of x=2... so x=1
// must land last. Both orderings supplied => outcome forbidden.
func STest(t0Order, t1Order isa.Barrier) *Test {
	return &Test{
		Name:  fmt.Sprintf("S(%v,%v)", t0Order, t1Order),
		Cores: []topo.CoreID{0, 32},
		Lines: 2,
		Body: func(i int, t *sim.Thread, addr []uint64) []uint64 {
			x, y := addr[0], addr[1]
			if i == 0 {
				t.Store(x, 2)
				t.Barrier(t0Order)
				t.Store(y, 1)
				return nil
			}
			r := t.Load(y)
			t.Barrier(t1Order)
			if r == 1 {
				t.Store(x, 1)
			}
			return []uint64{r}
		},
		FormatFinal: FormatMem(Reg("r", 1, 0), Mem("x", 0)),
	}
}

// TwoPlusTwoW is the 2+2W shape: both threads store to both locations
// in opposite orders (each pair ordered). The forbidden outcome is
// both locations ending with their *first* writer's value — that would
// need both threads' second stores to lose to the other's first,
// contradicting any total coherence order when each pair is fenced.
func TwoPlusTwoW(order isa.Barrier) *Test {
	return &Test{
		Name:  fmt.Sprintf("2+2W(%v)", order),
		Cores: []topo.CoreID{0, 32},
		Lines: 2,
		Body: func(i int, t *sim.Thread, addr []uint64) []uint64 {
			x, y := addr[0], addr[1]
			if i == 0 {
				t.Store(x, 1)
				t.Barrier(order)
				t.Store(y, 2)
			} else {
				t.Store(y, 1)
				t.Barrier(order)
				t.Store(x, 2)
			}
			return nil
		},
		FormatFinal: FormatMem(Mem("x", 0), Mem("y", 1)),
	}
}

// RTest is the R shape: T0 stores x=1 then (ordered) y=1; T1 stores
// y=2 then (ordered) reads x. Forbidden when both ordered: y final 2
// (T1's store coherence-after T0's) with T1 reading x=0.
func RTest(order isa.Barrier) *Test {
	return &Test{
		Name:  fmt.Sprintf("R(%v)", order),
		Cores: []topo.CoreID{0, 32},
		Lines: 2,
		Body: func(i int, t *sim.Thread, addr []uint64) []uint64 {
			x, y := addr[0], addr[1]
			if i == 0 {
				t.Store(x, 1)
				t.Barrier(order)
				t.Store(y, 1)
				return nil
			}
			t.Store(y, 2)
			t.Barrier(order)
			return []uint64{t.Load(x)}
		},
		FormatFinal: FormatMem(Reg("r", 1, 0), Mem("y", 1)),
	}
}
