// Package litmus runs classic memory-model litmus tests on the
// simulator and histograms their outcomes, reproducing the paper's
// Table 1: the message-passing anomaly (`local != 23`) is allowed under
// the weakly-ordered model and forbidden under TSO.
package litmus

import (
	"fmt"
	"sort"
	"strings"

	"armbar/internal/isa"
	"armbar/internal/platform"
	"armbar/internal/sim"
	"armbar/internal/topo"
)

// Outcome is one terminal register assignment of a litmus run, e.g.
// "r0=1 r1=0".
type Outcome string

// Result is the histogram of outcomes over many seeded runs.
type Result struct {
	Test  string
	Mode  sim.Mode
	Runs  int
	Count map[Outcome]int
}

// Observed reports whether the outcome occurred at least once.
func (r *Result) Observed(o Outcome) bool { return r.Count[o] > 0 }

// String renders the histogram sorted by outcome.
func (r *Result) String() string {
	keys := make([]string, 0, len(r.Count))
	for k := range r.Count {
		keys = append(keys, string(k))
	}
	sort.Strings(keys)
	var b strings.Builder
	fmt.Fprintf(&b, "%s under %v (%d runs):\n", r.Test, r.Mode, r.Runs)
	for _, k := range keys {
		fmt.Fprintf(&b, "  %-24s %6d\n", k, r.Count[Outcome(k)])
	}
	return b.String()
}

// Test is a two-or-more-thread litmus program. Threads gets fresh
// simulated memory each run via the Env and records final register
// values with Report.
type Test struct {
	Name string
	// Cores to bind the threads to; len(Cores) == number of threads.
	Cores []topo.CoreID
	// Setup initializes shared memory; Alloc-ed addresses are passed to
	// the thread bodies.
	Lines int
	Init  func(m *sim.Machine, addr []uint64)
	// Body runs thread i; it returns that thread's register values in
	// order (nil if the thread reports nothing).
	Body func(i int, t *sim.Thread, addr []uint64) []uint64
	// Format renders the collected registers as a canonical outcome.
	Format func(regs [][]uint64) Outcome
	// FormatFinal, when set, renders the outcome from registers plus
	// the allocated addresses and final committed memory; it takes
	// precedence over Format.
	FormatFinal func(regs [][]uint64, addr []uint64, final func(addr uint64) uint64) Outcome
}

// Run executes the test `runs` times with distinct seeds and returns
// the outcome histogram.
func Run(p *platform.Platform, mode sim.Mode, test *Test, runs int, baseSeed int64) *Result {
	res := &Result{Test: test.Name, Mode: mode, Runs: runs, Count: make(map[Outcome]int)}
	for r := 0; r < runs; r++ {
		m := sim.New(sim.Config{Plat: p, Mode: mode, Seed: baseSeed + int64(r)})
		addr := make([]uint64, test.Lines)
		for i := range addr {
			addr[i] = m.Alloc(1)
		}
		if test.Init != nil {
			test.Init(m, addr)
		}
		regs := make([][]uint64, len(test.Cores))
		for i, core := range test.Cores {
			i := i
			m.Spawn(core, func(t *sim.Thread) {
				regs[i] = test.Body(i, t, addr)
			})
		}
		m.Run()
		if test.FormatFinal != nil {
			res.Count[test.FormatFinal(regs, addr, m.Directory().Committed)]++
		} else {
			res.Count[test.Format(regs)]++
		}
	}
	return res
}

// MessagePassing is the paper's Table-1 program: thread 0 stores
// data=23 then flag=DONE (with the given barrier between the stores, or
// isa.None); thread 1 spins on the flag then loads data (with the given
// barrier between the loads). The anomalous outcome is "local=0".
func MessagePassing(producerBarrier, consumerBarrier isa.Barrier) *Test {
	const done = 1
	return &Test{
		Name:  fmt.Sprintf("MP(%v,%v)", producerBarrier, consumerBarrier),
		Cores: []topo.CoreID{0, 4},
		Lines: 2, // addr[0]=data, addr[1]=flag
		Body: func(i int, t *sim.Thread, addr []uint64) []uint64 {
			data, flag := addr[0], addr[1]
			if i == 0 {
				t.Store(data, 23)
				t.Barrier(producerBarrier)
				t.Store(flag, done)
				return nil
			}
			// Warm the data line so the consumer holds a (potentially
			// stale) copy — the classic setup under which the anomaly
			// is observable.
			t.Load(data)
			for t.Load(flag) != done {
			}
			t.Barrier(consumerBarrier)
			return []uint64{t.Load(data)}
		},
		Format: FormatRegs(Reg("local", 1, 0)),
	}
}

// StoreBuffering is the classic SB test: both threads store to their
// own flag then load the other's. Outcome r0=0,r1=0 requires
// store-buffer forwarding/reordering and is allowed under both TSO and
// WMM; it is forbidden when both threads use a full barrier.
func StoreBuffering(barrier isa.Barrier) *Test {
	return &Test{
		Name:  fmt.Sprintf("SB(%v)", barrier),
		Cores: []topo.CoreID{0, 4},
		Lines: 2,
		Body: func(i int, t *sim.Thread, addr []uint64) []uint64 {
			mine, theirs := addr[i], addr[1-i]
			t.Store(mine, 1)
			t.Barrier(barrier)
			return []uint64{t.Load(theirs)}
		},
		Format: FormatRegs(Reg("r0", 0, 0), Reg("r1", 1, 0)),
	}
}

// CoWW checks per-location coherence: a single thread stores twice to
// one address; the final committed value must be the second store even
// with out-of-order drain.
func CoWW() *Test {
	return &Test{
		Name:  "CoWW",
		Cores: []topo.CoreID{0},
		Lines: 1,
		Body: func(i int, t *sim.Thread, addr []uint64) []uint64 {
			t.Store(addr[0], 1)
			t.Store(addr[0], 2)
			return []uint64{t.Load(addr[0])}
		},
		Format: FormatRegs(Reg("r0", 0, 0)),
	}
}

// MPWithAcquireRelease is message passing implemented with
// STLR (release) on the producer and LDAR (acquire) on the consumer:
// the anomaly must be forbidden even under WMM.
func MPWithAcquireRelease() *Test {
	const done = 1
	return &Test{
		Name:  "MP(STLR,LDAR)",
		Cores: []topo.CoreID{0, 4},
		Lines: 2,
		Body: func(i int, t *sim.Thread, addr []uint64) []uint64 {
			data, flag := addr[0], addr[1]
			if i == 0 {
				t.Store(data, 23)
				t.StoreRelease(flag, done)
				return nil
			}
			for t.LoadAcquire(flag) != done {
			}
			return []uint64{t.Load(data)}
		},
		Format: FormatRegs(Reg("local", 1, 0)),
	}
}
