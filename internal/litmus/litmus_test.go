package litmus

import (
	"testing"

	"armbar/internal/isa"
	"armbar/internal/platform"
	"armbar/internal/sim"
)

const testRuns = 300

func TestTable1MPAllowedUnderWMMForbiddenUnderTSO(t *testing.T) {
	p := platform.Kunpeng916()
	test := MessagePassing(isa.None, isa.None)

	wmm := Run(p, sim.WMM, test, testRuns, 1000)
	if !wmm.Observed("local=0") {
		t.Fatalf("WMM must allow the MP anomaly (local != 23); histogram:\n%s", wmm)
	}
	if !wmm.Observed("local=23") {
		t.Fatalf("WMM should also observe the intended outcome; histogram:\n%s", wmm)
	}

	tso := Run(p, sim.TSO, test, testRuns, 1000)
	if tso.Observed("local=0") {
		t.Fatalf("TSO must forbid the MP anomaly; histogram:\n%s", tso)
	}
}

func TestMPFixedByBarrierPairs(t *testing.T) {
	p := platform.Kunpeng916()
	pairs := []struct{ prod, cons isa.Barrier }{
		{isa.DMBSt, isa.DMBLd},
		{isa.DMBFull, isa.DMBFull},
		{isa.DMBSt, isa.AddrDep},
		{isa.DSBFull, isa.DSBFull},
		{isa.DMBSt, isa.CtrlISB},
	}
	for _, pair := range pairs {
		test := MessagePassing(pair.prod, pair.cons)
		res := Run(p, sim.WMM, test, testRuns, 2000)
		if res.Observed("local=0") {
			t.Errorf("%v/%v must forbid the anomaly; histogram:\n%s", pair.prod, pair.cons, res)
		}
	}
}

func TestMPProducerBarrierAloneInsufficient(t *testing.T) {
	// With only the producer fenced, the consumer may still read a
	// stale data value (load reordering).
	p := platform.Kunpeng916()
	res := Run(p, sim.WMM, MessagePassing(isa.DMBSt, isa.None), 2000, 300)
	if !res.Observed("local=0") {
		t.Skipf("anomaly did not surface in %d runs (timing-dependent); histogram:\n%s", 2000, res)
	}
}

func TestMPAcquireRelease(t *testing.T) {
	p := platform.Kunpeng916()
	res := Run(p, sim.WMM, MPWithAcquireRelease(), testRuns, 4000)
	if res.Observed("local=0") {
		t.Fatalf("STLR/LDAR must forbid the anomaly; histogram:\n%s", res)
	}
}

func TestCoherenceWW(t *testing.T) {
	for _, mode := range []sim.Mode{sim.WMM, sim.TSO} {
		res := Run(platform.Kunpeng916(), mode, CoWW(), 100, 5000)
		if res.Observed("r0=1") {
			t.Fatalf("per-location coherence violated under %v:\n%s", mode, res)
		}
		if !res.Observed("r0=2") {
			t.Fatalf("expected r0=2 under %v:\n%s", mode, res)
		}
	}
}

func TestStoreBufferingFencedForbidden(t *testing.T) {
	p := platform.Kunpeng916()
	fenced := Run(p, sim.WMM, StoreBuffering(isa.DSBFull), testRuns, 6000)
	if fenced.Observed("r0=0 r1=0") {
		t.Fatalf("SB with DSB must forbid r0=r1=0:\n%s", fenced)
	}
}
