package litmus

import (
	"testing"

	"armbar/internal/isa"
	"armbar/internal/platform"
	"armbar/internal/sim"
)

func TestLoadBufferingNoThinAir(t *testing.T) {
	// r0=r1=1 must never appear: values cannot come out of thin air.
	p := platform.Kunpeng916()
	for _, dep := range []isa.Barrier{isa.None, isa.DataDep} {
		for _, mode := range []sim.Mode{sim.WMM, sim.TSO} {
			res := Run(p, mode, LoadBuffering(dep), 500, 7000)
			if res.Observed("r0=1 r1=1") {
				t.Errorf("LB(%v) under %v produced out-of-thin-air:\n%s", dep, mode, res)
			}
		}
	}
}

func TestCoRRReadCoherence(t *testing.T) {
	// Per-location coherence with an address dependency: r1=1, r2=0
	// (reads going backwards) must be forbidden.
	p := platform.Kunpeng916()
	for _, mode := range []sim.Mode{sim.WMM, sim.TSO} {
		res := Run(p, mode, CoRR(), 1000, 8000)
		if res.Observed("r1=1 r2=0") {
			t.Errorf("CoRR violated under %v:\n%s", mode, res)
		}
	}
}

func TestSBResolvedByAtomics(t *testing.T) {
	// Acquire-release swaps drain the store buffer, so the classic SB
	// outcome disappears.
	p := platform.Kunpeng916()
	res := Run(p, sim.WMM, SBWithRMW(), 500, 9000)
	if res.Observed("r0=0 r1=0") {
		t.Errorf("SB with SWPAL must forbid r0=r1=0:\n%s", res)
	}
}

func TestSBPlainAllowedUnderBothModels(t *testing.T) {
	// Without any ordering, r0=r1=0 is allowed under TSO *and* WMM —
	// the one relaxation x86 shares with ARM.
	p := platform.Kunpeng916()
	for _, mode := range []sim.Mode{sim.WMM, sim.TSO} {
		res := Run(p, mode, StoreBuffering(isa.None), 800, 10000)
		if !res.Observed("r0=0 r1=0") {
			t.Logf("note: SB outcome did not surface under %v in 800 runs:\n%s", mode, res)
		}
	}
}
