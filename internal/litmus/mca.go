package litmus

import (
	"fmt"

	"armbar/internal/isa"
	"armbar/internal/sim"
	"armbar/internal/topo"
)

// WRC is the write-to-read-causality test (three threads): T0 stores
// x=1; T1 reads x then stores y=1 (with the given ordering between);
// T2 reads y then x (with the given ordering). The outcome
// "T1 saw x=1, T2 saw y=1 but x=0" breaks causality; it is forbidden
// on multi-copy-atomic machines (ARMv8 per the paper's reference [36])
// when both threads order their accesses.
func WRC(t1Order, t2Order isa.Barrier) *Test {
	return &Test{
		Name:  fmt.Sprintf("WRC(%v,%v)", t1Order, t2Order),
		Cores: []topo.CoreID{0, 4, 32},
		Lines: 2, // x, y
		Body: func(i int, t *sim.Thread, addr []uint64) []uint64 {
			x, y := addr[0], addr[1]
			switch i {
			case 0:
				t.Store(x, 1)
				return nil
			case 1:
				r := t.Load(x)
				t.Barrier(t1Order)
				if r == 1 {
					t.Store(y, 1)
				}
				return []uint64{r}
			default:
				ry := t.Load(y)
				t.Barrier(t2Order)
				rx := t.Load(x)
				return []uint64{ry, rx}
			}
		},
		Format: FormatRegs(Reg("t1x", 1, 0), Reg("t2y", 2, 0), Reg("t2x", 2, 1)),
	}
}

// IRIW is the independent-reads-of-independent-writes test (four
// threads): writers store x and y; two readers read the pair in
// opposite orders (each pair ordered by the given barrier). Observing
// the writes in contradictory orders (r-outcome 1,0,1,0) requires
// non-multi-copy-atomic stores and must be forbidden by this model,
// which — like ARMv8 — is multi-copy atomic: a store becomes visible
// to all other cores at one commit instant.
func IRIW(order isa.Barrier) *Test {
	return &Test{
		Name:  fmt.Sprintf("IRIW(%v)", order),
		Cores: []topo.CoreID{0, 32, 4, 36},
		Lines: 2,
		Body: func(i int, t *sim.Thread, addr []uint64) []uint64 {
			x, y := addr[0], addr[1]
			switch i {
			case 0:
				t.Store(x, 1)
				return nil
			case 1:
				t.Store(y, 1)
				return nil
			case 2:
				r1 := t.Load(x)
				t.Barrier(order)
				r2 := t.Load(y)
				return []uint64{r1, r2}
			default:
				r3 := t.Load(y)
				t.Barrier(order)
				r4 := t.Load(x)
				return []uint64{r3, r4}
			}
		},
		Format: FormatRegs(Reg("r1", 2, 0), Reg("r2", 2, 1), Reg("r3", 3, 0), Reg("r4", 3, 1)),
	}
}
