package litmus

import (
	"testing"

	"armbar/internal/isa"
	"armbar/internal/platform"
	"armbar/internal/sim"
)

func TestWRCCausalityWithOrdering(t *testing.T) {
	// With both readers ordered (address dependency / acquire-class
	// barriers), the causality-breaking outcome must be forbidden on
	// this multi-copy-atomic model.
	p := platform.Kunpeng916()
	for _, pair := range [][2]isa.Barrier{
		{isa.AddrDep, isa.AddrDep},
		{isa.DMBFull, isa.DMBFull},
		{isa.DMBLd, isa.DMBLd},
	} {
		res := Run(p, sim.WMM, WRC(pair[0], pair[1]), 600, 11000)
		if res.Observed("t1x=1 t2y=1 t2x=0") {
			t.Errorf("WRC(%v,%v) broke causality:\n%s", pair[0], pair[1], res)
		}
	}
}

func TestIRIWMultiCopyAtomicity(t *testing.T) {
	// ARMv8 is multi-copy atomic (the paper's §2.3 note on ACE5/MCA):
	// the two readers may never observe the independent writes in
	// contradictory orders once their own loads are ordered.
	p := platform.Kunpeng916()
	for _, order := range []isa.Barrier{isa.AddrDep, isa.DMBLd, isa.DMBFull} {
		res := Run(p, sim.WMM, IRIW(order), 800, 12000)
		if res.Observed("r1=1 r2=0 r3=1 r4=0") {
			t.Errorf("IRIW(%v) violated multi-copy atomicity:\n%s", order, res)
		}
	}
}

func TestIRIWUnorderedReadersMayDisagree(t *testing.T) {
	// Without per-reader ordering the contradictory view is just local
	// load reordering, which WMM allows; record whether it surfaced
	// (allowed, not required).
	p := platform.Kunpeng916()
	res := Run(p, sim.WMM, IRIW(isa.None), 800, 13000)
	t.Logf("IRIW(no order) histogram:\n%s", res)
}
