package litmus

import (
	"strconv"
	"strings"
)

// This file is the one outcome-rendering path. Every Format /
// FormatFinal closure in this package and every outcome the explore
// package enumerates goes through Fields, so the simulator's sampled
// histograms and the explorer's reachable sets compare byte-for-byte.

// Fields renders "name=value" pairs separated by single spaces — the
// canonical Outcome encoding ("r0=1 r1=0").
func Fields(names []string, vals ...uint64) Outcome {
	if len(names) != len(vals) {
		panic("litmus: Fields name/value count mismatch")
	}
	var b strings.Builder
	for i, n := range names {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(n)
		b.WriteByte('=')
		b.WriteString(strconv.FormatUint(vals[i], 10))
	}
	return Outcome(b.String())
}

// Ref selects one rendered outcome field: either register Reg of
// thread Thread, or — when Mem is true — the final committed value of
// line Line.
type Ref struct {
	Name   string
	Thread int
	Reg    int
	Mem    bool
	Line   int
}

// Reg names register r of thread t.
func Reg(name string, t, r int) Ref { return Ref{Name: name, Thread: t, Reg: r} }

// Mem names the final committed value of allocated line l.
func Mem(name string, l int) Ref { return Ref{Name: name, Mem: true, Line: l} }

// FormatRegs builds a Format closure rendering the given register
// refs (memory refs are not allowed: use FormatMem).
func FormatRegs(refs ...Ref) func(regs [][]uint64) Outcome {
	names := refNames(refs)
	return func(regs [][]uint64) Outcome {
		vals := make([]uint64, len(refs))
		for i, f := range refs {
			if f.Mem {
				panic("litmus: FormatRegs used with a Mem ref")
			}
			vals[i] = regs[f.Thread][f.Reg]
		}
		return Fields(names, vals...)
	}
}

// FormatMem builds a FormatFinal closure rendering register and
// final-memory refs in order.
func FormatMem(refs ...Ref) func(regs [][]uint64, addr []uint64, final func(uint64) uint64) Outcome {
	names := refNames(refs)
	return func(regs [][]uint64, addr []uint64, final func(uint64) uint64) Outcome {
		vals := make([]uint64, len(refs))
		for i, f := range refs {
			if f.Mem {
				vals[i] = final(addr[f.Line])
			} else {
				vals[i] = regs[f.Thread][f.Reg]
			}
		}
		return Fields(names, vals...)
	}
}

func refNames(refs []Ref) []string {
	names := make([]string, len(refs))
	for i, f := range refs {
		names[i] = f.Name
	}
	return names
}
