package litmus

import (
	"testing"

	"armbar/internal/isa"
	"armbar/internal/platform"
	"armbar/internal/sim"
)

func TestSShapeForbiddenWhenOrdered(t *testing.T) {
	// S: with T0's stores fenced and T1's read->store dependency, the
	// outcome "T1 saw y=1 yet x ends 2" is forbidden: x=1 must be
	// coherence-last.
	p := platform.Kunpeng916()
	res := Run(p, sim.WMM, STest(isa.DMBSt, isa.DataDep), 800, 20000)
	if res.Observed("r=1 x=2") {
		t.Fatalf("S shape violated:\n%s", res)
	}
}

func TestTwoPlusTwoWForbiddenWhenFenced(t *testing.T) {
	// 2+2W with DMB st pairs: both locations ending at their first
	// writer's value (x=1 ∧ y=1) is forbidden.
	p := platform.Kunpeng916()
	res := Run(p, sim.WMM, TwoPlusTwoW(isa.DMBSt), 800, 21000)
	if res.Observed("x=1 y=1") {
		t.Fatalf("2+2W violated:\n%s", res)
	}
}

func TestTwoPlusTwoWAllowedUnfenced(t *testing.T) {
	// Unfenced, the same outcome is allowed under WMM (non-FIFO drain);
	// just record whether it surfaced.
	p := platform.Kunpeng916()
	res := Run(p, sim.WMM, TwoPlusTwoW(isa.None), 800, 22000)
	t.Logf("2+2W unfenced histogram:\n%s", res)
}

func TestRShapeForbiddenWhenFenced(t *testing.T) {
	// R with full fences: y final 2 (T1's store after T0's) while T1
	// read x=0 is forbidden.
	p := platform.Kunpeng916()
	res := Run(p, sim.WMM, RTest(isa.DMBFull), 800, 23000)
	if res.Observed("r=0 y=2") {
		t.Fatalf("R shape violated:\n%s", res)
	}
}
