package absmodel

import (
	"armbar/internal/isa"
	"armbar/internal/sim"
)

// Generalized closed-form fence requirements: where fencereq.go keys
// the classic shapes by name, generated litmus shapes (the explore
// package's fuzzer) carry their ordering obligations explicitly, one
// FenceClause per hazard edge, each naming the slot that sits between
// the two accesses in program order. The prediction machinery is the
// same ordering algebra — a clause is discharged by the pipeline's
// free orderings or by the barrier occupying its slot — so the fuzzer
// checks the explorer's operational verdict against this axiomatic
// one on shapes neither was written for. This package stays
// independent of the explorer: the fuzzer imports absmodel, never the
// reverse.

// GenSafe predicts whether a placement is safe given the shape's
// explicit ordering obligations: every clause must be discharged by
// the pipeline or by the barrier placed in its slot. slots lists the
// barrier occupying each slot, isa.None where the placement leaves it
// empty. A shape with no clauses is safe under every placement.
func GenSafe(clauses []FenceClause, slots []isa.Barrier, mode sim.Mode) bool {
	for _, c := range clauses {
		b := isa.None
		if c.Slot < len(slots) {
			b = slots[c.Slot]
		}
		if !orderedUnder(b, c.From, c.To, mode) {
			return false
		}
	}
	return true
}
