// Package absmodel implements the paper's abstracted models
// (Algorithm 1): a loop that performs up to two memory operations on
// ping-ponging cache lines, separated by a configurable number of nops,
// with an order-preserving approach inserted either strictly after the
// first memory operation (BARRIER_LOC_1) or after the nops
// (BARRIER_LOC_2). Two threads bound to configurable cores execute the
// loop over the same lines so the accesses are remote memory
// references, exactly as in the paper's §3.2 setup.
//
// The models drive Figures 2, 3, 4 and 5.
package absmodel

import (
	"fmt"

	"armbar/internal/isa"
	"armbar/internal/platform"
	"armbar/internal/prog"
	"armbar/internal/sim"
	"armbar/internal/topo"
)

// MemPattern selects which memory operations surround the barrier.
type MemPattern int

const (
	// NoMem removes all memory operations (Figure 2: intrinsic
	// overhead).
	NoMem MemPattern = iota
	// TwoStores puts a store before and after the barrier (Figure 3:
	// order-preserving with the bus involved).
	TwoStores
	// LoadStore puts a load before and a store after the barrier
	// (Figure 5: order-preserving without the bus involved).
	LoadStore
	// LoadLoad puts loads on both sides of the barrier, the Table-3
	// load->loads row (an extension past the paper's three patterns).
	LoadLoad
)

func (p MemPattern) String() string {
	switch p {
	case NoMem:
		return "no-mem"
	case TwoStores:
		return "two-stores"
	case LoadStore:
		return "load-store"
	case LoadLoad:
		return "load-load"
	default:
		return fmt.Sprintf("MemPattern(%d)", int(p))
	}
}

// Location says where the barrier sits relative to the nop padding.
type Location int

const (
	// Loc1 is BARRIER_LOC_1: strictly after the first memory operation.
	Loc1 Location = iota + 1
	// Loc2 is BARRIER_LOC_2: after the nops, just before the second
	// memory operation.
	Loc2
)

// Variant is one legend entry of the paper's figures: an
// order-preserving approach plus its insertion point. For operand
// barriers (LDAR, STLR) and dependencies the location is implicit
// (they attach to the access itself) and Loc is ignored.
type Variant struct {
	Barrier isa.Barrier
	Loc     Location
}

// Name renders the paper's legend label ("DMB full-1", "STLR", ...).
func (v Variant) Name() string {
	if v.Barrier == isa.None || v.Barrier.IsDependency() ||
		v.Barrier == isa.LDAR || v.Barrier == isa.STLR {
		return v.Barrier.String()
	}
	return fmt.Sprintf("%s-%d", v.Barrier, int(v.Loc))
}

// Config describes one run of the abstracted model.
type Config struct {
	Plat    *platform.Platform
	Cores   [2]topo.CoreID // where the two threads are bound
	Pattern MemPattern
	Variant Variant
	Nops    int
	Iters   int // loop iterations per thread
	Lines   int // working-set lines per operand array (default 16)
	Seed    int64
	// Engine selects the execution engine; the zero value resolves to
	// the process-wide default (compiled). Both engines produce
	// identical results — see TestEnginesAgree.
	Engine sim.Engine
}

// Result is the outcome of one model run.
type Result struct {
	Config  Config
	Cycles  float64
	Loops   int // total loops executed by both threads
	Stats   sim.Stats
	Elapsed float64 // seconds at the platform frequency
}

// Throughput returns loops per second across both threads.
func (r Result) Throughput() float64 {
	if r.Elapsed == 0 {
		return 0
	}
	return float64(r.Loops) / r.Elapsed
}

// Run executes the abstracted model and returns its result.
func Run(cfg Config) Result {
	if cfg.Iters == 0 {
		cfg.Iters = 1500
	}
	if cfg.Lines == 0 {
		cfg.Lines = 16
	}
	m := sim.New(sim.Config{Plat: cfg.Plat, Mode: sim.WMM, Seed: cfg.Seed})
	arrA := m.Alloc(cfg.Lines)
	arrB := m.Alloc(cfg.Lines)
	if cfg.Engine.Resolve() == sim.EngineCompiled {
		// Both threads execute the same op sequence over the same
		// operand arrays: one program, two executors.
		p := compile(cfg, arrA, arrB)
		for i := 0; i < 2; i++ {
			m.SpawnProgram(cfg.Cores[i], p)
		}
	} else {
		for i := 0; i < 2; i++ {
			m.Spawn(cfg.Cores[i], func(t *sim.Thread) {
				body(t, cfg, arrA, arrB)
			})
		}
	}
	cycles := m.Run()
	return Result{
		Config:  cfg,
		Cycles:  cycles,
		Loops:   2 * cfg.Iters,
		Stats:   m.Stats(),
		Elapsed: m.Seconds(cycles),
	}
}

// body is Algorithm 1: both threads walk the same line arrays so the
// target lines keep transferring between the cores.
func body(t *sim.Thread, cfg Config, arrA, arrB uint64) {
	v := cfg.Variant
	for i := 0; i < cfg.Iters; i++ {
		off := uint64(i%cfg.Lines) * 64
		a, b := arrA+off, arrB+off

		// add x0/x1 (address bumps): two trivial ALU ops.
		t.Nops(2)

		// First memory operation (line 4 of Algorithm 1).
		switch cfg.Pattern {
		case TwoStores:
			t.Store(a, uint64(i))
		case LoadStore, LoadLoad:
			switch v.Barrier {
			case isa.LDAR:
				t.LoadAcquire(a)
			case isa.LDAPR:
				t.LoadAcquirePC(a)
			default:
				t.Load(a)
			}
		}

		// BARRIER_LOC_1 (line 5) — dependencies attach to the access,
		// so they execute here too.
		if at1 := v.Loc == Loc1 || v.Barrier.IsDependency(); at1 && standalone(v.Barrier) {
			t.Barrier(v.Barrier)
		}

		// NOPs (line 6).
		t.Nops(cfg.Nops)

		// BARRIER_LOC_2 (line 7).
		if v.Loc == Loc2 && standalone(v.Barrier) {
			t.Barrier(v.Barrier)
		}

		// Second memory operation (line 8).
		switch cfg.Pattern {
		case TwoStores, LoadStore:
			if v.Barrier == isa.STLR {
				t.StoreRelease(b, uint64(i))
			} else {
				t.Store(b, uint64(i))
			}
		case LoadLoad:
			t.Load(b)
		}

		// Loop bookkeeping (lines 9-10): add + cmp.
		t.Nops(2)
	}
}

// compile lowers Algorithm 1 to a micro-op program: the iteration's
// line offsets become address rings indexed by the loop counter, the
// stored iteration index becomes a counter value, and nop padding
// becomes pre-scaled work cycles. The op sequence matches body() op
// for op — the differential tests compare the two engines exactly.
func compile(cfg Config, arrA, arrB uint64) *prog.Program {
	v := cfg.Variant
	b := prog.NewBuilder(cfg.Plat.Cost.IssueWidth)
	ringA := make([]uint64, cfg.Lines)
	ringB := make([]uint64, cfg.Lines)
	for k := 0; k < cfg.Lines; k++ {
		ringA[k] = arrA + uint64(k)*64
		ringB[k] = arrB + uint64(k)*64
	}
	tabA := b.Table(ringA)
	tabB := b.Table(ringB)

	i := b.Loop(cfg.Iters)
	a, bb := prog.Ring(tabA, i), prog.Ring(tabB, i)

	// add x0/x1 (address bumps): two trivial ALU ops.
	b.Nops(2)

	// First memory operation (line 4 of Algorithm 1).
	switch cfg.Pattern {
	case TwoStores:
		b.Store(a, prog.Counter(i))
	case LoadStore, LoadLoad:
		switch v.Barrier {
		case isa.LDAR:
			b.LoadAcquire(a)
		case isa.LDAPR:
			b.LoadAcquirePC(a)
		default:
			b.Load(a)
		}
	}

	// BARRIER_LOC_1 (line 5) — dependencies attach to the access, so
	// they execute here too.
	if at1 := v.Loc == Loc1 || v.Barrier.IsDependency(); at1 && standalone(v.Barrier) {
		b.Barrier(v.Barrier)
	}

	// NOPs (line 6).
	b.Nops(cfg.Nops)

	// BARRIER_LOC_2 (line 7).
	if v.Loc == Loc2 && standalone(v.Barrier) {
		b.Barrier(v.Barrier)
	}

	// Second memory operation (line 8).
	switch cfg.Pattern {
	case TwoStores, LoadStore:
		if v.Barrier == isa.STLR {
			b.StoreRelease(bb, prog.Counter(i))
		} else {
			b.Store(bb, prog.Counter(i))
		}
	case LoadLoad:
		b.Load(bb)
	}

	// Loop bookkeeping (lines 9-10): add + cmp.
	b.Nops(2)
	b.EndLoop()
	return b.MustBuild()
}

// standalone reports whether the barrier is inserted as its own
// instruction (everything except the operand barriers and None).
func standalone(b isa.Barrier) bool {
	switch b {
	case isa.None, isa.LDAR, isa.STLR:
		return false
	}
	return true
}

// Figure2Variants are the legend entries of Figure 2 (intrinsic
// overhead; operand barriers excluded since there are no operands).
func Figure2Variants() []Variant {
	return []Variant{
		{Barrier: isa.None},
		{Barrier: isa.DMBFull, Loc: Loc2},
		{Barrier: isa.DMBLd, Loc: Loc2},
		{Barrier: isa.DMBSt, Loc: Loc2},
		{Barrier: isa.DSBFull, Loc: Loc2},
		{Barrier: isa.DSBLd, Loc: Loc2},
		{Barrier: isa.DSBSt, Loc: Loc2},
		{Barrier: isa.ISB, Loc: Loc2},
	}
}

// Figure3Variants are the legend entries of Figure 3 (two stores).
func Figure3Variants() []Variant {
	return []Variant{
		{Barrier: isa.None},
		{Barrier: isa.DMBFull, Loc: Loc1},
		{Barrier: isa.DMBFull, Loc: Loc2},
		{Barrier: isa.DMBSt, Loc: Loc1},
		{Barrier: isa.DMBSt, Loc: Loc2},
		{Barrier: isa.DSBFull, Loc: Loc1},
		{Barrier: isa.DSBFull, Loc: Loc2},
		{Barrier: isa.DSBSt, Loc: Loc1},
		{Barrier: isa.DSBSt, Loc: Loc2},
		{Barrier: isa.STLR},
	}
}

// Figure5Variants are the legend entries of Figure 5 (load + store).
func Figure5Variants() []Variant {
	return []Variant{
		{Barrier: isa.None},
		{Barrier: isa.DMBFull, Loc: Loc1},
		{Barrier: isa.DMBFull, Loc: Loc2},
		{Barrier: isa.DMBLd, Loc: Loc1},
		{Barrier: isa.DMBLd, Loc: Loc2},
		{Barrier: isa.DSBFull, Loc: Loc1},
		{Barrier: isa.DSBFull, Loc: Loc2},
		{Barrier: isa.DSBLd, Loc: Loc1},
		{Barrier: isa.DSBLd, Loc: Loc2},
		{Barrier: isa.LDAR},
		{Barrier: isa.STLR},
		{Barrier: isa.CtrlISB},
		{Barrier: isa.CtrlDep},
		{Barrier: isa.DataDep},
		{Barrier: isa.AddrDep},
	}
}

// Binding names a standard thread placement from the paper.
type Binding struct {
	Label string
	Cores [2]topo.CoreID
}

// Bindings returns the paper's placements for a platform: same NUMA
// node and cross node for the server; big-cluster cores for the mobile
// SoCs; plain different cores for the Pi.
func Bindings(p *platform.Platform) []Binding {
	if p.Sys.NumNodes() > 1 {
		n0 := p.Sys.NodeCores(0)
		n1 := p.Sys.NodeCores(1)
		return []Binding{
			{Label: "Same Node", Cores: [2]topo.CoreID{n0[0], n0[4]}},
			{Label: "Cross Nodes", Cores: [2]topo.CoreID{n0[0], n1[0]}},
		}
	}
	big := p.Sys.CoresOfClass(topo.Big)
	return []Binding{{Label: "Different Cores", Cores: [2]topo.CoreID{big[0], big[1]}}}
}

// TippingPoint searches nop counts for the paper's Figure-4 situation:
// the smallest padding at which DMB full-2 reaches at least frac of the
// no-barrier throughput. It returns that nop count and the throughput
// ratio DMB full-1 : DMB full-2 there (≈ 0.5 per Obs 2).
func TippingPoint(p *platform.Platform, cores [2]topo.CoreID, frac float64, seed int64) (nops int, ratio float64) {
	base := func(n int, v Variant) float64 {
		r := Run(Config{Plat: p, Cores: cores, Pattern: TwoStores, Variant: v, Nops: n, Seed: seed})
		return r.Throughput()
	}
	for n := 25; n <= 4000; n = n * 5 / 4 {
		none := base(n, Variant{Barrier: isa.None})
		full2 := base(n, Variant{Barrier: isa.DMBFull, Loc: Loc2})
		if full2 >= frac*none {
			full1 := base(n, Variant{Barrier: isa.DMBFull, Loc: Loc1})
			return n, full1 / full2
		}
	}
	return -1, 0
}
