package absmodel

import (
	"fmt"
	"strings"

	"armbar/internal/a64"
	"armbar/internal/isa"
	"armbar/internal/sim"
)

// RunA64 executes the two-store abstracted model from the paper's
// actual Algorithm-1 assembly (built by Algorithm1Source) instead of
// the Go-closure body — a cross-validation path: both forms must agree
// on every variant's throughput within small tolerance.
func RunA64(cfg Config) (Result, error) {
	if cfg.Pattern != TwoStores {
		return Result{}, fmt.Errorf("absmodel: RunA64 supports the two-store pattern only")
	}
	if cfg.Iters == 0 {
		cfg.Iters = 1500
	}
	if cfg.Lines == 0 {
		cfg.Lines = 16
	}
	src := Algorithm1Source(cfg.Variant, cfg.Nops)
	prog, err := a64.Parse(src)
	if err != nil {
		return Result{}, err
	}
	m := sim.New(sim.Config{Plat: cfg.Plat, Mode: sim.WMM, Seed: cfg.Seed})
	arrA := m.Alloc(cfg.Lines)
	arrB := m.Alloc(cfg.Lines)
	var execErr error
	for i := 0; i < 2; i++ {
		m.Spawn(cfg.Cores[i], func(t *sim.Thread) {
			iters := cfg.Iters
			for iters > 0 {
				batch := cfg.Lines
				if batch > iters {
					batch = iters
				}
				var regs a64.Regs
				regs[0] = arrA - 64 // the loop pre-increments
				regs[1] = arrB - 64
				regs[2] = 1
				regs[5] = uint64(batch)
				if _, _, err := prog.Exec(t, regs, 0); err != nil && execErr == nil {
					execErr = err
				}
				iters -= batch
			}
		})
	}
	cycles := m.Run()
	if execErr != nil {
		return Result{}, execErr
	}
	return Result{
		Config:  cfg,
		Cycles:  cycles,
		Loops:   2 * cfg.Iters,
		Stats:   m.Stats(),
		Elapsed: m.Seconds(cycles),
	}, nil
}

// Algorithm1Source renders the paper's Algorithm-1 listing for the
// two-store pattern with the chosen barrier variant and nop padding.
// Registers: x0/x1 walk the two arrays, x2 counts, x5 holds BUFSIZE.
func Algorithm1Source(v Variant, nops int) string {
	var b strings.Builder
	b.WriteString("loop:\n")
	b.WriteString("\tadd x0, x0, #64\n")
	b.WriteString("\tadd x1, x1, #64\n")
	b.WriteString("\tstr x3, [x0]\n")
	if ins := barrierInsn(v.Barrier); ins != "" && v.Loc == Loc1 {
		b.WriteString("\t" + ins + "\n")
	}
	for i := 0; i < nops; i++ {
		b.WriteString("\tnop\n")
	}
	if ins := barrierInsn(v.Barrier); ins != "" && v.Loc == Loc2 {
		b.WriteString("\t" + ins + "\n")
	}
	if v.Barrier == isa.STLR {
		b.WriteString("\tstlr x4, [x1]\n")
	} else {
		b.WriteString("\tstr x4, [x1]\n")
	}
	b.WriteString("\tadd x2, x2, #1\n")
	b.WriteString("\tcmp x2, x5\n")
	b.WriteString("\tble loop\n")
	return b.String()
}

// barrierInsn renders the standalone barrier mnemonic ("" for operand
// barriers and None).
func barrierInsn(b isa.Barrier) string {
	switch b {
	case isa.DMBFull:
		return "dmb ish"
	case isa.DMBSt:
		return "dmb ishst"
	case isa.DMBLd:
		return "dmb ishld"
	case isa.DSBFull:
		return "dsb ish"
	case isa.DSBSt:
		return "dsb ishst"
	case isa.DSBLd:
		return "dsb ishld"
	case isa.ISB:
		return "isb"
	default:
		return ""
	}
}
