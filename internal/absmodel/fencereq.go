package absmodel

import (
	"armbar/internal/isa"
	"armbar/internal/sim"
)

// Closed-form fence requirements for the explore package's litmus
// shapes. Each shape's forbidden outcome is prevented exactly when a
// fixed set of ordering clauses holds, each clause discharged either
// by the pipeline (loads never retire after program-order-later
// stores issue; under TSO the FIFO buffer adds store-store and the
// staleness-free directory adds load-load) or by the barrier placed
// in the named slot, per the isa ordering algebra. This is derived
// from the axiomatic reading of each shape — independent machinery
// from the explorer's operational state search — so the two act as
// oracles for each other (see internal/explore's agreement tests).

// FenceClause is one ordering obligation: the barrier in slot Slot
// (or the pipeline) must order From-accesses before To-accesses.
type FenceClause struct {
	Slot int
	From isa.Access
	To   isa.Access
}

// fenceNeeds maps explore shape names to their ordering obligations.
// Slots index the shape's slot list. Shapes absent from the map have
// no obligations: their forbidden outcome is unreachable however the
// slots are filled.
var fenceNeeds = map[string][]FenceClause{
	"MP":     {{0, isa.Store, isa.Store}, {1, isa.Load, isa.Load}},
	"SB":     {{0, isa.Store, isa.Load}, {1, isa.Store, isa.Load}},
	"S":      {{0, isa.Store, isa.Store}},
	"R":      {{0, isa.Store, isa.Store}, {1, isa.Store, isa.Load}},
	"2+2W":   {{0, isa.Store, isa.Store}, {1, isa.Store, isa.Store}},
	"LB":     nil,
	"WRC":    {{1, isa.Load, isa.Load}},
	"CoRR":   {{0, isa.Load, isa.Load}},
	"CoWW":   nil,
	"SB+RMW": nil,
	"chan":   {{1, isa.Store, isa.Store}, {2, isa.Load, isa.Load}},
	"pilot":  nil,
}

// KnownShape reports whether the closed-form table covers the shape.
func KnownShape(name string) bool {
	_, ok := fenceNeeds[name]
	return ok
}

// FenceSafe predicts whether a placement of the named shape is safe:
// every ordering clause must be discharged by the pipeline or by the
// placed slot barrier. slots lists the barrier occupying each slot,
// isa.None where the placement leaves it empty.
func FenceSafe(shape string, slots []isa.Barrier, mode sim.Mode) bool {
	return GenSafe(fenceNeeds[shape], slots, mode)
}

// orderedUnder reports whether accesses of kind from stay ordered
// before accesses of kind to, given barrier b between them.
func orderedUnder(b isa.Barrier, from, to isa.Access, mode sim.Mode) bool {
	if freeOrder(from, to, mode) {
		return true
	}
	// DSB variants block every later instruction until the drain
	// completes, which operationally orders all access pairs even
	// where the pure DMB algebra would not.
	if b.BlocksAllInstructions() {
		return true
	}
	return b.Orders(from, to)
}

// freeOrder reports the orderings the pipeline supplies with no
// barrier at all: loads complete before later stores issue (in-order
// issue), and under TSO the FIFO store buffer preserves store-store
// order while the staleness-free directory preserves load-load
// order. Only store-load needs a barrier under TSO.
func freeOrder(from, to isa.Access, mode sim.Mode) bool {
	if from == isa.Load && to == isa.Store {
		return true
	}
	if mode == sim.TSO {
		return !(from == isa.Store && to == isa.Load)
	}
	return false
}
