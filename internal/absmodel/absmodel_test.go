package absmodel

import (
	"strings"
	"testing"

	"armbar/internal/isa"
	"armbar/internal/platform"
	"armbar/internal/topo"
)

func kunpengSameNode() ([2]topo.CoreID, *platform.Platform) {
	p := platform.Kunpeng916()
	n0 := p.Sys.NodeCores(0)
	return [2]topo.CoreID{n0[0], n0[4]}, p
}

func kunpengCrossNode() ([2]topo.CoreID, *platform.Platform) {
	p := platform.Kunpeng916()
	return [2]topo.CoreID{p.Sys.NodeCores(0)[0], p.Sys.NodeCores(1)[0]}, p
}

func tput(p *platform.Platform, cores [2]topo.CoreID, pat MemPattern, v Variant, nops int) float64 {
	return Run(Config{Plat: p, Cores: cores, Pattern: pat, Variant: v, Nops: nops, Seed: 1}).Throughput()
}

func TestObs1IntrinsicOverheadOrdering(t *testing.T) {
	// Figure 2 / Obs 1: with no memory operations, DSB >> ISB > DMB ≈
	// none, and DMB/DSB options do not differ among themselves.
	cores, p := kunpengSameNode()
	none := tput(p, cores, NoMem, Variant{Barrier: isa.None}, 30)
	dmb := tput(p, cores, NoMem, Variant{Barrier: isa.DMBFull, Loc: Loc2}, 30)
	dmbSt := tput(p, cores, NoMem, Variant{Barrier: isa.DMBSt, Loc: Loc2}, 30)
	isb := tput(p, cores, NoMem, Variant{Barrier: isa.ISB, Loc: Loc2}, 30)
	dsb := tput(p, cores, NoMem, Variant{Barrier: isa.DSBFull, Loc: Loc2}, 30)
	dsbLd := tput(p, cores, NoMem, Variant{Barrier: isa.DSBLd, Loc: Loc2}, 30)

	if !(dsb < isb && isb < dmb) {
		t.Errorf("Obs1 ordering broken: DSB=%g ISB=%g DMB=%g", dsb, isb, dmb)
	}
	if dmb < 0.5*none {
		t.Errorf("DMB without memory ops should be light: DMB=%g none=%g", dmb, none)
	}
	if rel := dmbSt / dmb; rel < 0.8 || rel > 1.25 {
		t.Errorf("DMB options should not differ without memory ops: st/full=%g", rel)
	}
	if rel := dsbLd / dsb; rel < 0.8 || rel > 1.25 {
		t.Errorf("DSB options should not differ without memory ops: ld/full=%g", rel)
	}
}

func TestObs2BarrierLocationMatters(t *testing.T) {
	// Figure 3 / Obs 2: a barrier strictly after the RMR (Loc1) hurts
	// far more than one after the nop padding (Loc2).
	cores, p := kunpengCrossNode()
	const nops = 700
	full1 := tput(p, cores, TwoStores, Variant{Barrier: isa.DMBFull, Loc: Loc1}, nops)
	full2 := tput(p, cores, TwoStores, Variant{Barrier: isa.DMBFull, Loc: Loc2}, nops)
	if full1 >= 0.8*full2 {
		t.Errorf("Obs2: DMB full-1 (%g) should be well below DMB full-2 (%g)", full1, full2)
	}
}

func TestFig4TippingPointHalvesThroughput(t *testing.T) {
	for _, setup := range []struct {
		name  string
		cores [2]topo.CoreID
		p     *platform.Platform
	}{
		{name: "same-node"}, {name: "cross-node"},
	} {
		var cores [2]topo.CoreID
		var p *platform.Platform
		if setup.name == "same-node" {
			cores, p = kunpengSameNode()
		} else {
			cores, p = kunpengCrossNode()
		}
		nops, ratio := TippingPoint(p, cores, 0.95, 1)
		if nops < 0 {
			t.Fatalf("%s: no tipping point found", setup.name)
		}
		if ratio < 0.35 || ratio > 0.68 {
			t.Errorf("%s: tipping ratio DMBfull-1/DMBfull-2 = %g at %d nops, want ≈ 0.5",
				setup.name, ratio, nops)
		}
	}
}

func TestObs3STLRNotAlwaysBetter(t *testing.T) {
	// Obs 3: STLR can be slower than the stronger DMB full (at Loc2).
	cores, p := kunpengSameNode()
	const nops = 150
	stlr := tput(p, cores, TwoStores, Variant{Barrier: isa.STLR}, nops)
	full2 := tput(p, cores, TwoStores, Variant{Barrier: isa.DMBFull, Loc: Loc2}, nops)
	dsb := tput(p, cores, TwoStores, Variant{Barrier: isa.DSBFull, Loc: Loc2}, nops)
	st := tput(p, cores, TwoStores, Variant{Barrier: isa.DMBSt, Loc: Loc2}, nops)
	if stlr >= full2 {
		t.Errorf("Obs3: STLR (%g) should underperform DMB full-2 (%g) on the server", stlr, full2)
	}
	if !(stlr > dsb && stlr < st) {
		t.Errorf("Obs3: STLR (%g) should lie between DSB (%g) and DMB st (%g)", stlr, dsb, st)
	}
}

func TestObs4ServerVariationLargerThanMobile(t *testing.T) {
	// Obs 4: the spread between no-barrier and DSB is far larger on the
	// server than on the mobile parts at the same padding.
	spread := func(p *platform.Platform, cores [2]topo.CoreID) float64 {
		none := tput(p, cores, TwoStores, Variant{Barrier: isa.None}, 30)
		dsb := tput(p, cores, TwoStores, Variant{Barrier: isa.DSBFull, Loc: Loc1}, 30)
		return none / dsb
	}
	kpCores, kp := kunpengSameNode()
	serverSpread := spread(kp, kpCores)
	k9 := platform.Kirin960()
	big := k9.Sys.CoresOfClass(topo.Big)
	mobileSpread := spread(k9, [2]topo.CoreID{big[0], big[1]})
	if serverSpread <= mobileSpread {
		t.Errorf("Obs4: server spread (%g) should exceed mobile spread (%g)",
			serverSpread, mobileSpread)
	}
}

func TestObs5CrossingNodesIsAKiller(t *testing.T) {
	// Obs 5: DMB full benefits from same-node binding; DSB does not.
	sameCores, p1 := kunpengSameNode()
	crossCores, p2 := kunpengCrossNode()
	const nops = 50
	fullSame := tput(p1, sameCores, TwoStores, Variant{Barrier: isa.DMBFull, Loc: Loc1}, nops)
	fullCross := tput(p2, crossCores, TwoStores, Variant{Barrier: isa.DMBFull, Loc: Loc1}, nops)
	if fullSame < 1.5*fullCross {
		t.Errorf("Obs5: DMB full same-node (%g) should be much faster than cross-node (%g)",
			fullSame, fullCross)
	}
	dsbSame := tput(p1, sameCores, TwoStores, Variant{Barrier: isa.DSBFull, Loc: Loc1}, nops)
	dsbCross := tput(p2, crossCores, TwoStores, Variant{Barrier: isa.DSBFull, Loc: Loc1}, nops)
	// DSB pays the domain-boundary trip regardless: locality gain small.
	if dsbSame > 1.6*dsbCross {
		t.Errorf("Obs5: DSB should not benefit strongly from locality (same=%g cross=%g)",
			dsbSame, dsbCross)
	}
	// And the DSB:DMB gap widens on one node.
	gapSame := fullSame / dsbSame
	gapCross := fullCross / dsbCross
	if gapSame <= gapCross {
		t.Errorf("Obs5: DMB/DSB variation should increase same-node (same=%g cross=%g)",
			gapSame, gapCross)
	}
}

func TestObs6DependenciesBeatBusBarriers(t *testing.T) {
	// Figure 5 / Obs 6: dependencies and DMB ld/LDAR vastly outperform
	// bus-involving barriers for load->store ordering.
	cores, p := kunpengCrossNode()
	const nops = 300
	dep := tput(p, cores, LoadStore, Variant{Barrier: isa.DataDep}, nops)
	addr := tput(p, cores, LoadStore, Variant{Barrier: isa.AddrDep}, nops)
	ldar := tput(p, cores, LoadStore, Variant{Barrier: isa.LDAR}, nops)
	dmbLd := tput(p, cores, LoadStore, Variant{Barrier: isa.DMBLd, Loc: Loc1}, nops)
	full1 := tput(p, cores, LoadStore, Variant{Barrier: isa.DMBFull, Loc: Loc1}, nops)
	dsb1 := tput(p, cores, LoadStore, Variant{Barrier: isa.DSBFull, Loc: Loc1}, nops)
	none := tput(p, cores, LoadStore, Variant{Barrier: isa.None}, nops)
	ctrlISB := tput(p, cores, LoadStore, Variant{Barrier: isa.CtrlISB}, nops)

	for name, v := range map[string]float64{"DATA": dep, "ADDR": addr, "LDAR": ldar, "DMB ld": dmbLd} {
		if v < 0.85*none {
			t.Errorf("Obs6: %s (%g) should be close to no-barrier (%g)", name, v, none)
		}
		if v < 1.5*dsb1 {
			t.Errorf("Obs6: %s (%g) should far outperform DSB-1 (%g)", name, v, dsb1)
		}
	}
	if dep <= full1 {
		t.Errorf("Obs6: DATA dep (%g) should beat DMB full-1 (%g)", dep, full1)
	}
	if ctrlISB >= dep {
		t.Errorf("Obs6: CTRL+ISB (%g) should cost more than a plain dependency (%g)", ctrlISB, dep)
	}
}

func TestDeterministicResults(t *testing.T) {
	cores, p := kunpengSameNode()
	cfg := Config{Plat: p, Cores: cores, Pattern: TwoStores,
		Variant: Variant{Barrier: isa.DMBFull, Loc: Loc1}, Nops: 100, Seed: 5}
	a := Run(cfg)
	b := Run(cfg)
	if a.Cycles != b.Cycles {
		t.Fatalf("same seed must give same cycles: %g vs %g", a.Cycles, b.Cycles)
	}
}

func TestVariantNames(t *testing.T) {
	cases := map[string]Variant{
		"No Barrier": {Barrier: isa.None},
		"DMB full-1": {Barrier: isa.DMBFull, Loc: Loc1},
		"DSB st-2":   {Barrier: isa.DSBSt, Loc: Loc2},
		"STLR":       {Barrier: isa.STLR},
		"LDAR":       {Barrier: isa.LDAR},
		"ADDR DEP":   {Barrier: isa.AddrDep},
	}
	for want, v := range cases {
		if got := v.Name(); got != want {
			t.Errorf("Name() = %q, want %q", got, want)
		}
	}
}

func TestSTLRPlatformSpecific(t *testing.T) {
	// The paper's Figure 3 shows STLR is nearly free on the Kirin SoCs
	// (≈90% of no-barrier) while being DSB-grade on the Pi and between
	// DSB and DMB st on the server — Obs 3 is platform-specific.
	ratio := func(p *platform.Platform) float64 {
		big := p.Sys.CoresOfClass(topo.Big)
		cores := [2]topo.CoreID{big[0], big[1]}
		stlr := tput(p, cores, TwoStores, Variant{Barrier: isa.STLR}, 30)
		none := tput(p, cores, TwoStores, Variant{Barrier: isa.None}, 30)
		return stlr / none
	}
	if r := ratio(platform.Kirin960()); r < 0.55 {
		t.Errorf("Kirin960 STLR/none = %.2f, want cheap (> 0.55)", r)
	}
	if r := ratio(platform.RaspberryPi4()); r > 0.45 {
		t.Errorf("RaspberryPi4 STLR/none = %.2f, want expensive (< 0.45)", r)
	}
}

func TestMobileVsServerDSBGap(t *testing.T) {
	// Obs 4 from the Figure-2 angle: the intrinsic DSB gap is an order
	// of magnitude larger on the server.
	gap := func(p *platform.Platform, a, b topo.CoreID) float64 {
		none := tput(p, [2]topo.CoreID{a, b}, NoMem, Variant{Barrier: isa.None}, 30)
		dsb := tput(p, [2]topo.CoreID{a, b}, NoMem, Variant{Barrier: isa.DSBFull, Loc: Loc2}, 30)
		return none / dsb
	}
	kp := platform.Kunpeng916()
	k9 := platform.Kirin960()
	big := k9.Sys.CoresOfClass(topo.Big)
	serverGap := gap(kp, kp.Sys.NodeCores(0)[0], kp.Sys.NodeCores(0)[4])
	mobileGap := gap(k9, big[0], big[1])
	if serverGap < 3*mobileGap {
		t.Errorf("server DSB gap (%.1fx) should dwarf mobile (%.1fx)", serverGap, mobileGap)
	}
}

func TestLoadLoadPatternOrderingCosts(t *testing.T) {
	// The Table-3 load->loads row, measured: ADDR DEP ≈ LDAR ≈ LDAPR ≈
	// DMB ld ≈ no barrier; CTRL+ISB pays the flush; the bus barriers
	// pay the bus.
	cores, p := kunpengCrossNode()
	const nops = 300
	get := func(v Variant) float64 { return tput(p, cores, LoadLoad, v, nops) }
	none := get(Variant{Barrier: isa.None})
	addr := get(Variant{Barrier: isa.AddrDep})
	ldar := get(Variant{Barrier: isa.LDAR})
	ldapr := get(Variant{Barrier: isa.LDAPR})
	dmbLd := get(Variant{Barrier: isa.DMBLd, Loc: Loc1})
	ctrlISB := get(Variant{Barrier: isa.CtrlISB})
	dsb := get(Variant{Barrier: isa.DSBFull, Loc: Loc1})

	for name, v := range map[string]float64{"ADDR": addr, "LDAR": ldar, "LDAPR": ldapr, "DMB ld": dmbLd} {
		if v < 0.8*none {
			t.Errorf("load-load: %s (%g) should be near no-barrier (%g)", name, v, none)
		}
	}
	if ctrlISB >= addr {
		t.Errorf("load-load: CTRL+ISB (%g) should cost more than ADDR DEP (%g)", ctrlISB, addr)
	}
	// With no stores in flight even DMB full terminates internally, so
	// the bus-cost contrast in a pure load loop is DSB (which always
	// pays the domain-boundary trip).
	if dsb >= 0.5*dmbLd {
		t.Errorf("load-load: DSB (%g) should trail DMB ld (%g) badly", dsb, dmbLd)
	}
}

func TestA64ModelAgreesWithClosureModel(t *testing.T) {
	// The verbatim Algorithm-1 assembly and the Go-closure body are two
	// encodings of the same program; their throughputs must agree
	// closely for every barrier variant.
	cores, p := kunpengSameNode()
	for _, v := range []Variant{
		{Barrier: isa.None},
		{Barrier: isa.DMBFull, Loc: Loc1},
		{Barrier: isa.DMBSt, Loc: Loc2},
		{Barrier: isa.DSBFull, Loc: Loc1},
		{Barrier: isa.STLR},
	} {
		cfg := Config{Plat: p, Cores: cores, Pattern: TwoStores,
			Variant: v, Nops: 60, Iters: 600, Seed: 9}
		goRes := Run(cfg)
		asmRes, err := RunA64(cfg)
		if err != nil {
			t.Fatalf("%s: %v", v.Name(), err)
		}
		ratio := asmRes.Throughput() / goRes.Throughput()
		if ratio < 0.65 || ratio > 1.5 {
			t.Errorf("%s: a64 (%.3g) vs closure (%.3g) diverge: ratio %.2f",
				v.Name(), asmRes.Throughput(), goRes.Throughput(), ratio)
		}
	}
}

func TestAlgorithm1SourceRendering(t *testing.T) {
	src := Algorithm1Source(Variant{Barrier: isa.DMBSt, Loc: Loc1}, 3)
	for _, want := range []string{"loop:", "dmb ishst", "ble loop"} {
		if !strings.Contains(src, want) {
			t.Errorf("source missing %q:\n%s", want, src)
		}
	}
	if n := strings.Count(src, "nop"); n != 3 {
		t.Errorf("nop count = %d, want 3", n)
	}
	stlr := Algorithm1Source(Variant{Barrier: isa.STLR}, 0)
	if !strings.Contains(stlr, "stlr x4, [x1]") {
		t.Errorf("STLR variant should release the second store:\n%s", stlr)
	}
}
