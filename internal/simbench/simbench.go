// Package simbench defines the simulator hot-path microbenchmarks as
// exported func(*testing.B) bodies so two harnesses share them: the
// conventional `go test -bench` wrappers in internal/sim (whose output
// scripts/bench_snapshot.sh freezes into BENCH_sim.json) and the
// in-process `armbar perfcheck` regression gate, which reruns them via
// testing.Benchmark and compares against that snapshot.
//
// The workload bodies respect the process-wide engine default: under
// the compiled engine (the default) each body is lowered to a micro-op
// program, so the snapshot measures the path the figure generators
// actually take. `armbar perfcheck` flips the default to measure both
// engines and print their ratio.
package simbench

import (
	"testing"

	"armbar/internal/barrier"
	"armbar/internal/cellcache"
	"armbar/internal/explore"
	"armbar/internal/isa"
	"armbar/internal/mesi"
	"armbar/internal/platform"
	"armbar/internal/prog"
	"armbar/internal/sim"
	"armbar/internal/topo"
)

// Bench names one microbenchmark. Name matches the wrapper benchmark
// in internal/sim and the entries of BENCH_sim.json.
type Bench struct {
	Name string
	Fn   func(*testing.B)
}

// Benches is the canonical hot-path set, in snapshot order.
var Benches = []Bench{
	{"BenchmarkRendezvousLoadHit", RendezvousLoadHit},
	{"BenchmarkRendezvousTwoThreads", RendezvousTwoThreads},
	{"BenchmarkStoreCommit", StoreCommit},
	{"BenchmarkStoreDMBFull", StoreDMBFull},
	{"BenchmarkCompiledDispatch", CompiledDispatch},
	{"BenchmarkCellCacheHit", CellCacheHit},
	{"BenchmarkDirectoryRank1024", DirectoryRank1024},
	{"BenchmarkDirectorySharerChurn1024", DirectorySharerChurn1024},
	{"BenchmarkBarrierScale64", BarrierScale64},
	{"BenchmarkBarrierScale256", BarrierScale256},
	{"BenchmarkBarrierScale1024", BarrierScale1024},
	{"BenchmarkExploreStates", ExploreStates},
}

func newBenchMachine() *sim.Machine {
	return sim.New(sim.Config{Plat: platform.Kunpeng916(), Seed: 1, MaxTime: 1e18})
}

// spawnLoop starts a thread running n iterations of the given body on
// whichever engine is the process default: compiled engines get the
// body lowered once into a counted-loop program, the interpreted
// engine replays the Thread calls per iteration. Both issue the
// identical machine-visible op sequence.
func spawnLoop(m *sim.Machine, core topo.CoreID, n int,
	lower func(b *prog.Builder, i int), interp func(t *sim.Thread, i int)) {
	if sim.EngineDefault.Resolve() == sim.EngineCompiled {
		b := prog.NewBuilder(platform.Kunpeng916().Cost.IssueWidth)
		i := b.Loop(n)
		lower(b, i)
		b.EndLoop()
		m.SpawnProgram(core, b.MustBuild())
		return
	}
	m.Spawn(core, func(t *sim.Thread) {
		for i := 0; i < n; i++ {
			interp(t, i)
		}
	})
}

// RendezvousLoadHit is the floor of a simulated operation: cache-hit
// loads with nothing in flight, so the measured cost is one pass
// through the direct-dispatch scheduler (the solo fast path — a mutex
// acquire and an inline process call, or one compiled dispatch) plus
// the load bookkeeping. The name predates the scheduler rewrite and is
// kept so snapshots stay comparable across engine generations.
func RendezvousLoadHit(b *testing.B) {
	m := newBenchMachine()
	addr := m.Alloc(1)
	spawnLoop(m, 0, b.N,
		func(pb *prog.Builder, i int) { pb.Load(prog.Abs(addr)) },
		func(t *sim.Thread, i int) { t.Load(addr) })
	b.ReportAllocs()
	b.ResetTimer()
	m.Run()
}

// RendezvousTwoThreads interleaves two runnable threads so every
// operation also pays the scheduler's min-(time, id) pick and, when
// service alternates, the park/grant handoff between goroutines.
func RendezvousTwoThreads(b *testing.B) {
	m := newBenchMachine()
	a1, a2 := m.Alloc(1), m.Alloc(1)
	n := b.N / 2
	for k, addr := range []uint64{a1, a2} {
		addr := addr
		spawnLoop(m, topo.CoreID(4*k), n,
			func(pb *prog.Builder, i int) { pb.Load(prog.Abs(addr)) },
			func(t *sim.Thread, i int) { t.Load(addr) })
	}
	b.ReportAllocs()
	b.ResetTimer()
	m.Run()
}

// StoreCommit drives the buffered-store path end to end: issue into
// the store buffer, schedule the commit event, drain it through the
// event heap, apply it to the directory. With the event free list and
// the arena-backed machine state this allocates nothing per store in
// steady state.
func StoreCommit(b *testing.B) {
	m := newBenchMachine()
	addr := m.Alloc(1)
	spawnLoop(m, 0, b.N,
		func(pb *prog.Builder, i int) { pb.Store(prog.Abs(addr), prog.Counter(i)) },
		func(t *sim.Thread, i int) { t.Store(addr, uint64(i)) })
	b.ReportAllocs()
	b.ResetTimer()
	m.Run()
}

// StoreDMBFull alternates a store with a full barrier, the paper's
// fenced-stream pattern: every barrier waits out the pending commit
// through the ACE fabric model.
func StoreDMBFull(b *testing.B) {
	m := newBenchMachine()
	addr := m.Alloc(1)
	spawnLoop(m, 0, b.N,
		func(pb *prog.Builder, i int) {
			pb.Store(prog.Abs(addr), prog.Counter(i))
			pb.Barrier(isa.DMBFull)
		},
		func(t *sim.Thread, i int) {
			t.Store(addr, uint64(i))
			t.Barrier(isa.DMBFull)
		})
	b.ReportAllocs()
	b.ResetTimer()
	m.Run()
}

// CompiledDispatch measures the compiled engine's dispatch loop in
// isolation — always a program, regardless of the engine default: a
// solo counted loop of cache-hit loads runs entirely inside execSolo,
// so the per-op cost is one opExec table call plus the load
// bookkeeping and the free LoopEnd fold. allocvet pins every function
// on this path; the snapshot pins it at 0 allocs/op.
func CompiledDispatch(b *testing.B) {
	m := newBenchMachine()
	addr := m.Alloc(1)
	pb := prog.NewBuilder(platform.Kunpeng916().Cost.IssueWidth)
	pb.Loop(b.N)
	pb.Load(prog.Abs(addr))
	pb.EndLoop()
	m.SpawnProgram(0, pb.MustBuild())
	b.ReportAllocs()
	b.ResetTimer()
	m.Run()
}

// DirectoryRank1024 measures the sharer-bitset rank lookup at maximum
// occupancy: CopyAt on a line all 1024 cores of the largest scale-out
// preset share. rank walks the summary-pruned bitset words — this is
// the per-access cost every load/commit/invalidate pays at full
// fan-in, and it must stay allocation-free (allocvet pins rank,
// lineBits and sharerWord).
func DirectoryRank1024(b *testing.B) {
	plat := platform.MustScaleOut(1024)
	d := mesi.NewDirectory(plat.Sys)
	n := plat.Sys.NumCores()
	const addr = 64
	for c := 0; c < n; c++ {
		d.Fetch(topo.CoreID(c), addr, 0)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if d.CopyAt(topo.CoreID(i&(n-1)), addr) == nil {
			b.Fatal("seeded sharer missing")
		}
	}
}

// DirectorySharerChurn1024 measures the invalidate-refetch churn path
// on a fully shared line: per op one core drops its copy and fetches
// it back, paying two rank walks, the bitset clear/set, and the
// ordered-copies splice. The copies slice reaches its 1024-slot
// capacity during setup, so steady state allocates nothing.
func DirectorySharerChurn1024(b *testing.B) {
	plat := platform.MustScaleOut(1024)
	d := mesi.NewDirectory(plat.Sys)
	n := plat.Sys.NumCores()
	const addr = 64
	for c := 0; c < n; c++ {
		d.Fetch(topo.CoreID(c), addr, 0)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core := topo.CoreID(i & (n - 1))
		d.DropCopy(core, addr)
		d.Fetch(core, addr, float64(i))
	}
}

// barrierScale runs the sense-reversing barrier on the n-core
// scale-out preset with the round count sized so one benchmark op is
// one thread-round (rounds*threads >= b.N): ns/op is directly
// comparable across the three core counts, and the simulator's
// one-time growth allocations amortize to zero per op. Program build
// and thread spawn happen before the timer; only the machine run is
// measured.
func barrierScale(b *testing.B, n int) {
	rounds := (b.N + n - 1) / n
	m, err := barrier.Spawn(barrier.SenseReversing, barrier.Config{
		Plat: platform.MustScaleOut(n), Threads: n, Rounds: rounds, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	m.Settle()
	b.ReportAllocs()
	b.ResetTimer()
	m.Run()
}

// BarrierScale64 is the sense-reversing barrier at 64 cores, one
// thread-round per op.
func BarrierScale64(b *testing.B) { barrierScale(b, 64) }

// BarrierScale256 is the sense-reversing barrier at 256 cores.
func BarrierScale256(b *testing.B) { barrierScale(b, 256) }

// BarrierScale1024 is the sense-reversing barrier at 1024 cores — the
// scale the sharded directory bitsets and padded thread slabs exist
// for.
func BarrierScale1024(b *testing.B) { barrierScale(b, 1024) }

// ExploreStates measures the reorder-bounded explorer's throughput:
// one op is a full placement-lattice minimization of the MP and chan
// shapes under both memory models — the unit of work `armvet fencevet`
// pays per shape and the fuzz gate pays per generated program. The
// explorer's packed-state visit loop must stay allocation-free in
// steady state, so the per-op byte count (dominated by the one-time
// visited-table and frontier slabs) stays far below the state count.
func ExploreStates(b *testing.B) {
	shapes := []*explore.Shape{explore.MP(), explore.Chan()}
	b.ReportAllocs()
	b.ResetTimer()
	states := 0
	for i := 0; i < b.N; i++ {
		for _, s := range shapes {
			for _, mode := range []sim.Mode{sim.WMM, sim.TSO} {
				states += explore.Minimize(s, mode, explore.DefaultBound).States
			}
		}
	}
	b.ReportMetric(float64(states)/b.Elapsed().Seconds(), "states/sec")
}

// CellCacheHit measures the result cache's per-cell lookup on a hit —
// the SHA-256 key build plus the map probe every warm cell pays before
// its simulation is skipped. This path must stay at 0 allocs/op (it
// runs once per cell per experiment; allocvet checks keyFor and Get).
func CellCacheHit(b *testing.B) {
	c := cellcache.Open(b.TempDir())
	defer c.Close()
	const scope = "bench#0|quick=true|seed=42|n=8"
	val := make([]byte, 64)
	for i := range val {
		val[i] = byte(i)
	}
	for i := 0; i < 8; i++ {
		c.Put(scope, i, val)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := c.Get(scope, i&7); !ok {
			b.Fatal("cache miss on a seeded key")
		}
	}
}
