// Package simbench defines the simulator hot-path microbenchmarks as
// exported func(*testing.B) bodies so two harnesses share them: the
// conventional `go test -bench` wrappers in internal/sim (whose output
// scripts/bench_snapshot.sh freezes into BENCH_sim.json) and the
// in-process `armbar perfcheck` regression gate, which reruns them via
// testing.Benchmark and compares against that snapshot.
package simbench

import (
	"testing"

	"armbar/internal/cellcache"
	"armbar/internal/isa"
	"armbar/internal/platform"
	"armbar/internal/sim"
)

// Bench names one microbenchmark. Name matches the wrapper benchmark
// in internal/sim and the entries of BENCH_sim.json.
type Bench struct {
	Name string
	Fn   func(*testing.B)
}

// Benches is the canonical hot-path set, in snapshot order.
var Benches = []Bench{
	{"BenchmarkRendezvousLoadHit", RendezvousLoadHit},
	{"BenchmarkRendezvousTwoThreads", RendezvousTwoThreads},
	{"BenchmarkStoreCommit", StoreCommit},
	{"BenchmarkStoreDMBFull", StoreDMBFull},
	{"BenchmarkCellCacheHit", CellCacheHit},
}

// RendezvousLoadHit is the floor of a simulated operation: cache-hit
// loads with nothing in flight, so the measured cost is one pass
// through the direct-dispatch scheduler (the solo fast path — a mutex
// acquire and an inline process call) plus the load bookkeeping. The
// name predates the scheduler rewrite and is kept so snapshots stay
// comparable across engine generations.
func RendezvousLoadHit(b *testing.B) {
	m := sim.New(sim.Config{Plat: platform.Kunpeng916(), Seed: 1, MaxTime: 1e18})
	addr := m.Alloc(1)
	n := b.N
	m.Spawn(0, func(t *sim.Thread) {
		for i := 0; i < n; i++ {
			t.Load(addr)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	m.Run()
}

// RendezvousTwoThreads interleaves two runnable threads so every
// operation also pays the scheduler's min-(time, id) pick and, when
// service alternates, the park/grant handoff between goroutines.
func RendezvousTwoThreads(b *testing.B) {
	m := sim.New(sim.Config{Plat: platform.Kunpeng916(), Seed: 1, MaxTime: 1e18})
	a1, a2 := m.Alloc(1), m.Alloc(1)
	n := b.N / 2
	body := func(addr uint64) func(*sim.Thread) {
		return func(t *sim.Thread) {
			for i := 0; i < n; i++ {
				t.Load(addr)
			}
		}
	}
	m.Spawn(0, body(a1))
	m.Spawn(4, body(a2))
	b.ReportAllocs()
	b.ResetTimer()
	m.Run()
}

// StoreCommit drives the buffered-store path end to end: issue into
// the store buffer, schedule the commit event, drain it through the
// event heap, apply it to the directory. With the event free list this
// allocates nothing per store in steady state.
func StoreCommit(b *testing.B) {
	m := sim.New(sim.Config{Plat: platform.Kunpeng916(), Seed: 1, MaxTime: 1e18})
	addr := m.Alloc(1)
	n := b.N
	m.Spawn(0, func(t *sim.Thread) {
		for i := 0; i < n; i++ {
			t.Store(addr, uint64(i))
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	m.Run()
}

// CellCacheHit measures the result cache's per-cell lookup on a hit —
// the SHA-256 key build plus the map probe every warm cell pays before
// its simulation is skipped. This path must stay at 0 allocs/op (it
// runs once per cell per experiment; allocvet checks keyFor and Get).
func CellCacheHit(b *testing.B) {
	c := cellcache.Open(b.TempDir())
	defer c.Close()
	const scope = "bench#0|quick=true|seed=42|n=8"
	val := make([]byte, 64)
	for i := range val {
		val[i] = byte(i)
	}
	for i := 0; i < 8; i++ {
		c.Put(scope, i, val)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := c.Get(scope, i&7); !ok {
			b.Fatal("cache miss on a seeded key")
		}
	}
}

// StoreDMBFull alternates a store with a full barrier, the paper's
// fenced-stream pattern: every barrier waits out the pending commit
// through the ACE fabric model.
func StoreDMBFull(b *testing.B) {
	m := sim.New(sim.Config{Plat: platform.Kunpeng916(), Seed: 1, MaxTime: 1e18})
	addr := m.Alloc(1)
	n := b.N
	m.Spawn(0, func(t *sim.Thread) {
		for i := 0; i < n; i++ {
			t.Store(addr, uint64(i))
			t.Barrier(isa.DMBFull)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	m.Run()
}
