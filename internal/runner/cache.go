package runner

import (
	"bytes"
	"encoding/gob"
)

// CellCache is the pluggable persistent result cache MapCached and
// GridCached consult before running each cell (internal/cellcache is
// the production implementation). The scope string names one Map call
// (experiment, call sequence, quick flag, seed, cell count); together
// with the cell index — and the implementation's code-version digest —
// it fully determines a deterministic cell's output.
type CellCache interface {
	// Get returns the encoded result of cell (scope, idx), if stored.
	Get(scope string, idx int) ([]byte, bool)
	// Put stores the encoded result of cell (scope, idx). Put must be
	// a no-op for keys that already have an entry.
	Put(scope string, idx int, data []byte)
}

// MapCached is Map with a persistent result cache in front of every
// cell: a cell whose encoded result is already stored decodes instead
// of simulating, and every freshly computed cell is stored after it
// completes. Results are byte-identical to an uncached Map — cells are
// deterministic, and the gob codec round-trips every value exactly
// (float64 by bits) — so a warm run differs only in wall time.
//
// Failure containment: an entry that fails to decode is treated as a
// miss and recomputed; a value that fails to encode is returned but
// not stored; and a cell that panics re-raises here, on the assembling
// goroutine, after storing nothing — a partial or failed cell can
// never poison the cache (regression-tested in cache_test.go).
//
// A nil cache makes MapCached exactly Map.
func MapCached[T any](p *Pool, cc CellCache, scope string, n int, fn func(i int) T) []T {
	if cc == nil {
		return Map(p, n, fn)
	}
	out := make([]T, n)
	futs := make([]*Future[T], n) // nil where the cache hit
	for i := 0; i < n; i++ {
		if data, ok := cc.Get(scope, i); ok && decodeCell(data, &out[i]) {
			p.noteCached()
			continue
		}
		i := i
		futs[i] = Submit(p, func() T { return fn(i) })
	}
	for i, f := range futs {
		if f == nil {
			continue
		}
		v, err := f.TryGet()
		if err != nil {
			// The panic surfaces exactly as Map's would; cells after
			// this one were computed but are deliberately not stored —
			// a failed run caches nothing past the failure point.
			panic(err)
		}
		out[i] = v
		if data, err := encodeCell(v); err == nil {
			cc.Put(scope, i, data)
		}
	}
	return out
}

// GridCached is Grid with the same per-cell cache as MapCached.
func GridCached[T any](p *Pool, cc CellCache, scope string, rows, cols int, fn func(r, c int) T) [][]T {
	flat := MapCached(p, cc, scope, rows*cols, func(k int) T { return fn(k/cols, k%cols) })
	out := make([][]T, rows)
	for r := range out {
		out[r] = flat[r*cols : (r+1)*cols]
	}
	return out
}

// encodeCell gob-encodes one cell value. Cell types must be gob-able
// (exported fields, or a GobEncoder implementation); a type that is
// not simply opts out of caching via the returned error.
func encodeCell[T any](v T) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// decodeCell decodes a stored cell value, reporting false (a cache
// miss) on any error.
func decodeCell[T any](data []byte, dst *T) bool {
	return gob.NewDecoder(bytes.NewReader(data)).Decode(dst) == nil
}
