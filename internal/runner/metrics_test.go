package runner

import (
	"testing"

	"armbar/internal/metrics"
)

func TestPoolMetrics(t *testing.T) {
	reg := metrics.NewRegistry()
	p := New(3)
	p.SetMetrics(reg)
	Map(p, 20, func(i int) int { return i * i })
	p.Close()
	s := reg.Snapshot()
	if got := s.Counters["runner_cells_total"]; got != 20 {
		t.Fatalf("cells counter = %d, want 20", got)
	}
	if qw := s.Histograms["runner_queue_wait_seconds"]; qw.Count != 20 {
		t.Fatalf("queue-wait observations = %d, want 20", qw.Count)
	}
	if sv := s.Histograms["runner_cell_service_seconds"]; sv.Count != 20 {
		t.Fatalf("service observations = %d, want 20", sv.Count)
	}
	if s.Gauges["runner_workers"] != 3 {
		t.Fatalf("workers gauge = %g, want 3", s.Gauges["runner_workers"])
	}
	if u := s.Gauges["runner_worker_utilization"]; u < 0 || u > 1.5 {
		// Utilization is wall-clock derived; allow slack but catch
		// nonsense (cells here are ~ns, so it should be tiny).
		t.Fatalf("utilization = %g out of range", u)
	}
	if s.Gauges["runner_cells_per_second"] <= 0 {
		t.Fatal("cells/sec gauge never set")
	}
}

func TestMetricsOffCostsNothingStructural(t *testing.T) {
	// A dark pool must not create instruments or record anything; this
	// is the "metrics off by default" contract.
	p := New(2)
	Map(p, 8, func(i int) int { return i })
	p.Close()
	if p.obs != nil {
		t.Fatal("pool grew metrics without SetMetrics")
	}
}
