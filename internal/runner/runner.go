// Package runner is the parallel experiment engine behind cmd/armbar
// and the figure generators. An experiment decomposes into independent
// *cells* — one simulated machine (or a few) per platform × data-point,
// each fully determined by its own configuration and seed — and the
// runner fans the cells out over a fixed-size worker pool, then merges
// the results back in canonical (submission) order.
//
// Because every cell builds its own sim.Machine and shares only
// immutable inputs (topologies, cost models), the merged output is
// byte-identical to a sequential run of the same cells: parallelism
// changes only *when* a cell computes, never *what* it computes. That
// determinism guarantee is regression-tested in determinism_test.go.
//
// A nil *Pool is valid everywhere and means "run cells inline on the
// caller's goroutine" — the sequential baseline costs zero goroutines.
package runner

import (
	"fmt"
	"runtime"
	"sync"
)

// Pool is a fixed-size worker pool with a bounded submission queue.
// Submissions beyond the queue bound block the submitter (backpressure)
// until a worker frees up; results are delivered through Futures so
// callers can always merge in canonical order.
type Pool struct {
	workers int
	tasks   chan func()
	wg      sync.WaitGroup

	mu     sync.Mutex
	closed bool
}

// New returns a pool of the given number of workers. workers <= 0
// means GOMAXPROCS. The submission queue is bounded at twice the
// worker count: enough to keep every worker fed, small enough that a
// producer enumerating a huge grid cannot outrun the consumers.
func New(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pool{
		workers: workers,
		tasks:   make(chan func(), 2*workers),
	}
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for task := range p.tasks {
				task()
			}
		}()
	}
	return p
}

// Workers reports the pool size (0 for a nil, inline pool).
func (p *Pool) Workers() int {
	if p == nil {
		return 0
	}
	return p.workers
}

// Close stops accepting work and waits for in-flight cells to finish.
// Close on a nil pool is a no-op.
func (p *Pool) Close() {
	if p == nil {
		return
	}
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		close(p.tasks)
	}
	p.mu.Unlock()
	p.wg.Wait()
}

// Future is the pending result of one submitted cell.
type Future[T any] struct {
	done chan struct{}
	val  T
	pan  any // recovered panic value, re-raised at Get
}

// Get blocks until the cell has run and returns its value. If the cell
// panicked, Get re-panics with the cell's panic value on the caller's
// goroutine, so failures surface where the experiment is assembled.
func (f *Future[T]) Get() T {
	<-f.done
	if f.pan != nil {
		panic(f.pan)
	}
	return f.val
}

// Submit schedules fn as one cell on the pool and returns its Future.
// On a nil pool fn runs inline before Submit returns. Cells must not
// submit further cells and block on them: with every worker blocked in
// a Get the queue can never drain. Fan-out belongs in the goroutine
// assembling the experiment.
func Submit[T any](p *Pool, fn func() T) *Future[T] {
	f := &Future[T]{done: make(chan struct{})}
	if p == nil {
		f.val = fn()
		close(f.done)
		return f
	}
	p.tasks <- func() {
		defer close(f.done)
		defer func() {
			if r := recover(); r != nil {
				f.pan = fmt.Errorf("runner: cell panicked: %v", r)
			}
		}()
		f.val = fn()
	}
	return f
}

// Map evaluates fn(0..n-1) as n independent cells and returns the
// results in index order — the canonical-merge primitive. The order of
// the returned slice (and therefore any table built from it) is
// independent of the pool size.
func Map[T any](p *Pool, n int, fn func(i int) T) []T {
	futs := make([]*Future[T], n)
	for i := range futs {
		i := i
		futs[i] = Submit(p, func() T { return fn(i) })
	}
	out := make([]T, n)
	for i, f := range futs {
		out[i] = f.Get()
	}
	return out
}

// Grid evaluates fn over a rows × cols grid as independent cells and
// returns results indexed [row][col]. This is the shape of most figure
// sweeps: one row per variant/lock/binding, one column per data-point.
func Grid[T any](p *Pool, rows, cols int, fn func(r, c int) T) [][]T {
	flat := Map(p, rows*cols, func(k int) T { return fn(k/cols, k%cols) })
	out := make([][]T, rows)
	for r := range out {
		out[r] = flat[r*cols : (r+1)*cols]
	}
	return out
}
