// Package runner is the parallel experiment engine behind cmd/armbar
// and the figure generators. An experiment decomposes into independent
// *cells* — one simulated machine (or a few) per platform × data-point,
// each fully determined by its own configuration and seed — and the
// runner fans the cells out over a fixed-size worker pool, then merges
// the results back in canonical (submission) order.
//
// Because every cell builds its own sim.Machine and shares only
// immutable inputs (topologies, cost models), the merged output is
// byte-identical to a sequential run of the same cells: parallelism
// changes only *when* a cell computes, never *what* it computes. That
// determinism guarantee is regression-tested in determinism_test.go.
//
// A nil *Pool is valid everywhere and means "run cells inline on the
// caller's goroutine" — the sequential baseline costs zero goroutines.
//
// A cell that panics fails only itself: the panic is captured (with
// stack) as an error on its Future, readable through TryGet or Err.
// Get re-raises it on the caller's goroutine for callers that treat a
// failed cell as fatal (Map and Grid do).
package runner

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"armbar/internal/metrics"
)

// Pool is a fixed-size worker pool with a bounded submission queue.
// Submissions beyond the queue bound block the submitter (backpressure)
// until a worker frees up; results are delivered through Futures so
// callers can always merge in canonical order.
type Pool struct {
	workers int
	tasks   chan func()
	wg      sync.WaitGroup
	done    atomic.Uint64 // cells completed (including panicked ones)

	mu     sync.Mutex
	closed bool // armvet:guardedby mu

	// Observability (nil when dark): set once via SetMetrics before
	// the first Submit. Instruments are pre-resolved so the per-task
	// cost is two time.Now calls and a few atomic adds.
	obs *poolMetrics // armvet:guardedby mu — set-once; Submit reads it after the SetMetrics happens-before

	// Progress sink (nil when dark): set once via SetProgress before
	// the first Submit. Per-cell cost is one or two atomic adds in the
	// sink's implementation.
	prog ProgressSink // armvet:guardedby mu — set-once; Submit reads it after the SetProgress happens-before
}

// ProgressSink receives cell lifecycle notifications from a pool: a
// cell entering the submission queue, a worker picking it up, a worker
// finishing it, and — from MapCached/GridCached — a cell served from
// the persistent cache without ever being submitted. Implementations
// must be safe for concurrent use and fast (the pool calls them
// inline); internal/progress.Tracker is the production implementation
// feeding the armbar -serve /progress endpoint.
type ProgressSink interface {
	CellQueued()
	CellStarted()
	CellDone()
	CellCached()
}

// poolMetrics holds the pre-resolved instruments for one pool.
type poolMetrics struct {
	reg       *metrics.Registry
	tasks     *metrics.Counter
	queueWait *metrics.Histogram // seconds from Submit to a worker picking the cell up
	service   *metrics.Histogram // seconds a worker spent inside the cell
	busyNs    *metrics.Counter
	start     time.Time
}

// waitBounds spans 1µs queue blips up to ~67s stalls.
var waitBounds = metrics.ExpBuckets(1e-6, 4, 13)

// New returns a pool of the given number of workers. workers <= 0
// means GOMAXPROCS. The submission queue is bounded at twice the
// worker count: enough to keep every worker fed, small enough that a
// producer enumerating a huge grid cannot outrun the consumers.
func New(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pool{
		workers: workers,
		tasks:   make(chan func(), 2*workers),
	}
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for task := range p.tasks {
				task()
			}
		}()
	}
	return p
}

// Workers reports the pool size (0 for a nil, inline pool).
func (p *Pool) Workers() int {
	if p == nil {
		return 0
	}
	return p.workers
}

// TasksDone reports how many cells have finished on the pool so far
// (0 for a nil pool). The figure generators use deltas of this counter
// to attribute simulation cells to experiments.
func (p *Pool) TasksDone() uint64 {
	if p == nil {
		return 0
	}
	return p.done.Load()
}

// SetMetrics starts recording pool behavior into reg: cells completed,
// queue-wait and service-time histograms, worker busy time, and (at
// Close) overall utilization and cells/sec. Call before the first
// Submit; a nil pool or nil registry is a no-op.
func (p *Pool) SetMetrics(reg *metrics.Registry) {
	if p == nil || reg == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.obs = &poolMetrics{
		reg:       reg,
		tasks:     reg.Counter("runner_cells_total"),
		queueWait: reg.Histogram("runner_queue_wait_seconds", waitBounds),
		service:   reg.Histogram("runner_cell_service_seconds", waitBounds),
		busyNs:    reg.Counter("runner_busy_ns_total"),
		start:     time.Now(), //armvet:ignore determvet — observability wall clock; never reaches table output
	}
	reg.Gauge("runner_workers").Set(float64(p.workers))
}

// SetProgress starts reporting cell lifecycle events to s. Call before
// the first Submit; a nil pool or nil sink is a no-op.
func (p *Pool) SetProgress(s ProgressSink) {
	if p == nil || s == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.prog = s
}

// noteCached reports a cache-served cell to the progress sink (cached
// cells bypass Submit entirely, see MapCached).
func (p *Pool) noteCached() {
	if p == nil {
		return
	}
	if s := p.prog; s != nil { //armvet:ignore lockvet — set-once before the first Submit; see the field contract
		s.CellCached()
	}
}

// Close stops accepting work and waits for in-flight cells to finish.
// Close on a nil pool is a no-op. With metrics enabled the first Close
// also freezes the derived whole-run gauges (worker utilization,
// cells/sec).
func (p *Pool) Close() {
	if p == nil {
		return
	}
	p.mu.Lock()
	obs := p.obs
	closing := !p.closed
	if closing {
		p.closed = true
		close(p.tasks)
	}
	p.mu.Unlock()
	p.wg.Wait()
	if closing && obs != nil {
		elapsed := time.Since(obs.start).Seconds() //armvet:ignore determvet — utilization gauge only
		if elapsed > 0 {
			busy := float64(obs.busyNs.Value()) / 1e9
			obs.reg.Gauge("runner_worker_utilization").Set(busy / (elapsed * float64(p.workers)))
			obs.reg.Gauge("runner_cells_per_second").Set(float64(p.done.Load()) / elapsed)
		}
	}
}

// Future is the pending result of one submitted cell.
type Future[T any] struct {
	done chan struct{}
	val  T
	err  error // set when the cell panicked
}

// Get blocks until the cell has run and returns its value. If the cell
// panicked, Get re-panics with the cell's error on the caller's
// goroutine, so failures surface where the experiment is assembled;
// use TryGet or Err to handle a failed cell without unwinding.
func (f *Future[T]) Get() T {
	<-f.done
	if f.err != nil {
		panic(f.err)
	}
	return f.val
}

// TryGet blocks until the cell has run and returns its value, or the
// cell's panic converted to an error (with the worker's stack) — the
// non-crashing read: one failed cell fails only itself.
func (f *Future[T]) TryGet() (T, error) {
	<-f.done
	return f.val, f.err
}

// Err blocks until the cell has run and reports its panic as an error,
// or nil on success.
func (f *Future[T]) Err() error {
	<-f.done
	return f.err
}

// run executes fn guarding against panics; it is the single execution
// path for inline and pooled cells.
func (f *Future[T]) run(fn func() T) {
	defer close(f.done)
	defer func() {
		if r := recover(); r != nil {
			f.err = fmt.Errorf("runner: cell panicked: %v\n%s", r, debug.Stack())
		}
	}()
	f.val = fn()
}

// Submit schedules fn as one cell on the pool and returns its Future.
// On a nil pool fn runs inline before Submit returns. Cells must not
// submit further cells and block on them: with every worker blocked in
// a Get the queue can never drain. Fan-out belongs in the goroutine
// assembling the experiment.
func Submit[T any](p *Pool, fn func() T) *Future[T] {
	f := &Future[T]{done: make(chan struct{})}
	if p == nil {
		f.run(fn)
		return f
	}
	obs := p.obs   //armvet:ignore lockvet — set-once before the first Submit; see the field contract
	prog := p.prog //armvet:ignore lockvet — set-once before the first Submit; see the field contract
	if prog != nil {
		prog.CellQueued()
	}
	var submitted time.Time
	if obs != nil {
		submitted = time.Now() //armvet:ignore determvet — queue-wait histogram only
	}
	p.tasks <- func() {
		if prog != nil {
			prog.CellStarted()
		}
		if obs == nil {
			f.run(fn)
			p.done.Add(1)
			if prog != nil {
				prog.CellDone()
			}
			return
		}
		started := time.Now() //armvet:ignore determvet — service-time histogram only
		obs.queueWait.Observe(started.Sub(submitted).Seconds())
		f.run(fn)
		d := time.Since(started) //armvet:ignore determvet — service-time histogram only
		p.done.Add(1)
		obs.service.Observe(d.Seconds())
		obs.busyNs.Add(uint64(d.Nanoseconds()))
		obs.tasks.Inc()
		if prog != nil {
			prog.CellDone()
		}
	}
	return f
}

// Map evaluates fn(0..n-1) as n independent cells and returns the
// results in index order — the canonical-merge primitive. The order of
// the returned slice (and therefore any table built from it) is
// independent of the pool size. A panicked cell re-panics here, on the
// assembling goroutine.
func Map[T any](p *Pool, n int, fn func(i int) T) []T {
	futs := make([]*Future[T], n)
	for i := range futs {
		i := i
		futs[i] = Submit(p, func() T { return fn(i) })
	}
	out := make([]T, n)
	for i, f := range futs {
		out[i] = f.Get()
	}
	return out
}

// Grid evaluates fn over a rows × cols grid as independent cells and
// returns results indexed [row][col]. This is the shape of most figure
// sweeps: one row per variant/lock/binding, one column per data-point.
func Grid[T any](p *Pool, rows, cols int, fn func(r, c int) T) [][]T {
	flat := Map(p, rows*cols, func(k int) T { return fn(k/cols, k%cols) })
	out := make([][]T, rows)
	for r := range out {
		out[r] = flat[r*cols : (r+1)*cols]
	}
	return out
}
