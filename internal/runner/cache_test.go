package runner

import (
	"fmt"
	"reflect"
	"testing"
)

// memCache is a test double for internal/cellcache: the same
// first-write-wins contract, plus call accounting.
type memCache struct {
	m          map[string][]byte
	gets, puts int
}

func newMemCache() *memCache { return &memCache{m: map[string][]byte{}} }

func (c *memCache) key(scope string, idx int) string { return fmt.Sprintf("%s/%d", scope, idx) }

func (c *memCache) Get(scope string, idx int) ([]byte, bool) {
	c.gets++
	data, ok := c.m[c.key(scope, idx)]
	return data, ok
}

func (c *memCache) Put(scope string, idx int, data []byte) {
	c.puts++
	k := c.key(scope, idx)
	if _, dup := c.m[k]; dup {
		return
	}
	c.m[k] = append([]byte(nil), data...)
}

type cellVal struct {
	Idx int
	Sq  float64
}

func TestMapCachedWarmRunSkipsComputation(t *testing.T) {
	cc := newMemCache()
	calls := 0
	fn := func(i int) cellVal {
		calls++
		return cellVal{Idx: i, Sq: float64(i * i)}
	}
	cold := MapCached(nil, cc, "exp#0", 8, fn)
	if calls != 8 {
		t.Fatalf("cold run computed %d cells, want 8", calls)
	}
	warm := MapCached(nil, cc, "exp#0", 8, func(i int) cellVal {
		t.Fatalf("warm run must not compute cell %d", i)
		return cellVal{}
	})
	if !reflect.DeepEqual(cold, warm) {
		t.Fatalf("warm results differ:\n cold %v\n warm %v", cold, warm)
	}
	plain := Map(nil, 8, fn)
	if !reflect.DeepEqual(cold, plain) {
		t.Fatalf("cached results differ from plain Map:\n cached %v\n plain %v", cold, plain)
	}
}

func TestMapCachedScopesAreDisjoint(t *testing.T) {
	cc := newMemCache()
	MapCached(nil, cc, "exp#0", 2, func(i int) int { return i })
	got := MapCached(nil, cc, "exp#1", 2, func(i int) int { return 100 + i })
	if got[0] != 100 || got[1] != 101 {
		t.Fatalf("scope collision: exp#1 served exp#0's cells: %v", got)
	}
}

// TestMapCachedPanicDoesNotPoisonCache is the worker-panic regression:
// a panicking cell must surface as a miss — nothing stored for it, nor
// for any cell after the failure point — so a retried run recomputes
// and produces correct, cacheable results.
func TestMapCachedPanicDoesNotPoisonCache(t *testing.T) {
	cc := newMemCache()
	attempt := 0
	fn := func(i int) cellVal {
		if i == 3 && attempt == 0 {
			panic("injected cell failure")
		}
		return cellVal{Idx: i, Sq: float64(i * i)}
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("MapCached must re-raise a cell panic")
			}
		}()
		MapCached(nil, cc, "exp#0", 6, fn)
	}()
	for i := 3; i < 6; i++ {
		if _, ok := cc.Get("exp#0", i); ok {
			t.Fatalf("failed run stored cell %d at/after the panic point", i)
		}
	}

	// Retry: the previously panicking cell computes this time; results
	// are correct and the cache ends fully (and correctly) populated.
	attempt++
	got := MapCached(nil, cc, "exp#0", 6, fn)
	for i, v := range got {
		if v.Idx != i || v.Sq != float64(i*i) {
			t.Fatalf("retry produced wrong cell %d: %+v", i, v)
		}
	}
	warm := MapCached(nil, cc, "exp#0", 6, func(i int) cellVal {
		t.Fatalf("cell %d not cached after the successful retry", i)
		return cellVal{}
	})
	if !reflect.DeepEqual(got, warm) {
		t.Fatalf("post-retry warm run differs: %v vs %v", got, warm)
	}
}

func TestMapCachedUndecodableEntryIsAMiss(t *testing.T) {
	cc := newMemCache()
	for i := 0; i < 4; i++ {
		cc.m[cc.key("exp#0", i)] = []byte("not gob")
	}
	calls := 0
	got := MapCached(nil, cc, "exp#0", 4, func(i int) cellVal {
		calls++
		return cellVal{Idx: i}
	})
	if calls != 4 {
		t.Fatalf("corrupt entries must recompute: %d/4 cells ran", calls)
	}
	for i, v := range got {
		if v.Idx != i {
			t.Fatalf("cell %d wrong after recompute: %+v", i, v)
		}
	}
}

// TestMapCachedUnencodableValueOptsOut: a cell type gob cannot encode
// (no exported fields) is returned normally but never stored — the
// cache silently degrades to recomputation for that generator.
func TestMapCachedUnencodableValueOptsOut(t *testing.T) {
	type opaque struct{ hidden int }
	cc := newMemCache()
	calls := 0
	fn := func(i int) opaque { calls++; return opaque{hidden: i} }
	got := MapCached(nil, cc, "exp#0", 3, fn)
	for i, v := range got {
		if v.hidden != i {
			t.Fatalf("cell %d wrong: %+v", i, v)
		}
	}
	if len(cc.m) != 0 {
		t.Fatalf("unencodable values must not be stored, cache has %d entries", len(cc.m))
	}
	MapCached(nil, cc, "exp#0", 3, fn)
	if calls != 6 {
		t.Fatalf("second run must recompute all 3 cells, total calls %d", calls)
	}
}

func TestGridCachedShapeAndWarmEquality(t *testing.T) {
	cc := newMemCache()
	fn := func(r, c int) int { return 10*r + c }
	cold := GridCached(nil, cc, "grid#0", 3, 4, fn)
	if len(cold) != 3 || len(cold[0]) != 4 {
		t.Fatalf("grid shape %dx%d, want 3x4", len(cold), len(cold[0]))
	}
	for r := 0; r < 3; r++ {
		for c := 0; c < 4; c++ {
			if cold[r][c] != 10*r+c {
				t.Fatalf("cell (%d,%d) = %d", r, c, cold[r][c])
			}
		}
	}
	warm := GridCached(nil, cc, "grid#0", 3, 4, func(r, c int) int {
		t.Fatalf("warm grid must not compute (%d,%d)", r, c)
		return 0
	})
	if !reflect.DeepEqual(cold, warm) {
		t.Fatalf("warm grid differs: %v vs %v", warm, cold)
	}
	if !reflect.DeepEqual(cold, Grid(nil, 3, 4, fn)) {
		t.Fatal("cached grid differs from plain Grid")
	}
}

// TestMapCachedWithPoolWarm exercises the cached path through a real
// worker pool: hits must not consume pool capacity, and a mixed
// hit/miss run merges in canonical order.
func TestMapCachedWithPoolWarm(t *testing.T) {
	cc := newMemCache()
	p := New(4)
	defer p.Close()
	cold := MapCached(p, cc, "exp#0", 16, func(i int) cellVal {
		return cellVal{Idx: i, Sq: float64(i * i)}
	})
	done := p.TasksDone()
	if done != 16 {
		t.Fatalf("cold run used %d pool cells, want 16", done)
	}
	warm := MapCached(p, cc, "exp#0", 16, func(i int) cellVal {
		t.Fatalf("warm run must not compute cell %d", i)
		return cellVal{}
	})
	if p.TasksDone() != done {
		t.Fatal("warm hits must not consume pool cells")
	}
	if !reflect.DeepEqual(cold, warm) {
		t.Fatal("warm pool run differs from cold")
	}
}
