package runner

import (
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapOrderIndependentOfPoolSize(t *testing.T) {
	fn := func(i int) int { return i * i }
	want := Map(nil, 64, fn) // inline sequential baseline
	for _, workers := range []int{1, 2, 4, 8} {
		p := New(workers)
		got := Map(p, 64, fn)
		p.Close()
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: got[%d]=%d want %d", workers, i, got[i], want[i])
			}
		}
	}
}

func TestGridShape(t *testing.T) {
	p := New(3)
	defer p.Close()
	g := Grid(p, 4, 5, func(r, c int) int { return 10*r + c })
	if len(g) != 4 {
		t.Fatalf("rows = %d, want 4", len(g))
	}
	for r := range g {
		if len(g[r]) != 5 {
			t.Fatalf("row %d cols = %d, want 5", r, len(g[r]))
		}
		for c := range g[r] {
			if g[r][c] != 10*r+c {
				t.Fatalf("g[%d][%d] = %d", r, c, g[r][c])
			}
		}
	}
}

func TestNilPoolRunsInline(t *testing.T) {
	gid := func() uint64 {
		// Goroutine identity proxy: inline cells must observe the
		// caller's stack-local state, so use a plain side effect.
		return 0
	}
	_ = gid
	ran := false
	f := Submit[int](nil, func() int { ran = true; return 7 })
	if !ran {
		t.Fatal("nil-pool Submit must run the cell before returning")
	}
	if got := f.Get(); got != 7 {
		t.Fatalf("Get = %d, want 7", got)
	}
	if (*Pool)(nil).Workers() != 0 {
		t.Fatal("nil pool must report 0 workers")
	}
	(*Pool)(nil).Close() // must not panic
}

func TestBoundedQueueBackpressure(t *testing.T) {
	p := New(2)
	defer p.Close()
	var inFlight, maxInFlight int64
	var mu sync.Mutex
	release := make(chan struct{})
	var futs []*Future[int]
	go func() {
		time.Sleep(20 * time.Millisecond)
		close(release)
	}()
	for i := 0; i < 32; i++ {
		futs = append(futs, Submit(p, func() int {
			n := atomic.AddInt64(&inFlight, 1)
			mu.Lock()
			if n > maxInFlight {
				maxInFlight = n
			}
			mu.Unlock()
			<-release
			atomic.AddInt64(&inFlight, -1)
			return 1
		}))
	}
	sum := 0
	for _, f := range futs {
		sum += f.Get()
	}
	if sum != 32 {
		t.Fatalf("sum = %d, want 32", sum)
	}
	if maxInFlight > 2 {
		t.Fatalf("max in-flight cells = %d, want <= 2 workers", maxInFlight)
	}
}

func TestPanicPropagatesToGet(t *testing.T) {
	p := New(2)
	defer p.Close()
	f := Submit(p, func() int { panic("cell boom") })
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Get must re-panic a panicked cell")
		}
		if !strings.Contains(strings.ToLower(strings.TrimSpace(asString(r))), "cell boom") {
			t.Fatalf("panic value %v should carry the cell's message", r)
		}
	}()
	f.Get()
}

func asString(v any) string {
	if e, ok := v.(error); ok {
		return e.Error()
	}
	if s, ok := v.(string); ok {
		return s
	}
	return ""
}

func TestDefaultSizeIsGOMAXPROCS(t *testing.T) {
	p := New(0)
	defer p.Close()
	if p.Workers() != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers = %d, want GOMAXPROCS = %d", p.Workers(), runtime.GOMAXPROCS(0))
	}
}

func TestCloseIdempotent(t *testing.T) {
	p := New(1)
	p.Close()
	p.Close() // second close must not panic
}

func TestPanicIsolatedToCell(t *testing.T) {
	// One panicking grid cell must fail only its own Future: every
	// other cell completes and the process survives.
	p := New(4)
	defer p.Close()
	const n = 16
	futs := make([]*Future[int], n)
	for i := 0; i < n; i++ {
		i := i
		futs[i] = Submit(p, func() int {
			if i == 5 {
				panic("cell 5 boom")
			}
			return i * i
		})
	}
	for i, f := range futs {
		v, err := f.TryGet()
		if i == 5 {
			if err == nil {
				t.Fatal("cell 5 must report its panic as an error")
			}
			if !strings.Contains(err.Error(), "cell 5 boom") {
				t.Fatalf("error lost the panic message: %v", err)
			}
			if !strings.Contains(err.Error(), "runner_test.go") {
				t.Fatalf("error should carry the worker stack, got: %.120s", err.Error())
			}
			if f.Err() == nil {
				t.Fatal("Err must agree with TryGet")
			}
			continue
		}
		if err != nil {
			t.Fatalf("healthy cell %d failed: %v", i, err)
		}
		if v != i*i {
			t.Fatalf("cell %d = %d, want %d", i, v, i*i)
		}
	}
}

func TestInlinePanicCapturedToo(t *testing.T) {
	f := Submit[int](nil, func() int { panic("inline boom") })
	if err := f.Err(); err == nil || !strings.Contains(err.Error(), "inline boom") {
		t.Fatalf("inline cell panic not captured: %v", err)
	}
}

func TestTasksDoneCounts(t *testing.T) {
	p := New(2)
	defer p.Close()
	Map(p, 10, func(i int) int { return i })
	if got := p.TasksDone(); got != 10 {
		t.Fatalf("TasksDone = %d, want 10", got)
	}
	if (*Pool)(nil).TasksDone() != 0 {
		t.Fatal("nil pool must report 0 tasks")
	}
}
