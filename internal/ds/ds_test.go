package ds

import (
	"testing"

	"armbar/internal/locks"
	"armbar/internal/platform"
	"armbar/internal/sim"
)

func run(t *testing.T, cfg Config) Result {
	t.Helper()
	if cfg.Plat == nil {
		cfg.Plat = platform.Kunpeng916()
	}
	if cfg.Seed == 0 {
		cfg.Seed = 17
	}
	return Run(cfg)
}

func TestQueueStackSingleThreadSemantics(t *testing.T) {
	m := sim.New(sim.Config{Plat: platform.Kunpeng916(), Mode: sim.WMM, Seed: 1})
	q := newQueue(m, 8)
	st := newStack(m, 8)
	var qGot, sGot []uint64
	m.Spawn(0, func(th *sim.Thread) {
		for i := uint64(1); i <= 5; i++ {
			q.enqueue(th, i*10)
			st.push(th, i*10)
		}
		for i := 0; i < 5; i++ {
			v, ok := q.dequeue(th)
			if ok {
				qGot = append(qGot, v)
			}
			v, ok = st.pop(th)
			if ok {
				sGot = append(sGot, v)
			}
		}
		if _, ok := q.dequeue(th); ok {
			t.Error("queue should be empty")
		}
		if _, ok := st.pop(th); ok {
			t.Error("stack should be empty")
		}
	})
	m.Run()
	for i, v := range qGot {
		if v != uint64(i+1)*10 {
			t.Errorf("queue FIFO broken at %d: %d", i, v)
		}
	}
	for i, v := range sGot {
		if v != uint64(5-i)*10 {
			t.Errorf("stack LIFO broken at %d: %d", i, v)
		}
	}
}

func TestSortedListSemantics(t *testing.T) {
	m := sim.New(sim.Config{Plat: platform.Kunpeng916(), Mode: sim.WMM, Seed: 2})
	l := newList(m, 8, []uint64{2, 4, 6})
	m.Spawn(0, func(th *sim.Thread) {
		if !l.contains(th, 4) || l.contains(th, 5) {
			t.Error("preload lookup broken")
		}
		if !l.insert(th, 5) {
			t.Error("insert of new key failed")
		}
		if l.insert(th, 5) {
			t.Error("duplicate insert should fail")
		}
		if !l.contains(th, 5) {
			t.Error("inserted key not found")
		}
		if !l.remove(th, 5) {
			t.Error("remove failed")
		}
		if l.remove(th, 5) {
			t.Error("double remove should fail")
		}
		if l.contains(th, 5) {
			t.Error("removed key still present")
		}
	})
	m.Run()
	if n := listLen(m, l.head); n != 3 {
		t.Errorf("final list length %d, want 3", n)
	}
}

func TestAllStructuresAllLocksValid(t *testing.T) {
	kinds := []locks.Kind{locks.Ticket, locks.FFWD, locks.FFWDPilot, locks.DSMSynch, locks.DSMSynchPilot}
	for _, k := range kinds {
		for _, s := range []Structure{Queue, Stack} {
			r := run(t, Config{Kind: k, Struct: s, Threads: 8, Rounds: 30})
			if !r.Valid {
				t.Errorf("%v/%v: inconsistent final state", k, s)
			}
		}
		r := run(t, Config{Kind: k, Struct: List, Threads: 8, Rounds: 15, Preload: 50})
		if !r.Valid {
			t.Errorf("%v/List: inconsistent final state", k)
		}
		r = run(t, Config{Kind: k, Struct: HashTable, Threads: 8, Rounds: 15, Preload: 64, Buckets: 8})
		if !r.Valid {
			t.Errorf("%v/HashTable: inconsistent final state", k)
		}
	}
}

func TestFig8aPilotGainOnQueueStack(t *testing.T) {
	// Figure 8a: Pilot improves DSMSynch and FFWD on queue and stack
	// (paper: 20-30% / 16-26%).
	for _, s := range []Structure{Queue, Stack} {
		ds := run(t, Config{Kind: locks.DSMSynch, Struct: s, Threads: 16, Rounds: 40}).Throughput()
		dsp := run(t, Config{Kind: locks.DSMSynchPilot, Struct: s, Threads: 16, Rounds: 40}).Throughput()
		if dsp < 1.05*ds {
			t.Errorf("%v: DSynch-P (%g) should improve on DSynch (%g)", s, dsp, ds)
		}
		ff := run(t, Config{Kind: locks.FFWD, Struct: s, Threads: 16, Rounds: 40}).Throughput()
		ffp := run(t, Config{Kind: locks.FFWDPilot, Struct: s, Threads: 16, Rounds: 40}).Throughput()
		if ffp < ff {
			t.Errorf("%v: FFWD-P (%g) should not regress vs FFWD (%g)", s, ffp, ff)
		}
	}
}

func TestFig8bListGainShrinksWithLength(t *testing.T) {
	// Figure 8b: as the preloaded list grows, the critical section
	// lengthens and Pilot's relative gain falls off.
	gain := func(preload int) float64 {
		ds := run(t, Config{Kind: locks.DSMSynch, Struct: List, Threads: 12, Rounds: 12,
			Preload: preload}).Throughput()
		dsp := run(t, Config{Kind: locks.DSMSynchPilot, Struct: List, Threads: 12, Rounds: 12,
			Preload: preload}).Throughput()
		return dsp / ds
	}
	gShort, gLong := gain(20), gain(300)
	if gShort < 1.0 {
		t.Errorf("short list: Pilot should win (%.2fx)", gShort)
	}
	if gLong > gShort+0.05 {
		t.Errorf("gain should shrink with list length: short=%.2f long=%.2f", gShort, gLong)
	}
}

func TestFig8cHashTableGainShrinksWithBuckets(t *testing.T) {
	// Figure 8c: more buckets → fewer threads per lock → Pilot barely
	// used; the gain falls but stays non-negative.
	gain := func(buckets int) float64 {
		ds := run(t, Config{Kind: locks.DSMSynch, Struct: HashTable, Threads: 12, Rounds: 10,
			Preload: 128, Buckets: buckets}).Throughput()
		dsp := run(t, Config{Kind: locks.DSMSynchPilot, Struct: HashTable, Threads: 12, Rounds: 10,
			Preload: 128, Buckets: buckets}).Throughput()
		return dsp / ds
	}
	gFew, gMany := gain(2), gain(64)
	if gFew < 1.0 {
		t.Errorf("few buckets: Pilot should win (%.2fx)", gFew)
	}
	if gMany < 0.9 {
		t.Errorf("many buckets: Pilot must not cost much (%.2fx)", gMany)
	}
}

func TestSkipListSemantics(t *testing.T) {
	m := sim.New(sim.Config{Plat: platform.Kunpeng916(), Mode: sim.WMM, Seed: 4})
	sl := newSkiplist(m, 8, []uint64{2, 4, 6, 8})
	m.Spawn(0, func(th *sim.Thread) {
		if !sl.contains(th, 6) || sl.contains(th, 5) {
			t.Error("preload lookup broken")
		}
		if !sl.insert(th, 5) || sl.insert(th, 5) {
			t.Error("insert semantics broken")
		}
		if !sl.contains(th, 5) {
			t.Error("inserted key missing")
		}
		if !sl.remove(th, 5) || sl.remove(th, 5) {
			t.Error("remove semantics broken")
		}
		// Order check: walk level 0 ascending.
		prev := uint64(0)
		for cur := th.Load(slNext(sl.head, 0)); cur != 0; cur = th.Load(slNext(cur, 0)) {
			k := th.Load(cur + 0)
			if k <= prev {
				t.Errorf("skiplist order broken: %d after %d", k, prev)
			}
			prev = k
		}
	})
	m.Run()
	if n := slLen(m, sl.head); n != 4 {
		t.Errorf("final length %d, want 4", n)
	}
}

func TestSkipListUnderLocks(t *testing.T) {
	for _, k := range []locks.Kind{locks.Ticket, locks.DSMSynch, locks.DSMSynchPilot} {
		r := run(t, Config{Kind: k, Struct: SkipList, Threads: 8, Rounds: 12, Preload: 64})
		if !r.Valid {
			t.Errorf("%v/SkipList: inconsistent final state", k)
		}
	}
}

func TestSkipListPilotGain(t *testing.T) {
	ds := run(t, Config{Kind: locks.DSMSynch, Struct: SkipList, Threads: 12, Rounds: 10,
		Preload: 64}).Throughput()
	dsp := run(t, Config{Kind: locks.DSMSynchPilot, Struct: SkipList, Threads: 12, Rounds: 10,
		Preload: 64}).Throughput()
	if dsp < ds {
		t.Errorf("DSynch-P (%g) should not regress vs DSynch (%g) on the skip list", dsp, ds)
	}
}
