// Package ds implements the paper's data-structure benchmarks (§5.4,
// Figure 8a-c): a queue, a stack, a sorted linked list and a hash
// table, each protected by one of the locks from package locks, with
// the workloads the paper describes (insert one, remove one, after
// every ten queries for the list/table; plain insert+remove pairs for
// the queue and stack).
//
// The structures live in simulated memory: every node is a cache line,
// so traversals and mutations produce the coherence traffic a real
// implementation would.
package ds

import (
	"armbar/internal/sim"
)

// list is a sorted singly-linked intrusive list in simulated memory.
// Node layout: +0 key, +8 next (address, 0 = nil). A free-list reuses
// nodes since the simulator has no deallocation.
type list struct {
	head uint64 // sentinel node with key 0 (addresses are the "keys")
	free uint64 // free-list head (chained through +8); lock-protected
}

// newList allocates the sentinel and a pool of nodes, preloading the
// given keys (strictly increasing recommended).
func newList(m *sim.Machine, pool int, preload []uint64) *list {
	l := &list{head: m.Alloc(1)}
	m.SetInitial(l.head+0, 0)
	m.SetInitial(l.head+8, 0)
	// Preload sorted keys directly into committed memory.
	prev := l.head
	for _, k := range preload {
		n := m.Alloc(1)
		m.SetInitial(n+0, k)
		m.SetInitial(n+8, 0)
		m.SetInitial(prev+8, n)
		prev = n
	}
	for i := 0; i < pool; i++ {
		n := m.Alloc(1)
		m.SetInitial(n+8, l.free)
		l.free = n
	}
	return l
}

// alloc pops a node from the free list (caller holds the lock).
func (l *list) alloc(t *sim.Thread) uint64 {
	n := l.free
	if n == 0 {
		panic("ds: node pool exhausted")
	}
	l.free = t.Load(n + 8)
	return n
}

// release pushes a node back (caller holds the lock).
func (l *list) release(t *sim.Thread, n uint64) {
	t.Store(n+8, l.free)
	l.free = n
}

// insert adds key in sorted position; returns false if present.
func (l *list) insert(t *sim.Thread, key uint64) bool {
	prev := l.head
	cur := t.Load(prev + 8)
	for cur != 0 {
		k := t.Load(cur + 0)
		if k == key {
			return false
		}
		if k > key {
			break
		}
		prev, cur = cur, t.Load(cur+8)
	}
	n := l.alloc(t)
	t.Store(n+0, key)
	t.Store(n+8, cur)
	t.Store(prev+8, n)
	return true
}

// remove deletes key; returns false if absent.
func (l *list) remove(t *sim.Thread, key uint64) bool {
	prev := l.head
	cur := t.Load(prev + 8)
	for cur != 0 {
		k := t.Load(cur + 0)
		if k == key {
			t.Store(prev+8, t.Load(cur+8))
			l.release(t, cur)
			return true
		}
		if k > key {
			return false
		}
		prev, cur = cur, t.Load(cur+8)
	}
	return false
}

// contains searches for key.
func (l *list) contains(t *sim.Thread, key uint64) bool {
	cur := t.Load(l.head + 8)
	for cur != 0 {
		k := t.Load(cur + 0)
		if k == key {
			return true
		}
		if k > key {
			return false
		}
		cur = t.Load(cur + 8)
	}
	return false
}

// length walks the list (used by tests on the final committed state).
func listLen(m *sim.Machine, head uint64) int {
	n := 0
	for cur := m.Directory().Committed(head + 8); cur != 0; cur = m.Directory().Committed(cur + 8) {
		n++
	}
	return n
}

// queue is a linked FIFO queue: head/tail words on one line each,
// nodes one line each, with a free list.
type queue struct {
	meta uint64 // +0 head, +8 tail (both node addresses; 0 = empty)
	free uint64
}

func newQueue(m *sim.Machine, pool int) *queue {
	q := &queue{meta: m.Alloc(1)}
	for i := 0; i < pool; i++ {
		n := m.Alloc(1)
		m.SetInitial(n+8, q.free)
		q.free = n
	}
	return q
}

func (q *queue) alloc(t *sim.Thread) uint64 {
	n := q.free
	if n == 0 {
		panic("ds: queue pool exhausted")
	}
	// Free-list links live in committed memory only at init; after that
	// the lock holder maintains them through plain loads/stores.
	q.free = t.Load(n + 8)
	return n
}

func (q *queue) release(t *sim.Thread, n uint64) {
	t.Store(n+8, q.free)
	q.free = n
}

// enqueue appends value (caller holds the lock).
func (q *queue) enqueue(t *sim.Thread, v uint64) {
	n := q.alloc(t)
	t.Store(n+0, v)
	t.Store(n+8, 0)
	tail := t.Load(q.meta + 8)
	if tail == 0 {
		t.Store(q.meta+0, n)
	} else {
		t.Store(tail+8, n)
	}
	t.Store(q.meta+8, n)
}

// dequeue removes the oldest value; ok reports emptiness.
func (q *queue) dequeue(t *sim.Thread) (uint64, bool) {
	head := t.Load(q.meta + 0)
	if head == 0 {
		return 0, false
	}
	v := t.Load(head + 0)
	next := t.Load(head + 8)
	t.Store(q.meta+0, next)
	if next == 0 {
		t.Store(q.meta+8, 0)
	}
	q.release(t, head)
	return v, true
}

// stack is a linked LIFO stack: top word plus a free list.
type stack struct {
	top  uint64 // line holding the top pointer at +0
	free uint64
}

func newStack(m *sim.Machine, pool int) *stack {
	s := &stack{top: m.Alloc(1)}
	for i := 0; i < pool; i++ {
		n := m.Alloc(1)
		m.SetInitial(n+8, s.free)
		s.free = n
	}
	return s
}

func (s *stack) push(t *sim.Thread, v uint64) {
	n := s.free
	if n == 0 {
		panic("ds: stack pool exhausted")
	}
	s.free = t.Load(n + 8)
	t.Store(n+0, v)
	t.Store(n+8, t.Load(s.top+0))
	t.Store(s.top+0, n)
}

func (s *stack) pop(t *sim.Thread) (uint64, bool) {
	n := t.Load(s.top + 0)
	if n == 0 {
		return 0, false
	}
	v := t.Load(n + 0)
	t.Store(s.top+0, t.Load(n+8))
	t.Store(n+8, s.free)
	s.free = n
	return v, true
}
