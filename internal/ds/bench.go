package ds

import (
	"fmt"

	"armbar/internal/isa"
	"armbar/internal/locks"
	"armbar/internal/platform"
	"armbar/internal/sim"
	"armbar/internal/topo"
)

// Structure selects the benchmarked data structure.
type Structure int

const (
	// Queue: each operation round is one enqueue then one dequeue.
	Queue Structure = iota
	// Stack: one push then one pop.
	Stack
	// List: sorted linked list; ten lookups then one insert and one
	// remove (the paper's 10-query:1-update mix).
	List
	// HashTable: per-bucket list+lock; same 10:1 mix.
	HashTable
	// SkipList: lock-protected skip list; same 10:1 mix (a synchrobench
	// staple beyond the paper's four structures).
	SkipList
)

func (s Structure) String() string {
	switch s {
	case Queue:
		return "Queue"
	case Stack:
		return "Stack"
	case List:
		return "LinkList"
	case HashTable:
		return "HashTable"
	case SkipList:
		return "SkipList"
	default:
		return fmt.Sprintf("Structure(%d)", int(s))
	}
}

// Config describes one data-structure benchmark run.
type Config struct {
	Plat    *platform.Platform
	Kind    locks.Kind
	Struct  Structure
	Threads int
	Rounds  int // operation rounds per thread
	Preload int // preloaded elements (List: Figure 8b x-axis; HashTable: 512)
	Buckets int // HashTable bucket count (Figure 8c x-axis)
	Seed    int64
}

// Result is one run's outcome.
type Result struct {
	Config  Config
	Cycles  float64
	Elapsed float64
	Ops     int // total structure operations executed
	Valid   bool
	Stats   sim.Stats
}

// Throughput returns structure operations per second.
func (r Result) Throughput() float64 {
	if r.Elapsed == 0 {
		return 0
	}
	return float64(r.Ops) / r.Elapsed
}

// keyFor spreads per-thread keys so list updates hit distinct keys.
func keyFor(thread, round int) uint64 {
	return uint64(thread)<<32 | uint64(round+1)<<1 | 1 // odd keys; preload uses even
}

// bucketOf hashes a key to its bucket with a full-width mix so every
// key bit influences the choice (a plain modulus would drop the
// thread bits and pile all threads onto one bucket per round).
func bucketOf(key uint64, nLocks int) int {
	h := key * 0x9E3779B97F4A7C15
	return int((h >> 33) % uint64(nLocks))
}

// Run executes the benchmark.
func Run(cfg Config) Result {
	if cfg.Threads == 0 {
		cfg.Threads = 8
	}
	if cfg.Rounds == 0 {
		cfg.Rounds = 60
	}
	if cfg.Buckets == 0 {
		cfg.Buckets = 1
	}
	m := sim.New(sim.Config{Plat: cfg.Plat, Mode: sim.WMM, Seed: cfg.Seed})
	cores, serverCore := benchCores(cfg.Plat, cfg.Threads)
	cfg.Threads = len(cores)

	nLocks := 1
	if cfg.Struct == HashTable {
		nLocks = cfg.Buckets
	}
	lks, servers := makeLocks(m, cfg, nLocks)

	// Build the structures.
	var q *queue
	var st *stack
	var sl *skiplist
	lists := make([]*list, nLocks)
	switch cfg.Struct {
	case Queue:
		q = newQueue(m, cfg.Threads+2)
	case Stack:
		st = newStack(m, cfg.Threads+2)
	case List:
		lists[0] = newList(m, cfg.Threads+2, evenKeys(cfg.Preload, 0, 1))
	case SkipList:
		sl = newSkiplist(m, cfg.Threads+2, evenKeys(cfg.Preload, 0, 1))
	case HashTable:
		per := cfg.Preload / cfg.Buckets
		for b := 0; b < cfg.Buckets; b++ {
			lists[b] = newList(m, cfg.Threads+2, evenKeys(per, b, cfg.Buckets))
		}
	}

	ok := true
	totalOps := 0
	opsOf := func() int {
		switch cfg.Struct {
		case Queue, Stack:
			return 2
		default:
			return 12 // 10 lookups + insert + remove
		}
	}
	totalOps = cfg.Threads * cfg.Rounds * opsOf()

	remaining := int64(cfg.Threads)
	for i := 0; i < cfg.Threads; i++ {
		i := i
		m.Spawn(cores[i], func(t *sim.Thread) {
			for r := 0; r < cfg.Rounds; r++ {
				switch cfg.Struct {
				case Queue:
					v := keyFor(i, r)
					lks[0].Exec(t, i, func(tt *sim.Thread, arg uint64) uint64 {
						q.enqueue(tt, arg)
						return 0
					}, v)
					got := lks[0].Exec(t, i, func(tt *sim.Thread, _ uint64) uint64 {
						u, okd := q.dequeue(tt)
						if !okd {
							return 0
						}
						return u
					}, 0)
					if got == 0 {
						ok = false
					}
				case Stack:
					v := keyFor(i, r)
					lks[0].Exec(t, i, func(tt *sim.Thread, arg uint64) uint64 {
						st.push(tt, arg)
						return 0
					}, v)
					got := lks[0].Exec(t, i, func(tt *sim.Thread, _ uint64) uint64 {
						u, okd := st.pop(tt)
						if !okd {
							return 0
						}
						return u
					}, 0)
					if got == 0 {
						ok = false
					}
				case List, HashTable:
					key := keyFor(i, r)
					b := bucketOf(key, nLocks)
					l := lists[b]
					for qn := 0; qn < 10; qn++ {
						probe := uint64(2 * (qn + 1) * maxi(cfg.Preload/maxi(nLocks, 1)/11, 1))
						lks[b].Exec(t, i, func(tt *sim.Thread, arg uint64) uint64 {
							l.contains(tt, arg)
							return 1
						}, probe)
					}
					ins := lks[b].Exec(t, i, func(tt *sim.Thread, arg uint64) uint64 {
						if l.insert(tt, arg) {
							return 1
						}
						return 0
					}, key)
					rem := lks[b].Exec(t, i, func(tt *sim.Thread, arg uint64) uint64 {
						if l.remove(tt, arg) {
							return 1
						}
						return 0
					}, key)
					if ins == 0 || rem == 0 {
						ok = false
					}
				case SkipList:
					key := keyFor(i, r)
					for qn := 0; qn < 10; qn++ {
						probe := uint64(2 * (qn + 1) * maxi(cfg.Preload/11, 1))
						lks[0].Exec(t, i, func(tt *sim.Thread, arg uint64) uint64 {
							sl.contains(tt, arg)
							return 1
						}, probe)
					}
					ins := lks[0].Exec(t, i, func(tt *sim.Thread, arg uint64) uint64 {
						if sl.insert(tt, arg) {
							return 1
						}
						return 0
					}, key)
					rem := lks[0].Exec(t, i, func(tt *sim.Thread, arg uint64) uint64 {
						if sl.remove(tt, arg) {
							return 1
						}
						return 0
					}, key)
					if ins == 0 || rem == 0 {
						ok = false
					}
				}
			}
			remaining--
		})
	}
	for _, s := range servers {
		s := s
		m.Spawn(serverCore, func(t *sim.Thread) { s.Run(t, &remaining) })
	}

	cycles := m.Run()
	valid := ok && finalStateConsistent(m, cfg, q, st, sl, lists)
	return Result{
		Config:  cfg,
		Cycles:  cycles,
		Elapsed: m.Seconds(cycles),
		Ops:     totalOps,
		Valid:   valid,
		Stats:   m.Stats(),
	}
}

// makeLocks builds nLocks independent locks of the configured kind.
// FFWD variants get one dedicated server thread per lock, all stacked
// on a single spare core (the paper likewise rebinds servers onto used
// cores once 16 dedicated ones are taken).
func makeLocks(m *sim.Machine, cfg Config, nLocks int) ([]locks.Lock, []*locks.Server) {
	lks := make([]locks.Lock, nLocks)
	var servers []*locks.Server
	for b := 0; b < nLocks; b++ {
		switch cfg.Kind {
		case locks.Ticket:
			lks[b] = locks.NewTicket(m, isa.DMBSt)
		case locks.FFWD, locks.FFWDPilot:
			fl := locks.NewFFWD(m, cfg.Threads, cfg.Kind == locks.FFWDPilot, [2]isa.Barrier{})
			servers = append(servers, fl.Server())
			lks[b] = fl
		case locks.DSMSynch, locks.DSMSynchPilot:
			lks[b] = locks.NewDSMSynch(m, cfg.Threads, cfg.Kind == locks.DSMSynchPilot, [2]isa.Barrier{})
		default:
			panic("ds: unknown lock kind")
		}
	}
	return lks, servers
}

func evenKeys(n, offset, stride int) []uint64 {
	out := make([]uint64, 0, n)
	for i := 1; i <= n; i++ {
		out = append(out, uint64(2*(offset+i*stride)))
	}
	return out
}

func finalStateConsistent(m *sim.Machine, cfg Config, q *queue, st *stack, sl *skiplist, lists []*list) bool {
	switch cfg.Struct {
	case Queue:
		return m.Directory().Committed(q.meta+0) == 0 && m.Directory().Committed(q.meta+8) == 0
	case Stack:
		return m.Directory().Committed(st.top+0) == 0
	case List:
		return listLen(m, lists[0].head) == cfg.Preload
	case SkipList:
		return slLen(m, sl.head) == cfg.Preload
	case HashTable:
		total := 0
		for _, l := range lists {
			total += listLen(m, l.head)
		}
		return total == (cfg.Preload/maxi(cfg.Buckets, 1))*cfg.Buckets
	}
	return true
}

// benchCores assigns n client cores round-robin across NUMA
// nodes, the way a full-machine binding (the paper uses 63 threads on
// both nodes) spreads them; the extra core returned hosts dedicated
// FFWD servers.
func benchCores(p *platform.Platform, n int) ([]topo.CoreID, topo.CoreID) {
	total := p.Sys.NumCores()
	if n >= total {
		n = total - 1
	}
	var lists [][]topo.CoreID
	for node := 0; node < p.Sys.NumNodes(); node++ {
		lists = append(lists, p.Sys.NodeCores(node))
	}
	cores := make([]topo.CoreID, 0, n)
	for i := 0; len(cores) < n; i++ {
		l := lists[i%len(lists)]
		if k := i / len(lists); k < len(l) {
			cores = append(cores, l[k])
		}
	}
	server := topo.CoreID(total - 1)
	for _, c := range cores {
		if c == server {
			server = topo.CoreID(total - 2)
		}
	}
	return cores, server
}

func maxi(a, b int) int {
	if a > b {
		return a
	}
	return b
}
