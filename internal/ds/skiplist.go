package ds

import (
	"armbar/internal/sim"
)

// skiplist is a deterministic skip list in simulated memory, the
// fourth structure of the synchrobench family the paper's benchmarks
// draw from. Each node occupies one cache line:
//
//	+0  key
//	+8  height (1..maxLevel)
//	+16 next[0]
//	+24 next[1]
//	+32 next[2]
//	+40 next[3]
//
// maxLevel is 4 so a node always fits one line; heights come from a
// deterministic xorshift so runs are reproducible.
type skiplist struct {
	head uint64 // sentinel with height maxLevel
	free uint64
	rng  uint64
}

const slMaxLevel = 4

func slNext(node uint64, lvl int) uint64 { return node + 16 + uint64(lvl)*8 }

// newSkiplist allocates the sentinel, a node pool, and preloads keys.
func newSkiplist(m *sim.Machine, pool int, preload []uint64) *skiplist {
	s := &skiplist{head: m.Alloc(1), rng: 0x9E3779B97F4A7C15}
	m.SetInitial(s.head+8, slMaxLevel)
	// Preload directly into committed memory, keys ascending.
	update := [slMaxLevel]uint64{}
	for l := 0; l < slMaxLevel; l++ {
		update[l] = s.head
	}
	for _, k := range preload {
		n := m.Alloc(1)
		h := s.height()
		m.SetInitial(n+0, k)
		m.SetInitial(n+8, uint64(h))
		for l := 0; l < h; l++ {
			m.SetInitial(n+16+uint64(l)*8, 0)
			m.SetInitial(slNext(update[l], l), n)
			update[l] = n
		}
	}
	for i := 0; i < pool; i++ {
		n := m.Alloc(1)
		m.SetInitial(slNext(n, 0), s.free)
		s.free = n
	}
	return s
}

// height draws a deterministic geometric level in [1, slMaxLevel].
func (s *skiplist) height() int {
	s.rng ^= s.rng << 13
	s.rng ^= s.rng >> 7
	s.rng ^= s.rng << 17
	h := 1
	for v := s.rng; v&1 == 1 && h < slMaxLevel; v >>= 1 {
		h++
	}
	return h
}

// findPredecessors walks the list (caller holds the lock) and fills
// update with the last node below key per level.
func (s *skiplist) findPredecessors(t *sim.Thread, key uint64, update *[slMaxLevel]uint64) uint64 {
	cur := s.head
	for l := slMaxLevel - 1; l >= 0; l-- {
		for {
			nxt := t.Load(slNext(cur, l))
			if nxt == 0 || t.Load(nxt+0) >= key {
				break
			}
			cur = nxt
		}
		update[l] = cur
	}
	return t.Load(slNext(update[0], 0))
}

// contains searches for key.
func (s *skiplist) contains(t *sim.Thread, key uint64) bool {
	var update [slMaxLevel]uint64
	n := s.findPredecessors(t, key, &update)
	return n != 0 && t.Load(n+0) == key
}

// insert adds key; returns false when already present.
func (s *skiplist) insert(t *sim.Thread, key uint64) bool {
	var update [slMaxLevel]uint64
	n := s.findPredecessors(t, key, &update)
	if n != 0 && t.Load(n+0) == key {
		return false
	}
	node := s.free
	if node == 0 {
		panic("ds: skiplist pool exhausted")
	}
	s.free = t.Load(slNext(node, 0))
	h := s.height()
	t.Store(node+0, key)
	t.Store(node+8, uint64(h))
	for l := 0; l < h; l++ {
		t.Store(slNext(node, l), t.Load(slNext(update[l], l)))
		t.Store(slNext(update[l], l), node)
	}
	return true
}

// remove deletes key; returns false when absent.
func (s *skiplist) remove(t *sim.Thread, key uint64) bool {
	var update [slMaxLevel]uint64
	n := s.findPredecessors(t, key, &update)
	if n == 0 || t.Load(n+0) != key {
		return false
	}
	h := int(t.Load(n + 8))
	for l := 0; l < h; l++ {
		if t.Load(slNext(update[l], l)) == n {
			t.Store(slNext(update[l], l), t.Load(slNext(n, l)))
		}
	}
	t.Store(slNext(n, 0), s.free)
	s.free = n
	return true
}

// slLen counts level-0 nodes in committed memory (post-run check).
func slLen(m *sim.Machine, head uint64) int {
	n := 0
	for cur := m.Directory().Committed(slNext(head, 0)); cur != 0; {
		n++
		cur = m.Directory().Committed(slNext(cur, 0))
	}
	return n
}
