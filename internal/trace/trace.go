// Package trace records and renders simulator event streams: a bounded
// in-memory recorder implementing sim.Tracer, a per-kind/per-thread
// summary, and a Chrome-trace (about://tracing, Perfetto) JSON
// exporter for visual inspection of barrier stalls and cache-line
// ping-pong.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"armbar/internal/sim"
)

// Recorder collects events up to a cap (0 = unlimited). It implements
// sim.Tracer.
type Recorder struct {
	Cap     int
	events  []sim.TraceEvent
	dropped int
}

// NewRecorder returns a recorder keeping at most capacity events
// (0 = unlimited).
func NewRecorder(capacity int) *Recorder {
	return &Recorder{Cap: capacity}
}

// Event implements sim.Tracer.
func (r *Recorder) Event(ev sim.TraceEvent) {
	if r.Cap > 0 && len(r.events) >= r.Cap {
		r.dropped++
		return
	}
	r.events = append(r.events, ev)
}

// Events returns the recorded events in arrival order.
func (r *Recorder) Events() []sim.TraceEvent { return r.events }

// Dropped reports how many events exceeded the cap.
func (r *Recorder) Dropped() int { return r.dropped }

// Summary aggregates a recording.
type Summary struct {
	PerKind   map[sim.TraceKind]KindStats
	PerThread map[int]ThreadStats
}

// KindStats is the aggregate for one operation kind.
type KindStats struct {
	Count  int
	Cycles float64
}

// ThreadStats is the aggregate for one thread.
type ThreadStats struct {
	Ops          int
	Cycles       float64
	BarrierStall float64
}

// Summarize folds the recording into totals.
func (r *Recorder) Summarize() Summary {
	s := Summary{
		PerKind:   make(map[sim.TraceKind]KindStats),
		PerThread: make(map[int]ThreadStats),
	}
	for _, ev := range r.events {
		d := ev.End - ev.Start
		k := s.PerKind[ev.Kind]
		k.Count++
		k.Cycles += d
		s.PerKind[ev.Kind] = k
		t := s.PerThread[ev.Thread]
		if ev.Kind != sim.TraceCommit {
			t.Ops++
			t.Cycles += d
		}
		if ev.Kind == sim.TraceBarrier {
			t.BarrierStall += d
		}
		s.PerThread[ev.Thread] = t
	}
	return s
}

// String renders the summary as text.
func (s Summary) String() string {
	var b strings.Builder
	b.WriteString("per-kind:\n")
	kinds := make([]int, 0, len(s.PerKind))
	for k := range s.PerKind {
		kinds = append(kinds, int(k))
	}
	sort.Ints(kinds)
	for _, k := range kinds {
		ks := s.PerKind[sim.TraceKind(k)]
		fmt.Fprintf(&b, "  %-8s %8d ops %12.1f cycles\n", sim.TraceKind(k), ks.Count, ks.Cycles)
	}
	b.WriteString("per-thread:\n")
	ths := make([]int, 0, len(s.PerThread))
	for t := range s.PerThread {
		ths = append(ths, t)
	}
	sort.Ints(ths)
	for _, t := range ths {
		ts := s.PerThread[t]
		fmt.Fprintf(&b, "  t%-3d %8d ops %12.1f cycles (%.1f stalled in barriers)\n",
			t, ts.Ops, ts.Cycles, ts.BarrierStall)
	}
	return b.String()
}

// chromeEvent is the Chrome trace "complete" event format.
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`
	Dur  float64           `json:"dur"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// WriteChromeJSON exports the recording in Chrome trace-event format
// (load into Perfetto or chrome://tracing). Cycles map to microseconds
// one-to-one so the UI's units read as cycles.
func (r *Recorder) WriteChromeJSON(w io.Writer) error {
	out := make([]chromeEvent, 0, len(r.events))
	for _, ev := range r.events {
		name := ev.Kind.String()
		if ev.Detail != "" {
			name += ":" + ev.Detail
		}
		args := map[string]string{}
		if ev.Addr != 0 {
			args["addr"] = fmt.Sprintf("0x%x", ev.Addr)
			args["line"] = fmt.Sprintf("%d", ev.Addr>>6)
		}
		dur := ev.End - ev.Start
		if dur <= 0 {
			dur = 0.01
		}
		out = append(out, chromeEvent{
			Name: name,
			Cat:  ev.Kind.String(),
			Ph:   "X",
			Ts:   ev.Start,
			Dur:  dur,
			Pid:  0,
			Tid:  ev.Thread,
			Args: args,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{"traceEvents": out})
}

// HotLines returns the n most-committed cache lines with their commit
// counts — the ping-pong hot spots.
func (r *Recorder) HotLines(n int) []struct {
	Line    uint64
	Commits int
} {
	counts := map[uint64]int{}
	for _, ev := range r.events {
		if ev.Kind == sim.TraceCommit {
			counts[ev.Addr>>6]++
		}
	}
	type lc struct {
		Line    uint64
		Commits int
	}
	all := make([]lc, 0, len(counts))
	for l, c := range counts {
		all = append(all, lc{l, c})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Commits != all[j].Commits {
			return all[i].Commits > all[j].Commits
		}
		return all[i].Line < all[j].Line
	})
	if n > len(all) {
		n = len(all)
	}
	out := make([]struct {
		Line    uint64
		Commits int
	}, n)
	for i := 0; i < n; i++ {
		out[i] = struct {
			Line    uint64
			Commits int
		}{all[i].Line, all[i].Commits}
	}
	return out
}
