// Package trace records and renders simulator event streams: a bounded
// in-memory recorder implementing sim.Tracer, a per-kind/per-thread
// summary, a Chrome-trace (about://tracing, Perfetto) JSON exporter
// for visual inspection of barrier stalls and cache-line ping-pong,
// and a Collector that merges recordings from many machines (the
// `armbar -trace-out` path, where every experiment cell builds its own
// machine).
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"

	"armbar/internal/sim"
)

// Recorder collects events up to a cap (0 = unlimited). It implements
// sim.Tracer. When full it behaves as a ring buffer keeping the most
// recent Cap events — the tail of a run is what debugging usually
// needs — and counts the overwritten ones in Dropped.
type Recorder struct {
	Cap     int
	events  []sim.TraceEvent
	start   int // ring head: index of the oldest retained event
	dropped int
	// droppedByKind counts the overwritten events per operation kind,
	// so a capped recording still says *what* it lost (a ring full of
	// work nops displacing barrier stalls reads very differently from
	// the reverse). A fixed array keeps the overwrite path
	// allocation-free.
	droppedByKind [numTraceKinds]int
}

// numTraceKinds sizes per-kind tables; TraceWork is the last kind.
const numTraceKinds = int(sim.TraceWork) + 1

// NewRecorder returns a recorder keeping at most the last capacity
// events (0 = unlimited).
func NewRecorder(capacity int) *Recorder {
	return &Recorder{Cap: capacity}
}

// Event implements sim.Tracer.
func (r *Recorder) Event(ev sim.TraceEvent) {
	if r.Cap > 0 && len(r.events) >= r.Cap {
		// Overwrite the oldest retained event, recording what it was.
		old := r.events[r.start]
		if k := int(old.Kind); k >= 0 && k < numTraceKinds {
			r.droppedByKind[k]++
		}
		r.events[r.start] = ev
		r.start++
		if r.start == len(r.events) {
			r.start = 0
		}
		r.dropped++
		return
	}
	r.events = append(r.events, ev)
}

// Events returns the retained events in arrival order (for a capped,
// overflowing recorder: the most recent Cap events).
func (r *Recorder) Events() []sim.TraceEvent {
	if r.start == 0 {
		return r.events
	}
	out := make([]sim.TraceEvent, 0, len(r.events))
	out = append(out, r.events[r.start:]...)
	out = append(out, r.events[:r.start]...)
	return out
}

// Dropped reports how many events the cap pushed out of the ring.
func (r *Recorder) Dropped() int { return r.dropped }

// DroppedByKind reports the cap's losses per operation kind, omitting
// kinds that lost nothing. Nil while nothing has been dropped.
func (r *Recorder) DroppedByKind() map[sim.TraceKind]int {
	var out map[sim.TraceKind]int
	for k, n := range r.droppedByKind {
		if n == 0 {
			continue
		}
		if out == nil {
			out = make(map[sim.TraceKind]int)
		}
		out[sim.TraceKind(k)] = n
	}
	return out
}

// Summary aggregates a recording.
type Summary struct {
	PerKind   map[sim.TraceKind]KindStats
	PerThread map[int]ThreadStats
	Dropped   int // events lost to the recorder cap before this summary
	// DroppedByKind breaks Dropped down by the kind of the lost events
	// (nil when nothing was dropped).
	DroppedByKind map[sim.TraceKind]int
}

// KindStats is the aggregate for one operation kind.
type KindStats struct {
	Count  int
	Cycles float64
}

// ThreadStats is the aggregate for one thread.
type ThreadStats struct {
	Ops          int
	Cycles       float64
	BarrierStall float64
}

// Summarize folds the recording into totals.
func (r *Recorder) Summarize() Summary {
	s := Summary{
		PerKind:       make(map[sim.TraceKind]KindStats),
		PerThread:     make(map[int]ThreadStats),
		Dropped:       r.dropped,
		DroppedByKind: r.DroppedByKind(),
	}
	for _, ev := range r.events { // aggregation is order-independent
		d := ev.End - ev.Start
		k := s.PerKind[ev.Kind]
		k.Count++
		k.Cycles += d
		s.PerKind[ev.Kind] = k
		t := s.PerThread[ev.Thread]
		if ev.Kind != sim.TraceCommit {
			t.Ops++
			t.Cycles += d
		}
		if ev.Kind == sim.TraceBarrier {
			t.BarrierStall += d
		}
		s.PerThread[ev.Thread] = t
	}
	return s
}

// String renders the summary as text.
func (s Summary) String() string {
	var b strings.Builder
	b.WriteString("per-kind:\n")
	kinds := make([]int, 0, len(s.PerKind))
	for k := range s.PerKind {
		kinds = append(kinds, int(k))
	}
	sort.Ints(kinds)
	for _, k := range kinds {
		ks := s.PerKind[sim.TraceKind(k)]
		fmt.Fprintf(&b, "  %-8s %8d ops %12.1f cycles\n", sim.TraceKind(k), ks.Count, ks.Cycles)
	}
	b.WriteString("per-thread:\n")
	ths := make([]int, 0, len(s.PerThread))
	for t := range s.PerThread {
		ths = append(ths, t)
	}
	sort.Ints(ths)
	for _, t := range ths {
		ts := s.PerThread[t]
		fmt.Fprintf(&b, "  t%-3d %8d ops %12.1f cycles (%.1f stalled in barriers)\n",
			t, ts.Ops, ts.Cycles, ts.BarrierStall)
	}
	if s.Dropped > 0 {
		fmt.Fprintf(&b, "dropped: %d events beyond the recorder cap (oldest first)", s.Dropped)
		if len(s.DroppedByKind) > 0 {
			kinds := make([]int, 0, len(s.DroppedByKind))
			for k := range s.DroppedByKind {
				kinds = append(kinds, int(k))
			}
			sort.Ints(kinds)
			parts := make([]string, 0, len(kinds))
			for _, k := range kinds {
				parts = append(parts, fmt.Sprintf("%s %d", sim.TraceKind(k), s.DroppedByKind[sim.TraceKind(k)]))
			}
			fmt.Fprintf(&b, " — %s", strings.Join(parts, ", "))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// chromeEvent is the Chrome trace "complete" event format.
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`
	Dur  float64           `json:"dur"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// appendChromeEvents converts events under the given pid.
func appendChromeEvents(out []chromeEvent, pid int, events []sim.TraceEvent) []chromeEvent {
	for _, ev := range events {
		name := ev.Kind.String()
		if ev.Detail != "" {
			name += ":" + ev.Detail
		}
		args := map[string]string{}
		if ev.Addr != 0 {
			args["addr"] = fmt.Sprintf("0x%x", ev.Addr)
			args["line"] = fmt.Sprintf("%d", ev.Addr>>6)
		}
		dur := ev.End - ev.Start
		if dur <= 0 {
			dur = 0.01
		}
		out = append(out, chromeEvent{
			Name: name,
			Cat:  ev.Kind.String(),
			Ph:   "X",
			Ts:   ev.Start,
			Dur:  dur,
			Pid:  pid,
			Tid:  ev.Thread,
			Args: args,
		})
	}
	return out
}

// WriteChromeJSON exports the recording in Chrome trace-event format
// (load into Perfetto or chrome://tracing). Cycles map to microseconds
// one-to-one so the UI's units read as cycles.
func (r *Recorder) WriteChromeJSON(w io.Writer) error {
	out := appendChromeEvents(make([]chromeEvent, 0, len(r.events)), 0, r.Events())
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{"traceEvents": out})
}

// HotLines returns the n most-committed cache lines with their commit
// counts — the ping-pong hot spots.
func (r *Recorder) HotLines(n int) []struct {
	Line    uint64
	Commits int
} {
	counts := map[uint64]int{}
	for _, ev := range r.events {
		if ev.Kind == sim.TraceCommit {
			counts[ev.Addr>>6]++
		}
	}
	type lc struct {
		Line    uint64
		Commits int
	}
	all := make([]lc, 0, len(counts))
	for l, c := range counts {
		all = append(all, lc{l, c})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Commits != all[j].Commits {
			return all[i].Commits > all[j].Commits
		}
		return all[i].Line < all[j].Line
	})
	if n > len(all) {
		n = len(all)
	}
	out := make([]struct {
		Line    uint64
		Commits int
	}, n)
	for i := 0; i < n; i++ {
		out[i] = struct {
			Line    uint64
			Commits int
		}{all[i].Line, all[i].Commits}
	}
	return out
}

// Collector hands one bounded Recorder to each machine that asks (via
// sim.SetMachineTracerFactory) and merges the recordings into a single
// Chrome trace with one pid per machine. Machines beyond MaxMachines
// get no tracer at all (counted in Skipped) so a full-registry run
// cannot hold unbounded memory.
type Collector struct {
	perMachineCap int
	maxMachines   int

	mu      sync.Mutex
	recs    []*Recorder // armvet:guardedby mu
	skipped int         // armvet:guardedby mu
}

// NewCollector returns a collector keeping at most perMachineCap
// events per machine (0 = unlimited) from at most maxMachines machines
// (<= 0 defaults to 256).
func NewCollector(perMachineCap, maxMachines int) *Collector {
	if maxMachines <= 0 {
		maxMachines = 256
	}
	return &Collector{perMachineCap: perMachineCap, maxMachines: maxMachines}
}

// NewTracer registers and returns a fresh recorder, or nil once the
// machine budget is exhausted. Safe for concurrent use; pass it to
// sim.SetMachineTracerFactory.
func (c *Collector) NewTracer() sim.Tracer {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.recs) >= c.maxMachines {
		c.skipped++
		return nil
	}
	rec := NewRecorder(c.perMachineCap)
	c.recs = append(c.recs, rec)
	return rec
}

// Machines reports how many machines received a recorder.
func (c *Collector) Machines() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.recs)
}

// Skipped reports how many machines ran untraced because the budget
// was exhausted.
func (c *Collector) Skipped() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.skipped
}

// Dropped sums the events lost to per-machine caps.
func (c *Collector) Dropped() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, r := range c.recs {
		n += r.Dropped()
	}
	return n
}

// WriteChromeJSON writes every machine's recording into one Chrome
// trace, pid = machine registration order. Call only after the traced
// machines have finished running.
func (c *Collector) WriteChromeJSON(w io.Writer) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []chromeEvent
	for pid, rec := range c.recs {
		out = appendChromeEvents(out, pid, rec.Events())
	}
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{"traceEvents": out})
}
