package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"armbar/internal/isa"
	"armbar/internal/platform"
	"armbar/internal/sim"
)

func record(t *testing.T, capEvents int) *Recorder {
	t.Helper()
	rec := NewRecorder(capEvents)
	m := sim.New(sim.Config{Plat: platform.Kunpeng916(), Mode: sim.WMM, Seed: 3})
	m.SetTracer(rec)
	data := m.Alloc(1)
	flag := m.Alloc(1)
	m.Spawn(0, func(th *sim.Thread) {
		for i := uint64(1); i <= 20; i++ {
			th.Store(data, i)
			th.Barrier(isa.DMBSt)
			th.Store(flag, i)
			th.Nops(10)
		}
	})
	m.Spawn(32, func(th *sim.Thread) {
		for i := uint64(1); i <= 20; i++ {
			for th.Load(flag) < i {
				th.Nops(4)
			}
			th.Barrier(isa.DMBLd)
			th.Load(data)
		}
	})
	m.Run()
	return rec
}

func TestRecorderCapturesAllKinds(t *testing.T) {
	rec := record(t, 0)
	s := rec.Summarize()
	for _, k := range []sim.TraceKind{sim.TraceLoad, sim.TraceStore, sim.TraceCommit,
		sim.TraceBarrier, sim.TraceWork} {
		if s.PerKind[k].Count == 0 {
			t.Errorf("kind %v never recorded", k)
		}
	}
	if s.PerKind[sim.TraceStore].Count != s.PerKind[sim.TraceCommit].Count {
		t.Errorf("every store must commit: %d stores vs %d commits",
			s.PerKind[sim.TraceStore].Count, s.PerKind[sim.TraceCommit].Count)
	}
	if len(s.PerThread) != 2 {
		t.Errorf("want 2 threads in summary, got %d", len(s.PerThread))
	}
	if !strings.Contains(s.String(), "per-thread") {
		t.Error("summary text incomplete")
	}
}

func TestRecorderCap(t *testing.T) {
	rec := record(t, 10)
	if len(rec.Events()) != 10 {
		t.Fatalf("cap not honored: %d events", len(rec.Events()))
	}
	if rec.Dropped() == 0 {
		t.Fatal("expected drops beyond the cap")
	}
}

func TestChromeJSONWellFormed(t *testing.T) {
	rec := record(t, 0)
	var buf bytes.Buffer
	if err := rec.WriteChromeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			Tid  int     `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(doc.TraceEvents) != len(rec.Events()) {
		t.Fatalf("event count mismatch: %d vs %d", len(doc.TraceEvents), len(rec.Events()))
	}
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" || ev.Dur <= 0 {
			t.Fatalf("bad event %+v", ev)
		}
	}
}

func TestHotLinesFindPingPong(t *testing.T) {
	rec := record(t, 0)
	hot := rec.HotLines(2)
	if len(hot) != 2 {
		t.Fatalf("want 2 hot lines, got %d", len(hot))
	}
	if hot[0].Commits < 20 {
		t.Errorf("hottest line should see the 20 data commits, got %d", hot[0].Commits)
	}
	if hot[0].Commits < hot[1].Commits {
		t.Error("hot lines must be sorted by commits")
	}
}

func TestTracingIsOptionalAndHarmless(t *testing.T) {
	// The same run with and without a tracer must produce identical
	// virtual times.
	run := func(tr sim.Tracer) float64 {
		m := sim.New(sim.Config{Plat: platform.Kunpeng916(), Mode: sim.WMM, Seed: 9})
		if tr != nil {
			m.SetTracer(tr)
		}
		a := m.Alloc(1)
		m.Spawn(0, func(th *sim.Thread) {
			for i := uint64(0); i < 50; i++ {
				th.Store(a, i)
				th.Barrier(isa.DMBFull)
			}
		})
		return m.Run()
	}
	if run(nil) != run(NewRecorder(0)) {
		t.Fatal("tracing changed simulation results")
	}
}

func TestRingKeepsNewestEvents(t *testing.T) {
	rec := NewRecorder(10)
	for i := 0; i < 15; i++ {
		rec.Event(sim.TraceEvent{Kind: sim.TraceWork, Thread: 0,
			Start: float64(i), End: float64(i) + 1})
	}
	evs := rec.Events()
	if len(evs) != 10 {
		t.Fatalf("retained %d events, want 10", len(evs))
	}
	if rec.Dropped() != 5 {
		t.Fatalf("Dropped = %d, want 5", rec.Dropped())
	}
	for i, ev := range evs {
		if want := float64(5 + i); ev.Start != want {
			t.Fatalf("event %d starts at %g, want %g — ring must keep the newest in order",
				i, ev.Start, want)
		}
	}
}

func TestSummaryReportsDropped(t *testing.T) {
	rec := record(t, 10)
	s := rec.Summarize()
	if s.Dropped == 0 || s.Dropped != rec.Dropped() {
		t.Fatalf("Summary.Dropped = %d, recorder dropped %d", s.Dropped, rec.Dropped())
	}
	if !strings.Contains(s.String(), "dropped:") {
		t.Fatalf("summary text must surface the drop count:\n%s", s.String())
	}
	if strings.Contains(record(t, 0).Summarize().String(), "dropped:") {
		t.Fatal("an uncapped recording must not report drops")
	}
}

// TestChromeGoldenJSON freezes the exporter's byte-exact output for a
// tiny deterministic recording: three hand-fed events covering a
// detailed op, an arg-less barrier, and the zero-duration commit
// floor.
func TestChromeGoldenJSON(t *testing.T) {
	rec := NewRecorder(0)
	rec.Event(sim.TraceEvent{Thread: 0, Kind: sim.TraceLoad, Addr: 0x40,
		Start: 0, End: 2, Detail: "miss"})
	rec.Event(sim.TraceEvent{Thread: 1, Kind: sim.TraceBarrier,
		Start: 2.5, End: 10, Detail: "DMB full"})
	rec.Event(sim.TraceEvent{Thread: 0, Kind: sim.TraceCommit, Addr: 0x40,
		Start: 3, End: 3})
	var buf bytes.Buffer
	if err := rec.WriteChromeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	golden := `{"traceEvents":[` +
		`{"name":"load:miss","cat":"load","ph":"X","ts":0,"dur":2,"pid":0,"tid":0,"args":{"addr":"0x40","line":"1"}},` +
		`{"name":"barrier:DMB full","cat":"barrier","ph":"X","ts":2.5,"dur":7.5,"pid":0,"tid":1},` +
		`{"name":"commit","cat":"commit","ph":"X","ts":3,"dur":0.01,"pid":0,"tid":0,"args":{"addr":"0x40","line":"1"}}` +
		`]}` + "\n"
	if got := buf.String(); got != golden {
		t.Fatalf("chrome export drifted from golden:\ngot:  %s\nwant: %s", got, golden)
	}
}

func TestCollectorMergesMachines(t *testing.T) {
	c := NewCollector(0, 2)
	tr1 := c.NewTracer()
	tr2 := c.NewTracer()
	if tr3 := c.NewTracer(); tr3 != nil {
		t.Fatal("collector must stop handing out tracers past its machine budget")
	}
	if c.Machines() != 2 || c.Skipped() != 1 {
		t.Fatalf("machines/skipped = %d/%d, want 2/1", c.Machines(), c.Skipped())
	}
	tr1.Event(sim.TraceEvent{Thread: 0, Kind: sim.TraceWork, Start: 0, End: 1})
	tr2.Event(sim.TraceEvent{Thread: 0, Kind: sim.TraceWork, Start: 5, End: 6})
	var buf bytes.Buffer
	if err := c.WriteChromeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Pid int     `json:"pid"`
			Ts  float64 `json:"ts"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(doc.TraceEvents) != 2 {
		t.Fatalf("merged %d events, want 2", len(doc.TraceEvents))
	}
	if doc.TraceEvents[0].Pid != 0 || doc.TraceEvents[1].Pid != 1 {
		t.Fatalf("pids must identify machines: %+v", doc.TraceEvents)
	}
}

func TestDroppedByKind(t *testing.T) {
	// Fill a 4-slot ring with loads, then push them out with barriers
	// and one store: the drop breakdown must name what was lost, not
	// what displaced it.
	rec := NewRecorder(4)
	for i := 0; i < 4; i++ {
		rec.Event(sim.TraceEvent{Kind: sim.TraceLoad, Start: float64(i), End: float64(i) + 1})
	}
	if rec.DroppedByKind() != nil {
		t.Fatal("nothing dropped yet, breakdown must be nil")
	}
	for i := 0; i < 3; i++ {
		rec.Event(sim.TraceEvent{Kind: sim.TraceBarrier, Start: float64(10 + i), End: float64(11 + i)})
	}
	rec.Event(sim.TraceEvent{Kind: sim.TraceStore, Start: 20, End: 21})

	by := rec.DroppedByKind()
	if by[sim.TraceLoad] != 4 || by[sim.TraceBarrier] != 0 || len(by) != 1 {
		t.Fatalf("DroppedByKind = %v, want load:4 only", by)
	}
	s := rec.Summarize()
	if s.DroppedByKind[sim.TraceLoad] != 4 {
		t.Fatalf("Summary.DroppedByKind = %v", s.DroppedByKind)
	}
	if out := s.String(); !strings.Contains(out, "load 4") {
		t.Fatalf("summary text must break drops down by kind:\n%s", out)
	}

	// Keep pushing: the next overwrite displaces the oldest barrier, so
	// the breakdown now spans two kinds.
	rec.Event(sim.TraceEvent{Kind: sim.TraceWork, Start: 30, End: 31})
	by = rec.DroppedByKind()
	if by[sim.TraceBarrier] != 1 || by[sim.TraceLoad] != 4 {
		t.Fatalf("after displacing a barrier: %v", by)
	}
	if sum := by[sim.TraceLoad] + by[sim.TraceBarrier]; sum != rec.Dropped() {
		t.Fatalf("per-kind drops sum to %d, total %d", sum, rec.Dropped())
	}
}
