package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"armbar/internal/isa"
	"armbar/internal/platform"
	"armbar/internal/sim"
)

func record(t *testing.T, capEvents int) *Recorder {
	t.Helper()
	rec := NewRecorder(capEvents)
	m := sim.New(sim.Config{Plat: platform.Kunpeng916(), Mode: sim.WMM, Seed: 3})
	m.SetTracer(rec)
	data := m.Alloc(1)
	flag := m.Alloc(1)
	m.Spawn(0, func(th *sim.Thread) {
		for i := uint64(1); i <= 20; i++ {
			th.Store(data, i)
			th.Barrier(isa.DMBSt)
			th.Store(flag, i)
			th.Nops(10)
		}
	})
	m.Spawn(32, func(th *sim.Thread) {
		for i := uint64(1); i <= 20; i++ {
			for th.Load(flag) < i {
				th.Nops(4)
			}
			th.Barrier(isa.DMBLd)
			th.Load(data)
		}
	})
	m.Run()
	return rec
}

func TestRecorderCapturesAllKinds(t *testing.T) {
	rec := record(t, 0)
	s := rec.Summarize()
	for _, k := range []sim.TraceKind{sim.TraceLoad, sim.TraceStore, sim.TraceCommit,
		sim.TraceBarrier, sim.TraceWork} {
		if s.PerKind[k].Count == 0 {
			t.Errorf("kind %v never recorded", k)
		}
	}
	if s.PerKind[sim.TraceStore].Count != s.PerKind[sim.TraceCommit].Count {
		t.Errorf("every store must commit: %d stores vs %d commits",
			s.PerKind[sim.TraceStore].Count, s.PerKind[sim.TraceCommit].Count)
	}
	if len(s.PerThread) != 2 {
		t.Errorf("want 2 threads in summary, got %d", len(s.PerThread))
	}
	if !strings.Contains(s.String(), "per-thread") {
		t.Error("summary text incomplete")
	}
}

func TestRecorderCap(t *testing.T) {
	rec := record(t, 10)
	if len(rec.Events()) != 10 {
		t.Fatalf("cap not honored: %d events", len(rec.Events()))
	}
	if rec.Dropped() == 0 {
		t.Fatal("expected drops beyond the cap")
	}
}

func TestChromeJSONWellFormed(t *testing.T) {
	rec := record(t, 0)
	var buf bytes.Buffer
	if err := rec.WriteChromeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			Tid  int     `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(doc.TraceEvents) != len(rec.Events()) {
		t.Fatalf("event count mismatch: %d vs %d", len(doc.TraceEvents), len(rec.Events()))
	}
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" || ev.Dur <= 0 {
			t.Fatalf("bad event %+v", ev)
		}
	}
}

func TestHotLinesFindPingPong(t *testing.T) {
	rec := record(t, 0)
	hot := rec.HotLines(2)
	if len(hot) != 2 {
		t.Fatalf("want 2 hot lines, got %d", len(hot))
	}
	if hot[0].Commits < 20 {
		t.Errorf("hottest line should see the 20 data commits, got %d", hot[0].Commits)
	}
	if hot[0].Commits < hot[1].Commits {
		t.Error("hot lines must be sorted by commits")
	}
}

func TestTracingIsOptionalAndHarmless(t *testing.T) {
	// The same run with and without a tracer must produce identical
	// virtual times.
	run := func(tr sim.Tracer) float64 {
		m := sim.New(sim.Config{Plat: platform.Kunpeng916(), Mode: sim.WMM, Seed: 9})
		if tr != nil {
			m.SetTracer(tr)
		}
		a := m.Alloc(1)
		m.Spawn(0, func(th *sim.Thread) {
			for i := uint64(0); i < 50; i++ {
				th.Store(a, i)
				th.Barrier(isa.DMBFull)
			}
		})
		return m.Run()
	}
	if run(nil) != run(NewRecorder(0)) {
		t.Fatal("tracing changed simulation results")
	}
}
