// Package ace models the barrier-transaction side of an AMBA ACE
// interconnect, the mechanism behind the paper's hardware story (§2.3):
//
//   - A DMB typically translates to a *memory barrier transaction* that
//     must reach the inner **bi-section** boundary downstream of every
//     master that may hold affected data, and wait for outstanding snoop
//     transactions to finish, before a response is returned. Its cost
//     therefore depends on how far the communicating masters are spread
//     (same cluster < same NUMA node < cross node) — Observation 5.
//
//   - A DSB translates to a *synchronization barrier transaction* that
//     must always reach the inner **domain** boundary (downstream of all
//     masters), so it never benefits from locality — Observations 1 & 5.
//
// The fabric computes *response times*; what an issuing core does while
// waiting (block everything, block only stores, …) is the simulator's
// concern.
package ace

import (
	"armbar/internal/platform"
	"armbar/internal/topo"
)

// TxnKind distinguishes the two ACE barrier transactions.
type TxnKind int

const (
	// MemoryBarrier is the transaction a DMB issues.
	MemoryBarrier TxnKind = iota
	// SyncBarrier is the transaction a DSB issues.
	SyncBarrier
)

func (k TxnKind) String() string {
	if k == MemoryBarrier {
		return "memory-barrier"
	}
	return "synchronization-barrier"
}

// Fabric is the interconnect of one simulated machine.
type Fabric struct {
	sys  *topo.System
	cost *platform.CostModel

	// Stats
	MemTxns  uint64
	SyncTxns uint64
}

// NewFabric returns a fabric over the given topology and cost model.
func NewFabric(sys *topo.System, cost *platform.CostModel) *Fabric {
	return &Fabric{sys: sys, cost: cost}
}

// Span computes the widest distance among a set of participating cores:
// the boundary a memory barrier transaction must reach so that every
// listed master is upstream of it. A single core (or empty set) spans
// SameCluster — the transaction still leaves the core.
func (f *Fabric) Span(cores []topo.CoreID) topo.Distance {
	span := topo.SameCluster
	for i := 0; i < len(cores); i++ {
		for j := i + 1; j < len(cores); j++ {
			if d := f.sys.DistanceBetween(cores[i], cores[j]); d > span {
				span = d
			}
		}
	}
	return span
}

// Response returns the time at which the interconnect answers a barrier
// transaction of the given kind issued at time issue, when the issuing
// core's outstanding snooped accesses complete at time outstanding
// (0 if none), for masters spread over span.
//
// The response cannot be sent before previous snoop transactions have
// finished (hence the max with outstanding) plus the round trip to the
// required boundary.
func (f *Fabric) Response(kind TxnKind, issue, outstanding float64, span topo.Distance) float64 {
	start := issue
	if outstanding > start {
		start = outstanding
	}
	switch kind {
	case MemoryBarrier:
		f.MemTxns++
		return start + f.cost.BarrierTxn(span)
	default:
		f.SyncTxns++
		// The synchronization barrier transaction always travels to the
		// inner domain boundary: no locality discount.
		return start + f.cost.SyncTxn
	}
}
