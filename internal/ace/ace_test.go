package ace

import (
	"testing"

	"armbar/internal/platform"
	"armbar/internal/topo"
)

func fabric() (*Fabric, *platform.Platform) {
	p := platform.Kunpeng916()
	return NewFabric(p.Sys, &p.Cost), p
}

func TestSpan(t *testing.T) {
	f, p := fabric()
	n0 := p.Sys.NodeCores(0)
	n1 := p.Sys.NodeCores(1)
	if got := f.Span(nil); got != topo.SameCluster {
		t.Errorf("empty span = %v, want same-cluster", got)
	}
	if got := f.Span([]topo.CoreID{n0[0], n0[1]}); got != topo.SameCluster {
		t.Errorf("same-cluster span = %v", got)
	}
	if got := f.Span([]topo.CoreID{n0[0], n0[7]}); got != topo.SameNode {
		t.Errorf("same-node span = %v", got)
	}
	if got := f.Span([]topo.CoreID{n0[0], n0[4], n1[0]}); got != topo.CrossNode {
		t.Errorf("cross-node span = %v", got)
	}
}

func TestMemoryBarrierRespectsLocality(t *testing.T) {
	// Obs 5: a memory barrier transaction reaches only the bi-section
	// boundary of the spanned cores; wider spans cost more.
	f, _ := fabric()
	same := f.Response(MemoryBarrier, 100, 0, topo.SameCluster)
	node := f.Response(MemoryBarrier, 100, 0, topo.SameNode)
	cross := f.Response(MemoryBarrier, 100, 0, topo.CrossNode)
	if !(same < node && node < cross) {
		t.Errorf("locality ordering broken: %v %v %v", same, node, cross)
	}
}

func TestSyncBarrierIgnoresLocality(t *testing.T) {
	// Obs 5: DSB always travels to the inner domain boundary.
	f, _ := fabric()
	a := f.Response(SyncBarrier, 100, 0, topo.SameCluster)
	b := f.Response(SyncBarrier, 100, 0, topo.CrossNode)
	if a != b {
		t.Errorf("sync barrier must not depend on span: %v vs %v", a, b)
	}
	m := f.Response(MemoryBarrier, 100, 0, topo.CrossNode)
	if b <= m {
		t.Errorf("sync barrier (%v) must exceed memory barrier (%v)", b, m)
	}
}

func TestOutstandingDelaysResponse(t *testing.T) {
	// The response cannot be sent before prior snoop transactions
	// finish (the Obs-2 mechanism).
	f, _ := fabric()
	early := f.Response(MemoryBarrier, 100, 0, topo.SameNode)
	late := f.Response(MemoryBarrier, 100, 500, topo.SameNode)
	if late-early != 400 {
		t.Errorf("outstanding snoops must shift the response: %v vs %v", early, late)
	}
}

func TestTxnCounting(t *testing.T) {
	f, _ := fabric()
	f.Response(MemoryBarrier, 0, 0, topo.SameNode)
	f.Response(SyncBarrier, 0, 0, topo.SameNode)
	f.Response(SyncBarrier, 0, 0, topo.SameNode)
	if f.MemTxns != 1 || f.SyncTxns != 2 {
		t.Errorf("txn counters = %d/%d, want 1/2", f.MemTxns, f.SyncTxns)
	}
}
