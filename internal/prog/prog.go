// Package prog defines precompiled micro-op programs for the
// simulator's compiled engine. A program is a flat []Op lowered from a
// deterministic op sequence (an abstracted-model loop, a scenario
// thread spec): every operand is pre-resolved at build time —
// addresses to absolute values or per-iteration address tables, nop
// counts to cycle latencies, barrier names to isa values — so the
// executor in package sim dispatches through a per-opcode function
// table with no per-op decoding, switch, or request staging.
//
// Machine-visible codes (loads, stores, barriers, work, atomics, spin
// loads) map 1:1 to the interpreted engine's thread operations: the
// compiled engine must replay the exact same operation sequence, so
// control flow is expressed only through free codes (Jump, LoopEnd)
// that the executor folds into pc updates between machine ops. That
// 1:1 mapping is what lets the golden digest and differential tests
// prove the two engines byte-identical.
package prog

import (
	"fmt"

	"armbar/internal/isa"
)

// Code is a micro-op opcode.
type Code uint8

const (
	// Machine-visible ops: each dispatches exactly one simulated
	// operation, identical to the corresponding Thread method.
	Load      Code = iota // relaxed load
	LoadAcq                // LDAR
	LoadAcqPC              // LDAPR
	Store                  // relaxed store (into the store buffer)
	StoreRel               // STLR
	Barrier                // standalone order-preserving instruction
	Work                   // local computation, Cycles long
	FetchAdd               // LSE atomic add, returns old (discarded)
	Swap                   // LSE atomic swap
	CAS                    // LSE compare-and-swap
	SpinEQ                 // relaxed load; fall through until value == Val, then jump to Target
	SpinNE                 // relaxed load; fall through until value != Val, then jump to Target
	SpinGE                 // relaxed load; fall through until value >= Val, then jump to Target

	// Free control codes: pure pc/counter updates, no simulated time,
	// no dispatch — they correspond to Go-level control flow in the
	// interpreted engine's closures.
	Jump    // pc = Target
	LoopEnd // counters[Dep]++; pc = Target while count not reached

	numCodes
)

// NumCodes is the size an executor's dispatch table must have.
const NumCodes = int(numCodes)

// IsControl reports whether the code is free control flow (no machine
// dispatch).
func (c Code) IsControl() bool { return c == Jump || c == LoopEnd }

var codeNames = [NumCodes]string{
	"load", "loadacq", "loadacqpc", "store", "storerel", "barrier",
	"work", "fetchadd", "swap", "cas", "spin_eq", "spin_ne", "spin_ge",
	"jump", "loopend",
}

func (c Code) String() string {
	if int(c) < len(codeNames) {
		return codeNames[c]
	}
	return fmt.Sprintf("Code(%d)", int(c))
}

// AddrMode selects how a memory op's address is produced.
type AddrMode uint8

const (
	// AddrImm uses Op.Addr directly.
	AddrImm AddrMode = iota
	// AddrTable indexes Program.Tables[Op.Addr] by the Dep-th loop
	// counter modulo the table length (the abstracted models' walk over
	// a ring of cache lines).
	AddrTable
)

// ValMode selects how a store/atomic value is produced.
type ValMode uint8

const (
	// ValImm uses Op.Val directly.
	ValImm ValMode = iota
	// ValCounter uses the Dep-th loop counter (the abstracted models
	// store the iteration index).
	ValCounter
)

// MaxLoopDepth bounds loop nesting so executors can keep counters in a
// fixed-size array with no per-run allocation.
const MaxLoopDepth = 8

// MaxOps bounds a program's flat op count. Loops express repetition
// through trip counts, so any legitimate program stays tiny; a body
// exceeding this was almost certainly built by unrolling, which
// defeats the compiled engine's cache-density premise.
const MaxOps = 1 << 16

// Op is one micro-op. The flat value layout (no pointers, no
// interfaces) keeps programs cache-dense and lets the executor take
// everything it needs from one 64-byte-ish record.
type Op struct {
	Code  Code
	AMode AddrMode
	VMode ValMode
	Dep   uint8       // loop-counter index for AddrTable/ValCounter/LoopEnd
	Bar   isa.Barrier // Barrier code only
	Addr  uint64      // absolute address, or table index under AddrTable
	Val   uint64      // immediate value / CAS expected / spin target value
	Val2  uint64      // CAS replacement
	Cyc   float64     // Work duration in cycles (pre-scaled at build time)

	Target int32 // Jump/LoopEnd destination; SpinEQ/SpinNE exit pc
	Count  int64 // LoopEnd total trip count
}

// Program is a compiled thread body.
type Program struct {
	Ops    []Op
	Tables [][]uint64 // pre-resolved per-iteration address rings
	Depth  int        // loop counter slots used (≤ MaxLoopDepth)
}

// Validate checks structural well-formedness: every target in range,
// table references valid, loop depths within bounds, barrier operands
// legal. Executors may assume a validated program needs no per-op
// checking.
func (p *Program) Validate() error {
	if len(p.Ops) > MaxOps {
		return fmt.Errorf("prog: %d ops exceeds MaxOps %d (use loops, not unrolling)", len(p.Ops), MaxOps)
	}
	n := int32(len(p.Ops))
	for i := range p.Ops {
		op := &p.Ops[i]
		bad := func(format string, args ...any) error {
			return fmt.Errorf("prog: op %d (%v): %s", i, op.Code, fmt.Sprintf(format, args...))
		}
		switch op.Code {
		case Load, LoadAcq, LoadAcqPC, Store, StoreRel, FetchAdd, Swap, CAS:
			if err := p.checkOperand(op); err != nil {
				return bad("%v", err)
			}
		case SpinEQ, SpinNE, SpinGE:
			if err := p.checkOperand(op); err != nil {
				return bad("%v", err)
			}
			if op.Target < 0 || op.Target > n {
				return bad("exit target %d out of range [0,%d]", op.Target, n)
			}
		case Barrier:
			switch op.Bar {
			case isa.None:
				return bad("barrier None must be elided at build time")
			case isa.LDAR, isa.LDAPR, isa.STLR:
				return bad("operand barrier %v is not standalone", op.Bar)
			}
		case Work:
			if op.Cyc <= 0 {
				return bad("non-positive duration %g", op.Cyc)
			}
		case Jump:
			// Target == n jumps past the last op (a zero-trip loop at the
			// program's end).
			if op.Target < 0 || op.Target > n {
				return bad("target %d out of range [0,%d]", op.Target, n)
			}
		case LoopEnd:
			if op.Target < 0 || op.Target > int32(i) {
				return bad("backward target %d out of range [0,%d]", op.Target, i)
			}
			if op.Count <= 0 {
				return bad("non-positive trip count %d", op.Count)
			}
			if int(op.Dep) >= MaxLoopDepth {
				return bad("loop depth %d exceeds MaxLoopDepth", op.Dep)
			}
		default:
			return bad("unknown code")
		}
	}
	if p.Depth > MaxLoopDepth {
		return fmt.Errorf("prog: depth %d exceeds MaxLoopDepth %d", p.Depth, MaxLoopDepth)
	}
	return nil
}

func (p *Program) checkOperand(op *Op) error {
	switch op.AMode {
	case AddrImm:
	case AddrTable:
		ti := int(op.Addr)
		if ti < 0 || ti >= len(p.Tables) {
			return fmt.Errorf("table %d out of range [0,%d)", ti, len(p.Tables))
		}
		if len(p.Tables[ti]) == 0 {
			return fmt.Errorf("table %d is empty", ti)
		}
		if int(op.Dep) >= MaxLoopDepth {
			return fmt.Errorf("addr counter %d exceeds MaxLoopDepth", op.Dep)
		}
	default:
		return fmt.Errorf("unknown addr mode %d", op.AMode)
	}
	switch op.VMode {
	case ValImm:
	case ValCounter:
		if int(op.Dep) >= MaxLoopDepth {
			return fmt.Errorf("value counter %d exceeds MaxLoopDepth", op.Dep)
		}
	default:
		return fmt.Errorf("unknown value mode %d", op.VMode)
	}
	return nil
}

// Len returns the number of micro-ops.
func (p *Program) Len() int { return len(p.Ops) }

// MachineOps returns how many machine-visible ops one full execution
// dispatches (loop trip counts multiplied out; spins counted once,
// since their dynamic count is data-dependent). Useful for sanity
// checks and sizing.
func (p *Program) MachineOps() int64 {
	var total int64
	var mult int64 = 1
	// Walk with a stack of loop multipliers: ops between a loop's start
	// (its LoopEnd target) and the LoopEnd run Count times per outer
	// trip. Builder-produced loops nest properly.
	type span struct {
		start int32
		mult  int64
	}
	var stack []span
	// Pre-scan LoopEnds to know loop starts.
	starts := map[int32]int64{}
	for i := range p.Ops {
		if p.Ops[i].Code == LoopEnd {
			starts[p.Ops[i].Target] = p.Ops[i].Count
		}
	}
	for i := range p.Ops {
		if c, ok := starts[int32(i)]; ok {
			stack = append(stack, span{start: int32(i), mult: mult})
			mult *= c
		}
		op := &p.Ops[i]
		if !op.Code.IsControl() {
			total += mult
		}
		if op.Code == LoopEnd && len(stack) > 0 {
			mult = stack[len(stack)-1].mult
			stack = stack[:len(stack)-1]
		}
	}
	return total
}
