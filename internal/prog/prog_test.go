package prog

import (
	"testing"

	"armbar/internal/isa"
)

func TestBuilderStraightLine(t *testing.T) {
	b := NewBuilder(2)
	b.Load(Abs(64))
	b.Nops(4) // 4 instructions at issue width 2 -> 2 cycles
	b.Store(Abs(128), Imm(7))
	b.Barrier(isa.DMBFull)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 4 {
		t.Fatalf("len = %d, want 4", p.Len())
	}
	if p.Ops[1].Code != Work || p.Ops[1].Cyc != 2 {
		t.Fatalf("Nops lowering: %+v", p.Ops[1])
	}
	if p.MachineOps() != 4 {
		t.Fatalf("MachineOps = %d, want 4", p.MachineOps())
	}
}

func TestBuilderElidesNoneAndZero(t *testing.T) {
	b := NewBuilder(1)
	b.Barrier(isa.None)
	b.Nops(0)
	b.Nops(-3)
	b.Work(0)
	b.Load(Abs(64))
	p := b.MustBuild()
	if p.Len() != 1 {
		t.Fatalf("None/zero ops must be elided; len = %d", p.Len())
	}
}

func TestBuilderLoop(t *testing.T) {
	b := NewBuilder(1)
	dep := b.Loop(10)
	b.Store(Abs(64), Counter(dep))
	b.EndLoop()
	p := b.MustBuild()
	if p.Len() != 2 || p.Ops[1].Code != LoopEnd || p.Ops[1].Count != 10 {
		t.Fatalf("loop lowering: %+v", p.Ops)
	}
	if p.Depth != 1 {
		t.Fatalf("depth = %d", p.Depth)
	}
	if p.MachineOps() != 10 {
		t.Fatalf("MachineOps = %d, want 10", p.MachineOps())
	}
}

func TestBuilderNestedLoops(t *testing.T) {
	b := NewBuilder(1)
	outer := b.Loop(3)
	b.Load(Abs(64))
	inner := b.Loop(5)
	b.Store(Abs(128), Counter(inner))
	b.EndLoop()
	b.EndLoop()
	if outer == inner {
		t.Fatal("nested loops must get distinct counters")
	}
	p := b.MustBuild()
	if p.Depth != 2 {
		t.Fatalf("depth = %d, want 2", p.Depth)
	}
	if got := p.MachineOps(); got != 3*(1+5) {
		t.Fatalf("MachineOps = %d, want 18", got)
	}
}

func TestBuilderZeroTripLoop(t *testing.T) {
	b := NewBuilder(1)
	b.Load(Abs(64))
	b.Loop(0)
	b.Store(Abs(128), Imm(1))
	b.EndLoop()
	p := b.MustBuild()
	// Jump over the body: [load][jump->3][store]
	if p.Ops[1].Code != Jump || p.Ops[1].Target != 3 {
		t.Fatalf("zero-trip lowering: %+v", p.Ops)
	}
}

func TestBuilderSingleTripLoopEmitsNoLoopEnd(t *testing.T) {
	b := NewBuilder(1)
	b.Loop(1)
	b.Load(Abs(64))
	b.EndLoop()
	p := b.MustBuild()
	if p.Len() != 1 {
		t.Fatalf("single-trip loop must be free: %+v", p.Ops)
	}
}

func TestBuilderRing(t *testing.T) {
	b := NewBuilder(1)
	tab := b.Table([]uint64{64, 128, 192})
	dep := b.Loop(7)
	b.Load(Ring(tab, dep))
	b.EndLoop()
	p := b.MustBuild()
	if p.Ops[0].AMode != AddrTable || p.Ops[0].Addr != uint64(tab) {
		t.Fatalf("ring operand: %+v", p.Ops[0])
	}
}

func TestBuilderSpin(t *testing.T) {
	b := NewBuilder(2)
	b.SpinEQ(Abs(64), 1, 4)
	b.Store(Abs(128), Imm(9))
	p := b.MustBuild()
	// [spin exit=3][work][jump 0][store]
	if p.Len() != 4 || p.Ops[0].Code != SpinEQ || p.Ops[0].Target != 3 {
		t.Fatalf("spin lowering: %+v", p.Ops)
	}
	if p.Ops[2].Code != Jump || p.Ops[2].Target != 0 {
		t.Fatalf("spin backedge: %+v", p.Ops[2])
	}

	b2 := NewBuilder(2)
	b2.SpinNE(Abs(64), 0, 0)
	p2 := b2.MustBuild()
	if p2.Len() != 2 || p2.Ops[0].Target != 2 || p2.Ops[1].Code != Jump {
		t.Fatalf("padless spin lowering: %+v", p2.Ops)
	}
}

func TestBuilderErrors(t *testing.T) {
	cases := map[string]func(b *Builder){
		"operand barrier": func(b *Builder) { b.Barrier(isa.LDAR) },
		"unclosed loop":   func(b *Builder) { b.Loop(2); b.Load(Abs(64)) },
		"stray endloop":   func(b *Builder) { b.EndLoop() },
		"counter clash": func(b *Builder) {
			t0 := b.Table([]uint64{64})
			d0 := b.Loop(2)
			d1 := b.Loop(2)
			_ = d1
			b.Store(Operand{mode: AddrTable, addr: uint64(t0), dep: uint8(d0)}, Counter(d1))
			b.EndLoop()
			b.EndLoop()
		},
	}
	for name, f := range cases {
		b := NewBuilder(1)
		f(b)
		if _, err := b.Build(); err == nil {
			t.Errorf("%s: Build succeeded, want error", name)
		}
	}
}

func TestValidateRejectsBadPrograms(t *testing.T) {
	cases := map[string]Program{
		"jump out of range": {Ops: []Op{{Code: Jump, Target: 5}}},
		"none barrier":      {Ops: []Op{{Code: Barrier, Bar: isa.None}}},
		"bad table":         {Ops: []Op{{Code: Load, AMode: AddrTable, Addr: 3}}},
		"empty table":       {Ops: []Op{{Code: Load, AMode: AddrTable, Addr: 0}}, Tables: [][]uint64{{}}},
		"zero count loop":   {Ops: []Op{{Code: Load}, {Code: LoopEnd, Target: 0, Count: 0}}},
		"forward loopend":   {Ops: []Op{{Code: LoopEnd, Target: 1, Count: 2}, {Code: Load}}},
		"zero work":         {Ops: []Op{{Code: Work, Cyc: 0}}},
		"over MaxOps":       {Ops: make([]Op, MaxOps+1)},
	}
	for name, p := range cases {
		p := p
		if err := p.Validate(); err == nil {
			t.Errorf("%s: Validate passed, want error", name)
		}
	}
}
