package prog

import (
	"fmt"

	"armbar/internal/isa"
)

// Operand is a memory op's address, resolved at build time.
type Operand struct {
	mode  AddrMode
	addr  uint64 // absolute address or table index
	dep   uint8
}

// Abs addresses memory at a fixed address.
func Abs(addr uint64) Operand { return Operand{mode: AddrImm, addr: addr} }

// Ring addresses memory through the registered address table,
// indexed by loop counter dep modulo the table length.
func Ring(table int, dep int) Operand {
	return Operand{mode: AddrTable, addr: uint64(table), dep: uint8(dep)}
}

// Value is a store/atomic operand value, resolved at build time.
type Value struct {
	mode ValMode
	v    uint64
	dep  uint8
}

// Imm is a literal value.
func Imm(v uint64) Value { return Value{mode: ValImm, v: v} }

// Counter is the current value of loop counter dep (the iteration
// index).
func Counter(dep int) Value { return Value{mode: ValCounter, dep: uint8(dep)} }

// Builder assembles a Program. Methods append micro-ops in order;
// Loop/EndLoop bracket counted loops (properly nested, up to
// MaxLoopDepth deep). The zero Builder is not ready: use NewBuilder,
// which captures the platform's issue width so Nops lowers to cycles
// at build time.
type Builder struct {
	p          Program
	issueWidth float64
	loopStack  []loopFrame
	err        error
}

type loopFrame struct {
	start   int32
	count   int64
	dep     uint8
	skipIdx int32 // Jump emitted for a zero-trip loop, patched at EndLoop; -1 otherwise
}

// NewBuilder returns a builder for a platform whose pipeline issues
// issueWidth instructions per cycle (platform.CostModel.IssueWidth).
func NewBuilder(issueWidth float64) *Builder {
	if issueWidth <= 0 {
		issueWidth = 1
	}
	return &Builder{issueWidth: issueWidth}
}

// Table registers a pre-resolved address ring and returns its index
// for Ring operands.
func (b *Builder) Table(addrs []uint64) int {
	b.p.Tables = append(b.p.Tables, addrs)
	return len(b.p.Tables) - 1
}

func (b *Builder) emit(op Op) {
	b.p.Ops = append(b.p.Ops, op)
}

func (b *Builder) mem(code Code, o Operand, v Value) {
	b.emit(Op{Code: code, AMode: o.mode, VMode: v.mode, Dep: b.memDep(o, v),
		Addr: o.addr, Val: v.v})
}

// memDep merges the operand and value counter references; they must
// agree when both index a counter (one Dep field per op — the lowered
// workloads always use the innermost counter for both).
func (b *Builder) memDep(o Operand, v Value) uint8 {
	od, vd := o.mode == AddrTable, v.mode == ValCounter
	if od && vd && o.dep != v.dep {
		b.fail("address counter %d and value counter %d differ in one op", o.dep, v.dep)
	}
	if od {
		return o.dep
	}
	return v.dep
}

func (b *Builder) fail(format string, args ...any) {
	if b.err == nil {
		b.err = fmt.Errorf("prog: %s", fmt.Sprintf(format, args...))
	}
}

// Load appends a relaxed load.
func (b *Builder) Load(o Operand) { b.mem(Load, o, Imm(0)) }

// LoadAcquire appends an LDAR.
func (b *Builder) LoadAcquire(o Operand) { b.mem(LoadAcq, o, Imm(0)) }

// LoadAcquirePC appends an LDAPR.
func (b *Builder) LoadAcquirePC(o Operand) { b.mem(LoadAcqPC, o, Imm(0)) }

// Store appends a relaxed store of v.
func (b *Builder) Store(o Operand, v Value) { b.mem(Store, o, v) }

// StoreRelease appends an STLR of v.
func (b *Builder) StoreRelease(o Operand, v Value) { b.mem(StoreRel, o, v) }

// FetchAdd appends an atomic add of v (result discarded).
func (b *Builder) FetchAdd(o Operand, v Value) { b.mem(FetchAdd, o, v) }

// Swap appends an atomic swap to v (result discarded).
func (b *Builder) Swap(o Operand, v Value) { b.mem(Swap, o, v) }

// CompareAndSwap appends an atomic CAS from old to new (result
// discarded).
func (b *Builder) CompareAndSwap(o Operand, old, new uint64) {
	b.emit(Op{Code: CAS, AMode: o.mode, Dep: o.dep, Addr: o.addr, Val: old, Val2: new})
}

// Barrier appends a standalone order-preserving instruction. None is
// elided, matching Thread.Barrier's early return; operand barriers are
// a build error.
func (b *Builder) Barrier(bar isa.Barrier) {
	if bar == isa.None {
		return
	}
	if bar == isa.LDAR || bar == isa.LDAPR || bar == isa.STLR {
		b.fail("operand barrier %v is not standalone", bar)
		return
	}
	b.emit(Op{Code: Barrier, Bar: bar})
}

// Nops appends n trivial ALU instructions, pre-scaled by the issue
// width. n <= 0 emits nothing, matching Thread.Nops.
func (b *Builder) Nops(n int) {
	if n <= 0 {
		return
	}
	b.emit(Op{Code: Work, Cyc: float64(n) / b.issueWidth})
}

// Work appends cycles of purely local computation. cycles <= 0 emits
// nothing, matching Thread.Work.
func (b *Builder) Work(cycles float64) {
	if cycles <= 0 {
		return
	}
	b.emit(Op{Code: Work, Cyc: cycles})
}

// SpinEQ appends a spin that loads o until the value equals v, running
// padNops of padding between polls — the lowering of
//
//	for t.Load(a) != v { t.Nops(padNops) }
func (b *Builder) SpinEQ(o Operand, v uint64, padNops int) { b.spin(SpinEQ, o, v, padNops) }

// SpinNE appends a spin that loads o until the value differs from v.
func (b *Builder) SpinNE(o Operand, v uint64, padNops int) { b.spin(SpinNE, o, v, padNops) }

// SpinGE appends a spin that loads o until the value reaches v. This
// is the epoch-safe wait the barrier algorithms use: a monotone
// counter or epoch flag may be advanced past v by other threads
// before a slow spinner polls again, so waiting for >= v never hangs
// where an exact-match spin would.
func (b *Builder) SpinGE(o Operand, v uint64, padNops int) { b.spin(SpinGE, o, v, padNops) }

func (b *Builder) spin(code Code, o Operand, v uint64, padNops int) {
	at := int32(len(b.p.Ops))
	if padNops > 0 {
		// [spin exit=+3] [pad work] [jump spin]
		b.emit(Op{Code: code, AMode: o.mode, Dep: o.dep, Addr: o.addr, Val: v, Target: at + 3})
		b.Nops(padNops)
		b.emit(Op{Code: Jump, Target: at})
	} else {
		// [spin exit=+2] [jump spin]
		b.emit(Op{Code: code, AMode: o.mode, Dep: o.dep, Addr: o.addr, Val: v, Target: at + 2})
		b.emit(Op{Code: Jump, Target: at})
	}
}

// Loop opens a counted loop of n iterations — the lowering of
// `for i := 0; i < n; i++`, including n <= 0 running the body zero
// times. The loop body observes the iteration index through
// Counter(dep)/Ring(_, dep), where dep is the returned counter slot.
// Loops nest; EndLoop closes the innermost.
func (b *Builder) Loop(n int) (dep int) {
	d := len(b.loopStack)
	if d >= MaxLoopDepth {
		b.fail("loop nesting exceeds MaxLoopDepth %d", MaxLoopDepth)
	}
	f := loopFrame{count: int64(n), dep: uint8(d), skipIdx: -1}
	if n <= 0 {
		// Zero-trip loop: jump over the body (target patched at EndLoop).
		f.skipIdx = int32(len(b.p.Ops))
		b.emit(Op{Code: Jump})
	}
	f.start = int32(len(b.p.Ops))
	b.loopStack = append(b.loopStack, f)
	return d
}

// EndLoop closes the innermost open loop.
func (b *Builder) EndLoop() {
	if len(b.loopStack) == 0 {
		b.fail("EndLoop without Loop")
		return
	}
	f := b.loopStack[len(b.loopStack)-1]
	b.loopStack = b.loopStack[:len(b.loopStack)-1]
	switch {
	case f.skipIdx >= 0:
		b.p.Ops[f.skipIdx].Target = int32(len(b.p.Ops))
	case f.count > 1:
		b.emit(Op{Code: LoopEnd, Dep: f.dep, Target: f.start, Count: f.count})
	}
	if int(f.dep)+1 > b.p.Depth {
		b.p.Depth = int(f.dep) + 1
	}
}

// Build validates and returns the program. The builder must not be
// reused afterwards.
func (b *Builder) Build() (*Program, error) {
	if b.err != nil {
		return nil, b.err
	}
	if len(b.loopStack) != 0 {
		return nil, fmt.Errorf("prog: %d unclosed loops", len(b.loopStack))
	}
	if err := b.p.Validate(); err != nil {
		return nil, err
	}
	return &b.p, nil
}

// MustBuild is Build for statically correct lowerings (the in-tree
// compilers): it panics on error.
func (b *Builder) MustBuild() *Program {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}
