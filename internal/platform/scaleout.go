package platform

import (
	"fmt"

	"armbar/internal/topo"
)

// This file defines the synthetic scale-out platforms for the
// many-core barrier experiments. They are deliberately NOT part of
// All(): All() is the paper's Table 2 and feeds golden-digest output,
// so the scale-out family lives beside it and is reachable through
// ByName (e.g. "ScaleOut256") and ScaleOut.

// ScaleOutCores lists the supported scale-out platform sizes, in
// ascending order (the topo presets).
var ScaleOutCores = []int{64, 256, 1024}

// ScaleOut returns a synthetic n-core server platform over
// topo.Preset(n). The cost model extends the Kunpeng 916 calibration —
// the study's only server-class interconnect — keeping the per-hop
// relations (cluster < node << cross-node, DSB worst) while making the
// cross-node fabric a mesh-style interconnect whose costs do not blow
// up with the node count: the point of the barrier zoo is to compare
// software barrier algorithms on fixed hardware costs, as the
// 1024-core RISC-V study does.
func ScaleOut(n int) (*Platform, error) {
	sys, err := topo.Preset(n)
	if err != nil {
		return nil, fmt.Errorf("platform: %w", err)
	}
	base := Kunpeng916().Cost
	// A scale-out fabric amortizes the cross-node path better than the
	// 916's Hydra interface: still the dominant cost, but not 5x the
	// node-local miss.
	base.MissCrossNode = 150
	base.BarrierTxnCrossNode = 160
	base.SyncTxn = 360
	// The scale-out presets enable the atomic occupancy model: with
	// hundreds of cores fanning fetch-adds into one arrival counter the
	// line's serialization point, not the miss latency, is what decides
	// the scaling shape. The calibrated platforms keep it off (zero) so
	// the paper's reproduced figures stay bit-identical.
	base.RMWOccupancy = 24
	return &Platform{
		Name:         fmt.Sprintf("ScaleOut%d", n),
		Arch:         fmt.Sprintf("synthetic ARM server %dx", n),
		Interconnect: "mesh (synthetic)",
		Sys:          sys,
		Cost:         base,
	}, nil
}

// MustScaleOut is ScaleOut for the compiled-in ScaleOutCores sizes.
func MustScaleOut(n int) *Platform {
	p, err := ScaleOut(n)
	if err != nil {
		panic(err)
	}
	return p
}
