package platform

import (
	"testing"

	"armbar/internal/topo"
)

func TestPresetsExist(t *testing.T) {
	all := All()
	if len(all) != 4 {
		t.Fatalf("want 4 platforms, got %d", len(all))
	}
	names := map[string]bool{}
	for _, p := range all {
		names[p.Name] = true
		if p.Sys.NumCores() == 0 {
			t.Errorf("%s: no cores", p.Name)
		}
		if p.Cost.FreqGHz <= 0 || p.Cost.IssueWidth <= 0 {
			t.Errorf("%s: bad clock/width", p.Name)
		}
		if p.Cost.StoreBufferEntries <= 0 {
			t.Errorf("%s: store buffer must be bounded and positive", p.Name)
		}
	}
	for _, want := range []string{"Kunpeng916", "Kirin960", "Kirin970", "Raspberry Pi 4"} {
		if !names[want] {
			t.Errorf("missing platform %s", want)
		}
	}
}

func TestByName(t *testing.T) {
	if ByName("Kunpeng916") == nil {
		t.Error("ByName(Kunpeng916) = nil")
	}
	if ByName("nope") != nil {
		t.Error("ByName(nope) should be nil")
	}
}

func TestKunpengTopology(t *testing.T) {
	p := Kunpeng916()
	if p.Sys.NumNodes() != 2 || p.Sys.NumCores() != 64 {
		t.Fatalf("Kunpeng916: %d nodes, %d cores", p.Sys.NumNodes(), p.Sys.NumCores())
	}
	if len(p.Sys.NodeCores(0)) != 32 {
		t.Fatalf("node 0 must have 32 cores")
	}
}

func TestMobilePlatformsAreBigLittle(t *testing.T) {
	for _, p := range []*Platform{Kirin960(), Kirin970()} {
		if got := len(p.Sys.CoresOfClass(topo.Big)); got != 4 {
			t.Errorf("%s: %d big cores, want 4", p.Name, got)
		}
		if got := len(p.Sys.CoresOfClass(topo.Little)); got != 4 {
			t.Errorf("%s: %d little cores, want 4", p.Name, got)
		}
	}
}

func TestCostRelationsBehindTheObservations(t *testing.T) {
	kp := Kunpeng916().Cost
	// Obs 4: the server's barrier transactions dwarf the mobile ones.
	for _, m := range []*Platform{Kirin960(), Kirin970(), RaspberryPi4()} {
		if kp.SyncTxn <= m.Cost.SyncTxn {
			t.Errorf("server SyncTxn (%v) must exceed %s (%v)", kp.SyncTxn, m.Name, m.Cost.SyncTxn)
		}
		if kp.BarrierTxnCrossNode <= m.Cost.BarrierTxnCrossNode {
			t.Errorf("server cross-node txn must exceed %s", m.Name)
		}
	}
	// Obs 5: crossing nodes is a killer.
	if kp.MissCrossNode <= 2*kp.MissSameNode {
		t.Errorf("cross-node miss (%v) should dwarf same-node (%v)", kp.MissCrossNode, kp.MissSameNode)
	}
	if kp.BarrierTxnCrossNode <= 2*kp.BarrierTxnSameNode {
		t.Errorf("cross-node barrier txn should dwarf same-node")
	}
	// DSB vs DMB: the domain boundary is the farthest.
	if kp.SyncTxn <= kp.BarrierTxnCrossNode {
		t.Errorf("SyncTxn (%v) must exceed the widest memory-barrier txn (%v)",
			kp.SyncTxn, kp.BarrierTxnCrossNode)
	}
	// Obs 3: STLR's band sits between DMB st's txn and DSB.
	if kp.STLRPenaltyMin <= kp.BarrierTxnSameNode {
		t.Errorf("STLR floor should exceed a cheap DMB txn")
	}
	if kp.STLRPenaltyMax <= kp.BarrierTxnCrossNode {
		t.Errorf("STLR ceiling should reach past DMB txns")
	}
}

func TestMissLatencyMonotone(t *testing.T) {
	for _, p := range All() {
		c := p.Cost
		ds := []topo.Distance{topo.SameCore, topo.SameCluster, topo.SameNode, topo.CrossNode}
		for i := 1; i < len(ds); i++ {
			if c.MissLatency(ds[i]) < c.MissLatency(ds[i-1]) {
				t.Errorf("%s: miss latency not monotone at %v", p.Name, ds[i])
			}
			if c.BarrierTxn(ds[i]) < c.BarrierTxn(ds[i-1]) {
				t.Errorf("%s: barrier txn not monotone at %v", p.Name, ds[i])
			}
		}
	}
}
