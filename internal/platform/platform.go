// Package platform provides the target-platform descriptions of the
// study (the paper's Table 2) as simulator configurations: a topology
// plus a calibrated cost model.
//
// Absolute latencies are not taken from the paper (it reports only
// throughputs on real silicon); they are chosen so that the *relations*
// the paper establishes hold: server interconnects have expensive
// barrier transactions and long cross-node snoops, mobile interconnects
// are much flatter, DSB always pays a trip to the inner domain boundary,
// and so on. EXPERIMENTS.md records how each figure's shape follows.
package platform

import (
	"fmt"

	"armbar/internal/topo"
)

// CostModel holds every timing parameter of a simulated platform, in
// cycles (of that platform's own clock) unless stated otherwise.
type CostModel struct {
	// FreqGHz converts cycles to seconds when reporting throughput.
	FreqGHz float64
	// IssueWidth is how many trivial ALU ops (nops, adds) retire per cycle.
	IssueWidth float64

	// CacheHit is the cost of a load/store hitting the local cache.
	CacheHit float64
	// StoreBufferLatency is the cost of placing a store into the store
	// buffer (the store itself retires immediately afterwards).
	StoreBufferLatency float64
	// StoreBufferEntries is the buffer capacity; issue stalls when the
	// buffer is full, which is what serializes fenced store streams.
	StoreBufferEntries int
	// DrainDelay is the base background delay before a buffered store
	// commits to the coherence fabric.
	DrainDelay float64
	// DrainJitter is the width of the uniform extra drain delay applied
	// in WMM mode; it is what lets same-cost stores commit out of order.
	DrainJitter float64

	// MissSameCluster / MissSameNode / MissCrossNode are the costs of a
	// coherence miss whose owner sits at the given distance.
	MissSameCluster float64
	MissSameNode    float64
	MissCrossNode   float64

	// InvalidationDelay is how long a remote copy stays readable (stale)
	// after a store to the line commits elsewhere: the window that makes
	// load reordering observable.
	InvalidationDelay float64

	// BarrierTxnSameCluster / SameNode / CrossNode are the round-trip
	// costs of a DMB *memory barrier transaction* to the inner
	// bi-section boundary spanning the given distance (Obs 5: DMB pays
	// only as far as the farthest sharer).
	BarrierTxnSameCluster float64
	BarrierTxnSameNode    float64
	BarrierTxnCrossNode   float64

	// RMWOccupancy is how long an atomic read-modify-write occupies its
	// cache line's serialization point: the line's home applies atomics
	// one at a time, so concurrent RMWs to one line queue behind each
	// other by this many cycles each. Zero disables the occupancy model
	// entirely (no directory call, bit-identical latency-only results);
	// the paper's calibrated platforms keep it off because none of the
	// paper's experiments fan enough atomics into one line for it to
	// matter, while the synthetic scale-out presets enable it — without
	// it a 1024-thread central counter barrier would scale flat.
	RMWOccupancy float64

	// SyncTxn is the round-trip of a DSB *synchronization barrier
	// transaction* to the inner domain boundary. It does not depend on
	// where the sharers are (Obs 5: "DSB does not benefit from the
	// locality").
	SyncTxn float64

	// PipelineFlush is the ISB cost.
	PipelineFlush float64

	// STLRPenaltyMin/Max bound the unstable extra cost of STLR beyond a
	// plain committed store (Obs 3: between DMB st and DSB, unstable).
	STLRPenaltyMin float64
	STLRPenaltyMax float64
}

// Platform bundles a name, a topology and a cost model.
type Platform struct {
	Name         string
	Arch         string // human-readable core description (Table 2)
	Interconnect string
	Sys          *topo.System
	Cost         CostModel
}

func (p *Platform) String() string {
	return fmt.Sprintf("%s (%s, %d cores, %d nodes, %s)",
		p.Name, p.Arch, p.Sys.NumCores(), p.Sys.NumNodes(), p.Interconnect)
}

// Kunpeng916 models the 2-node, 2x32-core ARM server of the study
// (Hydra interface interconnect, 2.4 GHz). Each node holds 8 clusters
// of 4 cores. Its bus is "complex": barrier transactions are expensive
// and cross-node snoops are a killer (Obs 4, Obs 5).
func Kunpeng916() *Platform {
	s := topo.New()
	for node := 0; node < 2; node++ {
		for cl := 0; cl < 8; cl++ {
			s.AddCluster(node, topo.Big, 4)
		}
	}
	return &Platform{
		Name:         "Kunpeng916",
		Arch:         "Cortex-A72 2x32",
		Interconnect: "Hydra Interface",
		Sys:          s,
		Cost: CostModel{
			FreqGHz:            2.4,
			IssueWidth:         3,
			CacheHit:           3,
			StoreBufferLatency: 1,
			StoreBufferEntries: 24,
			DrainDelay:         12,
			DrainJitter:        50,
			MissSameCluster:    42,
			MissSameNode:       48,
			MissCrossNode:      230,
			InvalidationDelay:  40,

			BarrierTxnSameCluster: 18,
			BarrierTxnSameNode:    25,
			BarrierTxnCrossNode:   250,
			SyncTxn:               480,

			PipelineFlush:  22,
			STLRPenaltyMin: 120,
			STLRPenaltyMax: 520,
		},
	}
}

// Kirin960 models the big.LITTLE mobile SoC (4x A73 + 4x A53 on one
// node, ARM CCI-550, 2.1 GHz). The interconnect is simple: barrier
// transactions are cheap and flat (Obs 4).
func Kirin960() *Platform {
	s := topo.New()
	s.AddCluster(0, topo.Big, 4)
	s.AddCluster(0, topo.Little, 4)
	return &Platform{
		Name:         "Kirin960",
		Arch:         "Cortex-A73 + Cortex-A53 (4+4)",
		Interconnect: "ARM CCI-550",
		Sys:          s,
		Cost: CostModel{
			FreqGHz:            2.1,
			IssueWidth:         2,
			CacheHit:           3,
			StoreBufferLatency: 1,
			StoreBufferEntries: 12,
			DrainDelay:         8,
			DrainJitter:        20,
			MissSameCluster:    35,
			MissSameNode:       60,
			MissCrossNode:      60, // single node: unused
			InvalidationDelay:  25,

			BarrierTxnSameCluster: 16,
			BarrierTxnSameNode:    24,
			BarrierTxnCrossNode:   24,
			SyncTxn:               90,

			PipelineFlush: 16,
			// Obs 3 is platform-specific: on the Kirin SoCs STLR is
			// nearly free (the paper's Fig 3c/3d show it at ~90% of
			// no-barrier), unlike Kunpeng916 and the Pi.
			STLRPenaltyMin: 1,
			STLRPenaltyMax: 4,
		},
	}
}

// Kirin970 is the successor SoC (same layout, 2.36 GHz, slightly
// faster uncore).
func Kirin970() *Platform {
	p := Kirin960()
	p.Name = "Kirin970"
	p.Cost.FreqGHz = 2.36
	p.Cost.MissSameCluster = 32
	p.Cost.MissSameNode = 55
	p.Cost.MissCrossNode = 55
	p.Cost.BarrierTxnSameCluster = 14
	p.Cost.BarrierTxnSameNode = 22
	p.Cost.BarrierTxnCrossNode = 22
	p.Cost.SyncTxn = 80
	return p
}

// RaspberryPi4 models the 4x Cortex-A72 embedded board (1.5 GHz,
// unknown interconnect — in practice flat but with a slow DSB path and
// an expensive STLR, which the paper observes).
func RaspberryPi4() *Platform {
	s := topo.New()
	s.AddCluster(0, topo.Big, 4)
	return &Platform{
		Name:         "Raspberry Pi 4",
		Arch:         "Cortex-A72 x4",
		Interconnect: "Unknown",
		Sys:          s,
		Cost: CostModel{
			FreqGHz:            1.5,
			IssueWidth:         2,
			CacheHit:           3,
			StoreBufferLatency: 1,
			StoreBufferEntries: 12,
			DrainDelay:         10,
			DrainJitter:        24,
			MissSameCluster:    40,
			MissSameNode:       40,
			MissCrossNode:      40,
			InvalidationDelay:  30,

			BarrierTxnSameCluster: 14,
			BarrierTxnSameNode:    14,
			BarrierTxnCrossNode:   14,
			SyncTxn:               110,

			PipelineFlush:  18,
			STLRPenaltyMin: 30, // Obs 3: STLR does not perform well on rpi4
			STLRPenaltyMax: 110,
		},
	}
}

// All returns the four study platforms in the paper's order.
func All() []*Platform {
	return []*Platform{Kunpeng916(), Kirin960(), Kirin970(), RaspberryPi4()}
}

// ByName returns the platform with the given name (case-sensitive,
// matching the Name field) or nil. Besides the study platforms it
// resolves the synthetic scale-out family ("ScaleOut64" ..
// "ScaleOut1024"), which stays out of All() so Table 2 output is
// untouched.
func ByName(name string) *Platform {
	for _, p := range All() {
		if p.Name == name {
			return p
		}
	}
	for _, n := range ScaleOutCores {
		if name == fmt.Sprintf("ScaleOut%d", n) {
			return MustScaleOut(n)
		}
	}
	return nil
}

// MissLatency returns the coherence-miss cost for an owner at distance d.
func (c *CostModel) MissLatency(d topo.Distance) float64 {
	switch d {
	case topo.SameCore:
		return c.CacheHit
	case topo.SameCluster:
		return c.MissSameCluster
	case topo.SameNode:
		return c.MissSameNode
	default:
		return c.MissCrossNode
	}
}

// BarrierTxn returns the memory-barrier-transaction round trip for a
// bi-section boundary spanning distance d.
func (c *CostModel) BarrierTxn(d topo.Distance) float64 {
	switch d {
	case topo.SameCore, topo.SameCluster:
		return c.BarrierTxnSameCluster
	case topo.SameNode:
		return c.BarrierTxnSameNode
	default:
		return c.BarrierTxnCrossNode
	}
}
