package explore

import (
	"sync/atomic"

	"armbar/internal/isa"
	"armbar/internal/litmus"
	"armbar/internal/metrics"
)

// This file is the explorer's throughput engine: an iterative
// worklist search over compressed states (see pack.go for the two
// representations). Where the witness replayer (witness.go) clones
// heap states and builds string keys, this engine mutates exactly two
// flat scratch states — the frame being expanded and the successor
// under construction — and touches the heap only through the packed
// visited table and the flat frame stack, both of which reach
// steady-state capacity early. The visit loop (pop → mutate scratch →
// pack → probe → push) allocates nothing; allocvet pins it. Popping a
// frame is one memmove — the stack holds flat states, so no decode
// step exists on the hot path at all.
//
// The engine and the replayer implement the same abstract semantics
// (see the package comment) and the same state identity — the packed
// encoding is injective over exactly the fields the old string key
// enumerated — so reachable sets, outcome sets, and distinct-state
// counts are bit-identical to the PR 9 explorer.

// fop is a placed op pre-lowered against the layout: the address fits
// a byte and the store/swap value is replaced by its dictionary
// index, so the visit loop never consults the dictionary.
type fop struct {
	code SCode
	addr uint8
	vidx uint8 // dictionary index of Val (SStore/SSwap)
	obs  int8  // destination register, -1 = discarded
	bar  isa.Barrier
}

// fastExplorer runs the compressed search for one (program, mode,
// bound).
type fastExplorer struct {
	shape *Shape
	pl    Placement
	ops   [][]SOp // placed program, kept for the witness replayer
	fops  [][]fop // the same program lowered against the layout
	tso   bool
	bound int
	lay   layout

	table  *vtable
	stack  []byte   // flat frames, lay.stride bytes each
	cur    []byte   // frame being expanded
	next   []byte   // successor scratch
	pbuf   []uint64 // pack scratch, lay.words
	writes []int    // layout-build scratch

	rawRegs []uint64 // terminal rendering scratch (dictionary-decoded)
	rawMem  []uint64

	sigs         map[uint64]struct{} // terminal signatures already rendered
	outcomes     map[litmus.Outcome]bool
	forbidden    map[litmus.Outcome]bool
	sawForbidden bool
}

// newFastExplorer builds an engine for one placed program. A non-nil
// re recycles a previous engine's slabs — visited table (an epoch
// bump, keeping the grown capacity), program and lowering buffers,
// scratch states, frame stack and result maps — which is how a
// Minimize walk pays the allocations once for the whole lattice
// instead of once per placement.
func newFastExplorer(s *Shape, pl Placement, tso bool, bound int, re *fastExplorer) *fastExplorer {
	x := re
	if x == nil {
		x = &fastExplorer{
			sigs:      make(map[uint64]struct{}),
			outcomes:  make(map[litmus.Outcome]bool),
			forbidden: make(map[litmus.Outcome]bool),
		}
	} else {
		clear(x.sigs)
		clear(x.outcomes)
		clear(x.forbidden)
		x.sawForbidden = false
		x.stack = x.stack[:0]
	}
	x.shape, x.pl, x.tso, x.bound = s, pl, tso, bound
	x.buildProgram()
	x.writes = x.lay.build(s, x.ops, bound, x.writes)
	x.lowerProgram()
	if x.table == nil || x.table.words != x.lay.words {
		x.table = newVTable(x.lay.words)
	} else {
		x.table.reset()
	}
	x.cur = reuseBytes(x.cur, x.lay.stride)
	x.next = reuseBytes(x.next, x.lay.stride)
	if len(x.pbuf) != x.lay.words {
		x.pbuf = make([]uint64, x.lay.words)
	}
	x.rawRegs = reuseU64(x.rawRegs, x.lay.nregs)
	x.rawMem = reuseU64(x.rawMem, x.lay.nlines)
	return x
}

func reuseBytes(b []byte, n int) []byte {
	if cap(b) < n {
		return make([]byte, n)
	}
	return b[:n]
}

func reuseU64(b []uint64, n int) []uint64 {
	if cap(b) < n {
		return make([]uint64, n)
	}
	return b[:n]
}

// buildProgram lowers the placement into x.ops, mirroring
// Shape.program but reusing the engine's backing arrays.
func (x *fastExplorer) buildProgram() {
	s, pl := x.shape, x.pl
	if cap(x.ops) < len(s.Threads) {
		x.ops = make([][]SOp, len(s.Threads))
	}
	x.ops = x.ops[:len(s.Threads)]
	for i := range s.Threads {
		base := s.Threads[i]
		t := x.ops[i][:0]
		if cap(t) < len(base)+len(s.Slots) {
			t = make([]SOp, 0, len(base)+len(s.Slots))
		}
		for at := 0; at <= len(base); at++ {
			for si, sl := range s.Slots {
				if sl.Thread == i && sl.At == at && pl.Has(si) {
					t = append(t, SOp{Code: SBarrier, Bar: sl.Bar, Obs: -1})
				}
			}
			if at < len(base) {
				t = append(t, base[at])
			}
		}
		x.ops[i] = t
	}
}

// lowerProgram translates x.ops into x.fops against the layout's
// dictionary.
func (x *fastExplorer) lowerProgram() {
	if cap(x.fops) < len(x.ops) {
		x.fops = make([][]fop, len(x.ops))
	}
	x.fops = x.fops[:len(x.ops)]
	for u, tops := range x.ops {
		f := x.fops[u][:0]
		if cap(f) < len(tops) {
			f = make([]fop, 0, len(tops))
		}
		for _, op := range tops {
			fo := fop{code: op.Code, addr: uint8(op.Addr), obs: int8(op.Obs), bar: op.Bar}
			if op.Code == SStore || op.Code == SSwap {
				fo.vidx = uint8(x.lay.dictIdx(op.Val))
			}
			f = append(f, fo)
		}
		x.fops[u] = f
	}
}

// pushInit seeds the worklist with the program's initial state.
func (x *fastExplorer) pushInit() {
	for i := range x.cur {
		x.cur[i] = 0
	}
	x.cur[0] = byte(x.bound)
	for i := 0; i < x.lay.nlines; i++ {
		v := uint64(0)
		if i < len(x.shape.Init) {
			v = x.shape.Init[i]
		}
		x.cur[x.lay.memOff+i] = byte(x.lay.dictIdx(v))
	}
	x.lay.pack(x.cur, x.pbuf)
	x.table.insert(x.pbuf, hashWords(x.pbuf))
	x.stack = append(x.stack, x.cur...)
}

// run drains the worklist. Every state is expanded exactly once; a
// state with no successor is terminal (all threads done, buffers
// drained) and is folded into the outcome set.
func (x *fastExplorer) run() {
	for len(x.stack) > 0 {
		x.expandOne()
	}
}

// expandOne pops one flat frame and generates its successors.
func (x *fastExplorer) expandOne() {
	n := len(x.stack) - x.lay.stride
	copy(x.cur, x.stack[n:])
	x.stack = x.stack[:n]

	progressed := false
	for u := range x.fops {
		if int(x.cur[x.lay.th[u].hdrOff]) < len(x.fops[u]) {
			if x.issue(u) {
				progressed = true
			}
		}
	}
	for u := range x.fops {
		if x.commits(u) {
			progressed = true
		}
	}
	if !progressed {
		x.terminal()
	}
}

// emit packs the successor scratch state, probes the visited table,
// and pushes newly discovered states onto the worklist.
func (x *fastExplorer) emit() {
	x.lay.pack(x.next, x.pbuf)
	if x.table.insert(x.pbuf, hashWords(x.pbuf)) {
		x.stack = append(x.stack, x.next...)
	}
}

// issue generates the successors of thread u's next op, mirroring
// witExplorer.issue. It returns false when the op cannot issue yet (a
// drain barrier or RMW waiting on a non-empty buffer).
func (x *fastExplorer) issue(u int) bool {
	tl := &x.lay.th[u]
	op := x.fops[u][x.cur[tl.hdrOff]]
	switch op.code {
	case SLoad, SLoadAcq:
		x.loads(u, tl, op)
		return true

	case SStore:
		copy(x.next, x.cur)
		x.next[tl.hdrOff]++ // pc
		nbuf := x.next[tl.hdrOff+2]
		b := x.next[tl.bufOff+3*int(nbuf):]
		b[0], b[1], b[2] = op.addr, op.vidx, x.next[tl.hdrOff+1] // level; rel clear
		x.next[tl.hdrOff+2] = nbuf + 1
		x.emit()
		return true

	case SBarrier:
		return x.barrier(u, tl, op)

	case SSwap:
		if x.cur[tl.hdrOff+2] != 0 {
			return false // drains the buffer first
		}
		old := x.cur[x.lay.memOff+int(op.addr)]
		copy(x.next, x.cur)
		x.next[tl.hdrOff]++
		x.next[x.lay.memOff+int(op.addr)] = op.vidx
		if op.obs >= 0 {
			x.next[x.lay.regsOff+int(op.obs)] = old
		}
		x.next[tl.hdrOff+3] = 0 // acquire half: syncPoint = now
		if old != op.vidx && !x.tso {
			for w := range x.fops {
				if w != u {
					x.addStale(w, op.addr, old)
				}
			}
		}
		x.emit()
		return true
	}
	panic("explore: unknown op code")
}

// loads generates the read successors of a load: mandatory forwarding
// from the own buffer, otherwise the fresh committed value plus — for
// observed loads under WMM — every distinct stale view.
func (x *fastExplorer) loads(u int, tl *thLayout, op fop) {
	acq := op.code == SLoadAcq
	nbuf := int(x.cur[tl.hdrOff+2])
	// Store-buffer forwarding is mandatory when the buffer holds the
	// line: read the newest pending value.
	for k := nbuf - 1; k >= 0; k-- {
		if x.cur[tl.bufOff+3*k] == op.addr {
			x.finishLoad(u, tl, op, acq, x.cur[tl.bufOff+3*k+1], false)
			return
		}
	}
	fresh := x.cur[x.lay.memOff+int(op.addr)]
	x.finishLoad(u, tl, op, acq, fresh, false)
	if op.obs < 0 || x.cur[0] == 0 {
		// Unobserved loads need no stale branch: the value is
		// discarded, and the state effects are identical.
		return
	}
	nstale := int(x.cur[tl.hdrOff+3])
	for k := 0; k < nstale; k++ {
		a, vf := x.cur[tl.staleOff+2*k], x.cur[tl.staleOff+2*k+1]&0x7f
		if a != op.addr || vf == fresh {
			continue
		}
		x.finishLoad(u, tl, op, acq, vf, true)
	}
}

func (x *fastExplorer) finishLoad(u int, tl *thLayout, op fop, acq bool, val uint8, stale bool) {
	copy(x.next, x.cur)
	if stale {
		x.next[0]-- // budget
	}
	x.next[tl.hdrOff]++
	x.markClearable(tl)
	if acq {
		x.next[tl.hdrOff+3] = 0
	}
	if op.obs >= 0 {
		x.next[x.lay.regsOff+int(op.obs)] = val
	}
	x.emit()
}

// barrier applies a standalone barrier's ordering effect, mirroring
// witExplorer.barrier.
func (x *fastExplorer) barrier(u int, tl *thLayout, op fop) bool {
	switch op.bar {
	case isa.DMBSt:
		copy(x.next, x.cur)
		x.next[tl.hdrOff]++
		x.next[tl.hdrOff+1]++ // drain level
		x.emit()
	case isa.DMBFull, isa.DSBFull, isa.DSBSt, isa.DSBLd:
		if x.cur[tl.hdrOff+2] != 0 {
			return false // blocks until the buffer drains
		}
		copy(x.next, x.cur)
		x.next[tl.hdrOff]++
		x.next[tl.hdrOff+3] = 0
		x.emit()
	case isa.DMBLd, isa.AddrDep, isa.CtrlISB:
		copy(x.next, x.cur)
		x.next[tl.hdrOff]++
		x.dropClearable(tl)
		x.emit()
	case isa.DataDep, isa.CtrlDep, isa.ISB:
		copy(x.next, x.cur)
		x.next[tl.hdrOff]++
		x.emit()
	default:
		badSlotBarrier(op.bar)
	}
	return true
}

//go:noinline
func badSlotBarrier(b isa.Barrier) {
	panic("explore: unsupported slot barrier " + b.String())
}

// commits generates one successor per eligible store-buffer entry of
// thread u. Under TSO only the head may drain; under WMM an entry may
// drain early unless an older entry has a lower fence level, writes
// the same line, or the entry is a release that is not yet oldest
// (the same rule eligibleBuf states over the replayer's heap form).
func (x *fastExplorer) commits(u int) bool {
	tl := &x.lay.th[u]
	nbuf := int(x.cur[tl.hdrOff+2])
	any := false
	for k := 0; k < nbuf; k++ {
		if !x.eligible(tl, k) {
			continue
		}
		if k > 0 && x.cur[0] == 0 {
			continue
		}
		any = true
		eaddr := x.cur[tl.bufOff+3*k]
		eval := x.cur[tl.bufOff+3*k+1]
		copy(x.next, x.cur)
		old := x.next[x.lay.memOff+int(eaddr)]
		x.next[x.lay.memOff+int(eaddr)] = eval
		copy(x.next[tl.bufOff+3*k:tl.bufOff+3*(nbuf-1)], x.next[tl.bufOff+3*(k+1):tl.bufOff+3*nbuf])
		x.next[tl.hdrOff+2] = byte(nbuf - 1)
		if k > 0 {
			x.next[0]--
		}
		x.dropStaleAddr(tl, eaddr)
		if old != eval && !x.tso {
			for w := range x.fops {
				if w != u {
					x.addStale(w, eaddr, old)
				}
			}
		}
		x.emit()
	}
	return any
}

// eligible reports whether buffer entry k of the current frame may
// commit (flat-form twin of eligibleBuf).
func (x *fastExplorer) eligible(tl *thLayout, k int) bool {
	if x.tso {
		return k == 0
	}
	lv := x.cur[tl.bufOff+3*k+2]
	if lv&0x80 != 0 && k != 0 {
		return false // release not yet oldest
	}
	lv &= 0x7f
	ea := x.cur[tl.bufOff+3*k]
	for j := 0; j < k; j++ {
		if x.cur[tl.bufOff+3*j+2]&0x7f < lv || x.cur[tl.bufOff+3*j] == ea {
			return false
		}
	}
	return true
}

// terminal folds the current state into the outcome set. Outcomes
// depend only on registers and final memory, so terminal states are
// first deduplicated by a packed (regs, mem) signature and rendered —
// the only allocating step — once per distinct signature.
func (x *fastExplorer) terminal() {
	if x.lay.sigOK {
		var sig uint64
		var off uint
		for i := 0; i < x.lay.nregs; i++ {
			sig |= uint64(x.cur[x.lay.regsOff+i]) << off
			off += x.lay.vbits
		}
		for i := 0; i < x.lay.nlines; i++ {
			sig |= uint64(x.cur[x.lay.memOff+i]) << off
			off += x.lay.vbits
		}
		if _, ok := x.sigs[sig]; ok {
			return
		}
		x.sigs[sig] = struct{}{}
	}
	for i := 0; i < x.lay.nregs; i++ {
		x.rawRegs[i] = x.lay.dict[x.cur[x.lay.regsOff+i]]
	}
	for i := 0; i < x.lay.nlines; i++ {
		x.rawMem[i] = x.lay.dict[x.cur[x.lay.memOff+i]]
	}
	o := x.shape.Outcome(x.rawRegs, x.rawMem)
	x.outcomes[o] = true
	if x.shape.Forbidden(x.rawRegs, x.rawMem) {
		x.forbidden[o] = true
		x.sawForbidden = true
	}
}

// markClearable flags every stale entry of the successor's thread: a
// load just completed, so the entries now predate the thread's last
// load and a subsequent load-side barrier may discard them.
func (x *fastExplorer) markClearable(tl *thLayout) {
	n := int(x.next[tl.hdrOff+3])
	for k := 0; k < n; k++ {
		x.next[tl.staleOff+2*k+1] |= 0x80
	}
}

// dropClearable compacts away the successor thread's clearable stale
// entries (a load-side barrier discards views predating the last
// load).
func (x *fastExplorer) dropClearable(tl *thLayout) {
	n := int(x.next[tl.hdrOff+3])
	w := 0
	for k := 0; k < n; k++ {
		off := tl.staleOff + 2*k
		if x.next[off+1]&0x80 == 0 {
			x.next[tl.staleOff+2*w] = x.next[off]
			x.next[tl.staleOff+2*w+1] = x.next[off+1]
			w++
		}
	}
	x.next[tl.hdrOff+3] = byte(w)
}

// dropStaleAddr compacts away the successor thread's stale entries
// for one address (the thread committed to it and now owns the fresh
// copy).
func (x *fastExplorer) dropStaleAddr(tl *thLayout, addr uint8) {
	n := int(x.next[tl.hdrOff+3])
	w := 0
	for k := 0; k < n; k++ {
		off := tl.staleOff + 2*k
		if x.next[off] != addr {
			x.next[tl.staleOff+2*w] = x.next[off]
			x.next[tl.staleOff+2*w+1] = x.next[off+1]
			w++
		}
	}
	x.next[tl.hdrOff+3] = byte(w)
}

// addStale records in the successor that addr held old (a dictionary
// index) before a remote commit. An existing (addr, old) entry is
// strengthened back to non-clearable: the fresh invalidation
// postdates the holder's last load again.
func (x *fastExplorer) addStale(w int, addr, old uint8) {
	tl := &x.lay.th[w]
	n := int(x.next[tl.hdrOff+3])
	for k := 0; k < n; k++ {
		off := tl.staleOff + 2*k
		if x.next[off] == addr && x.next[off+1]&0x7f == old {
			x.next[off+1] &^= 0x80
			return
		}
	}
	x.next[tl.staleOff+2*n] = addr
	x.next[tl.staleOff+2*n+1] = old
	x.next[tl.hdrOff+3] = byte(n + 1)
}

// globalMetrics is the explorer's observability seam, mirroring
// sim.SetGlobalMetrics: dark by default, one atomic load per
// exploration when unset.
var globalMetrics atomic.Pointer[metrics.Registry]

// SetMetrics installs (or, with nil, removes) the registry every
// subsequent exploration folds its visited-table statistics into.
func SetMetrics(reg *metrics.Registry) {
	globalMetrics.Store(reg)
}

// metricsInto folds one exploration's table statistics into reg.
func (x *fastExplorer) metricsInto(reg *metrics.Registry) {
	reg.Counter("explore_runs_total").Inc()
	reg.Counter("explore_states_total").Add(uint64(x.table.n))
	reg.Counter("explore_probes_total").Add(x.table.probes)
	reg.Counter("explore_table_lookups_total").Add(x.table.calls)
	reg.Counter("explore_table_grows_total").Add(uint64(x.table.grows))
	reg.Gauge("explore_table_occupancy").Set(x.table.occupancy())
	reg.Gauge("explore_probe_length_mean").Set(x.table.meanProbe())
	reg.Gauge("explore_table_slots").Set(float64(x.table.mask + 1))
}

func (x *fastExplorer) noteMetrics() {
	if reg := globalMetrics.Load(); reg != nil {
		x.metricsInto(reg)
	}
}
