package explore

import (
	"fmt"

	"armbar/internal/absmodel"
	"armbar/internal/platform"
	"armbar/internal/runner"
	"armbar/internal/sim"
)

// This file is the three-oracle fuzz driver. Every generated shape
// (gen.go) is checked three independent ways, under both memory
// modes:
//
//   1. the explorer enumerates the exact reachable set of every
//      placement of the shape's slot lattice (operational oracle);
//   2. absmodel predicts each placement's verdict from the shape's
//      ordering clauses and the placed barrier kinds (axiomatic
//      oracle) — the two must agree on every single placement;
//   3. the simulator samples the empty and naive placements and every
//      sampled outcome must lie inside the explorer's reachable set
//      (containment oracle).
//
// The oracles share no machinery: the explorer walks packed abstract
// states, absmodel is a pure ordering algebra, and sim is the
// discrete-event microarchitecture. A shape on which they disagree is
// a genuine counterexample against one of the three models, rendered
// with its full program listing.

// FuzzCase is one generated shape's verdict.
type FuzzCase struct {
	Name     string
	Family   string
	Threads  int
	Slots    int
	Explored int    // placements explored (both modes)
	States   int    // abstract states across the lattice
	Err      string // first oracle disagreement, "" when all agree
}

// FuzzReport aggregates a fuzz batch.
type FuzzReport struct {
	Seed     int64
	N        int
	Runs     int // sim samples per checked placement (0 = skip oracle 3)
	Cases    []FuzzCase
	Explored int
	States   int
	Bad      int // cases with a disagreement
}

// OK reports whether every case agreed across all three oracles.
func (f *FuzzReport) OK() bool { return f.Bad == 0 }

// FuzzShapes generates n shapes from the seed and runs the
// three-oracle check on each, fanning the cases out over the pool
// (each case is checked sequentially; a nil pool runs inline). The
// report is deterministic in (seed, n, runs, platform).
func FuzzShapes(seed int64, n, runs int, p *platform.Platform, pool *runner.Pool) *FuzzReport {
	rep := &FuzzReport{Seed: seed, N: n, Runs: runs}
	rep.Cases = runner.Map(pool, n, func(i int) FuzzCase {
		return CheckCase(GenOne(seed, i), runs, p, seed)
	})
	for i := range rep.Cases {
		rep.Explored += rep.Cases[i].Explored
		rep.States += rep.Cases[i].States
		if rep.Cases[i].Err != "" {
			rep.Bad++
		}
	}
	return rep
}

// CheckCase runs the three oracles over one generated shape: the
// full placement lattice explored and matched against the clause
// model under both modes, plus — when runs > 0 — sim sampling
// containment on the empty and naive placements.
func CheckCase(gs *GenShape, runs int, p *platform.Platform, seed int64) FuzzCase {
	c := FuzzCase{
		Name:    gs.S.Name,
		Family:  gs.Family,
		Threads: len(gs.S.Threads),
		Slots:   len(gs.S.Slots),
	}
	fail := func(format string, args ...any) {
		if c.Err == "" {
			c.Err = fmt.Sprintf(format, args...) + "\n" + gs.Describe()
		}
	}
	var scr *fastExplorer
	for _, mode := range []sim.Mode{sim.WMM, sim.TSO} {
		naive := Naive(gs.S)
		for pl := Placement(0); pl <= naive; pl++ {
			r, re := exploreReuse(gs.S, pl, mode, DefaultBound, nil, false, scr)
			scr = re
			c.Explored++
			c.States += r.States
			want := absmodel.GenSafe(gs.Clauses, SlotBarriers(gs.S, pl), mode)
			if r.Safe() != want {
				fail("%s%s under %v: explorer safe=%v, formula predicts %v",
					gs.S.Name, pl.Describe(gs.S), mode, r.Safe(), want)
			}
		}
		if runs > 0 {
			for _, pl := range []Placement{0, naive} {
				if err := Agreement(p, gs.S, pl, mode, runs, seed+int64(gs.Index)); err != nil {
					fail("sim containment: %v", err)
				}
			}
		}
	}
	return c
}
