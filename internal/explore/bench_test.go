package explore_test

import (
	"testing"

	"armbar/internal/simbench"
)

// BenchmarkExploreStates is the perf-gate wrapper for the explorer
// throughput benchmark (simbench.ExploreStates): one op is a full
// Minimize of the MP and chan lattices under both memory models, the
// workload `armvet fencevet` and the fuzz gate pay per shape.
func BenchmarkExploreStates(b *testing.B) { simbench.ExploreStates(b) }
