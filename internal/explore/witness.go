package explore

import (
	"fmt"
	"strconv"

	"armbar/internal/isa"
)

// This file is the witness replayer: the PR 9 clone-and-hash DFS kept
// for the one job the packed engine (fast.go) deliberately drops —
// building a human-readable trace to the first forbidden outcome. It
// runs only after the packed search has already proved a placement
// unsafe, and it stops at the first forbidden terminal in DFS order,
// which is exactly the trace the original full search recorded (the
// original also kept only the first). Keeping the two implementations
// semantically twinned is load-bearing: TestFormulaAgreement and the
// fuzz gate exercise the fast engine, TestWitness and PilotCheck
// exercise this one, and both must describe the same machine.

type tstate struct {
	pc    uint8
	level uint8
	buf   []bufEntry
	stale []staleEntry
}

type state struct {
	mem    []uint64
	th     []tstate
	regs   []uint64
	budget int
}

func (st *state) clone() *state {
	ns := &state{
		mem:    append([]uint64(nil), st.mem...),
		th:     make([]tstate, len(st.th)),
		regs:   append([]uint64(nil), st.regs...),
		budget: st.budget,
	}
	for i, t := range st.th {
		ns.th[i] = tstate{
			pc:    t.pc,
			level: t.level,
			buf:   append([]bufEntry(nil), t.buf...),
			stale: append([]staleEntry(nil), t.stale...),
		}
	}
	return ns
}

// key encodes the state for the visited set. The encoding is total:
// two states collide only if they are identical. (The packed engine's
// encoding is injective over the same fields; see pack.go.)
func (st *state) key() string {
	b := make([]byte, 0, 64)
	for _, v := range st.mem {
		b = strconv.AppendUint(b, v, 10)
		b = append(b, ',')
	}
	for _, t := range st.th {
		b = append(b, '|', t.pc, t.level, ';')
		for _, e := range t.buf {
			b = append(b, e.addr)
			b = strconv.AppendUint(b, e.val, 10)
			b = append(b, e.level, boolByte(e.rel), ',')
		}
		b = append(b, ';')
		for _, e := range t.stale {
			b = append(b, e.addr)
			b = strconv.AppendUint(b, e.val, 10)
			b = append(b, boolByte(e.clearable), ',')
		}
	}
	b = append(b, '#')
	for _, v := range st.regs {
		b = strconv.AppendUint(b, v, 10)
		b = append(b, ',')
	}
	b = strconv.AppendInt(b, int64(st.budget), 10)
	return string(b)
}

// markClearable flags every current stale entry of thread t: a load of
// t just completed, so the entries now predate the thread's last load
// and a subsequent load-side barrier may discard them.
func (t *tstate) markClearable() {
	for i := range t.stale {
		t.stale[i].clearable = true
	}
}

// dropStale removes stale entries: all of them, or only clearable
// ones.
func (t *tstate) dropStale(all bool) {
	kept := t.stale[:0]
	for _, e := range t.stale {
		if !all && !e.clearable {
			kept = append(kept, e)
		}
	}
	t.stale = kept
	if len(t.stale) == 0 {
		t.stale = nil
	}
}

// dropStaleAddr removes entries for one address (the thread committed
// to it and now owns the fresh copy).
func (t *tstate) dropStaleAddr(addr uint8) {
	kept := t.stale[:0]
	for _, e := range t.stale {
		if e.addr != addr {
			kept = append(kept, e)
		}
	}
	t.stale = kept
	if len(t.stale) == 0 {
		t.stale = nil
	}
}

// addStale records that addr held old before a remote commit. An
// existing (addr, old) entry is strengthened back to non-clearable:
// the fresh invalidation postdates the holder's last load again.
func (t *tstate) addStale(addr uint8, old uint64) {
	for i := range t.stale {
		if t.stale[i].addr == addr && t.stale[i].val == old {
			t.stale[i].clearable = false
			return
		}
	}
	t.stale = append(t.stale, staleEntry{addr: addr, val: old})
}

// witExplorer replays the DFS for one (program, mode, bound) until
// the first forbidden terminal.
type witExplorer struct {
	shape   *Shape
	ops     [][]SOp
	tso     bool
	visited map[string]struct{}
	witness []string
}

// findWitness returns the first forbidden trace of the program in DFS
// order, nil when the placement is safe.
func findWitness(s *Shape, ops [][]SOp, tso bool, bound int) []string {
	x := &witExplorer{
		shape:   s,
		ops:     ops,
		tso:     tso,
		visited: make(map[string]struct{}),
	}
	init := &state{
		mem:    s.initMem(),
		th:     make([]tstate, len(s.Threads)),
		regs:   make([]uint64, len(s.Regs)),
		budget: bound,
	}
	x.run(init, nil)
	return x.witness
}

func (x *witExplorer) lineName(addr uint8) string {
	if int(addr) < len(x.shape.LineNames) {
		return x.shape.LineNames[addr]
	}
	return fmt.Sprintf("line%d", addr)
}

func (x *witExplorer) run(st *state, path []string) {
	if x.witness != nil {
		return
	}
	k := st.key()
	if _, ok := x.visited[k]; ok {
		return
	}
	x.visited[k] = struct{}{}

	progressed := false
	for u := range st.th {
		if int(st.th[u].pc) < len(x.ops[u]) {
			progressed = x.issue(st, u, path) || progressed
		}
	}
	for u := range st.th {
		progressed = x.commits(st, u, path) || progressed
	}
	if progressed {
		return
	}
	// Terminal: all threads done, all buffers drained.
	if x.shape.Forbidden(st.regs, st.mem) && x.witness == nil {
		o := x.shape.Outcome(st.regs, st.mem)
		x.witness = append(append([]string(nil), path...), "outcome "+string(o))
	}
}

// step clones st, applies f, and recurses with the step description
// appended to the path.
func (x *witExplorer) step(st *state, path []string, desc string, f func(*state)) {
	if x.witness != nil {
		return
	}
	ns := st.clone()
	f(ns)
	x.run(ns, append(path, desc))
}

// issue generates the successors of thread u's next op. It returns
// false when the op cannot issue yet (a drain barrier or RMW waiting
// on a non-empty buffer).
func (x *witExplorer) issue(st *state, u int, path []string) bool {
	op := x.ops[u][st.th[u].pc]
	t := &st.th[u]
	switch op.Code {
	case SLoad, SLoadAcq:
		x.loads(st, u, op, path)
		return true

	case SStore:
		desc := fmt.Sprintf("T%d: store %s=%d (buffered)", u, x.lineName(uint8(op.Addr)), op.Val)
		x.step(st, path, desc, func(ns *state) {
			nt := &ns.th[u]
			nt.pc++
			nt.buf = append(nt.buf, bufEntry{addr: uint8(op.Addr), val: op.Val, level: nt.level})
		})
		return true

	case SBarrier:
		return x.barrier(st, u, op, path)

	case SSwap:
		if len(t.buf) != 0 {
			return false // drains the buffer first
		}
		old := st.mem[op.Addr]
		desc := fmt.Sprintf("T%d: swap %s=%d (read %d)", u, x.lineName(uint8(op.Addr)), op.Val, old)
		x.step(st, path, desc, func(ns *state) {
			nt := &ns.th[u]
			nt.pc++
			ns.mem[op.Addr] = op.Val
			if op.Obs >= 0 {
				ns.regs[op.Obs] = old
			}
			nt.dropStale(true) // acquire half: syncPoint = now
			if old != op.Val {
				for w := range ns.th {
					if w != u && !x.tso {
						ns.th[w].addStale(uint8(op.Addr), old)
					}
				}
			}
		})
		return true
	}
	panic("explore: unknown op code")
}

// loads generates the read successors of a load: mandatory forwarding
// from the own buffer, otherwise the fresh committed value plus — for
// observed loads under WMM — every distinct stale view.
func (x *witExplorer) loads(st *state, u int, op SOp, path []string) {
	t := &st.th[u]
	addr := uint8(op.Addr)
	acq := op.Code == SLoadAcq
	finish := func(ns *state, val uint64) {
		nt := &ns.th[u]
		nt.pc++
		nt.markClearable()
		if acq {
			nt.dropStale(true)
		}
		if op.Obs >= 0 {
			ns.regs[op.Obs] = val
		}
	}
	// Store-buffer forwarding is mandatory when the buffer holds the
	// line: read the newest pending value.
	for k := len(t.buf) - 1; k >= 0; k-- {
		if t.buf[k].addr == addr {
			val := t.buf[k].val
			desc := fmt.Sprintf("T%d: load %s = %d (forwarded)", u, x.lineName(addr), val)
			x.step(st, path, desc, func(ns *state) { finish(ns, val) })
			return
		}
	}
	fresh := st.mem[op.Addr]
	desc := fmt.Sprintf("T%d: load %s = %d", u, x.lineName(addr), fresh)
	x.step(st, path, desc, func(ns *state) { finish(ns, fresh) })
	if op.Obs < 0 || st.budget == 0 {
		// Unobserved loads need no stale branch: the value is
		// discarded, and the state effects are identical.
		return
	}
	for i := range t.stale {
		e := t.stale[i]
		if e.addr != addr || e.val == fresh {
			continue
		}
		desc := fmt.Sprintf("T%d: load %s = %d (stale)", u, x.lineName(addr), e.val)
		x.step(st, path, desc, func(ns *state) {
			ns.budget--
			finish(ns, e.val)
		})
	}
}

// barrier applies a standalone barrier's ordering effect. Store
// fences bump the drain level; full and DSB barriers wait for the
// buffer to drain and then discard every stale view; load-side
// barriers discard the views that predate the last load.
func (x *witExplorer) barrier(st *state, u int, op SOp, path []string) bool {
	t := &st.th[u]
	switch op.Bar {
	case isa.DMBSt:
		x.step(st, path, fmt.Sprintf("T%d: %v", u, op.Bar), func(ns *state) {
			nt := &ns.th[u]
			nt.pc++
			nt.level++
		})
	case isa.DMBFull, isa.DSBFull, isa.DSBSt, isa.DSBLd:
		if len(t.buf) != 0 {
			return false // blocks until the buffer drains
		}
		x.step(st, path, fmt.Sprintf("T%d: %v", u, op.Bar), func(ns *state) {
			nt := &ns.th[u]
			nt.pc++
			nt.dropStale(true)
		})
	case isa.DMBLd, isa.AddrDep, isa.CtrlISB:
		x.step(st, path, fmt.Sprintf("T%d: %v", u, op.Bar), func(ns *state) {
			nt := &ns.th[u]
			nt.pc++
			nt.dropStale(false)
		})
	case isa.DataDep, isa.CtrlDep, isa.ISB:
		x.step(st, path, fmt.Sprintf("T%d: %v", u, op.Bar), func(ns *state) {
			ns.th[u].pc++
		})
	default:
		panic(fmt.Sprintf("explore: unsupported slot barrier %v", op.Bar))
	}
	return true
}

// eligibleBuf reports whether buffer entry k may commit. Under TSO
// only the head may drain; under WMM an entry may drain early unless
// an older entry has a lower fence level, writes the same line, or
// the entry is a release that is not yet oldest.
func eligibleBuf(buf []bufEntry, k int, tso bool) bool {
	if tso {
		return k == 0
	}
	e := buf[k]
	if e.rel && k != 0 {
		return false
	}
	for j := 0; j < k; j++ {
		if buf[j].level < e.level || buf[j].addr == e.addr {
			return false
		}
	}
	return true
}

// commits generates one successor per eligible store-buffer entry of
// thread u (see eligibleBuf).
func (x *witExplorer) commits(st *state, u int, path []string) bool {
	t := &st.th[u]
	any := false
	for k := range t.buf {
		e := t.buf[k]
		if !eligibleBuf(t.buf, k, x.tso) {
			continue
		}
		if k > 0 && st.budget == 0 {
			continue
		}
		any = true
		desc := fmt.Sprintf("T%d: commit %s=%d", u, x.lineName(e.addr), e.val)
		if k > 0 {
			desc += " (out of order)"
		}
		k := k
		x.step(st, path, desc, func(ns *state) {
			nt := &ns.th[u]
			old := ns.mem[e.addr]
			ns.mem[e.addr] = e.val
			nt.buf = append(nt.buf[:k], nt.buf[k+1:]...)
			if len(nt.buf) == 0 {
				nt.buf = nil
			}
			if k > 0 {
				ns.budget--
			}
			nt.dropStaleAddr(e.addr)
			if old != e.val && !x.tso {
				for w := range ns.th {
					if w != u {
						ns.th[w].addStale(e.addr, old)
					}
				}
			}
		})
	}
	return any
}
