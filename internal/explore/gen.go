package explore

import (
	"fmt"
	"math/rand"
	"strings"

	"armbar/internal/absmodel"
	"armbar/internal/isa"
	"armbar/internal/topo"
)

// This file is the litmus-shape fuzzer's generator: seeded random
// shapes built from the classic hazard skeletons (MP, SB, S, R, 2+2W,
// LB, WRC, CoRR, CoWW, and two RMW variants) with everything around
// the hazard randomized — the values written, the barrier *kind* in
// every slot (drawn from the full DMB/DSB/dependency grammar, not the
// shape's canonical choice), noise operations woven through the
// threads, extra noise lines, and optional noise threads. Each
// generated shape carries its ordering obligations as explicit
// absmodel clauses, so three independent oracles can be run against
// it: the explorer's reachability verdict, the closed-form clause
// prediction, and sim sampling containment (see fuzz.go).
//
// Noise is verdict-neutral by construction, which is what lets the
// clause model stay exact: noise loads are unobserved (the explorer
// gives them no stale branch and they only strengthen later load-side
// barriers), and noise stores target dedicated noise lines that no
// predicate and no observed load ever reads — they occupy store
// buffers and consume drain time but cannot block an eligible hazard
// commit (same drain level, different line) or leak into an outcome.

// GenShape is one generated litmus shape plus its closed-form
// obligations.
type GenShape struct {
	Index   int
	Family  string
	S       *Shape
	Clauses []absmodel.FenceClause
}

// genBars is the slot-barrier grammar: every ordering approach the
// explorer's operational semantics model as a standalone instruction.
// (LDAR/STLR/LDAPR are operand barriers, not slot fillers.)
var genBars = []isa.Barrier{
	isa.DMBFull, isa.DMBSt, isa.DMBLd,
	isa.DSBFull, isa.DSBSt, isa.DSBLd,
	isa.ISB, isa.DataDep, isa.AddrDep, isa.CtrlDep, isa.CtrlISB,
}

// genCores is the core pool for generated threads: two per NUMA node
// so cross-node communication is exercised.
var genCores = []topo.CoreID{0, 4, 32, 36}

// genb accumulates one generated shape.
type genb struct {
	r       *rand.Rand
	lines   int // hazard lines; noise lines follow
	noise   int
	nleft   int // remaining noise-op budget for the whole shape
	threads [][]SOp
	slots   []Slot
	regs    []string
	clauses []absmodel.FenceClause
}

// newGenb caps the noise-op budget per shape: noise multiplies the
// state space (every buffered noise store is one more interleaving
// axis), and an unbounded geometric tail makes a handful of corpus
// entries dominate the whole batch's wall-clock.
func newGenb(r *rand.Rand, hazardLines int) *genb {
	return &genb{r: r, lines: hazardLines, noise: r.Intn(3), nleft: 2 + r.Intn(3)}
}

// vals returns k distinct nonzero values.
func (g *genb) vals(k int) []uint64 {
	out := make([]uint64, 0, k)
	for len(out) < k {
		v := uint64(1 + g.r.Intn(9))
		dup := false
		for _, o := range out {
			dup = dup || o == v
		}
		if !dup {
			out = append(out, v)
		}
	}
	return out
}

// reg allocates an observed register.
func (g *genb) reg(name string) int {
	g.regs = append(g.regs, name)
	return len(g.regs) - 1
}

// thread opens a new thread and returns its builder.
func (g *genb) thread() *tb {
	g.threads = append(g.threads, nil)
	return &tb{g: g, u: len(g.threads) - 1}
}

type tb struct {
	g *genb
	u int
}

// noiseOps emits a geometric burst of verdict-neutral ops: unobserved
// loads of any line, stores to noise lines.
func (t *tb) noiseOps() {
	g := t.g
	for g.nleft > 0 && g.r.Intn(3) == 0 {
		g.nleft--
		if g.noise > 0 && g.r.Intn(2) == 0 {
			line := g.lines + g.r.Intn(g.noise)
			g.threads[t.u] = append(g.threads[t.u], store(line, uint64(1+g.r.Intn(3))))
		} else {
			g.threads[t.u] = append(g.threads[t.u], warm(g.r.Intn(g.lines+g.noise)))
		}
	}
}

// op appends a hazard op, with noise before it.
func (t *tb) op(o SOp) {
	t.noiseOps()
	t.g.threads[t.u] = append(t.g.threads[t.u], o)
}

// slot places a barrier slot of a random kind at the current
// position and returns its index.
func (t *tb) slot(label string) int {
	g := t.g
	bar := genBars[g.r.Intn(len(genBars))]
	g.slots = append(g.slots, Slot{
		Thread: t.u,
		At:     len(g.threads[t.u]),
		Bar:    bar,
		Label:  label,
	})
	return len(g.slots) - 1
}

// need records an ordering obligation on a slot.
func (g *genb) need(slot int, from, to isa.Access) {
	g.clauses = append(g.clauses, absmodel.FenceClause{Slot: slot, From: from, To: to})
}

// finish seals the shape: optional noise thread, trailing noise,
// line names, cores.
func (g *genb) finish(idx int, family string, forbidden func(r, f []uint64) bool, finals []int, finalTags []string) *GenShape {
	for u := range g.threads {
		(&tb{g: g, u: u}).noiseOps()
	}
	if len(g.threads) < len(genCores) && g.r.Intn(3) == 0 {
		t := g.thread()
		for n := 1 + g.r.Intn(3); n > 0; n-- {
			t.noiseOps()
			g.threads[t.u] = append(g.threads[t.u], warm(g.r.Intn(g.lines+g.noise)))
		}
	}
	total := g.lines + g.noise
	names := make([]string, total)
	for i := range names {
		if i < g.lines {
			names[i] = fmt.Sprintf("x%d", i)
		} else {
			names[i] = fmt.Sprintf("n%d", i-g.lines)
		}
	}
	s := &Shape{
		Name:      fmt.Sprintf("fz%d-%s", idx, family),
		Doc:       fmt.Sprintf("generated %s variant (seeded fuzz corpus)", family),
		Cores:     genCores[:len(g.threads)],
		Lines:     total,
		LineNames: names,
		Threads:   g.threads,
		Slots:     g.slots,
		Regs:      g.regs,
		Finals:    finals,
		FinalTags: finalTags,
		Forbidden: forbidden,
	}
	return &GenShape{Index: idx, Family: family, S: s, Clauses: g.clauses}
}

// genFamilies builds one randomized instance of each hazard skeleton.
var genFamilies = []struct {
	name  string
	build func(g *genb, idx int) *GenShape
}{
	{"MP", genMP}, {"SB", genSB}, {"S", genS}, {"R", genR},
	{"2+2W", gen22W}, {"LB", genLB}, {"WRC", genWRC},
	{"CoRR", genCoRR}, {"CoWW", genCoWW},
	{"SB+RMW", genSBRMW}, {"MP+RMW", genMPRMW},
}

// GenOne deterministically generates corpus shape i for the seed: the
// family rotates through the skeletons and every random choice comes
// from a per-index stream, so any shape can be regenerated in
// isolation (the corpus is byte-for-byte reproducible from the seed).
func GenOne(seed int64, i int) *GenShape {
	r := rand.New(rand.NewSource(seed ^ int64(i)*0x5851f42d4c957f2d))
	f := genFamilies[i%len(genFamilies)]
	return f.build(newGenb(r, famLines(f.name)), i)
}

func famLines(family string) int {
	switch family {
	case "CoRR", "CoWW":
		return 1
	default:
		return 2
	}
}

// Families returns the skeleton names in corpus rotation order:
// GenOne(seed, i) instantiates Families()[i % len(Families())].
func Families() []string {
	out := make([]string, len(genFamilies))
	for i, f := range genFamilies {
		out[i] = f.name
	}
	return out
}

// Gen generates the n-shape corpus for the seed.
func Gen(seed int64, n int) []*GenShape {
	out := make([]*GenShape, n)
	for i := range out {
		out[i] = GenOne(seed, i)
	}
	return out
}

// genMP: store data then flag; load flag then data. Forbidden: flag
// observed, data stale.
func genMP(g *genb, idx int) *GenShape {
	v := g.vals(2)
	t0 := g.thread()
	t0.op(store(0, v[0]))
	push := t0.slot("push")
	t0.op(store(1, v[1]))
	t1 := g.thread()
	r0 := g.reg("flag")
	t1.op(load(1, r0))
	pull := t1.slot("pull")
	r1 := g.reg("data")
	t1.op(load(0, r1))
	g.need(push, isa.Store, isa.Store)
	g.need(pull, isa.Load, isa.Load)
	return g.finish(idx, "MP", func(r, _ []uint64) bool {
		return r[r0] == v[1] && r[r1] != v[0]
	}, nil, nil)
}

// genSB: both threads store their own line then load the other's.
// Forbidden: both loads read the initial zero.
func genSB(g *genb, idx int) *GenShape {
	v := g.vals(2)
	t0 := g.thread()
	t0.op(store(0, v[0]))
	s0 := t0.slot("t0")
	r0 := g.reg("r0")
	t0.op(load(1, r0))
	t1 := g.thread()
	t1.op(store(1, v[1]))
	s1 := t1.slot("t1")
	r1 := g.reg("r1")
	t1.op(load(0, r1))
	g.need(s0, isa.Store, isa.Load)
	g.need(s1, isa.Store, isa.Load)
	return g.finish(idx, "SB", func(r, _ []uint64) bool {
		return r[r0] == 0 && r[r1] == 0
	}, nil, nil)
}

// genS: T0 stores x then y; T1 loads y and stores x. Forbidden: y
// observed yet T1's x loses to T0's.
func genS(g *genb, idx int) *GenShape {
	v := g.vals(3)
	t0 := g.thread()
	t0.op(store(0, v[0]))
	s0 := t0.slot("t0")
	t0.op(store(1, v[1]))
	t1 := g.thread()
	r0 := g.reg("r")
	t1.op(load(1, r0))
	t1.slot("t1") // load->store is free; any barrier kind is redundant
	t1.op(store(0, v[2]))
	g.need(s0, isa.Store, isa.Store)
	return g.finish(idx, "S", func(r, f []uint64) bool {
		return r[r0] == v[1] && f[0] == v[0]
	}, []int{0}, []string{"x0"})
}

// genR: T0 stores x then y; T1 stores y then loads x. Forbidden: T1's
// y wins coherence yet its ordered load misses x.
func genR(g *genb, idx int) *GenShape {
	v := g.vals(3)
	t0 := g.thread()
	t0.op(store(0, v[0]))
	s0 := t0.slot("t0")
	t0.op(store(1, v[1]))
	t1 := g.thread()
	t1.op(store(1, v[2]))
	s1 := t1.slot("t1")
	r0 := g.reg("r")
	t1.op(load(0, r0))
	g.need(s0, isa.Store, isa.Store)
	g.need(s1, isa.Store, isa.Load)
	return g.finish(idx, "R", func(r, f []uint64) bool {
		return r[r0] == 0 && f[1] == v[2]
	}, []int{1}, []string{"x1"})
}

// gen22W: both threads store both lines in opposite orders.
// Forbidden: both lines finish with their first writer's value.
func gen22W(g *genb, idx int) *GenShape {
	v := g.vals(4)
	t0 := g.thread()
	t0.op(store(0, v[0]))
	s0 := t0.slot("t0")
	t0.op(store(1, v[1]))
	t1 := g.thread()
	t1.op(store(1, v[2]))
	s1 := t1.slot("t1")
	t1.op(store(0, v[3]))
	g.need(s0, isa.Store, isa.Store)
	g.need(s1, isa.Store, isa.Store)
	return g.finish(idx, "2+2W", func(_, f []uint64) bool {
		return f[0] == v[0] && f[1] == v[2]
	}, []int{0, 1}, []string{"x0", "x1"})
}

// genLB: each thread loads the other's line then stores its own.
// Forbidden under in-order issue however the slots are filled.
func genLB(g *genb, idx int) *GenShape {
	v := g.vals(2)
	t0 := g.thread()
	r0 := g.reg("r0")
	t0.op(load(1, r0))
	t0.slot("t0")
	t0.op(store(0, v[0]))
	t1 := g.thread()
	r1 := g.reg("r1")
	t1.op(load(0, r1))
	t1.slot("t1")
	t1.op(store(1, v[1]))
	return g.finish(idx, "LB", func(r, _ []uint64) bool {
		return r[r0] == v[1] && r[r1] == v[0]
	}, nil, nil)
}

// genWRC: write-to-read causality across three threads. Forbidden:
// the causal chain observed, then stale x.
func genWRC(g *genb, idx int) *GenShape {
	v := g.vals(2)
	t0 := g.thread()
	t0.op(store(0, v[0]))
	t1 := g.thread()
	r0 := g.reg("t1x")
	t1.op(load(0, r0))
	t1.slot("t1") // load->store is free
	t1.op(store(1, v[1]))
	t2 := g.thread()
	r1 := g.reg("t2y")
	t2.op(load(1, r1))
	s1 := t2.slot("t2")
	r2 := g.reg("t2x")
	t2.op(load(0, r2))
	g.need(s1, isa.Load, isa.Load)
	return g.finish(idx, "WRC", func(r, _ []uint64) bool {
		return r[r0] == v[0] && r[r1] == v[1] && r[r2] == 0
	}, nil, nil)
}

// genCoRR: same-line loads must not observe new-then-old.
func genCoRR(g *genb, idx int) *GenShape {
	v := g.vals(1)
	t0 := g.thread()
	t0.op(store(0, v[0]))
	t1 := g.thread()
	r0 := g.reg("r1")
	t1.op(load(0, r0))
	s0 := t1.slot("dep")
	r1 := g.reg("r2")
	t1.op(load(0, r1))
	g.need(s0, isa.Load, isa.Load)
	return g.finish(idx, "CoRR", func(r, _ []uint64) bool {
		return r[r0] == v[0] && r[r1] == 0
	}, nil, nil)
}

// genCoWW: same-line stores drain in order with no barrier at all.
func genCoWW(g *genb, idx int) *GenShape {
	v := g.vals(2)
	t0 := g.thread()
	t0.op(store(0, v[0]))
	t0.slot("t0")
	t0.op(store(0, v[1]))
	t1 := g.thread()
	t1.op(warm(0))
	return g.finish(idx, "CoWW", func(_, f []uint64) bool {
		return f[0] != v[1]
	}, []int{0}, []string{"x0"})
}

// genSBRMW: SB with atomic swaps — the swap drains the buffer and
// synchronizes stale views, so no clause survives.
func genSBRMW(g *genb, idx int) *GenShape {
	v := g.vals(2)
	t0 := g.thread()
	t0.op(swap(0, v[0], -1))
	t0.slot("t0")
	r0 := g.reg("r0")
	t0.op(load(1, r0))
	t1 := g.thread()
	t1.op(swap(1, v[1], -1))
	t1.slot("t1")
	r1 := g.reg("r1")
	t1.op(load(0, r1))
	return g.finish(idx, "SB+RMW", func(r, _ []uint64) bool {
		return r[r0] == 0 && r[r1] == 0
	}, nil, nil)
}

// genMPRMW: MP whose flag publish is an atomic swap — the swap's
// buffer drain supplies the store-store edge for free, leaving only
// the consumer-side clause.
func genMPRMW(g *genb, idx int) *GenShape {
	v := g.vals(2)
	t0 := g.thread()
	t0.op(store(0, v[0]))
	t0.op(swap(1, v[1], -1))
	t1 := g.thread()
	r0 := g.reg("flag")
	t1.op(load(1, r0))
	pull := t1.slot("pull")
	r1 := g.reg("data")
	t1.op(load(0, r1))
	g.need(pull, isa.Load, isa.Load)
	return g.finish(idx, "MP+RMW", func(r, _ []uint64) bool {
		return r[r0] == v[1] && r[r1] != v[0]
	}, nil, nil)
}

// Describe renders the generated shape as a stable textual form —
// this is what the corpus-reproducibility gate compares byte for
// byte, and what a counterexample report prints.
func (gs *GenShape) Describe() string {
	var b strings.Builder
	s := gs.S
	fmt.Fprintf(&b, "%s lines=%d", s.Name, s.Lines)
	if len(s.Init) > 0 {
		fmt.Fprintf(&b, " init=%v", s.Init)
	}
	b.WriteByte('\n')
	for u, tops := range s.Threads {
		fmt.Fprintf(&b, "  T%d:", u)
		for at, op := range tops {
			for si, sl := range s.Slots {
				if sl.Thread == u && sl.At == at {
					fmt.Fprintf(&b, " [%d:%v]", si, sl.Bar)
				}
			}
			b.WriteByte(' ')
			b.WriteString(describeOp(s, op))
		}
		for si, sl := range s.Slots {
			if sl.Thread == u && sl.At == len(tops) {
				fmt.Fprintf(&b, " [%d:%v]", si, sl.Bar)
			}
		}
		b.WriteByte('\n')
	}
	for _, c := range gs.Clauses {
		fmt.Fprintf(&b, "  need slot%d %v->%v\n", c.Slot, c.From, c.To)
	}
	return b.String()
}

func describeOp(s *Shape, op SOp) string {
	name := fmt.Sprintf("line%d", op.Addr)
	if op.Addr < len(s.LineNames) {
		name = s.LineNames[op.Addr]
	}
	switch op.Code {
	case SLoad, SLoadAcq:
		if op.Obs < 0 {
			return fmt.Sprintf("ld %s (noise)", name)
		}
		return fmt.Sprintf("ld %s->r%d", name, op.Obs)
	case SStore:
		return fmt.Sprintf("st %s=%d", name, op.Val)
	case SSwap:
		return fmt.Sprintf("swap %s=%d", name, op.Val)
	case SBarrier:
		return fmt.Sprintf("bar %v", op.Bar)
	}
	return "?"
}
