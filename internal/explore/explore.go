package explore

import (
	"sort"

	"armbar/internal/litmus"
	"armbar/internal/runner"
	"armbar/internal/sim"
)

// DefaultBound is the reorder budget the gates run at. Each
// out-of-order store commit and each stale load view consumes one
// unit; the classic suite's reachable sets are saturated well below
// this (TestBoundSaturation pins that raising it changes nothing).
const DefaultBound = 4

// Result is the exact reachable-outcome set of one shape under one
// placement.
type Result struct {
	Shape     string
	Mode      sim.Mode
	Placement Placement
	Bound     int
	Outcomes  []litmus.Outcome // sorted, deduplicated
	Forbidden []litmus.Outcome // sorted subset matching shape.Forbidden
	States    int              // distinct abstract states visited
	Witness   []string         // first forbidden trace, nil when safe
}

// Safe reports whether no forbidden outcome is reachable.
func (r *Result) Safe() bool { return len(r.Forbidden) == 0 }

// Reaches reports whether the outcome is in the reachable set.
func (r *Result) Reaches(o litmus.Outcome) bool {
	for _, x := range r.Outcomes {
		if x == o {
			return true
		}
	}
	return false
}

// bufEntry is one pending store: level counts the store fences issued
// before it (an entry may drain past same-level neighbors but never
// past a lower level), rel marks an STLR-like release that must wait
// until it is the oldest entry.
type bufEntry struct {
	addr  uint8
	val   uint64
	level uint8
	rel   bool
}

// staleEntry is one value a thread may still observe for addr after a
// remote commit overwrote it — the union of the simulator's
// invalidated-copy window and its early-binding race on in-flight
// misses. clearable is set once a subsequent load of this thread
// completes (the entry then predates the thread's last load, so a
// load-side barrier discards it).
type staleEntry struct {
	addr      uint8
	val       uint64
	clearable bool
}

func boolByte(v bool) byte {
	if v {
		return 1
	}
	return 0
}

// Explore enumerates every interleaving of the shape under the
// placement, up to the reorder bound.
func Explore(s *Shape, pl Placement, mode sim.Mode, bound int) *Result {
	return exploreRun(s, pl, mode, bound, nil, true)
}

// ExplorePar is Explore with the search fanned out over the pool:
// the packed engine expands a frontier sequentially, shards the
// unexpanded subtrees over the workers, and merges the per-worker
// visited tables and outcome sets at quiescence. The reachable set is
// the split-independent union of the subtree reachable sets, so the
// Result — outcomes, forbidden set, state count, witness — is
// bit-identical to the sequential explorer at every pool width. A nil
// pool (or a single worker) runs sequentially.
func ExplorePar(s *Shape, pl Placement, mode sim.Mode, bound int, pool *runner.Pool) *Result {
	return exploreRun(s, pl, mode, bound, pool, true)
}

// exploreRun is the shared engine driver. The witness replay is
// skipped when the caller only needs the verdict (the Minimize
// lattice walk), keeping unsafe lattice points on the packed path.
func exploreRun(s *Shape, pl Placement, mode sim.Mode, bound int, pool *runner.Pool, wantWitness bool) *Result {
	r, _ := exploreReuse(s, pl, mode, bound, pool, wantWitness, nil)
	return r
}

// exploreReuse is exploreRun with engine recycling: re (possibly nil)
// is a retired engine whose slabs are salvaged, and the engine used
// here is returned for the caller's next placement.
func exploreReuse(s *Shape, pl Placement, mode sim.Mode, bound int, pool *runner.Pool, wantWitness bool, re *fastExplorer) (*Result, *fastExplorer) {
	tso := mode == sim.TSO
	x := newFastExplorer(s, pl, tso, bound, re)
	x.pushInit()
	if pool == nil || pool.Workers() <= 1 {
		x.run()
	} else {
		x.runSharded(pool)
	}
	x.noteMetrics()

	res := &Result{
		Shape:     s.Name,
		Mode:      mode,
		Placement: pl,
		Bound:     bound,
		States:    x.table.n,
	}
	for o := range x.outcomes {
		res.Outcomes = append(res.Outcomes, o)
	}
	for o := range x.forbidden {
		res.Forbidden = append(res.Forbidden, o)
	}
	sortOutcomes(res.Outcomes)
	sortOutcomes(res.Forbidden)
	if x.sawForbidden && wantWitness {
		res.Witness = findWitness(s, x.ops, tso, bound)
	}
	return res, x
}

func sortOutcomes(os []litmus.Outcome) {
	sort.Slice(os, func(i, j int) bool { return os[i] < os[j] })
}
