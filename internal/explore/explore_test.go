package explore

import (
	"reflect"
	"testing"

	"armbar/internal/sim"
)

// expectedMinimal pins the minimal safe placements of every shape
// under both modes — the hand-derived ground truth the explorer must
// reproduce (and absmodel's closed-form requirements agree with, see
// agreement_test.go).
var expectedMinimal = map[sim.Mode]map[string][]Placement{
	sim.WMM: {
		"MP":     {0b11},
		"SB":     {0b11},
		"S":      {0b01},
		"R":      {0b11},
		"2+2W":   {0b11},
		"LB":     {0b00},
		"WRC":    {0b10},
		"CoRR":   {0b1},
		"CoWW":   {0},
		"SB+RMW": {0},
		"chan":   {0b110},
		"pilot":  {0},
	},
	sim.TSO: {
		"MP":     {0b00},
		"SB":     {0b11},
		"S":      {0b00},
		"R":      {0b10},
		"2+2W":   {0b00},
		"LB":     {0b00},
		"WRC":    {0b00},
		"CoRR":   {0b0},
		"CoWW":   {0},
		"SB+RMW": {0},
		"chan":   {0b000},
		"pilot":  {0},
	},
}

func TestMinimalPlacements(t *testing.T) {
	for _, mode := range []sim.Mode{sim.WMM, sim.TSO} {
		for _, s := range All() {
			rep := Minimize(s, mode, DefaultBound)
			want := expectedMinimal[mode][s.Name]
			if !reflect.DeepEqual(rep.Minimal, want) {
				t.Errorf("%s under %v: minimal %v, want %v", s.Name, mode, rep.Minimal, want)
			}
			if !rep.NaiveSafe {
				t.Errorf("%s under %v: naive placement unsafe", s.Name, mode)
			}
		}
	}
}

// TestBoundSaturation pins that the gate bound saturates the
// reachable sets: raising it changes no outcome set at the empty or
// naive placement of any shape.
func TestBoundSaturation(t *testing.T) {
	for _, mode := range []sim.Mode{sim.WMM, sim.TSO} {
		for _, s := range All() {
			for _, pl := range []Placement{0, Naive(s)} {
				base := Explore(s, pl, mode, DefaultBound)
				wide := Explore(s, pl, mode, DefaultBound+2)
				if !reflect.DeepEqual(base.Outcomes, wide.Outcomes) {
					t.Errorf("%s%s under %v: outcomes grow past bound %d: %v vs %v",
						s.Name, pl.Describe(s), mode, DefaultBound, base.Outcomes, wide.Outcomes)
				}
			}
		}
	}
}

func TestPilotCheck(t *testing.T) {
	for _, mode := range []sim.Mode{sim.WMM, sim.TSO} {
		rep := PilotCheck(mode, DefaultBound)
		if !rep.OK() {
			for _, st := range rep.Steps {
				t.Logf("%-16s safe=%v expect=%v", st.Name, st.Safe, st.ExpectSafe)
			}
			t.Fatalf("pilot check failed under %v", mode)
		}
	}
	// The WMM derivation specifically: dropping the availability DMB
	// is the only safe single removal.
	rep := PilotCheck(sim.WMM, DefaultBound)
	for _, st := range rep.Steps {
		switch st.Name {
		case "chan - avail", "chan naive", "pilot word":
			if !st.Safe {
				t.Errorf("%s: want safe", st.Name)
			}
		case "chan - publish", "chan - consume":
			if st.Safe {
				t.Errorf("%s: want unsafe", st.Name)
			}
			if len(st.Witness) == 0 {
				t.Errorf("%s: unsafe step carries no witness", st.Name)
			}
		}
	}
}

// TestWitness pins that an unsafe verdict carries a replayable trace
// ending in the forbidden outcome.
func TestWitness(t *testing.T) {
	r := Explore(MP(), 0, sim.WMM, DefaultBound)
	if r.Safe() {
		t.Fatal("MP with no barriers must be unsafe under WMM")
	}
	if len(r.Witness) == 0 {
		t.Fatal("no witness")
	}
	last := r.Witness[len(r.Witness)-1]
	if want := "outcome "; len(last) < len(want) || last[:len(want)] != want {
		t.Fatalf("witness does not end in an outcome line: %q", last)
	}
}
