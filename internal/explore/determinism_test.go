package explore

import (
	"reflect"
	"testing"

	"armbar/internal/platform"
	"armbar/internal/sim"
)

// The explorer itself consumes no randomness: verdicts, minimal sets,
// and state counts must be bit-identical across repeated runs. The
// sampling gate must be reproducible at a fixed seed and must reach
// the same verdicts regardless of which seed drives it.

func TestMinimizeDeterminism(t *testing.T) {
	for _, mode := range []sim.Mode{sim.WMM, sim.TSO} {
		for _, s := range All() {
			a := Minimize(s, mode, DefaultBound)
			b := Minimize(s, mode, DefaultBound)
			if !reflect.DeepEqual(a, b) {
				t.Errorf("%s under %v: Minimize not deterministic: %+v vs %+v", s.Name, mode, a, b)
			}
		}
	}
}

func TestSampleReproducible(t *testing.T) {
	if testing.Short() {
		t.Skip("sampling skipped in -short")
	}
	p := platform.Kunpeng916()
	for _, s := range []*Shape{MP(), Chan()} {
		a := Sample(p, s, 0, sim.WMM, 100, 42)
		b := Sample(p, s, 0, sim.WMM, 100, 42)
		if !reflect.DeepEqual(a.Count, b.Count) {
			t.Errorf("%s: histogram not reproducible at seed 42: %v vs %v", s.Name, a.Count, b.Count)
		}
	}
}

// TestSeedIndependentVerdicts runs the full differential gate at two
// unrelated seeds under both engines: whatever the seed, sampling must
// stay inside the explorer's reachable sets and the engines must stay
// in lockstep.
func TestSeedIndependentVerdicts(t *testing.T) {
	if testing.Short() {
		t.Skip("sampling skipped in -short")
	}
	p := platform.Kunpeng916()
	for _, seed := range []int64{42, 7} {
		for _, mode := range []sim.Mode{sim.WMM, sim.TSO} {
			for _, s := range All() {
				for _, pl := range []Placement{0, Naive(s)} {
					if err := Agreement(p, s, pl, mode, 100, seed); err != nil {
						t.Errorf("seed %d: %v", seed, err)
					}
				}
				if err := CompiledParity(p, s, Naive(s), mode, 25, seed); err != nil {
					t.Errorf("seed %d: %v", seed, err)
				}
			}
		}
	}
}
