package explore

import (
	"reflect"
	"testing"

	"armbar/internal/runner"
	"armbar/internal/sim"
)

// The sharded explorer must be bit-identical to the sequential one at
// every pool width: the reachable set is a split-independent union of
// subtree reachable sets, and these tests pin that claim over every
// shape, both modes, and pool widths 1, 2 and 8.

func TestExploreParMatchesSequential(t *testing.T) {
	for _, par := range []int{1, 2, 8} {
		pool := runner.New(par)
		for _, mode := range []sim.Mode{sim.WMM, sim.TSO} {
			for _, s := range All() {
				for _, pl := range []Placement{0, Naive(s)} {
					seq := Explore(s, pl, mode, DefaultBound)
					got := ExplorePar(s, pl, mode, DefaultBound, pool)
					if !reflect.DeepEqual(seq, got) {
						t.Errorf("%s pl=%b %v par=%d: parallel result diverges:\nseq %+v\npar %+v",
							s.Name, pl, mode, par, seq, got)
					}
				}
			}
		}
		pool.Close()
	}
}

func TestMinimizeParMatchesSequential(t *testing.T) {
	for _, par := range []int{1, 2, 8} {
		pool := runner.New(par)
		for _, mode := range []sim.Mode{sim.WMM, sim.TSO} {
			for _, s := range All() {
				seq := Minimize(s, mode, DefaultBound)
				got := MinimizePar(s, mode, DefaultBound, pool)
				if !reflect.DeepEqual(seq, got) {
					t.Errorf("%s %v par=%d: MinimizePar diverges:\nseq %+v\npar %+v",
						s.Name, mode, par, seq, got)
				}
			}
		}
		pool.Close()
	}
}

// TestPackRoundTrip pins the two state representations against each
// other: packing a flat state and unpacking it back must be the
// identity on every occupied field, for every state the MP and Chan
// explorations actually visit. The engine is instrumented by packing
// during the walk; here it suffices to round-trip the frames the
// sharded frontier produces.
func TestPackRoundTrip(t *testing.T) {
	for _, s := range []*Shape{MP(), Chan()} {
		for _, mode := range []sim.Mode{sim.WMM, sim.TSO} {
			x := newFastExplorer(s, Naive(s), mode == sim.TSO, DefaultBound, nil)
			x.pushInit()
			// Expand a few levels so frames carry non-trivial buffers
			// and stale views, then round-trip every frame on the
			// stack.
			for i := 0; i < 64 && len(x.stack) > 0; i++ {
				x.expandOne()
			}
			n := len(x.stack) / x.lay.stride
			ws := make([]uint64, x.lay.words)
			st := make([]byte, x.lay.stride)
			ws2 := make([]uint64, x.lay.words)
			for f := 0; f < n; f++ {
				frame := x.stack[f*x.lay.stride : (f+1)*x.lay.stride]
				x.lay.pack(frame, ws)
				x.lay.unpack(ws, st)
				x.lay.pack(st, ws2)
				if !reflect.DeepEqual(ws, ws2) {
					t.Fatalf("%s %v frame %d: pack/unpack not a round trip: %x vs %x",
						s.Name, mode, f, ws, ws2)
				}
			}
		}
	}
}
