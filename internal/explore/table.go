package explore

// vtable is the explorer's visited set: an open-addressed,
// linear-probed hash table whose slots inline the packed state words
// behind a hash word. Insertion is the only operation and allocates
// nothing outside the doubling grow path, so the steady-state visit
// loop is allocation-free. Occupancy is tracked by a per-slot epoch
// stamp rather than a sentinel so reset between lattice points is an
// epoch bump, not a slab clear — a Minimize walk reuses one grown
// table across every placement. Probe totals and grow counts feed the
// internal/metrics export.
type vtable struct {
	words  int      // packed words per state
	stride int      // slot width in slots[]: 1 hash word + words
	slots  []uint64 // nslots * stride
	epochs []uint16 // slot occupied iff epochs[i] == epoch
	epoch  uint16
	mask   uint64 // nslots - 1
	n      int    // occupied slots
	calls  uint64 // insert calls (hits + misses)
	probes uint64 // total probe steps across insert calls
	grows  int
}

const vtableMinSlots = 256

func newVTable(words int) *vtable {
	t := &vtable{words: words, stride: words + 1, epoch: 1}
	t.slots = make([]uint64, vtableMinSlots*t.stride)
	t.epochs = make([]uint16, vtableMinSlots)
	t.mask = vtableMinSlots - 1
	return t
}

// reset empties the table in O(1), keeping the grown capacity for the
// next exploration.
func (t *vtable) reset() {
	t.n, t.calls, t.probes, t.grows = 0, 0, 0, 0
	t.epoch++
	if t.epoch == 0 { // uint16 wrap: old stamps become ambiguous
		clear(t.epochs)
		t.epoch = 1
	}
}

// insert adds the packed state if absent and reports whether it was
// new. h must be hashWords(ps).
func (t *vtable) insert(ps []uint64, h uint64) bool {
	if uint64(t.n+1)*10 >= (t.mask+1)*7 {
		t.grow()
	}
	t.calls++
	i := h & t.mask
	for p := uint64(1); ; p++ {
		off := int(i) * t.stride
		if t.epochs[i] != t.epoch {
			t.epochs[i] = t.epoch
			t.slots[off] = h
			copy(t.slots[off+1:off+t.stride], ps)
			t.n++
			t.probes += p
			return true
		}
		if t.slots[off] == h && equalWords(t.slots[off+1:off+t.stride], ps) {
			t.probes += p
			return false
		}
		i = (i + 1) & t.mask
	}
}

// grow doubles the table and reinserts every occupied slot using its
// stored hash. Deliberately excluded from allocvet's hot-path list
// (same precedent as addrTimes.grow): it allocates by design and
// amortizes away.
func (t *vtable) grow() {
	old, oldEpochs := t.slots, t.epochs
	nslots := (t.mask + 1) * 2
	t.slots = make([]uint64, nslots*uint64(t.stride))
	t.epochs = make([]uint16, nslots)
	t.mask = nslots - 1
	t.grows++
	for s := range oldEpochs {
		if oldEpochs[s] != t.epoch {
			continue
		}
		off := s * t.stride
		i := old[off] & t.mask
		for {
			if t.epochs[i] != t.epoch {
				t.epochs[i] = t.epoch
				copy(t.slots[int(i)*t.stride:(int(i)+1)*t.stride], old[off:off+t.stride])
				break
			}
			i = (i + 1) & t.mask
		}
	}
}

// each calls fn for every occupied slot with its stored hash and
// packed words — the merge path of the parallel frontier.
func (t *vtable) each(fn func(h uint64, ps []uint64)) {
	for s := range t.epochs {
		if t.epochs[s] == t.epoch {
			off := s * t.stride
			fn(t.slots[off], t.slots[off+1:off+t.stride])
		}
	}
}

// occupancy returns the load factor in [0,1].
func (t *vtable) occupancy() float64 {
	return float64(t.n) / float64(t.mask+1)
}

// meanProbe returns the mean probe length per insert call.
func (t *vtable) meanProbe() float64 {
	if t.calls == 0 {
		return 0
	}
	return float64(t.probes) / float64(t.calls)
}

func equalWords(a, b []uint64) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
