package explore

import (
	"testing"

	"armbar/internal/absmodel"
	"armbar/internal/platform"
	"armbar/internal/sim"
)

// TestFormulaAgreement checks every placement of every shape under
// both modes against absmodel's closed-form fence requirements: the
// operational explorer and the axiomatic formula must give the same
// verdict everywhere on the lattice.
func TestFormulaAgreement(t *testing.T) {
	for _, mode := range []sim.Mode{sim.WMM, sim.TSO} {
		for _, s := range All() {
			if !absmodel.KnownShape(s.Name) {
				t.Errorf("%s: no closed-form fence requirements", s.Name)
				continue
			}
			for pl := Placement(0); pl <= Naive(s); pl++ {
				got := Explore(s, pl, mode, DefaultBound).Safe()
				want := absmodel.FenceSafe(s.Name, SlotBarriers(s, pl), mode)
				if got != want {
					t.Errorf("%s%s under %v: explorer safe=%v, formula safe=%v",
						s.Name, pl.Describe(s), mode, got, want)
				}
			}
		}
	}
}

// TestSimAgreement is the simulator gate: at the empty, naive, and
// every minimal placement of every shape, sampled outcomes must be a
// subset of the explorer's reachable set (which also proves safe
// placements never sample a forbidden outcome).
func TestSimAgreement(t *testing.T) {
	if testing.Short() {
		t.Skip("sampling gate skipped in -short")
	}
	p := platform.Kunpeng916()
	for _, mode := range []sim.Mode{sim.WMM, sim.TSO} {
		for _, s := range All() {
			pls := map[Placement]bool{0: true, Naive(s): true}
			for _, pl := range expectedMinimal[mode][s.Name] {
				pls[pl] = true
			}
			for pl := range pls {
				if err := Agreement(p, s, pl, mode, 200, 42); err != nil {
					t.Error(err)
				}
			}
		}
	}
}

// TestPinnedAnomalies pins that the gate has teeth: at these
// placements the simulator demonstrably samples a forbidden outcome
// under WMM, so the subset check is comparing against non-trivial
// reachable sets, not vacuously passing on clean histograms.
func TestPinnedAnomalies(t *testing.T) {
	if testing.Short() {
		t.Skip("sampling gate skipped in -short")
	}
	p := platform.Kunpeng916()
	cases := []struct {
		shape *Shape
		pl    Placement
	}{
		{MP(), 0},
		{SB(), 0},
		{R(), 0},
		{TwoPlusTwoW(), 0},
		{Chan(), 0},
		{Chan(), 0b001}, // avail only: publish and consume both missing
	}
	for _, c := range cases {
		r := Explore(c.shape, c.pl, sim.WMM, DefaultBound)
		if r.Safe() {
			t.Errorf("%s%s: expected unsafe under WMM", c.shape.Name, c.pl.Describe(c.shape))
			continue
		}
		res := Sample(p, c.shape, c.pl, sim.WMM, 400, 42)
		seen := false
		for _, f := range r.Forbidden {
			if res.Count[f] > 0 {
				seen = true
				break
			}
		}
		if !seen {
			t.Errorf("%s%s: 400 runs sampled no forbidden outcome (explorer reaches %v)",
				c.shape.Name, c.pl.Describe(c.shape), r.Forbidden)
		}
	}
}

// TestCompiledParityShapes runs every shape at its naive placement
// under both engines and requires identical final memory and
// operation counts seed by seed.
func TestCompiledParityShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("sampling gate skipped in -short")
	}
	p := platform.Kunpeng916()
	for _, mode := range []sim.Mode{sim.WMM, sim.TSO} {
		for _, s := range All() {
			if err := CompiledParity(p, s, Naive(s), mode, 50, 42); err != nil {
				t.Error(err)
			}
		}
	}
}
