package explore

import "armbar/internal/runner"

// This file is the frontier-sharding layer: the packed engine's
// worklist is split into independent root-subtree work items executed
// on the internal/runner pool. The discipline that makes the fan-out
// safe is that exploration computes a *set* — the states reachable
// from the initial state — and a union of subtree reachable sets does
// not depend on how the frontier was split. Each worker runs a fully
// private engine (own visited table, own scratch states, own outcome
// set) over its share of frontier roots; at quiescence the per-worker
// tables are merged into the root table (re-using the stored hashes,
// so a merge probe costs the same as an insert) and the outcome sets
// are unioned. Workers may redundantly re-visit states another
// subtree also reaches — that costs wall-clock on overlap-heavy
// lattices, never correctness, and the classic shapes shard with
// little overlap because the frontier states already differ in
// program counters.

// frontierPerWorker sizes the sequential expansion: the root engine
// expands until the worklist holds this many frames per pool worker
// (or the space is exhausted first), so every worker gets several
// independent subtrees to balance uneven subtree sizes.
const frontierPerWorker = 4

// runSharded drains the worklist with subtree work items on the pool.
// The caller has already seeded the worklist via pushInit.
func (x *fastExplorer) runSharded(pool *runner.Pool) {
	target := pool.Workers() * frontierPerWorker
	w := x.lay.stride
	for len(x.stack) > 0 && len(x.stack)/w < target {
		x.expandOne()
	}
	nf := len(x.stack) / w
	if nf == 0 {
		return
	}
	frontier := append([]byte(nil), x.stack...)
	x.stack = x.stack[:0]
	nshards := pool.Workers()
	if nshards > nf {
		nshards = nf
	}
	workers := runner.Map(pool, nshards, func(i int) *fastExplorer {
		wx := newFastExplorer(x.shape, x.pl, x.tso, x.bound, nil)
		// Strided assignment: frontier neighbors are DFS siblings
		// with similar subtree sizes, so striding balances the
		// shards.
		for f := i; f < nf; f += nshards {
			frame := frontier[f*w : (f+1)*w]
			wx.lay.pack(frame, wx.pbuf)
			wx.table.insert(wx.pbuf, hashWords(wx.pbuf))
			wx.stack = append(wx.stack, frame...)
		}
		wx.run()
		return wx
	})
	for _, wx := range workers {
		wx.table.each(func(h uint64, ps []uint64) {
			x.table.insert(ps, h)
		})
		for o := range wx.outcomes {
			x.outcomes[o] = true
		}
		for o := range wx.forbidden {
			x.forbidden[o] = true
		}
		if wx.sawForbidden {
			x.sawForbidden = true
		}
	}
}
