package explore

import (
	"reflect"
	"testing"

	"armbar/internal/platform"
)

// TestFuzzThreeOracles is the in-tree slice of the fuzz gate: a
// fixed-seed batch where every generated shape must carry identical
// verdicts from the explorer, the closed-form clause model, and sim
// sampling containment. `make fencecheck` runs the full >=200-shape
// batch through armvet fencevet -fuzz; this keeps a representative
// sample in `go test`.
func TestFuzzThreeOracles(t *testing.T) {
	n := 66 // six instances of each family
	if testing.Short() {
		n = 22
	}
	rep := FuzzShapes(42, n, 4, platform.Kunpeng916(), nil)
	for _, c := range rep.Cases {
		if c.Err != "" {
			t.Errorf("%s: %s", c.Name, c.Err)
		}
	}
	if rep.Explored == 0 || rep.States == 0 {
		t.Fatalf("fuzz batch explored nothing: %+v", rep)
	}
}

// TestFuzzCorpusReproducible pins the corpus as a pure function of
// the seed: regenerating any shape yields a byte-identical program
// listing, and different seeds actually vary the corpus.
func TestFuzzCorpusReproducible(t *testing.T) {
	for _, seed := range []int64{42, 7} {
		a, b := Gen(seed, 40), Gen(seed, 40)
		for i := range a {
			da, db := a[i].Describe(), b[i].Describe()
			if da != db {
				t.Fatalf("seed %d shape %d not reproducible:\n%s\nvs\n%s", seed, i, da, db)
			}
			if !reflect.DeepEqual(a[i].Clauses, b[i].Clauses) {
				t.Fatalf("seed %d shape %d clauses not reproducible", seed, i)
			}
		}
	}
	if Gen(42, 12)[11].Describe() == Gen(7, 12)[11].Describe() {
		t.Error("seeds 42 and 7 generated an identical shape 11; generator ignores the seed?")
	}
}

// TestFuzzReportDeterministic pins the whole report — per-case
// verdicts, state counts, aggregate totals — as deterministic in
// (seed, n, runs), which is what lets the fencefuzz figure cache and
// digest it.
func TestFuzzReportDeterministic(t *testing.T) {
	p := platform.Kunpeng916()
	a := FuzzShapes(7, 22, 3, p, nil)
	b := FuzzShapes(7, 22, 3, p, nil)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("fuzz report not deterministic:\n%+v\nvs\n%+v", a, b)
	}
}
