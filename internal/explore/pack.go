package explore

import (
	"math/bits"

	"armbar/internal/isa"
)

// This file is the state-compression layer of the explorer. One
// exploration fixes a placed program, and from it a layout: every
// value a state can ever hold (memory, registers, buffered stores,
// stale views) is drawn from a small closed dictionary — zero, the
// initial line values, and the store/swap immediates — so cells carry
// one-byte dictionary indices instead of uint64 values. A state then
// has two representations:
//
//   - the flat form: a fixed-stride byte slab with precomputed field
//     offsets. This is what the engine mutates and what the worklist
//     stack holds — copying a state is one memmove, and no decode
//     step exists on the pop path.
//   - the packed form: the flat fields bit-packed into a few uint64
//     words (budget, per-cell value indices, and per-thread
//     header/buffer/stale sections). This is the canonical identity:
//     the encoding is a prefix code (occupancy counts precede their
//     variable-length sections, the tail is zero-filled), so packed
//     equality is exactly state equality, and the visited set becomes
//     an open-addressed table of fixed-width words keyed by a 64-bit
//     hash of the packed bytes.
//
// Flat-form field encodings: a buffer entry is 3 bytes
// [addr, validx, level|rel<<7]; a stale entry is 2 bytes
// [addr, validx|clearable<<7]. The layout guard below keeps value
// indices and drain levels in 7 bits so the flag bits never collide.

// thLayout is the per-thread slice of the layout: bit widths for the
// packed form, byte offsets for the flat form. The packed header
// (pc, drain level, buffer and stale occupancy counts) is fused into
// one bit-field, and each buffer/stale entry into another, so a
// thread packs in 1 + occupancy cursor operations.
type thLayout struct {
	pcBits    uint // pc in [0, len(ops)]
	levelBits uint // level <= number of DMBSt ops in the thread
	bufCap    int  // max pending stores = SStore ops in the thread
	bufCnt    uint // bits for the buffer occupancy count
	staleCap  int  // max distinct stale views = sum over lines of 1+writes
	staleCnt  uint // bits for the stale occupancy count
	hdrBits   uint // pc + level + both occupancy counts
	entryBits uint // addr + value index + level + rel flag
	staleEnt  uint // addr + value index + clearable flag

	hdrOff   int // flat: [pc, level, nbuf, nstale]
	bufOff   int // flat: bufCap entries, 3 bytes each
	staleOff int // flat: staleCap entries, 2 bytes each
}

// layout is the state geometry for one placed program.
type layout struct {
	nlines, nregs int
	dict          []uint64 // sorted distinct values any cell can hold
	vbits         uint     // bits per dictionary index
	addrBits      uint
	budgetBits    uint
	th            []thLayout
	words         int  // uint64 words per packed state
	stride        int  // bytes per flat state
	memOff        int  // flat: nlines value indices ([0] is the budget)
	regsOff       int  // flat: nregs value indices
	sigOK         bool // terminal signature (regs+mem) fits one word
}

func bitsFor(maxVal int) uint {
	if maxVal <= 0 {
		return 0
	}
	return uint(bits.Len(uint(maxVal)))
}

// build derives the layout from the placed program, reusing the
// receiver's slices. The value dictionary is closed under the
// semantics: memory cells hold zero, an Init value, or a store/swap
// immediate; registers hold zero or an observed memory value;
// buffered and stale values are past or pending memory values. The
// writes scratch is returned for the caller to reuse.
func (l *layout) build(s *Shape, ops [][]SOp, bound int, writes []int) []int {
	l.nlines, l.nregs = s.Lines, len(s.Regs)

	l.dict = append(l.dict[:0], 0)
	add := func(v uint64) {
		for _, d := range l.dict {
			if d == v {
				return
			}
		}
		l.dict = append(l.dict, v)
	}
	for _, v := range s.Init {
		add(v)
	}
	if cap(writes) < s.Lines {
		writes = make([]int, s.Lines)
	}
	writes = writes[:s.Lines]
	for i := range writes {
		writes[i] = 0
	}
	for _, tops := range ops {
		for _, op := range tops {
			if op.Code == SStore || op.Code == SSwap {
				add(op.Val)
				writes[op.Addr]++
			}
		}
	}
	sortU64(l.dict)
	l.vbits = bitsFor(len(l.dict) - 1)
	l.addrBits = bitsFor(s.Lines - 1)
	l.budgetBits = bitsFor(bound)

	staleCap := 0
	for _, w := range writes {
		if w > 0 {
			staleCap += 1 + w
		}
	}

	l.memOff = 1
	l.regsOff = l.memOff + l.nlines
	off := l.regsOff + l.nregs
	totalBits := l.budgetBits + uint(l.nlines+l.nregs)*l.vbits
	l.th = l.th[:0]
	for _, tops := range ops {
		bufCap, maxLevel := 0, 0
		for _, op := range tops {
			switch {
			case op.Code == SStore:
				bufCap++
			case op.Code == SBarrier && op.Bar == isa.DMBSt:
				maxLevel++
			}
		}
		tl := thLayout{
			pcBits:    bitsFor(len(tops)),
			levelBits: bitsFor(maxLevel),
			bufCap:    bufCap,
			bufCnt:    bitsFor(bufCap),
			staleCap:  staleCap,
			staleCnt:  bitsFor(staleCap),
		}
		tl.hdrBits = tl.pcBits + tl.levelBits + tl.bufCnt + tl.staleCnt
		tl.entryBits = l.addrBits + l.vbits + tl.levelBits + 1
		tl.staleEnt = l.addrBits + l.vbits + 1
		tl.hdrOff = off
		tl.bufOff = off + 4
		tl.staleOff = tl.bufOff + 3*bufCap
		off = tl.staleOff + 2*staleCap
		l.th = append(l.th, tl)
		totalBits += tl.hdrBits +
			uint(tl.bufCap)*tl.entryBits + uint(tl.staleCap)*tl.staleEnt
	}
	l.stride = off
	l.words = int((totalBits + 63) / 64)
	if l.words == 0 {
		l.words = 1
	}
	l.sigOK = uint(l.nlines+l.nregs)*l.vbits <= 64
	// The flat form stores value indices and drain levels alongside a
	// flag bit in one byte, and pc/occupancy counts in one byte each.
	// These bounds hold with margin for every shape the generator can
	// produce; a violation would silently corrupt states, so fail
	// loudly instead.
	if l.vbits > 7 || bound > 255 || s.Lines > 255 {
		panic("explore: shape exceeds the packed-state envelope")
	}
	for u := range l.th {
		if l.th[u].levelBits > 7 || len(ops[u]) > 255 || l.th[u].staleCap > 255 {
			panic("explore: thread exceeds the packed-state envelope")
		}
	}
	return writes
}

func sortU64(vs []uint64) {
	for i := 1; i < len(vs); i++ {
		for j := i; j > 0 && vs[j] < vs[j-1]; j-- {
			vs[j], vs[j-1] = vs[j-1], vs[j]
		}
	}
}

// dictIdx maps a value to its dictionary index. The dictionary is a
// handful of entries, so a linear scan beats any map; the fast path
// only calls this during setup and terminal rendering — states carry
// indices, not values.
func (l *layout) dictIdx(v uint64) uint64 {
	for i, d := range l.dict {
		if d == v {
			return uint64(i)
		}
	}
	panic("explore: value outside the packed dictionary")
}

// bitCursor writes or reads consecutive bit-fields over a word slice.
type bitCursor struct {
	ws  []uint64
	w   int
	off uint
}

// put writes an n-bit field (n < 64, v fits in n bits). A field
// ending exactly on a word boundary touches only the current word, so
// a slice of exactly layout.words words suffices.
func (c *bitCursor) put(v uint64, n uint) {
	if n == 0 {
		return
	}
	c.ws[c.w] |= v << c.off
	if c.off+n > 64 {
		c.ws[c.w+1] = v >> (64 - c.off)
	}
	if c.off+n >= 64 {
		c.w++
		c.off = c.off + n - 64
	} else {
		c.off += n
	}
}

func (c *bitCursor) get(n uint) uint64 {
	if n == 0 {
		return 0
	}
	v := c.ws[c.w] >> c.off
	if c.off+n > 64 {
		v |= c.ws[c.w+1] << (64 - c.off)
	}
	if c.off+n >= 64 {
		c.w++
		c.off = c.off + n - 64
	} else {
		c.off += n
	}
	return v & (1<<n - 1)
}

// pack encodes a flat state into out (len == l.words). Only occupied
// buffer/stale entries are written — their counts travel in the
// thread header, so the encoding is a prefix code and therefore
// injective; the words are zeroed first so the unused tail compares
// equal and packed equality is exactly state equality.
func (l *layout) pack(st []byte, out []uint64) {
	for i := range out {
		out[i] = 0
	}
	c := bitCursor{ws: out}
	c.put(uint64(st[0]), l.budgetBits)
	for _, b := range st[l.memOff : l.memOff+l.nlines] {
		c.put(uint64(b), l.vbits)
	}
	for _, b := range st[l.regsOff : l.regsOff+l.nregs] {
		c.put(uint64(b), l.vbits)
	}
	for u := range l.th {
		tl := &l.th[u]
		pc, level := st[tl.hdrOff], st[tl.hdrOff+1]
		nbuf, nstale := int(st[tl.hdrOff+2]), int(st[tl.hdrOff+3])
		hdr := uint64(pc) |
			uint64(level)<<tl.pcBits |
			uint64(nbuf)<<(tl.pcBits+tl.levelBits) |
			uint64(nstale)<<(tl.pcBits+tl.levelBits+tl.bufCnt)
		c.put(hdr, tl.hdrBits)
		for k := 0; k < nbuf; k++ {
			b := st[tl.bufOff+3*k : tl.bufOff+3*k+3]
			c.put(uint64(b[0])|
				uint64(b[1])<<l.addrBits|
				uint64(b[2]&0x7f)<<(l.addrBits+l.vbits)|
				uint64(b[2]>>7)<<(l.addrBits+l.vbits+tl.levelBits),
				tl.entryBits)
		}
		for k := 0; k < nstale; k++ {
			b := st[tl.staleOff+2*k : tl.staleOff+2*k+2]
			c.put(uint64(b[0])|
				uint64(b[1]&0x7f)<<l.addrBits|
				uint64(b[1]>>7)<<(l.addrBits+l.vbits),
				tl.staleEnt)
		}
	}
}

// unpack decodes a packed state into the flat form — the inverse of
// pack, used by tests to pin the round-trip and by nothing on the hot
// path (the worklist stack holds flat states, so popping needs no
// decode).
func (l *layout) unpack(ws []uint64, st []byte) {
	for i := range st {
		st[i] = 0
	}
	c := bitCursor{ws: ws}
	st[0] = byte(c.get(l.budgetBits))
	for i := 0; i < l.nlines; i++ {
		st[l.memOff+i] = byte(c.get(l.vbits))
	}
	for i := 0; i < l.nregs; i++ {
		st[l.regsOff+i] = byte(c.get(l.vbits))
	}
	for u := range l.th {
		tl := &l.th[u]
		hdr := c.get(tl.hdrBits)
		st[tl.hdrOff] = byte(hdr & (1<<tl.pcBits - 1))
		hdr >>= tl.pcBits
		st[tl.hdrOff+1] = byte(hdr & (1<<tl.levelBits - 1))
		hdr >>= tl.levelBits
		nbuf := int(hdr & (1<<tl.bufCnt - 1))
		nstale := int(hdr >> tl.bufCnt)
		st[tl.hdrOff+2], st[tl.hdrOff+3] = byte(nbuf), byte(nstale)
		for k := 0; k < nbuf; k++ {
			e := c.get(tl.entryBits)
			st[tl.bufOff+3*k] = byte(e & (1<<l.addrBits - 1))
			st[tl.bufOff+3*k+1] = byte((e >> l.addrBits) & (1<<l.vbits - 1))
			st[tl.bufOff+3*k+2] = byte((e>>(l.addrBits+l.vbits))&(1<<tl.levelBits-1)) |
				byte(e>>(l.addrBits+l.vbits+tl.levelBits))<<7
		}
		for k := 0; k < nstale; k++ {
			e := c.get(tl.staleEnt)
			st[tl.staleOff+2*k] = byte(e & (1<<l.addrBits - 1))
			st[tl.staleOff+2*k+1] = byte((e>>l.addrBits)&(1<<l.vbits-1)) |
				byte(e>>(l.addrBits+l.vbits))<<7
		}
	}
}

// hashWords is a 64-bit mix of the packed words (xor-multiply-shift
// per word, splitmix-style finish).
func hashWords(ws []uint64) uint64 {
	h := uint64(0x9e3779b97f4a7c15)
	for _, w := range ws {
		h ^= w
		h *= 0xff51afd7ed558ccd
		h ^= h >> 33
	}
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 29
	if h == 0 {
		h = 1
	}
	return h
}
