package explore

import (
	"armbar/internal/isa"
	"armbar/internal/topo"
)

// The classic litmus suite as straight-line shapes. Signal waits are
// plain loads whose value joins the outcome, so forbidden predicates
// condition on the observed value instead of spinning; ops marked Spin
// let the simulator sampler wait for the signal the way the litmus
// package's own tests do. Slot kinds mirror the barriers the paper
// (and internal/litmus) place in each shape.

func load(addr, obs int) SOp     { return SOp{Code: SLoad, Addr: addr, Obs: obs} }
func warm(addr int) SOp          { return SOp{Code: SLoad, Addr: addr, Obs: -1} }
func store(addr int, v uint64) SOp {
	return SOp{Code: SStore, Addr: addr, Val: v, Obs: -1}
}
func spinLoad(addr, obs int, v uint64) SOp {
	return SOp{Code: SLoad, Addr: addr, Obs: obs, Val: v, Spin: true}
}
func swap(addr int, v uint64, obs int) SOp {
	return SOp{Code: SSwap, Addr: addr, Val: v, Obs: obs}
}

// MP is message passing: the producer publishes data then a flag, the
// consumer (with a warmed data copy) reads the flag then data. The
// anomaly is seeing the flag set but stale data.
func MP() *Shape {
	return &Shape{
		Name:      "MP",
		Doc:       "message passing: flag set but data stale",
		Cores:     []topo.CoreID{0, 4},
		Lines:     2,
		LineNames: []string{"data", "flag"},
		Threads: [][]SOp{
			{store(0, 23), store(1, 1)},
			{warm(0), spinLoad(1, 0, 1), load(0, 1)},
		},
		Slots: []Slot{
			{Thread: 0, At: 1, Bar: isa.DMBSt, Label: "push"},
			{Thread: 1, At: 2, Bar: isa.DMBLd, Label: "pull"},
		},
		Regs: []string{"flag", "local"},
		Forbidden: func(r, _ []uint64) bool { return r[0] == 1 && r[1] != 23 },
	}
}

// SB is store buffering: both threads store their own flag then load
// the other's; both loads reading the initial value needs each load to
// bypass the thread's own pending store.
func SB() *Shape {
	return &Shape{
		Name:      "SB",
		Doc:       "store buffering: both loads see the initial values",
		Cores:     []topo.CoreID{0, 4},
		Lines:     2,
		LineNames: []string{"x", "y"},
		Threads: [][]SOp{
			{store(0, 1), load(1, 0)},
			{store(1, 1), load(0, 1)},
		},
		Slots: []Slot{
			{Thread: 0, At: 1, Bar: isa.DMBFull, Label: "t0"},
			{Thread: 1, At: 1, Bar: isa.DMBFull, Label: "t1"},
		},
		Regs: []string{"r0", "r1"},
		Forbidden: func(r, _ []uint64) bool { return r[0] == 0 && r[1] == 0 },
	}
}

// S is the S shape: T0 stores x=2 then y=1; T1 reads y and stores
// x=1. Forbidden: T1 saw y=1 yet x finishes 2.
func S() *Shape {
	return &Shape{
		Name:      "S",
		Doc:       "S: read of y=1 yet the dependent x=1 loses to x=2",
		Cores:     []topo.CoreID{0, 32},
		Lines:     2,
		LineNames: []string{"x", "y"},
		Threads: [][]SOp{
			{store(0, 2), store(1, 1)},
			{load(1, 0), store(0, 1)},
		},
		Slots: []Slot{
			{Thread: 0, At: 1, Bar: isa.DMBSt, Label: "t0"},
			{Thread: 1, At: 1, Bar: isa.CtrlDep, Label: "t1"},
		},
		Regs:      []string{"r"},
		Finals:    []int{0},
		FinalTags: []string{"x"},
		Forbidden: func(r, f []uint64) bool { return r[0] == 1 && f[0] == 2 },
	}
}

// R is the R shape: T0 stores x=1 then y=1; T1 stores y=2 then reads
// x. Forbidden: y finishes 2 (T1's store coherence-after T0's) with
// T1 reading x=0.
func R() *Shape {
	return &Shape{
		Name:      "R",
		Doc:       "R: y finishes 2 yet the ordered read of x misses x=1",
		Cores:     []topo.CoreID{0, 32},
		Lines:     2,
		LineNames: []string{"x", "y"},
		Threads: [][]SOp{
			{store(0, 1), store(1, 1)},
			{store(1, 2), load(0, 0)},
		},
		Slots: []Slot{
			{Thread: 0, At: 1, Bar: isa.DMBSt, Label: "t0"},
			{Thread: 1, At: 1, Bar: isa.DMBFull, Label: "t1"},
		},
		Regs:      []string{"r"},
		Finals:    []int{1},
		FinalTags: []string{"y"},
		Forbidden: func(r, f []uint64) bool { return r[0] == 0 && f[1] == 2 },
	}
}

// TwoPlusTwoW is 2+2W: both threads store to both lines in opposite
// orders; forbidden is both lines ending with their first writer's
// value.
func TwoPlusTwoW() *Shape {
	return &Shape{
		Name:      "2+2W",
		Doc:       "2+2W: both lines finish with their first writer's value",
		Cores:     []topo.CoreID{0, 32},
		Lines:     2,
		LineNames: []string{"x", "y"},
		Threads: [][]SOp{
			{store(0, 1), store(1, 2)},
			{store(1, 1), store(0, 2)},
		},
		Slots: []Slot{
			{Thread: 0, At: 1, Bar: isa.DMBSt, Label: "t0"},
			{Thread: 1, At: 1, Bar: isa.DMBSt, Label: "t1"},
		},
		Finals:    []int{0, 1},
		FinalTags: []string{"x", "y"},
		Forbidden: func(_, f []uint64) bool { return f[0] == 1 && f[1] == 1 },
	}
}

// LB is load buffering: each thread loads the other's line then
// stores its own. Both loads observing the other's later store is
// forbidden with or without the dependency slots: stores never commit
// before their issue and loads bind no later than issue.
func LB() *Shape {
	return &Shape{
		Name:      "LB",
		Doc:       "load buffering: both loads see the other thread's later store",
		Cores:     []topo.CoreID{0, 4},
		Lines:     2,
		LineNames: []string{"x", "y"},
		Threads: [][]SOp{
			{load(1, 0), store(0, 1)},
			{load(0, 1), store(1, 1)},
		},
		Slots: []Slot{
			{Thread: 0, At: 1, Bar: isa.DataDep, Label: "t0"},
			{Thread: 1, At: 1, Bar: isa.DataDep, Label: "t1"},
		},
		Regs: []string{"r0", "r1"},
		Forbidden: func(r, _ []uint64) bool { return r[0] == 1 && r[1] == 1 },
	}
}

// WRC is write-to-read causality: T0 stores x; T1 reads x and stores
// y; T2 reads y then x. Forbidden: T1 saw x=1 and T2 saw y=1 but
// x=0 — causality broken on a multi-copy-atomic machine.
func WRC() *Shape {
	return &Shape{
		Name:      "WRC",
		Doc:       "WRC: causality chain x=1 -> y=1 observed, then stale x=0",
		Cores:     []topo.CoreID{0, 4, 32},
		Lines:     2,
		LineNames: []string{"x", "y"},
		Threads: [][]SOp{
			{store(0, 1)},
			{load(0, 0), store(1, 1)},
			{warm(0), load(1, 1), load(0, 2)},
		},
		Slots: []Slot{
			{Thread: 1, At: 1, Bar: isa.AddrDep, Label: "t1"},
			{Thread: 2, At: 2, Bar: isa.DMBLd, Label: "t2"},
		},
		Regs: []string{"t1x", "t2y", "t2x"},
		Forbidden: func(r, _ []uint64) bool {
			return r[0] == 1 && r[1] == 1 && r[2] == 0
		},
	}
}

// CoRR is per-location read coherence: two program-ordered loads of
// one line must not observe a remote store's value then the older
// value. Without the address dependency the second load may still use
// the stale view the first load raced past.
func CoRR() *Shape {
	return &Shape{
		Name:      "CoRR",
		Doc:       "CoRR: same-line loads observe x=1 then the older x=0",
		Cores:     []topo.CoreID{0, 4},
		Lines:     1,
		LineNames: []string{"x"},
		Threads: [][]SOp{
			{store(0, 1)},
			{load(0, 0), load(0, 1)},
		},
		Slots: []Slot{
			{Thread: 1, At: 1, Bar: isa.AddrDep, Label: "dep"},
		},
		Regs: []string{"r1", "r2"},
		Forbidden: func(r, _ []uint64) bool { return r[0] == 1 && r[1] == 0 },
	}
}

// CoWW is per-location write coherence: one thread stores twice to
// one line; the final value must be the second store even with
// out-of-order drain.
func CoWW() *Shape {
	return &Shape{
		Name:      "CoWW",
		Doc:       "CoWW: same-line stores drain out of order",
		Cores:     []topo.CoreID{0},
		Lines:     1,
		LineNames: []string{"x"},
		Threads: [][]SOp{
			{store(0, 1), store(0, 2)},
		},
		Finals:    []int{0},
		FinalTags: []string{"x"},
		Forbidden: func(_, f []uint64) bool { return f[0] != 2 },
	}
}

// SBRMW is store buffering with atomic swaps: the swap drains the
// buffer and synchronizes the stale view, so both-zeros is forbidden
// with no barrier slots at all.
func SBRMW() *Shape {
	return &Shape{
		Name:      "SB+RMW",
		Doc:       "SB with atomic swaps: both loads see the initial values",
		Cores:     []topo.CoreID{0, 4},
		Lines:     2,
		LineNames: []string{"x", "y"},
		Threads: [][]SOp{
			{swap(0, 1, -1), load(1, 0)},
			{swap(1, 1, -1), load(0, 1)},
		},
		Regs: []string{"r0", "r1"},
		Forbidden: func(r, _ []uint64) bool { return r[0] == 0 && r[1] == 0 },
	}
}

// Chan is the paper's naive one-way channel round (Figure 6a): the
// producer checks the consumer-ready count, publishes the payload,
// then raises the flag; the consumer (holding a warmed payload copy)
// reads the flag then the payload. Three barriers guard it: "avail"
// after the availability load, "publish" between payload and flag,
// "consume" between flag and payload. The stale-read anomaly is the
// flag observed set while the payload still reads 0.
func Chan() *Shape {
	return &Shape{
		Name:      "chan",
		Doc:       "one-way channel: flag observed set, payload stale",
		Cores:     []topo.CoreID{0, 4},
		Lines:     3,
		LineNames: []string{"ready", "data", "flag"},
		Init:      []uint64{1, 0, 0},
		Threads: [][]SOp{
			{load(0, 0), store(1, 23), store(2, 1)},
			{warm(1), spinLoad(2, 1, 1), load(1, 2)},
		},
		Slots: []Slot{
			{Thread: 0, At: 1, Bar: isa.DMBLd, Label: "avail"},
			{Thread: 0, At: 2, Bar: isa.DMBSt, Label: "publish"},
			{Thread: 1, At: 2, Bar: isa.DMBLd, Label: "consume"},
		},
		Regs: []string{"ready", "flag", "local"},
		Forbidden: func(r, _ []uint64) bool { return r[1] == 1 && r[2] != 23 },
	}
}

// Pilot is the transformed channel: availability signal and payload
// piggybacked into one single-copy-atomic word, so one store and one
// load replace the whole fenced sequence. The forbidden outcome —
// observing a value that is neither the old word nor the new one —
// is unreachable with no barriers at all.
func Pilot() *Shape {
	const old, msg = 5, 23
	return &Shape{
		Name:      "pilot",
		Doc:       "pilot word: torn read of the piggybacked signal+payload",
		Cores:     []topo.CoreID{0, 4},
		Lines:     1,
		LineNames: []string{"word"},
		Init:      []uint64{old},
		Threads: [][]SOp{
			{store(0, msg)},
			{warm(0), load(0, 0)},
		},
		Regs: []string{"word"},
		Forbidden: func(r, _ []uint64) bool { return r[0] != old && r[0] != msg },
	}
}

// Classic returns the classic suite in its fixed gate order.
func Classic() []*Shape {
	return []*Shape{MP(), SB(), S(), R(), TwoPlusTwoW(), LB(), WRC(), CoRR(), CoWW(), SBRMW()}
}

// All returns every shape: the classic suite plus the channel pair
// PilotCheck reasons over.
func All() []*Shape {
	return append(Classic(), Chan(), Pilot())
}

// ByName returns the named shape, or nil.
func ByName(name string) *Shape {
	for _, s := range All() {
		if s.Name == name {
			return s
		}
	}
	return nil
}
