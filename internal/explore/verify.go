package explore

import (
	"fmt"

	"armbar/internal/runner"
	"armbar/internal/sim"
)

// Verify explores the shape under one placement and reports whether
// any forbidden outcome is reachable (Result.Safe), with the full
// reachable set and — when unsafe — a witness trace.
func Verify(s *Shape, pl Placement, mode sim.Mode, bound int) *Result {
	return Explore(s, pl, mode, bound)
}

// MinReport is the result of searching a shape's placement lattice.
type MinReport struct {
	Shape     string
	Mode      sim.Mode
	Bound     int
	NaiveSafe bool        // the full placement admits no forbidden outcome
	Minimal   []Placement // all minimal safe placements, sorted
	Explored  int         // placements actually explored
	Pruned    int         // placements skipped by monotone pruning
	States    int         // abstract states across all explorations
}

// MinimalDescribe renders the minimal set deterministically, e.g.
// "{push pull}" or "{t0} | {t1}".
func (m *MinReport) MinimalDescribe(s *Shape) string {
	if len(m.Minimal) == 0 {
		return "none"
	}
	out := ""
	for i, pl := range m.Minimal {
		if i > 0 {
			out += " | "
		}
		out += pl.Describe(s)
	}
	return out
}

// Minimize searches the full placement lattice for all minimal safe
// placements. Barriers only restrict behavior, so safety is monotone:
// an unsafe placement makes every subset unsafe. The lattice is walked
// by descending slot count, so any candidate contained in a known
// unsafe placement is pruned without exploration; a safe placement is
// minimal iff no safe strict subset exists, which the walk has fully
// classified by the time it finishes.
func Minimize(s *Shape, mode sim.Mode, bound int) *MinReport {
	return MinimizePar(s, mode, bound, nil)
}

// MinimizePar is Minimize with each lattice-point exploration fanned
// out over the pool (see ExplorePar). The lattice walk itself stays
// sequential — monotone pruning is order-dependent — and the report
// is bit-identical to Minimize at every pool width. Lattice points
// are explored without witness replay: Minimize only needs verdicts.
func MinimizePar(s *Shape, mode sim.Mode, bound int, pool *runner.Pool) *MinReport {
	rep := &MinReport{Shape: s.Name, Mode: mode, Bound: bound}
	naive := Naive(s)

	var order []Placement
	for pl := Placement(0); pl <= naive; pl++ {
		order = append(order, pl)
	}
	sortPlacements(order)
	// Descending slot count; sortPlacements gives ascending.
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}

	var unsafe []Placement
	var scr *fastExplorer
	safe := make(map[Placement]bool)
	for _, pl := range order {
		pruned := false
		for _, u := range unsafe {
			if pl.SubsetOf(u) {
				pruned = true
				break
			}
		}
		if pruned {
			rep.Pruned++
			continue
		}
		r, re := exploreReuse(s, pl, mode, bound, pool, false, scr)
		scr = re
		rep.Explored++
		rep.States += r.States
		if r.Safe() {
			safe[pl] = true
			if pl == naive {
				rep.NaiveSafe = true
			}
		} else {
			unsafe = append(unsafe, pl)
		}
	}

	for pl := range safe {
		minimal := true
		for sub := range safe {
			if sub != pl && sub.SubsetOf(pl) {
				minimal = false
				break
			}
		}
		if minimal {
			rep.Minimal = append(rep.Minimal, pl)
		}
	}
	sortPlacements(rep.Minimal)
	return rep
}

// PilotStep is one machine-checked claim of the Pilot transformation.
type PilotStep struct {
	Name       string // e.g. "chan - publish"
	Shape      string
	Placement  Placement
	Safe       bool
	ExpectSafe bool
	Outcomes   int
	Witness    []string // first forbidden trace when unsafe
}

// OK reports whether the verdict matches the expectation.
func (p *PilotStep) OK() bool { return p.Safe == p.ExpectSafe }

// PilotReport is the full machine-check of the paper's Pilot
// derivation.
type PilotReport struct {
	Mode  sim.Mode
	Bound int
	Steps []PilotStep
}

// OK reports whether every step matched its expectation.
func (p *PilotReport) OK() bool {
	for i := range p.Steps {
		if !p.Steps[i].OK() {
			return false
		}
	}
	return true
}

// PilotCheck machine-checks the paper's Pilot transformation on the
// one-way channel:
//
//  1. the naive fully-fenced channel is safe;
//  2. dropping the load-side DMB after the availability check stays
//     safe — that ordering (load before later stores) is free under
//     in-order issue, which is the removal the paper derives by hand;
//  3. dropping either remaining barrier (publish or consume) is
//     unsafe — a stale payload read becomes reachable;
//  4. the Pilot word program — signal and payload piggybacked into one
//     single-copy-atomic word — is safe with no barriers at all.
func PilotCheck(mode sim.Mode, bound int) *PilotReport {
	rep := &PilotReport{Mode: mode, Bound: bound}
	ch := Chan()
	naive := Naive(ch)

	add := func(name string, s *Shape, pl Placement, expectSafe bool) {
		r := Explore(s, pl, mode, bound)
		rep.Steps = append(rep.Steps, PilotStep{
			Name:       name,
			Shape:      s.Name,
			Placement:  pl,
			Safe:       r.Safe(),
			ExpectSafe: expectSafe,
			Outcomes:   len(r.Outcomes),
			Witness:    r.Witness,
		})
	}

	add("chan naive", ch, naive, true)
	for i, sl := range ch.Slots {
		// Only the availability barrier (the load-side DMB the paper
		// removes first) is redundant; every other removal must be
		// flagged. Under TSO every removal is safe: the FIFO buffer
		// supplies both remaining orderings.
		expect := sl.Label == "avail" || mode == sim.TSO
		add(fmt.Sprintf("chan - %s", sl.Label), ch, naive.Without(i), expect)
	}
	add("pilot word", Pilot(), 0, true)
	return rep
}
