// Package explore is a reorder-bounded state-space explorer for
// litmus shapes: it runs a straight-line multi-threaded program under
// an abstract operational semantics of the simulator's WMM (per-thread
// non-FIFO store buffers plus bounded-stale load views) or TSO
// (FIFO buffers, no staleness), enumerating every interleaving up to a
// reorder bound via DFS with state hashing and reporting the exact set
// of reachable outcomes.
//
// The abstraction is calibrated against internal/sim, not against the
// architectural ARM model: in-order issue per thread, weak behavior
// only from out-of-order store-buffer drain and from stale load views
// (the union of the simulator's invalidated-copy window and its
// early-binding race on in-flight misses). Every behavior the
// simulator can sample is reachable here; the explorer additionally
// reaches timing corners sampling may miss, so a placement the
// explorer calls safe is safe for every seed. Three entry points sit
// on top (verify.go): Verify proves a barrier placement admits no
// forbidden outcome, Minimize searches the placement lattice for all
// minimal safe placements, and PilotCheck machine-checks the paper's
// Pilot barrier-removal transformation.
package explore

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"

	"armbar/internal/isa"
	"armbar/internal/litmus"
	"armbar/internal/topo"
)

// SCode is a straight-line shape micro-op opcode. Shapes deliberately
// exclude control flow: loops and spins make exhaustive exploration
// unbounded, so signal waits are expressed as plain loads whose
// forbidden predicate conditions on the observed value (the sampler
// may re-introduce a spin on ops marked Spin, which only restricts
// the sampled outcome set).
type SCode uint8

const (
	SLoad    SCode = iota // relaxed load
	SLoadAcq              // LDAR
	SStore                // relaxed store (into the store buffer)
	SBarrier              // standalone barrier
	SSwap                 // LSE atomic swap (drains, acts on memory)
)

// SOp is one micro-op of a shape thread.
type SOp struct {
	Code SCode
	Addr int         // line index
	Val  uint64      // store/swap value; sampler spin-exit value
	Bar  isa.Barrier // SBarrier only
	Obs  int         // register receiving a load/swap result; -1 = discarded
	Spin bool        // sampler retries this load until it reads Val
}

// Slot is an optional barrier position in a shape: placement bit i
// inserts Bar before op At of thread Thread (At == len inserts at the
// end).
type Slot struct {
	Thread int
	At     int
	Bar    isa.Barrier
	Label  string
}

// Shape is a litmus program with optional barrier slots. Regs names
// the observed registers (indexed by SOp.Obs), Finals names rendered
// final-memory lines; outcomes render registers first, then finals,
// through litmus.Fields — the same path the litmus tests use.
type Shape struct {
	Name      string
	Doc       string
	Cores     []topo.CoreID // sampler thread binding; len == threads
	Lines     int
	LineNames []string // witness rendering; len == Lines
	Init      []uint64 // initial line values (nil = zeros)
	Threads   [][]SOp
	Slots     []Slot
	Regs      []string
	Finals    []int    // line indices rendered after the registers
	FinalTags []string // names for Finals
	Forbidden func(regs []uint64, final []uint64) bool
}

// Outcome renders one terminal state exactly as the litmus package
// would.
func (s *Shape) Outcome(regs, final []uint64) litmus.Outcome {
	names := make([]string, 0, len(s.Regs)+len(s.Finals))
	vals := make([]uint64, 0, len(s.Regs)+len(s.Finals))
	names = append(names, s.Regs...)
	vals = append(vals, regs...)
	for i, line := range s.Finals {
		names = append(names, s.FinalTags[i])
		vals = append(vals, final[line])
	}
	return litmus.Fields(names, vals...)
}

func (s *Shape) initMem() []uint64 {
	mem := make([]uint64, s.Lines)
	copy(mem, s.Init)
	return mem
}

// thread returns thread i's ops with the placed slot barriers
// inserted.
func (s *Shape) thread(i int, pl Placement) []SOp {
	base := s.Threads[i]
	ops := make([]SOp, 0, len(base)+len(s.Slots))
	for at := 0; at <= len(base); at++ {
		for si, sl := range s.Slots {
			if sl.Thread == i && sl.At == at && pl.Has(si) {
				ops = append(ops, SOp{Code: SBarrier, Bar: sl.Bar, Obs: -1})
			}
		}
		if at < len(base) {
			ops = append(ops, base[at])
		}
	}
	return ops
}

// program returns every thread lowered under the placement.
func (s *Shape) program(pl Placement) [][]SOp {
	ops := make([][]SOp, len(s.Threads))
	for i := range s.Threads {
		ops[i] = s.thread(i, pl)
	}
	return ops
}

// Placement is a subset of a shape's slots, bit i = slot i placed.
type Placement uint32

// Naive is the full placement: every slot filled.
func Naive(s *Shape) Placement { return Placement(1)<<len(s.Slots) - 1 }

// Has reports whether slot i is placed.
func (pl Placement) Has(i int) bool { return pl&(1<<i) != 0 }

// Without clears slot i.
func (pl Placement) Without(i int) Placement { return pl &^ (1 << i) }

// SubsetOf reports pl ⊆ other.
func (pl Placement) SubsetOf(other Placement) bool { return pl&^other == 0 }

// Count returns the number of placed slots.
func (pl Placement) Count() int { return bits.OnesCount32(uint32(pl)) }

// Describe renders the placement by slot label, "{}" when empty.
func (pl Placement) Describe(s *Shape) string {
	var names []string
	for i, sl := range s.Slots {
		if pl.Has(i) {
			names = append(names, sl.Label)
		}
	}
	return "{" + strings.Join(names, " ") + "}"
}

// SlotBarriers renders a placement as the per-slot barrier list,
// isa.None where the placement leaves a slot empty — the form the
// absmodel formula oracle consumes.
func SlotBarriers(s *Shape, pl Placement) []isa.Barrier {
	bars := make([]isa.Barrier, len(s.Slots))
	for i, sl := range s.Slots {
		if pl.Has(i) {
			bars[i] = sl.Bar
		} else {
			bars[i] = isa.None
		}
	}
	return bars
}

// SlotSummary renders the shape's slot table, e.g.
// "push:dmb st pull:dmb ld".
func (s *Shape) SlotSummary() string {
	parts := make([]string, len(s.Slots))
	for i, sl := range s.Slots {
		parts[i] = fmt.Sprintf("%s:%v", sl.Label, sl.Bar)
	}
	if len(parts) == 0 {
		return "-"
	}
	return strings.Join(parts, " ")
}

// sortPlacements orders placements by slot count then numeric value —
// the deterministic rendering order for minimal-placement sets.
func sortPlacements(pls []Placement) {
	sort.Slice(pls, func(i, j int) bool {
		if pls[i].Count() != pls[j].Count() {
			return pls[i].Count() < pls[j].Count()
		}
		return pls[i] < pls[j]
	})
}
