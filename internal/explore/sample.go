package explore

import (
	"fmt"
	"sort"

	"armbar/internal/litmus"
	"armbar/internal/platform"
	"armbar/internal/prog"
	"armbar/internal/sim"
)

// This file is the differential bridge to the simulator: the same
// shape the explorer enumerates runs as seeded simulations, rendered
// through the identical outcome path, so sampled histograms and
// reachable sets compare directly. Sampling can only ever observe a
// subset of what the explorer reaches — the agreement gates assert
// exactly that subset relation, plus that safe placements never
// sample a forbidden outcome.

// Sample runs the shape under the placement `runs` times with seeds
// baseSeed..baseSeed+runs-1 and returns the outcome histogram. Ops
// marked Spin wait for their signal value the way the litmus tests
// do; every other op maps 1:1 onto a Thread operation.
func Sample(p *platform.Platform, s *Shape, pl Placement, mode sim.Mode, runs int, baseSeed int64) *litmus.Result {
	res := &litmus.Result{
		Test:  fmt.Sprintf("%s%s", s.Name, pl.Describe(s)),
		Mode:  mode,
		Runs:  runs,
		Count: make(map[litmus.Outcome]int),
	}
	ops := s.program(pl)
	for r := 0; r < runs; r++ {
		m := sim.New(sim.Config{Plat: p, Mode: mode, Seed: baseSeed + int64(r)})
		addr := allocLines(m, s)
		regs := make([]uint64, len(s.Regs))
		for i, core := range s.Cores {
			i := i
			m.Spawn(core, func(t *sim.Thread) { runOps(t, ops[i], addr, regs) })
		}
		m.Run()
		res.Count[s.Outcome(regs, finalLines(m, addr))]++
	}
	return res
}

// Agreement checks one placement differentially: every sampled
// outcome must be in the explorer's reachable set. Because a safe
// placement's reachable set contains no forbidden outcome, this
// single subset check also proves sampling never observed a forbidden
// outcome wherever the explorer claims safety.
func Agreement(p *platform.Platform, s *Shape, pl Placement, mode sim.Mode, runs int, baseSeed int64) error {
	r := Explore(s, pl, mode, DefaultBound)
	res := Sample(p, s, pl, mode, runs, baseSeed)
	sampled := make([]litmus.Outcome, 0, len(res.Count))
	for o := range res.Count {
		sampled = append(sampled, o)
	}
	sort.Slice(sampled, func(i, j int) bool { return sampled[i] < sampled[j] })
	for _, o := range sampled {
		if !r.Reaches(o) {
			return fmt.Errorf("%s%s under %v: sampled outcome %q (%d/%d runs) is not explorer-reachable",
				s.Name, pl.Describe(s), mode, o, res.Count[o], runs)
		}
	}
	return nil
}

func allocLines(m *sim.Machine, s *Shape) []uint64 {
	addr := make([]uint64, s.Lines)
	for i := range addr {
		addr[i] = m.Alloc(1)
		if i < len(s.Init) && s.Init[i] != 0 {
			m.SetInitial(addr[i], s.Init[i])
		}
	}
	return addr
}

func finalLines(m *sim.Machine, addr []uint64) []uint64 {
	final := make([]uint64, len(addr))
	for i, a := range addr {
		final[i] = m.Directory().Committed(a)
	}
	return final
}

func runOps(t *sim.Thread, ops []SOp, addr []uint64, regs []uint64) {
	for _, op := range ops {
		switch op.Code {
		case SLoad:
			v := t.Load(addr[op.Addr])
			if op.Spin {
				for v != op.Val {
					v = t.Load(addr[op.Addr])
				}
			}
			if op.Obs >= 0 {
				regs[op.Obs] = v
			}
		case SLoadAcq:
			v := t.LoadAcquire(addr[op.Addr])
			if op.Spin {
				for v != op.Val {
					v = t.LoadAcquire(addr[op.Addr])
				}
			}
			if op.Obs >= 0 {
				regs[op.Obs] = v
			}
		case SStore:
			t.Store(addr[op.Addr], op.Val)
		case SBarrier:
			t.Barrier(op.Bar)
		case SSwap:
			v := t.Swap(addr[op.Addr], op.Val)
			if op.Obs >= 0 {
				regs[op.Obs] = v
			}
		}
	}
}

// Compile lowers one thread of the placed shape to a compiled-engine
// program against pre-resolved line addresses. Spin loads lower to
// SpinEQ; observed values are lost (the compiled engine has no
// register file), so compiled runs compare on final memory and
// machine stats.
func Compile(s *Shape, pl Placement, thread int, issueWidth float64, addr []uint64) (*prog.Program, error) {
	b := prog.NewBuilder(issueWidth)
	for _, op := range s.thread(thread, pl) {
		switch op.Code {
		case SLoad:
			if op.Spin {
				b.SpinEQ(prog.Abs(addr[op.Addr]), op.Val, 0)
			} else {
				b.Load(prog.Abs(addr[op.Addr]))
			}
		case SLoadAcq:
			b.LoadAcquire(prog.Abs(addr[op.Addr]))
		case SStore:
			b.Store(prog.Abs(addr[op.Addr]), prog.Imm(op.Val))
		case SBarrier:
			b.Barrier(op.Bar)
		case SSwap:
			b.Swap(prog.Abs(addr[op.Addr]), prog.Imm(op.Val))
		}
	}
	return b.Build()
}

// CompiledParity runs every seed's machine twice — interpreted thread
// closures versus SpawnProgram of the identical lowering — and
// returns an error on the first run whose final committed memory or
// operation counts diverge. It is the explorer suite's engine
// cross-check: shapes must behave identically under both engines.
func CompiledParity(p *platform.Platform, s *Shape, pl Placement, mode sim.Mode, runs int, baseSeed int64) error {
	ops := s.program(pl)
	for r := 0; r < runs; r++ {
		seed := baseSeed + int64(r)

		mi := sim.New(sim.Config{Plat: p, Mode: mode, Seed: seed})
		ai := allocLines(mi, s)
		regs := make([]uint64, len(s.Regs))
		for i, core := range s.Cores {
			i := i
			mi.Spawn(core, func(t *sim.Thread) { runOps(t, ops[i], ai, regs) })
		}
		mi.Run()

		mc := sim.New(sim.Config{Plat: p, Mode: mode, Seed: seed})
		ac := allocLines(mc, s)
		for i, core := range s.Cores {
			pr, err := Compile(s, pl, i, p.Cost.IssueWidth, ac)
			if err != nil {
				return fmt.Errorf("%s: compile thread %d: %w", s.Name, i, err)
			}
			mc.SpawnProgram(core, pr)
		}
		mc.Run()

		fi, fc := finalLines(mi, ai), finalLines(mc, ac)
		for l := range fi {
			if fi[l] != fc[l] {
				return fmt.Errorf("%s seed %d: line %s final %d (interp) vs %d (compiled)",
					s.Name, seed, s.LineNames[l], fi[l], fc[l])
			}
		}
		si, sc := mi.Stats(), mc.Stats()
		if si.Loads != sc.Loads || si.Stores != sc.Stores || si.StaleReads != sc.StaleReads {
			return fmt.Errorf("%s seed %d: stats diverge: loads %d/%d stores %d/%d stale %d/%d",
				s.Name, seed, si.Loads, sc.Loads, si.Stores, sc.Stores, si.StaleReads, sc.StaleReads)
		}
	}
	return nil
}
