// Package perfgate turns BENCH_sim.json — the committed snapshot of
// the simulator hot-path microbenchmarks — into an enforced regression
// gate. It loads the snapshot, compares freshly measured results
// against it, and renders a readable delta table; `armbar perfcheck`
// (and `make perfcheck`) drive it and fail the build when ns/op or
// allocs/op regress beyond the threshold — or when ns/op improves so
// far past the snapshot that the baseline itself has gone stale and
// must be regenerated.
package perfgate

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// Bench is one benchmark measurement, in BENCH_sim.json's schema.
type Bench struct {
	Name        string  `json:"name"`
	Iters       int64   `json:"iters"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// Snapshot is the committed BENCH_sim.json document. The wall-time
// pair records the result-cache speedup measured when the snapshot was
// taken (scripts/bench_snapshot.sh times `-quick all` cold, then warm
// from the cache it just filled); they are context for reviewers, not
// gated — machine load moves whole-run wall time too much for a
// ratio gate to stay quiet.
type Snapshot struct {
	Date            string  `json:"date"`
	Go              string  `json:"go"`
	CPU             string  `json:"cpu"`
	GOMAXPROCS      int     `json:"gomaxprocs"`
	ColdWallSeconds float64 `json:"cold_wall_seconds,omitempty"`
	WarmWallSeconds float64 `json:"warm_wall_seconds,omitempty"`
	// InterpColdWallSeconds is the same cold `-quick all` run under
	// -engine=interp, so the compiled engine's whole-pipeline speedup
	// is visible next to the per-op benchmarks.
	InterpColdWallSeconds float64 `json:"interp_cold_wall_seconds,omitempty"`
	Benchmarks            []Bench `json:"benchmarks"`
}

// Load reads and validates a snapshot file.
func Load(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("perfgate: %s: %w", path, err)
	}
	if len(s.Benchmarks) == 0 {
		return nil, fmt.Errorf("perfgate: %s holds no benchmarks", path)
	}
	return &s, nil
}

// Delta is the comparison of one benchmark against the snapshot.
type Delta struct {
	Name       string
	BaseNs     float64
	CurNs      float64
	Ratio      float64 // CurNs / BaseNs
	BaseAllocs int64
	CurAllocs  int64
	BaseBytes  int64
	CurBytes   int64
	OK         bool
	Reason     string // why the gate failed, empty when OK
}

// Compare checks cur against the snapshot. A benchmark fails when its
// ns/op exceeds the snapshot by more than nsThreshold (a ratio, e.g.
// 1.8 = 80% slower), when allocs/op grew at all (allocation counts are
// deterministic, so any growth is a real regression), or when a
// snapshot benchmark was not measured.
//
// Large improvements fail the gate too: when ns/op drops below
// 1/improveThreshold of the snapshot (e.g. improveThreshold 1.5 = more
// than 1.5x faster), the snapshot no longer describes the code and a
// regression back to the old level would slip through unnoticed — the
// fix is to refresh BENCH_sim.json (make bench-snapshot), which makes
// the speedup part of the enforced baseline. improveThreshold <= 0
// disables that side of the gate. The bool result is true only when
// every snapshot entry passes.
func Compare(snap *Snapshot, cur []Bench, nsThreshold, improveThreshold float64) ([]Delta, bool) {
	byName := make(map[string]Bench, len(cur))
	for _, b := range cur {
		byName[b.Name] = b
	}
	deltas := make([]Delta, 0, len(snap.Benchmarks))
	allOK := true
	for _, base := range snap.Benchmarks {
		d := Delta{
			Name:       base.Name,
			BaseNs:     base.NsPerOp,
			BaseAllocs: base.AllocsPerOp,
			BaseBytes:  base.BytesPerOp,
		}
		c, ok := byName[base.Name]
		if !ok {
			d.Reason = "not measured"
		} else {
			d.CurNs = c.NsPerOp
			d.CurAllocs = c.AllocsPerOp
			d.CurBytes = c.BytesPerOp
			if base.NsPerOp > 0 {
				d.Ratio = c.NsPerOp / base.NsPerOp
			}
			switch {
			case d.Ratio > nsThreshold:
				d.Reason = fmt.Sprintf("ns/op %.2fx over snapshot (limit %.2fx)", d.Ratio, nsThreshold)
			case c.AllocsPerOp > base.AllocsPerOp:
				d.Reason = fmt.Sprintf("allocs/op grew %d -> %d", base.AllocsPerOp, c.AllocsPerOp)
			case improveThreshold > 0 && d.Ratio > 0 && d.Ratio*improveThreshold < 1:
				d.Reason = fmt.Sprintf("ns/op improved %.2fx, beyond the %.2fx gate — stale snapshot, refresh with `make bench-snapshot`",
					1/d.Ratio, improveThreshold)
			}
		}
		d.OK = d.Reason == ""
		if !d.OK {
			allOK = false
		}
		deltas = append(deltas, d)
	}
	return deltas, allOK
}

// Table renders the deltas as an aligned, readable report.
func Table(deltas []Delta, nsThreshold, improveThreshold float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-32s %10s %10s %7s %8s %8s  %s\n",
		"benchmark", "base ns/op", "cur ns/op", "ratio", "allocs", "status", "")
	for _, d := range deltas {
		status, note := "ok", ""
		if !d.OK {
			status, note = "FAIL", d.Reason
		}
		fmt.Fprintf(&b, "%-32s %10.1f %10.1f %6.2fx %4d->%-3d %8s  %s\n",
			d.Name, d.BaseNs, d.CurNs, d.Ratio, d.BaseAllocs, d.CurAllocs, status, note)
	}
	fmt.Fprintf(&b, "gate: ns/op limit %.2fx of snapshot; allocs/op may not grow", nsThreshold)
	if improveThreshold > 0 {
		fmt.Fprintf(&b, "; improvements beyond %.2fx require a snapshot refresh", improveThreshold)
	}
	b.WriteByte('\n')
	return b.String()
}
