package perfgate

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// LoadHistory reads a benchmark history file — one compact Snapshot
// JSON document per line, appended by scripts/bench_snapshot.sh each
// time the committed baseline is regenerated — and returns the
// trailing n entries in file (chronological) order. n <= 0 returns
// every entry. Unlike Load, a history line may legitimately predate a
// benchmark that exists today, so the per-line schema is validated but
// benchmark sets are allowed to differ between lines.
func LoadHistory(path string, n int) ([]Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var snaps []Snapshot
	for i, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		var s Snapshot
		if err := json.Unmarshal([]byte(line), &s); err != nil {
			return nil, fmt.Errorf("perfgate: %s:%d: %w", path, i+1, err)
		}
		if len(s.Benchmarks) == 0 {
			return nil, fmt.Errorf("perfgate: %s:%d holds no benchmarks", path, i+1)
		}
		snaps = append(snaps, s)
	}
	if len(snaps) == 0 {
		return nil, fmt.Errorf("perfgate: %s holds no history entries", path)
	}
	if n > 0 && len(snaps) > n {
		snaps = snaps[len(snaps)-n:]
	}
	return snaps, nil
}

// HistoryTable renders snapshots (chronological order, as LoadHistory
// returns them) as a benchmark-by-date ns/op matrix, with a trend
// column comparing the newest entry against the oldest. Benchmarks
// keep the order of their first appearance; entries missing from a
// snapshot render as "-". A final row tracks the cold-run wall time
// the same way, when recorded.
func HistoryTable(snaps []Snapshot) string {
	var names []string
	seen := make(map[string]bool)
	for _, s := range snaps {
		for _, b := range s.Benchmarks {
			if !seen[b.Name] {
				seen[b.Name] = true
				names = append(names, b.Name)
			}
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%-32s", "benchmark (ns/op)")
	for _, s := range snaps {
		fmt.Fprintf(&b, " %10s", s.Date)
	}
	fmt.Fprintf(&b, "  %s\n", "trend")
	for _, name := range names {
		fmt.Fprintf(&b, "%-32s", name)
		var first, last float64
		for _, s := range snaps {
			ns, ok := findBench(s, name)
			if !ok {
				fmt.Fprintf(&b, " %10s", "-")
				continue
			}
			if first == 0 {
				first = ns
			}
			last = ns
			fmt.Fprintf(&b, " %10.1f", ns)
		}
		b.WriteString(trend(first, last))
		b.WriteByte('\n')
	}
	var firstCold, lastCold float64
	anyCold := false
	fmt.Fprintf(&b, "%-32s", "cold `-quick all` (s)")
	for _, s := range snaps {
		if s.ColdWallSeconds <= 0 {
			fmt.Fprintf(&b, " %10s", "-")
			continue
		}
		anyCold = true
		if firstCold == 0 {
			firstCold = s.ColdWallSeconds
		}
		lastCold = s.ColdWallSeconds
		fmt.Fprintf(&b, " %10.2f", s.ColdWallSeconds)
	}
	if anyCold {
		b.WriteString(trend(firstCold, lastCold))
	}
	b.WriteByte('\n')
	return b.String()
}

func findBench(s Snapshot, name string) (float64, bool) {
	for _, b := range s.Benchmarks {
		if b.Name == name {
			return b.NsPerOp, true
		}
	}
	return 0, false
}

// trend formats newest/oldest as a signed percentage; a single data
// point has no trend.
func trend(first, last float64) string {
	if first <= 0 || last <= 0 || first == last {
		return ""
	}
	return fmt.Sprintf("  %+.1f%%", 100*(last-first)/first)
}
