package perfgate

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func snap() *Snapshot {
	return &Snapshot{
		Benchmarks: []Bench{
			{Name: "BenchmarkA", NsPerOp: 500, AllocsPerOp: 0},
			{Name: "BenchmarkB", NsPerOp: 1000, AllocsPerOp: 2},
		},
	}
}

func TestComparePasses(t *testing.T) {
	cur := []Bench{
		{Name: "BenchmarkA", NsPerOp: 520, AllocsPerOp: 0},
		{Name: "BenchmarkB", NsPerOp: 700, AllocsPerOp: 2}, // improvement
	}
	deltas, ok := Compare(snap(), cur, 1.8, 1.5)
	if !ok {
		t.Fatalf("healthy run must pass: %+v", deltas)
	}
	for _, d := range deltas {
		if !d.OK {
			t.Fatalf("unexpected failure: %+v", d)
		}
	}
}

func TestCompareFailsOnTwoXSlowdown(t *testing.T) {
	// The acceptance scenario: an injected 2x slowdown must trip the
	// default-tolerance gate.
	cur := []Bench{
		{Name: "BenchmarkA", NsPerOp: 1000, AllocsPerOp: 0}, // 2.0x
		{Name: "BenchmarkB", NsPerOp: 1050, AllocsPerOp: 2},
	}
	deltas, ok := Compare(snap(), cur, 1.8, 1.5)
	if ok {
		t.Fatal("a 2x slowdown must fail the gate")
	}
	if deltas[0].OK || !strings.Contains(deltas[0].Reason, "ns/op") {
		t.Fatalf("slowdown not attributed: %+v", deltas[0])
	}
	if !deltas[1].OK {
		t.Fatalf("the healthy benchmark must still pass: %+v", deltas[1])
	}
}

func TestCompareFailsOnAllocGrowth(t *testing.T) {
	cur := []Bench{
		{Name: "BenchmarkA", NsPerOp: 500, AllocsPerOp: 1}, // 0 -> 1
		{Name: "BenchmarkB", NsPerOp: 1000, AllocsPerOp: 2},
	}
	deltas, ok := Compare(snap(), cur, 1.8, 1.5)
	if ok || deltas[0].OK {
		t.Fatal("any allocs/op growth must fail the gate")
	}
	if !strings.Contains(deltas[0].Reason, "allocs") {
		t.Fatalf("alloc growth not attributed: %+v", deltas[0])
	}
}

func TestCompareFailsOnLargeImprovement(t *testing.T) {
	// A 2x speedup means the committed snapshot no longer describes the
	// code: the gate must demand a refresh rather than silently letting
	// the new baseline float.
	cur := []Bench{
		{Name: "BenchmarkA", NsPerOp: 250, AllocsPerOp: 0}, // 2x faster
		{Name: "BenchmarkB", NsPerOp: 1000, AllocsPerOp: 2},
	}
	deltas, ok := Compare(snap(), cur, 1.8, 1.5)
	if ok || deltas[0].OK {
		t.Fatal("an improvement beyond the gate must fail until the snapshot is refreshed")
	}
	if !strings.Contains(deltas[0].Reason, "bench-snapshot") {
		t.Fatalf("improvement failure must point at the snapshot refresh: %+v", deltas[0])
	}
	if !deltas[1].OK {
		t.Fatalf("the unchanged benchmark must still pass: %+v", deltas[1])
	}
}

func TestCompareImprovementGateDisabled(t *testing.T) {
	cur := []Bench{
		{Name: "BenchmarkA", NsPerOp: 250, AllocsPerOp: 0},
		{Name: "BenchmarkB", NsPerOp: 400, AllocsPerOp: 2},
	}
	if _, ok := Compare(snap(), cur, 1.8, 0); !ok {
		t.Fatal("improveThreshold 0 must disable the improvement gate")
	}
}

func TestCompareFailsOnMissingBenchmark(t *testing.T) {
	cur := []Bench{{Name: "BenchmarkA", NsPerOp: 500}}
	_, ok := Compare(snap(), cur, 1.8, 1.5)
	if ok {
		t.Fatal("a snapshot benchmark that was not measured must fail")
	}
}

func TestTableRendersStatus(t *testing.T) {
	cur := []Bench{
		{Name: "BenchmarkA", NsPerOp: 1200, AllocsPerOp: 0},
		{Name: "BenchmarkB", NsPerOp: 900, AllocsPerOp: 2},
	}
	deltas, _ := Compare(snap(), cur, 1.8, 1.5)
	out := Table(deltas, 1.8, 1.5)
	if !strings.Contains(out, "FAIL") || !strings.Contains(out, "ok") {
		t.Fatalf("delta table must mark pass/fail:\n%s", out)
	}
	if !strings.Contains(out, "2.40x") {
		t.Fatalf("delta table must show the ratio:\n%s", out)
	}
}

func TestLoadCommittedSnapshot(t *testing.T) {
	// The real BENCH_sim.json two directories up must always parse.
	s, err := Load(filepath.Join("..", "..", "BENCH_sim.json"))
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, b := range s.Benchmarks {
		names[b.Name] = true
		if b.NsPerOp <= 0 {
			t.Fatalf("snapshot entry %q has no ns/op", b.Name)
		}
	}
	for _, want := range []string{"BenchmarkRendezvousLoadHit", "BenchmarkRendezvousTwoThreads",
		"BenchmarkStoreCommit", "BenchmarkStoreDMBFull"} {
		if !names[want] {
			t.Fatalf("snapshot missing %s", want)
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "bad.json")
	os.WriteFile(p, []byte("{}"), 0o644)
	if _, err := Load(p); err == nil {
		t.Fatal("empty snapshot must be rejected")
	}
	if _, err := Load(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file must be rejected")
	}
}
