package perfgate

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeHistory(t *testing.T, lines ...string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "BENCH_history.jsonl")
	if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const (
	histLine1 = `{"date":"2026-06-01","go":"go1.24","cpu":"x","gomaxprocs":8,"cold_wall_seconds":90.0,"benchmarks":[{"name":"BenchmarkStoreCommit","iters":100,"ns_per_op":50.0,"bytes_per_op":0,"allocs_per_op":0}]}`
	histLine2 = `{"date":"2026-07-01","go":"go1.24","cpu":"x","gomaxprocs":8,"cold_wall_seconds":60.0,"benchmarks":[{"name":"BenchmarkStoreCommit","iters":100,"ns_per_op":40.0,"bytes_per_op":0,"allocs_per_op":0},{"name":"BenchmarkRendezvous","iters":100,"ns_per_op":900.0,"bytes_per_op":0,"allocs_per_op":0}]}`
	histLine3 = `{"date":"2026-08-01","go":"go1.24","cpu":"x","gomaxprocs":8,"benchmarks":[{"name":"BenchmarkStoreCommit","iters":100,"ns_per_op":30.0,"bytes_per_op":0,"allocs_per_op":0},{"name":"BenchmarkRendezvous","iters":100,"ns_per_op":850.0,"bytes_per_op":0,"allocs_per_op":0}]}`
)

func TestLoadHistoryOrderAndTail(t *testing.T) {
	path := writeHistory(t, histLine1, "", histLine2, histLine3)

	all, err := LoadHistory(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 3 || all[0].Date != "2026-06-01" || all[2].Date != "2026-08-01" {
		t.Fatalf("full history wrong: %+v", all)
	}

	tail, err := LoadHistory(path, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(tail) != 2 || tail[0].Date != "2026-07-01" {
		t.Fatalf("tail -n 2 wrong: %+v", tail)
	}
}

func TestLoadHistoryRejectsBadLines(t *testing.T) {
	if _, err := LoadHistory(writeHistory(t, histLine1, "{not json"), 0); err == nil {
		t.Error("malformed line accepted")
	}
	if _, err := LoadHistory(writeHistory(t, `{"date":"2026-06-01","benchmarks":[]}`), 0); err == nil {
		t.Error("empty-benchmark line accepted")
	}
	if _, err := LoadHistory(writeHistory(t, " "), 0); err == nil {
		t.Error("empty file accepted")
	}
	if _, err := LoadHistory(filepath.Join(t.TempDir(), "absent.jsonl"), 0); err == nil {
		t.Error("missing file accepted")
	}
}

func TestHistoryTable(t *testing.T) {
	path := writeHistory(t, histLine1, histLine2, histLine3)
	snaps, err := LoadHistory(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	out := HistoryTable(snaps)

	for _, want := range []string{
		"2026-06-01", "2026-07-01", "2026-08-01",
		"BenchmarkStoreCommit", "BenchmarkRendezvous",
		"-40.0%",  // StoreCommit 50 -> 30
		"-5.6%",   // Rendezvous 900 -> 850 (first appears mid-history)
		"-33.3%",  // cold wall 90 -> 60; absent in line 3 renders "-"
		"cold `-quick all`",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("history table missing %q:\n%s", want, out)
		}
	}
	// The benchmark absent from the first snapshot renders a placeholder
	// in its column, not a zero.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "BenchmarkRendezvous") && !strings.Contains(line, "-") {
			t.Errorf("missing-entry placeholder absent: %q", line)
		}
	}
}

func TestHistoryTableSingleEntryHasNoTrend(t *testing.T) {
	snaps, err := LoadHistory(writeHistory(t, histLine1), 0)
	if err != nil {
		t.Fatal(err)
	}
	if out := HistoryTable(snaps); strings.Contains(out, "%") {
		t.Errorf("single entry should have no trend column:\n%s", out)
	}
}
