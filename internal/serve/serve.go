// Package serve is the embedded observability server behind
// `armbar -serve :PORT`. It exposes the run's live state over HTTP:
//
//	/healthz      liveness ("ok")
//	/metrics      Prometheus text from the process's metrics registry,
//	              with the cycle-attribution profile refreshed into it
//	              on every scrape
//	/progress     JSON per-experiment and per-cell run state
//	              (progress.Report)
//	/profile      JSON cycle-attribution rollup (sim.ProfileReport)
//	/debug/pprof  the standard Go runtime profiles
//
// The server only *reads*: the hot paths publish through the lock-free
// metrics registry, the profile collector's per-machine fold, and the
// progress tracker's atomics, so scraping never blocks a simulation
// and an idle server costs nothing. All sources are optional — absent
// ones serve zero documents rather than 404s, so dashboards behave the
// same whichever flags a run was started with.
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"armbar/internal/metrics"
	"armbar/internal/progress"
	"armbar/internal/sim"
)

// Options are the data sources the server reads. Any field may be nil.
type Options struct {
	Registry *metrics.Registry
	Profile  *sim.ProfileCollector
	Tracker  *progress.Tracker
}

// Server is the embedded HTTP server.
type Server struct {
	opts Options
	srv  *http.Server
	ln   net.Listener
}

// New builds a server over the given sources.
func New(opts Options) *Server {
	return &Server{opts: opts}
}

// Handler returns the server's routing table; exposed separately so
// tests can drive it through httptest without binding a port.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/progress", s.handleProgress)
	mux.HandleFunc("/profile", s.handleProfile)
	// net/http/pprof registers on http.DefaultServeMux at import; wire
	// the handlers explicitly so this mux stays self-contained and the
	// import has no global side effect we rely on.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Start binds addr (":0" picks a free port) and serves in the
// background. It returns the bound address, e.g. "127.0.0.1:8377".
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("serve: %w", err)
	}
	s.ln = ln
	s.srv = &http.Server{Handler: s.Handler()}
	go s.srv.Serve(ln)
	return ln.Addr().String(), nil
}

// Close shuts the server down, letting in-flight scrapes finish
// briefly.
func (s *Server) Close() error {
	if s.srv == nil {
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	return s.srv.Shutdown(ctx)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if s.opts.Registry == nil {
		return
	}
	if s.opts.Profile != nil {
		// Refresh the attribution gauges on every scrape: machines fold
		// into the collector, not the registry, so this is the bridge.
		p := s.opts.Profile.Snapshot()
		p.MetricsInto(s.opts.Registry)
	}
	s.opts.Registry.WriteProm(w)
}

func (s *Server) handleProgress(w http.ResponseWriter, r *http.Request) {
	var rep progress.Report
	if s.opts.Tracker != nil {
		rep = s.opts.Tracker.Snapshot()
	}
	writeJSON(w, rep)
}

func (s *Server) handleProfile(w http.ResponseWriter, r *http.Request) {
	var rep sim.ProfileReport
	if s.opts.Profile != nil {
		p := s.opts.Profile.Snapshot()
		rep = p.Report()
	}
	writeJSON(w, rep)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
