package serve_test

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"armbar/internal/metrics"
	"armbar/internal/platform"
	"armbar/internal/progress"
	"armbar/internal/serve"
	"armbar/internal/sim"
)

// liveSources builds a server over real sources fed by one small
// profiled simulation.
func liveSources(t *testing.T) (*serve.Server, *sim.ProfileCollector) {
	t.Helper()
	pc := sim.NewProfileCollector()
	sim.SetGlobalProfile(pc)
	t.Cleanup(func() { sim.SetGlobalProfile(nil) })

	reg := metrics.NewRegistry()
	m := sim.New(sim.Config{Plat: platform.Kunpeng916(), Mode: sim.WMM, Seed: 42})
	a := m.Alloc(1)
	m.Spawn(0, func(th *sim.Thread) {
		for i := uint64(0); i < 20; i++ {
			th.Store(a, i)
			th.Work(3)
		}
	})
	m.Run()
	m.MetricsInto(reg)

	tr := progress.New([]string{"fig4", "fig5"})
	tr.StartExperiment("fig4")
	tr.CellQueued()
	tr.CellStarted()
	tr.CellDone()
	tr.FinishExperiment("fig4", 1, 0, 0.2)

	return serve.New(serve.Options{Registry: reg, Profile: pc, Tracker: tr}), pc
}

func get(t *testing.T, h http.Handler, path string) (int, string, http.Header) {
	t.Helper()
	req := httptest.NewRequest("GET", path, nil)
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	return rr.Code, rr.Body.String(), rr.Result().Header
}

func TestHealthz(t *testing.T) {
	s, _ := liveSources(t)
	code, body, _ := get(t, s.Handler(), "/healthz")
	if code != 200 || body != "ok\n" {
		t.Fatalf("healthz: %d %q", code, body)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	s, pc := liveSources(t)
	code, body, hdr := get(t, s.Handler(), "/metrics")
	if code != 200 {
		t.Fatalf("metrics status %d", code)
	}
	if ct := hdr.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("content type %q lacks the Prometheus text version", ct)
	}
	for _, want := range []string{
		"sim_machines_total 1",
		`sim_profile_cycles{cause="work"}`,
		"sim_profile_gaps 0",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
	// The profile gauges must track the collector across scrapes.
	p := pc.Snapshot()
	if !p.Conserved() {
		t.Fatal("source profile not conserved")
	}
	_, body2, _ := get(t, s.Handler(), "/metrics")
	if body2 != body {
		t.Error("idle rescrape changed /metrics output")
	}
}

func TestProgressEndpoint(t *testing.T) {
	s, _ := liveSources(t)
	code, body, hdr := get(t, s.Handler(), "/progress")
	if code != 200 || !strings.Contains(hdr.Get("Content-Type"), "application/json") {
		t.Fatalf("progress: %d %q", code, hdr.Get("Content-Type"))
	}
	var rep progress.Report
	if err := json.Unmarshal([]byte(body), &rep); err != nil {
		t.Fatalf("progress not JSON: %v\n%s", err, body)
	}
	if rep.ExperimentsTotal != 2 || rep.ExperimentsDone != 1 || rep.Cells.Done != 1 {
		t.Fatalf("progress content: %+v", rep)
	}
}

func TestProfileEndpoint(t *testing.T) {
	s, pc := liveSources(t)
	_, body, _ := get(t, s.Handler(), "/profile")
	var rep sim.ProfileReport
	if err := json.Unmarshal([]byte(body), &rep); err != nil {
		t.Fatalf("profile not JSON: %v", err)
	}
	p := pc.Snapshot()
	want := p.Report()
	if rep.Machines != want.Machines || rep.Gaps != 0 || len(rep.Causes) == 0 {
		t.Fatalf("profile content: %+v", rep)
	}
}

func TestPprofEndpoint(t *testing.T) {
	s, _ := liveSources(t)
	code, body, _ := get(t, s.Handler(), "/debug/pprof/")
	if code != 200 || !strings.Contains(body, "goroutine") {
		t.Fatalf("pprof index: %d", code)
	}
}

func TestNilSourcesServeEmptyDocuments(t *testing.T) {
	s := serve.New(serve.Options{})
	for _, path := range []string{"/healthz", "/metrics", "/progress", "/profile"} {
		code, _, _ := get(t, s.Handler(), path)
		if code != 200 {
			t.Errorf("%s with nil sources: status %d", path, code)
		}
	}
}

func TestStartBindsAndServes(t *testing.T) {
	s, _ := liveSources(t)
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || string(body) != "ok\n" {
		t.Fatalf("live healthz: %d %q", resp.StatusCode, body)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}
