package dedup

import (
	"testing"

	"armbar/internal/platform"
)

func run(t *testing.T, buf Buffer, w Workload, cross bool) Result {
	t.Helper()
	r := Run(Config{
		Plat:      platform.Kunpeng916(),
		Buffer:    buf,
		W:         w,
		Seed:      23,
		CrossNode: cross,
	})
	return r
}

func small() Workload { return Workload{Name: "Small", Chunks: 400, Work: 60} }

func TestPipelineCorrectAllBuffers(t *testing.T) {
	for _, b := range []Buffer{Q, RB, RBP} {
		for _, cross := range []bool{false, true} {
			r := run(t, b, small(), cross)
			if !r.Valid {
				t.Errorf("%v (cross=%v): output checksum mismatch (unique=%d)", b, cross, r.Unique)
			}
		}
	}
}

func TestDedupActuallyDeduplicates(t *testing.T) {
	r := run(t, RBP, small(), false)
	if r.Unique >= r.Chunks {
		t.Fatalf("dedup had no effect: %d unique of %d", r.Unique, r.Chunks)
	}
	if r.Unique < r.Chunks/2 {
		t.Fatalf("dedup dropped too much: %d unique of %d", r.Unique, r.Chunks)
	}
}

func TestFig6dPilotBeatsQueue(t *testing.T) {
	// Figure 6d: RB-P achieves ~10% over the lock-based queue; plain RB
	// may even lose to Q (it adds contention on the counters).
	for _, w := range []Workload{small()} {
		q := run(t, Q, w, false).Throughput()
		rbp := run(t, RBP, w, false).Throughput()
		if rbp < 1.05*q {
			t.Errorf("%s: RB-P (%g) should beat Q (%g) by a visible margin", w.Name, rbp, q)
		}
	}
}

func TestFig6dRingMicrobenchSpeedups(t *testing.T) {
	// §4.5: applying Pilot to the ring buffer gives sizeable speedups
	// same-node and larger cross-node.
	w := small()
	same := run(t, RBP, w, false).Throughput() / run(t, RB, w, false).Throughput()
	cross := run(t, RBP, w, true).Throughput() / run(t, RB, w, true).Throughput()
	if same < 1.1 {
		t.Errorf("same-node RB-P/RB = %.2fx, want > 1.1x", same)
	}
	if cross < same {
		t.Errorf("cross-node gain (%.2fx) should exceed same-node (%.2fx)", cross, same)
	}
}

func TestWorkloadsScale(t *testing.T) {
	ws := Workloads()
	if len(ws) != 3 {
		t.Fatalf("want 3 workloads, got %d", len(ws))
	}
	for i := 1; i < len(ws); i++ {
		if ws[i].Chunks <= ws[i-1].Chunks {
			t.Errorf("workload %s should be larger than %s", ws[i].Name, ws[i-1].Name)
		}
	}
}

func TestDeterministic(t *testing.T) {
	a := run(t, RBP, small(), true)
	b := run(t, RBP, small(), true)
	if a.Cycles != b.Cycles {
		t.Fatalf("non-deterministic: %g vs %g", a.Cycles, b.Cycles)
	}
}

func TestParallelHashStageCorrect(t *testing.T) {
	for _, workers := range []int{2, 3, 4} {
		for _, b := range []Buffer{Q, RB, RBP} {
			r := Run(Config{
				Plat:        platform.Kunpeng916(),
				Buffer:      b,
				W:           small(),
				Seed:        31,
				HashWorkers: workers,
			})
			if !r.Valid {
				t.Errorf("workers=%d buffer=%v: checksum mismatch (unique=%d)", workers, b, r.Unique)
			}
		}
	}
}

func TestParallelHashStageScales(t *testing.T) {
	// With a compute-bound hash stage, extra workers raise throughput.
	w := Workload{Name: "scale", Chunks: 400, Work: 3600}
	one := Run(Config{Plat: platform.Kunpeng916(), Buffer: RBP, W: w, Seed: 5,
		HashWorkers: 1}).Throughput()
	three := Run(Config{Plat: platform.Kunpeng916(), Buffer: RBP, W: w, Seed: 5,
		HashWorkers: 3}).Throughput()
	if three < 1.5*one {
		t.Errorf("3 workers (%g) should clearly beat 1 (%g)", three, one)
	}
}
