// Package dedup reproduces the paper's PARSEC-dedup experiment (§4.5,
// Figure 6d): a pipeline-parallel compressor whose stages communicate
// through an inter-stage buffer. Three buffer implementations are
// compared — the original lock-based queue (Q), a lock-free
// single-producer single-consumer ring buffer (RB), and the ring
// buffer with Pilot applied (RB-P). As in the paper, file I/O is
// removed: the input is synthesized in memory and the output is
// gathered in memory, so the stage-to-stage communication dominates.
//
// The pipeline has three stages, mirroring dedup's structure:
//
//	chunk  — split the input stream into chunks (fine-grained work)
//	hash   — fingerprint each chunk and deduplicate against a table
//	store  — "compress" unique chunks (work proportional to size)
//
// Every stage runs on its own simulated core; each hop goes through
// the configured buffer.
package dedup

import (
	"fmt"

	"armbar/internal/core"
	"armbar/internal/isa"
	"armbar/internal/platform"
	"armbar/internal/sim"
	"armbar/internal/topo"
)

// Buffer selects the inter-stage communication buffer.
type Buffer int

const (
	// Q is the original lock-guarded queue (a ticket-style lock word
	// protects head/tail updates).
	Q Buffer = iota
	// RB is a lock-free SPSC ring with the conventional counter+barrier
	// protocol (DMB ld / DMB st, the best Figure-6a combo).
	RB
	// RBP is the ring buffer with Pilot slots (no publication barrier,
	// no producer counter).
	RBP
)

func (b Buffer) String() string {
	switch b {
	case Q:
		return "Q"
	case RB:
		return "RB"
	case RBP:
		return "RB-P"
	default:
		return fmt.Sprintf("Buffer(%d)", int(b))
	}
}

// Workload is one of the paper's three input sizes.
type Workload struct {
	Name   string
	Chunks int // number of chunks flowing through the pipeline
	Work   int // per-chunk nops in the hash stage
}

// Workloads mirrors the paper's Small (672MB) / Middle (1.1GB) /
// Large (3.5GB) inputs, scaled to simulation size: the chunk count
// grows with the input, per-chunk work stays fixed. The work is large
// enough that the pipeline is compute-bound, as real dedup is — buffer
// choice then moves throughput by the ~10% the paper reports, not by
// multiples. (The low-work micro regime lives in the tests, where the
// paper's 1.8-2.2x ring-buffer speedups are checked.)
func Workloads() []Workload {
	return []Workload{
		{Name: "Small", Chunks: 600, Work: 3600},
		{Name: "Middle", Chunks: 1000, Work: 3600},
		{Name: "Large", Chunks: 1600, Work: 3600},
	}
}

// Config describes one pipeline run.
type Config struct {
	Plat   *platform.Platform
	Buffer Buffer
	W      Workload
	Slots  int // ring capacity per hop (power of two, default 8)
	Seed   int64
	// CrossNode places consecutive stages on different NUMA nodes when
	// the platform has them.
	CrossNode bool
	// HashWorkers parallelizes the middle stage (default 1): chunks are
	// routed to workers by fingerprint, each with its own inbound and
	// outbound hop, the way PARSEC dedup fans its pipeline out.
	HashWorkers int
}

// Result is one run's outcome.
type Result struct {
	Config  Config
	Cycles  float64
	Elapsed float64
	Chunks  int
	Unique  int  // chunks surviving dedup
	Valid   bool // output checksum matches a sequential reference
	Stats   sim.Stats
}

// Throughput returns chunks per second ("compress speed").
func (r Result) Throughput() float64 {
	if r.Elapsed == 0 {
		return 0
	}
	return float64(r.Chunks) / r.Elapsed
}

// chunkValue synthesizes chunk i's content fingerprint; every fourth
// chunk repeats an earlier one so the dedup stage has real hits.
func chunkValue(i int) uint64 {
	if i%4 == 3 {
		return chunkValue(i / 2 >> 1 << 1) // repeat an earlier even chunk
	}
	return uint64(i)*0x9E3779B97F4A7C15 + 1
}

// reference computes the expected output checksum sequentially.
func reference(w Workload) (checksum uint64, unique int) {
	seen := make(map[uint64]bool)
	for i := 0; i < w.Chunks; i++ {
		v := chunkValue(i)
		if !seen[v] {
			seen[v] = true
			unique++
			checksum ^= v * 0x94D049BB133111EB
		}
	}
	return checksum, unique
}

// Run executes the pipeline.
func Run(cfg Config) Result {
	if cfg.Slots == 0 {
		cfg.Slots = 8
	}
	if cfg.HashWorkers <= 0 {
		cfg.HashWorkers = 1
	}
	m := sim.New(sim.Config{Plat: cfg.Plat, Mode: sim.WMM, Seed: cfg.Seed})
	cores := stageCores(cfg.Plat, cfg.CrossNode)
	nw := cfg.HashWorkers

	// One inbound and one outbound hop per hash worker.
	in := make([]*hop, nw)
	out := make([]*hop, nw)
	for w := 0; w < nw; w++ {
		in[w] = newHop(m, cfg, 1+2*w)
		out[w] = newHop(m, cfg, 2+2*w)
	}
	route := func(v uint64) int { return int((v * 0x9E3779B97F4A7C15 >> 40) % uint64(nw)) }

	var gotChecksum uint64
	var gotUnique int

	// Stage 1: chunk the input, route by fingerprint.
	m.Spawn(cores[0], func(t *sim.Thread) {
		for i := 0; i < cfg.W.Chunks; i++ {
			t.Nops(cfg.W.Work / 3) // chunking work
			v := chunkValue(i)
			in[route(v)].send(t, v)
		}
		for w := 0; w < nw; w++ {
			in[w].send(t, 0) // end-of-stream per worker
		}
	})

	// Stage 2: hash + dedup, one worker per routing partition.
	workerCore := func(w int) topo.CoreID {
		c := int(cores[1]) + w
		return topo.CoreID(c % cfg.Plat.Sys.NumCores())
	}
	for w := 0; w < nw; w++ {
		w := w
		m.Spawn(workerCore(w), func(t *sim.Thread) {
			seen := make(map[uint64]bool)
			for {
				v := in[w].recv(t)
				if v == 0 {
					out[w].send(t, 0)
					return
				}
				t.Nops(cfg.W.Work) // fingerprinting work
				if seen[v] {
					continue // duplicate: drop
				}
				seen[v] = true
				out[w].send(t, v)
			}
		})
	}

	// Stage 3: "compress" and gather output in memory, draining every
	// worker's outbound hop until all signalled end-of-stream.
	m.Spawn(cores[2], func(t *sim.Thread) {
		done := make([]bool, nw)
		remaining := nw
		for remaining > 0 {
			progress := false
			for w := 0; w < nw; w++ {
				if done[w] {
					continue
				}
				v, ok := out[w].tryRecv(t)
				if !ok {
					continue
				}
				progress = true
				if v == 0 {
					done[w] = true
					remaining--
					continue
				}
				t.Nops(cfg.W.Work / 2) // compression work
				gotChecksum ^= v * 0x94D049BB133111EB
				gotUnique++
			}
			if !progress {
				t.Nops(8)
			}
		}
	})

	cycles := m.Run()
	wantChecksum, wantUnique := reference(cfg.W)
	return Result{
		Config:  cfg,
		Cycles:  cycles,
		Elapsed: m.Seconds(cycles),
		Chunks:  cfg.W.Chunks,
		Unique:  gotUnique,
		Valid:   gotChecksum == wantChecksum && gotUnique == wantUnique,
		Stats:   m.Stats(),
	}
}

// stageCores places the three stages.
func stageCores(p *platform.Platform, cross bool) [3]topo.CoreID {
	if cross && p.Sys.NumNodes() > 1 {
		n0, n1 := p.Sys.NodeCores(0), p.Sys.NodeCores(1)
		return [3]topo.CoreID{n0[0], n1[0], n0[4]}
	}
	return [3]topo.CoreID{0, 1, 2}
}

// hop is one stage-to-stage connection in the configured flavor.
// Payload zero is reserved for end-of-stream (chunkValue never
// produces zero).
type hop struct {
	cfg Config

	// Q flavor: ticket-lock words + queue state.
	lockNext, lockServing uint64
	qMeta                 uint64 // +0 head index, +8 tail index
	qSlots                uint64 // ring storage, one line per slot

	// RB flavor: counters + slots.
	prodCnt, consCnt uint64
	slots            uint64

	// RB-P flavor.
	pilotData uint64
	pilotFlag uint64
	pool      []uint64
	pOld      []uint64 // producer-side last stored word per slot
	pFb       []uint64
	cOld      []uint64 // consumer-side last seen word per slot
	cFb       []uint64
	pCnt      uint64
	cCnt      uint64

	// Common local state.
	sendCnt uint64
	recvCnt uint64
}

func newHop(m *sim.Machine, cfg Config, id int) *hop {
	h := &hop{cfg: cfg}
	n := cfg.Slots
	switch cfg.Buffer {
	case Q:
		h.lockNext = m.Alloc(1)
		h.lockServing = m.Alloc(1)
		h.qMeta = m.Alloc(1)
		h.qSlots = m.Alloc(n)
	case RB:
		h.prodCnt = m.Alloc(1)
		h.consCnt = m.Alloc(1)
		h.slots = m.Alloc(n)
	case RBP:
		h.consCnt = m.Alloc(1)
		h.pilotData = m.Alloc(n)
		h.pilotFlag = m.Alloc(n)
		h.pool = core.HashPool(uint64(id) * 131)
		h.pOld = make([]uint64, n)
		h.pFb = make([]uint64, n)
		h.cOld = make([]uint64, n)
		h.cFb = make([]uint64, n)
	}
	return h
}

// send pushes one value through the hop.
func (h *hop) send(t *sim.Thread, v uint64) {
	n := uint64(h.cfg.Slots)
	switch h.cfg.Buffer {
	case Q:
		for {
			h.lockQ(t)
			head := t.Load(h.qMeta + 0)
			tail := t.Load(h.qMeta + 8)
			if tail-head < n {
				t.Store(h.qSlots+(tail%n)<<6, v)
				t.Barrier(isa.DMBSt)
				t.Store(h.qMeta+8, tail+1)
				h.unlockQ(t)
				return
			}
			h.unlockQ(t)
			t.Nops(16)
		}
	case RB:
		for h.sendCnt-t.Load(h.consCnt) >= n {
			t.Nops(8)
		}
		t.Barrier(isa.DMBLd)
		t.Store(h.slots+(h.sendCnt%n)<<6, v)
		t.Barrier(isa.DMBSt)
		h.sendCnt++
		t.Store(h.prodCnt, h.sendCnt)
	case RBP:
		for h.sendCnt-t.LoadAcquire(h.consCnt) >= n {
			t.Nops(8)
		}
		i := h.sendCnt % n
		enc := v ^ h.pool[h.sendCnt%uint64(core.PoolSize)]
		t.Nops(2)
		if enc == h.pOld[i] {
			h.pFb[i] ^= 1
			t.Store(h.pilotFlag+i<<6, h.pFb[i])
		} else {
			t.Store(h.pilotData+i<<6, enc)
			h.pOld[i] = enc
		}
		h.sendCnt++
	}
}

// recv pops one value from the hop.
func (h *hop) recv(t *sim.Thread) uint64 {
	n := uint64(h.cfg.Slots)
	switch h.cfg.Buffer {
	case Q:
		for {
			h.lockQ(t)
			head := t.Load(h.qMeta + 0)
			tail := t.Load(h.qMeta + 8)
			if tail > head {
				t.Barrier(isa.DMBLd)
				v := t.Load(h.qSlots + (head%n)<<6)
				t.Store(h.qMeta+0, head+1)
				h.unlockQ(t)
				return v
			}
			h.unlockQ(t)
			t.Nops(16)
		}
	case RB:
		for t.Load(h.prodCnt) == h.recvCnt {
			t.Nops(8)
		}
		t.Barrier(isa.DMBLd)
		v := t.Load(h.slots + (h.recvCnt%n)<<6)
		h.recvCnt++
		t.Store(h.consCnt, h.recvCnt)
		return v
	default: // RBP
		i := h.recvCnt % n
		for {
			if d := t.Load(h.pilotData + i<<6); d != h.cOld[i] {
				h.cOld[i] = d
				break
			}
			if f := t.Load(h.pilotFlag + i<<6); f != h.cFb[i] {
				h.cFb[i] = f
				break
			}
			t.Nops(8)
		}
		t.Nops(2)
		v := h.cOld[i] ^ h.pool[h.recvCnt%uint64(core.PoolSize)]
		h.recvCnt++
		t.Store(h.consCnt, h.recvCnt)
		return v
	}
}

// tryRecv pops one value without blocking; ok reports success. The
// end-of-stream zero counts as a value.
func (h *hop) tryRecv(t *sim.Thread) (uint64, bool) {
	n := uint64(h.cfg.Slots)
	switch h.cfg.Buffer {
	case Q:
		h.lockQ(t)
		head := t.Load(h.qMeta + 0)
		tail := t.Load(h.qMeta + 8)
		if tail == head {
			h.unlockQ(t)
			return 0, false
		}
		t.Barrier(isa.DMBLd)
		v := t.Load(h.qSlots + (head%n)<<6)
		t.Store(h.qMeta+0, head+1)
		h.unlockQ(t)
		return v, true
	case RB:
		if t.Load(h.prodCnt) == h.recvCnt {
			return 0, false
		}
		t.Barrier(isa.DMBLd)
		v := t.Load(h.slots + (h.recvCnt%n)<<6)
		h.recvCnt++
		t.Store(h.consCnt, h.recvCnt)
		return v, true
	default: // RBP
		i := h.recvCnt % n
		if d := t.Load(h.pilotData + i<<6); d != h.cOld[i] {
			h.cOld[i] = d
		} else if f := t.Load(h.pilotFlag + i<<6); f != h.cFb[i] {
			h.cFb[i] = f
		} else {
			return 0, false
		}
		t.Nops(2)
		v := h.cOld[i] ^ h.pool[h.recvCnt%uint64(core.PoolSize)]
		h.recvCnt++
		t.Store(h.consCnt, h.recvCnt)
		return v, true
	}
}

// lockQ / unlockQ implement the queue's ticket lock inline.
func (h *hop) lockQ(t *sim.Thread) {
	my := t.FetchAdd(h.lockNext, 1)
	for t.LoadAcquire(h.lockServing) != my {
		t.Nops(8)
	}
}

func (h *hop) unlockQ(t *sim.Thread) {
	t.Barrier(isa.DMBSt)
	s := t.Load(h.lockServing)
	t.Store(h.lockServing, s+1)
}
