// Code-version keying: every cache key embeds a digest of the Go
// source of the packages that can affect simulation output, so editing
// any of them silently invalidates the whole cache — stale entries are
// simply never matched again (and `armbar cache gc` reclaims them).
package cellcache

import (
	"crypto/sha256"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// simPackages lists the internal packages whose sources feed seeded
// experiment output, directly or through the figure generators. The
// list errs on the side of inclusion: hashing one package too many
// only costs a cold rerun after an edit, while missing one would serve
// stale results. cellcache itself is included so an encoding change
// can never decode old records into wrong values.
var simPackages = []string{
	"a64", "ablation", "absmodel", "ace", "barrier", "cellcache", "core",
	"dedup", "ds", "explore", "figures", "floorplan", "isa", "litmus",
	"locks", "mesi", "metrics", "pc", "platform", "prog", "report",
	"runner", "sb", "scenario", "sim", "topo",
}

var (
	codeHashOnce sync.Once
	codeHashVal  Key
)

// CodeHash returns the process-wide code-version digest, computed once
// (module source scan; the executable image as a fallback when the
// source tree is unavailable, e.g. an installed binary run elsewhere).
func CodeHash() Key {
	codeHashOnce.Do(func() { codeHashVal = computeCodeHash() })
	return codeHashVal
}

func computeCodeHash() Key {
	if root, ok := findModuleRoot(); ok {
		if k, err := HashPackages(root, simPackages); err == nil {
			return k
		}
	}
	// No readable source tree: fall back to the binary itself, which
	// still changes on every rebuild — over-invalidation, never
	// staleness.
	if exe, err := os.Executable(); err == nil {
		if data, err := os.ReadFile(exe); err == nil {
			return sha256.Sum256(data)
		}
	}
	// Last resort: a fixed sentinel. The cache still works, but code
	// edits no longer invalidate it; Open callers can surface
	// CodeHashHex to make this visible.
	return sha256.Sum256([]byte("armbar/cellcache: unknown code version"))
}

// HashPackages digests every non-test .go file of root/internal/<pkg>
// for the named packages, in sorted (package, file) order. Exported so
// tests can verify that a one-byte source edit flips the digest.
func HashPackages(root string, pkgs []string) (Key, error) {
	sorted := append([]string(nil), pkgs...)
	sort.Strings(sorted)
	h := sha256.New()
	files := 0
	for _, pkg := range sorted {
		dir := filepath.Join(root, "internal", pkg)
		ents, err := os.ReadDir(dir) // returns names sorted
		if err != nil {
			// A listed package may not exist yet (or anymore): record
			// its absence so adding it later flips the hash.
			h.Write([]byte("absent:" + pkg + "\x00"))
			continue
		}
		for _, e := range ents {
			name := e.Name()
			if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			data, err := os.ReadFile(filepath.Join(dir, name))
			if err != nil {
				return Key{}, err
			}
			h.Write([]byte(pkg + "/" + name + "\x00"))
			h.Write(data)
			h.Write([]byte{0})
			files++
		}
	}
	if files == 0 {
		return Key{}, os.ErrNotExist
	}
	var k Key
	h.Sum(k[:0])
	return k, nil
}

// findModuleRoot walks up from the working directory (and, failing
// that, from this file's compile-time location) looking for the armbar
// go.mod.
func findModuleRoot() (string, bool) {
	if wd, err := os.Getwd(); err == nil {
		if root, ok := rootFrom(wd); ok {
			return root, true
		}
	}
	if _, file, _, ok := runtime.Caller(0); ok {
		if root, ok := rootFrom(filepath.Dir(file)); ok {
			return root, true
		}
	}
	return "", false
}

func rootFrom(dir string) (string, bool) {
	for i := 0; i < 16; i++ {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil && strings.HasPrefix(strings.TrimSpace(string(data)), "module armbar") {
			return dir, true
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			break
		}
		dir = parent
	}
	return "", false
}
