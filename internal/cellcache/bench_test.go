package cellcache_test

import (
	"testing"

	"armbar/internal/simbench"
)

// The benchmark body lives in internal/simbench beside the simulator
// hot-path set, so `armbar perfcheck` reruns exactly what this wrapper
// measures against the committed BENCH_sim.json snapshot.

func BenchmarkCellCacheHit(b *testing.B) { simbench.CellCacheHit(b) }
