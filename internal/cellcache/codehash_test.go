package cellcache

import (
	"os"
	"path/filepath"
	"testing"
)

// writeTree lays out root/internal/<pkg>/<name> files for HashPackages.
func writeTree(t *testing.T, root string, files map[string]string) {
	t.Helper()
	for rel, content := range files {
		path := filepath.Join(root, "internal", rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestHashPackagesFlipsOnSourceEdit is the cache-invalidation
// guarantee: any edit to a simulation-affecting source file changes
// the code hash, so every key built afterwards misses and the edited
// code recomputes from scratch.
func TestHashPackagesFlipsOnSourceEdit(t *testing.T) {
	root := t.TempDir()
	writeTree(t, root, map[string]string{
		"alpha/a.go": "package alpha\n\nconst latency = 10\n",
		"alpha/b.go": "package alpha\n\nconst width = 4\n",
		"beta/b.go":  "package beta\n\nvar jitter = 3\n",
	})
	pkgs := []string{"alpha", "beta"}
	base, err := HashPackages(root, pkgs)
	if err != nil {
		t.Fatal(err)
	}
	if again, _ := HashPackages(root, pkgs); again != base {
		t.Fatal("hash must be deterministic over an unchanged tree")
	}

	// One-byte semantic edit.
	writeTree(t, root, map[string]string{"alpha/a.go": "package alpha\n\nconst latency = 11\n"})
	edited, err := HashPackages(root, pkgs)
	if err != nil {
		t.Fatal(err)
	}
	if edited == base {
		t.Fatal("a one-byte source edit must flip the code hash")
	}

	// Adding a file flips it again; adding a _test.go file does not
	// (tests cannot affect experiment output).
	writeTree(t, root, map[string]string{"alpha/c.go": "package alpha\n"})
	added, _ := HashPackages(root, pkgs)
	if added == edited {
		t.Fatal("a new source file must flip the code hash")
	}
	writeTree(t, root, map[string]string{"alpha/c_test.go": "package alpha\n\nfunc helper() {}\n"})
	withTest, _ := HashPackages(root, pkgs)
	if withTest != added {
		t.Fatal("_test.go files must not contribute to the code hash")
	}

	// A listed-but-absent package is recorded, so creating it later
	// invalidates too.
	withGamma, err := HashPackages(root, append(pkgs, "gamma"))
	if err != nil {
		t.Fatal(err)
	}
	if withGamma == added {
		t.Fatal("listing an absent package must change the hash")
	}
	writeTree(t, root, map[string]string{"gamma/g.go": "package gamma\n"})
	gammaBorn, _ := HashPackages(root, append(pkgs, "gamma"))
	if gammaBorn == withGamma {
		t.Fatal("an absent package coming into existence must flip the hash")
	}
}

func TestHashPackagesEmptyTreeErrors(t *testing.T) {
	if _, err := HashPackages(t.TempDir(), []string{"alpha"}); err == nil {
		t.Fatal("a tree with zero source files must error, not hash to something")
	}
}

// TestCodeHashCoversRealSources ties the process-wide hash to the
// actual module tree: CodeHash must equal a direct HashPackages over
// simPackages, be stable across calls, and the tree must contain the
// load-bearing packages (a typo in simPackages would otherwise
// silently hash an "absent" marker forever).
func TestCodeHashCoversRealSources(t *testing.T) {
	root, ok := findModuleRoot()
	if !ok {
		t.Skip("module root not locatable (test binary moved out of tree)")
	}
	for _, pkg := range []string{"sim", "figures", "cellcache", "runner"} {
		if _, err := os.Stat(filepath.Join(root, "internal", pkg)); err != nil {
			t.Fatalf("simPackages names %q but %v", pkg, err)
		}
	}
	want, err := HashPackages(root, simPackages)
	if err != nil {
		t.Fatal(err)
	}
	if got := CodeHash(); got != want {
		t.Fatalf("CodeHash() = %x, direct HashPackages = %x", got, want)
	}
	if CodeHash() != CodeHash() {
		t.Fatal("CodeHash must be stable within a process")
	}
}
