package cellcache

import (
	"bytes"
	"crypto/sha256"
	"os"
	"path/filepath"
	"testing"
)

func testHash(s string) Key { return sha256.Sum256([]byte(s)) }

// put stores n distinct entries under one scope and returns the values.
func put(c *Cache, scope string, n int) [][]byte {
	vals := make([][]byte, n)
	for i := 0; i < n; i++ {
		vals[i] = bytes.Repeat([]byte{byte(i + 1)}, 8+i)
		c.Put(scope, i, vals[i])
	}
	return vals
}

func TestRoundTripAndPersistence(t *testing.T) {
	dir := t.TempDir()
	h := testHash("v1")
	c := openWithHash(dir, h)
	vals := put(c, "exp#0", 20)
	for i, want := range vals {
		got, ok := c.Get("exp#0", i)
		if !ok || !bytes.Equal(got, want) {
			t.Fatalf("in-process Get(%d): ok=%v got=%x want=%x", i, ok, got, want)
		}
	}
	c.Close()

	// A fresh process (same code version) must see every entry.
	c2 := openWithHash(dir, h)
	defer c2.Close()
	for i, want := range vals {
		got, ok := c2.Get("exp#0", i)
		if !ok || !bytes.Equal(got, want) {
			t.Fatalf("reloaded Get(%d): ok=%v got=%x want=%x", i, ok, got, want)
		}
	}
	st := c2.Stats()
	if st.Entries != 20 || st.StaleEntries != 0 || st.DamagedFiles != 0 {
		t.Fatalf("reloaded stats: %+v", st)
	}
	if _, ok := c2.Get("other-scope", 0); ok {
		t.Fatal("a different scope must miss")
	}
	if hits, misses := c2.Counts(); hits != 20 || misses != 1 {
		t.Fatalf("counts: hits=%d misses=%d", hits, misses)
	}
}

func TestKeysDifferByCodeHash(t *testing.T) {
	dir := t.TempDir()
	c1 := openWithHash(dir, testHash("v1"))
	put(c1, "exp#0", 4)
	c1.Close()

	c2 := openWithHash(dir, testHash("v2"))
	defer c2.Close()
	for i := 0; i < 4; i++ {
		if _, ok := c2.Get("exp#0", i); ok {
			t.Fatalf("entry %d from another code version must not match", i)
		}
	}
	if st := c2.Stats(); st.StaleEntries != 4 {
		t.Fatalf("want 4 stale entries, got %+v", st)
	}
}

func TestCorruptTailIsDiscarded(t *testing.T) {
	dir := t.TempDir()
	h := testHash("v1")
	c := openWithHash(dir, h)
	put(c, "exp#0", 8)
	c.Close()

	// Simulate a crash mid-append: garbage on the tail of every shard.
	shards := c.sortedShardPaths()
	if len(shards) == 0 {
		t.Fatal("no shard files written")
	}
	for _, p := range shards {
		f, err := os.OpenFile(p, os.O_WRONLY|os.O_APPEND, 0)
		if err != nil {
			t.Fatal(err)
		}
		f.Write([]byte("torn-write-garbage"))
		f.Close()
	}

	c2 := openWithHash(dir, h)
	defer c2.Close()
	st := c2.Stats()
	if st.Entries != 8 {
		t.Fatalf("intact records must survive a torn tail: %+v", st)
	}
	if st.DamagedFiles != len(shards) {
		t.Fatalf("want %d damaged files, got %+v", len(shards), st)
	}
	for i := 0; i < 8; i++ {
		if _, ok := c2.Get("exp#0", i); !ok {
			t.Fatalf("entry %d lost to tail corruption", i)
		}
	}
}

func TestFormatMismatchStartsOver(t *testing.T) {
	dir := t.TempDir()
	h := testHash("v1")
	c := openWithHash(dir, h)
	put(c, "exp#0", 4)
	c.Close()

	idx := []byte(`{"format": 999, "code_hash": "", "entries": 4, "bytes": 0}`)
	if err := os.WriteFile(filepath.Join(dir, "index.json"), idx, 0o644); err != nil {
		t.Fatal(err)
	}
	c2 := openWithHash(dir, h)
	defer c2.Close()
	if st := c2.Stats(); st.Entries != 0 {
		t.Fatalf("a future on-disk format must be discarded, not parsed: %+v", st)
	}
	// The wiped directory must be immediately usable again.
	c2.Put("exp#0", 0, []byte("fresh"))
	if got, ok := c2.Get("exp#0", 0); !ok || string(got) != "fresh" {
		t.Fatal("cache unusable after a format-mismatch wipe")
	}
}

func TestPutDeduplicates(t *testing.T) {
	dir := t.TempDir()
	c := openWithHash(dir, testHash("v1"))
	c.Put("exp#0", 0, []byte("first"))
	sizeAfterFirst := shardBytes(t, dir)
	c.Put("exp#0", 0, []byte("second"))
	if got, _ := c.Get("exp#0", 0); string(got) != "first" {
		t.Fatalf("first write must win, got %q", got)
	}
	if got := shardBytes(t, dir); got != sizeAfterFirst {
		t.Fatalf("duplicate Put grew the shards: %d -> %d bytes", sizeAfterFirst, got)
	}
	c.Close()
}

func shardBytes(t *testing.T, dir string) int64 {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, e := range ents {
		info, err := e.Info()
		if err != nil {
			t.Fatal(err)
		}
		total += info.Size()
	}
	return total
}

func TestGCReclaimsStaleCodeVersions(t *testing.T) {
	dir := t.TempDir()
	c1 := openWithHash(dir, testHash("v1"))
	put(c1, "exp#0", 6)
	c1.Close()

	c2 := openWithHash(dir, testHash("v2"))
	defer c2.Close()
	vals := put(c2, "exp#0", 3)
	removed, reclaimed := c2.GC(0)
	if removed != 6 || reclaimed <= 0 {
		t.Fatalf("GC removed %d records / %d bytes, want 6 stale records", removed, reclaimed)
	}
	st := c2.Stats()
	if st.Entries != 3 || st.StaleEntries != 0 {
		t.Fatalf("post-gc stats: %+v", st)
	}
	for i, want := range vals {
		got, ok := c2.Get("exp#0", i)
		if !ok || !bytes.Equal(got, want) {
			t.Fatalf("current-version entry %d lost by gc", i)
		}
	}
	// And the reclaim is durable: a reload sees only current records.
	c2.Close()
	c3 := openWithHash(dir, testHash("v2"))
	defer c3.Close()
	if st := c3.Stats(); st.Entries != 3 || st.StaleEntries != 0 {
		t.Fatalf("reloaded post-gc stats: %+v", st)
	}
}

func TestClear(t *testing.T) {
	dir := t.TempDir()
	c := openWithHash(dir, testHash("v1"))
	defer c.Close()
	put(c, "exp#0", 5)
	c.Clear()
	if st := c.Stats(); st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("post-clear stats: %+v", st)
	}
	if _, ok := c.Get("exp#0", 0); ok {
		t.Fatal("entry survived Clear")
	}
	if paths := c.sortedShardPaths(); len(paths) != 0 {
		t.Fatalf("shard files survived Clear: %v", paths)
	}
	// Still usable for new writes.
	c.Put("exp#0", 0, []byte("again"))
	if _, ok := c.Get("exp#0", 0); !ok {
		t.Fatal("cache unusable after Clear")
	}
}

func TestUnusableDirectoryDegradesToMemory(t *testing.T) {
	// A regular file where the directory should be: MkdirAll fails.
	file := filepath.Join(t.TempDir(), "not-a-dir")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	c := openWithHash(file, testHash("v1"))
	defer c.Close()
	if c.Dir() != "" {
		t.Fatal("memory-only cache must report an empty Dir")
	}
	c.Put("exp#0", 0, []byte("mem"))
	if got, ok := c.Get("exp#0", 0); !ok || string(got) != "mem" {
		t.Fatal("memory-only cache must still serve this process")
	}
	if st := c.Stats(); !st.MemoryOnly {
		t.Fatalf("stats must flag memory-only: %+v", st)
	}
}

func TestKeyForDeterministicAndDistinct(t *testing.T) {
	h := testHash("v1")
	a := keyFor(h, "exp#0|quick=true|seed=42|n=8", 3)
	b := keyFor(h, "exp#0|quick=true|seed=42|n=8", 3)
	if a != b {
		t.Fatal("keyFor must be deterministic")
	}
	distinct := []Key{
		keyFor(h, "exp#0|quick=true|seed=42|n=8", 4),
		keyFor(h, "exp#1|quick=true|seed=42|n=8", 3),
		keyFor(testHash("v2"), "exp#0|quick=true|seed=42|n=8", 3),
	}
	for i, k := range distinct {
		if k == a {
			t.Fatalf("key %d must differ from the base key", i)
		}
	}
}

func TestStatsEntrySizes(t *testing.T) {
	c := openWithHash(t.TempDir(), testHash("v1"))
	defer c.Close()
	c.Put("s", 0, bytes.Repeat([]byte{1}, 10))
	c.Put("s", 1, bytes.Repeat([]byte{2}, 30))
	st := c.Stats()
	if st.MaxEntryBytes != 30 {
		t.Errorf("MaxEntryBytes = %d, want 30", st.MaxEntryBytes)
	}
	if st.MeanEntryBytes != 20 {
		t.Errorf("MeanEntryBytes = %d, want 20", st.MeanEntryBytes)
	}
	if st.LargeEntries != 0 {
		t.Errorf("LargeEntries = %d, want 0", st.LargeEntries)
	}

	// One oversized entry must be counted and reflected in the max.
	c.Put("s", 2, make([]byte, LargeEntryBytes+1))
	st = c.Stats()
	if st.LargeEntries != 1 {
		t.Errorf("LargeEntries = %d, want 1", st.LargeEntries)
	}
	if st.MaxEntryBytes != LargeEntryBytes+1 {
		t.Errorf("MaxEntryBytes = %d, want %d", st.MaxEntryBytes, LargeEntryBytes+1)
	}

	// Empty cache: no divide-by-zero, all zeros.
	e := openWithHash(t.TempDir(), testHash("v2"))
	defer e.Close()
	if st := e.Stats(); st.MeanEntryBytes != 0 || st.MaxEntryBytes != 0 || st.LargeEntries != 0 {
		t.Errorf("empty-cache stats: %+v", st)
	}
}
