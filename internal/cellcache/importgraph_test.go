package cellcache

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// TestSimPackagesCoverImportGraph guards the code-version key against
// the failure mode the hand-maintained list invites: a new package
// starts feeding experiment output (reachable from internal/figures)
// but nobody adds it to simPackages, so edits to it keep serving stale
// cached results. The test recomputes the reachable set from the
// source tree and fails on any package the list is missing.
func TestSimPackagesCoverImportGraph(t *testing.T) {
	root, ok := findModuleRoot()
	if !ok {
		t.Fatal("module root not found")
	}
	reach := reachableFrom(t, root, "figures")
	listed := map[string]bool{}
	for _, p := range simPackages {
		listed[p] = true
	}
	var missing []string
	for pkg := range reach {
		if !listed[pkg] {
			missing = append(missing, pkg)
		}
	}
	sort.Strings(missing)
	if len(missing) > 0 {
		t.Fatalf("packages reachable from internal/figures but absent from simPackages: %v\n"+
			"their edits would not invalidate cached experiment results — add them to the list in codehash.go",
			missing)
	}
}

// reachableFrom returns every internal package transitively imported
// by internal/<start> (inclusive), by parsing the import clauses of
// all non-test sources.
func reachableFrom(t *testing.T, root, start string) map[string]bool {
	t.Helper()
	const prefix = "armbar/internal/"
	reach := map[string]bool{start: true}
	queue := []string{start}
	fset := token.NewFileSet()
	for len(queue) > 0 {
		pkg := queue[0]
		queue = queue[1:]
		dir := filepath.Join(root, "internal", pkg)
		ents, err := os.ReadDir(dir)
		if err != nil {
			t.Fatalf("reading package %s: %v", pkg, err)
		}
		for _, e := range ents {
			name := e.Name()
			if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ImportsOnly)
			if err != nil {
				t.Fatalf("parsing %s/%s: %v", pkg, name, err)
			}
			for _, imp := range f.Imports {
				path := strings.Trim(imp.Path.Value, `"`)
				if !strings.HasPrefix(path, prefix) {
					continue
				}
				dep := strings.TrimPrefix(path, prefix)
				if !reach[dep] {
					reach[dep] = true
					queue = append(queue, dep)
				}
			}
		}
	}
	return reach
}
