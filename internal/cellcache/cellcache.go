// Package cellcache is the persistent, content-addressed result cache
// behind `armbar -cache` (the default): it memoizes the encoded result
// of every experiment cell, keyed by a digest of the cell's complete
// input — experiment scope (name, Map-call sequence, quick flag, seed,
// cell count), cell index, and the *code version* of the packages that
// can affect simulation output (see codehash.go). The simulator is
// deterministic by construction (the golden digest test pins seeded
// output byte for byte), which is exactly the property that makes
// memoization sound: a warm `armbar -quick all` replays every cell
// from disk and is provably byte-identical to a cold run.
//
// Layout under the cache directory:
//
//	index.json    format version + writer code hash + entry counts
//	shard-XX.bin  append-only records, XX = first key byte & 0x0f
//
// Each record is [4B code-hash prefix][32B key][4B len][4B crc32][val].
// The cache is single-writer per process (Put serializes on one mutex)
// and crash-safe by construction: a torn append fails the CRC on the
// next load and only truncates the damaged tail. Corrupt records,
// missing files, an unwritable directory, or a format-version mismatch
// all degrade to misses — the cache never turns an IO problem into an
// experiment error.
//
// The lookup hot path (keyFor + Get) is allocation-free and on the
// allocvet hot-path list; BenchmarkCellCacheHit pins it at 0 allocs/op
// through the perf gate.
package cellcache

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"armbar/internal/metrics"
)

// Key is the content address of one cell result: a SHA-256 digest over
// (code hash, scope string, cell index).
type Key [sha256.Size]byte

const (
	// formatVersion is bumped whenever the on-disk record layout
	// changes; a mismatched cache directory is discarded wholesale.
	formatVersion = 1
	nShards       = 16
	prefixLen     = 4 // code-hash bytes stored per record, for gc
	recHeaderLen  = prefixLen + sha256.Size + 4 + 4
	// maxValueLen bounds a single record so a corrupt length field
	// cannot ask the loader for gigabytes.
	maxValueLen = 16 << 20
)

// index is the self-describing metadata file written at Close. It is
// advisory except for Format, which gates the record layout.
type index struct {
	Format   int    `json:"format"`
	CodeHash string `json:"code_hash"`
	Entries  int    `json:"entries"`
	Bytes    int64  `json:"bytes"`
}

// cacheMetrics holds the pre-resolved instruments, mirroring the
// runner's poolMetrics pattern: set once before the first lookup, then
// read without synchronization.
type cacheMetrics struct {
	hits, misses *metrics.Counter
	bytes        *metrics.Gauge
	keyBuild     *metrics.Histogram
	lookup       *metrics.Histogram
}

// lookupBounds spans 10ns key builds up to pathological ~42s stalls.
var lookupBounds = metrics.ExpBuckets(1e-8, 4, 12)

// Cache is one open cache directory. The zero value is not usable;
// call Open. All methods are safe for concurrent use by the runner's
// worker pool; Put additionally assumes a single writing process per
// directory (concurrent writers stay correct — records are CRC-checked
// — but may duplicate work).
type Cache struct {
	dir      string
	memOnly  bool // directory unusable: serve this process, persist nothing
	codeHash Key

	// obs is set once via SetMetrics before the first Get/Put (the
	// same set-once happens-before contract as runner.Pool.obs).
	obs *cacheMetrics

	mu      sync.Mutex
	entries map[Key][]byte // armvet:guardedby mu
	shards  []*os.File     // armvet:guardedby mu — lazily opened append handles
	bytes   int64          // armvet:guardedby mu — stored value bytes, stale included
	stale   int            // armvet:guardedby mu — loaded records from other code versions
	damaged int            // armvet:guardedby mu — files with a corrupt tail at load
	closed  bool           // armvet:guardedby mu

	hits, misses, puts atomic.Uint64
}

// Open loads (or creates) the cache directory and returns a usable
// cache. Open never fails: an unusable directory yields a memory-only
// cache that serves this process and persists nothing, and corrupt or
// version-mismatched on-disk state is discarded as misses.
func Open(dir string) *Cache {
	return openWithHash(dir, CodeHash())
}

// openWithHash is Open with an explicit code hash — the test seam for
// exercising stale-code entries without editing source files.
func openWithHash(dir string, codeHash Key) *Cache {
	c := &Cache{
		dir:      dir,
		codeHash: codeHash,
		entries:  make(map[Key][]byte),
		shards:   make([]*os.File, nShards),
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		c.memOnly = true
		return c
	}
	if idx, ok := c.readIndex(); ok && idx.Format != formatVersion {
		// A different record layout: the files are unreadable by this
		// binary, so start the directory over.
		c.removeFiles()
	}
	c.load()
	return c
}

// Dir reports the cache directory ("" for a memory-only cache that
// could not use its directory).
func (c *Cache) Dir() string {
	if c.memOnly {
		return ""
	}
	return c.dir
}

// CodeHashHex returns the code-version component of every key this
// cache builds, as hex.
func (c *Cache) CodeHashHex() string { return fmt.Sprintf("%x", c.codeHash) }

// keyFor builds the content address of one cell. It is on the lookup
// hot path and must stay allocation-free: the scratch buffer lives on
// the stack as long as the scope string fits (experiment scopes are
// ~40 bytes; the buffer holds 128 on top of the hash and index).
func keyFor(codeHash Key, scope string, idx int) Key {
	var buf [sha256.Size + 136]byte
	b := buf[:0]
	b = append(b, codeHash[:]...)
	b = append(b, scope...)
	b = append(b, '|')
	b = binary.BigEndian.AppendUint64(b, uint64(idx))
	return sha256.Sum256(b)
}

// Get returns the encoded result stored for (scope, idx), if any. The
// returned slice must be treated as read-only. Get is the runner's
// per-cell probe and stays allocation-free on hits and misses.
func (c *Cache) Get(scope string, idx int) ([]byte, bool) {
	obs := c.obs
	var t0 time.Time
	if obs != nil {
		t0 = time.Now() //armvet:ignore determvet — key-build histogram only; never reaches table output
	}
	k := keyFor(c.codeHash, scope, idx)
	var t1 time.Time
	if obs != nil {
		t1 = time.Now() //armvet:ignore determvet — lookup histogram only
		obs.keyBuild.Observe(t1.Sub(t0).Seconds())
	}
	c.mu.Lock()
	data, ok := c.entries[k]
	c.mu.Unlock()
	if obs != nil {
		d := time.Since(t1) //armvet:ignore determvet — lookup histogram only
		obs.lookup.Observe(d.Seconds())
	}
	if ok {
		c.hits.Add(1)
		if obs != nil {
			obs.hits.Inc()
		}
	} else {
		c.misses.Add(1)
		if obs != nil {
			obs.misses.Inc()
		}
	}
	return data, ok
}

// Put stores the encoded result of one cell. An existing entry for the
// same key wins: cells are deterministic, so the first write is as
// good as any rewrite, and skipping keeps warm runs from growing the
// shard files. IO failures degrade the cache to memory-only.
func (c *Cache) Put(scope string, idx int, data []byte) {
	k := keyFor(c.codeHash, scope, idx)
	cp := append([]byte(nil), data...)
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.entries[k]; dup {
		return
	}
	c.entries[k] = cp
	c.bytes += int64(len(cp))
	c.puts.Add(1)
	if !c.memOnly && !c.closed {
		if err := c.appendRecord(k, cp); err != nil {
			c.memOnly = true
		}
	}
	if obs := c.obs; obs != nil {
		obs.bytes.Set(float64(c.bytes))
	}
}

// Counts reports lifetime hits and misses for this process — the
// figure instrumentation reads deltas of these around each experiment.
func (c *Cache) Counts() (hits, misses uint64) {
	return c.hits.Load(), c.misses.Load()
}

// SetMetrics starts recording cache behavior into reg:
// cache_hits_total / cache_misses_total, the cache_bytes gauge, and
// per-cell key-build and lookup histograms. Call before the first Get;
// nil cache or registry is a no-op.
func (c *Cache) SetMetrics(reg *metrics.Registry) {
	if c == nil || reg == nil {
		return
	}
	c.obs = &cacheMetrics{
		hits:     reg.Counter("cache_hits_total"),
		misses:   reg.Counter("cache_misses_total"),
		bytes:    reg.Gauge("cache_bytes"),
		keyBuild: reg.Histogram("cache_key_build_seconds", lookupBounds),
		lookup:   reg.Histogram("cache_lookup_seconds", lookupBounds),
	}
	c.mu.Lock()
	c.obs.bytes.Set(float64(c.bytes))
	c.mu.Unlock()
}

// LargeEntryBytes is the per-entry size above which Stats counts an
// entry as oversized and `armbar cache stats` warns. A cell result is
// one gob-encoded figure data point (or one whole-table Wire) — tens
// of bytes to a few kilobytes; an entry near a megabyte means a
// generator is caching something it should decompose into cells.
const LargeEntryBytes = 1 << 20

// Stats is the cache's self-description for `armbar cache stats` and
// the run manifest.
type Stats struct {
	Dir          string `json:"dir"`
	CodeHash     string `json:"code_hash"`
	Entries      int    `json:"entries"`       // loaded + stored this process
	StaleEntries int    `json:"stale_entries"` // records from other code versions (gc reclaims)
	Bytes        int64  `json:"bytes"`
	// MeanEntryBytes / MaxEntryBytes describe the per-entry encoded
	// sizes, and LargeEntries counts entries over LargeEntryBytes.
	MeanEntryBytes int64  `json:"mean_entry_bytes"`
	MaxEntryBytes  int64  `json:"max_entry_bytes"`
	LargeEntries   int    `json:"large_entries,omitempty"`
	DamagedFiles   int    `json:"damaged_files"` // shard files with a corrupt tail at load
	Hits           uint64 `json:"hits"`
	Misses         uint64 `json:"misses"`
	Puts           uint64 `json:"puts"`
	MemoryOnly     bool   `json:"memory_only,omitempty"`
}

// Stats snapshots the cache.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := Stats{
		Dir:          c.dir,
		CodeHash:     fmt.Sprintf("%x", c.codeHash),
		Entries:      len(c.entries),
		StaleEntries: c.stale,
		Bytes:        c.bytes,
		DamagedFiles: c.damaged,
		Hits:         c.hits.Load(),
		Misses:       c.misses.Load(),
		Puts:         c.puts.Load(),
		MemoryOnly:   c.memOnly,
	}
	// Max and mean are order-independent over the entries map, so the
	// map walk stays deterministic output-wise.
	for _, v := range c.entries {
		n := int64(len(v))
		if n > st.MaxEntryBytes {
			st.MaxEntryBytes = n
		}
		if n > LargeEntryBytes {
			st.LargeEntries++
		}
	}
	if st.Entries > 0 {
		st.MeanEntryBytes = st.Bytes / int64(st.Entries)
	}
	return st
}

// Close flushes the index file and releases the shard handles. The
// cache stays readable from memory afterwards; further Puts no longer
// persist. Close is idempotent.
func (c *Cache) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return
	}
	c.closed = true
	for i, f := range c.shards {
		if f != nil {
			f.Close()
			c.shards[i] = nil
		}
	}
	if c.memOnly {
		return
	}
	idx := index{
		Format:   formatVersion,
		CodeHash: fmt.Sprintf("%x", c.codeHash),
		Entries:  len(c.entries),
		Bytes:    c.bytes,
	}
	if data, err := json.MarshalIndent(idx, "", "  "); err == nil {
		os.WriteFile(filepath.Join(c.dir, "index.json"), append(data, '\n'), 0o644)
	}
}

// GC rewrites every shard file keeping only records written by the
// current code version; entries from older binaries can never match a
// key again and only cost disk. With maxAge > 0, shard files whose
// modification time is older are dropped wholesale first (the only
// place the cache consults file times). It returns the number of
// records removed and the bytes reclaimed.
func (c *Cache) GC(maxAge time.Duration) (removed int, reclaimed int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.memOnly {
		return 0, 0
	}
	// Drop append handles: the rewrite below replaces the files.
	for i, f := range c.shards {
		if f != nil {
			f.Close()
			c.shards[i] = nil
		}
	}
	cutoff := time.Time{}
	if maxAge > 0 {
		cutoff = time.Now().Add(-maxAge) //armvet:ignore determvet — gc file-age policy only; results never depend on it
	}
	for s := 0; s < nShards; s++ {
		path := c.shardPath(s)
		st, err := os.Stat(path)
		if err != nil {
			continue
		}
		if !cutoff.IsZero() && st.ModTime().Before(cutoff) { //armvet:ignore determvet — gc file-age policy only
			n, b := countRecords(path)
			removed += n
			reclaimed += b
			os.Remove(path)
			continue
		}
		n, b := rewriteShard(path, c.codeHash)
		removed += n
		reclaimed += b
	}
	// Rebuild the in-memory view from the surviving records.
	c.entries = make(map[Key][]byte)
	c.bytes, c.stale, c.damaged = 0, 0, 0
	c.loadLocked()
	return removed, reclaimed
}

// Clear removes every cache file and entry.
func (c *Cache) Clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, f := range c.shards {
		if f != nil {
			f.Close()
			c.shards[i] = nil
		}
	}
	if !c.memOnly {
		c.removeFiles()
	}
	c.entries = make(map[Key][]byte)
	c.bytes, c.stale, c.damaged = 0, 0, 0
	if obs := c.obs; obs != nil {
		obs.bytes.Set(0)
	}
}

// --- on-disk plumbing -------------------------------------------------

func (c *Cache) shardPath(s int) string {
	return filepath.Join(c.dir, fmt.Sprintf("shard-%02x.bin", s))
}

func shardOf(k Key) int { return int(k[0]) % nShards }

// appendRecord persists one entry. armvet:holds mu
func (c *Cache) appendRecord(k Key, val []byte) error {
	s := shardOf(k)
	if c.shards[s] == nil {
		f, err := os.OpenFile(c.shardPath(s), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		c.shards[s] = f
	}
	rec := make([]byte, 0, recHeaderLen+len(val))
	rec = append(rec, c.codeHash[:prefixLen]...)
	rec = append(rec, k[:]...)
	rec = binary.LittleEndian.AppendUint32(rec, uint32(len(val)))
	rec = binary.LittleEndian.AppendUint32(rec, crc32.ChecksumIEEE(val))
	rec = append(rec, val...)
	// One Write call per record: with O_APPEND a crash mid-write can
	// only corrupt the file tail, which the loader detects by CRC and
	// discards.
	_, err := c.shards[s].Write(rec)
	return err
}

func (c *Cache) readIndex() (index, bool) {
	data, err := os.ReadFile(filepath.Join(c.dir, "index.json"))
	if err != nil {
		return index{}, false
	}
	var idx index
	if json.Unmarshal(data, &idx) != nil {
		// Advisory file, corrupt: the shard loader re-derives
		// everything it needs.
		return index{}, false
	}
	return idx, true
}

// removeFiles deletes the cache's own files (and nothing else — the
// directory may be shared). armvet:holds mu
func (c *Cache) removeFiles() {
	for s := 0; s < nShards; s++ {
		os.Remove(c.shardPath(s))
	}
	os.Remove(filepath.Join(c.dir, "index.json"))
}

// load populates entries from the shard files.
func (c *Cache) load() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.loadLocked()
}

// loadLocked scans every shard file in order. armvet:holds mu
func (c *Cache) loadLocked() {
	for s := 0; s < nShards; s++ {
		data, err := os.ReadFile(c.shardPath(s))
		if err != nil {
			continue
		}
		ok := true
		for off := 0; off < len(data); {
			k, val, next, valid := parseRecord(data, off)
			if !valid {
				ok = false
				break
			}
			// Last record wins, mirroring append order.
			if old, dup := c.entries[k]; dup {
				c.bytes -= int64(len(old))
			} else if string(data[off:off+prefixLen]) != string(c.codeHash[:prefixLen]) {
				c.stale++
			}
			c.entries[k] = val
			c.bytes += int64(len(val))
			off = next
		}
		if !ok {
			c.damaged++
		}
	}
}

// parseRecord decodes one record at off, returning the key, a copy of
// the value, the next offset, and whether the record was intact.
func parseRecord(data []byte, off int) (k Key, val []byte, next int, valid bool) {
	if off+recHeaderLen > len(data) {
		return k, nil, 0, false
	}
	p := off + prefixLen
	copy(k[:], data[p:p+sha256.Size])
	p += sha256.Size
	n := binary.LittleEndian.Uint32(data[p:])
	sum := binary.LittleEndian.Uint32(data[p+4:])
	p += 8
	if n > maxValueLen || p+int(n) > len(data) {
		return k, nil, 0, false
	}
	val = append([]byte(nil), data[p:p+int(n)]...)
	if crc32.ChecksumIEEE(val) != sum {
		return k, nil, 0, false
	}
	return k, val, p + int(n), true
}

// countRecords tallies the intact records of one shard file (for gc
// accounting of wholesale drops).
func countRecords(path string) (n int, bytes int64) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, 0
	}
	for off := 0; off < len(data); {
		_, val, next, valid := parseRecord(data, off)
		if !valid {
			break
		}
		n++
		bytes += int64(len(val))
		off = next
	}
	return n, bytes
}

// rewriteShard rewrites one shard keeping only records whose code-hash
// prefix matches, via a temp file + rename so a crash leaves either
// the old or the new file, never a half-written one.
func rewriteShard(path string, codeHash Key) (removed int, reclaimed int64) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, 0
	}
	kept := make([]byte, 0, len(data))
	for off := 0; off < len(data); {
		_, val, next, valid := parseRecord(data, off)
		if !valid {
			break
		}
		if string(data[off:off+prefixLen]) == string(codeHash[:prefixLen]) {
			kept = append(kept, data[off:next]...)
		} else {
			removed++
			reclaimed += int64(len(val))
		}
		off = next
	}
	if removed == 0 && len(kept) == len(data) {
		return 0, 0
	}
	if len(kept) == 0 {
		os.Remove(path)
		return removed, reclaimed
	}
	tmp := path + ".tmp"
	if os.WriteFile(tmp, kept, 0o644) != nil {
		return 0, 0
	}
	if os.Rename(tmp, path) != nil {
		os.Remove(tmp)
		return 0, 0
	}
	return removed, reclaimed
}

// sortedShardPaths lists existing shard files in shard order (used by
// tests; kept here so the naming scheme has one owner).
func (c *Cache) sortedShardPaths() []string {
	var out []string
	for s := 0; s < nShards; s++ {
		if _, err := os.Stat(c.shardPath(s)); err == nil {
			out = append(out, c.shardPath(s))
		}
	}
	sort.Strings(out)
	return out
}
