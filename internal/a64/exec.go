package a64

import (
	"fmt"

	"armbar/internal/isa"
	"armbar/internal/sim"
)

// Regs is the register file handed to Exec: index 0-30 are x0-x30;
// index 31 reads as zero (xzr) and discards writes.
type Regs [32]uint64

// Exec runs the program on a simulated thread, starting from the given
// register file, until it falls off the end or executes maxInstrs
// instructions (0 = 10 million, a runaway guard). It returns the final
// registers and the number of instructions executed.
func (p *Program) Exec(t *sim.Thread, regs Regs, maxInstrs int) (Regs, int, error) {
	if maxInstrs <= 0 {
		maxInstrs = 10_000_000
	}
	var nzSet bool // last cmp result: negative / zero flags
	var cmpNeg, cmpZero bool
	get := func(r int) uint64 {
		if r == 31 {
			return 0
		}
		return regs[r]
	}
	set := func(r int, v uint64) {
		if r != 31 {
			regs[r] = v
		}
	}

	pc := 0
	executed := 0
	for pc < len(p.instrs) {
		if executed >= maxInstrs {
			return regs, executed, fmt.Errorf("a64: instruction budget exhausted at pc %d (%s)",
				pc, p.src[pc])
		}
		executed++
		ins := p.instrs[pc]
		next := pc + 1
		switch ins.op {
		case opNop:
			t.Nops(1)
		case opMovImm:
			set(ins.rd, uint64(ins.imm))
			t.Nops(1)
		case opMovReg:
			set(ins.rd, get(ins.rn))
			t.Nops(1)
		case opAddImm:
			set(ins.rd, get(ins.rn)+uint64(ins.imm))
			t.Nops(1)
		case opAddReg:
			set(ins.rd, get(ins.rn)+get(ins.rm))
			t.Nops(1)
		case opSubImm:
			set(ins.rd, get(ins.rn)-uint64(ins.imm))
			t.Nops(1)
		case opSubReg:
			set(ins.rd, get(ins.rn)-get(ins.rm))
			t.Nops(1)
		case opEor:
			set(ins.rd, get(ins.rn)^get(ins.rm))
			t.Nops(1)
		case opCmpImm:
			d := int64(get(ins.rd)) - ins.imm
			nzSet, cmpNeg, cmpZero = true, d < 0, d == 0
			t.Nops(1)
		case opCmpReg:
			d := int64(get(ins.rd)) - int64(get(ins.rn))
			nzSet, cmpNeg, cmpZero = true, d < 0, d == 0
			t.Nops(1)
		case opLdr:
			set(ins.rd, t.Load(get(ins.rn)+uint64(ins.imm)))
		case opLdar:
			set(ins.rd, t.LoadAcquire(get(ins.rn)+uint64(ins.imm)))
		case opLdapr:
			set(ins.rd, t.LoadAcquirePC(get(ins.rn)+uint64(ins.imm)))
		case opStr:
			t.Store(get(ins.rn)+uint64(ins.imm), get(ins.rd))
		case opStlr:
			t.StoreRelease(get(ins.rn)+uint64(ins.imm), get(ins.rd))
		case opDmb, opDsb:
			t.Barrier(ins.barrier)
		case opIsb:
			t.Barrier(isa.ISB)
		case opB:
			next = ins.target
		case opBeq:
			if mustFlags(nzSet) && cmpZero {
				next = ins.target
			}
		case opBne:
			if mustFlags(nzSet) && !cmpZero {
				next = ins.target
			}
		case opBle:
			if mustFlags(nzSet) && (cmpNeg || cmpZero) {
				next = ins.target
			}
		case opBlt:
			if mustFlags(nzSet) && cmpNeg {
				next = ins.target
			}
		case opBge:
			if mustFlags(nzSet) && !cmpNeg {
				next = ins.target
			}
		case opBgt:
			if mustFlags(nzSet) && !cmpNeg && !cmpZero {
				next = ins.target
			}
		case opCbz:
			t.Nops(1)
			if get(ins.rd) == 0 {
				next = ins.target
			}
		case opCbnz:
			t.Nops(1)
			if get(ins.rd) != 0 {
				next = ins.target
			}
		}
		pc = next
	}
	return regs, executed, nil
}

// mustFlags guards conditional branches against use before any cmp.
func mustFlags(set bool) bool {
	if !set {
		panic("a64: conditional branch before cmp")
	}
	return true
}
