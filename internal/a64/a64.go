// Package a64 implements a small AArch64 assembly subset — enough to
// run the paper's Algorithm-1 listings and litmus snippets verbatim on
// the simulator. Programs are parsed from text into instruction lists
// and executed against a sim.Thread, with registers x0-x30, NZ flags,
// labels and conditional branches.
//
// Supported instructions:
//
//	mov xD, #imm         | mov xD, xN
//	add/sub xD, xN, #imm | add/sub xD, xN, xM
//	eor xD, xN, xM
//	cmp xN, #imm         | cmp xN, xM
//	ldr xD, [xN]         | ldr xD, [xN, #imm]
//	str xS, [xN]         | str xS, [xN, #imm]
//	ldar xD, [xN]        | ldapr xD, [xN]
//	stlr xS, [xN]
//	dmb ish|ishst|ishld  — the paper's DMB full / st / ld
//	dsb ish|ishst|ishld
//	isb
//	nop
//	b label | beq | bne | ble | blt | bge | bgt
//	cbz xN, label | cbnz xN, label
//
// The memory operands address simulated memory directly: load an
// allocated address into a register with mov (via Exec's initial
// register file) and dereference it.
package a64

import (
	"fmt"
	"strconv"
	"strings"

	"armbar/internal/isa"
)

// opcode enumerates the executable operations.
type opcode int

const (
	opMovImm opcode = iota
	opMovReg
	opAddImm
	opAddReg
	opSubImm
	opSubReg
	opEor
	opCmpImm
	opCmpReg
	opLdr
	opStr
	opLdar
	opLdapr
	opStlr
	opDmb
	opDsb
	opIsb
	opNop
	opB
	opBeq
	opBne
	opBle
	opBlt
	opBge
	opBgt
	opCbz
	opCbnz
)

// instr is one decoded instruction.
type instr struct {
	op      opcode
	rd      int // destination / compared / source register
	rn      int // base / first operand register
	rm      int // second operand register
	imm     int64
	barrier isa.Barrier // dmb/dsb option
	target  int         // branch target instruction index
	label   string      // unresolved target (parse time)
	line    int         // source line for diagnostics
}

// Program is a parsed instruction sequence.
type Program struct {
	instrs []instr
	labels map[string]int
	src    []string
}

// NumInstrs reports the instruction count.
func (p *Program) NumInstrs() int { return len(p.instrs) }

// Parse assembles the source text.
func Parse(src string) (*Program, error) { return ParseWithSymbols(src, nil) }

// ParseWithSymbols assembles source that may reference named addresses
// with the "mov xN, =symbol" pseudo-instruction.
func ParseWithSymbols(src string, symbols map[string]uint64) (*Program, error) {
	p := &Program{labels: map[string]int{}}
	for ln, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.IndexAny(line, ";"); i >= 0 {
			line = line[:i]
		}
		if i := strings.Index(line, "//"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		// Labels: "name:" possibly followed by an instruction.
		for {
			if i := strings.Index(line, ":"); i >= 0 && !strings.ContainsAny(line[:i], " \t,[") {
				label := strings.TrimSpace(line[:i])
				if _, dup := p.labels[label]; dup {
					return nil, fmt.Errorf("a64: line %d: duplicate label %q", ln+1, label)
				}
				p.labels[label] = len(p.instrs)
				line = strings.TrimSpace(line[i+1:])
				continue
			}
			break
		}
		if line == "" {
			continue
		}
		ins, err := parseInstr(line, ln+1, symbols)
		if err != nil {
			return nil, err
		}
		p.instrs = append(p.instrs, ins)
		p.src = append(p.src, line)
	}
	// Resolve branch targets.
	for i := range p.instrs {
		if p.instrs[i].label == "" {
			continue
		}
		t, ok := p.labels[p.instrs[i].label]
		if !ok {
			return nil, fmt.Errorf("a64: line %d: undefined label %q",
				p.instrs[i].line, p.instrs[i].label)
		}
		p.instrs[i].target = t
	}
	return p, nil
}

// parseInstr decodes one instruction line.
func parseInstr(line string, ln int, symbols map[string]uint64) (instr, error) {
	fields := strings.Fields(strings.ReplaceAll(line, ",", " , "))
	mnemonic := strings.ToLower(fields[0])
	args := splitArgs(strings.TrimSpace(line[len(fields[0]):]))
	ins := instr{line: ln}
	fail := func(msg string) (instr, error) {
		return ins, fmt.Errorf("a64: line %d: %s in %q", ln, msg, line)
	}

	switch mnemonic {
	case "nop":
		ins.op = opNop
	case "isb":
		ins.op = opIsb
	case "dmb", "dsb":
		if len(args) != 1 {
			return fail("dmb/dsb needs an option")
		}
		var b isa.Barrier
		switch strings.ToLower(args[0]) {
		case "ish", "sy":
			b = isa.DMBFull
		case "ishst", "st":
			b = isa.DMBSt
		case "ishld", "ld":
			b = isa.DMBLd
		default:
			return fail("unknown barrier option")
		}
		if mnemonic == "dsb" {
			switch b {
			case isa.DMBFull:
				b = isa.DSBFull
			case isa.DMBSt:
				b = isa.DSBSt
			case isa.DMBLd:
				b = isa.DSBLd
			}
			ins.op = opDsb
		} else {
			ins.op = opDmb
		}
		ins.barrier = b
	case "mov":
		if len(args) != 2 {
			return fail("mov needs 2 operands")
		}
		ins.rd = mustReg(args[0])
		if sym, ok := strings.CutPrefix(strings.TrimSpace(args[1]), "="); ok {
			addr, known := symbols[strings.TrimSpace(sym)]
			if !known {
				return fail("unknown symbol =" + sym)
			}
			ins.op, ins.imm = opMovImm, int64(addr)
		} else if imm, ok := immOf(args[1]); ok {
			ins.op, ins.imm = opMovImm, imm
		} else {
			ins.op, ins.rn = opMovReg, mustReg(args[1])
		}
	case "add", "sub":
		if len(args) != 3 {
			return fail("add/sub needs 3 operands")
		}
		ins.rd, ins.rn = mustReg(args[0]), mustReg(args[1])
		if imm, ok := immOf(args[2]); ok {
			ins.imm = imm
			if mnemonic == "add" {
				ins.op = opAddImm
			} else {
				ins.op = opSubImm
			}
		} else {
			ins.rm = mustReg(args[2])
			if mnemonic == "add" {
				ins.op = opAddReg
			} else {
				ins.op = opSubReg
			}
		}
	case "eor":
		if len(args) != 3 {
			return fail("eor needs 3 operands")
		}
		ins.op = opEor
		ins.rd, ins.rn, ins.rm = mustReg(args[0]), mustReg(args[1]), mustReg(args[2])
	case "cmp":
		if len(args) != 2 {
			return fail("cmp needs 2 operands")
		}
		ins.rd = mustReg(args[0])
		if imm, ok := immOf(args[1]); ok {
			ins.op, ins.imm = opCmpImm, imm
		} else {
			ins.op, ins.rn = opCmpReg, mustReg(args[1])
		}
	case "ldr", "ldar", "ldapr":
		if len(args) != 2 {
			return fail("load needs 2 operands")
		}
		ins.rd = mustReg(args[0])
		rn, off, err := memOperand(args[1])
		if err != nil {
			return fail(err.Error())
		}
		ins.rn, ins.imm = rn, off
		switch mnemonic {
		case "ldr":
			ins.op = opLdr
		case "ldar":
			ins.op = opLdar
		default:
			ins.op = opLdapr
		}
	case "str", "stlr":
		if len(args) != 2 {
			return fail("store needs 2 operands")
		}
		ins.rd = mustReg(args[0])
		rn, off, err := memOperand(args[1])
		if err != nil {
			return fail(err.Error())
		}
		ins.rn, ins.imm = rn, off
		if mnemonic == "str" {
			ins.op = opStr
		} else {
			ins.op = opStlr
		}
	case "b", "beq", "bne", "ble", "blt", "bge", "bgt":
		if len(args) != 1 {
			return fail("branch needs a label")
		}
		ins.label = args[0]
		switch mnemonic {
		case "b":
			ins.op = opB
		case "beq":
			ins.op = opBeq
		case "bne":
			ins.op = opBne
		case "ble":
			ins.op = opBle
		case "blt":
			ins.op = opBlt
		case "bge":
			ins.op = opBge
		default:
			ins.op = opBgt
		}
	case "cbz", "cbnz":
		if len(args) != 2 {
			return fail("cbz/cbnz needs register, label")
		}
		ins.rd = mustReg(args[0])
		ins.label = args[1]
		if mnemonic == "cbz" {
			ins.op = opCbz
		} else {
			ins.op = opCbnz
		}
	default:
		return fail("unknown mnemonic")
	}
	if bad := badReg(ins); bad != "" {
		return fail(bad)
	}
	return ins, nil
}

// splitArgs splits "x0, [x1, #8]" into {"x0", "[x1, #8]"}.
func splitArgs(s string) []string {
	var out []string
	depth := 0
	cur := strings.Builder{}
	for _, r := range s {
		switch r {
		case '[':
			depth++
		case ']':
			depth--
		case ',':
			if depth == 0 {
				out = append(out, strings.TrimSpace(cur.String()))
				cur.Reset()
				continue
			}
		}
		cur.WriteRune(r)
	}
	if t := strings.TrimSpace(cur.String()); t != "" {
		out = append(out, t)
	}
	return out
}

// mustReg parses x0-x30 / xzr; -1 marks a parse failure (validated by
// badReg afterwards).
func mustReg(s string) int {
	s = strings.ToLower(strings.TrimSpace(s))
	if s == "xzr" {
		return 31
	}
	if !strings.HasPrefix(s, "x") {
		return -1
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 || n > 30 {
		return -1
	}
	return n
}

// badReg reports an invalid register field for the decoded form.
func badReg(ins instr) string {
	check := func(r int) bool { return r >= 0 && r <= 31 }
	if !check(ins.rd) || !check(ins.rn) || !check(ins.rm) {
		return "bad register"
	}
	return ""
}

// immOf parses "#123" or plain integers.
func immOf(s string) (int64, bool) {
	s = strings.TrimPrefix(strings.TrimSpace(s), "#")
	v, err := strconv.ParseInt(s, 0, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// memOperand parses "[xN]" or "[xN, #off]".
func memOperand(s string) (reg int, off int64, err error) {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "[") || !strings.HasSuffix(s, "]") {
		return 0, 0, fmt.Errorf("bad memory operand %q", s)
	}
	inner := strings.TrimSpace(s[1 : len(s)-1])
	parts := strings.SplitN(inner, ",", 2)
	reg = mustReg(parts[0])
	if reg < 0 {
		return 0, 0, fmt.Errorf("bad base register in %q", s)
	}
	if len(parts) == 2 {
		v, ok := immOf(parts[1])
		if !ok {
			return 0, 0, fmt.Errorf("bad offset in %q", s)
		}
		off = v
	}
	return reg, off, nil
}
