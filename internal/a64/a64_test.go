package a64

import (
	"strings"
	"testing"

	"armbar/internal/platform"
	"armbar/internal/sim"
	"armbar/internal/topo"
)

func runOn(t *testing.T, src string, setup func(m *sim.Machine) Regs) (Regs, float64) {
	t.Helper()
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	m := sim.New(sim.Config{Plat: platform.Kunpeng916(), Mode: sim.WMM, Seed: 2})
	regs := setup(m)
	var out Regs
	m.Spawn(0, func(th *sim.Thread) {
		r, _, err := p.Exec(th, regs, 0)
		if err != nil {
			t.Error(err)
		}
		out = r
	})
	cycles := m.Run()
	return out, cycles
}

func TestALUAndBranches(t *testing.T) {
	// Sum 1..10 with a loop.
	src := `
		mov x0, #0      // sum
		mov x1, #1      // i
	loop:
		add x0, x0, x1
		add x1, x1, #1
		cmp x1, #10
		ble loop
	`
	regs, _ := runOn(t, src, func(*sim.Machine) Regs { return Regs{} })
	if regs[0] != 55 {
		t.Fatalf("sum = %d, want 55", regs[0])
	}
	if regs[1] != 11 {
		t.Fatalf("i = %d, want 11", regs[1])
	}
}

func TestMemoryAndXZR(t *testing.T) {
	src := `
		mov x2, #77
		str x2, [x0]
		ldr x3, [x0]
		str x3, [x0, #8]
		ldr x4, [x0, #8]
		eor x5, x4, x4
		mov xzr, #9    // discarded
		ldr x6, [x0]
	`
	var addr uint64
	regs, _ := runOn(t, src, func(m *sim.Machine) Regs {
		addr = m.Alloc(1)
		var r Regs
		r[0] = addr
		return r
	})
	if regs[3] != 77 || regs[4] != 77 || regs[6] != 77 {
		t.Fatalf("memory round trip broke: %v", regs[:8])
	}
	if regs[5] != 0 {
		t.Fatalf("eor self = %d", regs[5])
	}
}

func TestCbzCbnz(t *testing.T) {
	src := `
		mov x0, #3
	dec:
		cbz x0, done
		sub x0, x0, #1
		b dec
	done:
		mov x1, #42
	`
	regs, _ := runOn(t, src, func(*sim.Machine) Regs { return Regs{} })
	if regs[0] != 0 || regs[1] != 42 {
		t.Fatalf("cbz loop: %v", regs[:2])
	}
}

// algorithm1 is the paper's abstracted-model loop (Algorithm 1)
// transcribed: walk two line arrays, store to both with a barrier at
// LOC_1, nops between.
const algorithm1 = `
loop:
	add x0, x0, #64
	add x1, x1, #64
	str x3, [x0]
	dmb ishst      ; BARRIER_LOC_1
	nop
	nop
	nop
	nop
	str x4, [x1]
	add x2, x2, #1
	cmp x2, x5
	ble loop
`

func TestAlgorithm1Verbatim(t *testing.T) {
	p, err := Parse(algorithm1)
	if err != nil {
		t.Fatal(err)
	}
	m := sim.New(sim.Config{Plat: platform.Kunpeng916(), Mode: sim.WMM, Seed: 4})
	const lines = 16
	const iters = 200
	arrA := m.Alloc(lines + iters/lines + 2)
	arrB := m.Alloc(lines + iters/lines + 2)
	for i := 0; i < 2; i++ {
		core := topo.CoreID(i * 4)
		m.Spawn(core, func(th *sim.Thread) {
			var r Regs
			r[0] = arrA - 64 // pre-decremented; the loop bumps first
			r[1] = arrB - 64
			r[2] = 1
			r[3] = 7
			r[4] = 9
			r[5] = iters
			if _, n, err := p.Exec(th, r, 0); err != nil {
				t.Error(err)
			} else if n < iters*10 {
				t.Errorf("executed only %d instructions", n)
			}
		})
	}
	cycles := m.Run()
	if cycles <= 0 {
		t.Fatal("no cycles")
	}
	if m.Stats().MemTxns == 0 {
		t.Error("the dmb ishst should have issued barrier transactions")
	}
}

func TestBarrierMnemonics(t *testing.T) {
	for _, src := range []string{
		"dmb ish", "dmb ishst", "dmb ishld",
		"dsb ish", "dsb ishst", "dsb ishld", "isb",
	} {
		if _, err := Parse(src); err != nil {
			t.Errorf("%q: %v", src, err)
		}
	}
}

func TestAcquireReleaseMnemonics(t *testing.T) {
	src := `
		mov x1, #5
		stlr x1, [x0]
		ldar x2, [x0]
		ldapr x3, [x0]
	`
	regs, _ := runOn(t, src, func(m *sim.Machine) Regs {
		var r Regs
		r[0] = m.Alloc(1)
		return r
	})
	if regs[2] != 5 || regs[3] != 5 {
		t.Fatalf("acquire loads: %v", regs[:4])
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"frob x0":           "unknown mnemonic",
		"mov x99, #1":       "bad register",
		"dmb":               "needs an option",
		"dmb osh":           "unknown barrier option",
		"b nowhere":         "undefined label",
		"ldr x0, x1":        "bad memory operand",
		"x: nop\nx: nop":    "duplicate label",
		"add x0, x1":        "needs 3 operands",
		"ldr x0, [x1, foo]": "bad offset",
	}
	for src, want := range cases {
		_, err := Parse(src)
		if err == nil || !strings.Contains(err.Error(), want) {
			t.Errorf("Parse(%q) error = %v, want containing %q", src, err, want)
		}
	}
}

func TestRunawayGuard(t *testing.T) {
	p, err := Parse("spin: b spin")
	if err != nil {
		t.Fatal(err)
	}
	m := sim.New(sim.Config{Plat: platform.RaspberryPi4(), Mode: sim.WMM, Seed: 1})
	m.Spawn(0, func(th *sim.Thread) {
		if _, _, err := p.Exec(th, Regs{}, 1000); err == nil {
			t.Error("infinite loop should exhaust the budget")
		}
	})
	m.Run()
}
