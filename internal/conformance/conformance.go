// Package conformance checks the simulator's memory model against a
// sequential-consistency oracle: for small random multithreaded
// programs whose every operation is separated by a full barrier, any
// outcome the simulator produces must be explainable by *some*
// interleaving of the threads' operations — fully fenced execution can
// be weaker than SC in latency but never in observable values.
//
// The oracle enumerates every interleaving exhaustively, so programs
// stay small (2-3 threads, a handful of ops); the simulator side runs
// each program under many seeds to visit different timing paths.
package conformance

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"armbar/internal/isa"
	"armbar/internal/platform"
	"armbar/internal/sim"
	"armbar/internal/topo"
)

// OpKind is a program operation.
type OpKind int

const (
	// OpLoad reads an address into the next result slot.
	OpLoad OpKind = iota
	// OpStore writes a constant to an address.
	OpStore
)

// Op is one operation of a thread program.
type Op struct {
	Kind  OpKind
	Addr  int    // variable index
	Value uint64 // stored value (OpStore)
}

// Program is a multithreaded litmus-style program.
type Program struct {
	Vars    int
	Threads [][]Op
}

// String renders the program compactly.
func (p *Program) String() string {
	var b strings.Builder
	for i, th := range p.Threads {
		fmt.Fprintf(&b, "T%d:", i)
		for _, op := range th {
			if op.Kind == OpLoad {
				fmt.Fprintf(&b, " r=x%d;", op.Addr)
			} else {
				fmt.Fprintf(&b, " x%d=%d;", op.Addr, op.Value)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Outcome is the concatenated load results of all threads, in program
// order per thread, threads in order.
type Outcome string

func formatOutcome(loads [][]uint64) Outcome {
	var b strings.Builder
	for i, ls := range loads {
		if i > 0 {
			b.WriteByte('|')
		}
		for j, v := range ls {
			if j > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%d", v)
		}
	}
	return Outcome(b.String())
}

// Random generates a random program with the given shape.
func Random(rng *rand.Rand, threads, opsPerThread, vars int) *Program {
	p := &Program{Vars: vars, Threads: make([][]Op, threads)}
	for t := range p.Threads {
		ops := make([]Op, opsPerThread)
		for i := range ops {
			if rng.Intn(2) == 0 {
				ops[i] = Op{Kind: OpLoad, Addr: rng.Intn(vars)}
			} else {
				ops[i] = Op{Kind: OpStore, Addr: rng.Intn(vars),
					Value: uint64(rng.Intn(3) + 1)}
			}
		}
		p.Threads[t] = ops
	}
	return p
}

// SCOutcomes enumerates every interleaving and returns the set of
// sequentially consistent outcomes.
func SCOutcomes(p *Program) map[Outcome]bool {
	out := make(map[Outcome]bool)
	pcs := make([]int, len(p.Threads))
	mem := make([]uint64, p.Vars)
	loads := make([][]uint64, len(p.Threads))

	var walk func()
	walk = func() {
		done := true
		for t := range p.Threads {
			if pcs[t] >= len(p.Threads[t]) {
				continue
			}
			done = false
			op := p.Threads[t][pcs[t]]
			pcs[t]++
			switch op.Kind {
			case OpLoad:
				loads[t] = append(loads[t], mem[op.Addr])
				walk()
				loads[t] = loads[t][:len(loads[t])-1]
			case OpStore:
				prev := mem[op.Addr]
				mem[op.Addr] = op.Value
				walk()
				mem[op.Addr] = prev
			}
			pcs[t]--
		}
		if done {
			out[formatOutcome(loads)] = true
		}
	}
	walk()
	return out
}

// RunSim executes the program once on the simulator with a full
// barrier after every operation, returning the outcome.
func RunSim(p *Program, plat *platform.Platform, mode sim.Mode, seed int64) Outcome {
	m := sim.New(sim.Config{Plat: plat, Mode: mode, Seed: seed})
	addrs := make([]uint64, p.Vars)
	for i := range addrs {
		addrs[i] = m.Alloc(1)
	}
	loads := make([][]uint64, len(p.Threads))
	cores := spread(plat, len(p.Threads))
	for t := range p.Threads {
		t := t
		m.Spawn(cores[t], func(th *sim.Thread) {
			for _, op := range p.Threads[t] {
				switch op.Kind {
				case OpLoad:
					loads[t] = append(loads[t], th.Load(addrs[op.Addr]))
				case OpStore:
					th.Store(addrs[op.Addr], op.Value)
				}
				th.Barrier(isa.DMBFull)
			}
		})
	}
	m.Run()
	return formatOutcome(loads)
}

// spread places n threads on distinct cores across nodes.
func spread(p *platform.Platform, n int) []topo.CoreID {
	var lists [][]topo.CoreID
	for node := 0; node < p.Sys.NumNodes(); node++ {
		lists = append(lists, p.Sys.NodeCores(node))
	}
	cores := make([]topo.CoreID, 0, n)
	for i := 0; len(cores) < n; i++ {
		l := lists[i%len(lists)]
		cores = append(cores, l[(i/len(lists))%len(l)])
	}
	return cores
}

// Check runs the program under `seeds` simulator seeds and reports the
// first outcome not in the SC set (empty string if all conform).
func Check(p *Program, plat *platform.Platform, mode sim.Mode, seeds int, base int64) (Outcome, bool) {
	sc := SCOutcomes(p)
	for s := 0; s < seeds; s++ {
		got := RunSim(p, plat, mode, base+int64(s))
		if !sc[got] {
			return got, false
		}
	}
	return "", true
}

// SortedOutcomes lists an outcome set for debugging.
func SortedOutcomes(set map[Outcome]bool) []string {
	out := make([]string, 0, len(set))
	for o := range set {
		out = append(out, string(o))
	}
	sort.Strings(out)
	return out
}

// RunSimUnfenced executes the program with no barriers at all.
func RunSimUnfenced(p *Program, plat *platform.Platform, mode sim.Mode, seed int64) Outcome {
	m := sim.New(sim.Config{Plat: plat, Mode: mode, Seed: seed})
	addrs := make([]uint64, p.Vars)
	for i := range addrs {
		addrs[i] = m.Alloc(1)
	}
	loads := make([][]uint64, len(p.Threads))
	cores := spread(plat, len(p.Threads))
	for t := range p.Threads {
		t := t
		m.Spawn(cores[t], func(th *sim.Thread) {
			for _, op := range p.Threads[t] {
				switch op.Kind {
				case OpLoad:
					loads[t] = append(loads[t], th.Load(addrs[op.Addr]))
				case OpStore:
					th.Store(addrs[op.Addr], op.Value)
				}
			}
		})
	}
	m.Run()
	return formatOutcome(loads)
}
