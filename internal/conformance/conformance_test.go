package conformance

import (
	"math/rand"
	"testing"

	"armbar/internal/platform"
	"armbar/internal/sim"
)

func TestSCOracleKnownProgram(t *testing.T) {
	// Classic store buffering: T0: x=1; r=y  T1: y=1; r=x.
	// SC forbids r0=0 ∧ r1=0 but allows the other three combinations.
	p := &Program{
		Vars: 2,
		Threads: [][]Op{
			{{Kind: OpStore, Addr: 0, Value: 1}, {Kind: OpLoad, Addr: 1}},
			{{Kind: OpStore, Addr: 1, Value: 1}, {Kind: OpLoad, Addr: 0}},
		},
	}
	sc := SCOutcomes(p)
	if sc["0|0"] {
		t.Fatalf("SC oracle allowed the forbidden SB outcome: %v", SortedOutcomes(sc))
	}
	for _, want := range []Outcome{"1|1", "0|1", "1|0"} {
		if !sc[want] {
			t.Errorf("SC oracle missing allowed outcome %s: %v", want, SortedOutcomes(sc))
		}
	}
}

func TestFencedSimConformsToSC(t *testing.T) {
	// Random fully-fenced programs: every simulator outcome, under WMM
	// and TSO, must be SC-explainable.
	rng := rand.New(rand.NewSource(99))
	plats := []*platform.Platform{platform.Kunpeng916(), platform.Kirin960()}
	for trial := 0; trial < 25; trial++ {
		p := Random(rng, 3, 4, 2)
		for _, plat := range plats {
			for _, mode := range []sim.Mode{sim.WMM, sim.TSO} {
				if bad, ok := Check(p, plat, mode, 8, int64(trial)*100); !ok {
					t.Fatalf("trial %d (%s, %v): outcome %q not in SC set\nprogram:\n%s\nSC: %v",
						trial, plat.Name, mode, bad, p, SortedOutcomes(SCOutcomes(p)))
				}
			}
		}
	}
}

func TestFencedSimConformsToSCBiggerPrograms(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rng := rand.New(rand.NewSource(7))
	plat := platform.Kunpeng916()
	for trial := 0; trial < 10; trial++ {
		p := Random(rng, 2, 6, 3)
		if bad, ok := Check(p, plat, sim.WMM, 12, int64(trial)*977); !ok {
			t.Fatalf("trial %d: outcome %q not SC\nprogram:\n%s", trial, bad, p)
		}
	}
}

func TestSingleAddressCoherenceUnfenced(t *testing.T) {
	// Per-location coherence: programs over ONE variable must be SC
	// even with no barriers — the cache protocol alone provides it.
	rng := rand.New(rand.NewSource(31))
	plat := platform.Kunpeng916()
	for trial := 0; trial < 20; trial++ {
		p := Random(rng, 3, 4, 1) // one shared variable
		sc := SCOutcomes(p)
		for s := 0; s < 10; s++ {
			got := RunSimUnfenced(p, plat, sim.WMM, int64(trial*37+s))
			if !sc[got] {
				t.Fatalf("trial %d: single-address outcome %q not SC\nprogram:\n%s\nSC: %v",
					trial, got, p, SortedOutcomes(sc))
			}
		}
	}
}
