package progress_test

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"

	"armbar/internal/progress"
	"armbar/internal/runner"
)

func TestExperimentLifecycle(t *testing.T) {
	tr := progress.New([]string{"fig4", "fig5", "table1"})
	r := tr.Snapshot()
	if r.State != progress.StateRunning || r.ExperimentsTotal != 3 || r.ExperimentsDone != 0 {
		t.Fatalf("fresh tracker: %+v", r)
	}
	for _, e := range r.Experiments {
		if e.State != progress.StateQueued {
			t.Fatalf("experiment %s born %s", e.Name, e.State)
		}
	}

	tr.StartExperiment("fig4")
	r = tr.Snapshot()
	if r.Experiments[0].State != progress.StateRunning {
		t.Fatalf("fig4 not running: %+v", r.Experiments[0])
	}

	tr.FinishExperiment("fig4", 120, 7, 2.5)
	r = tr.Snapshot()
	e := r.Experiments[0]
	if e.State != progress.StateDone || e.Cells != 120 || e.CacheHits != 7 || e.WallSeconds != 2.5 {
		t.Fatalf("fig4 after finish: %+v", e)
	}
	if r.ExperimentsDone != 1 {
		t.Fatalf("done count %d", r.ExperimentsDone)
	}
	// One of three experiments done: ETA extrapolates to the two left —
	// once the first-window guard is past (rate fields are suppressed
	// while the run is younger than its minimum sampling window).
	time.Sleep(120 * time.Millisecond)
	r = tr.Snapshot()
	if r.ETASeconds <= 0 {
		t.Fatalf("no ETA after first completed experiment: %+v", r)
	}

	tr.FinishExperiment("fig5", 10, 0, 0.5)
	tr.FinishExperiment("table1", 10, 0, 0.5)
	tr.Finish()
	r = tr.Snapshot()
	if r.State != progress.StateDone || r.ExperimentsDone != 3 {
		t.Fatalf("finished run: %+v", r)
	}
	if r.ETASeconds != 0 {
		t.Fatalf("done run still reports ETA %g", r.ETASeconds)
	}
}

func TestUnknownExperimentRegistersDefensively(t *testing.T) {
	tr := progress.New([]string{"a"})
	tr.StartExperiment("straggler")
	tr.FinishExperiment("straggler", 1, 0, 0.1)
	r := tr.Snapshot()
	if r.ExperimentsTotal != 2 || r.ExperimentsDone != 1 {
		t.Fatalf("straggler not tracked: %+v", r)
	}
}

func TestSinkCountersAndMonotoneDone(t *testing.T) {
	tr := progress.New(nil)
	var sink runner.ProgressSink = tr // compile-time interface check
	for i := 0; i < 5; i++ {
		sink.CellQueued()
	}
	for i := 0; i < 3; i++ {
		sink.CellStarted()
	}
	sink.CellDone()
	sink.CellCached()
	r := tr.Snapshot()
	want := progress.CellReport{Queued: 2, Running: 2, Done: 1, Cached: 1}
	if r.Cells != want {
		t.Fatalf("cells %+v, want %+v", r.Cells, want)
	}

	prev := r.Cells.Done + r.Cells.Cached
	for i := 0; i < 10; i++ {
		sink.CellDone()
		cur := tr.Snapshot().Cells
		if got := cur.Done + cur.Cached; got < prev {
			t.Fatalf("done+cached went backwards: %d -> %d", prev, got)
		} else {
			prev = got
		}
	}
}

func TestPoolIntegration(t *testing.T) {
	tr := progress.New([]string{"it"})
	pool := runner.New(4)
	pool.SetProgress(tr)
	tr.StartExperiment("it")

	// A cache where odd cells hit: done cells and cached cells must
	// land in their separate counters.
	cc := &fakeCache{data: map[int][]byte{}}
	runner.MapCached(pool, cc, "scope", 8, func(i int) int { return i * i })
	first := tr.Snapshot().Cells
	runner.MapCached(pool, cc, "scope", 8, func(i int) int { return i * i })
	pool.Close()
	tr.FinishExperiment("it", 16, 8, 0.1)
	tr.Finish()

	r := tr.Snapshot()
	if first.Done != 8 || first.Cached != 0 {
		t.Fatalf("cold pass cells: %+v", first)
	}
	if r.Cells.Done != 8 || r.Cells.Cached != 8 {
		t.Fatalf("warm pass cells: %+v", r.Cells)
	}
	if r.Cells.Queued != 0 || r.Cells.Running != 0 {
		t.Fatalf("idle pool still shows in-flight cells: %+v", r.Cells)
	}
}

// fakeCache is an in-memory CellCache.
type fakeCache struct {
	mu   sync.Mutex
	data map[int][]byte
}

func (c *fakeCache) Get(scope string, idx int) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	d, ok := c.data[idx]
	return d, ok
}

func (c *fakeCache) Put(scope string, idx int, data []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.data[idx]; !ok {
		c.data[idx] = append([]byte(nil), data...)
	}
}

func TestReportJSONAndString(t *testing.T) {
	tr := progress.New([]string{"fig4"})
	tr.StartExperiment("fig4")
	tr.CellQueued()
	tr.CellStarted()
	tr.CellDone()
	raw, err := json.Marshal(tr.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var back progress.Report
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Experiments[0].Name != "fig4" || back.Cells.Done != 1 {
		t.Fatalf("round-trip lost data: %+v", back)
	}
	s := tr.Snapshot().String()
	if !strings.Contains(s, "fig4") || !strings.Contains(s, "running") {
		t.Fatalf("String() missing content:\n%s", s)
	}
}
