// Package progress tracks a run's live state for the observability
// plane (`armbar -serve` and the `watch` subcommand): which experiments
// are queued/running/done, how many cells each took, the global cell
// counters fed by the runner's ProgressSink hooks, throughput, and an
// ETA. A Tracker is two layers with different synchronization budgets:
//
//   - Cell counters are bare atomics because the runner notifies once
//     per cell from worker goroutines — a few nanoseconds each, cheap
//     enough to leave on for whole runs.
//   - Experiment state is mutex-guarded because cmd/armbar drives it
//     once per experiment, and /progress snapshots it a few times per
//     second at most.
//
// Everything here is wall-clock observability that never reaches table
// output, so the package is deliberately outside armvet's deterministic
// set.
package progress

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Experiment states as reported by /progress.
const (
	StateQueued  = "queued"
	StateRunning = "running"
	StateDone    = "done"
)

// Tracker is the run's live state. The zero value is not usable; build
// one with New.
type Tracker struct {
	queued  atomic.Uint64 // cells submitted to the pool
	started atomic.Uint64 // cells picked up by a worker
	done    atomic.Uint64 // cells finished by a worker
	cached  atomic.Uint64 // cells served from the persistent cache

	mu       sync.Mutex
	start    time.Time
	finished time.Time // zero while the run is live
	order    []string
	exps     map[string]*expState
}

type expState struct {
	state     string
	cells     int
	cacheHits int
	wall      float64
}

// New returns a tracker for a run over the named experiments (in
// execution order), all initially queued.
func New(names []string) *Tracker {
	t := &Tracker{
		start: time.Now(),
		exps:  make(map[string]*expState, len(names)),
	}
	for _, n := range names {
		if _, dup := t.exps[n]; dup {
			continue
		}
		t.order = append(t.order, n)
		t.exps[n] = &expState{state: StateQueued}
	}
	return t
}

// CellQueued implements runner.ProgressSink.
func (t *Tracker) CellQueued() { t.queued.Add(1) }

// CellStarted implements runner.ProgressSink.
func (t *Tracker) CellStarted() { t.started.Add(1) }

// CellDone implements runner.ProgressSink.
func (t *Tracker) CellDone() { t.done.Add(1) }

// CellCached implements runner.ProgressSink.
func (t *Tracker) CellCached() { t.cached.Add(1) }

// StartExperiment marks the named experiment running. Unknown names
// are registered on the fly (defensive: the -serve wiring passes the
// same list the run loop iterates, but a drift must not panic a run).
func (t *Tracker) StartExperiment(name string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.state(name).state = StateRunning
}

// FinishExperiment marks the named experiment done and records its
// cell totals and wall time.
func (t *Tracker) FinishExperiment(name string, cells, cacheHits int, wallSeconds float64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := t.state(name)
	s.state = StateDone
	s.cells = cells
	s.cacheHits = cacheHits
	s.wall = wallSeconds
}

// Finish marks the whole run complete, freezing the elapsed clock.
func (t *Tracker) Finish() {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.finished.IsZero() {
		t.finished = time.Now()
	}
}

// state returns the experiment record, registering stragglers.
// Caller holds t.mu.
func (t *Tracker) state(name string) *expState {
	s, ok := t.exps[name]
	if !ok {
		s = &expState{state: StateQueued}
		t.exps[name] = s
		t.order = append(t.order, name)
	}
	return s
}

// CellReport is the global cell-state breakdown. Queued counts cells
// waiting in the pool's submission queue (submitted, not yet picked
// up); Done and Cached only ever increase, so pollers may rely on
// Done+Cached being monotone.
type CellReport struct {
	Queued  uint64 `json:"queued"`
	Running uint64 `json:"running"`
	Done    uint64 `json:"done"`
	Cached  uint64 `json:"cached"`
}

// ExperimentReport is one experiment's row in a Report.
type ExperimentReport struct {
	Name        string  `json:"name"`
	State       string  `json:"state"`
	Cells       int     `json:"cells,omitempty"`
	CacheHits   int     `json:"cache_hits,omitempty"`
	WallSeconds float64 `json:"wall_seconds,omitempty"`
}

// Report is the JSON document served at /progress.
type Report struct {
	State            string             `json:"state"` // running | done
	ElapsedSeconds   float64            `json:"elapsed_seconds"`
	ExperimentsTotal int                `json:"experiments_total"`
	ExperimentsDone  int                `json:"experiments_done"`
	Cells            CellReport         `json:"cells"`
	CellsPerSecond   float64            `json:"cells_per_second"`
	ETASeconds       float64            `json:"eta_seconds,omitempty"`
	Experiments      []ExperimentReport `json:"experiments"`
}

// Snapshot assembles the current Report. The cell counters are read
// without the lock (they are atomics, and a torn multi-counter view
// only momentarily misstates the running count), so Snapshot is safe
// to call at any rate from the serve handlers.
func (t *Tracker) Snapshot() Report {
	queued := t.queued.Load()
	started := t.started.Load()
	done := t.done.Load()
	cached := t.cached.Load()

	t.mu.Lock()
	defer t.mu.Unlock()

	r := Report{
		State:            StateRunning,
		ExperimentsTotal: len(t.order),
		Cells: CellReport{
			Queued:  queued - minu(started, queued),
			Running: started - minu(done, started),
			Done:    done,
			Cached:  cached,
		},
	}
	end := time.Now()
	if !t.finished.IsZero() {
		r.State = StateDone
		end = t.finished
	}
	r.ElapsedSeconds = end.Sub(t.start).Seconds()
	// Rates need a minimum window: a snapshot taken microseconds into
	// the run (the first /progress poll, or a fully cache-served start)
	// would otherwise divide a handful of cells by near-zero elapsed
	// and report millions of cells per second.
	if r.ElapsedSeconds >= minRateWindow {
		r.CellsPerSecond = float64(done+cached) / r.ElapsedSeconds
	}

	var wallDone float64
	for _, n := range t.order {
		s := t.exps[n]
		r.Experiments = append(r.Experiments, ExperimentReport{
			Name:        n,
			State:       s.state,
			Cells:       s.cells,
			CacheHits:   s.cacheHits,
			WallSeconds: s.wall,
		})
		if s.state == StateDone {
			r.ExperimentsDone++
			wallDone += s.wall
		}
	}
	// ETA: per-experiment cell totals are unknown until each finishes,
	// so extrapolate from the average wall time of completed
	// experiments. Crude but honest — it converges as the run proceeds
	// and is omitted (zero) until the first experiment lands.
	// The same window guards the ETA: inside it the completed wall
	// times are cache-hit noise, and the extrapolation below would
	// project that noise over the whole run. Clamp non-finite results
	// (a defensive rail — wall times are measured, but a poisoned
	// FinishExperiment input must not serve NaN to pollers).
	if remaining := r.ExperimentsTotal - r.ExperimentsDone; remaining > 0 && r.ExperimentsDone > 0 &&
		r.State == StateRunning && r.ElapsedSeconds >= minRateWindow {
		eta := wallDone / float64(r.ExperimentsDone) * float64(remaining)
		if math.IsNaN(eta) || math.IsInf(eta, 0) || eta < 0 {
			eta = 0
		}
		r.ETASeconds = eta
	}
	return r
}

// minRateWindow is how much wall time must elapse before Snapshot
// reports rate-derived fields (cells/s, ETA). Below it the divisors
// are a race between the first poll and the run's first scheduling
// quantum, and the quotients are garbage.
const minRateWindow = 0.1 // seconds

func minu(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

// String renders the report as the `armbar watch` terminal block: a
// summary line plus one row per experiment.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s  %d/%d experiments  cells done %d (cached %d, running %d, queued %d)  %.1f cells/s  elapsed %.1fs",
		r.State, r.ExperimentsDone, r.ExperimentsTotal,
		r.Cells.Done, r.Cells.Cached, r.Cells.Running, r.Cells.Queued,
		r.CellsPerSecond, r.ElapsedSeconds)
	if r.ETASeconds > 0 {
		fmt.Fprintf(&b, "  eta %.0fs", r.ETASeconds)
	}
	b.WriteByte('\n')
	for _, e := range r.Experiments {
		fmt.Fprintf(&b, "  %-10s %-8s", e.Name, e.State)
		if e.State == StateDone {
			fmt.Fprintf(&b, " %5d cells %4d cached %7.2fs", e.Cells, e.CacheHits, e.WallSeconds)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
