package progress

import (
	"testing"
	"time"
)

// White-box tests for the first-window guard: they backdate the
// tracker's start to simulate elapsed time without sleeping.

func (t *Tracker) backdate(d time.Duration) {
	t.mu.Lock()
	t.start = t.start.Add(-d)
	t.mu.Unlock()
}

func TestFirstWindowSuppressesRates(t *testing.T) {
	tr := New([]string{"a", "b"})
	// Cells land immediately (a warm cache does exactly this), and the
	// first experiment finishes with ~zero wall time.
	for i := 0; i < 5; i++ {
		tr.CellQueued()
		tr.CellStarted()
		tr.CellDone()
	}
	tr.FinishExperiment("a", 5, 5, 0.000001)
	r := tr.Snapshot()
	if r.ElapsedSeconds >= minRateWindow {
		t.Skip("snapshot took longer than the rate window; nothing to assert")
	}
	if r.CellsPerSecond != 0 {
		t.Errorf("CellsPerSecond = %f inside the first window, want 0", r.CellsPerSecond)
	}
	if r.ETASeconds != 0 {
		t.Errorf("ETASeconds = %f inside the first window, want 0", r.ETASeconds)
	}
}

func TestRatesAppearAfterWindow(t *testing.T) {
	tr := New([]string{"a", "b"})
	for i := 0; i < 10; i++ {
		tr.CellQueued()
		tr.CellStarted()
		tr.CellDone()
	}
	tr.FinishExperiment("a", 10, 0, 2.0)
	tr.backdate(4 * time.Second)
	r := tr.Snapshot()
	if r.CellsPerSecond <= 0 {
		t.Errorf("CellsPerSecond = %f after the window, want > 0", r.CellsPerSecond)
	}
	if r.ETASeconds <= 0 {
		t.Errorf("ETASeconds = %f with one experiment done and one queued, want > 0", r.ETASeconds)
	}
}

func TestETAClampsNonFinite(t *testing.T) {
	tr := New([]string{"a", "b"})
	tr.FinishExperiment("a", 1, 0, nan())
	tr.backdate(time.Second)
	if r := tr.Snapshot(); r.ETASeconds != 0 {
		t.Errorf("ETASeconds = %f from a NaN wall time, want clamped 0", r.ETASeconds)
	}
	tr2 := New([]string{"a", "b"})
	tr2.FinishExperiment("a", 1, 0, -5)
	tr2.backdate(time.Second)
	if r := tr2.Snapshot(); r.ETASeconds != 0 {
		t.Errorf("ETASeconds = %f from a negative wall time, want clamped 0", r.ETASeconds)
	}
}

func nan() float64 {
	z := 0.0
	return z / z
}
