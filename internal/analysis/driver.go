package analysis

import (
	"fmt"
	"go/token"
	"sort"
)

// RunAnalyzers executes every analyzer over every package, applies
// //armvet:ignore suppressions, and returns the surviving findings
// sorted by position then pass name. Analyzer errors abort the run.
func RunAnalyzers(fset *token.FileSet, pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	known := map[string]bool{}
	for _, a := range analyzers {
		known[a.Name] = true
	}
	var out []Finding
	for _, pkg := range pkgs {
		// One suppression table per file, shared by all passes.
		sup := map[string]suppressions{}
		for _, f := range pkg.Files {
			name := fset.Position(f.Pos()).Filename
			sup[name] = collectSuppressions(fset, f, known)
		}
		for _, a := range analyzers {
			var diags []Diagnostic
			pass := &Pass{
				Analyzer:  a,
				Fset:      fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				Report:    func(d Diagnostic) { diags = append(diags, d) },
			}
			if _, err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s on %s: %w", a.Name, pkg.Path, err)
			}
			for _, d := range diags {
				pos := fset.Position(d.Pos)
				if s := sup[pos.Filename]; s != nil && s.suppressed(a.Name, pos.Line) {
					continue
				}
				out = append(out, Finding{Pass: a.Name, Pos: pos, Message: d.Message})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Pass < b.Pass
	})
	return out, nil
}

// Analyzers returns the default armvet pass suite in its canonical
// order.
func Analyzers() []*Analyzer {
	return []*Analyzer{DetermVet, LockVet, AtomicVet, AllocVet, MetricVet, ProgVet}
}
