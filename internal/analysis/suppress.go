package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// Suppression directives
//
// A finding is silenced with
//
//	//armvet:ignore <pass>[,<pass>...]
//
// where <pass> is an analyzer name or "all". The directive may carry
// trailing prose ("//armvet:ignore determvet — wall-clock only").
// Matching is deliberately tolerant of real-world comment placement:
//
//   - trailing on the flagged line:   x := time.Now() //armvet:ignore determvet
//   - anywhere in the doc-comment group immediately above the flagged
//     line (the group suppresses the first code line after it, the way
//     doc comments attach to declarations);
//   - embedded after other directives on the same comment
//     ("//nolint:gocritic //armvet:ignore allocvet"), with or without
//     a space after the //.
//
// The last two are the satellite bugfix: an earlier, stricter parser
// required the directive to be the whole comment and to sit exactly
// on the flagged line, which made doc-group and nolint-adjacent
// directives silently not match anything.

const ignoreDirective = "armvet:ignore"

// suppressions maps line number -> pass names silenced on that line.
type suppressions map[int]map[string]bool

// suppressed reports whether pass findings on line are silenced.
func (s suppressions) suppressed(pass string, line int) bool {
	m := s[line]
	return m != nil && (m[pass] || m["all"])
}

// directivePasses extracts the pass names of every armvet:ignore
// directive in a comment's raw text ("" tokens end the name list, so
// trailing prose is ignored). known limits names to real passes plus
// "all"; unknown words simply terminate the list.
func directivePasses(text string, known map[string]bool) []string {
	var out []string
	rest := text
	for {
		i := strings.Index(rest, ignoreDirective)
		if i < 0 {
			return out
		}
		rest = rest[i+len(ignoreDirective):]
		// Pass names: comma- or space-separated identifiers until the
		// first word that is not a known pass name.
		fields := strings.FieldsFunc(rest, func(r rune) bool {
			return r == ' ' || r == '\t' || r == ','
		})
		for _, f := range fields {
			if known[f] || f == "all" {
				out = append(out, f)
				continue
			}
			break
		}
	}
}

// collectSuppressions builds the per-line suppression table for one
// file. A comment group's directives apply to every line the group
// spans plus the line immediately after the group (the doc-comment
// attachment rule); consecutive lines of one group chain naturally, so
// a directive buried in the middle of a doc block still reaches the
// declaration under it.
func collectSuppressions(fset *token.FileSet, file *ast.File, known map[string]bool) suppressions {
	sup := suppressions{}
	mark := func(line int, passes []string) {
		m := sup[line]
		if m == nil {
			m = map[string]bool{}
			sup[line] = m
		}
		for _, p := range passes {
			m[p] = true
		}
	}
	for _, group := range file.Comments {
		var passes []string
		for _, c := range group.List {
			passes = append(passes, directivePasses(c.Text, known)...)
		}
		if len(passes) == 0 {
			continue
		}
		start := fset.Position(group.Pos()).Line
		end := fset.Position(group.End()).Line
		for line := start; line <= end+1; line++ {
			mark(line, passes)
		}
	}
	return sup
}
