package analysis

import (
	"go/parser"
	"go/token"
	"testing"
)

// TestDirectivePasses exercises the raw directive parser: trailing
// prose, comma lists, nolint-adjacency, and unknown names.
func TestDirectivePasses(t *testing.T) {
	known := map[string]bool{"determvet": true, "allocvet": true, "lockvet": true}
	cases := []struct {
		text string
		want []string
	}{
		{"//armvet:ignore determvet", []string{"determvet"}},
		{"// armvet:ignore determvet — wall-clock observability", []string{"determvet"}},
		{"//armvet:ignore determvet,allocvet", []string{"determvet", "allocvet"}},
		{"//armvet:ignore all", []string{"all"}},
		{"//nolint:staticcheck //armvet:ignore lockvet", []string{"lockvet"}},
		{"//armvet:ignore nosuchpass determvet", nil},
		{"// a comment with no directive", nil},
	}
	for _, c := range cases {
		got := directivePasses(c.text, known)
		if len(got) != len(c.want) {
			t.Errorf("directivePasses(%q) = %v, want %v", c.text, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("directivePasses(%q) = %v, want %v", c.text, got, c.want)
				break
			}
		}
	}
}

// TestCollectSuppressionsDocGroup pins the line-span rule: a directive
// anywhere in a comment group silences every line of the group plus
// the line immediately after it, and nothing else.
func TestCollectSuppressionsDocGroup(t *testing.T) {
	src := `package p

// helper does things.
//
//armvet:ignore determvet
func helper() int { return 1 }

func other() int { return 2 }
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	sup := collectSuppressions(fset, f, map[string]bool{"determvet": true})
	// Group spans lines 3-5; line 6 is the declaration under it.
	for line := 3; line <= 6; line++ {
		if !sup.suppressed("determvet", line) {
			t.Errorf("line %d: want suppressed", line)
		}
	}
	if sup.suppressed("determvet", 8) {
		t.Error("line 8: suppression leaked past the doc group")
	}
	if sup.suppressed("lockvet", 5) {
		t.Error("line 5: suppression leaked to an unnamed pass")
	}
}
