package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	// Path is the import path ("armbar/internal/sim"). Packages under
	// a testdata/src directory get the path relative to it ("badpkg"),
	// matching the x/tools analysistest convention.
	Path  string
	Dir   string
	Files []*ast.File // non-test files, sorted by file name
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks module packages without the go
// command: module-internal imports resolve through the loader itself
// (recursively), everything else through the standard library's
// source importer, so the whole pipeline works offline.
type Loader struct {
	Fset *token.FileSet

	moduleName string
	moduleRoot string
	std        types.Importer
	byDir      map[string]*Package
	byPath     map[string]*Package
	loading    map[string]bool
}

// NewLoader builds a loader for the module containing dir (dir or an
// ancestor must hold go.mod).
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("analysis: no go.mod at or above %s", abs)
		}
		root = parent
	}
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	name := ""
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			name = strings.TrimSpace(rest)
			break
		}
	}
	if name == "" {
		return nil, fmt.Errorf("analysis: no module directive in %s/go.mod", root)
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:       fset,
		moduleName: name,
		moduleRoot: root,
		std:        importer.ForCompiler(fset, "source", nil),
		byDir:      map[string]*Package{},
		byPath:     map[string]*Package{},
		loading:    map[string]bool{},
	}, nil
}

// ModuleName returns the module's import-path prefix.
func (l *Loader) ModuleName() string { return l.moduleName }

// Import implements types.Importer: module-internal paths load (and
// cache) through the loader, everything else goes to the stdlib
// source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.moduleName || strings.HasPrefix(path, l.moduleName+"/") {
		dir := filepath.Join(l.moduleRoot, strings.TrimPrefix(strings.TrimPrefix(path, l.moduleName), "/"))
		pkg, err := l.LoadDir(dir)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// importPathFor derives the import path of a directory: module-based,
// except under testdata/src where the analysistest convention (path
// relative to testdata/src) applies.
func (l *Loader) importPathFor(dir string) string {
	if i := strings.LastIndex(dir, string(filepath.Separator)+"testdata"+string(filepath.Separator)+"src"+string(filepath.Separator)); i >= 0 {
		return filepath.ToSlash(dir[i+len("/testdata/src/"):])
	}
	rel, err := filepath.Rel(l.moduleRoot, dir)
	if err != nil || rel == "." {
		return l.moduleName
	}
	return l.moduleName + "/" + filepath.ToSlash(rel)
}

// LoadDir parses and type-checks the package in dir (non-test files
// only). Results are cached per directory.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	if pkg := l.byDir[abs]; pkg != nil {
		return pkg, nil
	}
	path := l.importPathFor(abs)
	if l.loading[abs] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	l.loading[abs] = true
	defer delete(l.loading, abs)

	names, err := goSourceFiles(abs)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("analysis: no non-test Go files in %s", abs)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(abs, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	pkg := &Package{Path: path, Dir: abs, Files: files, Types: tpkg, Info: info}
	l.byDir[abs] = pkg
	l.byPath[path] = pkg
	return pkg, nil
}

// goSourceFiles lists the buildable non-test .go files of dir, sorted.
func goSourceFiles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// LoadPatterns resolves command-line package patterns ("./...",
// "dir/...", plain directories, or module import paths) into loaded
// packages, in deterministic (sorted-directory) order.
func (l *Loader) LoadPatterns(patterns []string) ([]*Package, error) {
	var dirs []string
	seen := map[string]bool{}
	add := func(dir string) {
		abs, err := filepath.Abs(dir)
		if err != nil {
			return
		}
		if !seen[abs] {
			seen[abs] = true
			dirs = append(dirs, abs)
		}
	}
	for _, pat := range patterns {
		switch {
		case strings.HasSuffix(pat, "/..."):
			base := strings.TrimSuffix(pat, "/...")
			if base == "" || base == "." {
				base = "."
			}
			expanded, err := expandTree(base)
			if err != nil {
				return nil, err
			}
			for _, d := range expanded {
				add(d)
			}
		case pat == l.moduleName || strings.HasPrefix(pat, l.moduleName+"/"):
			add(filepath.Join(l.moduleRoot, strings.TrimPrefix(strings.TrimPrefix(pat, l.moduleName), "/")))
		default:
			add(pat)
		}
	}
	sort.Strings(dirs)
	var pkgs []*Package
	for _, dir := range dirs {
		pkg, err := l.LoadDir(dir)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// expandTree walks base collecting every directory that holds
// buildable Go files, skipping testdata, vendor and hidden trees.
func expandTree(base string) ([]string, error) {
	var out []string
	err := filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != base && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		files, err := goSourceFiles(path)
		if err != nil {
			return err
		}
		if len(files) > 0 {
			out = append(out, path)
		}
		return nil
	})
	return out, err
}
