package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// MetricVet enforces the metric naming discipline at every
// metrics.Registry registration site (Counter, Gauge, Histogram) and
// metrics.Labeled call:
//
//   - The bare metric name (the part before any literal label set)
//     must be resolvable at compile time: a constant expression, a
//     concatenation whose constant left prefix already contains '{'
//     (only label data is dynamic), an fmt.Sprintf whose constant
//     format puts every verb inside the label set, or metrics.Labeled
//     with a resolvable first argument. Runtime-built bare names
//     cannot be grepped, dashboarded, or deduplicated — the profiler's
//     cause names are package-level constants for the same reason.
//   - The bare name must be Prometheus-conventional snake_case:
//     ^[a-z][a-z0-9]*(_[a-z0-9]+)*$.
//   - Within a package, one bare name registers exactly one instrument
//     kind: re-registering a counter family as a gauge (or histogram)
//     silently forks the time series.
//
// Update sites reusing a family name (the registry's get-or-create
// API) are indistinguishable from registration and are held to the
// same rules — which is the point: every site stays resolvable.
var MetricVet = &Analyzer{
	Name: "metricvet",
	Doc:  "enforce constant-resolvable snake_case metric names registered as exactly one instrument kind",
	Run:  runMetricVet,
}

var metricNameRe = regexp.MustCompile(`^[a-z][a-z0-9]*(_[a-z0-9]+)*$`)

func runMetricVet(pass *Pass) (interface{}, error) {
	type family struct {
		kind string
		pos  token.Pos
	}
	families := map[string]family{}
	// A Labeled call used directly as a registration's name argument is
	// checked through the registration; remembering it avoids a second,
	// duplicate diagnostic when the walk reaches the inner call.
	claimed := map[ast.Node]bool{}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			kind, ok := metricRegistration(pass, call)
			if !ok {
				return true
			}
			if kind == "Labeled" && claimed[call] {
				return true
			}
			if kind != "Labeled" {
				claimed[ast.Unparen(call.Args[0])] = true
			}
			bare, ok := bareMetricName(pass, call.Args[0])
			if !ok {
				pass.Reportf(call.Args[0].Pos(),
					"metric name passed to %s is not constant-resolvable; build it from package-level constants (dynamic data belongs in labels, e.g. metrics.Labeled)", kind)
				return true
			}
			if !metricNameRe.MatchString(bare) {
				pass.Reportf(call.Args[0].Pos(),
					"metric name %q is not snake_case (want %s)", bare, metricNameRe)
				return true
			}
			if kind == "Labeled" {
				return true // a name builder, not a registration
			}
			if prev, seen := families[bare]; seen && prev.kind != kind {
				pass.Reportf(call.Args[0].Pos(),
					"metric %q already registered as a %s in this package; re-registering as a %s forks the family", bare, prev.kind, kind)
				return true
			} else if !seen {
				families[bare] = family{kind: kind, pos: call.Args[0].Pos()}
			}
			return true
		})
	}
	return nil, nil
}

// metricRegistration classifies a call as a metrics.Registry
// registration ("Counter", "Gauge", "Histogram") or a
// metrics.Labeled name construction ("Labeled"). Matching is by
// package and receiver name rather than import path so fixtures and
// future package moves keep working.
func metricRegistration(pass *Pass, call *ast.CallExpr) (string, bool) {
	fn := calleeOf(pass, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Name() != "metrics" {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return "", false
	}
	switch fn.Name() {
	case "Counter", "Gauge", "Histogram":
		recv := sig.Recv()
		if recv == nil {
			return "", false
		}
		t := recv.Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		named, ok := t.(*types.Named)
		if !ok || named.Obj().Name() != "Registry" {
			return "", false
		}
		return fn.Name(), true
	case "Labeled":
		return "Labeled", sig.Recv() == nil
	}
	return "", false
}

// bareMetricName resolves the bare (pre-label-set) metric name of a
// name expression, reporting failure when the bare part depends on
// runtime data.
func bareMetricName(pass *Pass, e ast.Expr) (string, bool) {
	e = ast.Unparen(e)
	// Fully constant — literal, named const, or constant concatenation.
	if tv, ok := pass.TypesInfo.Types[e]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
		return bareOfMetric(constant.StringVal(tv.Value)), true
	}
	switch x := e.(type) {
	case *ast.BinaryExpr:
		// Concatenation with dynamic pieces: fine as long as the
		// constant left prefix already opened the label set.
		if x.Op != token.ADD {
			return "", false
		}
		left := x
		for {
			inner, ok := ast.Unparen(left.X).(*ast.BinaryExpr)
			if !ok || inner.Op != token.ADD {
				break
			}
			left = inner
		}
		tv, ok := pass.TypesInfo.Types[ast.Unparen(left.X)]
		if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
			return "", false
		}
		prefix := constant.StringVal(tv.Value)
		if !strings.Contains(prefix, "{") {
			return "", false
		}
		return bareOfMetric(prefix), true
	case *ast.CallExpr:
		fn := calleeOf(pass, x)
		if fn == nil || fn.Pkg() == nil || len(x.Args) == 0 {
			return "", false
		}
		if fn.Pkg().Name() == "metrics" && fn.Name() == "Labeled" {
			return bareMetricName(pass, x.Args[0])
		}
		if fn.Pkg().Path() == "fmt" && fn.Name() == "Sprintf" {
			tv, ok := pass.TypesInfo.Types[ast.Unparen(x.Args[0])]
			if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
				return "", false
			}
			format := constant.StringVal(tv.Value)
			brace := strings.IndexByte(format, '{')
			verb := strings.IndexByte(format, '%')
			if verb >= 0 && (brace < 0 || verb < brace) {
				return "", false // a verb lands in the bare name
			}
			return bareOfMetric(format), true
		}
	}
	return "", false
}

// bareOfMetric mirrors the exporter's bareName: the family is
// everything before a literal label set.
func bareOfMetric(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}
