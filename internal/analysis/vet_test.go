package analysis_test

import (
	"testing"

	"armbar/internal/analysis"
	"armbar/internal/analysis/analysistest"
)

func TestDetermVet(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.DetermVet, "determ")
}

func TestLockVet(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.LockVet, "lock")
}

func TestAtomicVet(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.AtomicVet, "atomicpkg")
}

func TestAllocVet(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.AllocVet, "alloc")
}

// TestSuppression drives determvet over a fixture whose findings are
// silenced with every supported //armvet:ignore placement (trailing,
// doc-comment group, nolint-adjacent, "all") plus one directive naming
// the wrong pass, which must NOT suppress.
func TestSuppression(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.DetermVet, "suppress")
}

// TestBadPkgTripsLockVet pins the seeded-defect fixture the cmd/armvet
// smoke test relies on: badpkg must produce exactly one lockvet
// finding under the full suite.
func TestBadPkgTripsLockVet(t *testing.T) {
	loader, err := analysis.NewLoader("testdata/src/badpkg")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.LoadPatterns([]string{"testdata/src/badpkg"})
	if err != nil {
		t.Fatal(err)
	}
	findings, err := analysis.RunAnalyzers(loader.Fset, pkgs, analysis.Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 {
		t.Fatalf("want exactly 1 finding in badpkg, got %d: %v", len(findings), findings)
	}
	if f := findings[0]; f.Pass != "lockvet" {
		t.Fatalf("want a lockvet finding, got %v", f)
	}
}

func TestMetricVet(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.MetricVet, "metricpkg")
}

func TestProgVet(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.ProgVet, "progpkg")
}
