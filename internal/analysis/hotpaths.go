package analysis

// This file is the committed configuration of the pass suite: which
// packages must stay deterministic (determvet) and which functions are
// hot paths that must stay allocation-free (allocvet).

// DeterministicPackages lists the import paths whose output feeds the
// seeded byte-identical pipeline (table rows, CSV, registry order,
// scheduling decisions). determvet runs only inside these; other
// packages may use wall clocks and global rand freely.
//
// "determ" and "suppress" are analysistest fixture packages for the
// pass and for the //armvet:ignore placement rules.
var DeterministicPackages = map[string]bool{
	"armbar/internal/sim":       true,
	"armbar/internal/prog":      true,
	"armbar/internal/figures":   true,
	"armbar/internal/report":    true,
	"armbar/internal/runner":    true,
	"armbar/internal/metrics":   true,
	"armbar/internal/mesi":      true,
	"armbar/internal/trace":     true,
	"armbar/internal/scenario":  true,
	"armbar/internal/cellcache": true,
	"armbar/internal/explore":   true,
	"determ":                    true,
	"suppress":                  true,
}

// HotPathFuncs is the committed list of functions on the simulator's
// per-operation critical path — the code the BENCH_sim.json perf gate
// pins at 0 allocs/op (BenchmarkRendezvousLoadHit,
// BenchmarkRendezvousTwoThreads, BenchmarkStoreCommit,
// BenchmarkStoreDMBFull). allocvet flags allocation-forcing constructs
// inside them. Keys are "importpath.Receiver.name" (receiver
// star-stripped) or "importpath.name" for plain functions.
//
// Deliberately excluded: addrTimes.grow and Directory.line (rare
// resize / lazy-init paths that allocate by design and are amortized
// away), Machine.fatalLocked / Machine.stuckReport / Machine.finishThread
// (error and shutdown paths), and everything the benchmarks never
// reach. Fixture functions opt in with an `// armvet:hotpath` doc
// marker instead of being listed here.
var HotPathFuncs = map[string]bool{
	// Scheduler rendezvous (internal/sim/sched.go).
	"armbar/internal/sim.Thread.dispatch":     true,
	"armbar/internal/sim.Thread.park":         true,
	"armbar/internal/sim.Thread.grant":        true,
	"armbar/internal/sim.Machine.safeProcess": true,
	"armbar/internal/sim.Machine.noteServed":  true,
	"armbar/internal/sim.runHeap.len":         true,
	"armbar/internal/sim.runHeap.min":         true,
	"armbar/internal/sim.runLess":             true,
	"armbar/internal/sim.runHeap.push":        true,
	"armbar/internal/sim.runHeap.fix":         true,
	"armbar/internal/sim.runHeap.remove":      true,
	"armbar/internal/sim.runHeap.up":          true,
	"armbar/internal/sim.runHeap.down":        true,

	// Operation engine (internal/sim/thread.go, machine.go).
	"armbar/internal/sim.Thread.op":            true,
	"armbar/internal/sim.Thread.Load":          true,
	"armbar/internal/sim.Thread.LoadAcquire":   true,
	"armbar/internal/sim.Thread.LoadAcquirePC": true,
	"armbar/internal/sim.Thread.Store":         true,
	"armbar/internal/sim.Thread.StoreRelease":  true,
	"armbar/internal/sim.Thread.Barrier":       true,
	"armbar/internal/sim.Machine.process":      true,
	"armbar/internal/sim.Machine.doLoad":       true,
	"armbar/internal/sim.Machine.doStore":      true,
	"armbar/internal/sim.Machine.doBarrier":    true,
	"armbar/internal/sim.Machine.doRMW":        true,
	"armbar/internal/sim.Machine.forward":      true,
	"armbar/internal/sim.Machine.readCache":    true,
	"armbar/internal/sim.Machine.retireStores": true,
	"armbar/internal/sim.Machine.apply":        true,
	"armbar/internal/sim.Machine.schedule":     true,
	"armbar/internal/sim.Machine.newEvent":     true,
	"armbar/internal/sim.Machine.recycle":      true,
	"armbar/internal/sim.Machine.invProc":      true,
	"armbar/internal/sim.Machine.emit":         true,

	// Compiled-engine dispatch loop (internal/sim/compiled.go).
	// BenchmarkCompiledDispatch pins the whole program-execution path
	// at 0 allocs/op.
	"armbar/internal/sim.Thread.exec":          true,
	"armbar/internal/sim.Machine.execSolo":     true,
	"armbar/internal/sim.Machine.safeExecStep": true,
	"armbar/internal/sim.Machine.execStep":     true,
	"armbar/internal/sim.execEnv.addr":         true,
	"armbar/internal/sim.execEnv.value":        true,
	"armbar/internal/sim.execEnv.stepControl":  true,
	"armbar/internal/sim.execEnv.done":         true,
	"armbar/internal/sim.execLoad":             true,
	"armbar/internal/sim.execLoadAcq":          true,
	"armbar/internal/sim.execLoadAcqPC":        true,
	"armbar/internal/sim.execStore":            true,
	"armbar/internal/sim.execStoreRel":         true,
	"armbar/internal/sim.execBarrier":          true,
	"armbar/internal/sim.execWork":             true,
	"armbar/internal/sim.execFetchAdd":         true,
	"armbar/internal/sim.execSwap":             true,
	"armbar/internal/sim.execCAS":              true,
	"armbar/internal/sim.execRMW":              true,
	"armbar/internal/sim.execSpinEQ":           true,
	"armbar/internal/sim.execSpinNE":           true,
	"armbar/internal/sim.execSpinGE":           true,
	"armbar/internal/sim.storeStall":           true,
	"armbar/internal/sim.rmwStall":             true,

	// Cycle-attribution profiler (internal/sim/profile.go): every
	// clock advance in both engines funnels through these, profiled
	// or dark, so they must never allocate.
	"armbar/internal/sim.Thread.advBy":  true,
	"armbar/internal/sim.Thread.advTo":  true,
	"armbar/internal/sim.Thread.attrBy": true,
	"armbar/internal/sim.Thread.attrTo": true,

	// Event queue and last-store table (event.go, addrmap.go).
	"armbar/internal/sim.eventHeap.len":  true,
	"armbar/internal/sim.eventHeap.min":  true,
	"armbar/internal/sim.eventLess":      true,
	"armbar/internal/sim.eventHeap.push": true,
	"armbar/internal/sim.eventHeap.pop":  true,
	"armbar/internal/sim.addrTimes.hash": true,
	"armbar/internal/sim.addrTimes.get":  true,
	"armbar/internal/sim.addrTimes.put":  true,

	// Store buffer (internal/sb).
	"armbar/internal/sb.Buffer.Push":      true,
	"armbar/internal/sb.Buffer.Forward":   true,
	"armbar/internal/sb.Buffer.Remove":    true,
	"armbar/internal/sb.Buffer.Full":      true,
	"armbar/internal/sb.Buffer.Len":       true,
	"armbar/internal/sb.Buffer.MinCommit": true,
	"armbar/internal/sb.Buffer.MaxCommit": true,

	// Coherence directory (internal/mesi). The sharded sharer-bitset
	// primitives (lineBits, sharerWord, rank) and the atomic
	// line-occupancy gate run once or more per access at every core
	// count; BenchmarkDirectoryRank1024 and
	// BenchmarkDirectorySharerChurn1024 pin them at 0 allocs/op at the
	// 1024-core preset.
	"armbar/internal/mesi.LineOf":                   true,
	"armbar/internal/mesi.Copy.Valid":               true,
	"armbar/internal/mesi.Copy.StaleValue":          true,
	"armbar/internal/mesi.Directory.CommitStore":    true,
	"armbar/internal/mesi.Directory.Fetch":          true,
	"armbar/internal/mesi.Directory.install":        true,
	"armbar/internal/mesi.Directory.AccessDistance": true,
	"armbar/internal/mesi.Directory.HasValidCopy":   true,
	"armbar/internal/mesi.Directory.IsRMR":          true,
	"armbar/internal/mesi.Directory.CopyAt":         true,
	"armbar/internal/mesi.Directory.Committed":      true,
	"armbar/internal/mesi.Directory.PrevCommitted":  true,
	"armbar/internal/mesi.Directory.DropCopy":       true,
	"armbar/internal/mesi.Directory.lineBits":       true,
	"armbar/internal/mesi.sharerWord":               true,
	"armbar/internal/mesi.Directory.rank":           true,
	"armbar/internal/mesi.Directory.AcquireAtomic":  true,

	// Interconnect cost model (internal/ace).
	"armbar/internal/ace.Fabric.Response": true,

	// Result-cache lookup (internal/cellcache): every cell probes the
	// cache before simulating, so key build + map probe must not
	// allocate (BenchmarkCellCacheHit pins this at 0 allocs/op).
	"armbar/internal/cellcache.keyFor":    true,
	"armbar/internal/cellcache.Cache.Get": true,

	// Packed-state explorer visit loop (internal/explore/fast.go,
	// pack.go, table.go): expandOne runs once per reachable state and
	// everything below it once per transition, so the whole loop must
	// stay allocation-free in steady state (BenchmarkExploreStates pins
	// the lattice sweep; per-run setup — newFastExplorer, layout.build,
	// vtable.grow, terminal's outcome-string rendering — allocates by
	// design and is excluded, like addrTimes.grow above).
	"armbar/internal/explore.fastExplorer.expandOne":     true,
	"armbar/internal/explore.fastExplorer.emit":          true,
	"armbar/internal/explore.fastExplorer.issue":         true,
	"armbar/internal/explore.fastExplorer.loads":         true,
	"armbar/internal/explore.fastExplorer.finishLoad":    true,
	"armbar/internal/explore.fastExplorer.barrier":       true,
	"armbar/internal/explore.fastExplorer.commits":       true,
	"armbar/internal/explore.fastExplorer.eligible":      true,
	"armbar/internal/explore.fastExplorer.markClearable": true,
	"armbar/internal/explore.fastExplorer.dropClearable": true,
	"armbar/internal/explore.fastExplorer.dropStaleAddr": true,
	"armbar/internal/explore.fastExplorer.addStale":      true,
	"armbar/internal/explore.layout.pack":                true,
	"armbar/internal/explore.bitCursor.put":              true,
	"armbar/internal/explore.bitCursor.get":              true,
	"armbar/internal/explore.vtable.insert":              true,
	"armbar/internal/explore.hashWords":                  true,
	"armbar/internal/explore.equalWords":                 true,
}
