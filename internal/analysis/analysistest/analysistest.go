// Package analysistest runs one analyzer over a fixture package under
// testdata/src/<name> and checks its diagnostics against `// want`
// comments — a dependency-free subset of the
// golang.org/x/tools/go/analysis/analysistest convention.
//
// A want comment holds one or more Go string literals (backquoted
// literals keep regex escapes readable), each a regular expression that
// must match a diagnostic reported on that line:
//
//	rand.Intn(8) // want `global math/rand\.Intn`
//
// Every diagnostic must be claimed by a want on its line and every
// want must be claimed by a diagnostic; suppression directives are
// applied before matching, so fixtures can also assert that
// //armvet:ignore works.
package analysistest

import (
	"fmt"
	"regexp"
	"strconv"
	"testing"

	"armbar/internal/analysis"
)

type want struct {
	rx  *regexp.Regexp
	raw string
	hit bool
}

// wantRe captures the string literals following "want" in a comment:
// any number of backquoted or double-quoted Go literals.
var (
	wantRe    = regexp.MustCompile("//\\s*want\\s+((?:(?:`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\")\\s*)+)")
	literalRe = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")
)

// Run loads testdata/src/<pkgname>, applies the analyzer (with
// suppression filtering, as the driver does), and diffs the findings
// against the fixture's want comments.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgname string) {
	t.Helper()
	dir := testdata + "/src/" + pkgname
	loader, err := analysis.NewLoader(dir)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	pkg, err := loader.LoadDir(dir)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	findings, err := analysis.RunAnalyzers(loader.Fset, []*analysis.Package{pkg}, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}

	wants := map[string][]*want{}
	for _, file := range pkg.Files {
		for _, group := range file.Comments {
			for _, c := range group.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := loader.Fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				for _, lit := range literalRe.FindAllString(m[1], -1) {
					pat, err := strconv.Unquote(lit)
					if err != nil {
						t.Fatalf("analysistest: bad want literal %s at %s: %v", lit, key, err)
					}
					rx, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("analysistest: bad want regexp %q at %s: %v", pat, key, err)
					}
					wants[key] = append(wants[key], &want{rx: rx, raw: pat})
				}
			}
		}
	}

	for _, f := range findings {
		key := fmt.Sprintf("%s:%d", f.Pos.Filename, f.Pos.Line)
		matched := false
		for _, w := range wants[key] {
			if !w.hit && w.rx.MatchString(f.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.hit {
				t.Errorf("%s: expected diagnostic matching %q, got none", key, w.raw)
			}
		}
	}
}
