// Package suppress verifies //armvet:ignore placement tolerance (the
// directive-parser bugfix): trailing same-line, doc-comment group,
// nolint-adjacent, and "all" placements must each silence their line,
// while a directive naming a different pass must not.
package suppress

import "time"

func trailing() time.Time {
	return time.Now() //armvet:ignore determvet — trailing same-line placement
}

// docGroup carries the directive inside its doc-comment group; the
// group suppresses the first code line after it, which holds the
// one-line body.
//
//armvet:ignore determvet
func docGroup() time.Time { return time.Now() }

func nolintAdjacent() time.Time {
	return time.Now() //nolint:staticcheck //armvet:ignore determvet
}

func ignoreAll() time.Time {
	return time.Now() //armvet:ignore all
}

func wrongPass() time.Time {
	return time.Now() //armvet:ignore lockvet // want `time\.Now in deterministic package`
}
