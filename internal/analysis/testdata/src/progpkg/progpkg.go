// Package progpkg is the progvet fixture: hand-written prog.Op
// literals with in-range targets, bounded loop counters, and
// fixed-address spins pass; out-of-range targets, forward loop
// targets, ring-addressed spins, over-depth counters, and degenerate
// SpinGE waits are flagged. It uses the real prog package so the
// bounds come from the production constants.
package progpkg

import "armbar/internal/prog"

func goodProgram() []prog.Op {
	return []prog.Op{
		{Code: prog.Store, Addr: 64, Val: 1},
		{Code: prog.SpinEQ, Addr: 128, Val: 1, Target: 3},
		{Code: prog.Jump, Target: 1},
		{Code: prog.Load, Addr: 64},
		{Code: prog.LoopEnd, Target: 0, Count: 8, Dep: 7},
		{Code: prog.Jump, Target: 6}, // == len: a jump past the last op is legal
	}
}

func goodRingLoad() []prog.Op {
	// Address rings are fine on plain memory ops — only spins must
	// watch a fixed location.
	return []prog.Op{
		{Code: prog.Load, AMode: prog.AddrTable, Addr: 0, Dep: 0},
		{Code: prog.LoopEnd, Target: 0, Count: 4},
	}
}

func goodBuilder(b *prog.Builder) {
	b.SpinGE(prog.Abs(64), 5, 0)
	b.SpinEQ(prog.Abs(64), 0, 0) // equality against 0 is a real wait
}

func badTargets() []prog.Op {
	return []prog.Op{
		{Code: prog.Jump, Target: 4},           // want `jump target 4 out of range \[0,3\]`
		{Code: prog.Jump, Target: -1},          // want `jump target -1 out of range \[0,3\]`
		{Code: prog.SpinEQ, Val: 1, Target: 9}, // want `spin exit target 9 out of range \[0,3\]`
	}
}

func badLoops() []prog.Op {
	return []prog.Op{
		{Code: prog.LoopEnd, Target: 1, Count: 2}, // want `loop target 1 does not point backward from op 0`
		{Code: prog.Load, Addr: 64, Dep: 8},       // want `loop counter 8 out of range \[0,8\)`
	}
}

func badRingSpin() []prog.Op {
	return []prog.Op{
		{Code: prog.SpinGE, AMode: prog.AddrTable, Addr: 0, Val: 3, Target: 1}, // want `SpinGE through an address ring`
	}
}

func badBuilder(b *prog.Builder) {
	b.SpinGE(prog.Abs(64), 0, 0) // want `SpinGE threshold 0 is always satisfied`
}
