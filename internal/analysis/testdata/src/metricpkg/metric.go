// Package metricpkg is the metricvet fixture: registration sites with
// constant-resolvable snake_case names pass; runtime-built bare names,
// case violations, and cross-kind re-registration are flagged. It uses
// the real metrics package so receiver matching is exercised against
// the type metricvet guards in production.
package metricpkg

import (
	"fmt"

	"armbar/internal/metrics"
)

const opsTotal = "ops_total"

const causeLabel = `attr_cycles{cause="`

func good(reg *metrics.Registry, exp string, cause string) {
	reg.Counter(opsTotal).Inc()
	reg.Counter("plain_total").Inc()
	reg.Counter(opsTotal + "_more").Inc() // constant concatenation
	reg.Gauge(metrics.Labeled("labeled_gauge", "exp", exp)).Set(1)
	reg.Gauge(causeLabel + cause + `"}`).Set(1) // constant prefix opens the label set
	reg.Gauge(fmt.Sprintf(`fmt_gauge{exp=%q}`, exp)).Set(1)
	reg.Histogram("lat_cycles", []float64{1}).Observe(0.5)
	reg.Counter("plain_total").Add(2) // update site, same kind: fine
}

func bad(reg *metrics.Registry, name string) {
	reg.Counter(name).Inc()                             // want `not constant-resolvable`
	reg.Counter("made_" + name + "_total").Inc()        // want `not constant-resolvable`
	reg.Gauge(fmt.Sprintf("fmt_%s_gauge", name)).Set(1) // want `not constant-resolvable`
	reg.Gauge(metrics.Labeled(name, "exp", "x")).Set(1) // want `not constant-resolvable`
	reg.Gauge("BadGauge").Set(1)                        // want `not snake_case`
	reg.Gauge("double__bar").Set(1)                     // want `not snake_case`
	reg.Gauge("trailing_").Set(1)                       // want `not snake_case`
	_ = metrics.Labeled("Also_Checked", "a", "b")       // want `not snake_case`
}

func conflict(reg *metrics.Registry) {
	reg.Counter("family_cycles").Inc()
	reg.Gauge("family_cycles").Set(1) // want `already registered as a Counter`
}
