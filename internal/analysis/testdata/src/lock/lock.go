// Package lock is the lockvet fixture: the n field is annotated
// guardedby mu, and the pass must accept lock-taking functions and
// armvet:holds-annotated helpers while flagging bare accesses.
package lock

import "sync"

type counter struct {
	mu sync.Mutex
	n  int // armvet:guardedby mu
	ok int // unannotated: free access
}

func (c *counter) Inc() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

// addLocked is an internal helper on the locked path.
//
// armvet:holds mu
func (c *counter) addLocked(d int) {
	c.n += d
}

func (c *counter) Bad() int {
	return c.n // want `n is guarded by "mu" but Bad does not hold it`
}

func (c *counter) BadWrite(v int) {
	c.n = v // want `n is guarded by "mu" but BadWrite does not hold it`
}

func (c *counter) Free() int {
	return c.ok
}

// construct builds counters with composite-literal keys: construction
// is pre-publication and not checked.
func construct() *counter {
	return &counter{n: 1, ok: 2}
}
