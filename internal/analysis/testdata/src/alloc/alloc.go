// Package alloc is the allocvet fixture. Fixture functions opt into
// hot-path checking with the armvet:hotpath doc marker; cold functions
// may allocate freely.
package alloc

import "fmt"

type ring struct {
	buf []int
}

func consume(x interface{})    { _ = x }
func consumePtr(x interface{}) { _ = x }

// hotClosure builds a closure on the hot path.
//
// armvet:hotpath
func hotClosure(n int) func() int {
	f := func() int { return n } // want `closure literal in hot path hotClosure`
	return f
}

// hotFmt calls fmt on the hot path.
//
// armvet:hotpath
func hotFmt(v int) {
	fmt.Println(v) // want `fmt\.Println in hot path hotFmt`
}

// hotComposite returns heap material.
//
// armvet:hotpath
func hotComposite() *ring {
	return &ring{} // want `&composite literal in hot path hotComposite`
}

// hotMake allocates a backing array per call.
//
// armvet:hotpath
func hotMake(n int) []int {
	s := make([]int, n) // want `make in hot path hotMake`
	return s
}

// hotAppend grows one slice into another.
//
// armvet:hotpath
func hotAppend(dst, src []int) []int {
	dst = append(src, 1) // want `append in hot path hotAppend grows src into dst`
	return dst
}

// hotBox passes a non-constant concrete value to an interface.
//
// armvet:hotpath
func hotBox(v int) {
	consume(v) // want `passing int to interface parameter of consume in hot path hotBox`
}

// hotPanic boxes its panic operand.
//
// armvet:hotpath
func hotPanic(code int) {
	if code != 0 {
		panic(code) // want `passing int to interface parameter of panic in hot path hotPanic`
	}
}

// goodHot shows the clean idioms: same-root append, pointer to
// interface (rides in the data word), constant panic operand.
//
// armvet:hotpath
func goodHot(s []int, p *ring) []int {
	s = append(s, 1)
	s = append(s[:0], s...)
	consumePtr(p)
	if p == nil {
		panic("alloc: nil ring")
	}
	return s
}

// coldEverything is not marked and not listed: allocate away.
func coldEverything() *ring {
	r := &ring{buf: make([]int, 4)}
	r.buf = append(r.buf, len(fmt.Sprint(r)))
	return r
}
