// Package atomicpkg is the atomicvet fixture: state is accessed via
// sync/atomic in open/isOpen, so every plain access elsewhere is a
// race; other is never touched atomically and stays free.
package atomicpkg

import "sync/atomic"

type gate struct {
	state int32
	other int32
}

func (g *gate) open() {
	atomic.StoreInt32(&g.state, 1)
}

func (g *gate) isOpen() bool {
	return atomic.LoadInt32(&g.state) == 1
}

func (g *gate) badRead() bool {
	return g.state == 1 // want `state is accessed with sync/atomic elsewhere`
}

func (g *gate) badWrite() {
	g.state = 0 // want `state is accessed with sync/atomic elsewhere`
}

func (g *gate) plainOther() int32 {
	g.other = 2
	return g.other
}

// typedAtomics are safe by construction: no findings on methods.
type typedGate struct {
	state atomic.Int32
}

func (g *typedGate) flip() bool {
	g.state.Store(1)
	return g.state.Load() == 1
}
