// Package badpkg is a deliberately defective fixture: cmd/armvet's
// smoke test runs the multichecker over it and asserts a nonzero exit
// with a lockvet finding.
package badpkg

import "sync"

type box struct {
	mu sync.Mutex
	v  int // armvet:guardedby mu
}

func (b *box) Set(v int) {
	b.mu.Lock()
	b.v = v
	b.mu.Unlock()
}

// Peek reads v without the lock — the seeded defect.
func (b *box) Peek() int {
	return b.v
}
