// Package determ is the determvet fixture: its name is listed in
// analysis.DeterministicPackages, so the pass treats it like a real
// deterministic-output package.
package determ

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

func wallClock() float64 {
	start := time.Now()                // want `time\.Now in deterministic package`
	return time.Since(start).Seconds() // want `time\.Since in deterministic package`
}

func globalRand() int {
	return rand.Intn(8) // want `global math/rand\.Intn`
}

// seededRand is the sanctioned pattern: explicit source, method calls.
func seededRand(seed int64) float64 {
	r := rand.New(rand.NewSource(seed))
	return r.Float64()
}

func emitUnsorted(m map[string]int) {
	for k, v := range m {
		fmt.Printf("%s=%d\n", k, v) // want `map iteration order escapes into fmt\.Printf`
	}
}

func appendUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `append to keys inside map range`
	}
	return keys
}

// collectThenSort is the sanctioned pattern: the enclosing function
// sorts the collected slice, so iteration order never escapes.
func collectThenSort(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// aggregate ranges a map order-independently: no finding.
func aggregate(m map[string]int) int {
	top := 0
	for _, v := range m {
		if v > top {
			top = v
		}
	}
	return top
}

// localCollect appends to a slice declared inside the loop body: the
// order dies with the iteration, no finding.
func localCollect(m map[string][]int) int {
	n := 0
	for _, vs := range m {
		var local []int
		local = append(local, vs...)
		n += len(local)
	}
	return n
}
