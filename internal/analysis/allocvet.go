package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// AllocVet complements the runtime perf gate (scripts/perf_gate.sh
// pinning BENCH_sim.json at 0 allocs/op): inside the committed
// hot-path functions (HotPathFuncs, or any function whose doc carries
// an `// armvet:hotpath` marker) it flags constructs that force — or
// strongly invite — heap allocation:
//
//   - closure literals (captured variables escape);
//   - fmt.* calls (variadic ...interface{} boxes every argument);
//   - &T{...}, new(T), make(...) — explicit heap material;
//   - append whose result lands in a different variable than its
//     source (the usual s = append(s, ...) reuse pattern is fine);
//   - passing a non-constant, non-pointer-shaped concrete value to an
//     interface parameter (including panic(v)) — interface boxing.
//
// A construct that is deliberate (freelist-miss &event{}, rare
// capacity-shrink make) is silenced with //armvet:ignore allocvet at
// the site, keeping the exception visible in the diff.
var AllocVet = &Analyzer{
	Name: "allocvet",
	Doc:  "flag allocation-forcing constructs in the committed hot-path function list",
	Run:  runAllocVet,
}

const hotPathMarker = "armvet:hotpath"

func runAllocVet(pass *Pass) (interface{}, error) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if !isHotPath(pass, fn) {
				continue
			}
			allocCheckFunc(pass, fn)
		}
	}
	return nil, nil
}

// funcKey renders a FuncDecl as "importpath.Receiver.name" /
// "importpath.name", the HotPathFuncs key format.
func funcKey(pass *Pass, fn *ast.FuncDecl) string {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return pass.Pkg.Path() + "." + fn.Name.Name
	}
	t := fn.Recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.ParenExpr:
			t = x.X
		case *ast.IndexExpr: // generic receiver
			t = x.X
		default:
			if id, ok := t.(*ast.Ident); ok {
				return pass.Pkg.Path() + "." + id.Name + "." + fn.Name.Name
			}
			return pass.Pkg.Path() + "." + fn.Name.Name
		}
	}
}

func isHotPath(pass *Pass, fn *ast.FuncDecl) bool {
	if HotPathFuncs[funcKey(pass, fn)] {
		return true
	}
	if fn.Doc != nil {
		for _, c := range fn.Doc.List {
			if strings.Contains(c.Text, hotPathMarker) {
				return true
			}
		}
	}
	return false
}

func allocCheckFunc(pass *Pass, fn *ast.FuncDecl) {
	inspectStack(fn.Body, func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "closure literal in hot path %s: captured variables escape to the heap", fn.Name.Name)
			return false // its body is cold by construction once flagged
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					pass.Reportf(n.Pos(), "&composite literal in hot path %s allocates", fn.Name.Name)
				}
			}
		case *ast.CallExpr:
			allocCheckCall(pass, fn, n, stack)
		}
		return true
	})
}

func allocCheckCall(pass *Pass, fn *ast.FuncDecl, call *ast.CallExpr, stack []ast.Node) {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "new", "make":
				pass.Reportf(call.Pos(), "%s in hot path %s allocates", id.Name, fn.Name.Name)
			case "append":
				allocCheckAppend(pass, fn, call, stack)
			case "panic":
				if len(call.Args) == 1 {
					allocCheckBoxing(pass, fn, call.Args[0], "panic")
				}
			}
			return
		}
	}
	callee := calleeOf(pass, call)
	if callee != nil && callee.Pkg() != nil && callee.Pkg().Path() == "fmt" {
		pass.Reportf(call.Pos(), "fmt.%s in hot path %s allocates (boxes every operand)", callee.Name(), fn.Name.Name)
		return
	}
	// Interface boxing at ordinary call sites.
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return // type conversion
	}
	name := "call"
	if callee != nil {
		name = callee.Name()
	}
	for i, arg := range call.Args {
		var param types.Type
		switch {
		case sig.Variadic() && i >= sig.Params().Len()-1:
			last := sig.Params().At(sig.Params().Len() - 1).Type()
			if call.Ellipsis != token.NoPos {
				param = last // spread: slice passed as-is, no boxing
			} else if sl, ok := last.(*types.Slice); ok {
				param = sl.Elem()
			}
		case i < sig.Params().Len():
			param = sig.Params().At(i).Type()
		}
		if param == nil {
			continue
		}
		if _, isIface := param.Underlying().(*types.Interface); isIface {
			allocCheckBoxing(pass, fn, arg, name)
		}
	}
}

// allocCheckBoxing reports arg if converting it to an interface
// allocates: non-constant, concrete, and not pointer-shaped (pointers,
// chans, maps and funcs ride in the interface data word directly;
// constants get static descriptors).
func allocCheckBoxing(pass *Pass, fn *ast.FuncDecl, arg ast.Expr, callee string) {
	tv, ok := pass.TypesInfo.Types[arg]
	if !ok || tv.Value != nil || tv.IsNil() {
		return
	}
	switch tv.Type.Underlying().(type) {
	case *types.Interface, *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return
	}
	pass.Reportf(arg.Pos(), "passing %s to interface parameter of %s in hot path %s boxes it onto the heap", tv.Type, callee, fn.Name.Name)
}

// allocCheckAppend flags append calls whose result does not flow back
// into the slice they extend: `dst = append(src, ...)` with different
// roots builds a fresh backing array on the hot path, and an
// unassigned append discards capacity.
func allocCheckAppend(pass *Pass, fn *ast.FuncDecl, call *ast.CallExpr, stack []ast.Node) {
	if len(call.Args) == 0 {
		return
	}
	var parent ast.Node
	if len(stack) > 0 {
		parent = stack[len(stack)-1]
	}
	if as, ok := parent.(*ast.AssignStmt); ok && len(as.Lhs) == 1 && len(as.Rhs) == 1 && ast.Unparen(as.Rhs[0]) == call {
		lhs := exprRoot(as.Lhs[0])
		src := exprRoot(call.Args[0])
		if lhs != "" && lhs == src {
			return
		}
		pass.Reportf(call.Pos(), "append in hot path %s grows %s into %s: fresh backing array; reuse the destination slice", fn.Name.Name, exprString(call.Args[0]), exprString(as.Lhs[0]))
		return
	}
	pass.Reportf(call.Pos(), "append result not reassigned to its source in hot path %s: grown backing array escapes", fn.Name.Name)
}

// exprRoot renders the storage root of an lvalue-ish expression:
// index, slice, paren and star layers stripped, selector chains kept
// ("b.pending[:i]" -> "b.pending").
func exprRoot(e ast.Expr) string {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return exprString(e)
		}
	}
}

func exprString(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		if base := exprString(x.X); base != "" {
			return base + "." + x.Sel.Name
		}
		return ""
	case *ast.ParenExpr:
		return exprString(x.X)
	default:
		return fmt.Sprintf("%T", e)
	}
}
