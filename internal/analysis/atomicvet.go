package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AtomicVet enforces all-or-nothing atomicity per field: a struct
// field whose address is passed to a function-style sync/atomic call
// (atomic.LoadInt32(&t.state), atomic.AddUint64(&c.n, 1), ...)
// anywhere in the package must never be read or written plainly
// elsewhere in it — a single plain access races with every atomic one.
//
// Typed atomics (atomic.Int64, atomic.Pointer[T], ...) are safe by
// construction — they have no plain-access surface — and need no
// checking. Composite-literal zero initialization is pre-publication
// and exempt, like in lockvet.
var AtomicVet = &Analyzer{
	Name: "atomicvet",
	Doc:  "flag plain accesses to struct fields that are accessed via sync/atomic elsewhere",
	Run:  runAtomicVet,
}

func runAtomicVet(pass *Pass) (interface{}, error) {
	atomicFields := map[types.Object]bool{}
	allowed := map[token.Pos]bool{}

	// Walk 1: find fields whose address feeds sync/atomic functions.
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeOf(pass, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true // methods of typed atomics
			}
			for _, arg := range call.Args {
				un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				sel := baseSelector(un.X)
				if sel == nil {
					continue
				}
				obj, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Var)
				if !ok || !obj.IsField() {
					continue
				}
				atomicFields[obj] = true
				allowed[sel.Sel.Pos()] = true
			}
			return true
		})
	}
	if len(atomicFields) == 0 {
		return nil, nil
	}

	// Walk 2: every other selector to those fields is a plain access.
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.Uses[sel.Sel]
			if obj == nil || !atomicFields[obj] || allowed[sel.Sel.Pos()] {
				return true
			}
			pass.Reportf(sel.Sel.Pos(), "%s is accessed with sync/atomic elsewhere in this package; plain access races with the atomic ones", obj.Name())
			return true
		})
	}
	return nil, nil
}

// baseSelector unwraps index, slice, star and paren expressions to the
// underlying field selector, if any: &s.counts[i] guards field counts.
func baseSelector(e ast.Expr) *ast.SelectorExpr {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SelectorExpr:
			return x
		default:
			return nil
		}
	}
}
