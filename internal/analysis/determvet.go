package analysis

import (
	"go/ast"
	"go/types"
)

// DetermVet flags nondeterminism sources in packages whose output must
// be byte-identical under a fixed seed (DeterministicPackages):
//
//   - time.Now / time.Since / time.Until — wall-clock readings that can
//     leak into results;
//   - package-level math/rand functions (rand.Intn, rand.Float64, ...)
//     — the global source is unseeded and shared; use rand.New with an
//     explicit rand.NewSource instead (methods on a *rand.Rand are
//     fine);
//   - `range` over a map whose iteration order escapes: the body either
//     emits output directly (fmt / Write / Encode / Row calls) or
//     appends to a slice declared outside the loop that the enclosing
//     function never sorts afterwards.
//
// Order-independent map ranges (max/sum aggregation, map-to-map
// copies, collect-then-sort) pass untouched.
var DetermVet = &Analyzer{
	Name: "determvet",
	Doc:  "flag wall clocks, global math/rand, and order-escaping map iteration in deterministic packages",
	Run:  runDetermVet,
}

// emissionMethods are method names treated as "this value reaches
// output" when called inside a map-range body.
var emissionMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Print": true, "Printf": true, "Println": true,
	"Encode": true, "Row": true, "AddRow": true, "Record": true, "Emit": true,
}

func runDetermVet(pass *Pass) (interface{}, error) {
	if !DeterministicPackages[pass.Pkg.Path()] {
		return nil, nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			fn, ok := n.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				return true
			}
			determCheckFunc(pass, fn)
			return true
		})
	}
	return nil, nil
}

func determCheckFunc(pass *Pass, fn *ast.FuncDecl) {
	sortedVars := determSortedVars(pass, fn.Body)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if obj := calleeOf(pass, n); obj != nil && obj.Pkg() != nil {
				switch obj.Pkg().Path() {
				case "time":
					switch obj.Name() {
					case "Now", "Since", "Until":
						pass.Reportf(n.Pos(), "time.%s in deterministic package %s: wall clock must not feed seeded output", obj.Name(), pass.Pkg.Path())
					}
				case "math/rand", "math/rand/v2":
					if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() == nil {
						switch obj.Name() {
						case "New", "NewSource", "NewZipf", "NewPCG", "NewChaCha8":
							// Constructors for explicitly seeded generators.
						default:
							pass.Reportf(n.Pos(), "global math/rand.%s: shared unseeded source; use a rand.New(rand.NewSource(seed)) instance", obj.Name())
						}
					}
				}
			}
		case *ast.RangeStmt:
			determCheckMapRange(pass, n, sortedVars)
		}
		return true
	})
}

// calleeOf resolves the called function/method object of a call, or
// nil for builtins, func-typed variables and type conversions.
func calleeOf(pass *Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pass.TypesInfo.Uses[id].(*types.Func)
	return fn
}

// determSortedVars collects the objects passed to sort.* / slices.*
// calls anywhere in the function body: slices that get sorted before
// use, so appending to them from a map range is fine.
func determSortedVars(pass *Pass, body *ast.BlockStmt) map[types.Object]bool {
	out := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		obj := calleeOf(pass, call)
		if obj == nil || obj.Pkg() == nil {
			return true
		}
		if p := obj.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if id, ok := ast.Unparen(arg).(*ast.Ident); ok {
				if v := pass.TypesInfo.Uses[id]; v != nil {
					out[v] = true
				}
			}
		}
		return true
	})
	return out
}

// determCheckMapRange flags a `range` over a map whose per-iteration
// order escapes the loop.
func determCheckMapRange(pass *Pass, rng *ast.RangeStmt, sortedVars map[types.Object]bool) {
	tv, ok := pass.TypesInfo.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if obj := calleeOf(pass, n); obj != nil {
				if obj.Pkg() != nil && obj.Pkg().Path() == "fmt" {
					pass.Reportf(n.Pos(), "map iteration order escapes into fmt.%s output; sort the keys first", obj.Name())
					return true
				}
				if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() != nil && emissionMethods[obj.Name()] {
					pass.Reportf(n.Pos(), "map iteration order escapes through %s.%s; sort the keys first", recvTypeName(sig), obj.Name())
					return true
				}
			}
		case *ast.AssignStmt:
			determCheckRangeAppend(pass, rng, n, sortedVars)
		}
		return true
	})
}

// determCheckRangeAppend flags `s = append(s, ...)` inside a map-range
// body when s is declared outside the loop and never sorted in the
// enclosing function: the slice inherits map iteration order.
func determCheckRangeAppend(pass *Pass, rng *ast.RangeStmt, as *ast.AssignStmt, sortedVars map[types.Object]bool) {
	if len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return
	}
	call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return
	}
	fun, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || fun.Name != "append" {
		return
	}
	if _, isBuiltin := pass.TypesInfo.Uses[fun].(*types.Builtin); !isBuiltin {
		return
	}
	id, ok := ast.Unparen(as.Lhs[0]).(*ast.Ident)
	if !ok {
		return
	}
	obj := pass.TypesInfo.Uses[id]
	if obj == nil {
		obj = pass.TypesInfo.Defs[id]
	}
	if obj == nil {
		return
	}
	// Declared inside the loop: order cannot outlive one iteration.
	if obj.Pos() >= rng.Pos() && obj.Pos() < rng.End() {
		return
	}
	if sortedVars[obj] {
		return
	}
	pass.Reportf(as.Pos(), "append to %s inside map range: slice order inherits map iteration order; sort %s afterwards or iterate sorted keys", id.Name, id.Name)
}

// recvTypeName renders the receiver type name of a method signature.
func recvTypeName(sig *types.Signature) string {
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return t.String()
}
