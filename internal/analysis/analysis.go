// Package analysis is armvet's static-analysis framework: a
// dependency-free subset of the golang.org/x/tools/go/analysis API
// (Analyzer, Pass, Diagnostic) built directly on the standard
// library's go/ast and go/types, plus a module-aware package loader
// and a diagnostic driver with suppression directives.
//
// Why not golang.org/x/tools itself: the reproduction is deliberately
// dependency-free (go.mod pulls nothing), and the build environment is
// offline, so the framework re-implements the small slice of the
// x/tools API the passes need. Pass Run functions are written against
// the same shapes (Pass.Fset/Files/Pkg/TypesInfo, Pass.Reportf), so a
// future migration to the real multichecker is a mechanical import
// swap.
//
// The shipped analyzers enforce the invariants the test suite
// otherwise only observes at runtime:
//
//   - determvet: no nondeterminism sources (wall clock, global
//     math/rand, map iteration order) may feed the byte-identical
//     seeded output the golden digest test pins.
//   - lockvet: struct fields annotated `// armvet:guardedby <mutex>`
//     are only touched by functions that lock that mutex (or are
//     annotated `// armvet:holds <mutex>`).
//   - atomicvet: a field accessed through sync/atomic anywhere in a
//     package is never read or written plainly elsewhere in it.
//   - allocvet: the committed hot-path function list (the code paths
//     BENCH_sim.json gates at 0 allocs/op) contains no constructs
//     that force or invite heap allocation.
//
// A finding is silenced with `//armvet:ignore <pass>[,<pass>...]` on
// the flagged line or in the doc-comment group above it; see
// suppress.go for the exact matching rules.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static-analysis pass. The shape mirrors
// golang.org/x/tools/go/analysis.Analyzer.
type Analyzer struct {
	// Name identifies the pass in diagnostics and in
	// //armvet:ignore directives. Lower-case, no spaces.
	Name string
	// Doc is the one-paragraph description `armvet -list` prints.
	Doc string
	// Run executes the pass over one package. Findings are delivered
	// through pass.Report/Reportf; the first return value is unused
	// (kept for API compatibility).
	Run func(pass *Pass) (interface{}, error)
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one diagnostic. The driver installs a collector
	// here; suppression filtering happens downstream, so passes report
	// every finding unconditionally.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Finding is a resolved diagnostic as the driver hands it to callers:
// position materialized, pass name attached.
type Finding struct {
	Pass    string
	Pos     token.Position
	Message string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s (%s)", f.Pos, f.Message, f.Pass)
}

// inspectStack walks root in depth-first order calling fn with each
// node and the stack of its ancestors (outermost first, not including
// n itself). Returning false prunes the subtree. It is the shared
// traversal primitive of the passes that need parent context (atomic
// address-of positions, append reassignment shapes, immediately
// invoked closures).
func inspectStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if !fn(n, stack) {
			// Subtree pruned: ast.Inspect sends no closing nil for n,
			// so n must not be pushed.
			return false
		}
		stack = append(stack, n)
		return true
	})
}
