package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
)

// ProgVet checks hand-written micro-op programs — `[]prog.Op`
// composite literals — for the structural defects prog.Validate only
// catches at run time, plus one Builder misuse it cannot see at all:
//
//   - Jump and spin exit targets must land in [0, len] of the literal;
//     LoopEnd targets must additionally point backward. A raw literal's
//     targets are authored by hand (the Builder computes its own), so
//     an off-by-one here survives until an executor walks off the
//     program.
//   - Loop-counter indices (Op.Dep) must stay under prog.MaxLoopDepth:
//     executors keep counters in a fixed array sized by that constant.
//   - Spin ops must wait on a fixed address (AddrImm): a spin through
//     an address ring (AddrTable) re-targets mid-wait as the loop
//     counter moves, so the awaited condition is not monotone and the
//     spin can miss its signal forever.
//   - The literal must stay under prog.MaxOps — repetition belongs in
//     loop trip counts, not unrolled op lists.
//   - Builder.SpinGE with a constant threshold of 0 never waits
//     (every unsigned value is >= 0); the wait the author intended is
//     silently compiled out.
//
// Bounds are read from the analyzed package's view of package prog, so
// the pass never drifts from the real constants.
var ProgVet = &Analyzer{
	Name: "progvet",
	Doc:  "check hand-written prog.Op programs: targets in range, loop depth bounded, fixed-address spins, size cap, no degenerate SpinGE",
	Run:  runProgVet,
}

func runProgVet(pass *Pass) (interface{}, error) {
	progPkg := importedProg(pass.Pkg)
	if progPkg == nil {
		return nil, nil // package never touches prog; nothing to check
	}
	maxDepth := progIntConst(progPkg, "MaxLoopDepth")
	maxOps := progIntConst(progPkg, "MaxOps")

	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.CompositeLit:
				if isProgOpSlice(pass, x) {
					checkOpLiteral(pass, x, maxDepth, maxOps)
				}
			case *ast.CallExpr:
				checkDegenerateSpin(pass, x)
			}
			return true
		})
	}
	return nil, nil
}

// importedProg finds package prog among the analyzed package's
// imports.
func importedProg(pkg *types.Package) *types.Package {
	if pkg == nil {
		return nil
	}
	for _, imp := range pkg.Imports() {
		if imp.Name() == "prog" {
			return imp
		}
	}
	return nil
}

// progIntConst resolves an exported integer constant from package
// prog, 0 if absent (which disables the dependent check rather than
// inventing a bound).
func progIntConst(pkg *types.Package, name string) int64 {
	c, ok := pkg.Scope().Lookup(name).(*types.Const)
	if !ok {
		return 0
	}
	v, _ := constant.Int64Val(constant.ToInt(c.Val()))
	return v
}

// isProgOpSlice reports whether the literal builds a slice or array of
// prog.Op.
func isProgOpSlice(pass *Pass, lit *ast.CompositeLit) bool {
	tv, ok := pass.TypesInfo.Types[lit]
	if !ok {
		return false
	}
	var elem types.Type
	switch t := tv.Type.Underlying().(type) {
	case *types.Slice:
		elem = t.Elem()
	case *types.Array:
		elem = t.Elem()
	default:
		return false
	}
	named, ok := elem.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Op" && obj.Pkg() != nil && obj.Pkg().Name() == "prog"
}

// opFields extracts the constant-valued keyed fields of one Op element
// literal. Code resolves to the constant's name ("Jump", "SpinEQ", ...)
// and AMode likewise, so the pass keys on identifiers, not ordinals.
type opFields struct {
	code      string
	amode     string
	target    int64
	hasTarget bool
	dep       int64
	hasDep    bool
}

func opFieldsOf(pass *Pass, el *ast.CompositeLit) (f opFields) {
	for _, e := range el.Elts {
		kv, ok := e.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok {
			continue
		}
		switch key.Name {
		case "Code":
			f.code = constName(pass, kv.Value)
		case "AMode":
			f.amode = constName(pass, kv.Value)
		case "Target":
			f.target, f.hasTarget = intConstOf(pass, kv.Value)
		case "Dep":
			f.dep, f.hasDep = intConstOf(pass, kv.Value)
		}
	}
	return f
}

// constName resolves an expression like prog.Jump to the declared
// constant's name.
func constName(pass *Pass, e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		if obj := pass.TypesInfo.Uses[x.Sel]; obj != nil {
			return obj.Name()
		}
	case *ast.Ident:
		if obj := pass.TypesInfo.Uses[x]; obj != nil {
			return obj.Name()
		}
	}
	return ""
}

func intConstOf(pass *Pass, e ast.Expr) (int64, bool) {
	tv, ok := pass.TypesInfo.Types[ast.Unparen(e)]
	if !ok || tv.Value == nil {
		return 0, false
	}
	v, exact := constant.Int64Val(constant.ToInt(tv.Value))
	return v, exact
}

func checkOpLiteral(pass *Pass, lit *ast.CompositeLit, maxDepth, maxOps int64) {
	n := int64(len(lit.Elts))
	if maxOps > 0 && n > maxOps {
		pass.Reportf(lit.Pos(), "program literal has %d ops, over prog.MaxOps %d; express repetition with loops", n, maxOps)
	}
	for i, e := range lit.Elts {
		el, ok := ast.Unparen(e).(*ast.CompositeLit)
		if !ok {
			continue
		}
		f := opFieldsOf(pass, el)
		switch f.code {
		case "Jump":
			if f.hasTarget && (f.target < 0 || f.target > n) {
				pass.Reportf(el.Pos(), "jump target %d out of range [0,%d]", f.target, n)
			}
		case "LoopEnd":
			if f.hasTarget && (f.target < 0 || f.target > int64(i)) {
				pass.Reportf(el.Pos(), "loop target %d does not point backward from op %d", f.target, i)
			}
		case "SpinEQ", "SpinNE", "SpinGE":
			if f.hasTarget && (f.target < 0 || f.target > n) {
				pass.Reportf(el.Pos(), "spin exit target %d out of range [0,%d]", f.target, n)
			}
			if f.amode == "AddrTable" {
				pass.Reportf(el.Pos(), "%s through an address ring re-targets mid-wait; spins must watch a fixed address", f.code)
			}
		}
		if f.hasDep && maxDepth > 0 && f.dep >= maxDepth {
			pass.Reportf(el.Pos(), "loop counter %d out of range [0,%d)", f.dep, maxDepth)
		}
	}
}

// checkDegenerateSpin flags Builder.SpinGE calls whose constant
// threshold is 0.
func checkDegenerateSpin(pass *Pass, call *ast.CallExpr) {
	if len(call.Args) != 3 {
		return
	}
	fn := calleeOf(pass, call)
	if fn == nil || fn.Name() != "SpinGE" || fn.Pkg() == nil || fn.Pkg().Name() != "prog" {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return
	}
	if v, ok := intConstOf(pass, call.Args[1]); ok && v == 0 {
		pass.Reportf(call.Args[1].Pos(), "SpinGE threshold 0 is always satisfied; the spin never waits")
	}
}
