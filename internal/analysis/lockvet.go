package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// LockVet is a lightweight checklocks-style pass. Struct fields
// annotated
//
//	// armvet:guardedby <mutex>
//
// (doc or trailing comment on the field; <mutex> is a sibling field
// name) may only be accessed through a selector inside a function that
// holds that mutex. A function holds a mutex if its body calls
// <x>.<mutex>.Lock() or .RLock(), or its doc comment carries
//
//	// armvet:holds <mutex>[, <mutex>...]
//
// for internal helpers documented "must be called with mu held".
//
// The analysis is function-granular (no lock-region tracking) and
// selector-only: composite-literal construction (`Machine{runq: ...}`)
// is pre-publication by definition and not checked.
var LockVet = &Analyzer{
	Name: "lockvet",
	Doc:  "enforce // armvet:guardedby mutex annotations on struct fields",
	Run:  runLockVet,
}

const (
	guardedByDirective = "armvet:guardedby"
	holdsDirective     = "armvet:holds"
)

func runLockVet(pass *Pass) (interface{}, error) {
	guards := collectGuardedFields(pass)
	if len(guards) == 0 {
		return nil, nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			held := heldMutexes(pass, fn)
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				obj := pass.TypesInfo.Uses[sel.Sel]
				mu, guarded := guards[obj]
				if !guarded || held[mu] {
					return true
				}
				pass.Reportf(sel.Sel.Pos(), "%s is guarded by %q but %s does not hold it (lock it, or annotate the function // armvet:holds %s)",
					obj.Name(), mu, fn.Name.Name, mu)
				return true
			})
		}
	}
	return nil, nil
}

// directiveArgs returns the comma/space-separated arguments following
// directive in text, stopping at the first token that is not an
// identifier (so trailing prose is tolerated), or nil if the directive
// is absent.
func directiveArgs(text, directive string) []string {
	i := strings.Index(text, directive)
	if i < 0 {
		return nil
	}
	var out []string
	fields := strings.FieldsFunc(text[i+len(directive):], func(r rune) bool {
		return r == ' ' || r == '\t' || r == ','
	})
	for _, f := range fields {
		if !isIdentWord(f) {
			break
		}
		out = append(out, f)
	}
	return out
}

func isIdentWord(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r == '_', 'a' <= r && r <= 'z', 'A' <= r && r <= 'Z':
		case '0' <= r && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// collectGuardedFields maps annotated struct-field objects to the name
// of the mutex that guards them.
func collectGuardedFields(pass *Pass) map[types.Object]string {
	guards := map[types.Object]string{}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				mu := ""
				for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
					if cg == nil {
						continue
					}
					for _, c := range cg.List {
						if args := directiveArgs(c.Text, guardedByDirective); len(args) > 0 {
							mu = args[0]
						}
					}
				}
				if mu == "" {
					continue
				}
				for _, name := range field.Names {
					if obj := pass.TypesInfo.Defs[name]; obj != nil {
						guards[obj] = mu
					}
				}
			}
			return true
		})
	}
	return guards
}

// heldMutexes reports which mutex names fn holds: declared via an
// armvet:holds doc directive, or taken in the body through
// <x>.<name>.Lock() / .RLock().
func heldMutexes(pass *Pass, fn *ast.FuncDecl) map[string]bool {
	held := map[string]bool{}
	if fn.Doc != nil {
		for _, c := range fn.Doc.List {
			for _, name := range directiveArgs(c.Text, holdsDirective) {
				held[name] = true
			}
		}
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		switch x := ast.Unparen(sel.X).(type) {
		case *ast.SelectorExpr:
			held[x.Sel.Name] = true
		case *ast.Ident:
			held[x.Name] = true
		}
		return true
	})
	return held
}
