package barrier

import (
	"fmt"

	"armbar/internal/prog"
	"armbar/internal/sim"
)

// walk runs a compiled micro-op program through the interpreted
// engine's per-op Thread methods, mirroring the compiled executor's
// control flow (sim/compiled.go) op for op: same ops in the same
// order, jumps and loop backedges as Go control flow. Both engines
// therefore present the identical service sequence to the scheduler,
// which is what the engine-differential test pins down.
func walk(t *sim.Thread, p *prog.Program) {
	ops := p.Ops
	var counters [prog.MaxLoopDepth]int64
	addr := func(op *prog.Op) uint64 {
		if op.AMode == prog.AddrImm {
			return op.Addr
		}
		tab := p.Tables[op.Addr]
		return tab[uint64(counters[op.Dep])%uint64(len(tab))]
	}
	value := func(op *prog.Op) uint64 {
		if op.VMode == prog.ValImm {
			return op.Val
		}
		return uint64(counters[op.Dep])
	}
	for pc := 0; pc < len(ops); {
		op := &ops[pc]
		switch op.Code {
		case prog.Load:
			t.Load(addr(op))
		case prog.LoadAcq:
			t.LoadAcquire(addr(op))
		case prog.LoadAcqPC:
			t.LoadAcquirePC(addr(op))
		case prog.Store:
			t.Store(addr(op), value(op))
		case prog.StoreRel:
			t.StoreRelease(addr(op), value(op))
		case prog.FetchAdd:
			t.FetchAdd(addr(op), value(op))
		case prog.Swap:
			t.Swap(addr(op), value(op))
		case prog.CAS:
			t.CompareAndSwap(addr(op), op.Val, op.Val2)
		case prog.Barrier:
			t.Barrier(op.Bar)
		case prog.Work:
			t.Work(op.Cyc)
		case prog.SpinEQ:
			if t.Load(addr(op)) == op.Val {
				pc = int(op.Target)
				continue
			}
		case prog.SpinNE:
			if t.Load(addr(op)) != op.Val {
				pc = int(op.Target)
				continue
			}
		case prog.SpinGE:
			if t.Load(addr(op)) >= op.Val {
				pc = int(op.Target)
				continue
			}
		case prog.Jump:
			pc = int(op.Target)
			continue
		case prog.LoopEnd:
			if c := counters[op.Dep] + 1; c < op.Count {
				counters[op.Dep] = c
				pc = int(op.Target)
				continue
			}
			counters[op.Dep] = 0
		default:
			panic(fmt.Sprintf("barrier: walk: unknown op code %d", op.Code))
		}
		pc++
	}
}
