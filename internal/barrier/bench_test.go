package barrier_test

import (
	"testing"

	"armbar/internal/simbench"
)

// The benchmark bodies live in internal/simbench beside the other
// simulator hot-path benchmarks so `armbar perfcheck` reruns exactly
// what these wrappers measure; scripts/bench_snapshot.sh freezes their
// output into BENCH_sim.json. One op is one thread-round of the
// sense-reversing barrier on the named scale-out preset.

func BenchmarkBarrierScale64(b *testing.B)   { simbench.BarrierScale64(b) }
func BenchmarkBarrierScale256(b *testing.B)  { simbench.BarrierScale256(b) }
func BenchmarkBarrierScale1024(b *testing.B) { simbench.BarrierScale1024(b) }
