package barrier

import (
	"testing"

	"armbar/internal/platform"
	"armbar/internal/sim"
)

// small returns a config exercising every algorithm cheaply: 16
// threads (a power of treeRadix, so the combining tree accepts it) on
// the 64-core Kunpeng 916 model.
func small(engine sim.Engine) Config {
	return Config{
		Plat:    platform.Kunpeng916(),
		Threads: 16,
		Rounds:  3,
		Seed:    42,
		Engine:  engine,
	}
}

func TestEngineDifferential(t *testing.T) {
	// The interpreted walker mirrors the compiled executor op for op,
	// so both engines must agree cycle for cycle on every algorithm.
	for _, a := range Algos() {
		for _, seed := range []int64{1, 42} {
			cfg := small(sim.EngineCompiled)
			cfg.Seed = seed
			comp, err := Run(a, cfg)
			if err != nil {
				t.Fatalf("%v compiled: %v", a, err)
			}
			cfg.Engine = sim.EngineInterp
			interp, err := Run(a, cfg)
			if err != nil {
				t.Fatalf("%v interp: %v", a, err)
			}
			if comp.Cycles != interp.Cycles {
				t.Errorf("%v seed %d: compiled %.1f cycles, interp %.1f",
					a, seed, comp.Cycles, interp.Cycles)
			}
			if comp.Cycles <= 0 {
				t.Errorf("%v seed %d: non-positive cycles %.1f", a, seed, comp.Cycles)
			}
		}
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	for _, a := range Algos() {
		first, err := Run(a, small(sim.EngineCompiled))
		if err != nil {
			t.Fatalf("%v: %v", a, err)
		}
		again, err := Run(a, small(sim.EngineCompiled))
		if err != nil {
			t.Fatalf("%v: %v", a, err)
		}
		if first.Cycles != again.Cycles {
			t.Errorf("%v: run-to-run drift: %.1f vs %.1f cycles", a, first.Cycles, again.Cycles)
		}
	}
}

func TestMoreRoundsCostMore(t *testing.T) {
	for _, a := range Algos() {
		short := small(sim.EngineCompiled)
		short.Rounds = 2
		long := small(sim.EngineCompiled)
		long.Rounds = 6
		rs, err := Run(a, short)
		if err != nil {
			t.Fatalf("%v: %v", a, err)
		}
		rl, err := Run(a, long)
		if err != nil {
			t.Fatalf("%v: %v", a, err)
		}
		if rl.Cycles <= rs.Cycles {
			t.Errorf("%v: 6 rounds (%.1f cycles) not costlier than 2 (%.1f)",
				a, rl.Cycles, rs.Cycles)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	base := small(sim.EngineCompiled)
	cases := []struct {
		name string
		algo Algo
		mut  func(*Config)
	}{
		{"nil platform", Central, func(c *Config) { c.Plat = nil }},
		{"one thread", Central, func(c *Config) { c.Threads = 1 }},
		{"too many threads", Central, func(c *Config) { c.Threads = 65 }},
		{"zero rounds", Central, func(c *Config) { c.Rounds = 0 }},
		{"tree non-power", CombiningTree, func(c *Config) { c.Threads = 24 }},
	}
	for _, tc := range cases {
		cfg := base
		tc.mut(&cfg)
		if _, err := Run(tc.algo, cfg); err == nil {
			t.Errorf("%s: expected an error", tc.name)
		}
	}
}

func TestByNameRoundTrip(t *testing.T) {
	for _, a := range Algos() {
		got, err := ByName(a.String())
		if err != nil || got != a {
			t.Errorf("ByName(%q) = %v, %v", a.String(), got, err)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("ByName(nope): expected an error")
	}
}

// TestScaleOut256 is the `make scalecheck` smoke: a 256-core
// sense-reversing barrier on the scale-out preset, run under the race
// detector in CI. Dissemination rides along as the no-hot-line
// contrast.
func TestScaleOut256(t *testing.T) {
	cfg := Config{
		Plat:    platform.MustScaleOut(256),
		Threads: 256,
		Rounds:  2,
		Seed:    42,
		Engine:  sim.EngineCompiled,
	}
	for _, a := range []Algo{SenseReversing, Dissemination} {
		r, err := Run(a, cfg)
		if err != nil {
			t.Fatalf("%v: %v", a, err)
		}
		if r.Cycles <= 0 {
			t.Errorf("%v: non-positive cycles", a)
		}
	}
}

// TestScaleOut1024 is the tentpole acceptance check: a 1024-thread
// sense-reversing barrier runs to completion under BOTH engines, and
// they agree on the clock.
func TestScaleOut1024(t *testing.T) {
	if testing.Short() {
		t.Skip("1024-thread run skipped in -short")
	}
	cfg := Config{
		Plat:    platform.MustScaleOut(1024),
		Threads: 1024,
		Rounds:  2,
		Seed:    42,
		Engine:  sim.EngineCompiled,
	}
	comp, err := Run(SenseReversing, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Engine = sim.EngineInterp
	interp, err := Run(SenseReversing, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if comp.Cycles != interp.Cycles {
		t.Errorf("engines disagree at 1024 threads: compiled %.1f, interp %.1f",
			comp.Cycles, interp.Cycles)
	}
}
