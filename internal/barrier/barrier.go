// Package barrier is the many-core barrier-algorithm zoo: five
// software barrier designs expressed as branch-free micro-op programs
// and swept across scale-out core counts, reproducing the scaling
// shapes of the 1024-core RISC-V barrier study (Bertuletti et al., see
// PAPERS.md) on the simulator's ARM cost model.
//
// Every algorithm is formulated with monotone epoch counters instead
// of data-dependent branches ("if I am the last arriver..."), because
// the compiled engine discards atomic results: a thread's whole
// participation — who it signals, what it waits for, at which epoch —
// is fixed by (algorithm, thread id, core count, round), so each round
// lowers to straight-line FetchAdd/Store ops plus SpinGE waits. SpinGE
// (wait until value >= epoch) is the load-bearing primitive: a counter
// or epoch flag may race past the target between polls of a slow
// spinner, so an exact-match spin could hang where >= never does.
//
// Both engines run the same per-thread programs: the compiled engine
// executes them natively (sim.SpawnProgram), the interpreted engine
// walks the identical micro-ops through the per-op Thread methods, so
// differential tests can hold the two equal cycle for cycle.
package barrier

import (
	"fmt"

	"armbar/internal/mesi"
	"armbar/internal/platform"
	"armbar/internal/prog"
	"armbar/internal/sim"
	"armbar/internal/topo"
)

// Algo selects a barrier algorithm.
type Algo int

const (
	// Central is the naive shared-counter barrier: every thread
	// fetch-adds one arrival counter and spins on that same line until
	// it reaches n*(round+1). All spinners hammer the line every
	// arrival invalidates — the worst-scaling baseline.
	Central Algo = iota
	// SenseReversing is the classic two-phase barrier in epoch form:
	// arrivals fetch-add a counter, a master thread waits for the full
	// count and publishes the epoch to a separate release flag, and
	// everyone else spins locally on that flag. One broadcast
	// invalidation per round instead of n.
	SenseReversing
	// CombiningTree combines arrivals in radix-4 groups aligned to
	// clusters (level-0 groups never cross a cluster boundary in the
	// scale-out presets), propagates a single representative up each
	// level, and broadcasts the release down the same tree.
	CombiningTree
	// Dissemination is the log2(n)-round pairwise-signal barrier: in
	// round k thread i signals (i+2^k) mod n and waits on a flag
	// written by (i-2^k) mod n, each (round, writer) flag on its own
	// cache line. No single hot line, latency O(log n).
	Dissemination
	// Pairwise is the cache-line-padded linear signal chain
	// (SNIPPETS.md snippets 2-3): arrivals ripple 0 -> n-1 through
	// per-thread padded flags, the release ripples back n-1 -> 0. Every
	// communication is one-reader/one-writer on its own line — perfect
	// locality, O(n) latency.
	Pairwise

	numAlgos
)

var algoNames = [numAlgos]string{
	"central", "sense-rev", "comb-tree", "dissem", "pairwise",
}

func (a Algo) String() string {
	if a >= 0 && int(a) < len(algoNames) {
		return algoNames[a]
	}
	return fmt.Sprintf("Algo(%d)", int(a))
}

// Algos returns all algorithms in presentation order.
func Algos() []Algo {
	return []Algo{Central, SenseReversing, CombiningTree, Dissemination, Pairwise}
}

// ByName resolves an algorithm name (the String values).
func ByName(name string) (Algo, error) {
	for _, a := range Algos() {
		if a.String() == name {
			return a, nil
		}
	}
	return 0, fmt.Errorf("barrier: unknown algorithm %q", name)
}

// padFor sizes the poll cadence of every spin wait, in nops. Real
// many-core barriers back their polls off as the machine grows (a
// tight poll loop at 1024 cores is itself a coherence storm), so the
// pad scales with the thread count: n/2 nops, clamped to [32, 512] —
// roughly 11 to 171 cycles between polls at issue width 3, against
// signal latencies of one to a few hundred cycles. The same cadence
// applies to every algorithm so the figure compares fan-in structure,
// not polling tuning.
func padFor(n int) int {
	p := n / 2
	if p < 32 {
		p = 32
	}
	if p > 512 {
		p = 512
	}
	return p
}

// treeRadix is the combining-tree fan-in. The scale-out presets put at
// least four cores in a cluster, so level-0 groups are cluster-local.
const treeRadix = 4

// Config parameterizes one barrier-zoo run.
type Config struct {
	Plat    *platform.Platform
	Threads int // participants, pinned to cores 0..Threads-1
	Rounds  int // barrier episodes (unrolled into the programs)
	Seed    int64
	Mode    sim.Mode
	Engine  sim.Engine
}

// Result is one run's outcome. All fields are exported so cellcache
// can gob-roundtrip it.
type Result struct {
	Cycles         float64 // final virtual time of the run
	CyclesPerRound float64
	MicrosPerRound float64
	Stats          sim.Stats
}

// Run executes rounds of the given barrier over cfg.Threads threads
// and reports the per-round cost.
func Run(a Algo, cfg Config) (*Result, error) {
	m, err := Spawn(a, cfg)
	if err != nil {
		return nil, err
	}
	cycles := m.Run()
	r := &Result{
		Cycles:         cycles,
		CyclesPerRound: cycles / float64(cfg.Rounds),
		Stats:          m.Stats(),
	}
	r.MicrosPerRound = m.Seconds(r.CyclesPerRound) * 1e6
	return r, nil
}

// Spawn builds the machine for one run — programs built, layout
// placed, every thread spawned on its engine — without running it.
// Run wraps it; benchmarks call it directly so program construction
// and thread startup stay outside the timed region.
func Spawn(a Algo, cfg Config) (*sim.Machine, error) {
	progs, err := Programs(a, cfg)
	if err != nil {
		return nil, err
	}
	m := sim.New(sim.Config{Plat: cfg.Plat, Mode: cfg.Mode, Seed: cfg.Seed})
	// Reallocate the same addresses the program builder used: Alloc is
	// a deterministic bump allocator, so replaying the layout binds the
	// program's immediates to this machine.
	lay := layoutFor(a, cfg.Threads)
	lay.place(m)
	// Every participating core installs a copy of the lines it touches
	// in round one; reserving the full fan-out up front keeps that
	// first-install append growth out of the run itself, so the
	// BarrierScale benchmarks measure steady-state rounds at 0 B/op.
	for k := 0; k < lay.lines; k++ {
		m.Directory().Reserve(lay.base+uint64(k)<<mesi.LineShift, cfg.Threads)
	}
	if cfg.Engine.Resolve() == sim.EngineCompiled {
		for i, p := range progs {
			m.SpawnProgram(topo.CoreID(i), p)
		}
	} else {
		for i, p := range progs {
			p := p
			m.Spawn(topo.CoreID(i), func(t *sim.Thread) { walk(t, p) })
		}
	}
	return m, nil
}

// Programs builds the per-thread micro-op programs for one run without
// executing them (Run uses it; benchmarks build once and respawn).
func Programs(a Algo, cfg Config) ([]*prog.Program, error) {
	n := cfg.Threads
	if cfg.Plat == nil {
		return nil, fmt.Errorf("barrier: Config.Plat is required")
	}
	if n < 2 {
		return nil, fmt.Errorf("barrier: need at least 2 threads, got %d", n)
	}
	if n > cfg.Plat.Sys.NumCores() {
		return nil, fmt.Errorf("barrier: %d threads exceed the %d cores of %s",
			n, cfg.Plat.Sys.NumCores(), cfg.Plat.Name)
	}
	if cfg.Rounds <= 0 {
		return nil, fmt.Errorf("barrier: rounds must be positive, got %d", cfg.Rounds)
	}
	if a == CombiningTree && !isPow(n, treeRadix) {
		return nil, fmt.Errorf("barrier: combining tree needs a power-of-%d thread count, got %d", treeRadix, n)
	}
	lay := layoutFor(a, n)
	iw := cfg.Plat.Cost.IssueWidth
	progs := make([]*prog.Program, n)
	for i := 0; i < n; i++ {
		b := prog.NewBuilder(iw)
		for r := 0; r < cfg.Rounds; r++ {
			epoch := uint64(r + 1)
			switch a {
			case Central:
				emitCentral(b, lay, n, i, epoch)
			case SenseReversing:
				emitSense(b, lay, n, i, epoch)
			case CombiningTree:
				emitTree(b, lay, n, i, epoch)
			case Dissemination:
				emitDissem(b, lay, n, i, epoch)
			case Pairwise:
				emitPairwise(b, lay, n, i, epoch)
			default:
				return nil, fmt.Errorf("barrier: unknown algorithm %d", a)
			}
		}
		p, err := b.Build()
		if err != nil {
			return nil, fmt.Errorf("barrier: %s thread %d: %w", a, i, err)
		}
		progs[i] = p
	}
	return progs, nil
}

func isPow(n, base int) bool {
	for n > 1 {
		if n%base != 0 {
			return false
		}
		n /= base
	}
	return n == 1
}
