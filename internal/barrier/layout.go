package barrier

import (
	"fmt"

	"armbar/internal/mesi"
	"armbar/internal/prog"
	"armbar/internal/sim"
)

// layout maps an algorithm's signal variables onto cache lines. Every
// signal gets a full line to itself — padding is part of what the zoo
// measures (Pairwise vs Central is in essence a padding-and-fanout
// experiment) — so a layout is just a base address and a line count,
// with per-algorithm index math in the emitters below.
//
// The program builder and the machine must agree on addresses, and the
// builder runs before any machine exists. Machine.Alloc is a pure bump
// allocator over lines starting at allocBase, so the layout computes
// the same addresses standalone, and place() replays the allocation on
// the real machine and checks the bases line up.
type layout struct {
	base  uint64
	lines int
}

// allocBase is the first address Machine.Alloc hands out: one line in,
// keeping address 0 unused.
const allocBase = 1 << mesi.LineShift

func layoutFor(a Algo, n int) layout {
	var lines int
	switch a {
	case Central:
		lines = 1 // the counter
	case SenseReversing:
		lines = 2 // counter + release flag
	case CombiningTree:
		lines = 2 * treeGroups(n) // a counter and a release flag per group
	case Dissemination:
		lines = ceilLog2(n) * n // sig[round][writer]
	case Pairwise:
		lines = 2 * (n - 1) // arrive chain + release chain
	default:
		panic(fmt.Sprintf("barrier: layoutFor(%d)", a))
	}
	return layout{base: allocBase, lines: lines}
}

// addr is the address of the layout's k-th line.
func (l layout) addr(k int) prog.Operand {
	return prog.Abs(l.base + uint64(k)<<mesi.LineShift)
}

// place replays the layout's allocation on a fresh machine so the
// programs' absolute addresses are backed by this machine's address
// space (and later Allocs can't collide with them).
func (l layout) place(m *sim.Machine) {
	if got := m.Alloc(l.lines); got != l.base {
		panic(fmt.Sprintf("barrier: machine allocator gave base %#x, programs built for %#x", got, l.base))
	}
}

// ceilLog2 returns ceil(log2 n) for n >= 2.
func ceilLog2(n int) int {
	k := 0
	for (1 << k) < n {
		k++
	}
	return k
}

// ipow returns base**e for small non-negative e.
func ipow(base, e int) int {
	p := 1
	for ; e > 0; e-- {
		p *= base
	}
	return p
}

// --- combining-tree index math -------------------------------------
//
// For n = treeRadix^L threads the tree has L levels of groups; level l
// has n/treeRadix^(l+1) groups of treeRadix members each (threads at
// level 0, subtree representatives above). Group g at level l owns an
// arrival counter cnt[l][g] and a release flag rel[l][g], laid out as
//
//	[ cnt level 0 | cnt level 1 | ... | rel level 0 | rel level 1 | ... ]

// treeLevels returns L with treeRadix^L == n (callers validate n).
func treeLevels(n int) int {
	l := 0
	for p := 1; p < n; p *= treeRadix {
		l++
	}
	return l
}

// treeGroups is the total group count across levels:
// n/q + n/q^2 + ... + 1 = (n-1)/(q-1) for n a power of q.
func treeGroups(n int) int {
	return (n - 1) / (treeRadix - 1)
}

// treeCnt is the line index of cnt[l][g].
func treeCnt(n, l, g int) int {
	off := 0
	for j, size := 0, n/treeRadix; j < l; j, size = j+1, size/treeRadix {
		off += size
	}
	return off + g
}

// treeRel is the line index of rel[l][g].
func treeRel(n, l, g int) int {
	return treeGroups(n) + treeCnt(n, l, g)
}

// repLevel is the highest tree level thread i represents: the largest
// l <= max with treeRadix^l dividing i. Thread 0 represents the root.
func repLevel(i, max int) int {
	if i == 0 {
		return max
	}
	l := 0
	for i%treeRadix == 0 {
		l++
		i /= treeRadix
	}
	return l
}

// --- per-algorithm round emitters ----------------------------------
//
// Each emitter appends one barrier episode for thread i of n to the
// builder. epoch is round+1: all waits are SpinGE against monotone
// counters/flags, so a round's signals never need resetting and a
// value racing past the target cannot strand a slow spinner.

func emitCentral(b *prog.Builder, lay layout, n, i int, epoch uint64) {
	cnt := lay.addr(0)
	b.FetchAdd(cnt, prog.Imm(1))
	// Everyone spins on the counter line itself: each arrival
	// invalidates every spinner's copy. That refetch storm is the
	// scaling failure this algorithm exists to demonstrate.
	b.SpinGE(cnt, uint64(n)*epoch, padFor(n))
}

func emitSense(b *prog.Builder, lay layout, n, i int, epoch uint64) {
	cnt, flag := lay.addr(0), lay.addr(1)
	b.FetchAdd(cnt, prog.Imm(1))
	if i == 0 {
		// The master observes the full count and publishes the epoch:
		// one store invalidates the spinners once per round.
		b.SpinGE(cnt, uint64(n)*epoch, padFor(n))
		b.Store(flag, prog.Imm(epoch))
	} else {
		b.SpinGE(flag, epoch, padFor(n))
	}
}

func emitTree(b *prog.Builder, lay layout, n, i int, epoch uint64) {
	q := treeRadix
	L := treeLevels(n)
	lam := repLevel(i, L)
	full := uint64(q) * epoch // a group counter's value once all members arrived this round

	// Arrival: add to the level-0 group counter; at every level this
	// thread represents, wait for the group below to fill, then add to
	// the counter one level up (the root representative just waits).
	b.FetchAdd(lay.addr(treeCnt(n, 0, i/q)), prog.Imm(1))
	for l, p := 1, q; l <= lam; l, p = l+1, p*q {
		b.SpinGE(lay.addr(treeCnt(n, l-1, i/p)), full, padFor(n))
		if l < L {
			b.FetchAdd(lay.addr(treeCnt(n, l, i/(p*q))), prog.Imm(1))
		}
	}

	// Release: wait for this thread's highest group to be released
	// (the root representative needs no wait — it saw the root counter
	// fill), then broadcast downward through every represented level.
	if lam < L {
		b.SpinGE(lay.addr(treeRel(n, lam, i/ipow(q, lam+1))), epoch, padFor(n))
	}
	for l, p := lam, ipow(q, lam); l >= 1; l, p = l-1, p/q {
		b.Store(lay.addr(treeRel(n, l-1, i/p)), prog.Imm(epoch))
	}
}

func emitDissem(b *prog.Builder, lay layout, n, i int, epoch uint64) {
	// Round k: signal thread (i+2^k) mod n through my own slot, wait on
	// the slot of (i-2^k) mod n. After ceil(log2 n) rounds every thread
	// transitively heard from every other. Each (round, writer) slot is
	// its own line: no line ever has more than one writer and one
	// spinner.
	for k, d := 0, 1; (1 << k) < n; k, d = k+1, d*2 {
		b.Store(lay.addr(k*n+i), prog.Imm(epoch))
		b.SpinGE(lay.addr(k*n+(i-d+n)%n), epoch, padFor(n))
	}
}

func emitPairwise(b *prog.Builder, lay layout, n, i int, epoch uint64) {
	// Arrival ripples 0 -> n-1 through arr[0..n-2], the release back
	// n-1 -> 0 through rel[0..n-2]; arr[j] and rel[j] pair thread j
	// with thread j+1, each on a private line.
	arr := func(j int) prog.Operand { return lay.addr(j) }
	rel := func(j int) prog.Operand { return lay.addr(n - 1 + j) }
	switch {
	case i == 0:
		b.Store(arr(0), prog.Imm(epoch))
		b.SpinGE(rel(0), epoch, padFor(n))
	case i < n-1:
		b.SpinGE(arr(i-1), epoch, padFor(n))
		b.Store(arr(i), prog.Imm(epoch))
		b.SpinGE(rel(i), epoch, padFor(n))
		b.Store(rel(i-1), prog.Imm(epoch))
	default: // i == n-1: the turnaround — last to arrive, first to release
		b.SpinGE(arr(n-2), epoch, padFor(n))
		b.Store(rel(n-2), prog.Imm(epoch))
	}
}
