// Package report renders experiment results as aligned text tables and
// CSV, the output format of every figure/table regenerator in cmd and
// in the benchmark harness.
package report

import (
	"fmt"
	"strings"
)

// Table is a titled grid of cells.
type Table struct {
	Title string
	Note  string
	cols  []string
	rows  [][]string
}

// New returns an empty table with the given title and column headers.
func New(title string, cols ...string) *Table {
	return &Table{Title: title, cols: cols}
}

// Row appends a row; cells are formatted with %v, floats with 4
// significant digits.
func (t *Table) Row(cells ...any) *Table {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		case float32:
			row[i] = formatFloat(float64(v))
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
	return t
}

// Rows returns the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }

// Cell returns the formatted cell at (row, col).
func (t *Table) Cell(row, col int) string { return t.rows[row][col] }

// Wire is a Table with every field exported: the cells are already
// formatted strings, so a Wire round trip reproduces every rendering
// (String, CSV, Markdown) byte for byte. Plain exported data — no
// GobEncoder machinery — is what lets whole tables travel as cell
// values through the runner's gob-encoded result cache.
type Wire struct {
	Title, Note string
	Cols        []string
	Rows        [][]string
}

// Wire exports the table's full contents.
func (t *Table) Wire() Wire { return Wire{t.Title, t.Note, t.cols, t.rows} }

// FromWire rebuilds a table from its exported form.
func FromWire(w Wire) *Table {
	return &Table{Title: w.Title, Note: w.Note, cols: w.Cols, rows: w.Rows}
}

func formatFloat(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 1e6:
		return fmt.Sprintf("%.3e", v)
	case v >= 100:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// String renders the table as aligned text.
func (t *Table) String() string {
	width := make([]int, len(t.cols))
	for i, c := range t.cols {
		width[i] = len(c)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(width) && len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "## %s\n", t.Title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.cols)
	sep := make([]string, len(t.cols))
	for i := range sep {
		sep[i] = strings.Repeat("-", width[i])
	}
	line(sep)
	for _, r := range t.rows {
		line(r)
	}
	if t.Note != "" {
		fmt.Fprintf(&b, "note: %s\n", t.Note)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (header first).
func (t *Table) CSV() string {
	var b strings.Builder
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	for i, c := range t.cols {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(esc(c))
	}
	b.WriteByte('\n')
	for _, r := range t.rows {
		for i, c := range r {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(esc(c))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Markdown renders the table as a GitHub-flavored markdown table.
func (t *Table) Markdown() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "### %s\n\n", t.Title)
	}
	row := func(cells []string) {
		b.WriteString("|")
		for _, c := range cells {
			b.WriteString(" " + strings.ReplaceAll(c, "|", "\\|") + " |")
		}
		b.WriteByte('\n')
	}
	row(t.cols)
	sep := make([]string, len(t.cols))
	for i := range sep {
		sep[i] = "---"
	}
	row(sep)
	for _, r := range t.rows {
		row(r)
	}
	if t.Note != "" {
		fmt.Fprintf(&b, "\n*%s*\n", t.Note)
	}
	return b.String()
}
