package report

import (
	"bytes"
	"encoding/gob"
	"strings"
	"testing"
)

func sample() *Table {
	t := New("Demo", "Name", "Value", "Ratio")
	t.Row("alpha", 1234567.0, 0.5)
	t.Row("b,eta", 12, `quo"te`)
	t.Note = "a note"
	return t
}

func TestStringAlignment(t *testing.T) {
	s := sample().String()
	if !strings.HasPrefix(s, "## Demo\n") {
		t.Errorf("missing title: %q", s)
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	// title, header, separator, 2 rows, note.
	if len(lines) != 6 {
		t.Fatalf("want 6 lines, got %d:\n%s", len(lines), s)
	}
	if !strings.Contains(lines[1], "Name") || !strings.Contains(lines[1], "Ratio") {
		t.Errorf("header wrong: %q", lines[1])
	}
	if !strings.HasPrefix(lines[5], "note: ") {
		t.Errorf("note missing: %q", lines[5])
	}
}

func TestFloatFormatting(t *testing.T) {
	tb := New("f", "v")
	tb.Row(0.0)
	tb.Row(1234567.0)
	tb.Row(123.456)
	tb.Row(1.23456)
	if tb.Cell(0, 0) != "0" {
		t.Errorf("zero cell = %q", tb.Cell(0, 0))
	}
	if !strings.Contains(tb.Cell(1, 0), "e+06") {
		t.Errorf("large float = %q, want scientific", tb.Cell(1, 0))
	}
	if tb.Cell(2, 0) != "123.5" {
		t.Errorf("medium float = %q", tb.Cell(2, 0))
	}
	if tb.Cell(3, 0) != "1.235" {
		t.Errorf("small float = %q", tb.Cell(3, 0))
	}
}

func TestCSVEscaping(t *testing.T) {
	c := sample().CSV()
	lines := strings.Split(strings.TrimRight(c, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("want 3 CSV lines, got %d", len(lines))
	}
	if lines[0] != "Name,Value,Ratio" {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(lines[2], `"b,eta"`) {
		t.Errorf("comma cell not quoted: %q", lines[2])
	}
	if !strings.Contains(lines[2], `"quo""te"`) {
		t.Errorf("quote cell not escaped: %q", lines[2])
	}
}

func TestRowsAndCell(t *testing.T) {
	tb := sample()
	if tb.Rows() != 2 {
		t.Fatalf("Rows = %d", tb.Rows())
	}
	if tb.Cell(0, 0) != "alpha" {
		t.Fatalf("Cell(0,0) = %q", tb.Cell(0, 0))
	}
}

func TestMarkdown(t *testing.T) {
	md := sample().Markdown()
	lines := strings.Split(strings.TrimRight(md, "\n"), "\n")
	if !strings.HasPrefix(lines[0], "### Demo") {
		t.Errorf("title: %q", lines[0])
	}
	if !strings.Contains(md, "| Name | Value | Ratio |") {
		t.Errorf("header row wrong:\n%s", md)
	}
	if !strings.Contains(md, "| --- | --- | --- |") {
		t.Errorf("separator wrong:\n%s", md)
	}
	if !strings.Contains(md, "*a note*") {
		t.Errorf("note wrong:\n%s", md)
	}
}

// TestWireRoundTrip pins the property the result cache relies on: a
// Table rebuilt from its Wire form (optionally through gob, as the
// runner's cell codec does) renders byte-identically in every format.
func TestWireRoundTrip(t *testing.T) {
	orig := sample()
	direct := FromWire(orig.Wire())
	if direct.String() != orig.String() || direct.CSV() != orig.CSV() || direct.Markdown() != orig.Markdown() {
		t.Fatal("Wire round trip changed a rendering")
	}

	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(orig.Wire()); err != nil {
		t.Fatalf("Wire must gob-encode: %v", err)
	}
	var w Wire
	if err := gob.NewDecoder(&buf).Decode(&w); err != nil {
		t.Fatal(err)
	}
	if got := FromWire(w); got.CSV() != orig.CSV() || got.String() != orig.String() {
		t.Fatal("gob round trip changed a rendering")
	}
}
