package core

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func TestHashPoolDeterministicAndDistinct(t *testing.T) {
	a := HashPool(7)
	b := HashPool(7)
	c := HashPool(8)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("pool not deterministic at %d", i)
		}
	}
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("pools for different seeds too similar: %d collisions", same)
	}
	seen := make(map[uint64]bool)
	for _, v := range a {
		if seen[v] {
			t.Fatal("duplicate pool entry")
		}
		seen[v] = true
	}
}

func TestWordRoundTrip(t *testing.T) {
	s, r := NewPair(1)
	for i := 0; i < 1000; i++ {
		want := uint64(i * 31)
		s.Send(want)
		if got := r.Recv(); got != want {
			t.Fatalf("message %d: got %d, want %d", i, got, want)
		}
	}
}

func TestWordFallbackCollision(t *testing.T) {
	// Force the collision path: send payloads chosen so the shuffled
	// word equals the previously stored word.
	s, r := NewPair(3)
	pool := HashPool(3)
	first := uint64(42)
	s.Send(first)
	if got := r.Recv(); got != first {
		t.Fatalf("got %d, want %d", got, first)
	}
	// The stored word is first ^ pool[0]. Craft message 1 so that
	// payload ^ pool[1] == stored word.
	stored := first ^ pool[0]
	collide := stored ^ pool[1]
	s.Send(collide)
	if got := r.Recv(); got != collide {
		t.Fatalf("fallback path: got %d, want %d", got, collide)
	}
	// And keep the channel usable afterwards.
	for i := uint64(0); i < 100; i++ {
		s.Send(i)
		if got := r.Recv(); got != i {
			t.Fatalf("post-fallback message %d: got %d", i, got)
		}
	}
}

func TestWordRepeatedEqualPayloads(t *testing.T) {
	// Identical consecutive payloads must still be detected as distinct
	// messages (the shuffle makes the words differ; if not, the flag
	// does).
	s, r := NewPair(5)
	for i := 0; i < 200; i++ {
		s.Send(7)
		if got := r.Recv(); got != 7 {
			t.Fatalf("message %d: got %d, want 7", i, got)
		}
	}
}

func TestWordPropertyNoLossNoDup(t *testing.T) {
	// Property: any payload sequence arrives exactly once, in order.
	f := func(msgs []uint64) bool {
		s, r := NewPair(11)
		for _, want := range msgs {
			s.Send(want)
			if r.Recv() != want {
				return false
			}
			if _, ok := r.TryRecv(); ok {
				return false // duplicate delivery
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestWordConcurrentRace(t *testing.T) {
	// Real-concurrency exercise (run with -race): the sender paces
	// itself on an ack channel for backpressure.
	s, r := NewPair(13)
	const n = 20000
	ack := make(chan struct{}, 1)
	ack <- struct{}{}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := uint64(0); i < n; i++ {
			<-ack
			s.Send(i * 2654435761)
		}
	}()
	for i := uint64(0); i < n; i++ {
		got := r.Recv()
		if got != i*2654435761 {
			t.Fatalf("message %d corrupted: %d", i, got)
		}
		ack <- struct{}{}
	}
	wg.Wait()
}

func TestBatchRoundTrip(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 16, 32} {
		s, r := NewBatchPair(n, uint64(n))
		msg := make([]uint64, n)
		out := make([]uint64, n)
		rng := rand.New(rand.NewSource(int64(n)))
		for i := 0; i < 300; i++ {
			for j := range msg {
				msg[j] = rng.Uint64()
			}
			s.Send(msg)
			r.Recv(out)
			for j := range msg {
				if out[j] != msg[j] {
					t.Fatalf("n=%d msg %d slice %d: got %d want %d", n, i, j, out[j], msg[j])
				}
			}
		}
	}
}

func TestBatchCollisionSlices(t *testing.T) {
	// Repeating the same message forces every slice through both the
	// change and collision paths over time.
	s, r := NewBatchPair(4, 9)
	msg := []uint64{1, 2, 3, 4}
	out := make([]uint64, 4)
	for i := 0; i < 500; i++ {
		s.Send(msg)
		r.Recv(out)
		for j := range msg {
			if out[j] != msg[j] {
				t.Fatalf("iteration %d slice %d: got %d want %d", i, j, out[j], msg[j])
			}
		}
	}
}

func TestBatchConcurrentRace(t *testing.T) {
	s, r := NewBatchPair(8, 21)
	const n = 5000
	ack := make(chan struct{}, 1)
	ack <- struct{}{}
	go func() {
		msg := make([]uint64, 8)
		for i := uint64(0); i < n; i++ {
			<-ack
			for j := range msg {
				msg[j] = i + uint64(j)
			}
			s.Send(msg)
		}
	}()
	out := make([]uint64, 8)
	for i := uint64(0); i < n; i++ {
		r.Recv(out)
		for j := range out {
			if out[j] != i+uint64(j) {
				t.Fatalf("message %d slice %d: got %d", i, j, out[j])
			}
		}
		ack <- struct{}{}
	}
}

func TestRingFIFOAndBackpressure(t *testing.T) {
	ring := NewRing(8, 17)
	p := ring.Producer()
	c := ring.Consumer()
	// Fill to capacity.
	for i := uint64(0); i < 8; i++ {
		if !p.TrySend(i) {
			t.Fatalf("send %d should fit", i)
		}
	}
	if p.TrySend(99) {
		t.Fatal("ninth send must fail (full ring)")
	}
	for i := uint64(0); i < 8; i++ {
		v, ok := c.TryRecv()
		if !ok || v != i {
			t.Fatalf("recv %d: got %d ok=%v", i, v, ok)
		}
	}
	if _, ok := c.TryRecv(); ok {
		t.Fatal("empty ring must not deliver")
	}
}

func TestRingConcurrentRace(t *testing.T) {
	ring := NewRing(16, 29)
	p := ring.Producer()
	c := ring.Consumer()
	const n = 50000
	go func() {
		for i := uint64(0); i < n; i++ {
			p.Send(i ^ 0xABCD)
		}
	}()
	for i := uint64(0); i < n; i++ {
		if got := c.Recv(); got != i^0xABCD {
			t.Fatalf("message %d corrupted: %d", i, got)
		}
	}
}

func TestRingPropertySequence(t *testing.T) {
	f := func(vals []uint64, sizeExp uint8) bool {
		size := 1 << (sizeExp%5 + 1) // 2..32
		ring := NewRing(size, 31)
		p := ring.Producer()
		c := ring.Consumer()
		for _, v := range vals {
			p.Send(v)
			if c.Recv() != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRingSizeValidation(t *testing.T) {
	for _, bad := range []int{0, -1, 3, 12} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewRing(%d) should panic", bad)
				}
			}()
			NewRing(bad, 1)
		}()
	}
}
