package core

import "armbar/internal/sim"

// SimWord is Pilot's shared state inside the simulator: the data word
// and the fallback flag. They share one cache line deliberately — the
// flag is rarely touched, and co-locating them is part of Pilot's
// cache-line reduction (the receiver polls a single line instead of a
// data line plus a flag line).
type SimWord struct {
	Data uint64 // address of the piggybacked word
	Flag uint64 // address of the fallback flag
	seed uint64
}

// NewSimWord allocates Pilot shared state on one cache line of m.
func NewSimWord(m *sim.Machine, seed uint64) *SimWord {
	line := m.Alloc(1)
	return &SimWord{Data: line, Flag: line + 8, seed: seed}
}

// SimSender is the producing side (Algorithm 3) for simulated threads.
type SimSender struct {
	w       *SimWord
	pool    []uint64
	cnt     int
	oldData uint64
	flag    uint64
}

// SimReceiver is the consuming side (Algorithm 4) for simulated threads.
type SimReceiver struct {
	w       *SimWord
	pool    []uint64
	cnt     int
	oldData uint64
	oldFlag uint64
}

// Sender returns the sending half; local state only, no simulation cost.
func (w *SimWord) Sender() *SimSender {
	return &SimSender{w: w, pool: HashPool(w.seed)}
}

// Receiver returns the receiving half.
func (w *SimWord) Receiver() *SimReceiver {
	return &SimReceiver{w: w, pool: HashPool(w.seed)}
}

// Send publishes payload with one plain store and *no barrier* — the
// whole point of Pilot. The shuffle and bookkeeping are local ALU work.
func (s *SimSender) Send(t *sim.Thread, payload uint64) {
	newData := payload ^ s.pool[s.cnt%PoolSize]
	s.cnt++
	t.Nops(2) // xor + counter bump (Algorithm 3 line 1)
	if newData == s.oldData {
		s.flag ^= 1
		t.Store(s.w.Flag, s.flag)
		return
	}
	t.Store(s.w.Data, newData)
	s.oldData = newData
}

// TryRecv polls once (one loop iteration of Algorithm 4).
func (r *SimReceiver) TryRecv(t *sim.Thread) (uint64, bool) {
	if d := t.Load(r.w.Data); d != r.oldData {
		r.oldData = d
	} else if f := t.Load(r.w.Flag); f != r.oldFlag {
		r.oldFlag = f
	} else {
		return 0, false
	}
	t.Nops(2) // xor + counter bump (Algorithm 4 line 6)
	v := r.oldData ^ r.pool[r.cnt%PoolSize]
	r.cnt++
	return v, true
}

// Recv spins until a message arrives.
func (r *SimReceiver) Recv(t *sim.Thread) uint64 {
	for {
		if v, ok := r.TryRecv(t); ok {
			return v
		}
	}
}
