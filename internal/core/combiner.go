package core

import (
	"runtime"
	"sync/atomic"
)

// Combiner is a real (non-simulated) flat-combining execution lock
// with Pilot-encoded responses: goroutines submit closures; whichever
// submitter grabs the combiner latch executes every pending request.
// The response is delivered as a single Pilot word per client — the
// encoded return value's change is the completion signal, so the
// combiner publishes each result with one atomic store and no ordering
// dance, and the waiter polls one cache line.
//
// Each client slot is single-goroutine: acquire a slot with Register
// and use it from one goroutine at a time.
type Combiner struct {
	latch atomic.Uint32
	_     [60]byte
	slots []combinerSlot
	next  atomic.Uint32
	pool  []uint64
	state *combinerState // owned by the latch holder
}

// combinerSlot is one client's publication record, padded so the
// request and response words live on separate cache lines.
type combinerSlot struct {
	req  atomic.Uint64 // request sequence (odd = pending)
	_    [56]byte
	resp atomic.Uint64 // Pilot-encoded response word
	fb   atomic.Uint64 // fallback flag
	_    [48]byte
	fn   func() uint64 // the critical section (combiner reads after req)
}

// Slot is a registered client handle.
type Slot struct {
	c   *Combiner
	idx int
	seq uint64
	// Pilot client state.
	oldResp uint64
	oldFb   uint64
	cnt     int
	// Combiner-side mirrors, indexed via the owning Combiner; only the
	// latch holder touches them.
}

// combinerState is the latch holder's view of every slot.
type combinerState struct {
	seenReq []uint64
	oldResp []uint64
	fb      []uint64
	cnt     []int
}

// NewCombiner returns a combiner lock for up to n clients.
func NewCombiner(n int, seed uint64) *Combiner {
	c := &Combiner{
		slots: make([]combinerSlot, n),
		pool:  HashPool(seed),
	}
	c.state = &combinerState{
		seenReq: make([]uint64, n),
		oldResp: make([]uint64, n),
		fb:      make([]uint64, n),
		cnt:     make([]int, n),
	}
	return c
}

// Register claims a client slot; it panics when the combiner is full.
func (c *Combiner) Register() *Slot {
	idx := int(c.next.Add(1)) - 1
	if idx >= len(c.slots) {
		panic("core: combiner slots exhausted")
	}
	return &Slot{c: c, idx: idx}
}

// Do runs fn under the combiner lock and returns its result. fn runs
// on some goroutine currently inside Do — possibly another client's —
// so it must not rely on goroutine-local state.
func (s *Slot) Do(fn func() uint64) uint64 {
	c := s.c
	slot := &c.slots[s.idx]
	slot.fn = fn
	s.seq += 2
	slot.req.Store(s.seq | 1) // odd: pending

	for spins := 0; ; spins++ {
		if v, ok := s.tryRecv(); ok {
			return v
		}
		if c.latch.Load() == 0 && c.latch.CompareAndSwap(0, 1) {
			c.combine()
			c.latch.Store(0)
			if v, ok := s.tryRecv(); ok {
				return v
			}
		}
		if spins%spinYield == spinYield-1 {
			runtime.Gosched()
		}
	}
}

// tryRecv polls the slot's Pilot response once.
func (s *Slot) tryRecv() (uint64, bool) {
	slot := &s.c.slots[s.idx]
	if v := slot.resp.Load(); v != s.oldResp {
		s.oldResp = v
	} else if f := slot.fb.Load(); f != s.oldFb {
		s.oldFb = f
	} else {
		return 0, false
	}
	h := s.c.pool[s.cnt%PoolSize]
	s.cnt++
	return s.oldResp ^ h, true
}

// combine serves every pending request (latch held).
func (c *Combiner) combine() {
	st := c.state
	for i := range c.slots {
		slot := &c.slots[i]
		r := slot.req.Load()
		if r&1 == 0 || r == st.seenReq[i] {
			continue
		}
		st.seenReq[i] = r
		raw := slot.fn()
		h := c.pool[st.cnt[i]%PoolSize]
		st.cnt[i]++
		enc := raw ^ h
		if enc == st.oldResp[i] {
			st.fb[i] ^= 1
			slot.fb.Store(st.fb[i])
		} else {
			slot.resp.Store(enc)
			st.oldResp[i] = enc
		}
	}
}
