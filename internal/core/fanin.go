package core

import "runtime"

// FanIn funnels many producers into one consumer through one Pilot
// ring per producer — the lock-free alternative to a mutex-guarded
// shared queue. Each producer owns its ring (SPSC discipline); the
// consumer polls the rings round-robin, so ordering is per-producer
// FIFO with fair interleaving across producers.
type FanIn struct {
	rings []*Ring
}

// NewFanIn creates a fan-in for n producers with the given per-ring
// capacity (power of two).
func NewFanIn(n, capacity int, seed uint64) *FanIn {
	if n <= 0 {
		panic("core: fan-in needs at least one producer")
	}
	f := &FanIn{rings: make([]*Ring, n)}
	for i := range f.rings {
		f.rings[i] = NewRing(capacity, seed+uint64(i)*97)
	}
	return f
}

// Producer returns producer i's sending half (single goroutine each).
func (f *FanIn) Producer(i int) *RingProducer { return f.rings[i].Producer() }

// FanInConsumer drains all producers; single goroutine only.
type FanInConsumer struct {
	f    *FanIn
	cons []*RingConsumer
	next int
}

// Consumer returns the draining half.
func (f *FanIn) Consumer() *FanInConsumer {
	c := &FanInConsumer{f: f, cons: make([]*RingConsumer, len(f.rings))}
	for i := range c.cons {
		c.cons[i] = f.rings[i].Consumer()
	}
	return c
}

// TryRecv polls each producer's ring once starting after the last
// successful source; it reports the producer index alongside the value.
func (c *FanInConsumer) TryRecv() (v uint64, from int, ok bool) {
	n := len(c.cons)
	for k := 0; k < n; k++ {
		i := (c.next + k) % n
		if val, got := c.cons[i].TryRecv(); got {
			c.next = i + 1
			return val, i, true
		}
	}
	return 0, 0, false
}

// Recv blocks (spinning with scheduler yields) until any producer
// delivers.
func (c *FanInConsumer) Recv() (uint64, int) {
	for spins := 0; ; spins++ {
		if v, from, ok := c.TryRecv(); ok {
			return v, from
		}
		if spins%spinYield == spinYield-1 {
			runtime.Gosched()
		}
	}
}
