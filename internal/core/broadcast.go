package core

import (
	"runtime"
	"sync/atomic"
)

// Broadcast is the single-writer, many-reader face of Pilot: a
// published 64-bit value whose updates readers detect as "the word
// changed", with the usual shuffle + fallback so identical consecutive
// publications are still observed. Unlike Word, readers do not consume
// messages — each reader independently tracks the last state it saw,
// so any number of readers can watch one writer (a config knob, an
// epoch counter, a published pointer index, ...).
//
// The writer must not publish faster than readers poll if every update
// matters; readers that poll slower simply observe the latest state
// (reads never block the writer).
type Broadcast struct {
	w    Word
	seed uint64
	// gen counts publications; readers use it to resynchronize their
	// pool index after missing updates.
	gen atomic.Uint64
}

// NewBroadcast returns a broadcast cell publishing from seed's pool.
func NewBroadcast(seed uint64) *Broadcast {
	return &Broadcast{seed: seed}
}

// BroadcastWriter is the publishing half; single goroutine only.
type BroadcastWriter struct {
	b       *Broadcast
	pool    []uint64
	cnt     uint64
	oldData uint64
	flag    uint64
}

// BroadcastReader is one subscriber; single goroutine per reader.
type BroadcastReader struct {
	b        *Broadcast
	pool     []uint64
	lastData uint64
	lastFlag uint64
	lastGen  uint64
	val      uint64
	has      bool
}

// Writer returns the publishing half.
func (b *Broadcast) Writer() *BroadcastWriter {
	return &BroadcastWriter{b: b, pool: HashPool(b.seed)}
}

// Reader returns a new independent subscriber.
func (b *Broadcast) Reader() *BroadcastReader {
	return &BroadcastReader{b: b, pool: HashPool(b.seed)}
}

// Publish makes v the current value with a single data store (plus a
// generation bump that readers use only to pick the right decode key).
func (w *BroadcastWriter) Publish(v uint64) {
	enc := v ^ w.pool[w.cnt%PoolSize]
	w.cnt++
	// The generation is bumped first; readers read it after seeing the
	// data change (gen is monotonic, so a racing reader at worst
	// re-reads).
	w.b.gen.Store(w.cnt)
	if enc == w.oldData {
		w.flag ^= 1
		w.b.w.flag.Store(w.flag)
		return
	}
	w.b.w.data.Store(enc)
	w.oldData = enc
}

// Poll returns the latest published value and whether any value has
// been published yet. It never blocks. The fast path touches only the
// Pilot word's cache line; the generation counter is consulted only
// when a change is detected, to pick the decode key (and to catch up
// after missing intermediate publications).
func (r *BroadcastReader) Poll() (uint64, bool) {
	d := r.b.w.data.Load()
	f := r.b.w.flag.Load()
	if d == r.lastData && f == r.lastFlag {
		return r.val, r.has
	}
	// Something changed: take a generation-stable snapshot to decode.
	gen := r.b.gen.Load()
	for {
		d = r.b.w.data.Load()
		f = r.b.w.flag.Load()
		again := r.b.gen.Load()
		if again == gen && gen > 0 {
			r.lastData, r.lastFlag = d, f
			r.val = d ^ r.pool[(gen-1)%PoolSize]
			r.lastGen = gen
			r.has = true
			return r.val, true
		}
		gen = again
	}
}

// Wait blocks (spinning with scheduler yields) until the generation
// advances past the last value this reader saw, then returns it.
func (r *BroadcastReader) Wait() uint64 {
	last := r.lastGen
	for spins := 0; ; spins++ {
		if v, ok := r.Poll(); ok && r.lastGen != last {
			return v
		}
		if spins%spinYield == spinYield-1 {
			runtime.Gosched()
		}
	}
}
