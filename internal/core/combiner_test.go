package core

import (
	"sync"
	"testing"
)

func TestCombinerSequential(t *testing.T) {
	c := NewCombiner(1, 3)
	s := c.Register()
	var counter uint64
	for i := uint64(1); i <= 500; i++ {
		got := s.Do(func() uint64 {
			counter++
			return counter
		})
		if got != i {
			t.Fatalf("op %d returned %d", i, got)
		}
	}
}

func TestCombinerConcurrentCounter(t *testing.T) {
	const clients, ops = 6, 3000
	c := NewCombiner(clients, 5)
	var counter uint64 // guarded by the combiner
	var wg sync.WaitGroup
	rets := make([][]uint64, clients)
	for i := 0; i < clients; i++ {
		i := i
		s := c.Register()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < ops; j++ {
				rets[i] = append(rets[i], s.Do(func() uint64 {
					counter++
					return counter
				}))
			}
		}()
	}
	wg.Wait()
	if counter != clients*ops {
		t.Fatalf("counter = %d, want %d", counter, clients*ops)
	}
	seen := make(map[uint64]bool, clients*ops)
	for i := range rets {
		prev := uint64(0)
		for _, v := range rets[i] {
			if v <= prev {
				t.Fatalf("client %d: non-monotonic return %d after %d", i, v, prev)
			}
			prev = v
			if seen[v] {
				t.Fatalf("return value %d delivered twice", v)
			}
			seen[v] = true
		}
	}
}

func TestCombinerRegisterExhaustion(t *testing.T) {
	c := NewCombiner(1, 1)
	c.Register()
	defer func() {
		if recover() == nil {
			t.Fatal("second Register must panic")
		}
	}()
	c.Register()
}

func TestFanInPerProducerFIFO(t *testing.T) {
	const producers, per = 4, 2000
	f := NewFanIn(producers, 16, 3)
	var wg sync.WaitGroup
	for i := 0; i < producers; i++ {
		i := i
		p := f.Producer(i)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := uint64(0); j < per; j++ {
				p.Send(uint64(i)<<32 | j)
			}
		}()
	}
	c := f.Consumer()
	lastPer := make([]int64, producers)
	for i := range lastPer {
		lastPer[i] = -1
	}
	counts := make([]int, producers)
	for n := 0; n < producers*per; n++ {
		v, from, ok := c.TryRecv()
		if !ok {
			v, from = c.Recv()
		}
		if int(v>>32) != from {
			t.Fatalf("value tagged producer %d arrived from ring %d", v>>32, from)
		}
		seq := int64(v & 0xFFFFFFFF)
		if seq <= lastPer[from] {
			t.Fatalf("producer %d order broken: %d after %d", from, seq, lastPer[from])
		}
		lastPer[from] = seq
		counts[from]++
	}
	wg.Wait()
	for i, n := range counts {
		if n != per {
			t.Fatalf("producer %d delivered %d, want %d", i, n, per)
		}
	}
}

func TestFanInValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewFanIn(0,...) must panic")
		}
	}()
	NewFanIn(0, 8, 1)
}
