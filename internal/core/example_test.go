package core_test

import (
	"fmt"

	"armbar/internal/core"
)

// ExampleNewPair shows the single-slot Pilot channel: one atomic store
// publishes payload and readiness together, no barrier needed.
func ExampleNewPair() {
	s, r := core.NewPair(1)
	s.Send(42)
	fmt.Println(r.Recv())
	s.Send(42) // identical payloads still arrive as distinct messages
	fmt.Println(r.Recv())
	// Output:
	// 42
	// 42
}

// ExampleNewRing shows the buffered SPSC form with built-in
// backpressure.
func ExampleNewRing() {
	ring := core.NewRing(4, 7)
	p := ring.Producer()
	c := ring.Consumer()
	for i := uint64(1); i <= 3; i++ {
		p.Send(i * 10)
	}
	for i := 0; i < 3; i++ {
		fmt.Println(c.Recv())
	}
	// Output:
	// 10
	// 20
	// 30
}

// ExampleNewBatchPair shows multi-word messages: Pilot applies per
// 8-byte slice, so the whole message still publishes barrier-free.
func ExampleNewBatchPair() {
	s, r := core.NewBatchPair(3, 5)
	s.Send([]uint64{7, 8, 9})
	out := make([]uint64, 3)
	r.Recv(out)
	fmt.Println(out)
	// Output:
	// [7 8 9]
}
