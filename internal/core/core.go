// Package core implements Pilot, the paper's mechanism for removing
// the performance-critical barrier in memory-based communication.
//
// The expensive barrier in a producer-consumer exchange is the one
// strictly following the remote store that fills the shared buffer: it
// orders "write the data" before "set the ready flag" (§4.1, line 5 of
// Algorithm 2). Pilot removes the barrier — and the flag's cache line —
// by piggybacking the flag *onto* the data: the payload is XOR-shuffled
// with a pre-shared hash pool so that consecutive messages almost
// always differ, and the receiver detects availability as "the shared
// word changed". Single-copy atomicity of 64-bit stores guarantees the
// receiver sees flag-and-payload at once, so no ordering is needed. A
// fallback flag handles the corner case where the shuffled payload
// collides with the previous word (Algorithms 3 and 4).
//
// Two implementations live here:
//
//   - a real one on sync/atomic (Go guarantees 64-bit single-copy
//     atomicity), deliverable as a library: Word/Sender/Receiver, the
//     batched Batch variant, and the backpressured Ring;
//   - a simulator-side one (SimSender/SimReceiver) with the same
//     protocol expressed against sim.Thread, used by the experiment
//     packages to reproduce the paper's figures.
package core

import (
	"runtime"
	"sync/atomic"
)

// PoolSize is the length of the pre-shared hash pool. Any size works;
// a power of two keeps the modulo cheap.
const PoolSize = 64

// HashPool returns the deterministic pre-shared shuffle pool both
// sides must agree on. The values only need to "look random": they
// decorrelate consecutive payloads so that the shuffled words differ
// with overwhelming probability.
func HashPool(seed uint64) []uint64 {
	pool := make([]uint64, PoolSize)
	x := seed*0x9E3779B97F4A7C15 + 0xBF58476D1CE4E5B9
	for i := range pool {
		// splitmix64 step: well-distributed, cheap, deterministic.
		x += 0x9E3779B97F4A7C15
		z := x
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		pool[i] = z ^ (z >> 31)
	}
	return pool
}

// Word is the shared state of one Pilot channel: the piggybacked
// data word and the rarely-used fallback flag, padded onto separate
// cache lines so the fallback path cannot slow the fast path down.
// The zero value is ready to use with payload history starting at 0.
type Word struct {
	data atomic.Uint64
	_    [56]byte
	flag atomic.Uint64
	_    [56]byte
}

// Sender is the producing side of a Word (Algorithm 3). Not safe for
// concurrent use by multiple goroutines.
type Sender struct {
	w       *Word
	pool    []uint64
	cnt     int
	oldData uint64
	flag    uint64
}

// Receiver is the consuming side of a Word (Algorithm 4). Not safe
// for concurrent use by multiple goroutines.
type Receiver struct {
	w       *Word
	pool    []uint64
	cnt     int
	oldData uint64
	oldFlag uint64
}

// NewPair returns connected sender/receiver halves over a fresh Word.
// Both sides derive the same hash pool from seed.
func NewPair(seed uint64) (*Sender, *Receiver) {
	w := new(Word)
	return NewSender(w, seed), NewReceiver(w, seed)
}

// NewSender wraps an existing Word. The seed must match the receiver's.
func NewSender(w *Word, seed uint64) *Sender {
	return &Sender{w: w, pool: HashPool(seed)}
}

// NewReceiver wraps an existing Word. The seed must match the sender's.
func NewReceiver(w *Word, seed uint64) *Receiver {
	return &Receiver{w: w, pool: HashPool(seed)}
}

// Send publishes one 64-bit payload with a single atomic store and no
// barrier after the data write. The caller must ensure the receiver
// consumed the previous message (single-slot channel semantics; use
// Ring for buffered backpressure).
func (s *Sender) Send(payload uint64) {
	newData := payload ^ s.pool[s.cnt%PoolSize]
	s.cnt++
	if newData == s.oldData {
		// Fallback: the shuffled payload collides with the word already
		// stored. Since oldData ^ pool[cnt] == payload, the shared word
		// decodes to the new payload under this message's pool index as
		// it stands — the receiver only needs a nudge that a message
		// arrived, so toggle the flag instead of rewriting the data.
		s.flag ^= 1
		s.w.flag.Store(s.flag)
		return
	}
	s.w.data.Store(newData)
	s.oldData = newData
}

// TryRecv polls for a new message; it returns (payload, true) when one
// arrived (Algorithm 4's loop body, one iteration).
func (r *Receiver) TryRecv() (uint64, bool) {
	if d := r.w.data.Load(); d != r.oldData {
		r.oldData = d
	} else if f := r.w.flag.Load(); f != r.oldFlag {
		r.oldFlag = f
	} else {
		return 0, false
	}
	v := r.oldData ^ r.pool[r.cnt%PoolSize]
	r.cnt++
	return v, true
}

// Recv spins until a message arrives and returns its payload. The
// spin yields to the Go scheduler periodically so single-core hosts
// make progress.
func (r *Receiver) Recv() uint64 {
	for spins := 0; ; spins++ {
		if v, ok := r.TryRecv(); ok {
			return v
		}
		if spins%spinYield == spinYield-1 {
			runtime.Gosched()
		}
	}
}

// spinYield is how many failed polls a spin loop tolerates before
// yielding the processor.
const spinYield = 64
