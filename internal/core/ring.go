package core

import (
	"runtime"
	"sync/atomic"
)

// Ring is a single-producer single-consumer ring buffer whose slots
// are Pilot-encoded (§4.4): the store that fills a slot *is* the
// availability signal, so the per-message publication barrier of
// Algorithm 2 (line 5) and the consumer's matching load barrier
// disappear. Only the capacity check keeps a shared counter, and the
// ordering it needs is the cheap load-side one (line 3 of Algorithm 2,
// shown by the paper to be non-critical).
//
// Each slot has its own Pilot word; the producer and consumer advance
// through the slots in lockstep, so a slot is reused only after the
// consumer published a new consCnt — that update is the backpressure
// that makes the per-slot single-slot protocol safe.
type Ring struct {
	size    int
	mask    int
	slots   []Word
	pool    []uint64
	prodCnt atomic.Uint64
	_       [56]byte
	consCnt atomic.Uint64
	_       [56]byte
}

// NewRing returns a Pilot ring with the given power-of-two capacity.
func NewRing(size int, seed uint64) *Ring {
	if size <= 0 || size&(size-1) != 0 {
		panic("core: ring size must be a positive power of two")
	}
	return &Ring{
		size:  size,
		mask:  size - 1,
		slots: make([]Word, size),
		pool:  HashPool(seed),
	}
}

// Cap returns the ring capacity.
func (r *Ring) Cap() int { return r.size }

// RingProducer is the sending half; single goroutine only.
type RingProducer struct {
	r       *Ring
	cnt     uint64
	oldData []uint64
	flags   []uint64
}

// RingConsumer is the receiving half; single goroutine only.
type RingConsumer struct {
	r        *Ring
	cnt      uint64
	oldData  []uint64
	oldFlags []uint64
}

// Producer returns the producing half of the ring.
func (r *Ring) Producer() *RingProducer {
	return &RingProducer{r: r, oldData: make([]uint64, r.size), flags: make([]uint64, r.size)}
}

// Consumer returns the consuming half of the ring.
func (r *Ring) Consumer() *RingConsumer {
	return &RingConsumer{r: r, oldData: make([]uint64, r.size), oldFlags: make([]uint64, r.size)}
}

// TrySend enqueues one payload; it fails when the ring is full.
func (p *RingProducer) TrySend(payload uint64) bool {
	r := p.r
	if p.cnt-r.consCnt.Load() >= uint64(r.size) {
		return false
	}
	i := int(p.cnt) & r.mask
	newData := payload ^ r.pool[p.cnt%PoolSize]
	if newData == p.oldData[i] {
		p.flags[i] ^= 1
		r.slots[i].flag.Store(p.flags[i])
	} else {
		r.slots[i].data.Store(newData)
		p.oldData[i] = newData
	}
	p.cnt++
	r.prodCnt.Store(p.cnt)
	return true
}

// Send enqueues one payload, spinning while the ring is full.
func (p *RingProducer) Send(payload uint64) {
	for spins := 0; !p.TrySend(payload); spins++ {
		if spins%spinYield == spinYield-1 {
			runtime.Gosched()
		}
	}
}

// TryRecv dequeues one payload; it fails when the ring is empty. The
// availability check is the slot's Pilot change itself — prodCnt is
// never read on this path, which is the second half of Pilot's win
// (fewer touched cache lines).
func (c *RingConsumer) TryRecv() (uint64, bool) {
	r := c.r
	i := int(c.cnt) & r.mask
	if d := r.slots[i].data.Load(); d != c.oldData[i] {
		c.oldData[i] = d
	} else if f := r.slots[i].flag.Load(); f != c.oldFlags[i] {
		c.oldFlags[i] = f
	} else {
		return 0, false
	}
	v := c.oldData[i] ^ r.pool[c.cnt%PoolSize]
	c.cnt++
	r.consCnt.Store(c.cnt)
	return v, true
}

// Recv dequeues one payload, spinning while the ring is empty.
func (c *RingConsumer) Recv() uint64 {
	for spins := 0; ; spins++ {
		if v, ok := c.TryRecv(); ok {
			return v
		}
		if spins%spinYield == spinYield-1 {
			runtime.Gosched()
		}
	}
}
