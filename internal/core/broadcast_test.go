package core

import (
	"sync"
	"testing"
)

func TestBroadcastSequential(t *testing.T) {
	b := NewBroadcast(3)
	w := b.Writer()
	r := b.Reader()
	if _, ok := r.Poll(); ok {
		t.Fatal("fresh broadcast must report no value")
	}
	for i := uint64(1); i <= 300; i++ {
		w.Publish(i * 3)
		v, ok := r.Poll()
		if !ok || v != i*3 {
			t.Fatalf("publication %d: got (%d,%v)", i, v, ok)
		}
		// Re-poll without a new publication: same value, no change.
		if v2, _ := r.Poll(); v2 != i*3 {
			t.Fatalf("stable re-poll broke: %d", v2)
		}
	}
}

func TestBroadcastRepeatedValueStillSignals(t *testing.T) {
	b := NewBroadcast(5)
	w := b.Writer()
	r := b.Reader()
	for i := 0; i < 100; i++ {
		w.Publish(42)
		if v := r.Wait(); v != 42 {
			t.Fatalf("round %d: got %d", i, v)
		}
	}
}

func TestBroadcastManyReaders(t *testing.T) {
	b := NewBroadcast(7)
	w := b.Writer()
	const readers = 5
	rs := make([]*BroadcastReader, readers)
	for i := range rs {
		rs[i] = b.Reader()
	}
	for i := uint64(1); i <= 100; i++ {
		w.Publish(i)
		for j, r := range rs {
			if v, ok := r.Poll(); !ok || v != i {
				t.Fatalf("reader %d publication %d: got (%d,%v)", j, i, v, ok)
			}
		}
	}
}

func TestBroadcastLaggingReaderSeesLatest(t *testing.T) {
	b := NewBroadcast(9)
	w := b.Writer()
	r := b.Reader()
	for i := uint64(1); i <= 500; i++ {
		w.Publish(i)
	}
	if v, ok := r.Poll(); !ok || v != 500 {
		t.Fatalf("lagging reader got (%d,%v), want 500", v, ok)
	}
}

func TestBroadcastConcurrentRace(t *testing.T) {
	b := NewBroadcast(11)
	w := b.Writer()
	const n = 20000
	var wg sync.WaitGroup
	for k := 0; k < 3; k++ {
		r := b.Reader()
		wg.Add(1)
		go func() {
			defer wg.Done()
			var last uint64
			for last < n {
				if v, ok := r.Poll(); ok {
					if v < last {
						t.Errorf("value went backwards: %d after %d", v, last)
						return
					}
					last = v
				}
			}
		}()
	}
	for i := uint64(1); i <= n; i++ {
		w.Publish(i)
	}
	wg.Wait()
}
