package core

import (
	"testing"

	"armbar/internal/platform"
	"armbar/internal/sim"
)

func TestSimPilotRoundTrip(t *testing.T) {
	m := sim.New(sim.Config{Plat: platform.Kunpeng916(), Mode: sim.WMM, Seed: 3})
	w := NewSimWord(m, 5)
	ackLine := m.Alloc(1)
	const n = 300
	var got []uint64
	m.Spawn(0, func(th *sim.Thread) {
		s := w.Sender()
		for i := uint64(1); i <= n; i++ {
			s.Send(th, i*7)
			// Backpressure: wait for the consumer's ack before reusing
			// the single-slot channel.
			for th.Load(ackLine) != i {
			}
		}
	})
	m.Spawn(32, func(th *sim.Thread) { // cross NUMA node
		r := w.Receiver()
		for i := uint64(1); i <= n; i++ {
			got = append(got, r.Recv(th))
			th.Store(ackLine, i)
		}
	})
	m.Run()
	if len(got) != n {
		t.Fatalf("received %d messages, want %d", len(got), n)
	}
	for i, v := range got {
		if want := uint64(i+1) * 7; v != want {
			t.Fatalf("message %d: got %d, want %d — Pilot must survive WMM reordering", i, v, want)
		}
	}
}

func TestSimPilotNoBarrierStalls(t *testing.T) {
	// Pilot's send path must never pay a barrier stall: it issues plain
	// stores only.
	m := sim.New(sim.Config{Plat: platform.Kunpeng916(), Mode: sim.WMM, Seed: 9})
	w := NewSimWord(m, 5)
	ackLine := m.Alloc(1)
	const n = 100
	var senderStats sim.ThreadStats
	m.Spawn(0, func(th *sim.Thread) {
		s := w.Sender()
		for i := uint64(1); i <= n; i++ {
			s.Send(th, i)
			for th.Load(ackLine) != i {
			}
		}
		senderStats = th.Stats()
	})
	m.Spawn(4, func(th *sim.Thread) {
		r := w.Receiver()
		for i := uint64(1); i <= n; i++ {
			r.Recv(th)
			th.Store(ackLine, i)
		}
	})
	m.Run()
	if senderStats.BarrierStalled != 0 {
		t.Fatalf("Pilot sender stalled %v cycles in barriers; want 0", senderStats.BarrierStalled)
	}
	if m.Stats().MemTxns != 0 || m.Stats().SyncTxns != 0 {
		t.Fatalf("Pilot must not issue bus barrier transactions: %+v", m.Stats())
	}
}
