package core

import (
	"sync"
	"testing"
)

// The real-library benchmarks compare Pilot's SPSC forms against the
// standard Go alternatives on this host. On a weakly-ordered ARM
// machine Pilot additionally saves the publication barrier; on any
// machine it saves cache-line traffic versus counter-based designs.

func BenchmarkPilotWordRoundTrip(b *testing.B) {
	s, r := NewPair(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Send(uint64(i))
		if r.Recv() != uint64(i) {
			b.Fatal("corrupt")
		}
	}
}

func BenchmarkPilotRing(b *testing.B) {
	ring := NewRing(1024, 7)
	p := ring.Producer()
	c := ring.Consumer()
	var wg sync.WaitGroup
	wg.Add(1)
	b.ResetTimer()
	go func() {
		defer wg.Done()
		for i := 0; i < b.N; i++ {
			p.Send(uint64(i))
		}
	}()
	for i := 0; i < b.N; i++ {
		if c.Recv() != uint64(i) {
			b.Fatal("corrupt")
		}
	}
	wg.Wait()
}

func BenchmarkGoChannel(b *testing.B) {
	ch := make(chan uint64, 1024)
	var wg sync.WaitGroup
	wg.Add(1)
	b.ResetTimer()
	go func() {
		defer wg.Done()
		for i := 0; i < b.N; i++ {
			ch <- uint64(i)
		}
	}()
	for i := 0; i < b.N; i++ {
		if <-ch != uint64(i) {
			b.Fatal("corrupt")
		}
	}
	wg.Wait()
}

func BenchmarkMutexQueue(b *testing.B) {
	var mu sync.Mutex
	queue := make([]uint64, 0, 1024)
	var wg sync.WaitGroup
	wg.Add(1)
	b.ResetTimer()
	go func() {
		defer wg.Done()
		for i := 0; i < b.N; i++ {
			for {
				mu.Lock()
				if len(queue) < 1024 {
					queue = append(queue, uint64(i))
					mu.Unlock()
					break
				}
				mu.Unlock()
			}
		}
	}()
	got := 0
	for got < b.N {
		mu.Lock()
		if len(queue) > 0 {
			queue = queue[1:]
			got++
		}
		mu.Unlock()
	}
	wg.Wait()
}

func BenchmarkPilotBatch8(b *testing.B) {
	s, r := NewBatchPair(8, 3)
	msg := make([]uint64, 8)
	out := make([]uint64, 8)
	b.SetBytes(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range msg {
			msg[j] = uint64(i + j)
		}
		s.Send(msg)
		r.Recv(out)
	}
}

func BenchmarkCombiner(b *testing.B) {
	c := NewCombiner(1, 9)
	s := c.Register()
	var counter uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Do(func() uint64 {
			counter++
			return counter
		})
	}
}
