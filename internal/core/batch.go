package core

import (
	"runtime"
	"sync/atomic"
)

// Batch applies Pilot to messages longer than 64 bits (§4.5, Figure
// 6c): the message is split into 8-byte slices and Pilot is applied to
// every slice independently, so the whole batch is published without
// any barrier. Each slice carries its own fallback flag — a slice is
// "ready" when its word changed or its flag toggled — so no ordering
// among the slice stores is ever assumed (under a weak memory model
// the stores may become visible in any order). One message per
// Send/Recv round; external backpressure required, as with Word.
type Batch struct {
	words []atomic.Uint64
	flags []atomic.Uint64
}

// NewBatch returns shared state for n-word messages.
func NewBatch(n int) *Batch {
	if n <= 0 {
		panic("core: batch size must be positive")
	}
	return &Batch{
		words: make([]atomic.Uint64, n),
		flags: make([]atomic.Uint64, n),
	}
}

// Len returns the message length in 64-bit words.
func (b *Batch) Len() int { return len(b.words) }

// BatchSender publishes fixed-length messages over a Batch.
type BatchSender struct {
	b       *Batch
	pool    []uint64
	cnt     int
	oldData []uint64
	flags   []uint64
}

// BatchReceiver consumes messages from a Batch.
type BatchReceiver struct {
	b        *Batch
	pool     []uint64
	cnt      int
	oldData  []uint64
	oldFlags []uint64
	ready    []bool
}

// NewBatchPair returns connected halves over a fresh n-word Batch.
func NewBatchPair(n int, seed uint64) (*BatchSender, *BatchReceiver) {
	b := NewBatch(n)
	return NewBatchSender(b, seed), NewBatchReceiver(b, seed)
}

// NewBatchSender wraps existing shared state; seed must match the
// receiver's.
func NewBatchSender(b *Batch, seed uint64) *BatchSender {
	return &BatchSender{
		b:       b,
		pool:    HashPool(seed),
		oldData: make([]uint64, b.Len()),
		flags:   make([]uint64, b.Len()),
	}
}

// NewBatchReceiver wraps existing shared state; seed must match the
// sender's.
func NewBatchReceiver(b *Batch, seed uint64) *BatchReceiver {
	return &BatchReceiver{
		b:        b,
		pool:     HashPool(seed),
		oldData:  make([]uint64, b.Len()),
		oldFlags: make([]uint64, b.Len()),
		ready:    make([]bool, b.Len()),
	}
}

// Send publishes msg (len must equal Batch.Len) slice by slice, each
// slice independently Pilot-encoded.
func (s *BatchSender) Send(msg []uint64) {
	if len(msg) != len(s.oldData) {
		panic("core: message length mismatch")
	}
	h := s.pool[s.cnt%PoolSize]
	s.cnt++
	for i, payload := range msg {
		newData := payload ^ h
		if newData == s.oldData[i] {
			// Fallback for this slice only: the stored word already
			// decodes to the new payload under this round's pool entry.
			s.flags[i] ^= 1
			s.b.flags[i].Store(s.flags[i])
			continue
		}
		s.b.words[i].Store(newData)
		s.oldData[i] = newData
	}
}

// TryRecv polls for a complete new message into out (len must equal
// Batch.Len). Slice readiness is remembered across calls, so partially
// visible messages make progress without re-scanning from scratch.
func (r *BatchReceiver) TryRecv(out []uint64) bool {
	if len(out) != len(r.oldData) {
		panic("core: message length mismatch")
	}
	all := true
	for i := range r.oldData {
		if r.ready[i] {
			continue
		}
		if d := r.b.words[i].Load(); d != r.oldData[i] {
			r.oldData[i] = d
			r.ready[i] = true
			continue
		}
		if f := r.b.flags[i].Load(); f != r.oldFlags[i] {
			r.oldFlags[i] = f
			r.ready[i] = true
			continue
		}
		all = false
	}
	if !all {
		return false
	}
	h := r.pool[r.cnt%PoolSize]
	r.cnt++
	for i := range r.oldData {
		out[i] = r.oldData[i] ^ h
		r.ready[i] = false
	}
	return true
}

// Recv spins until a complete message arrives.
func (r *BatchReceiver) Recv(out []uint64) {
	for spins := 0; !r.TryRecv(out); spins++ {
		if spins%spinYield == spinYield-1 {
			runtime.Gosched()
		}
	}
}
