package locks

import (
	"armbar/internal/isa"
	"armbar/internal/sim"
)

// TASLock is a plain test-and-set spinlock (with test-and-test-and-set
// polling), the simplest in-place lock and the worst-scaling one: all
// waiters hammer a single line with RMWs.
type TASLock struct {
	word   uint64
	unlock isa.Barrier
}

// NewTAS allocates a test-and-set lock.
func NewTAS(m *sim.Machine, unlockBarrier isa.Barrier) *TASLock {
	return &TASLock{word: m.Alloc(1), unlock: unlockBarrier}
}

// Name implements Lock.
func (l *TASLock) Name() string { return "TAS" }

// Lock spins until the word is grabbed.
func (l *TASLock) Lock(t *sim.Thread) {
	for {
		// Test-and-test-and-set: poll read-only first.
		for t.Load(l.word) != 0 {
			t.Nops(spinPause)
		}
		if t.CompareAndSwap(l.word, 0, 1) {
			return
		}
		t.Nops(spinPause)
	}
}

// Unlock releases the word after publishing the critical section.
func (l *TASLock) Unlock(t *sim.Thread) {
	if l.unlock != isa.None {
		t.Barrier(l.unlock)
	}
	t.Store(l.word, 0)
}

// Exec implements Lock.
func (l *TASLock) Exec(t *sim.Thread, client int, cs CS, arg uint64) uint64 {
	l.Lock(t)
	ret := cs(t, arg)
	l.Unlock(t)
	return ret
}

// CLHLock is the Craig/Landin-Hagersten queue lock: waiters spin on
// their *predecessor's* node, giving per-waiter local spinning like
// MCS but with an implicit queue. On release a thread recycles its
// predecessor's node as its own next node — the classic CLH trick,
// which works because the predecessor's node is guaranteed free once
// the lock is held.
//
// Node layout: a single word at +0 (1 = held/pending, 0 = released).
type CLHLock struct {
	tail   uint64   // holds the current tail node address
	armed  []uint64 // per client: the node to enqueue next
	pred   []uint64 // per client: predecessor node while holding
	unlock isa.Barrier
}

// NewCLH allocates a CLH lock for nClients. A dummy released node
// seeds the tail.
func NewCLH(m *sim.Machine, nClients int, unlockBarrier isa.Barrier) *CLHLock {
	l := &CLHLock{
		tail:   m.Alloc(1),
		armed:  make([]uint64, nClients),
		pred:   make([]uint64, nClients),
		unlock: unlockBarrier,
	}
	for i := range l.armed {
		l.armed[i] = m.Alloc(1)
	}
	dummy := m.Alloc(1) // starts released (memory zero)
	m.SetInitial(l.tail, dummy)
	return l
}

// Name implements Lock.
func (l *CLHLock) Name() string { return "CLH" }

// Lock enqueues the client's armed node and spins on the predecessor.
func (l *CLHLock) Lock(t *sim.Thread, c int) {
	node := l.armed[c]
	t.Store(node, 1)
	t.Barrier(isa.DMBSt) // the node must read "pending" before it is linked
	pred := t.Swap(l.tail, node)
	l.pred[c] = pred
	for t.LoadAcquire(pred) != 0 {
		t.Nops(spinPause)
	}
}

// Unlock publishes the critical section, releases the own node, and
// recycles the predecessor's node.
func (l *CLHLock) Unlock(t *sim.Thread, c int) {
	if l.unlock != isa.None {
		t.Barrier(l.unlock)
	}
	t.Store(l.armed[c], 0)
	l.armed[c] = l.pred[c]
}

// Exec implements Lock.
func (l *CLHLock) Exec(t *sim.Thread, client int, cs CS, arg uint64) uint64 {
	l.Lock(t, client)
	ret := cs(t, arg)
	l.Unlock(t, client)
	return ret
}
