package locks

import (
	"testing"

	"armbar/internal/isa"
	"armbar/internal/platform"
)

func bench(t *testing.T, cfg BenchConfig) BenchResult {
	t.Helper()
	if cfg.Plat == nil {
		cfg.Plat = platform.Kunpeng916()
	}
	if cfg.Seed == 0 {
		cfg.Seed = 11
	}
	return Bench(cfg)
}

func TestTicketMutualExclusion(t *testing.T) {
	r := bench(t, BenchConfig{Kind: Ticket, Threads: 12, Ops: 120, Globals: 2})
	if !r.Valid {
		t.Fatal("ticket lock lost updates: mutual exclusion or publication broken")
	}
}

func TestTicketUnlockBarrierRemovalIsUnsafeButFaster(t *testing.T) {
	// Figure 7a: removing the unlock barrier after the RMR yields up to
	// ~23% more throughput on the server when the CS visits global
	// lines. (The paper measures overhead; removal alone is not a safe
	// program, which the validity flag may reflect.)
	normal := bench(t, BenchConfig{Kind: Ticket, Threads: 12, Ops: 120, Globals: 2,
		UnlockBarrier: isa.DMBSt})
	removed := bench(t, BenchConfig{Kind: Ticket, Threads: 12, Ops: 120, Globals: 2,
		UnlockBarrier: isa.AddrDep}) // effectively no publication fence
	if !normal.Valid {
		t.Fatal("normal ticket must be correct")
	}
	gain := removed.Throughput() / normal.Throughput()
	if gain < 1.03 {
		t.Errorf("barrier removal gain %.3fx, want noticeable (>1.03x)", gain)
	}
}

func TestTicketBarrierCostGrowsWithGlobalLines(t *testing.T) {
	// Figure 7a: with zero global lines the unlock barrier does not
	// follow an RMR, so its cost is small; with 2 lines it is evident.
	gainAt := func(globals int) float64 {
		n := bench(t, BenchConfig{Kind: Ticket, Threads: 12, Ops: 120, Globals: globals,
			UnlockBarrier: isa.DMBSt})
		r := bench(t, BenchConfig{Kind: Ticket, Threads: 12, Ops: 120, Globals: globals,
			UnlockBarrier: isa.AddrDep})
		return r.Throughput() / n.Throughput()
	}
	g0, g2 := gainAt(0), gainAt(2)
	if g2 < g0 {
		t.Errorf("removal gain should grow with visited global lines: g0=%.3f g2=%.3f", g0, g2)
	}
}

func TestFFWDCorrectness(t *testing.T) {
	for _, k := range []Kind{FFWD, FFWDPilot} {
		r := bench(t, BenchConfig{Kind: k, Threads: 10, Ops: 100, Globals: 1})
		if !r.Valid {
			t.Errorf("%v: lost updates", k)
		}
	}
}

func TestDSMSynchCorrectness(t *testing.T) {
	for _, k := range []Kind{DSMSynch, DSMSynchPilot} {
		r := bench(t, BenchConfig{Kind: k, Threads: 10, Ops: 100, Globals: 1})
		if !r.Valid {
			t.Errorf("%v: lost updates", k)
		}
	}
}

func TestCSReturnValuesSequential(t *testing.T) {
	// The counter CS returns its post-increment value; under correct
	// mutual exclusion every value 1..total appears exactly once.
	p := platform.Kunpeng916()
	for _, kind := range []Kind{Ticket, FFWD, FFWDPilot, DSMSynch, DSMSynchPilot} {
		cfg := BenchConfig{Plat: p, Kind: kind, Threads: 6, Ops: 50, Seed: 5}
		r := Bench(cfg)
		if !r.Valid {
			t.Errorf("%v: validity check failed", kind)
		}
	}
}

func TestFig7bWeakBarriersBeatFullInDelegation(t *testing.T) {
	// Figure 7b: LDAR-DMBst / DMBld-DMBst outperform DMBfull-DMBst, and
	// LDAR-NoBarrier beats LDAR-DMBst by ~20%+.
	run := func(x, y isa.Barrier) float64 {
		return bench(t, BenchConfig{Kind: FFWD, Threads: 12, Ops: 150, Globals: 0,
			ServeBarriers: [2]isa.Barrier{x, y}}).Throughput()
	}
	full := run(isa.DMBFull, isa.DMBSt)
	ldar := run(isa.LDAR, isa.DMBSt)
	if ldar < 0.95*full {
		// FFWD batches the Y barrier, so the X choice matters less;
		// require no regression here and check the real effect on the
		// per-request DSMSynch below.
		t.Errorf("LDAR-DMBst (%g) regressed vs DMBfull-DMBst (%g)", ldar, full)
	}
	noY := bench(t, BenchConfig{Kind: FFWD, Threads: 12, Ops: 150,
		ServeBarriers: [2]isa.Barrier{isa.LDAR, isa.AddrDep}}).Throughput()
	_ = noY // the Y barrier is batched in FFWD; the per-figure effect is checked on DSMSynch below.
	dsFull := bench(t, BenchConfig{Kind: DSMSynch, Threads: 12, Ops: 150,
		ServeBarriers: [2]isa.Barrier{isa.DMBFull, isa.DMBSt}}).Throughput()
	dsLdar := bench(t, BenchConfig{Kind: DSMSynch, Threads: 12, Ops: 150,
		ServeBarriers: [2]isa.Barrier{isa.LDAR, isa.DMBSt}}).Throughput()
	if dsLdar < dsFull {
		t.Errorf("DSMSynch LDAR-DMBst (%g) should beat DMBfull-DMBst (%g)", dsLdar, dsFull)
	}
}

func TestFig7cPilotGainAtHighContention(t *testing.T) {
	// Figure 7c: at high contention (no interval) Pilot improves
	// DSMSynch substantially and FFWD more modestly; at low contention
	// Pilot costs roughly nothing.
	hi := func(k Kind) float64 {
		return bench(t, BenchConfig{Kind: k, Threads: 24, Ops: 80, Interval: 0}).Throughput()
	}
	lo := func(k Kind) float64 {
		return bench(t, BenchConfig{Kind: k, Threads: 24, Ops: 30, Interval: 12800}).Throughput()
	}
	dsGain := hi(DSMSynchPilot) / hi(DSMSynch)
	ffGain := hi(FFWDPilot) / hi(FFWD)
	if dsGain < 1.15 {
		t.Errorf("DSynch-P high-contention gain %.2fx, want substantial (>1.15x)", dsGain)
	}
	if ffGain < 1.02 {
		t.Errorf("FFWD-P high-contention gain %.2fx, want positive", ffGain)
	}
	if ffGain > dsGain {
		t.Errorf("FFWD batches barriers: its Pilot gain (%.2fx) should not exceed DSynch's (%.2fx)",
			ffGain, dsGain)
	}
	loGain := lo(DSMSynchPilot) / lo(DSMSynch)
	if loGain < 0.85 {
		t.Errorf("low contention: Pilot should not cost much (%.2fx)", loGain)
	}
}

func TestTicketWinsAtLowContention(t *testing.T) {
	// Figure 7c right side: the in-place lock overtakes delegation when
	// contention vanishes.
	tk := bench(t, BenchConfig{Kind: Ticket, Threads: 8, Ops: 40, Interval: 128000}).Throughput()
	ds := bench(t, BenchConfig{Kind: DSMSynch, Threads: 8, Ops: 40, Interval: 128000}).Throughput()
	if tk < ds*0.9 {
		t.Errorf("ticket (%g) should be competitive at low contention vs DSynch (%g)", tk, ds)
	}
}

func TestDeterministicBench(t *testing.T) {
	cfg := BenchConfig{Plat: platform.Kunpeng916(), Kind: DSMSynch, Threads: 8, Ops: 60, Seed: 7}
	a, b := Bench(cfg), Bench(cfg)
	if a.Cycles != b.Cycles {
		t.Fatalf("non-deterministic: %g vs %g", a.Cycles, b.Cycles)
	}
}

func TestAllKindsValidInBench(t *testing.T) {
	for _, k := range []Kind{Ticket, TAS, MCS, CLH, FC, FCPilot, FFWD, FFWDPilot,
		DSMSynch, DSMSynchPilot} {
		r := bench(t, BenchConfig{Kind: k, Threads: 8, Ops: 40, Globals: 1})
		if !r.Valid {
			t.Errorf("%v: bench validity failed", k)
		}
	}
}

func TestCombinersBeatInPlaceAtHighContention(t *testing.T) {
	// The extension table's headline: combining locks overtake the
	// in-place family when everyone hammers the same lock.
	tick := bench(t, BenchConfig{Kind: Ticket, Threads: 20, Ops: 60}).Throughput()
	fc := bench(t, BenchConfig{Kind: FC, Threads: 20, Ops: 60}).Throughput()
	if fc < tick {
		t.Errorf("flat combining (%g) should beat ticket (%g) at high contention", fc, tick)
	}
}
