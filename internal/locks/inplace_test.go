package locks

import (
	"testing"

	"armbar/internal/isa"
	"armbar/internal/platform"
	"armbar/internal/sim"
	"armbar/internal/topo"
)

// driveInPlace runs a counter workload under the given constructor.
func driveInPlace(t *testing.T, threads, ops int, mk func(m *sim.Machine) Lock) (bool, float64) {
	t.Helper()
	m := sim.New(sim.Config{Plat: platform.Kunpeng916(), Mode: sim.WMM, Seed: 13})
	counter := m.Alloc(1)
	shared := m.Alloc(1)
	l := mk(m)
	for i := 0; i < threads; i++ {
		i := i
		m.Spawn(topo.CoreID(i*2%63), func(th *sim.Thread) {
			for op := 0; op < ops; op++ {
				l.Exec(th, i, func(tt *sim.Thread, _ uint64) uint64 {
					v := tt.Load(shared)
					tt.Store(shared, v+1)
					c := tt.Load(counter)
					tt.Store(counter, c+1)
					return c + 1
				}, 0)
				th.Nops(20)
			}
		})
	}
	cycles := m.Run()
	want := uint64(threads * ops)
	ok := m.Directory().Committed(counter) == want &&
		m.Directory().Committed(shared) == want
	return ok, cycles
}

func TestTASMutualExclusion(t *testing.T) {
	ok, _ := driveInPlace(t, 8, 60, func(m *sim.Machine) Lock {
		return NewTAS(m, isa.DMBSt)
	})
	if !ok {
		t.Fatal("TAS lost updates")
	}
}

func TestCLHMutualExclusion(t *testing.T) {
	ok, _ := driveInPlace(t, 8, 60, func(m *sim.Machine) Lock {
		return NewCLH(m, 8, isa.DMBSt)
	})
	if !ok {
		t.Fatal("CLH lost updates")
	}
}

func TestCLHSingleThreadReuse(t *testing.T) {
	// The node-recycling trick must survive many reacquisitions.
	ok, _ := driveInPlace(t, 1, 300, func(m *sim.Machine) Lock {
		return NewCLH(m, 1, isa.DMBSt)
	})
	if !ok {
		t.Fatal("CLH single-thread reuse broken")
	}
}

func TestFCMutualExclusion(t *testing.T) {
	for _, pilot := range []bool{false, true} {
		ok, _ := driveInPlace(t, 8, 60, func(m *sim.Machine) Lock {
			return NewFC(m, 8, pilot, 0)
		})
		if !ok {
			t.Fatalf("flat combining (pilot=%v) lost updates", pilot)
		}
	}
}

func TestFCPilotGain(t *testing.T) {
	// Flat combining serves requests one-by-one (no Y-barrier batching),
	// so Pilot should help like it helps DSMSynch.
	_, plain := driveInPlace(t, 12, 60, func(m *sim.Machine) Lock {
		return NewFC(m, 12, false, 0)
	})
	_, pilot := driveInPlace(t, 12, 60, func(m *sim.Machine) Lock {
		return NewFC(m, 12, true, 0)
	})
	if gain := plain / pilot; gain < 1.02 {
		t.Errorf("FC-P should beat FC at contention: %.3fx", gain)
	}
}

func TestQueueLocksScaleBetterThanTAS(t *testing.T) {
	// The classic scalability story: under contention the queue locks
	// (per-waiter spinning) beat the global TAS word.
	_, tas := driveInPlace(t, 14, 50, func(m *sim.Machine) Lock {
		return NewTAS(m, isa.DMBSt)
	})
	_, clh := driveInPlace(t, 14, 50, func(m *sim.Machine) Lock {
		return NewCLH(m, 14, isa.DMBSt)
	})
	_, mcs := driveInPlace(t, 14, 50, func(m *sim.Machine) Lock {
		return NewMCS(m, 14, isa.DMBSt)
	})
	if tas < clh && tas < mcs {
		t.Skipf("TAS unexpectedly fastest (tas=%.0f clh=%.0f mcs=%.0f cycles) — contention too low", tas, clh, mcs)
	}
	if clh > 3*tas && mcs > 3*tas {
		t.Errorf("queue locks should not be drastically worse than TAS: tas=%.0f clh=%.0f mcs=%.0f", tas, clh, mcs)
	}
}

func TestCCSynchMutualExclusion(t *testing.T) {
	for _, pilot := range []bool{false, true} {
		ok, _ := driveInPlace(t, 10, 60, func(m *sim.Machine) Lock {
			return NewCCSynch(m, 10, pilot, 0)
		})
		if !ok {
			t.Fatalf("CCSynch (pilot=%v) lost updates", pilot)
		}
	}
}

func TestCCSynchSingleThread(t *testing.T) {
	ok, _ := driveInPlace(t, 1, 200, func(m *sim.Machine) Lock {
		return NewCCSynch(m, 1, false, 0)
	})
	if !ok {
		t.Fatal("CCSynch single-thread broken")
	}
}

func TestCCSynchPilotParity(t *testing.T) {
	// Unlike DSMSynch and flat combining, CC-Synch's dummy-node handoff
	// already keeps the publication path light, so Pilot lands at parity
	// here rather than a win (the paper never measured this pairing);
	// what we assert is that Pilot costs nothing.
	_, plain := driveInPlace(t, 16, 60, func(m *sim.Machine) Lock {
		return NewCCSynch(m, 16, false, 0)
	})
	_, pilot := driveInPlace(t, 16, 60, func(m *sim.Machine) Lock {
		return NewCCSynch(m, 16, true, 0)
	})
	if gain := plain / pilot; gain < 0.90 {
		t.Errorf("CCSynch-P must not regress materially: %.3fx", gain)
	}
}
