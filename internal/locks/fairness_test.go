package locks

import (
	"testing"

	"armbar/internal/isa"
	"armbar/internal/platform"
	"armbar/internal/sim"
	"armbar/internal/topo"
)

// acquisitionOrder runs `threads` clients each taking the lock `per`
// times, recording the global acquisition sequence by client.
func acquisitionOrder(t *testing.T, mk func(m *sim.Machine) Lock, threads, per int) []int {
	t.Helper()
	m := sim.New(sim.Config{Plat: platform.Kunpeng916(), Mode: sim.WMM, Seed: 19})
	var order []int
	l := mk(m)
	for i := 0; i < threads; i++ {
		i := i
		m.Spawn(topo.CoreID(i*4%63), func(th *sim.Thread) {
			for op := 0; op < per; op++ {
				l.Exec(th, i, func(tt *sim.Thread, _ uint64) uint64 {
					order = append(order, i)
					tt.Nops(10)
					return 0
				}, 0)
				th.Nops(30)
			}
		})
	}
	m.Run()
	return order
}

// maxConsecutiveRepeats finds the longest run of one client acquiring
// back-to-back — a starvation indicator for unfair locks.
func maxConsecutiveRepeats(order []int) int {
	best, cur := 1, 1
	for i := 1; i < len(order); i++ {
		if order[i] == order[i-1] {
			cur++
			if cur > best {
				best = cur
			}
		} else {
			cur = 1
		}
	}
	return best
}

// spreadBound computes the maximum lead any client has over the
// laggard at any prefix of the acquisition order.
func spreadBound(order []int, threads int) int {
	counts := make([]int, threads)
	worst := 0
	for _, c := range order {
		counts[c]++
		max, min := counts[0], counts[0]
		for _, n := range counts[1:] {
			if n > max {
				max = n
			}
			if n < min {
				min = n
			}
		}
		if max-min > worst {
			worst = max - min
		}
	}
	return worst
}

func TestTicketLockIsFIFOFair(t *testing.T) {
	const threads, per = 8, 20
	order := acquisitionOrder(t, func(m *sim.Machine) Lock {
		return NewTicket(m, isa.DMBSt)
	}, threads, per)
	if len(order) != threads*per {
		t.Fatalf("acquisitions = %d, want %d", len(order), threads*per)
	}
	// Ticket FIFO: once every thread is queued, no thread can lap
	// another by more than a small bound.
	if s := spreadBound(order, threads); s > threads {
		t.Errorf("ticket lock spread %d exceeds FIFO bound %d", s, threads)
	}
}

func TestQueueLocksBounded(t *testing.T) {
	const threads, per = 8, 20
	for name, mk := range map[string]func(m *sim.Machine) Lock{
		"MCS": func(m *sim.Machine) Lock { return NewMCS(m, threads, isa.DMBSt) },
		"CLH": func(m *sim.Machine) Lock { return NewCLH(m, threads, isa.DMBSt) },
	} {
		order := acquisitionOrder(t, mk, threads, per)
		if len(order) != threads*per {
			t.Fatalf("%s: acquisitions = %d, want %d", name, len(order), threads*per)
		}
		if s := spreadBound(order, threads); s > threads+2 {
			t.Errorf("%s: spread %d exceeds queue-lock bound", name, s)
		}
	}
}

func TestCombinersServeEveryoneEachSweep(t *testing.T) {
	// Combining locks are not FIFO, but no client may starve: bounded
	// consecutive repeats and bounded spread.
	const threads, per = 8, 20
	for name, mk := range map[string]func(m *sim.Machine) Lock{
		"DSynch":  func(m *sim.Machine) Lock { return NewDSMSynch(m, threads, false, [2]isa.Barrier{}) },
		"CCSynch": func(m *sim.Machine) Lock { return NewCCSynch(m, threads, false, 0) },
		"FC":      func(m *sim.Machine) Lock { return NewFC(m, threads, false, 0) },
	} {
		order := acquisitionOrder(t, mk, threads, per)
		if len(order) != threads*per {
			t.Fatalf("%s: acquisitions = %d, want %d", name, len(order), threads*per)
		}
		if r := maxConsecutiveRepeats(order); r > 3 {
			t.Errorf("%s: one client acquired %d times back-to-back", name, r)
		}
		if s := spreadBound(order, threads); s > 3*threads {
			t.Errorf("%s: spread %d suggests starvation", name, s)
		}
	}
}
