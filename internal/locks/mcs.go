package locks

import (
	"armbar/internal/isa"
	"armbar/internal/sim"
)

// MCSLock is the queue lock of Mellor-Crummey & Scott, the second
// classic in-place lock the paper cites alongside the ticket lock:
// each waiter spins on its own queue node, so the lock word itself
// never sees contention storms. The unlock path still needs the
// publication barrier before signalling the successor — the same
// Obs-2 barrier-after-RMR pattern as the ticket lock's.
//
// Node layout (one line per client): +0 next, +8 locked.
type MCSLock struct {
	tail   uint64
	nodes  []uint64 // one node per client
	unlock isa.Barrier
}

// NewMCS allocates an MCS lock for nClients on machine m; unlockBarrier
// is the publication barrier in the release path (isa.DMBSt normally).
func NewMCS(m *sim.Machine, nClients int, unlockBarrier isa.Barrier) *MCSLock {
	l := &MCSLock{tail: m.Alloc(1), unlock: unlockBarrier, nodes: make([]uint64, nClients)}
	for i := range l.nodes {
		l.nodes[i] = m.Alloc(1)
	}
	return l
}

// Name implements Lock.
func (l *MCSLock) Name() string { return "MCS" }

// Lock acquires the lock for client c on thread t.
func (l *MCSLock) Lock(t *sim.Thread, c int) {
	node := l.nodes[c]
	t.Store(node+0, 0) // next = nil
	t.Store(node+8, 1) // locked
	pred := t.Swap(l.tail, node)
	if pred == 0 {
		return
	}
	t.Store(pred+0, node)
	for t.LoadAcquire(node+8) == 1 {
		t.Nops(spinPause)
	}
}

// Unlock releases the lock held by client c.
func (l *MCSLock) Unlock(t *sim.Thread, c int) {
	node := l.nodes[c]
	next := t.Load(node + 0)
	if next == 0 {
		// No known successor: try to detach the queue.
		if t.CompareAndSwap(l.tail, node, 0) {
			return
		}
		for next == 0 {
			next = t.Load(node + 0)
			if next == 0 {
				t.Nops(spinPause)
			}
		}
	}
	// Publish the critical section before waking the successor — the
	// barrier that strictly follows the CS's last (likely remote)
	// access.
	if l.unlock != isa.None {
		t.Barrier(l.unlock)
	}
	t.Store(next+8, 0)
}

// Exec implements Lock by running cs inline under the lock.
func (l *MCSLock) Exec(t *sim.Thread, client int, cs CS, arg uint64) uint64 {
	l.Lock(t, client)
	ret := cs(t, arg)
	l.Unlock(t, client)
	return ret
}
