package locks

import (
	"armbar/internal/core"
	"armbar/internal/isa"
	"armbar/internal/sim"
)

// CCSynchLock is the CC-Synch combining lock (Fatourou & Kallimanis,
// cited by the paper with DSM-Synch): a dummy-node queue where each
// thread swaps in a fresh node, writes its request into the node it
// received back, and spins on that node's wait word. The combiner
// walks the chain executing requests until it hits the tail dummy or
// its combining bound.
//
// Layout per node (two lines, spin word separate from data):
//
//	data line:  +0 next, +8 arg, +16 ret (Pilot word in pilot mode),
//	            +24 fbflag
//	wait line:  +0 wait — 1 = spin, 2 = completed, 0 = become combiner
//
// Pilot mode publishes results as ret-word changes (Algorithm 6); the
// wait word is then touched only for the combiner handoff.
type CCSynchLock struct {
	pilot bool
	barY  isa.Barrier
	h     int

	tail  uint64 // holds the current dummy node address
	nodes []uint64
	waits map[uint64]uint64 // data-line addr -> wait-line addr
	cs    map[uint64]CS     // per data-line pending critical section
	pool  []uint64

	// Per-node Pilot counters, keyed by data-line address; touched by
	// the serialized combiner and by the node's current owner.
	combOld map[uint64]uint64
	combFb  map[uint64]uint64
	combCnt map[uint64]int
	ownOld  map[uint64]uint64
	ownFb   map[uint64]uint64
	ownCnt  map[uint64]int

	// mine tracks each client's spare node (swapped back each round).
	mine []uint64
}

// NewCCSynch allocates the lock for nClients on machine m.
func NewCCSynch(m *sim.Machine, nClients int, pilot bool, barY isa.Barrier) *CCSynchLock {
	if barY == isa.None && !pilot {
		barY = isa.DMBSt
	}
	l := &CCSynchLock{
		pilot:   pilot,
		barY:    barY,
		h:       2*nClients + 1,
		tail:    m.Alloc(1),
		waits:   make(map[uint64]uint64),
		cs:      make(map[uint64]CS),
		pool:    core.HashPool(0xCC5),
		combOld: make(map[uint64]uint64),
		combFb:  make(map[uint64]uint64),
		combCnt: make(map[uint64]int),
		ownOld:  make(map[uint64]uint64),
		ownFb:   make(map[uint64]uint64),
		ownCnt:  make(map[uint64]int),
		mine:    make([]uint64, nClients),
	}
	alloc := func() uint64 {
		d := m.Alloc(1)
		w := m.Alloc(1)
		l.waits[d] = w
		l.nodes = append(l.nodes, d)
		return d
	}
	for i := range l.mine {
		l.mine[i] = alloc()
	}
	dummy := alloc()
	m.SetInitial(l.tail, dummy)
	return l
}

// Name implements Lock.
func (l *CCSynchLock) Name() string {
	if l.pilot {
		return "CCSynch-P"
	}
	return "CCSynch"
}

// Exec implements Lock.
func (l *CCSynchLock) Exec(t *sim.Thread, client int, cs CS, arg uint64) uint64 {
	fresh := l.mine[client]
	// Prepare the fresh node (it becomes the new tail dummy).
	t.Store(fresh+0, 0)          // next
	t.Store(l.waits[fresh], 1)   // spin
	t.Barrier(isa.DMBSt)         // dummy readable before linking
	cur := t.Swap(l.tail, fresh) // cur: my request node
	l.mine[client] = cur         // recycle: cur is mine next round
	l.cs[cur] = cs               // the combiner reads this Go-side
	t.Store(cur+8, arg)          // request argument
	t.Barrier(isa.DMBSt)         // request fields before the link
	t.Store(cur+0, fresh)        // link my node to the new dummy

	wait := l.waits[cur]
	if l.pilot {
		h := l.pool[l.ownCnt[cur]%core.PoolSize]
		for {
			if v := t.Load(cur + 16); v != l.ownOld[cur] {
				l.ownOld[cur] = v
				l.ownCnt[cur]++
				return v ^ h
			}
			if f := t.Load(cur + 24); f != l.ownFb[cur] {
				l.ownFb[cur] = f
				l.ownCnt[cur]++
				return l.ownOld[cur] ^ h
			}
			if t.LoadAcquire(wait) == 0 {
				break
			}
			t.Nops(spinPause)
		}
	} else {
		for {
			st := t.LoadAcquire(wait)
			if st == 2 {
				t.Barrier(isa.DMBLd)
				return t.Load(cur + 16)
			}
			if st == 0 {
				break
			}
			t.Nops(spinPause)
		}
	}
	return l.combineFrom(t, cur)
}

// combineFrom serves requests starting at the thread's own node.
func (l *CCSynchLock) combineFrom(t *sim.Thread, own uint64) uint64 {
	var myRet uint64
	cur := own
	for served := 0; ; served++ {
		next := t.LoadAcquire(cur + 0)
		if next == 0 {
			// cur is the tail dummy: nothing pending; hand it the
			// combiner role so its eventual owner proceeds directly.
			t.Barrier(isa.DMBSt)
			t.Store(l.waits[cur], 0)
			return myRet
		}
		if served >= l.h {
			// Combining bound: wake cur's owner as the next combiner.
			t.Barrier(isa.DMBSt)
			t.Store(l.waits[cur], 0)
			return myRet
		}
		arg := t.Load(cur + 8)
		raw := l.cs[cur](t, arg)
		if cur == own {
			myRet = raw
		} else {
			l.publish(t, cur, raw)
		}
		cur = next
	}
}

// publish delivers a result to a waiting owner.
func (l *CCSynchLock) publish(t *sim.Thread, cur uint64, raw uint64) {
	if l.pilot {
		if l.barY != isa.None {
			t.Barrier(l.barY)
		}
		h := l.pool[l.combCnt[cur]%core.PoolSize]
		l.combCnt[cur]++
		enc := raw ^ h
		t.Nops(1)
		if enc == l.combOld[cur] {
			l.combFb[cur] ^= 1
			t.Store(cur+24, l.combFb[cur])
		} else {
			t.Store(cur+16, enc)
			l.combOld[cur] = enc
		}
		return
	}
	t.Store(cur+16, raw)
	if l.barY != isa.None {
		t.Barrier(l.barY) // the Obs-2 barrier after the response RMR
	}
	t.Store(l.waits[cur], 2)
}
