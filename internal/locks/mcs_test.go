package locks

import (
	"testing"

	"armbar/internal/isa"
	"armbar/internal/platform"
	"armbar/internal/sim"
	"armbar/internal/topo"
)

// runMCS drives an MCS lock directly (it is not part of the Bench
// Kind enum; it exists as the second in-place lock of §5.1).
func runMCS(t *testing.T, threads, ops int, unlock isa.Barrier) (valid bool, cycles float64) {
	t.Helper()
	m := sim.New(sim.Config{Plat: platform.Kunpeng916(), Mode: sim.WMM, Seed: 3})
	counter := m.Alloc(1)
	shared := m.Alloc(1)
	l := NewMCS(m, threads, unlock)
	for i := 0; i < threads; i++ {
		i := i
		core := topo.CoreID(i * 2 % 63)
		m.Spawn(core, func(th *sim.Thread) {
			for op := 0; op < ops; op++ {
				l.Lock(th, i)
				v := th.Load(shared)
				th.Store(shared, v+1)
				c := th.Load(counter)
				th.Store(counter, c+1)
				l.Unlock(th, i)
				th.Nops(30)
			}
		})
	}
	cycles = m.Run()
	want := uint64(threads * ops)
	valid = m.Directory().Committed(counter) == want &&
		m.Directory().Committed(shared) == want
	return valid, cycles
}

func TestMCSMutualExclusion(t *testing.T) {
	valid, _ := runMCS(t, 10, 80, isa.DMBSt)
	if !valid {
		t.Fatal("MCS lost updates")
	}
}

func TestMCSUnlockBarrierCost(t *testing.T) {
	// Same Obs-2 story as the ticket lock: dropping the publication
	// barrier after the CS's RMRs speeds the lock up (and is unsafe).
	_, normal := runMCS(t, 10, 80, isa.DMBSt)
	_, removed := runMCS(t, 10, 80, isa.AddrDep)
	if removed >= normal {
		t.Errorf("unlock barrier should cost cycles: normal=%g removed=%g", normal, removed)
	}
}

func TestMCSSingleThread(t *testing.T) {
	valid, _ := runMCS(t, 1, 50, isa.DMBSt)
	if !valid {
		t.Fatal("single-threaded MCS broken")
	}
}
