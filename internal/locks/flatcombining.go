package locks

import (
	"armbar/internal/core"
	"armbar/internal/isa"
	"armbar/internal/sim"
)

// FCLock is a flat-combining lock (Hendler et al., cited by the paper
// as the migratory-server family's ancestor): every client owns a
// publication record; whoever grabs the combiner latch scans the
// records and executes all pending critical sections, so a single
// cache-warm thread does a burst of work while the rest wait locally.
//
// Publication record layout (two lines per client, spin word apart
// from data as in the other delegation locks):
//
//	request line:  +0 req (Pilot-encoded arg or toggled flag), +8 arg
//	response line: +0 ret (Pilot-encoded in pilot mode), +8 fbflag
//
// Plain mode publishes a response with ret-store → Y barrier →
// flag-store; pilot mode stores the encoded ret only (Algorithm 6's
// transformation applied to flat combining).
type FCLock struct {
	pilot bool
	barY  isa.Barrier

	latch uint64 // combiner latch (TAS word)
	req   []uint64
	resp  []uint64
	cs    []CS
	pool  []uint64

	// Client-side protocol state.
	clReqFlag []uint64
	clOldRet  []uint64
	clFb      []uint64
	clCnt     []int

	// Combiner-side mirrors (whoever combines reads/writes these; the
	// latch serializes access).
	coSeenReq []uint64
	coOldRet  []uint64
	coFb      []uint64
	coCnt     []int
}

// NewFC allocates a flat-combining lock for nClients.
func NewFC(m *sim.Machine, nClients int, pilot bool, barY isa.Barrier) *FCLock {
	if barY == isa.None && !pilot {
		barY = isa.DMBSt
	}
	l := &FCLock{
		pilot:     pilot,
		barY:      barY,
		latch:     m.Alloc(1),
		req:       make([]uint64, nClients),
		resp:      make([]uint64, nClients),
		cs:        make([]CS, nClients),
		pool:      core.HashPool(0xFC),
		clReqFlag: make([]uint64, nClients),
		clOldRet:  make([]uint64, nClients),
		clFb:      make([]uint64, nClients),
		clCnt:     make([]int, nClients),
		coSeenReq: make([]uint64, nClients),
		coOldRet:  make([]uint64, nClients),
		coFb:      make([]uint64, nClients),
		coCnt:     make([]int, nClients),
	}
	for i := 0; i < nClients; i++ {
		l.req[i] = m.Alloc(1)
		l.resp[i] = m.Alloc(1)
	}
	return l
}

// Name implements Lock.
func (l *FCLock) Name() string {
	if l.pilot {
		return "FC-P"
	}
	return "FC"
}

// Exec implements Lock: publish the request, then either combine or
// wait for a combiner to deliver the response.
func (l *FCLock) Exec(t *sim.Thread, c int, cs CS, arg uint64) uint64 {
	l.cs[c] = cs
	// Publish the request: arg first, then the toggled request word
	// (the request word change is the signal in both modes).
	t.Store(l.req[c]+8, arg)
	t.Barrier(isa.DMBSt)
	l.clReqFlag[c] ^= 1
	t.Store(l.req[c], l.clReqFlag[c])

	for {
		// Response arrived?
		if v, ok := l.tryRecvResponse(t, c); ok {
			return v
		}
		// Try to become the combiner.
		if t.Load(l.latch) == 0 && t.CompareAndSwap(l.latch, 0, 1) {
			l.combine(t)
			t.Barrier(isa.DMBSt)
			t.Store(l.latch, 0)
			if v, ok := l.tryRecvResponse(t, c); ok {
				return v
			}
			// Our own request raced past this combining round; keep
			// waiting (a later combiner will serve it).
		}
		t.Nops(spinPause)
	}
}

// tryRecvResponse polls the client's response line once.
func (l *FCLock) tryRecvResponse(t *sim.Thread, c int) (uint64, bool) {
	if l.pilot {
		h := l.pool[l.clCnt[c]%core.PoolSize]
		if v := t.Load(l.resp[c]); v != l.clOldRet[c] {
			l.clOldRet[c] = v
			l.clCnt[c]++
			return v ^ h, true
		}
		if f := t.Load(l.resp[c] + 8); f != l.clFb[c] {
			l.clFb[c] = f
			l.clCnt[c]++
			return l.clOldRet[c] ^ h, true
		}
		return 0, false
	}
	// Plain: the response flag lives at +8; the value at +0.
	if f := t.Load(l.resp[c] + 8); f != l.clFb[c] {
		l.clFb[c] = f
		t.Barrier(isa.DMBLd)
		return t.Load(l.resp[c]), true
	}
	return 0, false
}

// combine scans every publication record and serves the pending ones.
func (l *FCLock) combine(t *sim.Thread) {
	for c := range l.req {
		f := t.LoadAcquire(l.req[c])
		if f == l.coSeenReq[c] {
			continue
		}
		l.coSeenReq[c] = f
		arg := t.Load(l.req[c] + 8)
		raw := l.cs[c](t, arg)
		if l.pilot {
			if l.barY != isa.None {
				t.Barrier(l.barY)
			}
			h := l.pool[l.coCnt[c]%core.PoolSize]
			l.coCnt[c]++
			enc := raw ^ h
			t.Nops(1)
			if enc == l.coOldRet[c] {
				l.coFb[c] ^= 1
				t.Store(l.resp[c]+8, l.coFb[c])
			} else {
				t.Store(l.resp[c], enc)
				l.coOldRet[c] = enc
			}
			continue
		}
		t.Store(l.resp[c], raw)
		if l.barY != isa.None {
			t.Barrier(l.barY) // the Obs-2 barrier after the response RMR
		}
		l.coFb[c] ^= 1
		t.Store(l.resp[c]+8, l.coFb[c])
	}
}
