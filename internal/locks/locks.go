// Package locks implements the paper's synchronization-primitive study
// (§5, Figure 7): an in-place ticket lock (Linux-style), two delegation
// locks — FFWD (dedicated server) and DSMSynch (migratory combining
// server) — and the Pilot variants of both delegation locks
// (Algorithm 6), plus the micro-benchmark driver that reproduces
// Figures 7a, 7b and 7c.
package locks

import (
	"fmt"

	"armbar/internal/isa"
	"armbar/internal/platform"
	"armbar/internal/sim"
	"armbar/internal/topo"
)

// CS is a critical section: it runs on whichever simulated thread the
// lock chooses (the caller for in-place locks, the server for
// delegation locks) and returns a 64-bit result.
type CS func(t *sim.Thread, arg uint64) uint64

// Lock is a mutual-exclusion primitive over simulated memory. Exec
// runs cs(arg) under the lock on behalf of the calling thread and
// returns its result.
type Lock interface {
	Name() string
	Exec(t *sim.Thread, client int, cs CS, arg uint64) uint64
}

// spinWait inserts polite pause work between polls, keeping simulated
// spin loops from flooding the event stream while barely affecting
// virtual-time results.
const spinPause = 8

// Kind selects a lock implementation in benchmark configs.
type Kind int

const (
	// Ticket is the Linux-style in-place ticket lock.
	Ticket Kind = iota
	// FFWD is the dedicated-server delegation lock.
	FFWD
	// FFWDPilot is FFWD with Pilot-encoded responses (Algorithm 6).
	FFWDPilot
	// DSMSynch is the migratory combining delegation lock.
	DSMSynch
	// DSMSynchPilot is DSMSynch with Pilot-encoded responses.
	DSMSynchPilot
	// TAS is the test-and-set spinlock.
	TAS
	// MCS is the Mellor-Crummey & Scott queue lock.
	MCS
	// CLH is the Craig/Landin-Hagersten queue lock.
	CLH
	// FC is the flat-combining lock.
	FC
	// FCPilot is flat combining with Pilot-encoded responses.
	FCPilot
	// CCSynch is the cache-coherent combining lock.
	CCSynch
	// CCSynchPilot is CC-Synch with Pilot-encoded responses.
	CCSynchPilot
)

func (k Kind) String() string {
	switch k {
	case Ticket:
		return "Ticket"
	case FFWD:
		return "FFWD"
	case FFWDPilot:
		return "FFWD-P"
	case DSMSynch:
		return "DSynch"
	case DSMSynchPilot:
		return "DSynch-P"
	case TAS:
		return "TAS"
	case MCS:
		return "MCS"
	case CLH:
		return "CLH"
	case FC:
		return "FC"
	case FCPilot:
		return "FC-P"
	case CCSynch:
		return "CCSynch"
	case CCSynchPilot:
		return "CCSynch-P"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// BenchConfig describes one lock micro-benchmark run (§5.2): Threads
// clients repeatedly acquire the lock, read-modify Globals shared
// cache lines and bump a counter inside the critical section, then
// wait Interval nops outside it.
type BenchConfig struct {
	Plat     *platform.Platform
	Kind     Kind
	Threads  int // client threads (a dedicated FFWD server is extra)
	Ops      int // acquisitions per thread
	Globals  int // shared cache lines visited inside the CS (Figure 7a x-axis)
	CSWork   int // extra nops inside the CS
	Interval int // nops between acquisitions (Figure 7c x-axis)
	// UnlockBarrier is the ticket lock's unlock publication barrier
	// (Figure 7a legend: DMBSt = Normal, None = "Remove barrier after
	// RMR"). Ignored by delegation locks.
	UnlockBarrier isa.Barrier
	// ServeBarriers are the delegation-lock barriers (line 4 and line 7
	// of Algorithm 5, the Figure 7b legend "X-Y"). Zero values mean the
	// per-kind defaults (LDAR, DMB st).
	ServeBarriers [2]isa.Barrier
	Seed          int64
}

// BenchResult is one run's outcome.
type BenchResult struct {
	Config  BenchConfig
	Cycles  float64
	Elapsed float64
	Ops     int
	Valid   bool // mutual exclusion held (shared counters consistent)
	Stats   sim.Stats
}

// Throughput returns critical sections per second.
func (r BenchResult) Throughput() float64 {
	if r.Elapsed == 0 {
		return 0
	}
	return float64(r.Ops) / r.Elapsed
}

// interleaveCores assigns n client cores round-robin across NUMA
// nodes, the way a full-machine binding (the paper uses 63 threads on
// both nodes) spreads them; the extra core returned hosts dedicated
// FFWD servers.
func interleaveCores(p *platform.Platform, n int) ([]topo.CoreID, topo.CoreID) {
	total := p.Sys.NumCores()
	if n >= total {
		n = total - 1
	}
	var lists [][]topo.CoreID
	for node := 0; node < p.Sys.NumNodes(); node++ {
		lists = append(lists, p.Sys.NodeCores(node))
	}
	cores := make([]topo.CoreID, 0, n)
	for i := 0; len(cores) < n; i++ {
		l := lists[i%len(lists)]
		if k := i / len(lists); k < len(l) {
			cores = append(cores, l[k])
		}
	}
	server := topo.CoreID(total - 1)
	for _, c := range cores {
		if c == server {
			server = topo.CoreID(total - 2)
		}
	}
	return cores, server
}

// Bench runs the micro-benchmark and returns the result.
func Bench(cfg BenchConfig) BenchResult {
	if cfg.Threads == 0 {
		cfg.Threads = 8
	}
	if cfg.Ops == 0 {
		cfg.Ops = 200
	}
	inPlace := cfg.Kind == Ticket || cfg.Kind == TAS || cfg.Kind == MCS || cfg.Kind == CLH
	if cfg.UnlockBarrier == 0 && inPlace {
		cfg.UnlockBarrier = isa.DMBSt
	}
	m := sim.New(sim.Config{Plat: cfg.Plat, Mode: sim.WMM, Seed: cfg.Seed})
	cores, serverCore := interleaveCores(cfg.Plat, cfg.Threads)
	cfg.Threads = len(cores)

	// The shared state the critical section mutates: Globals dedicated
	// lines plus a counter. For the in-place lock the paper keeps the
	// counters thread-local ("those counters are all local variables");
	// delegation locks use one global counter, which becomes
	// server-local in steady state.
	counter := m.Alloc(1)
	locals := m.Alloc(cfg.Threads)
	globals := m.Alloc(maxi(cfg.Globals, 1))

	var lock Lock
	var server *Server
	switch cfg.Kind {
	case Ticket:
		lock = NewTicket(m, cfg.UnlockBarrier)
	case FFWD, FFWDPilot:
		fl := NewFFWD(m, cfg.Threads, cfg.Kind == FFWDPilot, cfg.ServeBarriers)
		server = fl.Server()
		lock = fl
	case DSMSynch, DSMSynchPilot:
		lock = NewDSMSynch(m, cfg.Threads, cfg.Kind == DSMSynchPilot, cfg.ServeBarriers)
	case TAS:
		lock = NewTAS(m, cfg.UnlockBarrier)
	case MCS:
		lock = NewMCS(m, cfg.Threads, cfg.UnlockBarrier)
	case CLH:
		lock = NewCLH(m, cfg.Threads, cfg.UnlockBarrier)
	case FC, FCPilot:
		lock = NewFC(m, cfg.Threads, cfg.Kind == FCPilot, cfg.ServeBarriers[1])
	case CCSynch, CCSynchPilot:
		lock = NewCCSynch(m, cfg.Threads, cfg.Kind == CCSynchPilot, cfg.ServeBarriers[1])
	default:
		panic("locks: unknown kind")
	}

	makeCS := func(client int) CS {
		cnt := counter
		if inPlace {
			cnt = locals + uint64(client)<<6
		}
		return func(t *sim.Thread, arg uint64) uint64 {
			for g := 0; g < cfg.Globals; g++ {
				line := globals + uint64(g)<<6
				v := t.Load(line)
				t.Store(line, v+1)
			}
			t.Nops(cfg.CSWork)
			c := t.Load(cnt)
			t.Store(cnt, c+1)
			return c + 1
		}
	}

	totalOps := cfg.Threads * cfg.Ops
	// Thread closures run strictly one-at-a-time (every simulator op is
	// a rendezvous with the single scheduler goroutine), so this plain
	// counter is safely shared.
	remaining := int64(cfg.Threads)
	for i := 0; i < cfg.Threads; i++ {
		i := i
		cs := makeCS(i)
		m.Spawn(cores[i], func(t *sim.Thread) {
			for op := 0; op < cfg.Ops; op++ {
				lock.Exec(t, i, cs, uint64(op))
				t.Nops(cfg.Interval)
			}
			remaining--
		})
	}
	if server != nil {
		m.Spawn(serverCore, func(t *sim.Thread) { server.Run(t, &remaining) })
	}

	cycles := m.Run()
	var counted uint64
	if inPlace {
		for i := 0; i < cfg.Threads; i++ {
			counted += m.Directory().Committed(locals + uint64(i)<<6)
		}
	} else {
		counted = m.Directory().Committed(counter)
	}
	valid := counted == uint64(totalOps)
	for g := 0; g < cfg.Globals; g++ {
		if m.Directory().Committed(globals+uint64(g)<<6) != uint64(totalOps) {
			valid = false
		}
	}
	return BenchResult{
		Config:  cfg,
		Cycles:  cycles,
		Elapsed: m.Seconds(cycles),
		Ops:     totalOps,
		Valid:   valid,
		Stats:   m.Stats(),
	}
}

func maxi(a, b int) int {
	if a > b {
		return a
	}
	return b
}
