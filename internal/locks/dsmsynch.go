package locks

import (
	"armbar/internal/core"
	"armbar/internal/isa"
	"armbar/internal/sim"
)

// DSMSynchLock is a migratory-server delegation lock in the style of
// DSM-Synch (Fatourou & Kallimanis), as used by the paper: threads
// enqueue request nodes onto a swap-based queue; the thread at the
// head becomes the combiner and executes up to H pending critical
// sections before handing the role to the next waiter.
//
// Node layout (two cache lines per node, as real implementations lay
// them out to keep the spin word away from the data):
//
//	data line:  +0 next (queue link, 0 = none), +8 arg,
//	            +16 ret (Pilot-encoded in pilot mode), +24 fbflag
//	state line: +0 state — 1 = owner waits, 2 = completed,
//	            0 = combiner handoff
//
// Completion and handoff share one signal word: were they separate
// (the classic completed+locked pair), their commits could reorder
// under the weak model and a waiter could wrongly promote itself to a
// second combiner. In pilot mode the state line is touched only for
// the rare handoff — that untouched cache line is half of Pilot's win.
//
// In plain mode the combiner stores ret (an RMR into the waiter's
// node), then issues the line-7 barrier, then flips completed/locked —
// the exact Obs-2 pattern. In pilot mode the ret-word change itself
// signals completion (Algorithm 6), and only the rare handoff still
// uses locked.
type DSMSynchLock struct {
	pilot bool
	barX  isa.Barrier // request-consumption ordering (Algorithm 5 line 4)
	barY  isa.Barrier
	h     int // combining bound

	tail   uint64   // swap-based queue tail (own line)
	nodes  []uint64 // data line, 2 nodes per client
	states []uint64 // state line per node
	cs     []CS     // per-node critical sections (combiner reads)

	// Pilot bookkeeping per node, maintained by whichever thread is
	// combining (serialized by the queue) and by the owning client.
	pool     []uint64
	combOld  []uint64 // last encoded ret stored, per node
	combFb   []uint64
	combCnt  []int
	clOld    []uint64
	clFb     []uint64
	clCnt    []int
	toggle   []int // per client: which of its two nodes to use next
	initDone []bool
}

// NewDSMSynch allocates the lock for nClients on machine m.
func NewDSMSynch(m *sim.Machine, nClients int, pilot bool, barriers [2]isa.Barrier) *DSMSynchLock {
	barX := barriers[0]
	if barX == isa.None {
		barX = isa.LDAR
	}
	barY := barriers[1]
	if barY == isa.None && !pilot {
		barY = isa.DMBSt
	}
	n := 2 * nClients
	l := &DSMSynchLock{
		pilot:   pilot,
		barX:    barX,
		barY:    barY,
		h:       2*nClients + 1,
		tail:    m.Alloc(1),
		nodes:   make([]uint64, n),
		states:  make([]uint64, n),
		cs:      make([]CS, n),
		pool:    core.HashPool(0xD53),
		combOld: make([]uint64, n),
		combFb:  make([]uint64, n),
		combCnt: make([]int, n),
		clOld:   make([]uint64, n),
		clFb:    make([]uint64, n),
		clCnt:   make([]int, n),
		toggle:  make([]int, nClients),
	}
	for i := range l.nodes {
		l.nodes[i] = m.Alloc(1)
		l.states[i] = m.Alloc(1)
	}
	return l
}

// Name implements Lock.
func (l *DSMSynchLock) Name() string {
	if l.pilot {
		return "DSynch-P"
	}
	return "DSynch"
}

// nodeIndex maps a node address back to its index.
func (l *DSMSynchLock) nodeIndex(addr uint64) int {
	for i, a := range l.nodes {
		if a == addr {
			return i
		}
	}
	panic("locks: unknown node address")
}

// Exec implements Lock.
func (l *DSMSynchLock) Exec(t *sim.Thread, client int, cs CS, arg uint64) uint64 {
	idx := 2*client + l.toggle[client]
	l.toggle[client] ^= 1
	node := l.nodes[idx]
	state := l.states[idx]
	l.cs[idx] = cs

	// Initialize the node and publish it (enqueue).
	t.Store(node+0, 0) // next
	t.Store(state, 1)  // waiting
	t.Store(node+8, arg)
	t.Barrier(isa.DMBSt) // node fields before the link
	pred := t.Swap(l.tail, node)
	if pred != 0 {
		t.Store(pred+0, node)
		// Wait: in pilot mode completion arrives as a ret-word change;
		// locked=0 with completed=0 means "you are the combiner now".
		if l.pilot {
			h := l.pool[l.clCnt[idx]%core.PoolSize]
			for {
				if v := t.Load(node + 16); v != l.clOld[idx] {
					l.clOld[idx] = v
					l.clCnt[idx]++
					return v ^ h
				}
				if f := t.Load(node + 24); f != l.clFb[idx] {
					l.clFb[idx] = f
					l.clCnt[idx]++
					return l.clOld[idx] ^ h
				}
				if t.LoadAcquire(state) == 0 {
					break // handoff: become combiner
				}
				t.Nops(spinPause)
			}
		} else {
			for {
				st := t.LoadAcquire(state)
				if st == 2 {
					t.Barrier(isa.DMBLd)
					return t.Load(node + 16)
				}
				if st == 0 {
					break // handoff: become combiner
				}
				t.Nops(spinPause)
			}
		}
	}
	return l.combine(t, node, idx)
}

// combine runs the combiner role starting at the thread's own node.
func (l *DSMSynchLock) combine(t *sim.Thread, node uint64, ownIdx int) uint64 {
	var myRet uint64
	cur := node
	curIdx := ownIdx
	for served := 0; ; served++ {
		if cur != node {
			// The line-4 barrier: order the link read (which published
			// the request) before consuming its fields.
			l.applyBarX(t)
		}
		arg := t.Load(cur + 8)
		raw := l.cs[curIdx](t, arg)
		next := l.loadLink(t, cur)
		if cur == node {
			myRet = raw
		} else {
			l.publish(t, cur, curIdx, raw)
		}
		if next == 0 {
			// Queue looks empty: try to detach; a racing enqueuer will
			// re-link, so wait for the link if the CAS fails.
			if t.CompareAndSwap(l.tail, cur, 0) {
				return myRet
			}
			for next == 0 {
				next = l.loadLink(t, cur)
				if next == 0 {
					t.Nops(spinPause)
				}
			}
		}
		if served+1 >= l.h {
			// Hand the combiner role to the next waiter: state=0. The
			// handoff needs its own publication barrier in both modes
			// (rare, so cheap on average).
			t.Barrier(isa.DMBSt)
			t.Store(l.states[l.nodeIndex(next)], 0)
			return myRet
		}
		cur = next
		curIdx = l.nodeIndex(cur)
	}
}

// loadLink reads a node's queue link; with LDAR as the X barrier the
// read itself acquires, otherwise it stays plain and applyBarX orders
// the later field reads.
func (l *DSMSynchLock) loadLink(t *sim.Thread, cur uint64) uint64 {
	if l.barX == isa.LDAR {
		return t.LoadAcquire(cur + 0)
	}
	return t.Load(cur + 0)
}

// applyBarX applies the configured line-4 ordering before the combiner
// consumes a freshly linked request.
func (l *DSMSynchLock) applyBarX(t *sim.Thread) {
	switch l.barX {
	case isa.LDAR, isa.None:
		// LDAR ordered at the load site; None measures removal.
	default:
		t.Barrier(l.barX)
	}
}

// publish delivers a completed request's result to its waiter.
func (l *DSMSynchLock) publish(t *sim.Thread, cur uint64, idx int, raw uint64) {
	if l.pilot {
		// Algorithm 6: the (cheap, post-local-CS) barrier, then the
		// single Pilot store; no barrier follows the RMR.
		if l.barY != isa.None {
			t.Barrier(l.barY)
		}
		h := l.pool[l.combCnt[idx]%core.PoolSize]
		l.combCnt[idx]++
		enc := raw ^ h
		t.Nops(2)
		if enc == l.combOld[idx] {
			l.combFb[idx] ^= 1
			t.Store(cur+24, l.combFb[idx])
		} else {
			t.Store(cur+16, enc)
			l.combOld[idx] = enc
		}
		return
	}
	// Plain: ret store (RMR into the waiter's data line), line-7
	// barrier, then the completion signal on the separate state line —
	// a second RMR store that Pilot avoids entirely.
	t.Store(cur+16, raw)
	if l.barY != isa.None {
		t.Barrier(l.barY)
	}
	t.Store(l.states[idx], 2)
}
