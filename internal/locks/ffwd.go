package locks

import (
	"armbar/internal/core"
	"armbar/internal/isa"
	"armbar/internal/sim"
)

// FFWDLock is the dedicated-server delegation lock (Roghanchi et al.,
// reimplemented per the paper's Algorithm 5): every client owns a
// request line and a response line; a dedicated server thread
// round-robins over the request lines, executes the critical sections,
// and publishes responses. The server naturally batches every pending
// request it finds in one sweep, sharing the response-publication
// barrier among them — which is why the paper finds FFWD's Pilot gain
// smaller than DSMSynch's.
//
// With pilot enabled, requests and responses are Pilot-encoded
// (Algorithm 6): the argument/return word change is the signal, the
// line-7 barrier that strictly followed the response RMR disappears,
// and per-client fallback flags cover collisions.
type FFWDLock struct {
	nClients int
	pilot    bool
	barX     isa.Barrier // Algorithm 5 line 4
	barY     isa.Barrier // Algorithm 5 line 7

	req     []uint64 // request line per client: flag+0, arg+8
	resp    []uint64 // response flag line per client (plain mode)
	respVal []uint64 // response value line per client: ret+0, fbflag+8
	server  *Server
	pool    []uint64

	// Client-local protocol state, indexed by client id. Only the
	// owning client touches its entry, except the hash counters the
	// server mirrors independently.
	cReqFlag  []uint64
	cRespFlag []uint64
	cOldArg   []uint64
	cOldRet   []uint64
	cCnt      []int
}

// Server is the dedicated FFWD server's state; spawn a thread running
// Server.Run alongside the clients.
type Server struct {
	l        *FFWDLock
	oldFlag  []uint64 // last seen request flag (plain mode)
	oldArg   []uint64 // last seen encoded arg (pilot mode)
	oldRet   []uint64 // last stored encoded ret (pilot mode)
	respFlag []uint64
	fbFlag   []uint64
	cnt      []int
	cs       []CS
	args     []uint64
}

// NewFFWD allocates an FFWD lock for nClients on machine m. barriers
// are the X (line 4) and Y (line 7) choices; zero values default to
// LDAR and DMB st.
func NewFFWD(m *sim.Machine, nClients int, pilot bool, barriers [2]isa.Barrier) *FFWDLock {
	if barriers[0] == isa.None {
		barriers[0] = isa.LDAR
	}
	if barriers[1] == isa.None && !pilot {
		barriers[1] = isa.DMBSt
	}
	l := &FFWDLock{
		nClients:  nClients,
		pilot:     pilot,
		barX:      barriers[0],
		barY:      barriers[1],
		req:       make([]uint64, nClients),
		resp:      make([]uint64, nClients),
		pool:      core.HashPool(0xFF17D),
		cReqFlag:  make([]uint64, nClients),
		cRespFlag: make([]uint64, nClients),
		cOldArg:   make([]uint64, nClients),
		cOldRet:   make([]uint64, nClients),
		cCnt:      make([]int, nClients),
	}
	l.respVal = make([]uint64, nClients)
	for i := 0; i < nClients; i++ {
		l.req[i] = m.Alloc(1)
		l.resp[i] = m.Alloc(1)
		l.respVal[i] = m.Alloc(1)
	}
	l.server = &Server{
		l:        l,
		oldFlag:  make([]uint64, nClients),
		oldArg:   make([]uint64, nClients),
		oldRet:   make([]uint64, nClients),
		respFlag: make([]uint64, nClients),
		fbFlag:   make([]uint64, nClients),
		cnt:      make([]int, nClients),
		cs:       make([]CS, nClients),
		args:     make([]uint64, nClients),
	}
	return l
}

// Name implements Lock.
func (l *FFWDLock) Name() string {
	if l.pilot {
		return "FFWD-P"
	}
	return "FFWD"
}

// NoBarrierY removes the line-7 barrier (the Figure 7b
// "LDAR-No Barrier" configuration). Plain mode only.
func (l *FFWDLock) NoBarrierY() { l.barY = isa.None }

// Server returns the dedicated server state; spawn a simulated thread
// running Server.Run before Machine.Run.
func (l *FFWDLock) Server() *Server { return l.server }

// Exec implements Lock: publish the request, wait for the response.
func (l *FFWDLock) Exec(t *sim.Thread, c int, cs CS, arg uint64) uint64 {
	l.server.cs[c] = cs
	if l.pilot {
		// Pilot request: the encoded argument word itself is the signal.
		h := l.pool[l.cCnt[c]%core.PoolSize]
		enc := arg ^ h
		t.Nops(2)
		if enc == l.cOldArg[c] {
			l.cReqFlag[c] ^= 1
			t.Store(l.req[c], l.cReqFlag[c])
		} else {
			t.Store(l.req[c]+8, enc)
			l.cOldArg[c] = enc
		}
		// Pilot response: spin on the return word / fallback flag —
		// one cache line, no response-flag line at all.
		var encRet uint64
		for {
			if v := t.Load(l.respVal[c]); v != l.cOldRet[c] {
				l.cOldRet[c] = v
				encRet = v
				break
			}
			if f := t.Load(l.respVal[c] + 8); f != l.cRespFlag[c] {
				l.cRespFlag[c] = f
				encRet = l.cOldRet[c]
				break
			}
			t.Nops(spinPause)
		}
		ret := encRet ^ h
		l.cCnt[c]++
		return ret
	}
	// Plain request: write the argument, publish, toggle the flag.
	t.Store(l.req[c]+8, arg)
	t.Barrier(isa.DMBSt)
	l.cReqFlag[c] ^= 1
	t.Store(l.req[c], l.cReqFlag[c])
	// Plain response: spin on the response flag line, then read the
	// value line behind a load barrier (two RMR lines; Pilot needs one).
	for t.Load(l.resp[c]) == l.cRespFlag[c] {
		t.Nops(spinPause)
	}
	l.cRespFlag[c] ^= 1
	t.Barrier(isa.DMBLd)
	return t.Load(l.respVal[c])
}

// Run is the dedicated server loop: sweep all clients, serve every
// pending request found, publish all responses with one shared Y
// barrier (plain mode). It exits when *remaining reaches zero (the
// count of client threads still working).
func (s *Server) Run(t *sim.Thread, remaining *int64) {
	l := s.l
	pending := make([]int, 0, l.nClients)
	for *remaining > 0 {
		pending = pending[:0]
		for c := 0; c < l.nClients; c++ {
			if l.pilot {
				// Request signal: encoded-arg change or fallback flag.
				if v := t.Load(l.req[c] + 8); v != s.oldArg[c] {
					s.oldArg[c] = v
				} else if f := t.Load(l.req[c]); f != s.oldFlag[c] {
					s.oldFlag[c] = f
				} else {
					continue
				}
				s.applyBarX(t, l.req[c]+8)
				s.args[c] = s.oldArg[c] ^ l.pool[s.cnt[c]%core.PoolSize]
				pending = append(pending, c)
				continue
			}
			var f uint64
			if l.barX == isa.LDAR {
				f = t.LoadAcquire(l.req[c])
			} else {
				f = t.Load(l.req[c])
			}
			if f == s.oldFlag[c] {
				continue
			}
			s.oldFlag[c] = f
			s.applyBarX(t, l.req[c])
			s.args[c] = t.Load(l.req[c] + 8)
			pending = append(pending, c)
		}
		if len(pending) == 0 {
			t.Nops(spinPause)
			continue
		}
		if l.pilot {
			for _, c := range pending {
				raw := s.cs[c](t, s.args[c])
				// Line 8 of Algorithm 6: publish client-local CS
				// modifications; cheap because the CS only touched
				// server-near lines.
				if l.barY != isa.None {
					t.Barrier(l.barY)
				}
				enc := raw ^ l.pool[s.cnt[c]%core.PoolSize]
				s.cnt[c]++
				t.Nops(2)
				if enc == s.oldRet[c] {
					s.fbFlag[c] ^= 1
					t.Store(l.respVal[c]+8, s.fbFlag[c])
				} else {
					t.Store(l.respVal[c], enc)
					s.oldRet[c] = enc
				}
			}
			continue
		}
		// Plain mode: execute and write every response value (the RMR
		// stores), then share one Y barrier across the batch, then
		// toggle all flags.
		for _, c := range pending {
			ret := s.cs[c](t, s.args[c])
			t.Store(l.respVal[c], ret)
		}
		if l.barY != isa.None {
			t.Barrier(l.barY)
		}
		for _, c := range pending {
			s.respFlag[c] ^= 1
			t.Store(l.resp[c], s.respFlag[c])
		}
	}
}

// applyBarX applies the line-4 request-consumption barrier. LDAR is
// handled at the load site in plain mode; in pilot mode it degrades to
// a DMB ld-equivalent ordering point.
func (s *Server) applyBarX(t *sim.Thread, addr uint64) {
	switch s.l.barX {
	case isa.LDAR:
		if s.l.pilot {
			t.Barrier(isa.DMBLd)
		}
	case isa.None:
	default:
		t.Barrier(s.l.barX)
	}
}
