package locks

import (
	"armbar/internal/isa"
	"armbar/internal/sim"
)

// TicketLock is the Linux-style in-place ticket lock: an atomic
// next-ticket counter and a now-serving word. The lock side acquires
// with a load-acquire spin (order: lock word before critical-section
// accesses); the unlock side must publish the critical section's
// stores before bumping now-serving — that publication barrier strictly
// follows the critical section's last (likely remote) access, which is
// exactly the costly pattern of Obs 2 that Figure 7a measures.
type TicketLock struct {
	next    uint64 // atomic next-ticket counter (own line)
	serving uint64 // now-serving word (own line)
	unlock  isa.Barrier
}

// NewTicket allocates a ticket lock on machine m. unlockBarrier is the
// publication barrier in the unlock path (isa.DMBSt is the "Normal"
// configuration; isa.None measures the barrier's cost by removing it).
func NewTicket(m *sim.Machine, unlockBarrier isa.Barrier) *TicketLock {
	return &TicketLock{
		next:    m.Alloc(1),
		serving: m.Alloc(1),
		unlock:  unlockBarrier,
	}
}

// Name implements Lock.
func (l *TicketLock) Name() string { return "Ticket" }

// Lock acquires the lock for thread t.
func (l *TicketLock) Lock(t *sim.Thread) {
	my := t.FetchAdd(l.next, 1)
	for {
		if t.LoadAcquire(l.serving) == my {
			return
		}
		t.Nops(spinPause)
	}
}

// Unlock releases the lock: publish the critical section, then bump
// now-serving.
func (l *TicketLock) Unlock(t *sim.Thread) {
	if l.unlock != isa.None {
		t.Barrier(l.unlock)
	}
	s := t.Load(l.serving) // the holder owns this line; cheap
	t.Store(l.serving, s+1)
}

// Exec implements Lock by running cs inline under the lock.
func (l *TicketLock) Exec(t *sim.Thread, client int, cs CS, arg uint64) uint64 {
	l.Lock(t)
	ret := cs(t, arg)
	l.Unlock(t)
	return ret
}
