package sb

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPushForwardRemove(t *testing.T) {
	b := New(4, false)
	e1 := b.Push(64, 11, 1, 10)
	e2 := b.Push(64, 22, 2, 8)
	if v, ok := b.Forward(64); !ok || v != 22 {
		t.Fatalf("Forward must return the youngest value: got %d ok=%v", v, ok)
	}
	if !b.Remove(e2.Seq) {
		t.Fatal("remove e2")
	}
	if v, _ := b.Forward(64); v != 11 {
		t.Fatalf("after removing e2, Forward = %d, want 11", v)
	}
	if !b.Remove(e1.Seq) {
		t.Fatal("remove e1")
	}
	if _, ok := b.Forward(64); ok {
		t.Fatal("empty buffer must not forward")
	}
	if b.Remove(999) {
		t.Fatal("removing unknown seq must fail")
	}
}

func TestCapacity(t *testing.T) {
	b := New(2, false)
	b.Push(0, 0, 0, 1)
	b.Push(64, 0, 0, 2)
	if !b.Full() {
		t.Fatal("buffer should be full")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("push into full buffer must panic")
		}
	}()
	b.Push(128, 0, 0, 3)
}

func TestFIFOClampsCommits(t *testing.T) {
	b := New(8, true)
	b.Push(0, 1, 0, 100)
	e2 := b.Push(64, 2, 1, 50) // would commit earlier: clamped
	if e2.Commit <= 100 {
		t.Fatalf("FIFO commit %v must exceed the earlier store's 100", e2.Commit)
	}
}

func TestMinMaxCommit(t *testing.T) {
	b := New(8, false)
	if b.MaxCommit() != 0 || b.MinCommit() != 0 {
		t.Fatal("empty buffer commits must be 0")
	}
	b.Push(0, 0, 0, 30)
	b.Push(64, 0, 0, 10)
	b.Push(128, 0, 0, 20)
	if b.MaxCommit() != 30 {
		t.Errorf("MaxCommit = %v, want 30", b.MaxCommit())
	}
	if b.MinCommit() != 10 {
		t.Errorf("MinCommit = %v, want 10", b.MinCommit())
	}
}

func TestPropertyForwardingSeesLatestPerAddress(t *testing.T) {
	// Property: after any Push sequence, Forward(addr) returns the
	// value of the last pending push to addr.
	f := func(addrs []uint8, vals []uint8) bool {
		b := New(1024, false)
		last := map[uint64]uint64{}
		n := len(addrs)
		if len(vals) < n {
			n = len(vals)
		}
		for i := 0; i < n && i < 1000; i++ {
			a := uint64(addrs[i]) * 8
			v := uint64(vals[i])
			b.Push(a, v, float64(i), float64(i+5))
			last[a] = v
		}
		for a, want := range last {
			if got, ok := b.Forward(a); !ok || got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyFIFOCommitsMonotonic(t *testing.T) {
	f := func(commits []float64) bool {
		b := New(4096, true)
		prev := -1.0
		for i, c := range commits {
			if len(commits) > 4000 && i >= 4000 {
				break
			}
			// Clamp to a realistic cycle range.
			c = math.Mod(math.Abs(c), 1e12)
			e := b.Push(uint64(i)*8, 0, float64(i), c)
			if e.Commit <= prev {
				return false
			}
			prev = e.Commit
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestEntriesSnapshot(t *testing.T) {
	b := New(4, false)
	b.Push(0, 1, 0, 1)
	b.Push(64, 2, 0, 2)
	es := b.Entries()
	if len(es) != 2 || es[0].Value != 1 || es[1].Value != 2 {
		t.Fatalf("Entries = %+v", es)
	}
	es[0].Value = 99 // mutating the snapshot must not affect the buffer
	if v, _ := b.Forward(0); v != 1 {
		t.Fatal("snapshot mutation leaked into buffer")
	}
}

func TestNewValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0) must panic")
		}
	}()
	New(0, false)
}

// naiveBuffer is the straightforward O(n)-scan reference the indexed
// Buffer must agree with: every query walks the pending slice.
type naiveBuffer struct {
	cap     int
	fifo    bool
	nextSeq uint64
	pending []Entry
}

func (n *naiveBuffer) push(addr, value uint64, issue, commit float64) Entry {
	if n.fifo && len(n.pending) > 0 {
		if last := n.pending[len(n.pending)-1].Commit; commit <= last {
			commit = math.Nextafter(last, math.Inf(1))
		}
	}
	n.nextSeq++
	e := Entry{Seq: n.nextSeq, Addr: addr, Value: value, Issue: issue, Commit: commit}
	n.pending = append(n.pending, e)
	return e
}

func (n *naiveBuffer) forward(addr uint64) (uint64, bool) {
	for i := len(n.pending) - 1; i >= 0; i-- {
		if n.pending[i].Addr == addr {
			return n.pending[i].Value, true
		}
	}
	return 0, false
}

func (n *naiveBuffer) remove(seq uint64) bool {
	for i := range n.pending {
		if n.pending[i].Seq == seq {
			n.pending = append(n.pending[:i], n.pending[i+1:]...)
			return true
		}
	}
	return false
}

func (n *naiveBuffer) maxCommit() float64 {
	m := 0.0
	for i := range n.pending {
		if n.pending[i].Commit > m {
			m = n.pending[i].Commit
		}
	}
	return m
}

func (n *naiveBuffer) minCommit() float64 {
	if len(n.pending) == 0 {
		return 0
	}
	m := n.pending[0].Commit
	for i := 1; i < len(n.pending); i++ {
		if n.pending[i].Commit < m {
			m = n.pending[i].Commit
		}
	}
	return m
}

// TestPropertyIndexedMatchesNaive drives the indexed buffer and the
// naive reference through identical random push/remove sequences —
// including removal orders the simulator never produces (youngest
// first, middle of the pending window) — and checks every observable
// after every step.
func TestPropertyIndexedMatchesNaive(t *testing.T) {
	for _, fifo := range []bool{false, true} {
		fifo := fifo
		f := func(ops []uint16, addrs []uint8, commits []uint16) bool {
			const capacity = 32
			b := New(capacity, fifo)
			ref := &naiveBuffer{cap: capacity, fifo: fifo}
			n := len(ops)
			if len(addrs) < n {
				n = len(addrs)
			}
			if len(commits) < n {
				n = len(commits)
			}
			if n > 400 {
				n = 400
			}
			// Distinct address universe small enough to force collisions
			// and repeated-address chains in the fwd index.
			for i := 0; i < n; i++ {
				op := ops[i]
				switch {
				case b.Len() == 0 || (op%3 != 0 && !b.Full()):
					addr := uint64(addrs[i]%13) * 64 // includes addr 0
					commit := float64(commits[i]%997) + 1
					val := uint64(i)
					eb := b.Push(addr, val, float64(i), commit)
					er := ref.push(addr, val, float64(i), commit)
					if eb != er {
						t.Logf("step %d: push mismatch %+v vs %+v", i, eb, er)
						return false
					}
				default:
					// Remove an arbitrary pending entry (index chosen by
					// the fuzz input), or sometimes a bogus seq.
					var seq uint64
					if op%7 == 0 {
						seq = uint64(op) + 1_000_000 // absent
					} else {
						seq = ref.pending[int(op)%len(ref.pending)].Seq
					}
					if gb, gr := b.Remove(seq), ref.remove(seq); gb != gr {
						t.Logf("step %d: remove(%d) = %v, ref %v", i, seq, gb, gr)
						return false
					}
				}
				if b.Len() != len(ref.pending) {
					t.Logf("step %d: len %d vs %d", i, b.Len(), len(ref.pending))
					return false
				}
				if b.MaxCommit() != ref.maxCommit() {
					t.Logf("step %d: MaxCommit %v vs %v", i, b.MaxCommit(), ref.maxCommit())
					return false
				}
				if b.MinCommit() != ref.minCommit() {
					t.Logf("step %d: MinCommit %v vs %v", i, b.MinCommit(), ref.minCommit())
					return false
				}
				for a := uint64(0); a < 13; a++ {
					addr := a * 64
					vb, okb := b.Forward(addr)
					vr, okr := ref.forward(addr)
					if okb != okr || (okb && vb != vr) {
						t.Logf("step %d: Forward(%d) = %d,%v vs %d,%v", i, addr, vb, okb, vr, okr)
						return false
					}
				}
				es := b.Entries()
				if len(es) != len(ref.pending) {
					return false
				}
				for j := range es {
					if es[j] != ref.pending[j] {
						t.Logf("step %d: entry %d: %+v vs %+v", i, j, es[j], ref.pending[j])
						return false
					}
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
			t.Fatalf("fifo=%v: %v", fifo, err)
		}
	}
}

// TestFwdTableGrow pushes more distinct live addresses than the inline
// table holds, forcing growth, then removes in an adversarial order.
func TestFwdTableGrow(t *testing.T) {
	b := New(256, false)
	var seqs []uint64
	for i := 0; i < 200; i++ {
		e := b.Push(uint64(i+1)*64, uint64(i), float64(i), float64(i+1000))
		seqs = append(seqs, e.Seq)
	}
	for i := 0; i < 200; i++ {
		addr := uint64(i+1) * 64
		if v, ok := b.Forward(addr); !ok || v != uint64(i) {
			t.Fatalf("Forward(%d) = %d,%v after grow", addr, v, ok)
		}
	}
	// Remove youngest-first so every removal exercises the delete path.
	for i := len(seqs) - 1; i >= 0; i-- {
		if !b.Remove(seqs[i]) {
			t.Fatalf("remove %d", seqs[i])
		}
	}
	if b.Len() != 0 || b.MaxCommit() != 0 || b.MinCommit() != 0 {
		t.Fatalf("buffer not empty after draining: len=%d", b.Len())
	}
}

// TestInitReuse re-initializes one buffer in place and checks no state
// leaks across Init calls.
func TestInitReuse(t *testing.T) {
	b := New(4, false)
	b.Push(64, 1, 0, 10)
	b.Push(128, 2, 0, 20)
	b.Init(8, true)
	if b.Len() != 0 || !b.FIFO() {
		t.Fatalf("Init did not reset: len=%d fifo=%v", b.Len(), b.FIFO())
	}
	if _, ok := b.Forward(64); ok {
		t.Fatal("stale forward entry survived Init")
	}
	if b.MaxCommit() != 0 || b.MinCommit() != 0 {
		t.Fatal("stale commit bounds survived Init")
	}
	e := b.Push(64, 3, 0, 5)
	if e.Seq != 1 {
		t.Fatalf("seq not reset: %d", e.Seq)
	}
}
