package sb

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPushForwardRemove(t *testing.T) {
	b := New(4, false)
	e1 := b.Push(64, 11, 1, 10)
	e2 := b.Push(64, 22, 2, 8)
	if v, ok := b.Forward(64); !ok || v != 22 {
		t.Fatalf("Forward must return the youngest value: got %d ok=%v", v, ok)
	}
	if !b.Remove(e2.Seq) {
		t.Fatal("remove e2")
	}
	if v, _ := b.Forward(64); v != 11 {
		t.Fatalf("after removing e2, Forward = %d, want 11", v)
	}
	if !b.Remove(e1.Seq) {
		t.Fatal("remove e1")
	}
	if _, ok := b.Forward(64); ok {
		t.Fatal("empty buffer must not forward")
	}
	if b.Remove(999) {
		t.Fatal("removing unknown seq must fail")
	}
}

func TestCapacity(t *testing.T) {
	b := New(2, false)
	b.Push(0, 0, 0, 1)
	b.Push(64, 0, 0, 2)
	if !b.Full() {
		t.Fatal("buffer should be full")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("push into full buffer must panic")
		}
	}()
	b.Push(128, 0, 0, 3)
}

func TestFIFOClampsCommits(t *testing.T) {
	b := New(8, true)
	b.Push(0, 1, 0, 100)
	e2 := b.Push(64, 2, 1, 50) // would commit earlier: clamped
	if e2.Commit <= 100 {
		t.Fatalf("FIFO commit %v must exceed the earlier store's 100", e2.Commit)
	}
}

func TestMinMaxCommit(t *testing.T) {
	b := New(8, false)
	if b.MaxCommit() != 0 || b.MinCommit() != 0 {
		t.Fatal("empty buffer commits must be 0")
	}
	b.Push(0, 0, 0, 30)
	b.Push(64, 0, 0, 10)
	b.Push(128, 0, 0, 20)
	if b.MaxCommit() != 30 {
		t.Errorf("MaxCommit = %v, want 30", b.MaxCommit())
	}
	if b.MinCommit() != 10 {
		t.Errorf("MinCommit = %v, want 10", b.MinCommit())
	}
}

func TestPropertyForwardingSeesLatestPerAddress(t *testing.T) {
	// Property: after any Push sequence, Forward(addr) returns the
	// value of the last pending push to addr.
	f := func(addrs []uint8, vals []uint8) bool {
		b := New(1024, false)
		last := map[uint64]uint64{}
		n := len(addrs)
		if len(vals) < n {
			n = len(vals)
		}
		for i := 0; i < n && i < 1000; i++ {
			a := uint64(addrs[i]) * 8
			v := uint64(vals[i])
			b.Push(a, v, float64(i), float64(i+5))
			last[a] = v
		}
		for a, want := range last {
			if got, ok := b.Forward(a); !ok || got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyFIFOCommitsMonotonic(t *testing.T) {
	f := func(commits []float64) bool {
		b := New(4096, true)
		prev := -1.0
		for i, c := range commits {
			if len(commits) > 4000 && i >= 4000 {
				break
			}
			// Clamp to a realistic cycle range.
			c = math.Mod(math.Abs(c), 1e12)
			e := b.Push(uint64(i)*8, 0, float64(i), c)
			if e.Commit <= prev {
				return false
			}
			prev = e.Commit
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestEntriesSnapshot(t *testing.T) {
	b := New(4, false)
	b.Push(0, 1, 0, 1)
	b.Push(64, 2, 0, 2)
	es := b.Entries()
	if len(es) != 2 || es[0].Value != 1 || es[1].Value != 2 {
		t.Fatalf("Entries = %+v", es)
	}
	es[0].Value = 99 // mutating the snapshot must not affect the buffer
	if v, _ := b.Forward(0); v != 1 {
		t.Fatal("snapshot mutation leaked into buffer")
	}
}

func TestNewValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0) must panic")
		}
	}()
	New(0, false)
}
