// Package sb models a per-core store buffer. Stores retire into the
// buffer immediately and commit (become globally visible) later; the
// owning core forwards its own pending values to its loads. Under the
// weakly-ordered model the buffer is allowed to commit entries out of
// order (the ARM design choice the paper's §6 discusses); in TSO mode
// commits are forced FIFO.
//
// The buffer is indexed so the simulator's per-operation queries stop
// scanning: a per-address tail index answers Forward in O(1), the
// commit bounds MaxCommit/MinCommit are cached (barriers and RMWs read
// MaxCommit on every operation), and Remove is O(1) on the simulator's
// path because commit events retire per buffer in commit-time order —
// the removed entry is almost always the oldest pending one. Arbitrary
// removal orders (exercised by the property tests) stay correct and
// merely fall back to a short scan.
package sb

import "math"

// Entry is one pending store.
type Entry struct {
	Seq    uint64  // issue order, unique per buffer
	Addr   uint64  // target address
	Value  uint64  // value to commit
	Issue  float64 // issue time
	Commit float64 // scheduled commit time
}

// inlineEntries is the pending-array capacity embedded in the Buffer
// itself: at least the largest platform store-buffer depth
// (platform.StoreBufferEntries is 12–24), so New allocates nothing for
// every machine the experiments build.
const inlineEntries = 24

// Buffer is a bounded store buffer. The zero value is not usable; call
// New or Init.
type Buffer struct {
	cap     int
	fifo    bool
	nextSeq uint64
	pending []Entry // issue order; live entries are pending[head:]
	head    int     // retired prefix — commit-order removal just bumps this

	// Cached commit bounds. maxCommit is maintained eagerly: pushes
	// only raise it, and the simulator removes entries in commit-time
	// order so the maximum leaves the buffer last. minCommit is
	// memoized lazily (minOK) — it is only read on the rare
	// full-buffer stall, while every removal would otherwise have to
	// recompute it.
	maxCommit float64
	minCommit float64
	minOK     bool

	fwd fwdTable // per-address tail index (youngest pending value)

	inline [inlineEntries]Entry // backing for pending when cap permits
}

// New returns a buffer with the given capacity. If fifo is true the
// buffer guarantees in-order commit (TSO); otherwise entries commit at
// their individually scheduled times (WMM).
func New(capacity int, fifo bool) *Buffer {
	b := &Buffer{}
	b.Init(capacity, fifo)
	return b
}

// Init (re)initializes b in place with the given capacity and commit
// discipline, so a Buffer embedded in a larger struct (the simulator's
// Thread) costs no separate allocation.
func (b *Buffer) Init(capacity int, fifo bool) {
	if capacity <= 0 {
		panic("sb: capacity must be positive")
	}
	*b = Buffer{cap: capacity, fifo: fifo}
	if capacity <= inlineEntries {
		b.pending = b.inline[:0]
	} else {
		b.pending = make([]Entry, 0, capacity)
	}
	b.fwd.init()
}

// FIFO reports whether the buffer commits in order.
func (b *Buffer) FIFO() bool { return b.fifo }

// Len reports the number of pending (uncommitted) stores.
func (b *Buffer) Len() int { return len(b.pending) - b.head }

// Full reports whether a new store would exceed capacity.
func (b *Buffer) Full() bool { return b.Len() >= b.cap }

// Push inserts a store issued at issue with proposed commit time
// commit, returning the entry actually recorded. In FIFO mode the
// commit time is clamped to be no earlier than the last pending
// entry's, preserving order.
func (b *Buffer) Push(addr, value uint64, issue, commit float64) Entry {
	if b.Full() {
		panic("sb: push into full buffer (caller must stall first)")
	}
	if b.fifo && b.Len() > 0 {
		if last := b.pending[len(b.pending)-1].Commit; commit <= last {
			commit = math.Nextafter(last, math.Inf(1))
		}
	}
	if len(b.pending) == cap(b.pending) && b.head > 0 {
		// The backing array is exhausted but a retired prefix exists:
		// compact the live entries to the front instead of growing.
		n := copy(b.pending, b.pending[b.head:])
		b.pending = b.pending[:n]
		b.head = 0
	}
	b.nextSeq++
	e := Entry{Seq: b.nextSeq, Addr: addr, Value: value, Issue: issue, Commit: commit}
	b.pending = append(b.pending, e)
	if commit > b.maxCommit {
		b.maxCommit = commit
	}
	if b.minOK && commit < b.minCommit {
		b.minCommit = commit
	}
	b.fwd.push(addr, value, e.Seq)
	return e
}

// Forward returns the youngest pending value for addr, if any: the
// core's own loads must observe its own stores. One index probe, no
// scan.
func (b *Buffer) Forward(addr uint64) (uint64, bool) {
	return b.fwd.lookup(addr)
}

// Remove deletes the entry with the given sequence number (when its
// commit event has been applied).
func (b *Buffer) Remove(seq uint64) bool {
	p := b.pending
	if b.head >= len(p) {
		return false
	}
	// Commit events retire in commit-time order per buffer, and
	// same-address stores commit in issue order, so the removed entry
	// is nearly always the oldest pending one — a head bump, no shift.
	var e Entry
	if p[b.head].Seq == seq {
		e = p[b.head]
		b.head++
		if b.head == len(p) {
			b.pending, b.head = p[:0], 0
		}
	} else {
		i := -1
		for j := b.head + 1; j < len(p); j++ {
			if p[j].Seq == seq {
				i = j
				break
			}
		}
		if i < 0 {
			return false
		}
		e = p[i]
		copy(p[i:], p[i+1:])
		b.pending = p[:len(p)-1]
	}
	if b.fwd.remove(e.Addr, e.Seq) {
		// The removed entry was the youngest for its address while
		// older same-address entries remain (an out-of-issue-order
		// removal the simulator never performs): rescan for the new
		// youngest.
		b.refreshForward(e.Addr)
	}
	switch {
	case b.Len() == 0:
		b.maxCommit = 0
		b.minCommit, b.minOK = 0, false
	default:
		if e.Commit >= b.maxCommit {
			b.recomputeMax()
		}
		if b.minOK && e.Commit <= b.minCommit {
			b.minOK = false
		}
	}
	return true
}

// refreshForward reindexes addr from the youngest matching pending
// entry. Only reached by removal orders the simulator never produces.
func (b *Buffer) refreshForward(addr uint64) {
	for i := len(b.pending) - 1; i >= b.head; i-- {
		if b.pending[i].Addr == addr {
			b.fwd.set(addr, b.pending[i].Value, b.pending[i].Seq)
			return
		}
	}
}

// recomputeMax rescans for the maximum commit bound after the entry
// holding it was removed ahead of later-committing ones.
func (b *Buffer) recomputeMax() {
	m := 0.0
	for i := b.head; i < len(b.pending); i++ {
		if b.pending[i].Commit > m {
			m = b.pending[i].Commit
		}
	}
	b.maxCommit = m
}

// MaxCommit returns the latest scheduled commit time among pending
// entries, or 0 if the buffer is empty. Barriers that order stores wait
// at least this long.
func (b *Buffer) MaxCommit() float64 { return b.maxCommit }

// MinCommit returns the earliest scheduled commit time among pending
// entries, or 0 if the buffer is empty. A full buffer stalls issue
// until this time.
func (b *Buffer) MinCommit() float64 {
	if b.Len() == 0 {
		return 0
	}
	if !b.minOK {
		m := b.pending[b.head].Commit
		for i := b.head + 1; i < len(b.pending); i++ {
			if b.pending[i].Commit < m {
				m = b.pending[i].Commit
			}
		}
		b.minCommit, b.minOK = m, true
	}
	return b.minCommit
}

// Entries returns a snapshot of the pending entries in issue order.
func (b *Buffer) Entries() []Entry {
	out := make([]Entry, b.Len())
	copy(out, b.pending[b.head:])
	return out
}

// fwdTable is the per-address tail index: for every address with
// pending stores it records the youngest pending value (what Forward
// must return), that entry's sequence number, and how many pending
// entries target the address. Open addressing with linear probing and
// backward-shift deletion; the live key count is bounded by the buffer
// capacity, so the table stays tiny and allocation-free after Init.
type fwdSlot struct {
	addr uint64 // 0 marks an empty slot
	seq  uint64 // youngest pending Seq for addr
	val  uint64 // value of that entry
	n    int32  // pending entries targeting addr
}

// fwdMinCap covers the largest platform buffer (24 entries, hence at
// most 24 distinct live addresses) at under 3/4 load.
const fwdMinCap = 64

type fwdTable struct {
	slots []fwdSlot
	live  int
	shift uint

	// Address 0 is representable (the simulator never allocates it,
	// but the package contract allows it) and kept outside the table
	// so slot 0 can mean "empty".
	zero fwdSlot

	inline [fwdMinCap]fwdSlot
}

func (f *fwdTable) init() {
	f.slots = f.inline[:]
	for i := range f.slots {
		f.slots[i] = fwdSlot{}
	}
	f.live = 0
	f.shift = 64 - 6
	f.zero = fwdSlot{}
}

func (f *fwdTable) hash(addr uint64) int {
	return int((addr * 0x9E3779B97F4A7C15) >> f.shift)
}

// lookup returns the youngest pending value for addr.
func (f *fwdTable) lookup(addr uint64) (uint64, bool) {
	if addr == 0 {
		return f.zero.val, f.zero.n > 0
	}
	mask := len(f.slots) - 1
	for i := f.hash(addr); ; i = (i + 1) & mask {
		s := &f.slots[i]
		switch s.addr {
		case addr:
			return s.val, true
		case 0:
			return 0, false
		}
	}
}

// push records a new youngest entry for addr.
func (f *fwdTable) push(addr, val, seq uint64) {
	if addr == 0 {
		f.zero.val, f.zero.seq = val, seq
		f.zero.n++
		return
	}
	mask := len(f.slots) - 1
	for i := f.hash(addr); ; i = (i + 1) & mask {
		s := &f.slots[i]
		switch s.addr {
		case addr:
			s.val, s.seq = val, seq
			s.n++
			return
		case 0:
			*s = fwdSlot{addr: addr, val: val, seq: seq, n: 1}
			f.live++
			if 4*f.live >= 3*len(f.slots) {
				f.grow()
			}
			return
		}
	}
}

// set overwrites the youngest record for a live address (rescan path).
func (f *fwdTable) set(addr, val, seq uint64) {
	if addr == 0 {
		f.zero.val, f.zero.seq = val, seq
		return
	}
	mask := len(f.slots) - 1
	for i := f.hash(addr); ; i = (i + 1) & mask {
		if s := &f.slots[i]; s.addr == addr {
			s.val, s.seq = val, seq
			return
		}
	}
}

// remove drops one pending entry for addr. It reports whether the
// caller must rescan: the removed entry was the indexed youngest while
// other entries for addr remain pending.
func (f *fwdTable) remove(addr, seq uint64) bool {
	if addr == 0 {
		f.zero.n--
		if f.zero.n == 0 {
			f.zero = fwdSlot{}
			return false
		}
		return f.zero.seq == seq
	}
	mask := len(f.slots) - 1
	i := f.hash(addr)
	for f.slots[i].addr != addr {
		i = (i + 1) & mask
	}
	s := &f.slots[i]
	s.n--
	if s.n > 0 {
		return s.seq == seq
	}
	// Last pending entry for addr: delete the slot, backward-shifting
	// any displaced followers so probe chains stay unbroken.
	f.live--
	for {
		j := i
		for {
			j = (j + 1) & mask
			if f.slots[j].addr == 0 {
				f.slots[i] = fwdSlot{}
				return false
			}
			h := f.hash(f.slots[j].addr)
			// Can slot j legally move into the hole at i? Only if its
			// home position does not lie strictly between i (exclusive)
			// and j (inclusive) in probe order.
			if (j-h)&mask >= (j-i)&mask {
				break
			}
		}
		f.slots[i] = f.slots[j]
		i = j
	}
}

// grow doubles the table and reinserts every live slot.
func (f *fwdTable) grow() {
	old := f.slots
	f.slots = make([]fwdSlot, 2*len(old))
	f.shift--
	mask := len(f.slots) - 1
	for _, s := range old {
		if s.addr == 0 {
			continue
		}
		i := f.hash(s.addr)
		for f.slots[i].addr != 0 {
			i = (i + 1) & mask
		}
		f.slots[i] = s
	}
}
