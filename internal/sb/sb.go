// Package sb models a per-core store buffer. Stores retire into the
// buffer immediately and commit (become globally visible) later; the
// owning core forwards its own pending values to its loads. Under the
// weakly-ordered model the buffer is allowed to commit entries out of
// order (the ARM design choice the paper's §6 discusses); in TSO mode
// commits are forced FIFO.
package sb

import "math"

// Entry is one pending store.
type Entry struct {
	Seq    uint64  // issue order, unique per buffer
	Addr   uint64  // target address
	Value  uint64  // value to commit
	Issue  float64 // issue time
	Commit float64 // scheduled commit time
}

// Buffer is a bounded store buffer. The zero value is not usable; call
// New.
type Buffer struct {
	cap     int
	fifo    bool
	nextSeq uint64
	pending []Entry // issue order
}

// New returns a buffer with the given capacity. If fifo is true the
// buffer guarantees in-order commit (TSO); otherwise entries commit at
// their individually scheduled times (WMM).
func New(capacity int, fifo bool) *Buffer {
	if capacity <= 0 {
		panic("sb: capacity must be positive")
	}
	return &Buffer{cap: capacity, fifo: fifo}
}

// FIFO reports whether the buffer commits in order.
func (b *Buffer) FIFO() bool { return b.fifo }

// Len reports the number of pending (uncommitted) stores.
func (b *Buffer) Len() int { return len(b.pending) }

// Full reports whether a new store would exceed capacity.
func (b *Buffer) Full() bool { return len(b.pending) >= b.cap }

// Push inserts a store issued at issue with proposed commit time
// commit, returning the entry actually recorded. In FIFO mode the
// commit time is clamped to be no earlier than the last pending
// entry's, preserving order.
func (b *Buffer) Push(addr, value uint64, issue, commit float64) Entry {
	if b.Full() {
		panic("sb: push into full buffer (caller must stall first)")
	}
	if b.fifo && len(b.pending) > 0 {
		if last := b.pending[len(b.pending)-1].Commit; commit <= last {
			commit = math.Nextafter(last, math.Inf(1))
		}
	}
	b.nextSeq++
	e := Entry{Seq: b.nextSeq, Addr: addr, Value: value, Issue: issue, Commit: commit}
	b.pending = append(b.pending, e)
	return e
}

// Forward returns the youngest pending value for addr, if any: the
// core's own loads must observe its own stores.
func (b *Buffer) Forward(addr uint64) (uint64, bool) {
	for i := len(b.pending) - 1; i >= 0; i-- {
		if b.pending[i].Addr == addr {
			return b.pending[i].Value, true
		}
	}
	return 0, false
}

// Remove deletes the entry with the given sequence number (when its
// commit event has been applied).
func (b *Buffer) Remove(seq uint64) bool {
	for i := range b.pending {
		if b.pending[i].Seq == seq {
			b.pending = append(b.pending[:i], b.pending[i+1:]...)
			return true
		}
	}
	return false
}

// MaxCommit returns the latest scheduled commit time among pending
// entries, or 0 if the buffer is empty. Barriers that order stores wait
// at least this long.
func (b *Buffer) MaxCommit() float64 {
	var m float64
	for i := range b.pending {
		if b.pending[i].Commit > m {
			m = b.pending[i].Commit
		}
	}
	return m
}

// MinCommit returns the earliest scheduled commit time among pending
// entries, or 0 if the buffer is empty. A full buffer stalls issue
// until this time.
func (b *Buffer) MinCommit() float64 {
	if len(b.pending) == 0 {
		return 0
	}
	m := b.pending[0].Commit
	for i := 1; i < len(b.pending); i++ {
		if b.pending[i].Commit < m {
			m = b.pending[i].Commit
		}
	}
	return m
}

// Entries returns a snapshot of the pending entries in issue order.
func (b *Buffer) Entries() []Entry {
	out := make([]Entry, len(b.pending))
	copy(out, b.pending)
	return out
}
