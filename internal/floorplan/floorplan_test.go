package floorplan

import (
	"testing"

	"armbar/internal/locks"
	"armbar/internal/platform"
)

func smallInput() Input {
	ins := Inputs()
	return ins[0]
}

func TestReferenceDeterministicAndBounded(t *testing.T) {
	in := smallInput()
	a, b := Reference(in), Reference(in)
	if a != b {
		t.Fatalf("reference not deterministic: %d vs %d", a, b)
	}
	if a <= 0 || a >= 1<<29 {
		t.Fatalf("implausible optimum %d", a)
	}
	// The optimum can never beat the total-area lower bound.
	area := 0
	for _, c := range in.Cells {
		area += c.W * c.H
	}
	if a*in.Strip < area {
		t.Fatalf("optimum %d below area bound %d/%d", a, area, in.Strip)
	}
}

func TestParallelFindsOptimum(t *testing.T) {
	for _, k := range []locks.Kind{locks.Ticket, locks.DSMSynch, locks.DSMSynchPilot} {
		r := Run(Config{Plat: platform.Kunpeng916(), Kind: k, In: smallInput(),
			Threads: 8, Seed: 3})
		if !r.Valid {
			t.Errorf("%v: found %d, want the sequential optimum", k, r.Best)
		}
		if r.Nodes == 0 {
			t.Errorf("%v: no nodes expanded", k)
		}
	}
}

func TestFig8dPilotGainIsSmall(t *testing.T) {
	// Figure 8d: the lock is not the bottleneck, so Pilot's effect is a
	// few percent at most, in either direction within noise.
	in := smallInput()
	ds := Run(Config{Plat: platform.Kunpeng916(), Kind: locks.DSMSynch, In: in,
		Threads: 8, Seed: 5})
	dsp := Run(Config{Plat: platform.Kunpeng916(), Kind: locks.DSMSynchPilot, In: in,
		Threads: 8, Seed: 5})
	ratio := ds.Cycles / dsp.Cycles // >1 means Pilot is faster
	if ratio < 0.90 || ratio > 1.25 {
		t.Errorf("Pilot effect should be small on floorplan: speedup %.3fx", ratio)
	}
	if !ds.Valid || !dsp.Valid {
		t.Error("both variants must find the optimum")
	}
}

func TestInputsGrow(t *testing.T) {
	ins := Inputs()
	for i := 1; i < len(ins); i++ {
		if len(ins[i].Cells) <= len(ins[i-1].Cells) {
			t.Errorf("input %s should be larger than %s", ins[i].Name, ins[i-1].Name)
		}
	}
}
