// Package floorplan reproduces the paper's BOTS floorplan experiment
// (§5.4, Figure 8d): a branch-and-bound search for an optimal cell
// placement, parallelized across simulated threads that share a global
// best bound behind a lock. The lock is *not* the bottleneck — most
// time goes into exploring the tree — so applying Pilot to the
// delegation lock buys only a few percent, which is precisely the
// paper's point for this benchmark.
//
// The search: cells with fixed dimensions are packed in a fixed order
// into a strip of given width, choosing an orientation (original or
// rotated) per cell; the objective is the minimum strip height. Each
// decision node costs simulated cycles; subtrees are pruned against
// the shared best bound, which threads read optimistically and update
// under the lock.
package floorplan

import (
	"armbar/internal/isa"
	"armbar/internal/locks"
	"armbar/internal/platform"
	"armbar/internal/sim"
	"armbar/internal/topo"
)

// Cell is one rectangle to place.
type Cell struct{ W, H int }

// Input is a named problem instance.
type Input struct {
	Name  string
	Strip int // strip width
	Cells []Cell
}

// Inputs mirrors the paper's input.5 / input.15 / input.20 sizes with
// synthetic cell sets of growing depth.
func Inputs() []Input {
	gen := func(name string, n, strip int) Input {
		cells := make([]Cell, n)
		for i := range cells {
			cells[i] = Cell{W: 2 + (i*7)%5, H: 1 + (i*5)%4}
		}
		return Input{Name: name, Strip: strip, Cells: cells}
	}
	return []Input{
		gen("input.5", 12, 8),
		gen("input.15", 15, 8),
		gen("input.20", 17, 8),
	}
}

// Config describes one run.
type Config struct {
	Plat    *platform.Platform
	Kind    locks.Kind // lock guarding the shared bound
	In      Input
	Threads int
	Seed    int64
	// NodeWork is the simulated cost (nops) of expanding one node.
	NodeWork int
}

// Result is one run's outcome.
type Result struct {
	Config  Config
	Cycles  float64
	Elapsed float64
	Best    int
	Valid   bool // Best matches the sequential reference
	Nodes   int  // total expanded nodes
	Stats   sim.Stats
}

// place computes the strip height after packing cells[0..k] with the
// given orientation mask using a shelf heuristic; deterministic and
// cheap, it stands in for the real floorplanner's geometry.
func packHeight(in Input, mask uint32, k int) int {
	x, shelfH, total := 0, 0, 0
	for i := 0; i <= k; i++ {
		w, h := in.Cells[i].W, in.Cells[i].H
		if mask&(1<<i) != 0 {
			w, h = h, w
		}
		if x+w > in.Strip {
			total += shelfH
			x, shelfH = 0, 0
		}
		x += w
		if h > shelfH {
			shelfH = h
		}
	}
	return total + shelfH
}

// Reference solves the instance sequentially (exhaustive with the same
// pruning) and returns the optimal height.
func Reference(in Input) int {
	best := 1 << 30
	var walk func(i int, mask uint32)
	walk = func(i int, mask uint32) {
		if packHeight(in, mask, i-1) >= best && i > 0 {
			return
		}
		if i == len(in.Cells) {
			if h := packHeight(in, mask, i-1); h < best {
				best = h
			}
			return
		}
		walk(i+1, mask)
		walk(i+1, mask|(1<<i))
	}
	walk(0, 0)
	return best
}

// Run executes the parallel branch-and-bound on the simulator.
func Run(cfg Config) Result {
	if cfg.Threads == 0 {
		cfg.Threads = 8
	}
	if cfg.NodeWork == 0 {
		cfg.NodeWork = 12
	}
	m := sim.New(sim.Config{Plat: cfg.Plat, Mode: sim.WMM, Seed: cfg.Seed})
	cores, serverCore := planCores(cfg.Plat, cfg.Threads)
	cfg.Threads = len(cores)

	bound := m.Alloc(1) // shared best bound, read optimistically
	m.SetInitial(bound, 1<<30)

	var lock locks.Lock
	var server *locks.Server
	switch cfg.Kind {
	case locks.Ticket:
		lock = locks.NewTicket(m, isa.DMBSt)
	case locks.FFWD, locks.FFWDPilot:
		fl := locks.NewFFWD(m, cfg.Threads, cfg.Kind == locks.FFWDPilot, [2]isa.Barrier{})
		server = fl.Server()
		lock = fl
	case locks.DSMSynch, locks.DSMSynchPilot:
		lock = locks.NewDSMSynch(m, cfg.Threads, cfg.Kind == locks.DSMSynchPilot, [2]isa.Barrier{})
	default:
		panic("floorplan: unknown lock kind")
	}

	// The critical section: lower the shared bound if the candidate
	// improves it; return the (possibly unchanged) bound.
	updateCS := func(t *sim.Thread, candidate uint64) uint64 {
		cur := t.Load(bound)
		if candidate < cur {
			t.Store(bound, candidate)
			return candidate
		}
		return cur
	}

	// Work is split by the top splitBits orientation decisions: thread
	// i explores the prefixes congruent to i modulo Threads.
	splitBits := 0
	for 1<<splitBits < 4*cfg.Threads && splitBits < len(cfg.In.Cells)-1 {
		splitBits++
	}
	nodeCount := 0
	remaining := int64(cfg.Threads)
	in := cfg.In

	for ti := 0; ti < cfg.Threads; ti++ {
		ti := ti
		m.Spawn(cores[ti], func(t *sim.Thread) {
			nodes := 0
			var walk func(i int, mask uint32)
			walk = func(i int, mask uint32) {
				nodes++
				t.Nops(cfg.NodeWork)
				if i > 0 {
					// Optimistic bound read: a stale value only costs
					// extra exploration, never correctness.
					if uint64(packHeight(in, mask, i-1)) >= t.Load(bound) {
						return
					}
				}
				if i == len(in.Cells) {
					h := uint64(packHeight(in, mask, i-1))
					if h < t.Load(bound) {
						lock.Exec(t, ti, updateCS, h)
					}
					return
				}
				walk(i+1, mask)
				walk(i+1, mask|(1<<i))
			}
			// Enumerate assigned prefixes, then search below each.
			for prefix := ti; prefix < 1<<splitBits; prefix += cfg.Threads {
				var walkRest func(i int, mask uint32)
				walkRest = walk
				walkRest(splitBits, uint32(prefix))
			}
			nodeCount += nodes
			remaining--
		})
	}
	if server != nil {
		m.Spawn(serverCore, func(t *sim.Thread) { server.Run(t, &remaining) })
	}

	cycles := m.Run()
	best := int(m.Directory().Committed(bound))
	return Result{
		Config:  cfg,
		Cycles:  cycles,
		Elapsed: m.Seconds(cycles),
		Best:    best,
		Valid:   best == Reference(in),
		Nodes:   nodeCount,
		Stats:   m.Stats(),
	}
}

// planCores assigns n client cores round-robin across NUMA
// nodes, the way a full-machine binding (the paper uses 63 threads on
// both nodes) spreads them; the extra core returned hosts dedicated
// FFWD servers.
func planCores(p *platform.Platform, n int) ([]topo.CoreID, topo.CoreID) {
	total := p.Sys.NumCores()
	if n >= total {
		n = total - 1
	}
	var lists [][]topo.CoreID
	for node := 0; node < p.Sys.NumNodes(); node++ {
		lists = append(lists, p.Sys.NodeCores(node))
	}
	cores := make([]topo.CoreID, 0, n)
	for i := 0; len(cores) < n; i++ {
		l := lists[i%len(lists)]
		if k := i / len(lists); k < len(l) {
			cores = append(cores, l[k])
		}
	}
	server := topo.CoreID(total - 1)
	for _, c := range cores {
		if c == server {
			server = topo.CoreID(total - 2)
		}
	}
	return cores, server
}
