package figures

import (
	"sort"

	"armbar/internal/ablation"
	"armbar/internal/report"
)

// Experiment is one entry of the canonical experiment registry: the
// name cmd/armbar accepts, the generator, and the number of tables it
// emits. The registry is the single source of truth — the CLI, the
// root benchmarks, and the determinism tests all iterate it, so a new
// figure only has to be added here.
type Experiment struct {
	Name   string
	Tables int // tables the generator emits (CSV files written per run)
	Gen    func(Options) []*report.Table
}

// one adapts a single-table generator to the registry signature.
func one(f func(Options) *report.Table) func(Options) []*report.Table {
	return func(o Options) []*report.Table { return []*report.Table{f(o)} }
}

// registry is the canonical experiment list, in the paper's order
// followed by the extensions. Keep Tables in sync with the generator.
var registry = []Experiment{
	{"table1", 1, one(Table1)},
	{"table2", 1, one(Table2)},
	{"table3", 1, one(Table3)},
	{"fig2", 4, Fig2},
	{"fig3", 5, Fig3},
	{"fig4", 1, one(Fig4)},
	{"fig5", 1, one(Fig5)},
	{"fig6a", 1, one(Fig6a)},
	{"fig6b", 1, one(Fig6b)},
	{"fig6c", 1, one(Fig6c)},
	{"fig6d", 1, one(Fig6d)},
	{"fig7a", 1, one(Fig7a)},
	{"fig7b", 1, one(Fig7b)},
	{"fig7c", 1, one(Fig7c)},
	{"fig8a", 1, one(Fig8a)},
	{"fig8b", 1, one(Fig8b)},
	{"fig8c", 1, one(Fig8c)},
	{"fig8d", 1, one(Fig8d)},
	{"inplace", 1, one(InPlaceLocks)},
	{"mpmc", 1, one(MPMCFanIn)},
	{"tso", 1, one(TSOPorting)},
	{"seqlock", 1, one(SeqlockVsPilot)},
	{"a64", 1, one(A64CrossCheck)},
	{"ablation", 5, ablationTables},
	{"barrierzoo", 1, one(BarrierZoo)},
	{"fencemin", 1, one(FenceMin)},
	{"fencefuzz", 1, one(FenceFuzz)},
}

// ablationTables fans the five ablation sweeps out as independent
// whole-table cells — each sweep travels as a report.Wire (exported
// fields, so it gob-encodes), making the sweeps cached and
// parallelized like any other cell — in ablation.All's order.
func ablationTables(o Options) []*report.Table {
	gens := []func(ablation.Options) *report.Table{
		ablation.AnomalyVsJitter,
		ablation.AnomalyVsInvalidationDelay,
		ablation.TippingVsMissLatency,
		ablation.PilotGainVsStoreBuffer,
		ablation.BarrierCostVsSyncTxn,
	}
	ao := ablation.Options{Quick: o.Quick, Seed: o.Seed}
	wires := cellMap(o, len(gens), func(i int) report.Wire { return gens[i](ao).Wire() })
	out := make([]*report.Table, len(wires))
	for i, w := range wires {
		out[i] = report.FromWire(w)
	}
	return out
}

// Registry returns the canonical experiment list in presentation
// order (the order `armbar all` regenerates them).
func Registry() []Experiment {
	out := make([]Experiment, len(registry))
	copy(out, registry)
	return out
}

// ByName looks an experiment up by its CLI name.
func ByName(name string) (Experiment, bool) {
	for _, e := range registry {
		if e.Name == name {
			return e, true
		}
	}
	return Experiment{}, false
}

// Names returns every experiment name in alphabetical order (for
// usage strings).
func Names() []string {
	out := make([]string, len(registry))
	for i, e := range registry {
		out[i] = e.Name
	}
	sort.Strings(out)
	return out
}
