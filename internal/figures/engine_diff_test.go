package figures_test

import (
	"strings"
	"testing"

	"armbar/internal/figures"
	"armbar/internal/sim"
)

// TestEngineOutputIdentical is the workload-level differential proof
// for the compiled engine: rendering the fast golden subset with the
// interpreted engine must produce the same bytes as the compiled
// default, at two seeds. The per-op differential in internal/sim
// checks the executor against process(); this checks the compilers in
// absmodel and scenario lower every experiment's op sequence
// faithfully — ring addressing, barrier placement, loop trip counts,
// rng draw order and all.
func TestEngineOutputIdentical(t *testing.T) {
	defer sim.SetDefaultEngine(sim.EngineDefault)
	for _, seed := range []int64{42, 7} {
		sim.SetDefaultEngine(sim.EngineCompiled)
		compiled := render(figures.Options{Quick: true, Seed: seed}, fastSubset)
		sim.SetDefaultEngine(sim.EngineInterp)
		interp := render(figures.Options{Quick: true, Seed: seed}, fastSubset)
		if compiled == interp {
			continue
		}
		cl, il := strings.Split(compiled, "\n"), strings.Split(interp, "\n")
		for i := range cl {
			if i >= len(il) || cl[i] != il[i] {
				t.Fatalf("seed %d: engines diverge at line %d:\n  compiled: %s\n  interp:   %s",
					seed, i+1, cl[i], at(il, i))
			}
		}
		t.Fatalf("seed %d: interp output has %d extra lines", seed, len(il)-len(cl))
	}
}
