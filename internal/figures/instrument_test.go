package figures_test

import (
	"testing"

	"armbar/internal/figures"
	"armbar/internal/metrics"
	"armbar/internal/runner"
)

func TestRunInstrumented(t *testing.T) {
	exp, ok := figures.ByName("table3")
	if !ok {
		t.Fatal("table3 missing from registry")
	}
	reg := metrics.NewRegistry()
	p := runner.New(2)
	defer p.Close()
	o := figures.Options{Quick: true, Pool: p}
	tables, run := figures.RunInstrumented(exp, o, reg)
	if len(tables) != exp.Tables {
		t.Fatalf("instrumentation changed table count: %d vs %d", len(tables), exp.Tables)
	}
	if run.Name != "table3" || run.Tables != exp.Tables {
		t.Fatalf("bad record: %+v", run)
	}
	if run.OutputBytes == 0 || run.WallSeconds < 0 {
		t.Fatalf("empty measurements: %+v", run)
	}
	s := reg.Snapshot()
	if s.Counters["figures_experiments_total"] != 1 {
		t.Fatalf("experiments counter = %d", s.Counters["figures_experiments_total"])
	}
	if s.Gauges[`figures_wall_seconds{exp="table3"}`] < 0 {
		t.Fatal("wall-time gauge missing")
	}
	if s.Counters["figures_output_bytes_total"] != uint64(run.OutputBytes) {
		t.Fatal("output bytes counter disagrees with record")
	}

	// The same experiment with a nil registry must still measure.
	_, run2 := figures.RunInstrumented(exp, figures.Options{Quick: true}, nil)
	if run2.OutputBytes != run.OutputBytes {
		t.Fatalf("output bytes differ between runs: %d vs %d", run2.OutputBytes, run.OutputBytes)
	}
	if run2.Cells != 0 {
		t.Fatalf("inline run reported %d pool cells, want 0", run2.Cells)
	}
}

func TestRunInstrumentedCountsCells(t *testing.T) {
	exp, _ := figures.ByName("table1")
	p := runner.New(2)
	defer p.Close()
	_, run := figures.RunInstrumented(exp, figures.Options{Quick: true, Pool: p}, nil)
	if run.Cells == 0 {
		t.Fatal("pooled run must attribute its cells")
	}
}
