package figures_test

import (
	"fmt"
	"os"
	"sort"
	"strings"
	"testing"

	"armbar/internal/figures"
	"armbar/internal/runner"
)

// fastSubset spans every experiment package (litmus, absmodel, pc,
// dedup, locks, ds, floorplan, a64, ablation) while staying cheap
// enough for every `go test` run; ARMBAR_DETERMINISM_FULL=1 widens the
// guardrail to the whole registry (minutes, run before perf PRs).
var fastSubset = []string{
	"table1", "table3", "fig4", "fig5", "fig6d", "fig7b",
	"fig8a", "fig8d", "seqlock", "a64",
}

// render regenerates the named experiments and returns their combined
// CSV, the exact bytes `armbar -csv` would print. Each experiment runs
// under its own scope, as cmd/armbar does — a no-op without a cache in
// o, and the configuration the warm-cache golden test exercises.
func render(o figures.Options, names []string) string {
	var b strings.Builder
	for _, name := range names {
		exp, ok := figures.ByName(name)
		if !ok {
			panic(fmt.Sprintf("unknown experiment %q", name))
		}
		for _, t := range exp.Gen(o.Scoped(name)) {
			b.WriteString(t.CSV())
		}
	}
	return b.String()
}

// TestParallelOutputMatchesSequential is the determinism guardrail for
// the runner and all future simulator perf work: rendered output must
// be byte-identical between the inline sequential path and an 8-worker
// pool, at more than one seed.
func TestParallelOutputMatchesSequential(t *testing.T) {
	names := fastSubset
	if os.Getenv("ARMBAR_DETERMINISM_FULL") != "" {
		names = nil
		for _, e := range figures.Registry() {
			names = append(names, e.Name)
		}
	}
	for _, seed := range []int64{7, 99} {
		seq := render(figures.Options{Quick: true, Seed: seed}, names)
		pool := runner.New(8)
		par := render(figures.Options{Quick: true, Seed: seed, Pool: pool}, names)
		pool.Close()
		if seq == par {
			continue
		}
		sl, pl := strings.Split(seq, "\n"), strings.Split(par, "\n")
		for i := range sl {
			if i >= len(pl) || sl[i] != pl[i] {
				t.Fatalf("seed %d: parallel output diverges at line %d:\n  seq: %s\n  par: %s",
					seed, i+1, sl[i], at(pl, i))
			}
		}
		t.Fatalf("seed %d: parallel output has %d extra lines", seed, len(pl)-len(sl))
	}
}

func at(lines []string, i int) string {
	if i < len(lines) {
		return lines[i]
	}
	return "<missing>"
}

// TestRegistryConsistent pins the registry invariants the CLI and
// benchmarks rely on: unique names, ByName round-trips, Names sorted,
// and the fast subset above only naming real experiments.
func TestRegistryConsistent(t *testing.T) {
	reg := figures.Registry()
	seen := map[string]bool{}
	for _, e := range reg {
		if e.Name == "" || e.Gen == nil || e.Tables <= 0 {
			t.Errorf("registry entry %+v incomplete", e.Name)
		}
		if seen[e.Name] {
			t.Errorf("duplicate experiment name %q", e.Name)
		}
		seen[e.Name] = true
		got, ok := figures.ByName(e.Name)
		if !ok || got.Name != e.Name {
			t.Errorf("ByName(%q) failed", e.Name)
		}
	}
	if _, ok := figures.ByName("nope"); ok {
		t.Error("ByName accepted an unknown name")
	}
	names := figures.Names()
	if len(names) != len(reg) {
		t.Errorf("Names() has %d entries, registry %d", len(names), len(reg))
	}
	if !sort.StringsAreSorted(names) {
		t.Error("Names() must be sorted for stable usage strings and `all` order")
	}
	for _, n := range fastSubset {
		if !seen[n] {
			t.Errorf("determinism subset names unknown experiment %q", n)
		}
	}
	// Table counts for the sim-free generators are cheap to verify
	// here; the CLI checks every experiment's count at run time.
	o := figures.Options{Quick: true, Seed: 7}
	for _, name := range []string{"table2", "table3"} {
		e, _ := figures.ByName(name)
		if got := len(e.Gen(o)); got != e.Tables {
			t.Errorf("%s: generator emits %d tables, registry says %d", name, got, e.Tables)
		}
	}
}
