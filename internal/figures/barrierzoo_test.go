package figures_test

import (
	"strings"
	"testing"

	"armbar/internal/figures"
	"armbar/internal/runner"
)

// TestBarrierZooDeterministic pins the new scaling figure the same way
// the registry-wide guardrails pin the paper's: quick-mode output must
// be byte-identical between the inline sequential path and pools of
// every width, at both canonical seeds. (barrierzoo stays out of
// fastSubset so the fast golden digest is untouched; this test is its
// dedicated equivalent.)
func TestBarrierZooDeterministic(t *testing.T) {
	for _, seed := range []int64{42, 7} {
		seq := render(figures.Options{Quick: true, Seed: seed}, []string{"barrierzoo"})
		if !strings.Contains(seq, "central") || !strings.Contains(seq, "pairwise") {
			t.Fatalf("seed %d: rendered figure is missing algorithm columns:\n%s", seed, seq)
		}
		for _, workers := range []int{2, 8} {
			pool := runner.New(workers)
			par := render(figures.Options{Quick: true, Seed: seed, Pool: pool}, []string{"barrierzoo"})
			pool.Close()
			if par != seq {
				t.Errorf("seed %d par=%d: output differs from sequential\nseq:\n%s\npar:\n%s",
					seed, workers, seq, par)
			}
		}
	}
}
