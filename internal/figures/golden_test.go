package figures_test

import (
	"crypto/sha256"
	"encoding/hex"
	"os"
	"testing"

	"armbar/internal/cellcache"
	"armbar/internal/figures"
)

// Golden digests of the rendered quick-mode CSV at the canonical seed
// 42 (the `armbar -quick all` configuration). They pin the simulator's
// exact service order and rng draw sequence: any scheduler change that
// drifts either — even by one op — changes every downstream number and
// fails here immediately, long before a full-scale regeneration would.
//
// goldenFastDigest covers the fastSubset (every experiment package,
// cheap enough for every `go test`); goldenAllDigest is the complete
// registry, checked under ARMBAR_DETERMINISM_FULL=1 (`make
// determinism`). Regenerate with:
//
//	go test -run TestQuickOutputDigest ./internal/figures -v
//	ARMBAR_DETERMINISM_FULL=1 go test -run TestQuickOutputDigest ./internal/figures -v
//
// and paste the printed digests — but only after convincing yourself
// the drift is intended (a semantics change, not a scheduler bug).
const (
	goldenFastDigest = "72b30bfa573e9fe4d805b9a433d1055d574ca31ec8c1ad0635a7a0ff6f54d4c5"
	goldenAllDigest  = "7e1ab12f20cf7887ed65f5f4e0d6c1318553b34b0281387c4cdd1f24cd39b2b0"
)

// TestQuickOutputDigest is the direct-dispatch scheduler's determinism
// regression: the engine must keep serving threads in min-(time,id)
// order with an unchanged rng sequence, byte for byte.
func TestQuickOutputDigest(t *testing.T) {
	names := fastSubset
	want := goldenFastDigest
	if os.Getenv("ARMBAR_DETERMINISM_FULL") != "" {
		names = figures.Names()
		want = goldenAllDigest
	}
	out := render(figures.Options{Quick: true, Seed: 42}, names)
	sum := sha256.Sum256([]byte(out))
	got := hex.EncodeToString(sum[:])
	if got != want {
		t.Fatalf("quick-mode output drifted from the golden digest\n got %s\nwant %s\n(%d experiments, %d bytes rendered; see the comment above the digests before regenerating)",
			got, want, len(names), len(out))
	}
}

// TestWarmCacheOutputIdentical is the result cache's golden
// cross-check: regenerating the fast subset cold (fresh cache
// directory), then warm (every cell replayed from disk), then with the
// cache off must produce byte-identical output at more than one seed —
// and at the canonical seed the cached digest must still be the golden
// one, so caching provably changes wall time only.
func TestWarmCacheOutputIdentical(t *testing.T) {
	digest := func(s string) string {
		sum := sha256.Sum256([]byte(s))
		return hex.EncodeToString(sum[:])
	}
	for _, seed := range []int64{42, 7} {
		c := cellcache.Open(t.TempDir())
		o := figures.Options{Quick: true, Seed: seed, Cache: c}
		cold := render(o, fastSubset)
		hitsCold, _ := c.Counts()
		warm := render(o, fastSubset)
		hitsWarm, _ := c.Counts()
		c.Close()
		if warm != cold {
			t.Fatalf("seed %d: warm-cache output differs from cold (%d vs %d bytes)",
				seed, len(warm), len(cold))
		}
		if hitsWarm == hitsCold {
			t.Fatalf("seed %d: warm run never hit the cache — every cell recomputed", seed)
		}
		// Cache off: seed 42's uncached render is already pinned by
		// goldenFastDigest, so compare against the constant instead of
		// paying a third full regeneration; other seeds render it.
		if seed == 42 {
			if got := digest(cold); got != goldenFastDigest {
				t.Fatalf("seed 42: cached output drifted from the golden digest\n got %s\nwant %s",
					got, goldenFastDigest)
			}
		} else {
			off := render(figures.Options{Quick: true, Seed: seed}, fastSubset)
			if off != cold {
				t.Fatalf("seed %d: -cache=off output differs from the cached run", seed)
			}
		}
	}
}
