package figures_test

import (
	"crypto/sha256"
	"encoding/hex"
	"os"
	"testing"

	"armbar/internal/figures"
)

// Golden digests of the rendered quick-mode CSV at the canonical seed
// 42 (the `armbar -quick all` configuration). They pin the simulator's
// exact service order and rng draw sequence: any scheduler change that
// drifts either — even by one op — changes every downstream number and
// fails here immediately, long before a full-scale regeneration would.
//
// goldenFastDigest covers the fastSubset (every experiment package,
// cheap enough for every `go test`); goldenAllDigest is the complete
// registry, checked under ARMBAR_DETERMINISM_FULL=1 (`make
// determinism`). Regenerate with:
//
//	go test -run TestQuickOutputDigest ./internal/figures -v
//	ARMBAR_DETERMINISM_FULL=1 go test -run TestQuickOutputDigest ./internal/figures -v
//
// and paste the printed digests — but only after convincing yourself
// the drift is intended (a semantics change, not a scheduler bug).
const (
	goldenFastDigest = "72b30bfa573e9fe4d805b9a433d1055d574ca31ec8c1ad0635a7a0ff6f54d4c5"
	goldenAllDigest  = "435c9a48192d07e32db664efacf2583d023b02171f36f36305e0652db8362e99"
)

// TestQuickOutputDigest is the direct-dispatch scheduler's determinism
// regression: the engine must keep serving threads in min-(time,id)
// order with an unchanged rng sequence, byte for byte.
func TestQuickOutputDigest(t *testing.T) {
	names := fastSubset
	want := goldenFastDigest
	if os.Getenv("ARMBAR_DETERMINISM_FULL") != "" {
		names = figures.Names()
		want = goldenAllDigest
	}
	out := render(figures.Options{Quick: true, Seed: 42}, names)
	sum := sha256.Sum256([]byte(out))
	got := hex.EncodeToString(sum[:])
	if got != want {
		t.Fatalf("quick-mode output drifted from the golden digest\n got %s\nwant %s\n(%d experiments, %d bytes rendered; see the comment above the digests before regenerating)",
			got, want, len(names), len(out))
	}
}
