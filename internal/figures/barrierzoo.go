package figures

import (
	"fmt"

	"armbar/internal/barrier"
	"armbar/internal/platform"
	"armbar/internal/report"
)

// BarrierZoo sweeps the five barrier algorithms of internal/barrier
// across the synthetic scale-out platforms (64/256/1024 cores, one
// thread per core) and reports cycles per barrier round — the
// reproduction of the scaling-shape comparison in the 1024-core
// barrier study (Bertuletti et al., PAPERS.md): linear growth for the
// counter-based barriers once atomic occupancy serializes the
// arrivals, logarithmic for tree and dissemination, and the padded
// linear chain as the O(n) outlier.
func BarrierZoo(o Options) *report.Table {
	rounds := o.scale(4, 2)
	cores := platform.ScaleOutCores
	if o.Quick {
		cores = cores[:2] // {64, 256}
	}
	algos := barrier.Algos()
	cols := make([]string, 0, len(algos)+1)
	cols = append(cols, "Cores")
	for _, a := range algos {
		cols = append(cols, a.String())
	}
	t := report.New("Extension: barrier algorithm zoo at scale (cycles/round)", cols...)

	// One cell per (core count, algorithm). The pairwise chain's cost
	// is O(n) in simulated AND host time (every thread spins for the
	// whole episode), so quick mode runs it only at the smallest size.
	type cell struct {
		Cyc  float64
		Skip bool
	}
	vals := cellGrid(o, len(cores), len(algos), func(r, c int) cell {
		n, a := cores[r], algos[c]
		if o.Quick && a == barrier.Pairwise && n > 64 {
			return cell{Skip: true}
		}
		res, err := barrier.Run(a, barrier.Config{
			Plat:    platform.MustScaleOut(n),
			Threads: n,
			Rounds:  rounds,
			Seed:    o.seed(),
		})
		if err != nil {
			// Unreachable for the registered grid; make a cell error
			// loud rather than silently zero.
			panic(fmt.Sprintf("figures: barrierzoo %s/%d: %v", a, n, err))
		}
		return cell{Cyc: res.CyclesPerRound}
	})
	for r, n := range cores {
		row := make([]any, 0, len(algos)+1)
		row = append(row, n)
		for c := range algos {
			if vals[r][c].Skip {
				row = append(row, "-")
				continue
			}
			row = append(row, fmt.Sprintf("%.1f", vals[r][c].Cyc))
		}
		t.Row(row...)
	}
	t.Note = "scale-out presets enable atomic line occupancy (RMWOccupancy), so central/sense-rev arrivals serialize and grow linearly; comb-tree and dissem stay logarithmic; pairwise is the padded O(n) chain"
	return t
}
