package figures

import (
	"time"

	"armbar/internal/metrics"
	"armbar/internal/report"
	"armbar/internal/sim"
)

// ExperimentRun is the observability record of one generated
// experiment — the per-experiment entry of cmd/armbar's run manifest.
type ExperimentRun struct {
	Name        string  `json:"name"`
	Tables      int     `json:"tables"`
	WallSeconds float64 `json:"wall_seconds"`
	OutputBytes int     `json:"output_bytes"` // rendered CSV bytes, format-independent
	Cells       int     `json:"cells"`        // simulation cells run through the pool (0 when inline)
	CacheHits   int     `json:"cache_hits,omitempty"`   // cells served from the result cache
	CacheMisses int     `json:"cache_misses,omitempty"` // cells simulated (and then stored)

	// ProfileCycles is the experiment's cycle-attribution rollup
	// (cause name -> simulated cycles), present when a global
	// sim.ProfileCollector is installed. Cells within one experiment
	// run concurrently, so the per-experiment delta is the finest
	// attribution unit available; cached cells never simulate and
	// contribute nothing (a fully warm experiment profiles empty).
	ProfileCycles map[string]float64 `json:"profile_cycles,omitempty"`
}

// cellCacheCounts is the slice of the cache the instrumentation needs:
// lifetime hit/miss totals whose deltas attribute cache behavior to
// one experiment (internal/cellcache implements it).
type cellCacheCounts interface {
	Counts() (hits, misses uint64)
}

// RunInstrumented generates exp and measures it: wall time, rendered
// output size (CSV bytes, so the measure is independent of the display
// format), and how many pool cells the experiment consumed. When reg
// is non-nil the measurements are also recorded as metrics; a nil reg
// only fills the returned record. The generated tables are returned
// unchanged — instrumentation never alters experiment output.
func RunInstrumented(exp Experiment, o Options, reg *metrics.Registry) ([]*report.Table, ExperimentRun) {
	o = o.Scoped(exp.Name)
	var hits0, misses0 uint64
	counts, hasCache := o.Cache.(cellCacheCounts)
	if hasCache {
		hits0, misses0 = counts.Counts()
	}
	cellsBefore := o.Pool.TasksDone()
	// Experiments run sequentially (cmd/armbar's loop), so two
	// snapshots of the cumulative collector bracket exactly this
	// experiment's machines.
	var prof0 sim.Profile
	pc := sim.GlobalProfile()
	if pc != nil {
		prof0 = pc.Snapshot()
	}
	start := time.Now() //armvet:ignore determvet — wall-time measurement lands in the manifest, never in tables
	tables := exp.Gen(o)
	run := ExperimentRun{
		Name:        exp.Name,
		Tables:      len(tables),
		WallSeconds: time.Since(start).Seconds(), //armvet:ignore determvet — manifest-only wall time
		Cells:       int(o.Pool.TasksDone() - cellsBefore),
	}
	if hasCache {
		hits1, misses1 := counts.Counts()
		run.CacheHits = int(hits1 - hits0)
		run.CacheMisses = int(misses1 - misses0)
	}
	if pc != nil {
		prof1 := pc.Snapshot()
		delta := prof1.Sub(prof0)
		run.ProfileCycles = delta.CyclesByCause()
	}
	for _, t := range tables {
		run.OutputBytes += len(t.CSV())
	}
	if reg != nil {
		reg.Counter("figures_experiments_total").Inc()
		reg.Counter("figures_tables_total").Add(uint64(run.Tables))
		reg.Counter("figures_output_bytes_total").Add(uint64(run.OutputBytes))
		reg.Counter("figures_cells_total").Add(uint64(run.Cells))
		reg.Gauge(metrics.Labeled("figures_wall_seconds", "exp", exp.Name)).Set(run.WallSeconds)
		reg.Gauge(metrics.Labeled("figures_output_bytes", "exp", exp.Name)).Set(float64(run.OutputBytes))
		reg.Gauge(metrics.Labeled("figures_cells", "exp", exp.Name)).Set(float64(run.Cells))
	}
	return tables, run
}
