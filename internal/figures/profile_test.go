package figures_test

import (
	"crypto/sha256"
	"encoding/hex"
	"math"
	"testing"

	"armbar/internal/figures"
	"armbar/internal/sim"
)

// TestProfileConservationAcrossFigures is the acceptance gate for the
// cycle-attribution profiler: every cell of the fast subset, rendered
// under both engines at two seeds with profiling enabled, must
// attribute every simulated cycle (zero gaps, per-cause sum equal to
// the engine's own clock sum up to floating-point re-association).
// The compiled run at seed 42 doubles as the profiling-on golden
// check — the rendered bytes must still hash to goldenFastDigest,
// proving the profiler never perturbs simulation output.
func TestProfileConservationAcrossFigures(t *testing.T) {
	if testing.Short() {
		t.Skip("full fast-subset sweep in -short mode")
	}
	pc := sim.NewProfileCollector()
	sim.SetGlobalProfile(pc)
	defer sim.SetGlobalProfile(nil)
	defer sim.SetDefaultEngine(sim.EngineDefault)

	for _, eng := range []sim.Engine{sim.EngineCompiled, sim.EngineInterp} {
		for _, seed := range []int64{42, 7} {
			sim.SetDefaultEngine(eng)
			pc.Reset()
			out := render(figures.Options{Quick: true, Seed: seed}, fastSubset)
			p := pc.Snapshot()
			if p.Machines == 0 {
				t.Fatalf("%v seed %d: no machines folded into the collector", eng, seed)
			}
			if !p.Conserved() {
				t.Errorf("%v seed %d: %d attribution gaps across %d machines",
					eng, seed, p.Gaps, p.Machines)
			}
			attr, eng2 := p.Attributed(), p.EngineCycles
			if rel := math.Abs(attr-eng2) / math.Max(eng2, 1); rel > 1e-9 {
				t.Errorf("%v seed %d: attributed %v vs engine %v (rel %v)",
					eng, seed, attr, eng2, rel)
			}
			if eng == sim.EngineCompiled && seed == 42 {
				sum := sha256.Sum256([]byte(out))
				if got := hex.EncodeToString(sum[:]); got != goldenFastDigest {
					t.Errorf("profiling-on output digest %s != golden %s — profiler perturbed simulation output",
						got, goldenFastDigest)
				}
			}
		}
	}
}
