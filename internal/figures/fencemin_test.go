package figures_test

import (
	"strings"
	"testing"

	"armbar/internal/figures"
	"armbar/internal/runner"
)

// TestFenceMinDeterministic pins the fence-minimization figure the way
// barrierzoo pins its: quick-mode output byte-identical between the
// inline sequential path and pools of every width, at both canonical
// seeds. (fencemin stays out of fastSubset so the fast golden digest
// is untouched; this test is its dedicated equivalent.) It also pins
// the headline verdicts: the chan minimal set must be the Pilot
// placement and every cross-check column must agree.
func TestFenceMinDeterministic(t *testing.T) {
	for _, seed := range []int64{42, 7} {
		seq := render(figures.Options{Quick: true, Seed: seed}, []string{"fencemin"})
		if !strings.Contains(seq, "{publish consume}") {
			t.Fatalf("seed %d: chan row is missing the Pilot minimal set:\n%s", seed, seq)
		}
		if !strings.Contains(seq, "{push pull}") {
			t.Fatalf("seed %d: MP row is missing its minimal set:\n%s", seed, seq)
		}
		if strings.Contains(seq, "DISAGREE") || strings.Contains(seq, "false") {
			t.Fatalf("seed %d: a cross-check column disagrees:\n%s", seed, seq)
		}
		for _, workers := range []int{2, 8} {
			pool := runner.New(workers)
			par := render(figures.Options{Quick: true, Seed: seed, Pool: pool}, []string{"fencemin"})
			pool.Close()
			if par != seq {
				t.Errorf("seed %d par=%d: output differs from sequential\nseq:\n%s\npar:\n%s",
					seed, workers, seq, par)
			}
		}
	}
}
