package figures

import (
	"strconv"
	"testing"
)

var quick = Options{Quick: true, Seed: 7}

func TestTablesNonEmpty(t *testing.T) {
	cases := map[string]int{}
	one := func(name string, rows int) {
		cases[name] = rows
	}
	one("table1", Table1(quick).Rows())
	one("table2", Table2(quick).Rows())
	one("table3", Table3(quick).Rows())
	one("fig4", Fig4(quick).Rows())
	for name, rows := range cases {
		if rows == 0 {
			t.Errorf("%s produced no rows", name)
		}
	}
}

func TestFig2PerPlatform(t *testing.T) {
	ts := Fig2(quick)
	if len(ts) != 4 {
		t.Fatalf("Fig2 should emit 4 platform tables, got %d", len(ts))
	}
	for _, tb := range ts {
		if tb.Rows() != 8 {
			t.Errorf("%s: %d rows, want 8 barrier variants", tb.Title, tb.Rows())
		}
	}
}

func TestFig3Subfigures(t *testing.T) {
	ts := Fig3(quick)
	if len(ts) != 5 {
		t.Fatalf("Fig3 should emit 5 subfigures, got %d", len(ts))
	}
	for _, tb := range ts {
		if tb.Rows() != 10 {
			t.Errorf("%s: %d rows, want 10 legend entries", tb.Title, tb.Rows())
		}
	}
}

func TestFig6aNormalizedBaseline(t *testing.T) {
	tb := Fig6a(quick)
	if tb.Rows() != 5 {
		t.Fatalf("Fig6a rows = %d, want 5 bindings", tb.Rows())
	}
	for r := 0; r < tb.Rows(); r++ {
		v, err := strconv.ParseFloat(tb.Cell(r, 1), 64)
		if err != nil || v != 1 {
			t.Errorf("row %d baseline = %q, want 1", r, tb.Cell(r, 1))
		}
	}
}

func TestFig7cFiveLocks(t *testing.T) {
	tb := Fig7c(quick)
	if tb.Rows() != 5 {
		t.Fatalf("Fig7c rows = %d, want 5 lock variants", tb.Rows())
	}
}

func TestFig8dValidity(t *testing.T) {
	tb := Fig8d(quick)
	for r := 0; r < tb.Rows(); r++ {
		if tb.Cell(r, 4) != "true" {
			t.Errorf("floorplan row %d did not find the optimum", r)
		}
	}
}

func TestExtensionTables(t *testing.T) {
	ip := InPlaceLocks(quick)
	if ip.Rows() != 8 {
		t.Errorf("InPlaceLocks rows = %d, want 8 lock variants", ip.Rows())
	}
	mp := MPMCFanIn(quick)
	if mp.Rows() != 3 {
		t.Errorf("MPMCFanIn quick rows = %d, want 3 producer counts", mp.Rows())
	}
	// The headline shape: Pilot fan-in beats the locked ring at the
	// largest fan-in.
	last := mp.Rows() - 1
	lr, err1 := strconv.ParseFloat(mp.Cell(last, 1), 64)
	pf, err2 := strconv.ParseFloat(mp.Cell(last, 2), 64)
	if err1 != nil || err2 != nil || pf <= lr {
		t.Errorf("fan-in: pilot (%v) should beat locked ring (%v)", pf, lr)
	}
}
