// Package figures regenerates every table and figure of the paper's
// evaluation from the reproduction's experiment packages. Each
// function returns report tables with the same rows/series the paper
// plots; cmd/armbar prints them and bench_test.go wraps them in
// testing.B benchmarks.
//
// Every generator decomposes its figure into independent cells — one
// (or a few) sim.Machine per platform × data-point — and evaluates
// them through the runner pool carried in Options. Results are merged
// back in canonical order, so output is byte-identical whether the
// pool is nil (inline, sequential) or GOMAXPROCS-wide; see
// internal/runner and its determinism test.
package figures

import (
	"fmt"

	"armbar/internal/absmodel"
	"armbar/internal/dedup"
	"armbar/internal/ds"
	"armbar/internal/floorplan"
	"armbar/internal/isa"
	"armbar/internal/litmus"
	"armbar/internal/locks"
	"armbar/internal/pc"
	"armbar/internal/platform"
	"armbar/internal/report"
	"armbar/internal/runner"
	"armbar/internal/sim"
	"armbar/internal/topo"
)

// Options scales the experiments: Quick shrinks iteration counts for
// fast smoke runs; the zero value is the full configuration. Pool is
// the worker pool experiment cells fan out over; nil runs every cell
// inline on the caller's goroutine (the sequential baseline).
//
// Cache is the persistent cell-result cache (internal/cellcache); nil
// disables caching. Cached lookups only happen under an experiment
// scope — Scoped(name) binds one — so generators invoked directly with
// an unscoped Options always recompute.
type Options struct {
	Quick bool
	Seed  int64
	Pool  *runner.Pool
	Cache runner.CellCache

	scope *cellScope
}

// cellScope tracks, per experiment invocation, how many cell fan-outs
// the generator has issued so far: the sequence number keeps two Map
// calls of one generator from colliding on the same cache keys. Cell
// fan-out happens on the assembling goroutine only, so a plain int is
// safe.
type cellScope struct {
	exp string
	seq int
}

// Scoped returns a copy of o bound to the named experiment, enabling
// cached cell lookups for the duration of one generator invocation.
// RunInstrumented applies it automatically; call it directly when
// invoking exp.Gen by hand (the determinism and golden tests do).
func (o Options) Scoped(exp string) Options {
	o.scope = &cellScope{exp: exp}
	return o
}

// cellScopeFor hands cells/cellGrid the cache and the scope string of
// the next fan-out, or (nil, "") when caching is off. The scope folds
// in everything that shapes cell meaning besides the index: experiment
// name, fan-out sequence, quick flag, seed, and cell count. The code
// version is folded in by the cache itself.
func (o Options) cellScopeFor(n int) (runner.CellCache, string) {
	if o.Cache == nil || o.scope == nil {
		return nil, ""
	}
	seq := o.scope.seq
	o.scope.seq++
	return o.Cache, fmt.Sprintf("%s#%d|quick=%t|seed=%d|n=%d", o.scope.exp, seq, o.Quick, o.seed(), n)
}

// cellMap evaluates fn(0..n-1) as n independent cells through the pool,
// consulting the result cache first when one is bound. Every generator
// fans out through this (or cellGrid) so `armbar -cache` accelerates
// the whole registry uniformly.
func cellMap[T any](o Options, n int, fn func(i int) T) []T {
	cc, scope := o.cellScopeFor(n)
	return runner.MapCached(o.Pool, cc, scope, n, fn)
}

// cellGrid is cellMap over a rows × cols grid, the shape of most sweeps.
func cellGrid[T any](o Options, rows, cols int, fn func(r, c int) T) [][]T {
	cc, scope := o.cellScopeFor(rows * cols)
	return runner.GridCached(o.Pool, cc, scope, rows, cols, fn)
}

func (o Options) seed() int64 {
	if o.Seed == 0 {
		return 42
	}
	return o.Seed
}

func (o Options) scale(full, quick int) int {
	if o.Quick {
		return quick
	}
	return full
}

// threads picks the client-thread count for lock experiments.
func (o Options) threads() int {
	if o.Quick {
		return 12
	}
	return 24
}

// trim cuts a sweep down in quick mode (first, middle, last points).
func trim[T any](o Options, xs []T) []T {
	if !o.Quick || len(xs) <= 3 {
		return xs
	}
	return []T{xs[0], xs[len(xs)/2], xs[len(xs)-1]}
}

// kunpeng bindings used throughout.
func kunpengSame() (*platform.Platform, [2]topo.CoreID) {
	p := platform.Kunpeng916()
	n0 := p.Sys.NodeCores(0)
	return p, [2]topo.CoreID{n0[0], n0[4]}
}

func kunpengCross() (*platform.Platform, [2]topo.CoreID) {
	p := platform.Kunpeng916()
	return p, [2]topo.CoreID{p.Sys.NodeCores(0)[0], p.Sys.NodeCores(1)[0]}
}

// pcBindings are the five Figure-6 configurations.
type pcBinding struct {
	Label      string
	Plat       *platform.Platform
	Prod, Cons topo.CoreID
}

func pcBindings() []pcBinding {
	kpS, sameCores := kunpengSame()
	kpC, crossCores := kunpengCross()
	k960 := platform.Kirin960()
	k970 := platform.Kirin970()
	rpi := platform.RaspberryPi4()
	big960 := k960.Sys.CoresOfClass(topo.Big)
	big970 := k970.Sys.CoresOfClass(topo.Big)
	return []pcBinding{
		{"Kunpeng916 Same Node", kpS, sameCores[0], sameCores[1]},
		{"Kunpeng916 Cross Nodes", kpC, crossCores[0], crossCores[1]},
		{"Kirin960", k960, big960[0], big960[1]},
		{"Kirin970", k970, big970[0], big970[1]},
		{"Raspberry Pi 4", rpi, 0, 1},
	}
}

// Table1 reproduces the WMM-vs-TSO message-passing behaviors.
func Table1(o Options) *report.Table {
	runs := o.scale(2000, 300)
	t := report.New("Table 1: message passing under TSO vs WMM",
		"Model", "Outcome local=23", "Outcome local!=23", "Anomaly")
	p := platform.Kunpeng916()
	test := litmus.MessagePassing(isa.None, isa.None)
	modes := []sim.Mode{sim.TSO, sim.WMM}
	results := cellMap(o, len(modes), func(i int) *litmus.Result {
		return litmus.Run(p, modes[i], test, runs, o.seed())
	})
	for i, mode := range modes {
		res := results[i]
		bad := res.Count["local=0"]
		verdict := "forbidden"
		if bad > 0 {
			verdict = "ALLOWED"
		}
		t.Row(mode.String(), res.Count["local=23"], bad, verdict)
	}
	t.Note = "thread1: data=23; flag=DONE / thread2: spin(flag); local=data — no barriers"
	return t
}

// Table2 lists the platform models.
func Table2(Options) *report.Table {
	t := report.New("Table 2: target platforms", "Name", "Architecture", "Cores",
		"Freq (GHz)", "Interconnect", "NUMA nodes")
	for _, p := range platform.All() {
		t.Row(p.Name, p.Arch, p.Sys.NumCores(), p.Cost.FreqGHz, p.Interconnect, p.Sys.NumNodes())
	}
	return t
}

// Table3 prints the suggestion matrix.
func Table3(Options) *report.Table {
	t := report.New("Table 3: order-preserving suggestions", "From \\ To",
		"Load", "Loads", "Store", "Stores", "Any")
	froms := []isa.Access{isa.Load, isa.Loads, isa.Store, isa.Stores, isa.Any}
	tos := []isa.Access{isa.Load, isa.Loads, isa.Store, isa.Stores, isa.Any}
	for _, f := range froms {
		cells := make([]any, 0, len(tos)+1)
		cells = append(cells, f.String())
		for _, to := range tos {
			s := isa.Suggest(f, to)
			cells = append(cells, s.Preferred[0].String())
		}
		t.Row(cells...)
	}
	t.Note = "cheapest approach per cell; dependencies listed first where applicable (paper Table 3)"
	return t
}

// Fig2 is the intrinsic-overhead study: one table per platform. Cells
// span every (binding, variant, nop-count) triple so the whole figure
// fans out at once.
func Fig2(o Options) []*report.Table {
	iters := o.scale(1500, 300)
	var bindings []pcBinding
	for _, b := range pcBindings() {
		if b.Label == "Kunpeng916 Cross Nodes" {
			continue // the paper's Fig 2 uses one binding per platform
		}
		bindings = append(bindings, b)
	}
	nops := []int{10, 30, 50}
	variants := absmodel.Figure2Variants()
	nV, nN := len(variants), len(nops)
	vals := cellMap(o, len(bindings)*nV*nN, func(k int) float64 {
		b := bindings[k/(nV*nN)]
		v := variants[k/nN%nV]
		n := nops[k%nN]
		return absmodel.Run(absmodel.Config{
			Plat: b.Plat, Cores: [2]topo.CoreID{b.Prod, b.Cons},
			Pattern: absmodel.NoMem, Variant: v, Nops: n,
			Iters: iters, Seed: o.seed(),
		}).Throughput()
	})
	var out []*report.Table
	for bi, b := range bindings {
		t := report.New(fmt.Sprintf("Figure 2: intrinsic overhead — %s (10^6 loops/s)", b.Label),
			append([]string{"Barrier"}, nopCols(nops)...)...)
		for vi, v := range variants {
			cells := []any{v.Name()}
			for ni := range nops {
				cells = append(cells, vals[(bi*nV+vi)*nN+ni]/1e6)
			}
			t.Row(cells...)
		}
		out = append(out, t)
	}
	return out
}

func nopCols(nops []int) []string {
	cols := make([]string, len(nops))
	for i, n := range nops {
		cols[i] = fmt.Sprintf("%d nops", n)
	}
	return cols
}

// fig3Binding is one subfigure of Figure 3.
type fig3Binding struct {
	Label string
	Plat  *platform.Platform
	Cores [2]topo.CoreID
	Nops  []int
}

func fig3Bindings() []fig3Binding {
	kpS, same := kunpengSame()
	kpC, cross := kunpengCross()
	k960 := platform.Kirin960()
	k970 := platform.Kirin970()
	rpi := platform.RaspberryPi4()
	b960 := k960.Sys.CoresOfClass(topo.Big)
	b970 := k970.Sys.CoresOfClass(topo.Big)
	return []fig3Binding{
		{"(a) Kunpeng916 same node", kpS, same, []int{50, 150, 500}},
		{"(b) Kunpeng916 cross nodes", kpC, cross, []int{300, 500, 700}},
		{"(c) Kirin960 big cluster", k960, [2]topo.CoreID{b960[0], b960[1]}, []int{10, 30, 60}},
		{"(d) Kirin970 big cluster", k970, [2]topo.CoreID{b970[0], b970[1]}, []int{10, 30, 60}},
		{"(e) Raspberry Pi 4", rpi, [2]topo.CoreID{0, 1}, []int{10, 30, 60}},
	}
}

// Fig3 is the two-store model under every binding.
func Fig3(o Options) []*report.Table {
	iters := o.scale(1500, 300)
	bindings := fig3Bindings()
	variants := absmodel.Figure3Variants()
	nV := len(variants)
	nN := len(bindings[0].Nops) // all subfigures sweep three paddings
	vals := cellMap(o, len(bindings)*nV*nN, func(k int) float64 {
		b := bindings[k/(nV*nN)]
		v := variants[k/nN%nV]
		n := b.Nops[k%nN]
		return absmodel.Run(absmodel.Config{
			Plat: b.Plat, Cores: b.Cores, Pattern: absmodel.TwoStores,
			Variant: v, Nops: n, Iters: iters, Seed: o.seed(),
		}).Throughput()
	})
	var out []*report.Table
	for bi, b := range bindings {
		t := report.New(fmt.Sprintf("Figure 3%s: two stores (10^6 loops/s)", b.Label),
			append([]string{"Barrier"}, nopCols(b.Nops)...)...)
		for vi, v := range variants {
			cells := []any{v.Name()}
			for ni := range b.Nops {
				cells = append(cells, vals[(bi*nV+vi)*nN+ni]/1e6)
			}
			t.Row(cells...)
		}
		out = append(out, t)
	}
	return out
}

// Fig4 locates the tipping point and verifies the ½ ratio.
func Fig4(o Options) *report.Table {
	t := report.New("Figure 4: tipping point (DMB full-1 ≈ ½ × DMB full-2)",
		"Binding", "Tipping nops", "full-1 : full-2")
	type bind struct {
		label string
		plat  *platform.Platform
		cores [2]topo.CoreID
	}
	kpS, same := kunpengSame()
	kpC, cross := kunpengCross()
	binds := []bind{
		{"Kunpeng916 same node", kpS, same},
		{"Kunpeng916 cross nodes", kpC, cross},
	}
	// Exported fields: cell results round-trip through the gob-encoded
	// result cache.
	type tip struct {
		Nops  int
		Ratio float64
	}
	tips := cellMap(o, len(binds), func(i int) tip {
		n, r := absmodel.TippingPoint(binds[i].plat, binds[i].cores, 0.95, o.seed())
		return tip{n, r}
	})
	for i, b := range binds {
		t.Row(b.label, tips[i].Nops, tips[i].Ratio)
	}
	t.Note = "paper: ratio 17.90/31.01 ≈ 3.38/6.54 ≈ 1/2 at 150 (same node) / 700 (cross) nops"
	return t
}

// Fig5 is the load+store model cross-node on the server.
func Fig5(o Options) *report.Table {
	iters := o.scale(1500, 300)
	p, cross := kunpengCross()
	nops := []int{300, 500}
	variants := absmodel.Figure5Variants()
	t := report.New("Figure 5: load+store, Kunpeng916 cross nodes (10^6 loops/s)",
		append([]string{"Approach"}, nopCols(nops)...)...)
	vals := cellGrid(o, len(variants), len(nops), func(r, c int) float64 {
		return absmodel.Run(absmodel.Config{
			Plat: p, Cores: cross, Pattern: absmodel.LoadStore,
			Variant: variants[r], Nops: nops[c], Iters: iters, Seed: o.seed(),
		}).Throughput()
	})
	for vi, v := range variants {
		cells := []any{v.Name()}
		for ni := range nops {
			cells = append(cells, vals[vi][ni]/1e6)
		}
		t.Row(cells...)
	}
	return t
}

// Fig6a is the producer-consumer barrier-combo matrix, normalized to
// DMB full - DMB full per binding.
func Fig6a(o Options) *report.Table {
	msgs := o.scale(2000, 400)
	combos := pc.Figure6aCombos()
	cols := []string{"Binding"}
	for _, c := range combos[:6] {
		cols = append(cols, c.Name())
	}
	cols = append(cols, "Ideal")
	t := report.New("Figure 6a: producer-consumer normalized throughput", cols...)
	bindings := pcBindings()
	vals := cellGrid(o, len(bindings), len(combos), func(r, c int) float64 {
		b := bindings[r]
		return pc.Run(pc.Config{Plat: b.Plat, Producer: b.Prod, Consumer: b.Cons,
			Mode: pc.Classic, Combo: combos[c], Messages: msgs, Seed: o.seed()}).Throughput()
	})
	for bi, b := range bindings {
		base := vals[bi][0]
		cells := []any{b.Label}
		for ci := range combos {
			cells = append(cells, vals[bi][ci]/base)
		}
		t.Row(cells...)
	}
	return t
}

// Fig6b compares Pilot with the best combo, Theoretical and Ideal.
func Fig6b(o Options) *report.Table {
	msgs := o.scale(2000, 400)
	t := report.New("Figure 6b: Pilot in producer-consumer (10^6 msgs/s)",
		"Binding", "DMB ld - DMB st", "Theoretical", "Pilot", "Ideal", "Pilot gain")
	best := pc.Combo{Avail: isa.DMBLd, Publish: isa.DMBSt}
	bindings := pcBindings()
	// Columns: 0 = best combo, 1 = theoretical, 2 = pilot, 3 = ideal.
	vals := cellGrid(o, len(bindings), 4, func(r, c int) float64 {
		b := bindings[r]
		cfg := pc.Config{Plat: b.Plat, Producer: b.Prod, Consumer: b.Cons,
			Messages: msgs, Seed: o.seed()}
		switch c {
		case 0:
			cfg.Mode, cfg.Combo = pc.Classic, best
		case 1:
			cfg.Mode, cfg.Combo = pc.Theoretical, pc.Combo{Avail: isa.DMBLd}
		case 2:
			cfg.Mode = pc.Pilot
		default:
			cfg.Mode = pc.Classic
		}
		return pc.Run(cfg).Throughput()
	})
	for bi, b := range bindings {
		orig, theo, pil, ideal := vals[bi][0], vals[bi][1], vals[bi][2], vals[bi][3]
		t.Row(b.Label, orig/1e6, theo/1e6, pil/1e6, ideal/1e6,
			fmt.Sprintf("+%.0f%%", (pil/orig-1)*100))
	}
	t.Note = "paper gains: +62% / +363% / +75% / +74% / +24%"
	return t
}

// Fig6c sweeps the batched message size.
func Fig6c(o Options) *report.Table {
	msgs := o.scale(1200, 300)
	sizes := []int{1, 2, 4, 8, 16, 32}
	cols := []string{"Binding"}
	for _, s := range sizes {
		cols = append(cols, fmt.Sprintf("%dx8B", s))
	}
	t := report.New("Figure 6c: Pilot speedup vs batched message size", cols...)
	best := pc.Combo{Avail: isa.DMBLd, Publish: isa.DMBSt}
	bindings := pcBindings()
	nS := len(sizes)
	// Cell layout: (binding × size) rows, columns 0 = classic best
	// combo, 1 = Pilot.
	vals := cellGrid(o, len(bindings)*nS, 2, func(r, c int) float64 {
		b := bindings[r/nS]
		s := sizes[r%nS]
		cfg := pc.Config{Plat: b.Plat, Producer: b.Prod, Consumer: b.Cons,
			Messages: msgs, Batch: s, Seed: o.seed()}
		if c == 0 {
			cfg.Mode, cfg.Combo = pc.Classic, best
		} else {
			cfg.Mode = pc.Pilot
		}
		return pc.Run(cfg).Throughput()
	})
	for bi, b := range bindings {
		cells := []any{b.Label}
		for si := range sizes {
			row := vals[bi*nS+si]
			cells = append(cells, row[1]/row[0])
		}
		t.Row(cells...)
	}
	t.Note = "speedup of Pilot over DMB ld - DMB st; declines as slices share one barrier"
	return t
}

// Fig6d is the dedup pipeline comparison.
func Fig6d(o Options) *report.Table {
	t := report.New("Figure 6d: dedup normalized compress speed",
		"Workload", "Q", "RB", "RB-P")
	workloads := dedup.Workloads()
	if o.Quick {
		for i := range workloads {
			workloads[i].Chunks /= 4
		}
	}
	buffers := []dedup.Buffer{dedup.Q, dedup.RB, dedup.RBP}
	vals := cellGrid(o, len(workloads), len(buffers), func(r, c int) float64 {
		return dedup.Run(dedup.Config{Plat: platform.Kunpeng916(), Buffer: buffers[c],
			W: workloads[r], Seed: o.seed()}).Throughput()
	})
	for wi, w := range workloads {
		q, rb, rbp := vals[wi][0], vals[wi][1], vals[wi][2]
		t.Row(w.Name, 1.0, rb/q, rbp/q)
	}
	t.Note = "paper: RB sometimes below Q; RB-P ≈ +10% over Q"
	return t
}

// Fig7a is the ticket-lock unlock-barrier study.
func Fig7a(o Options) *report.Table {
	ops := o.scale(300, 80)
	t := report.New("Figure 7a: ticket lock, unlock barrier (normalized)",
		"Platform", "Globals", "Normal", "Removed")
	plats := platform.All()
	globals := []int{0, 1, 2}
	nG := len(globals)
	// Cell layout: (platform × globals) rows, columns 0 = normal
	// unlock barrier, 1 = removed (dependency).
	vals := cellGrid(o, len(plats)*nG, 2, func(r, c int) float64 {
		p := plats[r/nG]
		threads := 12
		if p.Sys.NumCores() <= 8 {
			threads = 4
		}
		bar := isa.DMBSt
		if c == 1 {
			bar = isa.AddrDep
		}
		return locks.Bench(locks.BenchConfig{Plat: clonePlat(p), Kind: locks.Ticket,
			Threads: threads, Ops: ops, Globals: globals[r%nG],
			UnlockBarrier: bar, Seed: o.seed()}).Throughput()
	})
	for pi, p := range plats {
		for gi, g := range globals {
			row := vals[pi*nG+gi]
			t.Row(p.Name, g, 1.0, row[1]/row[0])
		}
	}
	t.Note = "Removed = publication barrier replaced by a dependency; paper sees up to +23% at 2 globals"
	return t
}

// clonePlat returns a fresh platform value (Bench mutates nothing, but
// machines must not share state).
func clonePlat(p *platform.Platform) *platform.Platform {
	return platform.ByName(p.Name)
}

// Fig7b is the delegation-lock barrier-combo study.
func Fig7b(o Options) *report.Table {
	ops := o.scale(300, 60)
	combos := []struct {
		label string
		x, y  isa.Barrier
		noY   bool
	}{
		{"DMB full-DMB st", isa.DMBFull, isa.DMBSt, false},
		{"DMB ld-DMB st", isa.DMBLd, isa.DMBSt, false},
		{"LDAR-DMB st", isa.LDAR, isa.DMBSt, false},
		{"CTRL+ISB-DMB st", isa.CtrlISB, isa.DMBSt, false},
		{"ADDR-DMB st", isa.AddrDep, isa.DMBSt, false},
		{"LDAR-No Barrier", isa.LDAR, isa.AddrDep, true},
	}
	t := report.New("Figure 7b: delegation lock barrier combos (normalized, FFWD, 1 global counter)",
		"Combo", "FFWD", "DSMSynch")
	kinds := []locks.Kind{locks.FFWD, locks.DSMSynch}
	vals := cellGrid(o, len(combos), len(kinds), func(r, c int) float64 {
		return locks.Bench(locks.BenchConfig{Plat: platform.Kunpeng916(), Kind: kinds[c],
			Threads: o.threads(), Ops: ops, ServeBarriers: [2]isa.Barrier{combos[r].x, combos[r].y},
			Seed: o.seed()}).Throughput()
	})
	baseF, baseD := vals[0][0], vals[0][1]
	for i, c := range combos {
		t.Row(c.label, vals[i][0]/baseF, vals[i][1]/baseD)
	}
	t.Note = "paper: weak X ≈ +20%; removing Y ≈ +22% more (close to Ideal); FFWD's batching softens both"
	return t
}

// Fig7c sweeps contention for the five lock variants.
func Fig7c(o Options) *report.Table {
	ops := o.scale(150, 40)
	intervals := trim(o, []int{0, 128, 1280, 12800, 128000})
	cols := []string{"Lock"}
	for _, iv := range intervals {
		cols = append(cols, fmt.Sprintf("%d nops", iv))
	}
	t := report.New("Figure 7c: lock throughput vs contention (10^6 CS/s)", cols...)
	kinds := []locks.Kind{locks.Ticket, locks.DSMSynch, locks.DSMSynchPilot,
		locks.FFWD, locks.FFWDPilot}
	vals := cellGrid(o, len(kinds), len(intervals), func(r, c int) float64 {
		return locks.Bench(locks.BenchConfig{Plat: platform.Kunpeng916(), Kind: kinds[r],
			Threads: o.threads(), Ops: ops, Interval: intervals[c], Seed: o.seed()}).Throughput()
	})
	for ki, k := range kinds {
		cells := []any{k.String()}
		for ii := range intervals {
			cells = append(cells, vals[ki][ii]/1e6)
		}
		t.Row(cells...)
	}
	t.Note = "paper: +56% (DSynch-P) and +32% (FFWD-P) at high contention; parity at low"
	return t
}

// Fig8a compares locks on queue and stack.
func Fig8a(o Options) *report.Table {
	rounds := o.scale(60, 20)
	t := report.New("Figure 8a: queue & stack (10^6 ops/s)",
		"Structure", "Ticket", "DSynch", "DSynch-P", "FFWD", "FFWD-P")
	structs := []ds.Structure{ds.Queue, ds.Stack}
	kinds := []locks.Kind{locks.Ticket, locks.DSMSynch, locks.DSMSynchPilot,
		locks.FFWD, locks.FFWDPilot}
	vals := cellGrid(o, len(structs), len(kinds), func(r, c int) float64 {
		return ds.Run(ds.Config{Plat: platform.Kunpeng916(), Kind: kinds[c], Struct: structs[r],
			Threads: o.threads(), Rounds: rounds, Seed: o.seed()}).Throughput()
	})
	for si, s := range structs {
		cells := []any{s.String()}
		for ki := range kinds {
			cells = append(cells, vals[si][ki]/1e6)
		}
		t.Row(cells...)
	}
	t.Note = "paper: Pilot +20/26% (queue), +30/16% (stack) for DSynch/FFWD"
	return t
}

// Fig8b sweeps the sorted-list preload.
func Fig8b(o Options) *report.Table {
	rounds := o.scale(10, 6)
	preloads := []int{0, 50, 100, 200, 300}
	if o.Quick {
		preloads = []int{0, 50, 300}
	}
	cols := []string{"Lock"}
	for _, p := range preloads {
		cols = append(cols, fmt.Sprintf("%d", p))
	}
	t := report.New("Figure 8b: sorted linked list vs preload (10^6 ops/s)", cols...)
	kinds := []locks.Kind{locks.Ticket, locks.DSMSynch, locks.DSMSynchPilot,
		locks.FFWD, locks.FFWDPilot}
	vals := cellGrid(o, len(kinds), len(preloads), func(r, c int) float64 {
		return ds.Run(ds.Config{Plat: platform.Kunpeng916(), Kind: kinds[r], Struct: ds.List,
			Threads: o.threads() / 2, Rounds: rounds, Preload: preloads[c], Seed: o.seed()}).Throughput()
	})
	for ki, k := range kinds {
		cells := []any{k.String()}
		for pi := range preloads {
			cells = append(cells, vals[ki][pi]/1e6)
		}
		t.Row(cells...)
	}
	t.Note = "paper: max +55%/+25% (DSynch/FFWD) around 50 preloaded members"
	return t
}

// Fig8c sweeps the hash-table bucket count.
func Fig8c(o Options) *report.Table {
	rounds := o.scale(8, 5)
	buckets := []int{2, 8, 32, 128, 512}
	if o.Quick {
		buckets = []int{2, 32, 256}
	}
	cols := []string{"Lock"}
	for _, b := range buckets {
		cols = append(cols, fmt.Sprintf("%d", b))
	}
	t := report.New("Figure 8c: hash table vs buckets (10^6 ops/s)", cols...)
	kinds := []locks.Kind{locks.Ticket, locks.DSMSynch, locks.DSMSynchPilot,
		locks.FFWD, locks.FFWDPilot}
	vals := cellGrid(o, len(kinds), len(buckets), func(r, c int) float64 {
		return ds.Run(ds.Config{Plat: platform.Kunpeng916(), Kind: kinds[r], Struct: ds.HashTable,
			Threads: o.threads() / 2, Rounds: rounds, Preload: 512, Buckets: buckets[c],
			Seed: o.seed()}).Throughput()
	})
	for ki, k := range kinds {
		cells := []any{k.String()}
		for bi := range buckets {
			cells = append(cells, vals[ki][bi]/1e6)
		}
		t.Row(cells...)
	}
	t.Note = "paper: max +61% (DSynch, 32 buckets), +24% (FFWD, 16); gain fades with more buckets"
	return t
}

// InPlaceLocks is an extension beyond the paper's figures: the
// in-place lock family (TAS, ticket, MCS, CLH) plus the combining
// locks under one contention sweep, all on the server model. It shows
// where each design's barrier pattern bites.
func InPlaceLocks(o Options) *report.Table {
	ops := o.scale(120, 40)
	intervals := trim(o, []int{0, 1280, 128000})
	cols := []string{"Lock"}
	for _, iv := range intervals {
		cols = append(cols, fmt.Sprintf("%d nops", iv))
	}
	t := report.New("Extension: lock families vs contention (10^6 CS/s, Kunpeng916)", cols...)
	kinds := []locks.Kind{locks.TAS, locks.Ticket, locks.MCS, locks.CLH,
		locks.FC, locks.FCPilot, locks.DSMSynch, locks.DSMSynchPilot}
	vals := cellGrid(o, len(kinds), len(intervals), func(r, c int) float64 {
		return locks.Bench(locks.BenchConfig{Plat: platform.Kunpeng916(), Kind: kinds[r],
			Threads: o.threads(), Ops: ops, Interval: intervals[c], Seed: o.seed()}).Throughput()
	})
	for ki, k := range kinds {
		cells := []any{k.String()}
		for ii := range intervals {
			cells = append(cells, vals[ki][ii]/1e6)
		}
		t.Row(cells...)
	}
	t.Note = "queue locks spin locally; combining locks win at high contention; Pilot lifts the combiners further"
	return t
}

// TSOPorting is the porting-cost extension the paper's introduction
// motivates: the same producer-consumer program on an x86-style TSO
// machine needs no explicit barriers; on the weakly-ordered machine it
// needs the Figure-6a barrier pairs — unless Pilot removes them.
func TSOPorting(o Options) *report.Table {
	msgs := o.scale(2000, 400)
	t := report.New("Extension: porting cost, TSO (x86) vs WMM (ARM) producer-consumer (10^6 msgs/s)",
		"Binding", "TSO no barriers", "WMM best combo", "WMM Pilot", "barrier tax", "after Pilot")
	best := pc.Combo{Avail: isa.DMBLd, Publish: isa.DMBSt}
	bindings := pcBindings()
	// Columns: 0 = TSO no barriers, 1 = WMM best combo, 2 = WMM Pilot.
	vals := cellGrid(o, len(bindings), 3, func(r, c int) float64 {
		b := bindings[r]
		cfg := pc.Config{Plat: b.Plat, Producer: b.Prod, Consumer: b.Cons,
			Messages: msgs, Seed: o.seed()}
		switch c {
		case 0:
			cfg.Mode, cfg.TSO = pc.Classic, true
		case 1:
			cfg.Mode, cfg.Combo = pc.Classic, best
		default:
			cfg.Mode = pc.Pilot
		}
		return pc.Run(cfg).Throughput()
	})
	for bi, b := range bindings {
		tso, wmm, pil := vals[bi][0], vals[bi][1], vals[bi][2]
		t.Row(b.Label, tso/1e6, wmm/1e6, pil/1e6,
			fmt.Sprintf("%.0f%%", (tso/wmm-1)*100),
			fmt.Sprintf("%.0f%%", (tso/pil-1)*100))
	}
	t.Note = "the WMM 'barrier tax' a port pays, and how much of it Pilot refunds"
	return t
}

// MPMCFanIn is the §4.1 extension: multiple producers feeding one
// consumer through a lock-protected shared ring versus per-producer
// Pilot channels.
func MPMCFanIn(o Options) *report.Table {
	msgs := o.scale(400, 120)
	t := report.New("Extension: multi-producer fan-in (10^6 msgs/s, Kunpeng916)",
		"Producers", "Locked ring", "Pilot fan-in", "speedup")
	producers := trim(o, []int{2, 4, 8, 16})
	modes := []pc.MPMCMode{pc.LockedRing, pc.PilotFanIn}
	vals := cellGrid(o, len(producers), len(modes), func(r, c int) float64 {
		return pc.RunMPMC(pc.MPMCConfig{Plat: platform.Kunpeng916(), Producers: producers[r],
			Messages: msgs, Mode: modes[c], Seed: o.seed()}).Throughput()
	})
	for ni, n := range producers {
		lr, pf := vals[ni][0], vals[ni][1]
		t.Row(n, lr/1e6, pf/1e6, fmt.Sprintf("%.2fx", pf/lr))
	}
	t.Note = "per-pair Pilot channels avoid both the lock and the publication barriers"
	return t
}

// SeqlockVsPilot is the publication extension: a single writer
// republishing an N-word record through a classic seqlock (two DMB st
// per update) versus per-slice Pilot (no barriers), same-node and
// cross-node on the server model.
func SeqlockVsPilot(o Options) *report.Table {
	updates := o.scale(600, 200)
	t := report.New("Extension: seqlock vs Pilot publication (snapshots/s, 10^6)",
		"Binding", "Words", "Seqlock", "Pilot", "ratio")
	kp := platform.Kunpeng916()
	bindings := []struct {
		label          string
		writer, reader topo.CoreID
	}{
		{"same node", kp.Sys.NodeCores(0)[0], kp.Sys.NodeCores(0)[4]},
		{"cross nodes", kp.Sys.NodeCores(0)[0], kp.Sys.NodeCores(1)[0]},
	}
	words := trim(o, []int{1, 4, 8})
	nW := len(words)
	modes := []pc.PubMode{pc.Seqlock, pc.PilotBatch}
	vals := cellGrid(o, len(bindings)*nW, len(modes), func(r, c int) float64 {
		b := bindings[r/nW]
		return pc.RunPub(pc.PubConfig{Plat: platform.Kunpeng916(), Writer: b.writer,
			Reader: b.reader, Mode: modes[c], Words: words[r%nW], Updates: updates,
			Gap: 3000, Seed: o.seed()}).SnapshotRate()
	})
	for bi, b := range bindings {
		for wi, w := range words {
			row := vals[bi*nW+wi]
			t.Row(b.label, w, row[0]/1e6, row[1]/1e6, fmt.Sprintf("%.2fx", row[1]/row[0]))
		}
	}
	t.Note = "torn-free both ways; the seqlock's fenced write window also stalls readers into retries, which Pilot avoids entirely"
	return t
}

// A64CrossCheck runs the two-store abstracted model both as the Go
// closure body and as the paper's verbatim Algorithm-1 assembly
// (internal/a64) and reports the agreement — a self-validation table.
func A64CrossCheck(o Options) *report.Table {
	iters := o.scale(1200, 400)
	p, cores := kunpengSame()
	t := report.New("Validation: Algorithm-1 assembly vs Go-closure model (Mloops/s)",
		"Variant", "closure", "a64", "ratio")
	variants := []absmodel.Variant{
		{Barrier: isa.None},
		{Barrier: isa.DMBFull, Loc: absmodel.Loc1},
		{Barrier: isa.DMBFull, Loc: absmodel.Loc2},
		{Barrier: isa.DMBSt, Loc: absmodel.Loc1},
		{Barrier: isa.DSBFull, Loc: absmodel.Loc1},
		{Barrier: isa.STLR},
	}
	// Exported fields (and the error flattened to its string) so cell
	// results round-trip through the gob-encoded result cache.
	type outcome struct {
		Thr float64
		Err string
	}
	// Columns: 0 = Go closure, 1 = a64 assembly.
	vals := cellGrid(o, len(variants), 2, func(r, c int) outcome {
		cfg := absmodel.Config{Plat: p, Cores: cores, Pattern: absmodel.TwoStores,
			Variant: variants[r], Nops: 60, Iters: iters, Seed: o.seed()}
		if c == 0 {
			return outcome{Thr: absmodel.Run(cfg).Throughput()}
		}
		res, err := absmodel.RunA64(cfg)
		if err != nil {
			return outcome{Err: err.Error()}
		}
		return outcome{Thr: res.Throughput()}
	})
	for vi, v := range variants {
		cl, asm := vals[vi][0].Thr, vals[vi][1]
		if asm.Err != "" {
			t.Row(v.Name(), cl/1e6, "error", asm.Err)
			continue
		}
		t.Row(v.Name(), cl/1e6, asm.Thr/1e6, fmt.Sprintf("%.2f", asm.Thr/cl))
	}
	t.Note = "the a64 path executes mov/add/cmp per loop that the closure charges as plain nops; ratios near 1 validate both encodings"
	return t
}

// Fig8d is the floorplan benchmark.
func Fig8d(o Options) *report.Table {
	t := report.New("Figure 8d: BOTS floorplan normalized execution time",
		"Input", "Ticket", "DSynch", "DSynch-P", "optimum found")
	inputs := floorplan.Inputs()
	if o.Quick && len(inputs) > 1 {
		inputs = inputs[:1]
	}
	kinds := []locks.Kind{locks.Ticket, locks.DSMSynch, locks.DSMSynchPilot}
	// The table only consumes cycles and validity, so the cell value is
	// that pair rather than the full (cache-unfriendly) floorplan.Result.
	type fpCell struct {
		Cycles float64
		Valid  bool
	}
	vals := cellGrid(o, len(inputs), len(kinds), func(r, c int) fpCell {
		res := floorplan.Run(floorplan.Config{Plat: platform.Kunpeng916(),
			Kind: kinds[c], In: inputs[r], Threads: 8, Seed: o.seed()})
		return fpCell{Cycles: res.Cycles, Valid: res.Valid}
	})
	for ii, in := range inputs {
		tick, dsy, dsp := vals[ii][0], vals[ii][1], vals[ii][2]
		okAll := tick.Valid && dsy.Valid && dsp.Valid
		t.Row(in.Name, tick.Cycles/dsy.Cycles, 1.0, dsp.Cycles/dsy.Cycles, okAll)
	}
	t.Note = "execution time relative to DSynch (lower is better); paper: Pilot saves ≤ ~4%"
	return t
}
