package figures

import (
	"armbar/internal/absmodel"
	"armbar/internal/explore"
	"armbar/internal/platform"
	"armbar/internal/report"
	"armbar/internal/sim"
)

// FenceMin is the mechanical counterpart of the paper's hand
// derivation: for every litmus shape under both memory models, the
// reorder-bounded explorer searches the barrier-placement lattice for
// all minimal safe placements, the verdicts are cross-checked against
// absmodel's closed-form fence requirements over the whole lattice,
// and the simulator samples the empty, naive, and minimal placements
// to confirm it observes nothing the explorer cannot reach. The chan
// rows reproduce the Pilot removal: the availability DMB drops out of
// the minimal set while publish and consume stay.
func FenceMin(o Options) *report.Table {
	runs := o.scale(200, 50)
	shapes := explore.All()
	modes := []sim.Mode{sim.WMM, sim.TSO}

	type cell struct {
		Naive   bool
		Minimal string
		States  int
		Model   bool
		Sim     string
	}
	vals := cellGrid(o, len(shapes), len(modes), func(r, c int) cell {
		s, mode := shapes[r], modes[c]
		rep := explore.Minimize(s, mode, explore.DefaultBound)
		out := cell{
			Naive:   rep.NaiveSafe,
			Minimal: rep.MinimalDescribe(s),
			States:  rep.States,
			Model:   latticeAgreesModel(s, mode),
			Sim:     "agree",
		}
		p := platform.Kunpeng916()
		pls := map[explore.Placement]bool{0: true, explore.Naive(s): true}
		for _, pl := range rep.Minimal {
			pls[pl] = true
		}
		// Map-range feeding only an error check, not output order.
		for pl := range pls {
			if err := explore.Agreement(p, s, pl, mode, runs, o.seed()); err != nil {
				out.Sim = "DISAGREE"
			}
		}
		return out
	})

	t := report.New("Extension: mechanical fence minimization (explorer vs model vs simulator)",
		"Shape", "Mode", "Slots", "NaiveSafe", "Minimal", "States", "Model", "Sim")
	for r, s := range shapes {
		for c, mode := range modes {
			v := vals[r][c]
			t.Row(s.Name, mode.String(), len(s.Slots), v.Naive, v.Minimal, v.States, v.Model, v.Sim)
		}
	}
	t.Note = "Minimal lists every minimal safe barrier placement; Model checks the closed-form absmodel verdict across the whole lattice; Sim samples empty/naive/minimal placements against explorer reachability; chan's minimal set {publish consume} is the Pilot removal, machine-derived"
	return t
}

// latticeAgreesModel mirrors armvet fencevet's cross-check: every
// placement's explorer verdict must match the formula oracle.
func latticeAgreesModel(s *explore.Shape, mode sim.Mode) bool {
	if !absmodel.KnownShape(s.Name) {
		return false
	}
	for pl := explore.Placement(0); pl <= explore.Naive(s); pl++ {
		got := explore.Explore(s, pl, mode, explore.DefaultBound).Safe()
		want := absmodel.FenceSafe(s.Name, explore.SlotBarriers(s, pl), mode)
		if got != want {
			return false
		}
	}
	return true
}
