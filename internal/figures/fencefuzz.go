package figures

import (
	"armbar/internal/explore"
	"armbar/internal/platform"
	"armbar/internal/report"
)

// FenceFuzz is the fuzzing extension of fencemin: instead of the
// twelve hand-written shapes, a seeded corpus of generated litmus
// shapes — classic hazard skeletons with randomized values, barrier
// kinds drawn from the full DMB/DSB/dependency grammar, and
// verdict-neutral noise — is pushed through three independent
// oracles: the packed explorer (exact reachability over every
// placement of every shape, both memory modes), absmodel's
// generalized closed-form clauses, and sim sampling containment. One
// row per skeleton family aggregates its share of the corpus; Agree
// must read true on every row.
func FenceFuzz(o Options) *report.Table {
	n := o.scale(220, 44)
	runs := o.scale(6, 2)
	fams := explore.Families()
	p := platform.Kunpeng916()

	type cell struct {
		Cases    int
		Explored int
		States   int
		Bad      int
		FirstErr string
	}
	// One cell per skeleton family: corpus index i instantiates
	// family i mod len(fams), so the family's slice of the corpus is
	// a stride.
	vals := cellMap(o, len(fams), func(fi int) cell {
		var c cell
		for i := fi; i < n; i += len(fams) {
			fc := explore.CheckCase(explore.GenOne(o.seed(), i), runs, p, o.seed())
			c.Cases++
			c.Explored += fc.Explored
			c.States += fc.States
			if fc.Err != "" {
				c.Bad++
				if c.FirstErr == "" {
					c.FirstErr = fc.Err
				}
			}
		}
		return c
	})

	t := report.New("Extension: three-oracle litmus fuzzing (explorer vs model vs simulator)",
		"Family", "Cases", "Placements", "States", "Disagree", "Agree")
	for fi, fam := range fams {
		v := vals[fi]
		t.Row(fam, v.Cases, v.Explored, v.States, v.Bad, v.Bad == 0)
	}
	t.Note = "Seeded corpus of generated litmus shapes (randomized values, slot barrier kinds, verdict-neutral noise); every placement of every shape explored under WMM and TSO and matched against absmodel's generalized fence clauses, with sim sampling contained in explorer reachability; Disagree counts shapes where any oracle diverged"
	return t
}
