package scenario

import (
	"strings"
	"testing"
)

const mpSpec = `{
  "platform": "Kunpeng916",
  "seed": 3,
  "vars": ["data", "flag"],
  "threads": [
    {"core": 0, "ops": [
      {"op": "store", "var": "data", "value": 23},
      {"op": "barrier", "barrier": "DMB st"},
      {"op": "store", "var": "flag", "value": 1}
    ]},
    {"core": 32, "ops": [
      {"op": "spin_eq", "var": "flag", "value": 1},
      {"op": "barrier", "barrier": "DMB ld"},
      {"op": "load", "var": "data"}
    ]}
  ]
}`

func TestParseAndRunMessagePassing(t *testing.T) {
	spec, err := Parse(strings.NewReader(mpSpec))
	if err != nil {
		t.Fatal(err)
	}
	res, err := spec.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Final["data"] != 23 || res.Final["flag"] != 1 {
		t.Fatalf("final state wrong: %v", res.Final)
	}
	if res.Cycles <= 0 {
		t.Fatal("no cycles elapsed")
	}
	if len(res.Threads) != 2 {
		t.Fatalf("thread stats count %d", len(res.Threads))
	}
	if res.Threads[0].Stores == 0 || res.Threads[1].Loads == 0 {
		t.Fatalf("stats not collected: %+v", res.Threads)
	}
}

func TestValidationErrors(t *testing.T) {
	cases := []struct {
		name string
		json string
		want string
	}{
		{"unknown platform", `{"platform":"nope","vars":[],"threads":[{"core":0,"ops":[]}]}`, "unknown platform"},
		{"bad mode", `{"platform":"Kunpeng916","mode":"SC","vars":[],"threads":[{"core":0,"ops":[]}]}`, "mode must be"},
		{"no threads", `{"platform":"Kunpeng916","vars":[]}`, "no threads"},
		{"bad core", `{"platform":"Kunpeng916","vars":[],"threads":[{"core":99,"ops":[]}]}`, "out of range"},
		{"unknown var", `{"platform":"Kunpeng916","vars":["x"],"threads":[{"core":0,"ops":[{"op":"load","var":"y"}]}]}`, "unknown var"},
		{"unknown barrier", `{"platform":"Kunpeng916","vars":[],"threads":[{"core":0,"ops":[{"op":"barrier","barrier":"MFENCE"}]}]}`, "unknown barrier"},
		{"unknown op", `{"platform":"Kunpeng916","vars":[],"threads":[{"core":0,"ops":[{"op":"jump"}]}]}`, "unknown op"},
		{"bad nops", `{"platform":"Kunpeng916","vars":[],"threads":[{"core":0,"ops":[{"op":"nops"}]}]}`, "needs n > 0"},
	}
	for _, c := range cases {
		spec, err := Parse(strings.NewReader(c.json))
		if err != nil {
			t.Fatalf("%s: parse: %v", c.name, err)
		}
		err = spec.Validate()
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error = %v, want containing %q", c.name, err, c.want)
		}
	}
}

func TestUnknownFieldRejected(t *testing.T) {
	_, err := Parse(strings.NewReader(`{"platform":"Kunpeng916","typo":1}`))
	if err == nil {
		t.Fatal("unknown field should fail parsing")
	}
}

func TestAtomicsAndSpins(t *testing.T) {
	spec, err := Parse(strings.NewReader(`{
	  "platform": "Kirin960",
	  "seed": 5,
	  "vars": ["ctr", "turn"],
	  "init": {"turn": 1},
	  "threads": [
	    {"core": 0, "loop": 50, "ops": [
	      {"op": "spin_eq", "var": "turn", "value": 1},
	      {"op": "fetchadd", "var": "ctr", "value": 1},
	      {"op": "swap", "var": "turn", "value": 2}
	    ]},
	    {"core": 1, "loop": 50, "ops": [
	      {"op": "spin_eq", "var": "turn", "value": 2},
	      {"op": "fetchadd", "var": "ctr", "value": 1},
	      {"op": "swap", "var": "turn", "value": 1}
	    ]}
	  ]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	res, err := spec.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Final["ctr"] != 100 {
		t.Fatalf("alternating counter = %d, want 100", res.Final["ctr"])
	}
}

func TestTSOMode(t *testing.T) {
	spec, err := Parse(strings.NewReader(`{
	  "platform": "Kunpeng916", "mode": "TSO", "seed": 7,
	  "vars": ["x"],
	  "threads": [{"core": 0, "loop": 10, "ops": [{"op":"store","var":"x","value":9}]}]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	res, err := spec.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Final["x"] != 9 {
		t.Fatalf("x = %d", res.Final["x"])
	}
}
