// Package scenario runs user-described workloads on the simulator: a
// JSON document names a platform, declares shared variables, and gives
// each thread a looped op sequence (loads, stores, barriers, atomics,
// spins, padding). It exists so the characterization methodology can
// be applied to workloads beyond the paper's, without writing Go.
package scenario

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"armbar/internal/isa"
	"armbar/internal/platform"
	"armbar/internal/prog"
	"armbar/internal/sim"
	"armbar/internal/topo"
)

// Op is one step of a thread's loop.
type Op struct {
	// Op selects the action: load, loadacq, loadacqpc, store, storerel,
	// fetchadd, swap, cas, barrier, nops, work, spin_eq, spin_ne,
	// spin_ge.
	Op string `json:"op"`
	// Var names the shared variable for memory ops.
	Var string `json:"var,omitempty"`
	// Value is the stored/added/compared value (and spin target).
	Value uint64 `json:"value,omitempty"`
	// New is CAS's replacement value.
	New uint64 `json:"new,omitempty"`
	// Barrier names the order-preserving approach for op=barrier
	// ("DMB st", "DSB full", "ADDR DEP", ...).
	Barrier string `json:"barrier,omitempty"`
	// N is the count for nops, or cycles for work.
	N int `json:"n,omitempty"`
}

// ThreadSpec is one simulated thread.
type ThreadSpec struct {
	Core int  `json:"core"`
	Loop int  `json:"loop"` // iterations of Ops (default 1)
	Ops  []Op `json:"ops"`
}

// Spec is the whole scenario.
type Spec struct {
	Platform string            `json:"platform"` // platform.ByName key
	Mode     string            `json:"mode"`     // "WMM" (default) or "TSO"
	Seed     int64             `json:"seed"`
	Vars     []string          `json:"vars"`
	Init     map[string]uint64 `json:"init,omitempty"`
	Threads  []ThreadSpec      `json:"threads"`
}

// Result summarizes one scenario run.
type Result struct {
	Cycles  float64
	Seconds float64
	Threads []sim.ThreadStats
	Final   map[string]uint64
	Stats   sim.Stats
}

// Parse reads a Spec from JSON.
func Parse(r io.Reader) (*Spec, error) {
	var s Spec
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	return &s, nil
}

// barrierByName resolves the paper's legend names.
func barrierByName(name string) (isa.Barrier, error) {
	for _, b := range isa.All() {
		if b.String() == name {
			return b, nil
		}
	}
	return 0, fmt.Errorf("scenario: unknown barrier %q", name)
}

// Validate checks the spec statically.
func (s *Spec) Validate() error {
	p := platform.ByName(s.Platform)
	if p == nil {
		return fmt.Errorf("scenario: unknown platform %q", s.Platform)
	}
	if s.Mode != "" && s.Mode != "WMM" && s.Mode != "TSO" {
		return fmt.Errorf("scenario: mode must be WMM or TSO, got %q", s.Mode)
	}
	vars := map[string]bool{}
	for _, v := range s.Vars {
		vars[v] = true
	}
	if len(s.Threads) == 0 {
		return fmt.Errorf("scenario: no threads")
	}
	for ti, th := range s.Threads {
		if th.Core < 0 || th.Core >= p.Sys.NumCores() {
			return fmt.Errorf("scenario: thread %d core %d out of range [0,%d)",
				ti, th.Core, p.Sys.NumCores())
		}
		for oi, op := range th.Ops {
			switch op.Op {
			case "load", "loadacq", "loadacqpc", "store", "storerel",
				"fetchadd", "swap", "cas", "spin_eq", "spin_ne", "spin_ge":
				if !vars[op.Var] {
					return fmt.Errorf("scenario: thread %d op %d: unknown var %q", ti, oi, op.Var)
				}
			case "barrier":
				if _, err := barrierByName(op.Barrier); err != nil {
					return fmt.Errorf("thread %d op %d: %w", ti, oi, err)
				}
			case "nops", "work":
				if op.N <= 0 {
					return fmt.Errorf("scenario: thread %d op %d: %s needs n > 0", ti, oi, op.Op)
				}
			default:
				return fmt.Errorf("scenario: thread %d op %d: unknown op %q", ti, oi, op.Op)
			}
		}
	}
	return nil
}

// Run executes the scenario. An optional tracer receives every event.
func (s *Spec) Run(tr sim.Tracer) (*Result, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	p := platform.ByName(s.Platform)
	mode := sim.WMM
	if s.Mode == "TSO" {
		mode = sim.TSO
	}
	m := sim.New(sim.Config{Plat: p, Mode: mode, Seed: s.Seed})
	if tr != nil {
		m.SetTracer(tr)
	}
	addr := make(map[string]uint64, len(s.Vars))
	for _, v := range s.Vars {
		addr[v] = m.Alloc(1)
	}
	// Iterate Init in sorted-name order: with several unknown vars the
	// reported one must not depend on map iteration order (determvet).
	initVars := make([]string, 0, len(s.Init))
	for v := range s.Init {
		initVars = append(initVars, v)
	}
	sort.Strings(initVars)
	for _, v := range initVars {
		a, ok := addr[v]
		if !ok {
			return nil, fmt.Errorf("scenario: init of unknown var %q", v)
		}
		m.SetInitial(a, s.Init[v])
	}

	compiled := sim.EngineDefault.Resolve() == sim.EngineCompiled
	stats := make([]sim.ThreadStats, len(s.Threads))
	for ti, th := range s.Threads {
		ti, th := ti, th
		loops := th.Loop
		if loops <= 0 {
			loops = 1
		}
		var handle *sim.Thread
		if compiled {
			handle = m.SpawnProgram(topo.CoreID(th.Core), compileThread(th, loops, addr, p.Cost.IssueWidth))
		} else {
			handle = m.Spawn(topo.CoreID(th.Core), func(t *sim.Thread) {
				for l := 0; l < loops; l++ {
					for _, op := range th.Ops {
						runOp(t, op, addr)
					}
				}
			})
		}
		defer func() { stats[ti] = handle.Stats() }()
	}
	cycles := m.Run()
	final := make(map[string]uint64, len(addr))
	for v, a := range addr {
		final[v] = m.Directory().Committed(a)
	}
	return &Result{
		Cycles:  cycles,
		Seconds: m.Seconds(cycles),
		Threads: stats,
		Final:   final,
		Stats:   m.Stats(),
	}, nil
}

// spinPadNops is the padding between spin polls, matching runOp's
// interpreted spin loops.
const spinPadNops = 4

// compileThread lowers one thread spec to a micro-op program: var
// names resolve to absolute addresses, barrier names to isa values,
// the loop to a counted loop, and spins to poll/pad/backedge
// triplets. The op sequence matches the interpreted closure op for op.
func compileThread(th ThreadSpec, loops int, addr map[string]uint64, issueWidth float64) *prog.Program {
	b := prog.NewBuilder(issueWidth)
	b.Loop(loops)
	for _, op := range th.Ops {
		a := prog.Abs(addr[op.Var])
		switch op.Op {
		case "load":
			b.Load(a)
		case "loadacq":
			b.LoadAcquire(a)
		case "loadacqpc":
			b.LoadAcquirePC(a)
		case "store":
			b.Store(a, prog.Imm(op.Value))
		case "storerel":
			b.StoreRelease(a, prog.Imm(op.Value))
		case "fetchadd":
			b.FetchAdd(a, prog.Imm(op.Value))
		case "swap":
			b.Swap(a, prog.Imm(op.Value))
		case "cas":
			b.CompareAndSwap(a, op.Value, op.New)
		case "barrier":
			bar, _ := barrierByName(op.Barrier) // Validate vetted the name
			b.Barrier(bar)
		case "nops":
			b.Nops(op.N)
		case "work":
			b.Work(float64(op.N))
		case "spin_eq":
			b.SpinEQ(a, op.Value, spinPadNops)
		case "spin_ne":
			b.SpinNE(a, op.Value, spinPadNops)
		case "spin_ge":
			b.SpinGE(a, op.Value, spinPadNops)
		}
	}
	b.EndLoop()
	return b.MustBuild()
}

// runOp executes one op on a thread.
func runOp(t *sim.Thread, op Op, addr map[string]uint64) {
	a := addr[op.Var]
	switch op.Op {
	case "load":
		t.Load(a)
	case "loadacq":
		t.LoadAcquire(a)
	case "loadacqpc":
		t.LoadAcquirePC(a)
	case "store":
		t.Store(a, op.Value)
	case "storerel":
		t.StoreRelease(a, op.Value)
	case "fetchadd":
		t.FetchAdd(a, op.Value)
	case "swap":
		t.Swap(a, op.Value)
	case "cas":
		t.CompareAndSwap(a, op.Value, op.New)
	case "barrier":
		b, _ := barrierByName(op.Barrier)
		t.Barrier(b)
	case "nops":
		t.Nops(op.N)
	case "work":
		t.Work(float64(op.N))
	case "spin_eq":
		// Wait until the variable equals Value.
		for t.Load(a) != op.Value {
			t.Nops(4)
		}
	case "spin_ne":
		for t.Load(a) == op.Value {
			t.Nops(4)
		}
	case "spin_ge":
		// Wait until the variable reaches Value (epoch-safe: the value
		// may be advanced past the target between polls).
		for t.Load(a) < op.Value {
			t.Nops(4)
		}
	}
}
