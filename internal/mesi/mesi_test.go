package mesi

import (
	"testing"
	"testing/quick"

	"armbar/internal/topo"
)

func sys() *topo.System {
	s := topo.New()
	s.AddCluster(0, topo.Big, 4)
	s.AddCluster(1, topo.Big, 4)
	return s
}

func TestLineOf(t *testing.T) {
	if LineOf(0) != 0 || LineOf(63) != 0 || LineOf(64) != 1 || LineOf(200) != 3 {
		t.Fatal("LineOf boundaries wrong")
	}
}

func TestFetchAndInvalidate(t *testing.T) {
	d := NewDirectory(sys())
	d.SetInitial(100, 7)
	d.Fetch(1, 100, 5)
	if !d.HasValidCopy(1, 100) {
		t.Fatal("fetched copy must be valid")
	}
	d.CommitStore(0, 100, 9, 10, 3)
	cp := d.CopyAt(1, 100)
	if cp == nil || cp.Valid() {
		t.Fatal("remote commit must invalidate the copy")
	}
	if cp.InvalidatedAt != 10 || cp.ProcessAt != 13 {
		t.Fatalf("invalidation times wrong: %+v", cp)
	}
	if v, ok := cp.StaleValue(100); !ok || v != 7 {
		t.Fatalf("stale snapshot = %d ok=%v, want 7", v, ok)
	}
	if d.Committed(100) != 9 {
		t.Fatalf("committed = %d, want 9", d.Committed(100))
	}
	if d.Owner(100) != 0 {
		t.Fatalf("owner = %d, want 0", d.Owner(100))
	}
}

func TestStaleSnapshotKeepsFirstValue(t *testing.T) {
	// Two commits after the fetch: the holder's stale view stays at the
	// value from fetch time, not an intermediate one.
	d := NewDirectory(sys())
	d.SetInitial(0, 1)
	d.Fetch(2, 0, 0)
	d.CommitStore(0, 0, 2, 5, 1)
	d.CommitStore(0, 0, 3, 6, 1)
	if v, _ := d.CopyAt(2, 0).StaleValue(0); v != 1 {
		t.Fatalf("stale value = %d, want the fetch-time 1", v)
	}
}

func TestRMRAndDistance(t *testing.T) {
	d := NewDirectory(sys())
	if d.IsRMR(0, 64) {
		t.Fatal("untouched line is not an RMR")
	}
	d.CommitStore(5, 64, 1, 1, 0) // owner on node 1
	if !d.IsRMR(0, 64) {
		t.Fatal("line owned remotely must be an RMR")
	}
	if got := d.AccessDistance(0, 64); got != topo.CrossNode {
		t.Fatalf("distance = %v, want cross-node", got)
	}
	d.Fetch(0, 64, 2)
	if d.IsRMR(0, 64) {
		t.Fatal("valid local copy is not an RMR")
	}
}

func TestVersionMonotonic(t *testing.T) {
	d := NewDirectory(sys())
	prev := d.Version(0)
	for i := 0; i < 10; i++ {
		d.CommitStore(topo.CoreID(i%3), 0, uint64(i), float64(i), 0)
		if v := d.Version(0); v != prev+1 {
			t.Fatalf("version must bump by one: %d -> %d", prev, v)
		}
		prev = d.Version(0)
	}
}

func TestPrevCommitted(t *testing.T) {
	d := NewDirectory(sys())
	d.SetInitial(8, 5)
	d.CommitStore(0, 8, 6, 10, 0)
	if v, at := d.PrevCommitted(8); v != 5 || at != 10 {
		t.Fatalf("PrevCommitted = (%d,%v), want (5,10)", v, at)
	}
	d.CommitStore(1, 8, 7, 20, 0)
	if v, at := d.PrevCommitted(8); v != 6 || at != 20 {
		t.Fatalf("PrevCommitted = (%d,%v), want (6,20)", v, at)
	}
}

func TestSharersAndDrop(t *testing.T) {
	d := NewDirectory(sys())
	d.Fetch(0, 0, 1)
	d.Fetch(3, 0, 2)
	if got := len(d.Sharers(0)); got != 2 {
		t.Fatalf("sharers = %d, want 2", got)
	}
	d.DropCopy(0, 0)
	if got := len(d.Sharers(0)); got != 1 {
		t.Fatalf("after drop, sharers = %d, want 1", got)
	}
}

func TestPropertySingleOwnerLastWriterWins(t *testing.T) {
	// Property: after any commit sequence, Committed equals the last
	// write and Owner is the last writer.
	f := func(writers []uint8, vals []uint8) bool {
		d := NewDirectory(sys())
		var lastV uint64
		lastW := NoCore
		n := len(writers)
		if len(vals) < n {
			n = len(vals)
		}
		for i := 0; i < n && i < 500; i++ {
			w := topo.CoreID(writers[i] % 8)
			d.CommitStore(w, 128, uint64(vals[i]), float64(i), 0)
			lastV, lastW = uint64(vals[i]), w
		}
		if n == 0 {
			return true
		}
		return d.Committed(128) == lastV && d.Owner(128) == lastW
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
