package mesi

import (
	"testing"
	"testing/quick"

	"armbar/internal/topo"
)

func sys() *topo.System {
	s := topo.New()
	s.AddCluster(0, topo.Big, 4)
	s.AddCluster(1, topo.Big, 4)
	return s
}

func TestLineOf(t *testing.T) {
	if LineOf(0) != 0 || LineOf(63) != 0 || LineOf(64) != 1 || LineOf(200) != 3 {
		t.Fatal("LineOf boundaries wrong")
	}
}

func TestFetchAndInvalidate(t *testing.T) {
	d := NewDirectory(sys())
	d.SetInitial(100, 7)
	d.Fetch(1, 100, 5)
	if !d.HasValidCopy(1, 100) {
		t.Fatal("fetched copy must be valid")
	}
	d.CommitStore(0, 100, 9, 10, 3)
	cp := d.CopyAt(1, 100)
	if cp == nil || cp.Valid() {
		t.Fatal("remote commit must invalidate the copy")
	}
	if cp.InvalidatedAt != 10 || cp.ProcessAt != 13 {
		t.Fatalf("invalidation times wrong: %+v", cp)
	}
	if v, ok := cp.StaleValue(100); !ok || v != 7 {
		t.Fatalf("stale snapshot = %d ok=%v, want 7", v, ok)
	}
	if d.Committed(100) != 9 {
		t.Fatalf("committed = %d, want 9", d.Committed(100))
	}
	if d.Owner(100) != 0 {
		t.Fatalf("owner = %d, want 0", d.Owner(100))
	}
}

func TestStaleSnapshotKeepsFirstValue(t *testing.T) {
	// Two commits after the fetch: the holder's stale view stays at the
	// value from fetch time, not an intermediate one.
	d := NewDirectory(sys())
	d.SetInitial(0, 1)
	d.Fetch(2, 0, 0)
	d.CommitStore(0, 0, 2, 5, 1)
	d.CommitStore(0, 0, 3, 6, 1)
	if v, _ := d.CopyAt(2, 0).StaleValue(0); v != 1 {
		t.Fatalf("stale value = %d, want the fetch-time 1", v)
	}
}

func TestRMRAndDistance(t *testing.T) {
	d := NewDirectory(sys())
	if d.IsRMR(0, 64) {
		t.Fatal("untouched line is not an RMR")
	}
	d.CommitStore(5, 64, 1, 1, 0) // owner on node 1
	if !d.IsRMR(0, 64) {
		t.Fatal("line owned remotely must be an RMR")
	}
	if got := d.AccessDistance(0, 64); got != topo.CrossNode {
		t.Fatalf("distance = %v, want cross-node", got)
	}
	d.Fetch(0, 64, 2)
	if d.IsRMR(0, 64) {
		t.Fatal("valid local copy is not an RMR")
	}
}

func TestVersionMonotonic(t *testing.T) {
	d := NewDirectory(sys())
	prev := d.Version(0)
	for i := 0; i < 10; i++ {
		d.CommitStore(topo.CoreID(i%3), 0, uint64(i), float64(i), 0)
		if v := d.Version(0); v != prev+1 {
			t.Fatalf("version must bump by one: %d -> %d", prev, v)
		}
		prev = d.Version(0)
	}
}

func TestPrevCommitted(t *testing.T) {
	d := NewDirectory(sys())
	d.SetInitial(8, 5)
	d.CommitStore(0, 8, 6, 10, 0)
	if v, at := d.PrevCommitted(8); v != 5 || at != 10 {
		t.Fatalf("PrevCommitted = (%d,%v), want (5,10)", v, at)
	}
	d.CommitStore(1, 8, 7, 20, 0)
	if v, at := d.PrevCommitted(8); v != 6 || at != 20 {
		t.Fatalf("PrevCommitted = (%d,%v), want (6,20)", v, at)
	}
}

func TestSharersAndDrop(t *testing.T) {
	d := NewDirectory(sys())
	d.Fetch(0, 0, 1)
	d.Fetch(3, 0, 2)
	if got := len(d.Sharers(0)); got != 2 {
		t.Fatalf("sharers = %d, want 2", got)
	}
	d.DropCopy(0, 0)
	if got := len(d.Sharers(0)); got != 1 {
		t.Fatalf("after drop, sharers = %d, want 1", got)
	}
}

// bigSys builds a dense 1024-core system (64 clusters of 16 on 4
// nodes), the largest scale-out preset shape, without importing
// platform (which would cycle).
func bigSys() *topo.System {
	s := topo.New()
	for cl := 0; cl < 64; cl++ {
		s.AddCluster(cl/16, topo.Big, 16)
	}
	return s
}

func TestManyCoreSharerBitset(t *testing.T) {
	d := NewDirectory(bigSys())
	// Install sharers across several 64-core words, out of id order.
	cores := []topo.CoreID{1023, 0, 511, 64, 63, 512, 65}
	for i, c := range cores {
		d.Fetch(c, 128, float64(i+1))
	}
	got := d.Sharers(128)
	want := []topo.CoreID{0, 63, 64, 65, 511, 512, 1023}
	if len(got) != len(want) {
		t.Fatalf("sharers = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sharers = %v, want %v (ascending core order)", got, want)
		}
	}
	// Every installed core's copy must be found and valid; absent cores nil.
	for _, c := range want {
		if !d.HasValidCopy(c, 128) {
			t.Fatalf("core %d lost its copy", c)
		}
	}
	if d.CopyAt(66, 128) != nil || d.CopyAt(1022, 128) != nil {
		t.Fatal("CopyAt found a copy for a core that never fetched")
	}
	// Drop a middle-word sharer and one at each extreme; ranks must heal.
	for _, c := range []topo.CoreID{511, 0, 1023} {
		d.DropCopy(c, 128)
		if d.CopyAt(c, 128) != nil {
			t.Fatalf("core %d still has a copy after DropCopy", c)
		}
	}
	got = d.Sharers(128)
	want = []topo.CoreID{63, 64, 65, 512}
	if len(got) != len(want) {
		t.Fatalf("after drops, sharers = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("after drops, sharers = %v, want %v", got, want)
		}
	}
	// A commit from a new core invalidates exactly the remaining sharers.
	d.CommitStore(700, 128, 9, 50, 3)
	for _, c := range want {
		cp := d.CopyAt(c, 128)
		if cp == nil || cp.Valid() {
			t.Fatalf("core %d not invalidated by remote commit", c)
		}
	}
	if !d.HasValidCopy(700, 128) || d.Owner(128) != 700 {
		t.Fatal("writer must own a fresh valid copy")
	}
}

// TestBitsetCopiesStayOrdered is the structural invariant of the
// sharded directory: after any install/drop interleaving, the compact
// copies slice is exactly the bitset's set cores in ascending order,
// and rank-based lookup returns each core its own copy.
func TestBitsetCopiesStayOrdered(t *testing.T) {
	f := func(ops []uint16) bool {
		s := topo.New()
		for cl := 0; cl < 8; cl++ {
			s.AddCluster(cl/4, topo.Big, 16) // 128 cores: two sharer words
		}
		d := NewDirectory(s)
		held := map[topo.CoreID]bool{}
		for i, op := range ops {
			c := topo.CoreID(op % 128)
			if op&0x8000 != 0 && held[c] {
				d.DropCopy(c, 0)
				delete(held, c)
			} else {
				d.Fetch(c, 0, float64(i+1))
				held[c] = true
			}
		}
		sh := d.Sharers(0)
		if len(sh) != len(held) {
			return false
		}
		for i, c := range sh {
			if i > 0 && sh[i-1] >= c {
				return false // must be strictly ascending
			}
			if !held[c] {
				return false
			}
			cp := d.CopyAt(c, 0)
			if cp == nil || cp.core != c {
				return false // rank lookup returned someone else's copy
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertySingleOwnerLastWriterWins(t *testing.T) {
	// Property: after any commit sequence, Committed equals the last
	// write and Owner is the last writer.
	f := func(writers []uint8, vals []uint8) bool {
		d := NewDirectory(sys())
		var lastV uint64
		lastW := NoCore
		n := len(writers)
		if len(vals) < n {
			n = len(vals)
		}
		for i := 0; i < n && i < 500; i++ {
			w := topo.CoreID(writers[i] % 8)
			d.CommitStore(w, 128, uint64(vals[i]), float64(i), 0)
			lastV, lastW = uint64(vals[i]), w
		}
		if n == 0 {
			return true
		}
		return d.Committed(128) == lastV && d.Owner(128) == lastW
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
