package mesi_test

import (
	"testing"

	"armbar/internal/simbench"
)

// The benchmark bodies live in internal/simbench beside the simulator
// hot-path set so the `armbar perfcheck` regression gate reruns
// exactly what these wrappers measure (scripts/bench_snapshot.sh
// freezes the output into BENCH_sim.json). Both drive the sharded
// sharer bitsets of the directory at the 1024-core preset.

func BenchmarkDirectoryRank1024(b *testing.B)        { simbench.DirectoryRank1024(b) }
func BenchmarkDirectorySharerChurn1024(b *testing.B) { simbench.DirectorySharerChurn1024(b) }
