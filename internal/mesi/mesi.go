// Package mesi implements the cache-coherence directory of the
// simulator: which cores hold copies of each cache line, who owns
// (last wrote) it, and — crucially for a weakly-ordered model — for how
// long an invalidated copy remains readable before the invalidation is
// processed.
//
// A memory access is a remote memory reference (RMR) in the paper's
// sense when the accessing core holds no usable copy of the line, so
// the request must travel the interconnect to another core. The
// directory is purely mechanical: it answers "who has what, since
// when"; timing policy lives in package sim.
//
// Storage is dense, not map-based: the simulator allocates addresses
// sequentially (sim.Machine.Alloc hands out consecutive lines from
// address 64), so line state lives in a slice indexed by line number
// and committed values in a slice indexed by 8-byte word number.
//
// Sharer tracking is a flat bitset slab sharded in 64-core words: each
// line owns shardWords consecutive uint64s of d.sharers (bit c of word
// c/64 set iff core c holds a copy) plus one summary word whose bit w
// flags sharer word w nonzero. The hierarchical topologies number
// cores densely cluster by cluster, so a 64-bit sharer word covers a
// whole group of adjacent clusters and a zero summary bit skips that
// group entirely — coherence queries touch only the cluster groups
// that actually share the line. Copies live in a compact slice ordered
// by core id; a core's index is the popcount of sharer bits below it,
// so lookups are a bit test plus a popcount walk over the (summary-
// pruned) nonzero words. At 1024 cores this replaces the old per-line
// core->index table (4 KB, one allocation per line) with 128 bytes of
// slab that grows reslice-in-place alongside the line store.
package mesi

import (
	"math/bits"

	"armbar/internal/topo"
)

// LineShift is log2 of the cache-line size (64 bytes).
const LineShift = 6

// LineOf returns the cache-line index of an address.
func LineOf(addr uint64) uint64 { return addr >> LineShift }

// NoCore marks the absence of an owner.
const NoCore topo.CoreID = -1

// shardShift is log2 of the sharer-bitset word width: 64 cores per
// uint64 word, so each word spans a contiguous run of whole clusters
// in the dense hierarchical numbering.
const (
	shardShift = 6
	shardMask  = 63
)

// staleWords is the inline capacity of a copy's stale snapshot: a line
// holds eight 8-byte words, so eight aligned addresses cover any
// realistic access pattern. Unaligned pathologies spill to a map.
const staleWords = 8

// staleSet records addr -> the value the address had when this copy
// was invalidated (copy-on-write: only addresses overwritten after the
// fetch appear). A tiny linear array beats a map: the set almost never
// exceeds one or two entries between refetches.
type staleSet struct {
	n        int
	addrs    [staleWords]uint64
	vals     [staleWords]uint64
	overflow map[uint64]uint64 // nil until >staleWords distinct addrs
}

func (s *staleSet) get(addr uint64) (uint64, bool) {
	for i := 0; i < s.n; i++ {
		if s.addrs[i] == addr {
			return s.vals[i], true
		}
	}
	if s.overflow != nil {
		v, ok := s.overflow[addr]
		return v, ok
	}
	return 0, false
}

// snapshot records old for addr unless the address is already
// snapshotted (the stale view keeps the fetch-time value).
func (s *staleSet) snapshot(addr, old uint64) {
	if _, ok := s.get(addr); ok {
		return
	}
	if s.n < staleWords {
		s.addrs[s.n] = addr
		s.vals[s.n] = old
		s.n++
		return
	}
	if s.overflow == nil {
		s.overflow = make(map[uint64]uint64) //armvet:ignore allocvet — >8 distinct sub-line addrs; unreachable from aligned workloads
	}
	s.overflow[addr] = old
}

func (s *staleSet) reset() {
	s.n = 0
	if s.overflow != nil {
		clear(s.overflow)
	}
}

// Copy is one core's cached copy of a line. Pointers returned by
// CopyAt are valid until the next directory mutation.
type Copy struct {
	// FetchedAt is when the copy was installed.
	FetchedAt float64
	// InvalidatedAt is when a remote store first hit the line after the
	// fetch; zero means the copy is valid. An invalidated copy may still
	// be read (returning pre-invalidation values) until the core
	// processes the invalidation — that window is what makes load
	// reordering observable.
	InvalidatedAt float64
	// ProcessAt is when the holding core processes the invalidation;
	// stale reads are possible only before it.
	ProcessAt float64

	core  topo.CoreID
	stale staleSet
}

// Valid reports whether the copy has not been invalidated.
func (c *Copy) Valid() bool { return c.InvalidatedAt == 0 }

// StaleValue returns the pre-invalidation value of addr as seen by this
// copy, and whether the address was snapshotted (false means the
// committed value is still what the copy would observe).
func (c *Copy) StaleValue(addr uint64) (uint64, bool) {
	return c.stale.get(addr)
}

// line is the directory entry for one cache line. copies is compact
// (only cores that hold the line) and ordered by core id: a core's
// index is the popcount of its line's sharer bits below it, so the
// slice and the bitset are two views of one set.
type line struct {
	owner   topo.CoreID
	version uint64
	// atomicFree is when the line's serialization point frees up after
	// its most recent atomic update (see AcquireAtomic). Zero until the
	// occupancy model is enabled for the platform.
	atomicFree float64
	copies     []Copy
}

// word is the committed state of one 8-byte memory word.
type word struct {
	val    uint64
	prev   uint64  // value before the most recent commit
	lastAt float64 // time of the most recent commit
}

// Directory tracks committed memory values and per-line sharing state.
type Directory struct {
	sys        *topo.System
	numCores   int
	shardWords int      // uint64 sharer words per line: ceil(numCores/64)
	sharers    []uint64 // flat bitset slab, shardWords per line
	summary    []uint64 // per-line mask: bit w set iff sharer word w nonzero
	lines      []line   // indexed by LineOf(addr)
	words      []word   // indexed by addr >> 3

	// Stats
	Fetches uint64
	Commits uint64
}

// NewDirectory returns an empty directory over the given topology.
func NewDirectory(sys *topo.System) *Directory {
	sw := (sys.NumCores() + shardMask) >> shardShift
	if sw == 0 {
		sw = 1
	}
	return &Directory{sys: sys, numCores: sys.NumCores(), shardWords: sw}
}

func wordOf(addr uint64) uint64 { return addr >> 3 }

// wordAt returns the committed word for addr, growing the dense store
// on first touch. Addresses come from sequential allocation, so growth
// amortizes to nothing.
func (d *Directory) wordAt(addr uint64) *word {
	w := wordOf(addr)
	if w >= uint64(len(d.words)) {
		d.growWords(w)
	}
	return &d.words[w]
}

func (d *Directory) growWords(w uint64) {
	if w >= uint64(cap(d.words)) {
		n := uint64(cap(d.words))
		if n < 64 {
			n = 64
		}
		for n <= w {
			n *= 2
		}
		nw := make([]word, len(d.words), n) //armvet:ignore allocvet — amortized growth, once per address-space doubling
		copy(nw, d.words)
		d.words = nw
	}
	d.words = d.words[:w+1]
}

// lineAt returns the directory entry for addr's line, growing the
// dense store on first touch.
func (d *Directory) lineAt(addr uint64) *line {
	li := LineOf(addr)
	if li >= uint64(len(d.lines)) {
		d.growLines(li)
	}
	return &d.lines[li]
}

// growLines extends the line store and its sharer slab together: both
// reslice in place within capacity, and a capacity doubling reallocates
// the slab at cap(lines)*shardWords so per-line views stay contiguous.
func (d *Directory) growLines(li uint64) {
	if li >= uint64(cap(d.lines)) {
		n := uint64(cap(d.lines))
		if n < 16 {
			n = 16
		}
		for n <= li {
			n *= 2
		}
		nl := make([]line, len(d.lines), n) //armvet:ignore allocvet — amortized growth, once per address-space doubling
		copy(nl, d.lines)
		d.lines = nl
		ns := make([]uint64, len(d.sharers), n*uint64(d.shardWords)) //armvet:ignore allocvet — amortized growth, once per address-space doubling
		copy(ns, d.sharers)
		d.sharers = ns
		nm := make([]uint64, len(d.summary), n) //armvet:ignore allocvet — amortized growth, once per address-space doubling
		copy(nm, d.summary)
		d.summary = nm
	}
	old := len(d.lines)
	d.lines = d.lines[:li+1]
	d.sharers = d.sharers[:(li+1)*uint64(d.shardWords)]
	d.summary = d.summary[:li+1]
	for i := old; i < len(d.lines); i++ {
		d.lines[i].owner = NoCore
	}
}

// lineBits returns the sharer bitset words of line li. Callers must
// have grown the store past li.
func (d *Directory) lineBits(li uint64) []uint64 {
	off := li * uint64(d.shardWords)
	return d.sharers[off : off+uint64(d.shardWords)]
}

// sharerWord returns the slab word index and bit mask of a core.
func sharerWord(core topo.CoreID) (int, uint64) {
	return int(core) >> shardShift, uint64(1) << (uint(core) & shardMask)
}

// rank returns a core's index into its line's ordered copies slice:
// the number of sharer bits strictly below it. The summary mask prunes
// the walk to nonzero words, so a line shared only within one cluster
// group pays one popcount no matter how many cores the system has.
func (d *Directory) rank(li uint64, bs []uint64, core topo.CoreID) int {
	w := int(core) >> shardShift
	r := bits.OnesCount64(bs[w] & (uint64(1)<<(uint(core)&shardMask) - 1))
	for s := d.summary[li] & (uint64(1)<<uint(w) - 1); s != 0; s &= s - 1 {
		r += bits.OnesCount64(bs[bits.TrailingZeros64(s)])
	}
	return r
}

// AcquireAtomic serializes an atomic read-modify-write on addr's
// line: it returns the time the update may begin — the later of now
// and the end of the line's previous atomic — and occupies the line
// for occ cycles from that point. Atomics are the one access class
// whose line-side work cannot overlap: the home node applies them one
// at a time, which is what makes a central arrival counter collapse
// under fan-in where a latency-only model would predict a flat curve.
// Callers are serviced in global (time, id) order, so the handoffs
// computed here are deterministic. Platforms with a zero CostModel
// RMWOccupancy never call this and keep their latency-only results
// bit for bit.
func (d *Directory) AcquireAtomic(addr uint64, now, occ float64) float64 {
	li := LineOf(addr)
	d.growLines(li)
	ln := &d.lines[li]
	start := now
	if ln.atomicFree > start {
		start = ln.atomicFree
	}
	ln.atomicFree = start + occ
	return start
}

// Committed returns the globally committed value at addr.
func (d *Directory) Committed(addr uint64) uint64 {
	if w := wordOf(addr); w < uint64(len(d.words)) {
		return d.words[w].val
	}
	return 0
}

// SetInitial sets the committed value of addr without coherence actions.
// Use it only to set up initial state before a run.
func (d *Directory) SetInitial(addr uint64, v uint64) { d.wordAt(addr).val = v }

// CopyAt returns core's copy of addr's line, or nil. The pointer is
// valid until the next directory mutation (Fetch, CommitStore,
// DropCopy may move copies).
func (d *Directory) CopyAt(core topo.CoreID, addr uint64) *Copy {
	li := LineOf(addr)
	if li >= uint64(len(d.lines)) {
		return nil
	}
	bs := d.lineBits(li)
	w, m := sharerWord(core)
	if bs[w]&m == 0 {
		return nil
	}
	return &d.lines[li].copies[d.rank(li, bs, core)]
}

// install gives core a fresh valid copy on line li, reusing the core's
// existing Copy slot when it has one: refetches and commit-side
// reinstalls happen once per store/miss, and recycling the slot (and
// its stale snapshot) keeps the commit path allocation-free. A first
// install sets the core's sharer bit and splices the copy in at its
// rank, keeping copies ordered by core id.
func (d *Directory) install(li uint64, ln *line, core topo.CoreID, now float64) {
	bs := d.lineBits(li)
	w, m := sharerWord(core)
	if bs[w]&m != 0 {
		cp := &ln.copies[d.rank(li, bs, core)]
		cp.FetchedAt = now
		cp.InvalidatedAt = 0
		cp.ProcessAt = 0
		cp.stale.reset()
		return
	}
	r := d.rank(li, bs, core)
	bs[w] |= m
	d.summary[li] |= uint64(1) << uint(w)
	ln.copies = append(ln.copies, Copy{}) //armvet:ignore allocvet — once per (core, line) first install; slot reused forever after
	copy(ln.copies[r+1:], ln.copies[r:])
	ln.copies[r] = Copy{FetchedAt: now, core: core}
}

// Reserve pre-grows the copies slice of addr's line to hold n sharers,
// so a run that fans the line out to many cores pays no append growth
// inside the measured region. Capacity only: no copy is installed and
// no sharer bit is set, so simulated state and timing are untouched.
func (d *Directory) Reserve(addr uint64, n int) {
	ln := d.lineAt(addr)
	if cap(ln.copies) < n {
		cp := make([]Copy, len(ln.copies), n)
		copy(cp, ln.copies)
		ln.copies = cp
	}
}

// Fetch installs a fresh valid copy of addr's line at core, effective at
// time now (after the miss latency has been paid by the caller). Any
// previous (e.g. invalidated) copy the core held is replaced.
func (d *Directory) Fetch(core topo.CoreID, addr uint64, now float64) {
	ln := d.lineAt(addr)
	d.install(LineOf(addr), ln, core, now)
	d.Fetches++
}

// AccessDistance classifies how far a request from core for addr must
// travel: the distance to the current owner if the line is owned
// elsewhere, else the distance to the farthest other copy, else
// SameCore (an unshared, effectively local line).
func (d *Directory) AccessDistance(core topo.CoreID, addr uint64) topo.Distance {
	li := LineOf(addr)
	if li >= uint64(len(d.lines)) {
		return topo.SameCore
	}
	ln := &d.lines[li]
	if ln.owner != NoCore && ln.owner != core {
		return d.sys.DistanceBetween(core, ln.owner)
	}
	far := topo.SameCore
	for i := range ln.copies {
		c := ln.copies[i].core
		if c == core {
			continue
		}
		if dd := d.sys.DistanceBetween(core, c); dd > far {
			far = dd
		}
	}
	return far
}

// HasValidCopy reports whether core holds a valid (non-invalidated)
// copy of addr's line.
func (d *Directory) HasValidCopy(core topo.CoreID, addr uint64) bool {
	c := d.CopyAt(core, addr)
	return c != nil && c.Valid()
}

// IsRMR reports whether an access by core to addr is a remote memory
// reference: the line is not cached, or the cached copy is invalid, and
// some other core holds it. Purely advisory; used for statistics and
// for the barrier cost model.
func (d *Directory) IsRMR(core topo.CoreID, addr uint64) bool {
	if d.HasValidCopy(core, addr) {
		return false
	}
	return d.AccessDistance(core, addr) != topo.SameCore
}

// CommitStore makes a store by core to addr globally visible at time
// now: remote copies are snapshotted (so they can still serve the old
// value until their invalidation is processed) and marked invalid, the
// committed value is updated, and core becomes the owner with a fresh
// valid copy. Each newly invalidated copy will be processed by its
// holder at now+procDelay (stale reads possible until then). The
// copies slice is exactly the sharer set, so the invalidation walk
// touches only cores whose cluster groups hold the line.
func (d *Directory) CommitStore(core topo.CoreID, addr uint64, v uint64, now, procDelay float64) {
	ln := d.lineAt(addr)
	w := d.wordAt(addr)
	old := w.val
	for i := range ln.copies {
		cp := &ln.copies[i]
		if cp.core == core {
			continue
		}
		cp.stale.snapshot(addr, old)
		if cp.Valid() {
			cp.InvalidatedAt = now
			cp.ProcessAt = now + procDelay
		}
	}
	w.prev = old
	w.lastAt = now
	w.val = v
	ln.owner = core
	ln.version++
	d.install(LineOf(addr), ln, core, now)
	d.Commits++
}

// PrevCommitted returns the value addr held before its most recent
// commit, and the time of that commit (0 if never written).
func (d *Directory) PrevCommitted(addr uint64) (uint64, float64) {
	if w := wordOf(addr); w < uint64(len(d.words)) {
		return d.words[w].prev, d.words[w].lastAt
	}
	return 0, 0
}

// DropCopy removes core's copy of addr's line (e.g. once a stale copy's
// readable window has lapsed and the core refetches).
func (d *Directory) DropCopy(core topo.CoreID, addr uint64) {
	li := LineOf(addr)
	if li >= uint64(len(d.lines)) {
		return
	}
	bs := d.lineBits(li)
	w, m := sharerWord(core)
	if bs[w]&m == 0 {
		return
	}
	r := d.rank(li, bs, core)
	bs[w] &^= m
	if bs[w] == 0 {
		d.summary[li] &^= uint64(1) << uint(w)
	}
	ln := &d.lines[li]
	last := len(ln.copies) - 1
	copy(ln.copies[r:], ln.copies[r+1:])
	ln.copies[last] = Copy{}
	ln.copies = ln.copies[:last]
}

// Sharers returns the cores currently holding any copy (valid or stale)
// of addr's line, in ascending core order. The walk is summary-pruned:
// only nonzero 64-core words are visited.
func (d *Directory) Sharers(addr uint64) []topo.CoreID {
	li := LineOf(addr)
	if li >= uint64(len(d.lines)) {
		return nil
	}
	ln := &d.lines[li]
	if len(ln.copies) == 0 {
		return nil
	}
	bs := d.lineBits(li)
	out := make([]topo.CoreID, 0, len(ln.copies))
	for s := d.summary[li]; s != 0; s &= s - 1 {
		w := bits.TrailingZeros64(s)
		for b := bs[w]; b != 0; b &= b - 1 {
			out = append(out, topo.CoreID(w<<shardShift|bits.TrailingZeros64(b)))
		}
	}
	return out
}

// Owner returns the owning (last writing) core of addr's line.
func (d *Directory) Owner(addr uint64) topo.CoreID {
	if li := LineOf(addr); li < uint64(len(d.lines)) {
		return d.lines[li].owner
	}
	return NoCore
}

// Version returns the commit version of addr's line (0 if never written).
func (d *Directory) Version(addr uint64) uint64 {
	if li := LineOf(addr); li < uint64(len(d.lines)) {
		return d.lines[li].version
	}
	return 0
}
