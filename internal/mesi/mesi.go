// Package mesi implements the cache-coherence directory of the
// simulator: which cores hold copies of each cache line, who owns
// (last wrote) it, and — crucially for a weakly-ordered model — for how
// long an invalidated copy remains readable before the invalidation is
// processed.
//
// A memory access is a remote memory reference (RMR) in the paper's
// sense when the accessing core holds no usable copy of the line, so
// the request must travel the interconnect to another core. The
// directory is purely mechanical: it answers "who has what, since
// when"; timing policy lives in package sim.
//
// Storage is dense, not map-based: the simulator allocates addresses
// sequentially (sim.Machine.Alloc hands out consecutive lines from
// address 64), so line state lives in a slice indexed by line number
// and committed values in a slice indexed by 8-byte word number. Every
// store commit used to pay half a dozen runtime map lookups; now each
// is one bounds-checked slice index. Per-line sharer state is a
// compact slice of copies plus a per-core index, so commit-time
// invalidation walks only the cores that actually hold the line.
package mesi

import (
	"sort"

	"armbar/internal/topo"
)

// LineShift is log2 of the cache-line size (64 bytes).
const LineShift = 6

// LineOf returns the cache-line index of an address.
func LineOf(addr uint64) uint64 { return addr >> LineShift }

// NoCore marks the absence of an owner.
const NoCore topo.CoreID = -1

// staleWords is the inline capacity of a copy's stale snapshot: a line
// holds eight 8-byte words, so eight aligned addresses cover any
// realistic access pattern. Unaligned pathologies spill to a map.
const staleWords = 8

// staleSet records addr -> the value the address had when this copy
// was invalidated (copy-on-write: only addresses overwritten after the
// fetch appear). A tiny linear array beats a map: the set almost never
// exceeds one or two entries between refetches.
type staleSet struct {
	n        int
	addrs    [staleWords]uint64
	vals     [staleWords]uint64
	overflow map[uint64]uint64 // nil until >staleWords distinct addrs
}

func (s *staleSet) get(addr uint64) (uint64, bool) {
	for i := 0; i < s.n; i++ {
		if s.addrs[i] == addr {
			return s.vals[i], true
		}
	}
	if s.overflow != nil {
		v, ok := s.overflow[addr]
		return v, ok
	}
	return 0, false
}

// snapshot records old for addr unless the address is already
// snapshotted (the stale view keeps the fetch-time value).
func (s *staleSet) snapshot(addr, old uint64) {
	if _, ok := s.get(addr); ok {
		return
	}
	if s.n < staleWords {
		s.addrs[s.n] = addr
		s.vals[s.n] = old
		s.n++
		return
	}
	if s.overflow == nil {
		s.overflow = make(map[uint64]uint64) //armvet:ignore allocvet — >8 distinct sub-line addrs; unreachable from aligned workloads
	}
	s.overflow[addr] = old
}

func (s *staleSet) reset() {
	s.n = 0
	if s.overflow != nil {
		clear(s.overflow)
	}
}

// Copy is one core's cached copy of a line. Pointers returned by
// CopyAt are valid until the next directory mutation.
type Copy struct {
	// FetchedAt is when the copy was installed.
	FetchedAt float64
	// InvalidatedAt is when a remote store first hit the line after the
	// fetch; zero means the copy is valid. An invalidated copy may still
	// be read (returning pre-invalidation values) until the core
	// processes the invalidation — that window is what makes load
	// reordering observable.
	InvalidatedAt float64
	// ProcessAt is when the holding core processes the invalidation;
	// stale reads are possible only before it.
	ProcessAt float64

	core  topo.CoreID
	stale staleSet
}

// Valid reports whether the copy has not been invalidated.
func (c *Copy) Valid() bool { return c.InvalidatedAt == 0 }

// StaleValue returns the pre-invalidation value of addr as seen by this
// copy, and whether the address was snapshotted (false means the
// committed value is still what the copy would observe).
func (c *Copy) StaleValue(addr uint64) (uint64, bool) {
	return c.stale.get(addr)
}

// line is the directory entry for one cache line. copies is compact
// (only cores that hold the line); slot maps core -> index+1 into
// copies, 0 meaning no copy, so CopyAt is two slice indexes.
type line struct {
	owner   topo.CoreID
	version uint64
	slot    []int32 // nil until the line is first cached
	copies  []Copy
}

// word is the committed state of one 8-byte memory word.
type word struct {
	val    uint64
	prev   uint64  // value before the most recent commit
	lastAt float64 // time of the most recent commit
}

// Directory tracks committed memory values and per-line sharing state.
type Directory struct {
	sys      *topo.System
	numCores int
	lines    []line // indexed by LineOf(addr)
	words    []word // indexed by addr >> 3

	// Stats
	Fetches uint64
	Commits uint64
}

// NewDirectory returns an empty directory over the given topology.
func NewDirectory(sys *topo.System) *Directory {
	return &Directory{sys: sys, numCores: sys.NumCores()}
}

func wordOf(addr uint64) uint64 { return addr >> 3 }

// wordAt returns the committed word for addr, growing the dense store
// on first touch. Addresses come from sequential allocation, so growth
// amortizes to nothing.
func (d *Directory) wordAt(addr uint64) *word {
	w := wordOf(addr)
	if w >= uint64(len(d.words)) {
		d.growWords(w)
	}
	return &d.words[w]
}

func (d *Directory) growWords(w uint64) {
	if w >= uint64(cap(d.words)) {
		n := uint64(cap(d.words))
		if n < 64 {
			n = 64
		}
		for n <= w {
			n *= 2
		}
		nw := make([]word, len(d.words), n) //armvet:ignore allocvet — amortized growth, once per address-space doubling
		copy(nw, d.words)
		d.words = nw
	}
	d.words = d.words[:w+1]
}

// lineAt returns the directory entry for addr's line, growing the
// dense store on first touch.
func (d *Directory) lineAt(addr uint64) *line {
	li := LineOf(addr)
	if li >= uint64(len(d.lines)) {
		d.growLines(li)
	}
	return &d.lines[li]
}

func (d *Directory) growLines(li uint64) {
	if li >= uint64(cap(d.lines)) {
		n := uint64(cap(d.lines))
		if n < 16 {
			n = 16
		}
		for n <= li {
			n *= 2
		}
		nl := make([]line, len(d.lines), n) //armvet:ignore allocvet — amortized growth, once per address-space doubling
		copy(nl, d.lines)
		d.lines = nl
	}
	old := len(d.lines)
	d.lines = d.lines[:li+1]
	for i := old; i < len(d.lines); i++ {
		d.lines[i].owner = NoCore
	}
}

// Committed returns the globally committed value at addr.
func (d *Directory) Committed(addr uint64) uint64 {
	if w := wordOf(addr); w < uint64(len(d.words)) {
		return d.words[w].val
	}
	return 0
}

// SetInitial sets the committed value of addr without coherence actions.
// Use it only to set up initial state before a run.
func (d *Directory) SetInitial(addr uint64, v uint64) { d.wordAt(addr).val = v }

// CopyAt returns core's copy of addr's line, or nil. The pointer is
// valid until the next directory mutation (Fetch, CommitStore,
// DropCopy may move copies).
func (d *Directory) CopyAt(core topo.CoreID, addr uint64) *Copy {
	li := LineOf(addr)
	if li >= uint64(len(d.lines)) {
		return nil
	}
	ln := &d.lines[li]
	if ln.slot == nil {
		return nil
	}
	if i := ln.slot[core]; i != 0 {
		return &ln.copies[i-1]
	}
	return nil
}

// install gives core a fresh valid copy on ln, reusing the core's
// existing Copy slot when it has one: refetches and commit-side
// reinstalls happen once per store/miss, and recycling the slot (and
// its stale snapshot) keeps the commit path allocation-free.
func (d *Directory) install(ln *line, core topo.CoreID, now float64) {
	if ln.slot == nil {
		ln.slot = make([]int32, d.numCores) //armvet:ignore allocvet — once per line first caching; reused forever after
	}
	if i := ln.slot[core]; i != 0 {
		cp := &ln.copies[i-1]
		cp.FetchedAt = now
		cp.InvalidatedAt = 0
		cp.ProcessAt = 0
		cp.stale.reset()
		return
	}
	ln.copies = append(ln.copies, Copy{FetchedAt: now, core: core}) //armvet:ignore allocvet — once per (core, line) first install; reused forever after
	ln.slot[core] = int32(len(ln.copies))
}

// Fetch installs a fresh valid copy of addr's line at core, effective at
// time now (after the miss latency has been paid by the caller). Any
// previous (e.g. invalidated) copy the core held is replaced.
func (d *Directory) Fetch(core topo.CoreID, addr uint64, now float64) {
	d.install(d.lineAt(addr), core, now)
	d.Fetches++
}

// AccessDistance classifies how far a request from core for addr must
// travel: the distance to the current owner if the line is owned
// elsewhere, else the distance to the farthest other copy, else
// SameCore (an unshared, effectively local line).
func (d *Directory) AccessDistance(core topo.CoreID, addr uint64) topo.Distance {
	li := LineOf(addr)
	if li >= uint64(len(d.lines)) {
		return topo.SameCore
	}
	ln := &d.lines[li]
	if ln.owner != NoCore && ln.owner != core {
		return d.sys.DistanceBetween(core, ln.owner)
	}
	far := topo.SameCore
	for i := range ln.copies {
		c := ln.copies[i].core
		if c == core {
			continue
		}
		if dd := d.sys.DistanceBetween(core, c); dd > far {
			far = dd
		}
	}
	return far
}

// HasValidCopy reports whether core holds a valid (non-invalidated)
// copy of addr's line.
func (d *Directory) HasValidCopy(core topo.CoreID, addr uint64) bool {
	c := d.CopyAt(core, addr)
	return c != nil && c.Valid()
}

// IsRMR reports whether an access by core to addr is a remote memory
// reference: the line is not cached, or the cached copy is invalid, and
// some other core holds it. Purely advisory; used for statistics and
// for the barrier cost model.
func (d *Directory) IsRMR(core topo.CoreID, addr uint64) bool {
	if d.HasValidCopy(core, addr) {
		return false
	}
	return d.AccessDistance(core, addr) != topo.SameCore
}

// CommitStore makes a store by core to addr globally visible at time
// now: remote copies are snapshotted (so they can still serve the old
// value until their invalidation is processed) and marked invalid, the
// committed value is updated, and core becomes the owner with a fresh
// valid copy. Each newly invalidated copy will be processed by its
// holder at now+procDelay (stale reads possible until then).
func (d *Directory) CommitStore(core topo.CoreID, addr uint64, v uint64, now, procDelay float64) {
	ln := d.lineAt(addr)
	w := d.wordAt(addr)
	old := w.val
	for i := range ln.copies {
		cp := &ln.copies[i]
		if cp.core == core {
			continue
		}
		cp.stale.snapshot(addr, old)
		if cp.Valid() {
			cp.InvalidatedAt = now
			cp.ProcessAt = now + procDelay
		}
	}
	w.prev = old
	w.lastAt = now
	w.val = v
	ln.owner = core
	ln.version++
	d.install(ln, core, now)
	d.Commits++
}

// PrevCommitted returns the value addr held before its most recent
// commit, and the time of that commit (0 if never written).
func (d *Directory) PrevCommitted(addr uint64) (uint64, float64) {
	if w := wordOf(addr); w < uint64(len(d.words)) {
		return d.words[w].prev, d.words[w].lastAt
	}
	return 0, 0
}

// DropCopy removes core's copy of addr's line (e.g. once a stale copy's
// readable window has lapsed and the core refetches).
func (d *Directory) DropCopy(core topo.CoreID, addr uint64) {
	li := LineOf(addr)
	if li >= uint64(len(d.lines)) {
		return
	}
	ln := &d.lines[li]
	if ln.slot == nil {
		return
	}
	i := ln.slot[core]
	if i == 0 {
		return
	}
	last := len(ln.copies) - 1
	if int(i-1) != last {
		ln.copies[i-1] = ln.copies[last]
		ln.slot[ln.copies[i-1].core] = i
	}
	ln.copies[last] = Copy{}
	ln.copies = ln.copies[:last]
	ln.slot[core] = 0
}

// Sharers returns the cores currently holding any copy (valid or stale)
// of addr's line, in ascending core order.
func (d *Directory) Sharers(addr uint64) []topo.CoreID {
	li := LineOf(addr)
	if li >= uint64(len(d.lines)) {
		return nil
	}
	ln := &d.lines[li]
	if len(ln.copies) == 0 {
		return nil
	}
	out := make([]topo.CoreID, 0, len(ln.copies))
	for i := range ln.copies {
		out = append(out, ln.copies[i].core)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Owner returns the owning (last writing) core of addr's line.
func (d *Directory) Owner(addr uint64) topo.CoreID {
	if li := LineOf(addr); li < uint64(len(d.lines)) {
		return d.lines[li].owner
	}
	return NoCore
}

// Version returns the commit version of addr's line (0 if never written).
func (d *Directory) Version(addr uint64) uint64 {
	if li := LineOf(addr); li < uint64(len(d.lines)) {
		return d.lines[li].version
	}
	return 0
}
