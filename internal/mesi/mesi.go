// Package mesi implements the cache-coherence directory of the
// simulator: which cores hold copies of each cache line, who owns
// (last wrote) it, and — crucially for a weakly-ordered model — for how
// long an invalidated copy remains readable before the invalidation is
// processed.
//
// A memory access is a remote memory reference (RMR) in the paper's
// sense when the accessing core holds no usable copy of the line, so
// the request must travel the interconnect to another core. The
// directory is purely mechanical: it answers "who has what, since
// when"; timing policy lives in package sim.
package mesi

import (
	"sort"

	"armbar/internal/topo"
)

// LineShift is log2 of the cache-line size (64 bytes).
const LineShift = 6

// LineOf returns the cache-line index of an address.
func LineOf(addr uint64) uint64 { return addr >> LineShift }

// NoCore marks the absence of an owner.
const NoCore topo.CoreID = -1

// Copy is one core's cached copy of a line.
type Copy struct {
	// FetchedAt is when the copy was installed.
	FetchedAt float64
	// InvalidatedAt is when a remote store first hit the line after the
	// fetch; zero means the copy is valid. An invalidated copy may still
	// be read (returning pre-invalidation values) until the core
	// processes the invalidation — that window is what makes load
	// reordering observable.
	InvalidatedAt float64
	// ProcessAt is when the holding core processes the invalidation;
	// stale reads are possible only before it.
	ProcessAt float64
	// stale maps addr -> the value the address had when this copy was
	// invalidated (copy-on-write: only addresses overwritten after the
	// fetch appear here).
	stale map[uint64]uint64
}

// Valid reports whether the copy has not been invalidated.
func (c *Copy) Valid() bool { return c.InvalidatedAt == 0 }

// StaleValue returns the pre-invalidation value of addr as seen by this
// copy, and whether the address was snapshotted (false means the
// committed value is still what the copy would observe).
func (c *Copy) StaleValue(addr uint64) (uint64, bool) {
	v, ok := c.stale[addr]
	return v, ok
}

// Line is the directory entry for one cache line.
type Line struct {
	Owner   topo.CoreID // last writer, NoCore if never written
	Version uint64      // bumped on every committed store
	copies  map[topo.CoreID]*Copy
}

// Directory tracks committed memory values and per-line sharing state.
type Directory struct {
	sys        *topo.System
	lines      map[uint64]*Line
	mem        map[uint64]uint64
	prevMem    map[uint64]uint64
	lastCommit map[uint64]float64

	// Stats
	Fetches uint64
	Commits uint64
}

// NewDirectory returns an empty directory over the given topology.
func NewDirectory(sys *topo.System) *Directory {
	return &Directory{
		sys:        sys,
		lines:      make(map[uint64]*Line),
		mem:        make(map[uint64]uint64),
		prevMem:    make(map[uint64]uint64),
		lastCommit: make(map[uint64]float64),
	}
}

// Committed returns the globally committed value at addr.
func (d *Directory) Committed(addr uint64) uint64 { return d.mem[addr] }

// SetInitial sets the committed value of addr without coherence actions.
// Use it only to set up initial state before a run.
func (d *Directory) SetInitial(addr uint64, v uint64) { d.mem[addr] = v }

func (d *Directory) line(addr uint64) *Line {
	ln := d.lines[LineOf(addr)]
	if ln == nil {
		ln = &Line{Owner: NoCore, copies: make(map[topo.CoreID]*Copy)}
		d.lines[LineOf(addr)] = ln
	}
	return ln
}

// CopyAt returns core's copy of addr's line, or nil.
func (d *Directory) CopyAt(core topo.CoreID, addr uint64) *Copy {
	ln := d.lines[LineOf(addr)]
	if ln == nil {
		return nil
	}
	return ln.copies[core]
}

// install gives core a fresh valid copy on ln, reusing the core's
// existing Copy struct when it has one: refetches and commit-side
// reinstalls happen once per store/miss, and recycling the struct (and
// its stale-snapshot map) keeps the commit path allocation-free.
func (d *Directory) install(ln *Line, core topo.CoreID, now float64) {
	if cp := ln.copies[core]; cp != nil {
		cp.FetchedAt = now
		cp.InvalidatedAt = 0
		cp.ProcessAt = 0
		clear(cp.stale)
		return
	}
	ln.copies[core] = &Copy{FetchedAt: now} //armvet:ignore allocvet — once per (core, line) first install; reused forever after
}

// Fetch installs a fresh valid copy of addr's line at core, effective at
// time now (after the miss latency has been paid by the caller). Any
// previous (e.g. invalidated) copy the core held is replaced.
func (d *Directory) Fetch(core topo.CoreID, addr uint64, now float64) {
	ln := d.line(addr)
	d.install(ln, core, now)
	d.Fetches++
}

// AccessDistance classifies how far a request from core for addr must
// travel: the distance to the current owner if the line is owned
// elsewhere, else the distance to the farthest other copy, else
// SameCore (an unshared, effectively local line).
func (d *Directory) AccessDistance(core topo.CoreID, addr uint64) topo.Distance {
	ln := d.lines[LineOf(addr)]
	if ln == nil {
		return topo.SameCore
	}
	if ln.Owner != NoCore && ln.Owner != core {
		return d.sys.DistanceBetween(core, ln.Owner)
	}
	far := topo.SameCore
	for c := range ln.copies {
		if c == core {
			continue
		}
		if dd := d.sys.DistanceBetween(core, c); dd > far {
			far = dd
		}
	}
	return far
}

// HasValidCopy reports whether core holds a valid (non-invalidated)
// copy of addr's line.
func (d *Directory) HasValidCopy(core topo.CoreID, addr uint64) bool {
	c := d.CopyAt(core, addr)
	return c != nil && c.Valid()
}

// IsRMR reports whether an access by core to addr is a remote memory
// reference: the line is not cached, or the cached copy is invalid, and
// some other core holds it. Purely advisory; used for statistics and
// for the barrier cost model.
func (d *Directory) IsRMR(core topo.CoreID, addr uint64) bool {
	if d.HasValidCopy(core, addr) {
		return false
	}
	return d.AccessDistance(core, addr) != topo.SameCore
}

// CommitStore makes a store by core to addr globally visible at time
// now: remote copies are snapshotted (so they can still serve the old
// value until their invalidation is processed) and marked invalid, the
// committed value is updated, and core becomes the owner with a fresh
// valid copy. Each newly invalidated copy will be processed by its
// holder at now+procDelay (stale reads possible until then).
func (d *Directory) CommitStore(core topo.CoreID, addr uint64, v uint64, now, procDelay float64) {
	ln := d.line(addr)
	old := d.mem[addr]
	for c, cp := range ln.copies {
		if c == core {
			continue
		}
		if cp.stale == nil {
			cp.stale = make(map[uint64]uint64) //armvet:ignore allocvet — lazy once-per-copy init; cleared and reused by install
		}
		if _, snapped := cp.stale[addr]; !snapped {
			cp.stale[addr] = old
		}
		if cp.Valid() {
			cp.InvalidatedAt = now
			cp.ProcessAt = now + procDelay
		}
	}
	d.prevMem[addr] = old
	d.lastCommit[addr] = now
	d.mem[addr] = v
	ln.Owner = core
	ln.Version++
	d.install(ln, core, now)
	d.Commits++
}

// PrevCommitted returns the value addr held before its most recent
// commit, and the time of that commit (0 if never written).
func (d *Directory) PrevCommitted(addr uint64) (uint64, float64) {
	return d.prevMem[addr], d.lastCommit[addr]
}

// DropCopy removes core's copy of addr's line (e.g. once a stale copy's
// readable window has lapsed and the core refetches).
func (d *Directory) DropCopy(core topo.CoreID, addr uint64) {
	if ln := d.lines[LineOf(addr)]; ln != nil {
		delete(ln.copies, core)
	}
}

// Sharers returns the cores currently holding any copy (valid or stale)
// of addr's line, in ascending core order. The copies map iterates in
// random order (determvet), and callers must be able to log or compare
// the slice without smuggling that order into output.
func (d *Directory) Sharers(addr uint64) []topo.CoreID {
	ln := d.lines[LineOf(addr)]
	if ln == nil {
		return nil
	}
	out := make([]topo.CoreID, 0, len(ln.copies))
	for c := range ln.copies {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Owner returns the owning (last writing) core of addr's line.
func (d *Directory) Owner(addr uint64) topo.CoreID {
	ln := d.lines[LineOf(addr)]
	if ln == nil {
		return NoCore
	}
	return ln.Owner
}

// Version returns the commit version of addr's line (0 if never written).
func (d *Directory) Version(addr uint64) uint64 {
	ln := d.lines[LineOf(addr)]
	if ln == nil {
		return 0
	}
	return ln.Version
}
