// Package metrics is a dependency-free registry of counters, gauges
// and fixed-bucket histograms for the simulator, the experiment runner
// and the figure generators. Instruments are lock-free on the update
// path (single atomic adds, CAS loops for float accumulation) so they
// can sit behind nil-checked hooks in hot code; reads take a
// point-in-time snapshot. Exporters render the snapshot as JSON (the
// `armbar -metrics` format) or Prometheus text.
//
// Metric names follow the Prometheus convention (`snake_case`, unit
// suffix, `_total` for counters). A name may carry a literal label set
// (`figures_wall_seconds{exp="fig2"}`); the registry treats the whole
// string as the key and the text exporter emits it verbatim, so no
// label machinery is needed.
package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing uint64.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an arbitrary float64: settable, addable, and usable as a
// running maximum across concurrent writers.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add accumulates v (CAS loop; safe across goroutines).
func (g *Gauge) Add(v float64) {
	for {
		old := g.bits.Load()
		new := math.Float64bits(math.Float64frombits(old) + v)
		if g.bits.CompareAndSwap(old, new) {
			return
		}
	}
}

// Max raises the gauge to v if v is larger.
func (g *Gauge) Max(v float64) {
	for {
		old := g.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed buckets. Bounds are
// ascending upper limits; observations beyond the last bound land in an
// implicit +Inf overflow bucket. Observe is a binary search plus two
// atomic adds — no allocation, no lock.
type Histogram struct {
	bounds  []float64
	counts  []atomic.Uint64 // len(bounds)+1, last is overflow
	count   atomic.Uint64
	sumBits atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		new := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, new) {
			return
		}
	}
}

// Count returns the number of observations so far.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values so far.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// ExpBuckets returns n ascending bounds starting at start and growing
// by factor — the usual shape for latency distributions.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n <= 0 {
		panic("metrics: ExpBuckets needs start > 0, factor > 1, n > 0")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// Registry holds named instruments. Get-or-create accessors take a
// short mutex; the returned instrument is then updated lock-free, so
// hot paths should cache the pointer.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter   // armvet:guardedby mu
	gauges     map[string]*Gauge     // armvet:guardedby mu
	histograms map[string]*Histogram // armvet:guardedby mu
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket bounds on first use (later calls reuse the existing buckets).
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = newHistogram(bounds)
		r.histograms[name] = h
	}
	return h
}

// HistogramSnapshot is the frozen state of one histogram.
type HistogramSnapshot struct {
	Bounds []float64 `json:"bounds"` // ascending upper limits; counts has one extra overflow slot
	Counts []uint64  `json:"counts"`
	Count  uint64    `json:"count"`
	Sum    float64   `json:"sum"`
}

// Snapshot is a point-in-time copy of every instrument.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot freezes the registry. Instruments updated concurrently may
// be captured mid-flight relative to each other; each individual value
// is consistent.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Counters:   make(map[string]uint64, len(r.counters)),
		Gauges:     make(map[string]float64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.histograms)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.histograms {
		hs := HistogramSnapshot{
			Bounds: h.bounds,
			Counts: make([]uint64, len(h.counts)),
			Count:  h.Count(),
			Sum:    h.Sum(),
		}
		for i := range h.counts {
			hs.Counts[i] = h.counts[i].Load()
		}
		s.Histograms[name] = hs
	}
	return s
}

// WriteJSON renders the snapshot as indented JSON with sorted keys
// (encoding/json sorts map keys), one self-contained document.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// WriteProm renders the snapshot in Prometheus text exposition format.
// Names carrying a literal label set are emitted verbatim.
func (r *Registry) WriteProm(w io.Writer) error {
	s := r.Snapshot()
	var b strings.Builder
	for _, name := range sortedKeys(s.Counters) {
		fmt.Fprintf(&b, "# TYPE %s counter\n%s %d\n", bareName(name), name, s.Counters[name])
	}
	for _, name := range sortedKeys(s.Gauges) {
		fmt.Fprintf(&b, "# TYPE %s gauge\n%s %g\n", bareName(name), name, s.Gauges[name])
	}
	for _, name := range sortedKeys(s.Histograms) {
		h := s.Histograms[name]
		fmt.Fprintf(&b, "# TYPE %s histogram\n", bareName(name))
		cum := uint64(0)
		for i, bound := range h.Bounds {
			cum += h.Counts[i]
			fmt.Fprintf(&b, "%s %d\n", histSeries(name, "_bucket", fmt.Sprintf(`le="%g"`, bound)), cum)
		}
		fmt.Fprintf(&b, "%s %d\n", histSeries(name, "_bucket", `le="+Inf"`), h.Count)
		fmt.Fprintf(&b, "%s %g\n", histSeries(name, "_sum", ""), h.Sum)
		fmt.Fprintf(&b, "%s %d\n", histSeries(name, "_count", ""), h.Count)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func bareName(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// histSeries derives a histogram sub-series name, merging any literal
// label set in name with an extra label:
// histSeries(`h{kind="load"}`, "_bucket", `le="1"`) is
// `h_bucket{kind="load",le="1"}`.
func histSeries(name, suffix, extraLabel string) string {
	bare, labels := name, ""
	if i := strings.IndexByte(name, '{'); i >= 0 {
		bare = name[:i]
		labels = strings.TrimSuffix(name[i+1:], "}")
	}
	if extraLabel != "" {
		if labels != "" {
			labels += ","
		}
		labels += extraLabel
	}
	if labels == "" {
		return bare + suffix
	}
	return bare + suffix + "{" + labels + "}"
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
