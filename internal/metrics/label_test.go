package metrics

import (
	"bytes"
	"fmt"
	"sort"
	"strings"
	"testing"
)

func TestEscapeLabelValue(t *testing.T) {
	cases := []struct{ in, want string }{
		{"fig4", "fig4"},
		{`path\to`, `path\\to`},
		{`say "hi"`, `say \"hi\"`},
		{"two\nlines", `two\nlines`},
		{"mixed \\\"\n", `mixed \\\"\n`},
		{"", ""},
	}
	for _, c := range cases {
		if got := EscapeLabelValue(c.in); got != c.want {
			t.Errorf("EscapeLabelValue(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestLabeled(t *testing.T) {
	if got := Labeled("m"); got != "m" {
		t.Errorf("no pairs: %q", got)
	}
	if got := Labeled("m", "exp", "fig4"); got != `m{exp="fig4"}` {
		t.Errorf("one pair: %q", got)
	}
	if got := Labeled("m", "a", "1", "b", `x"y`); got != `m{a="1",b="x\"y"}` {
		t.Errorf("two pairs with escape: %q", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("odd pair count must panic")
		}
	}()
	Labeled("m", "dangling")
}

// TestWritePromEscapedLabels drives a hostile label value end to end:
// the exposition output must carry the escaped form, one value per
// line, with the type line using the bare name.
func TestWritePromEscapedLabels(t *testing.T) {
	r := NewRegistry()
	r.Gauge(Labeled("odd_gauge", "exp", "a\\b\"c\nd")).Set(1)
	var buf bytes.Buffer
	if err := r.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if want := `odd_gauge{exp="a\\b\"c\nd"} 1`; !strings.Contains(out, want) {
		t.Fatalf("escaped series missing %q:\n%s", want, out)
	}
	if !strings.Contains(out, "# TYPE odd_gauge gauge") {
		t.Fatalf("type line must use the bare name:\n%s", out)
	}
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if line == "" {
			t.Fatalf("raw newline leaked into exposition output:\n%q", out)
		}
	}
}

// TestWritePromHistogramInfBucket pins the +Inf bucket invariants: it
// is always emitted (even for an empty histogram), always equals
// _count, and labeled histograms merge le= into their label set.
func TestWritePromHistogramInfBucket(t *testing.T) {
	r := NewRegistry()
	r.Histogram("empty_cycles", []float64{1})
	h := r.Histogram(Labeled("lat_cycles", "kind", "load"), []float64{1, 10})
	h.Observe(0.5)
	h.Observe(100) // beyond every finite bound: visible only via +Inf
	var buf bytes.Buffer
	if err := r.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`empty_cycles_bucket{le="+Inf"} 0`,
		"empty_cycles_count 0",
		`lat_cycles_bucket{kind="load",le="1"} 1`,
		`lat_cycles_bucket{kind="load",le="10"} 1`,
		`lat_cycles_bucket{kind="load",le="+Inf"} 2`,
		`lat_cycles_sum{kind="load"} 100.5`,
		`lat_cycles_count{kind="load"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prom output missing %q:\n%s", want, out)
		}
	}
}

// TestWritePromDeterministicOrder renders one registry repeatedly and a
// permuted-registration twin: the exposition text must be byte-stable
// and registration-order independent, so /metrics diffs and scrape
// checksums only move when values move.
func TestWritePromDeterministicOrder(t *testing.T) {
	build := func(names []string) string {
		r := NewRegistry()
		for _, n := range names {
			r.Counter("c_" + n).Add(1)
			r.Gauge("g_" + n).Set(2)
			r.Histogram("h_"+n, []float64{1}).Observe(0.5)
		}
		var buf bytes.Buffer
		if err := r.WriteProm(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a := build([]string{"alpha", "beta", "gamma"})
	for i := 0; i < 3; i++ {
		if got := build([]string{"gamma", "alpha", "beta"}); got != a {
			t.Fatalf("output depends on registration order:\n--- sorted\n%s--- permuted\n%s", a, got)
		}
	}
	// Within each instrument section, families must appear name-sorted.
	byKind := map[string][]string{}
	for _, l := range strings.Split(a, "\n") {
		var name, kind string
		if n, _ := fmt.Sscanf(l, "# TYPE %s %s", &name, &kind); n == 2 {
			byKind[kind] = append(byKind[kind], name)
		}
	}
	for kind, names := range byKind {
		if !sort.StringsAreSorted(names) {
			t.Fatalf("%s families not sorted: %v", kind, names)
		}
	}
}
