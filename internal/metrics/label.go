package metrics

import "strings"

// labelEscaper implements the Prometheus text exposition format's
// label-value escaping: backslash, double quote, and line feed. Values
// are otherwise emitted verbatim (the format is UTF-8).
var labelEscaper = strings.NewReplacer(
	`\`, `\\`,
	`"`, `\"`,
	"\n", `\n`,
)

// EscapeLabelValue escapes a label value for embedding in a literal
// label set.
func EscapeLabelValue(v string) string { return labelEscaper.Replace(v) }

// Labeled builds a metric name carrying a literal label set from
// alternating key/value pairs, escaping each value:
//
//	Labeled("figures_wall_seconds", "exp", name)
//
// is `figures_wall_seconds{exp="<name>"}`. Keys are the caller's
// responsibility (they are identifiers, not data); values may hold
// anything. Panics on an odd pair count — that is a programming error
// at the call site, never data-dependent.
func Labeled(name string, kv ...string) string {
	if len(kv) == 0 {
		return name
	}
	if len(kv)%2 != 0 {
		panic("metrics.Labeled: odd key/value count")
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i := 0; i < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteString(`="`)
		b.WriteString(EscapeLabelValue(kv[i+1]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}
