package metrics

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ops_total")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("ops_total") != c {
		t.Fatal("Counter must return the same instrument for the same name")
	}
	g := r.Gauge("depth")
	g.Set(3)
	g.Add(1.5)
	g.Max(2) // below current value: no effect
	if got := g.Value(); got != 4.5 {
		t.Fatalf("gauge = %g, want 4.5", got)
	}
	g.Max(10)
	if got := g.Value(); got != 10 {
		t.Fatalf("gauge after Max = %g, want 10", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 50, 500} {
		h.Observe(v)
	}
	s := r.Snapshot().Histograms["lat"]
	// SearchFloat64s puts v == bound into that bound's own bucket, so
	// bounds are inclusive upper limits (Prometheus `le` semantics):
	// 0.5 and 1 both land in bucket 0.
	want := []uint64{2, 1, 1, 1}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (counts %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Count != 5 || s.Sum != 556.5 {
		t.Fatalf("count/sum = %d/%g, want 5/556.5", s.Count, s.Sum)
	}
}

func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("n")
	g := r.Gauge("sum")
	h := r.Histogram("h", ExpBuckets(1, 2, 8))
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i % 300))
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 || g.Value() != 8000 || h.Count() != 8000 {
		t.Fatalf("lost updates: counter=%d gauge=%g hist=%d",
			c.Value(), g.Value(), h.Count())
	}
}

func TestWriteJSONRoundTrips(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total").Add(7)
	r.Gauge(`wall_seconds{exp="fig2"}`).Set(1.25)
	r.Histogram("lat", []float64{1, 2}).Observe(1.5)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var s Snapshot
	if err := json.Unmarshal(buf.Bytes(), &s); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if s.Counters["a_total"] != 7 || s.Gauges[`wall_seconds{exp="fig2"}`] != 1.25 {
		t.Fatalf("round trip lost values: %+v", s)
	}
	if h := s.Histograms["lat"]; h.Count != 1 || h.Sum != 1.5 {
		t.Fatalf("histogram round trip: %+v", h)
	}
}

func TestWriteProm(t *testing.T) {
	r := NewRegistry()
	r.Counter("ops_total").Add(3)
	r.Gauge(`wall_seconds{exp="fig2"}`).Set(0.5)
	h := r.Histogram("lat_cycles", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(50)
	var buf bytes.Buffer
	if err := r.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE ops_total counter",
		"ops_total 3",
		"# TYPE wall_seconds gauge",
		`wall_seconds{exp="fig2"} 0.5`,
		`lat_cycles_bucket{le="10"} 2`,
		`lat_cycles_bucket{le="+Inf"} 3`,
		"lat_cycles_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prom output missing %q:\n%s", want, out)
		}
	}
}

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(1, 4, 4)
	want := []float64{1, 4, 16, 64}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ExpBuckets = %v, want %v", got, want)
		}
	}
}
