package isa

import "testing"

func TestNames(t *testing.T) {
	cases := map[Barrier]string{
		None:    "No Barrier",
		DMBFull: "DMB full",
		DMBSt:   "DMB st",
		DMBLd:   "DMB ld",
		DSBFull: "DSB full",
		LDAR:    "LDAR",
		STLR:    "STLR",
		DataDep: "DATA DEP",
		AddrDep: "ADDR DEP",
		CtrlDep: "CTRL",
		CtrlISB: "CTRL+ISB",
	}
	for b, want := range cases {
		if b.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(b), b.String(), want)
		}
	}
}

func TestBusInvolvement(t *testing.T) {
	// §2.3 / Obs 6: DMB ld, LDAR and all dependencies are resolved
	// core-locally; DMB full/st, DSB and STLR involve the bus.
	wantBus := map[Barrier]bool{
		DMBFull: true, DMBSt: true, DSBFull: true, DSBSt: true, DSBLd: true, STLR: true,
		DMBLd: false, LDAR: false, ISB: false,
		DataDep: false, AddrDep: false, CtrlDep: false, CtrlISB: false, None: false,
	}
	for b, want := range wantBus {
		if b.RequiresBus() != want {
			t.Errorf("%v.RequiresBus() = %v, want %v", b, b.RequiresBus(), want)
		}
	}
}

func TestBlocksAllInstructions(t *testing.T) {
	for _, b := range All() {
		want := b == DSBFull || b == DSBSt || b == DSBLd
		if b.BlocksAllInstructions() != want {
			t.Errorf("%v.BlocksAllInstructions() = %v, want %v", b, b.BlocksAllInstructions(), want)
		}
	}
}

func TestOrdersSemantics(t *testing.T) {
	cases := []struct {
		b        Barrier
		from, to Access
		want     bool
	}{
		{DMBFull, Store, Store, true},
		{DMBFull, Load, Store, true},
		{DMBSt, Store, Store, true},
		{DMBSt, Load, Store, false},
		{DMBSt, Store, Load, false},
		{DMBLd, Load, Store, true},
		{DMBLd, Load, Load, true},
		{DMBLd, Store, Store, false},
		{LDAR, Load, Any, true},
		{DataDep, Load, Store, true},
		{DataDep, Load, Load, false},
		{AddrDep, Load, Load, true},
		{AddrDep, Load, Store, true},
		{AddrDep, Store, Store, false},
		{CtrlDep, Load, Store, true},
		{CtrlDep, Load, Load, false}, // the §2.2 caveat: CTRL alone cannot order load->load
		{CtrlISB, Load, Load, true},
		{None, Store, Store, false},
		{ISB, Load, Load, false},
	}
	for _, c := range cases {
		if got := c.b.Orders(c.from, c.to); got != c.want {
			t.Errorf("%v.Orders(%v,%v) = %v, want %v", c.b, c.from, c.to, got, c.want)
		}
	}
}

func TestSuggestMatchesPaperTable3(t *testing.T) {
	// Store->store(s): DMB st; everything store-started or mixed:
	// DMB full; load-started: dependencies first.
	if got := Best(Store, Stores); got != DMBSt {
		t.Errorf("Best(Store,Stores) = %v, want DMB st", got)
	}
	if got := Best(Store, Load); got != DMBFull {
		t.Errorf("Best(Store,Load) = %v, want DMB full", got)
	}
	if got := Best(Any, Any); got != DMBFull {
		t.Errorf("Best(Any,Any) = %v, want DMB full", got)
	}
	if got := Best(Load, Loads); got != AddrDep {
		t.Errorf("Best(Load,Loads) = %v, want ADDR DEP", got)
	}
	s := Suggest(Load, Store)
	found := map[Barrier]bool{}
	for _, b := range s.Preferred {
		found[b] = true
	}
	for _, want := range []Barrier{AddrDep, DataDep, CtrlDep, LDAR, DMBLd} {
		if !found[want] {
			t.Errorf("Suggest(Load,Store) missing %v", want)
		}
	}
}

func TestSuggestionsAllOrderCorrectly(t *testing.T) {
	// Every suggested approach must architecturally order its cell,
	// except the dependency idioms on multi-access cells where the
	// paper's footnote 1 applies (we still require the barrier options
	// to order).
	for _, s := range Table3() {
		for _, b := range s.Preferred {
			if b.IsDependency() {
				continue
			}
			if !b.Orders(s.From, s.To) {
				t.Errorf("suggested %v does not order %v -> %v", b, s.From, s.To)
			}
		}
	}
}

func TestTable3Complete(t *testing.T) {
	if got := len(Table3()); got != 25 {
		t.Errorf("Table3 has %d cells, want 25", got)
	}
}
