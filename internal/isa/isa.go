// Package isa defines the order-preserving vocabulary of the ARMv8-A
// weakly-ordered memory model as studied by the paper: barrier
// instructions (DMB, DSB, ISB, LDAR, STLR), their access-type options,
// and dependency-based ordering (data / address / control, and
// control+ISB).
//
// The package is pure data: it knows what each approach *orders*, and
// which approaches require the bus (an ACE barrier transaction) on a
// typical implementation. The simulator (package sim) attaches costs.
package isa

import "fmt"

// Barrier enumerates every order-preserving approach covered by the study.
// The zero value None means "no ordering" and is a valid choice wherever a
// Barrier is accepted.
type Barrier int

const (
	// None inserts nothing; memory operations may be freely reordered.
	None Barrier = iota
	// DMBFull is "dmb ish": orders any memory access against any later one.
	DMBFull
	// DMBSt is "dmb ishst": orders stores against later stores.
	DMBSt
	// DMBLd is "dmb ishld": orders loads against later loads and stores.
	DMBLd
	// DSBFull is "dsb ish": DMBFull plus blocking of *all* later
	// instructions until completion is observable in the domain.
	DSBFull
	// DSBSt is "dsb ishst".
	DSBSt
	// DSBLd is "dsb ishld".
	DSBLd
	// ISB flushes the pipeline; it orders instruction execution, not
	// memory accesses, and is used in the CTRL+ISB idiom.
	ISB
	// LDAR is the load-acquire one-way barrier: later accesses cannot
	// move before the acquiring load.
	LDAR
	// STLR is the store-release one-way barrier: earlier accesses are
	// observable before the releasing store.
	STLR
	// DataDep is a (possibly bogus) data dependency: the stored value
	// depends on a previously loaded value. Orders load->store.
	DataDep
	// AddrDep is a (possibly bogus) address dependency: the accessed
	// address depends on a previously loaded value. Orders load->load/store.
	AddrDep
	// CtrlDep is a control dependency: the loaded value decides a branch
	// guarding the later access. Orders load->store only.
	CtrlDep
	// CtrlISB is a control dependency followed by an ISB, the idiom that
	// extends control-dependency ordering to load->load.
	CtrlISB
	// LDAPR is the ARMv8.3 RCpc load-acquire (the Table-3 footnote):
	// like LDAR it orders later accesses after the load, but it does
	// not order against an earlier STLR, which lets the core keep more
	// requests in flight.
	LDAPR

	numBarriers
)

var barrierNames = [...]string{
	None:    "No Barrier",
	DMBFull: "DMB full",
	DMBSt:   "DMB st",
	DMBLd:   "DMB ld",
	DSBFull: "DSB full",
	DSBSt:   "DSB st",
	DSBLd:   "DSB ld",
	ISB:     "ISB",
	LDAR:    "LDAR",
	STLR:    "STLR",
	DataDep: "DATA DEP",
	AddrDep: "ADDR DEP",
	CtrlDep: "CTRL",
	CtrlISB: "CTRL+ISB",
	LDAPR:   "LDAPR",
}

func (b Barrier) String() string {
	if b < 0 || b >= numBarriers {
		return fmt.Sprintf("Barrier(%d)", int(b))
	}
	return barrierNames[b]
}

// All returns every Barrier value including None, in declaration order.
func All() []Barrier {
	out := make([]Barrier, numBarriers)
	for i := range out {
		out[i] = Barrier(i)
	}
	return out
}

// Instructions returns the barrier *instructions* (excluding None and the
// dependency idioms), the set swept by the paper's Figure 2.
func Instructions() []Barrier {
	return []Barrier{DMBFull, DMBSt, DMBLd, DSBFull, DSBSt, DSBLd, ISB, LDAR, STLR}
}

// Dependencies returns the dependency-based approaches.
func Dependencies() []Barrier { return []Barrier{DataDep, AddrDep, CtrlDep, CtrlISB} }

// IsDependency reports whether b is a dependency idiom rather than a
// barrier instruction.
func (b Barrier) IsDependency() bool {
	switch b {
	case DataDep, AddrDep, CtrlDep, CtrlISB:
		return true
	}
	return false
}

// RequiresBus reports whether a typical implementation must send an ACE
// barrier transaction to the interconnect for this approach. Per the
// paper (§2.3, Obs 6), DMB ld and LDAR are resolved core-locally because
// the core knows when its loads have finished, and dependency idioms
// never touch the bus; everything else (full/st DMB, all DSB, STLR) is
// likely to involve the bus.
func (b Barrier) RequiresBus() bool {
	switch b {
	case DMBFull, DMBSt, DSBFull, DSBSt, DSBLd, STLR:
		return true
	}
	return false
}

// BlocksAllInstructions reports whether the approach stalls every later
// instruction (not just memory accesses) until it completes. Only DSB
// has this property; ISB stalls via a pipeline flush which we model as a
// fixed cost instead.
func (b Barrier) BlocksAllInstructions() bool {
	switch b {
	case DSBFull, DSBSt, DSBLd:
		return true
	}
	return false
}

// Access classifies the memory-access direction an ordering must protect.
type Access int

const (
	// Load is a single load (or the first access being ordered is a load).
	Load Access = iota
	// Store is a single store.
	Store
	// Loads means "one or more loads".
	Loads
	// Stores means "one or more stores".
	Stores
	// Any means loads and stores mixed.
	Any
)

func (a Access) String() string {
	switch a {
	case Load:
		return "Load"
	case Store:
		return "Store"
	case Loads:
		return "Loads"
	case Stores:
		return "Stores"
	case Any:
		return "Any"
	default:
		return fmt.Sprintf("Access(%d)", int(a))
	}
}

// Orders reports whether barrier b preserves program order between an
// earlier access of kind from and a later access of kind to. This is the
// architectural guarantee, independent of cost.
func (b Barrier) Orders(from, to Access) bool {
	fl, fs := involves(from)
	tl, ts := involves(to)
	switch b {
	case None:
		return false
	case DMBFull, DSBFull:
		return true
	case DMBSt, DSBSt:
		// store->store only.
		return !fl && !tl && fs && ts
	case DMBLd, DSBLd, LDAR, LDAPR:
		// load -> anything later.
		return !fs && fl
	case ISB:
		return false
	case STLR:
		// Everything before is observable before the releasing store;
		// as a pairwise ordering tool it orders any -> the store it tags.
		return ts && !tl
	case DataDep:
		// loaded value feeds the stored value: load -> store.
		return fl && !fs && ts && !tl
	case AddrDep:
		// loaded value feeds the address: load -> load/store.
		return fl && !fs
	case CtrlDep:
		// control dependency orders load -> store but NOT load -> load.
		return fl && !fs && ts && !tl
	case CtrlISB:
		return fl && !fs
	}
	return false
}

func involves(a Access) (loads, stores bool) {
	switch a {
	case Load, Loads:
		return true, false
	case Store, Stores:
		return false, true
	case Any:
		return true, true
	}
	return false, false
}
