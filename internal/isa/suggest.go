package isa

// Suggestion is one cell of the paper's Table 3: which order-preserving
// approaches to use to order an earlier access (From) against a later
// access (To), cheapest first.
type Suggestion struct {
	From, To Access
	// Preferred lists the recommended approaches in cost order. For
	// load-started orderings the dependencies come first (no bus, no
	// harm to parallelism), then the weak barriers.
	Preferred []Barrier
	// Note carries the paper's caveat for this cell, if any.
	Note string
}

// stlrNote mirrors the paper's footnote 2 to Table 3.
const stlrNote = "STLR can be used here; compare against DMB full first (Obs 3)."

// Suggest returns the Table-3 recommendation for ordering an earlier
// access of kind from against a later access of kind to.
//
// The matrix follows the paper exactly:
//   - load -> anything: bogus address dependency, else LDAR / DMB ld;
//     load -> single store additionally admits data/control dependencies.
//   - store -> store(s): DMB st.
//   - store -> load or any mixed case: DMB full (STLR usable for
//     store->store-like release publication, after measuring).
func Suggest(from, to Access) Suggestion {
	s := Suggestion{From: from, To: to}
	fl, fs := involves(from)
	_, ts := involves(to)
	tl, _ := involves(to)
	switch {
	case fl && !fs && ts && !tl && (to == Store):
		// Load -> single store: every dependency kind applies.
		s.Preferred = []Barrier{AddrDep, DataDep, CtrlDep, LDAR, DMBLd}
	case fl && !fs:
		// Load -> load(s)/any: address dependency or the weak barriers.
		s.Preferred = []Barrier{AddrDep, LDAR, DMBLd}
		if tl {
			s.Note = "CTRL alone cannot order load->load; use CTRL+ISB or the above."
		}
	case fs && !fl && ts && !tl:
		// Store -> store(s).
		s.Preferred = []Barrier{DMBSt}
	default:
		// Store -> load(s), or any mixed combination.
		s.Preferred = []Barrier{DMBFull}
		if fs && !fl && to == Any {
			s.Note = stlrNote
		}
	}
	return s
}

// Best returns the single cheapest recommended approach for the pair.
func Best(from, to Access) Barrier { return Suggest(from, to).Preferred[0] }

// Table3 returns the full suggestion matrix in the paper's row/column
// order: rows From ∈ {Load, Loads, Store, Stores, Any}, columns
// To ∈ {Load, Loads, Store, Stores, Any}.
func Table3() []Suggestion {
	froms := []Access{Load, Loads, Store, Stores, Any}
	tos := []Access{Load, Loads, Store, Stores, Any}
	var out []Suggestion
	for _, f := range froms {
		for _, t := range tos {
			out = append(out, Suggest(f, t))
		}
	}
	return out
}
