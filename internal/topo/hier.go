package topo

import "fmt"

// This file builds the hierarchical scale-out topologies for the
// many-core barrier experiments: dense homogeneous systems far larger
// than the study platforms, shaped like them (clusters behind inner
// bi-section boundaries, grouped onto NUMA nodes behind the inner
// domain boundary) so the ACE distance model applies unchanged.

// Hierarchical builds a dense scale-out topology: cores split into
// clusters of clusterSize, clusters assigned in order to NUMA nodes,
// clustersPerNode per node. Cores are numbered densely cluster by
// cluster, so every 64-core run (one mesi sharer word) covers whole
// clusters whenever clusterSize divides 64. The result is Validated
// before being returned.
func Hierarchical(cores, clusterSize, clustersPerNode int) (*System, error) {
	switch {
	case cores <= 0:
		return nil, fmt.Errorf("topo: hierarchical system needs at least one core, got %d", cores)
	case clusterSize <= 0:
		return nil, fmt.Errorf("topo: cluster size must be positive, got %d", clusterSize)
	case clustersPerNode <= 0:
		return nil, fmt.Errorf("topo: clusters per node must be positive, got %d", clustersPerNode)
	case cores%clusterSize != 0:
		return nil, fmt.Errorf("topo: %d cores not divisible into clusters of %d", cores, clusterSize)
	}
	nClusters := cores / clusterSize
	if nClusters%clustersPerNode != 0 {
		return nil, fmt.Errorf("topo: %d clusters not divisible into nodes of %d", nClusters, clustersPerNode)
	}
	s := New()
	for cl := 0; cl < nClusters; cl++ {
		s.AddCluster(cl/clustersPerNode, Big, clusterSize)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// Preset returns the canonical scale-out topology for the supported
// core counts. The shapes keep cluster fan-out realistic as the core
// count grows (the 64-core preset is the Kunpeng 916 shape; the larger
// ones widen both the cluster and the per-node fan-out):
//
//	64   -> 2 nodes x 8 clusters x 4 cores
//	256  -> 4 nodes x 8 clusters x 8 cores
//	1024 -> 4 nodes x 16 clusters x 16 cores
//
// Use Hierarchical directly for a custom fan-out.
func Preset(cores int) (*System, error) {
	switch cores {
	case 64:
		return Hierarchical(64, 4, 8)
	case 256:
		return Hierarchical(256, 8, 8)
	case 1024:
		return Hierarchical(1024, 16, 16)
	}
	return nil, fmt.Errorf("topo: no scale-out preset for %d cores (have 64, 256, 1024)", cores)
}

// MustPreset is Preset for the known-good compiled-in core counts.
func MustPreset(cores int) *System {
	s, err := Preset(cores)
	if err != nil {
		panic(err)
	}
	return s
}

// Validate checks the structural invariants every consumer of a System
// assumes: cores numbered densely from 0 in cluster order, the
// core->cluster map consistent with the cluster core lists, no empty
// clusters, node ids forming contiguous runs that together cover
// 0..NumNodes-1. The Add* builders maintain all of these except the
// node ordering, so Validate is cheap insurance for hand-built and
// generated topologies alike.
func (s *System) Validate() error {
	if len(s.clusters) == 0 {
		return fmt.Errorf("topo: system has no clusters")
	}
	next := CoreID(0)
	prevNode := 0
	seen := make([]bool, s.nodes)
	for i := range s.clusters {
		cl := &s.clusters[i]
		if len(cl.Cores) == 0 {
			return fmt.Errorf("topo: cluster %d is empty", i)
		}
		if cl.Node < 0 || cl.Node >= s.nodes {
			return fmt.Errorf("topo: cluster %d on node %d, outside [0,%d)", i, cl.Node, s.nodes)
		}
		if cl.Node < prevNode {
			return fmt.Errorf("topo: cluster %d on node %d after node %d — node core ranges must be contiguous", i, cl.Node, prevNode)
		}
		prevNode = cl.Node
		seen[cl.Node] = true
		for _, c := range cl.Cores {
			if c != next {
				return fmt.Errorf("topo: cluster %d holds core %d, want %d — numbering must be dense in cluster order", i, c, next)
			}
			if int(c) >= len(s.core2cl) || s.core2cl[c] != i {
				return fmt.Errorf("topo: core %d maps to cluster %d, listed in cluster %d", c, s.core2cl[c], i)
			}
			next++
		}
	}
	if int(next) != len(s.core2cl) {
		return fmt.Errorf("topo: %d cores mapped but %d listed in clusters", len(s.core2cl), next)
	}
	for n, ok := range seen {
		if !ok {
			return fmt.Errorf("topo: node %d has no clusters", n)
		}
	}
	return nil
}
