package topo

import "testing"

func build() *System {
	s := New()
	s.AddCluster(0, Big, 4)    // cores 0-3
	s.AddCluster(0, Little, 4) // cores 4-7
	s.AddCluster(1, Big, 4)    // cores 8-11
	return s
}

func TestCounts(t *testing.T) {
	s := build()
	if s.NumCores() != 12 {
		t.Errorf("NumCores = %d, want 12", s.NumCores())
	}
	if s.NumClusters() != 3 {
		t.Errorf("NumClusters = %d, want 3", s.NumClusters())
	}
	if s.NumNodes() != 2 {
		t.Errorf("NumNodes = %d, want 2", s.NumNodes())
	}
}

func TestMembership(t *testing.T) {
	s := build()
	if s.Cluster(5) != 1 {
		t.Errorf("Cluster(5) = %d, want 1", s.Cluster(5))
	}
	if s.Node(9) != 1 {
		t.Errorf("Node(9) = %d, want 1", s.Node(9))
	}
	if s.Class(5) != Little {
		t.Errorf("Class(5) = %v, want little", s.Class(5))
	}
	if got := len(s.CoresOfClass(Big)); got != 8 {
		t.Errorf("big cores = %d, want 8", got)
	}
	if got := len(s.NodeCores(0)); got != 8 {
		t.Errorf("node-0 cores = %d, want 8", got)
	}
}

func TestDistances(t *testing.T) {
	s := build()
	cases := []struct {
		a, b CoreID
		want Distance
	}{
		{0, 0, SameCore},
		{0, 3, SameCluster},
		{0, 4, SameNode},
		{0, 8, CrossNode},
		{4, 11, CrossNode},
	}
	for _, c := range cases {
		if got := s.DistanceBetween(c.a, c.b); got != c.want {
			t.Errorf("Distance(%d,%d) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
	// Symmetry.
	for _, c := range cases {
		if s.DistanceBetween(c.a, c.b) != s.DistanceBetween(c.b, c.a) {
			t.Errorf("distance not symmetric for (%d,%d)", c.a, c.b)
		}
	}
}

func TestDistanceOrdering(t *testing.T) {
	if !(SameCore < SameCluster && SameCluster < SameNode && SameNode < CrossNode) {
		t.Fatal("Distance constants must be ordered by remoteness")
	}
}

func TestPanicsOnBadInput(t *testing.T) {
	s := build()
	mustPanic(t, func() { s.Cluster(99) })
	mustPanic(t, func() { s.Cluster(-1) })
	mustPanic(t, func() { New().AddCluster(0, Big, 0) })
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	f()
}
