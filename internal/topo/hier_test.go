package topo

import (
	"strings"
	"testing"
)

// presetShape pins the canonical scale-out fan-outs.
var presetShape = map[int]struct {
	clusterSize int
	clusters    int
	nodes       int
}{
	64:   {4, 16, 2},
	256:  {8, 32, 4},
	1024: {16, 64, 4},
}

func TestPresetShapes(t *testing.T) {
	for cores, want := range presetShape {
		s, err := Preset(cores)
		if err != nil {
			t.Fatalf("Preset(%d): %v", cores, err)
		}
		if s.NumCores() != cores {
			t.Errorf("Preset(%d): %d cores", cores, s.NumCores())
		}
		if s.NumClusters() != want.clusters {
			t.Errorf("Preset(%d): %d clusters, want %d", cores, s.NumClusters(), want.clusters)
		}
		if s.NumNodes() != want.nodes {
			t.Errorf("Preset(%d): %d nodes, want %d", cores, s.NumNodes(), want.nodes)
		}
		for i := 0; i < s.NumClusters(); i++ {
			if got := len(s.ClusterCores(i)); got != want.clusterSize {
				t.Fatalf("Preset(%d): cluster %d has %d cores, want %d", cores, i, got, want.clusterSize)
			}
		}
	}
	if _, err := Preset(100); err == nil {
		t.Error("Preset(100) must fail: no such scale-out preset")
	}
}

// TestPresetDenseNumbering checks the invariant the mesi sharer-word
// sharding relies on: core ids are dense, cluster by cluster, so any
// aligned 64-core run covers whole clusters.
func TestPresetDenseNumbering(t *testing.T) {
	for cores := range presetShape {
		s := MustPreset(cores)
		next := CoreID(0)
		for i := 0; i < s.NumClusters(); i++ {
			for _, c := range s.ClusterCores(i) {
				if c != next {
					t.Fatalf("Preset(%d): cluster %d core %d, want %d", cores, i, c, next)
				}
				if s.Cluster(c) != i {
					t.Fatalf("Preset(%d): core %d maps to cluster %d, listed in %d", cores, c, s.Cluster(c), i)
				}
				next++
			}
		}
		if int(next) != cores {
			t.Fatalf("Preset(%d): only %d cores enumerated", cores, next)
		}
		// 64-core words align with cluster boundaries: a cluster never
		// straddles a word when its size divides 64.
		for i := 0; i < s.NumClusters(); i++ {
			cs := s.ClusterCores(i)
			if cs[0]>>6 != cs[len(cs)-1]>>6 {
				t.Fatalf("Preset(%d): cluster %d straddles a 64-core sharer word", cores, i)
			}
		}
	}
}

// TestPresetACEBoundaries validates the presets against the ACE
// distance model: the same boundary classification the barrier cost
// model pays for (inner bi-section = cluster, inner domain = node).
func TestPresetACEBoundaries(t *testing.T) {
	for cores := range presetShape {
		s := MustPreset(cores)
		// Same core.
		if d := s.DistanceBetween(0, 0); d != SameCore {
			t.Fatalf("Preset(%d): self distance %v", cores, d)
		}
		// First and last core of cluster 0 share its bi-section boundary.
		c0 := s.ClusterCores(0)
		if d := s.DistanceBetween(c0[0], c0[len(c0)-1]); d != SameCluster {
			t.Fatalf("Preset(%d): intra-cluster distance %v", cores, d)
		}
		// Adjacent clusters on node 0 meet at the node interconnect.
		c1 := s.ClusterCores(1)
		if s.Node(c0[0]) != s.Node(c1[0]) {
			t.Fatalf("Preset(%d): clusters 0 and 1 on different nodes", cores)
		}
		if d := s.DistanceBetween(c0[0], c1[0]); d != SameNode {
			t.Fatalf("Preset(%d): intra-node distance %v", cores, d)
		}
		// First core of node 0 vs first core of the last node crosses the
		// inner domain boundary.
		lastNode := s.NodeCores(s.NumNodes() - 1)
		if d := s.DistanceBetween(c0[0], lastNode[0]); d != CrossNode {
			t.Fatalf("Preset(%d): cross-node distance %v", cores, d)
		}
		// Node core ranges are contiguous and cover everything once.
		total := 0
		for n := 0; n < s.NumNodes(); n++ {
			nc := s.NodeCores(n)
			for i := 1; i < len(nc); i++ {
				if nc[i] != nc[i-1]+1 {
					t.Fatalf("Preset(%d): node %d core range not contiguous at %d", cores, n, nc[i])
				}
			}
			total += len(nc)
		}
		if total != cores {
			t.Fatalf("Preset(%d): node ranges cover %d cores", cores, total)
		}
	}
}

func TestHierarchicalValidationErrors(t *testing.T) {
	cases := []struct {
		cores, clusterSize, perNode int
		wantErr                     string
	}{
		{0, 4, 4, "at least one core"},
		{64, 0, 4, "cluster size"},
		{64, 4, 0, "clusters per node"},
		{100, 8, 4, "not divisible into clusters"},
		{64, 4, 5, "not divisible into nodes"},
	}
	for _, c := range cases {
		_, err := Hierarchical(c.cores, c.clusterSize, c.perNode)
		if err == nil || !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("Hierarchical(%d,%d,%d) error = %v, want containing %q",
				c.cores, c.clusterSize, c.perNode, err, c.wantErr)
		}
	}
}

func TestValidateCatchesBrokenSystems(t *testing.T) {
	if err := New().Validate(); err == nil {
		t.Error("empty system must fail validation")
	}
	// The study presets built with AddCluster must pass.
	s := New()
	s.AddCluster(0, Big, 4)
	s.AddCluster(0, Little, 4)
	s.AddCluster(1, Big, 4)
	if err := s.Validate(); err != nil {
		t.Errorf("well-formed system failed validation: %v", err)
	}
	// Out-of-order node assignment breaks the contiguous-range invariant.
	bad := New()
	bad.AddCluster(1, Big, 2)
	bad.AddCluster(0, Big, 2)
	if err := bad.Validate(); err == nil {
		t.Error("non-contiguous node ranges must fail validation")
	}
	// A node index gap leaves node 0 empty.
	gap := New()
	gap.AddCluster(1, Big, 2)
	if err := gap.Validate(); err == nil {
		t.Error("system with an empty node must fail validation")
	}
}
