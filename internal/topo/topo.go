// Package topo describes the topology of a simulated ARM system: cores
// grouped into clusters, clusters grouped into NUMA nodes, and the ACE
// shareability boundaries that barrier transactions must reach.
//
// The model follows the ARM AMBA ACE picture the paper works from
// (its Figure 1): every cluster interconnect is an "inner bi-section
// boundary" (downstream of a subset of masters), and the top-level
// interconnect is the "inner domain boundary" (downstream of all masters
// in the inner shareable domain).
package topo

import "fmt"

// CoreID identifies a core within a System. Cores are numbered densely
// from 0 in cluster order.
type CoreID int

// CoreClass distinguishes heterogeneous (big.LITTLE) core types.
type CoreClass int

const (
	// Big marks a high-performance core (e.g. Cortex-A73).
	Big CoreClass = iota
	// Little marks an efficiency core (e.g. Cortex-A53).
	Little
)

func (c CoreClass) String() string {
	switch c {
	case Big:
		return "big"
	case Little:
		return "little"
	default:
		return fmt.Sprintf("CoreClass(%d)", int(c))
	}
}

// Cluster is a group of cores sharing an inner bi-section boundary.
type Cluster struct {
	Node  int       // NUMA node the cluster belongs to
	Class CoreClass // core type within this cluster
	Cores []CoreID  // dense core ids in this cluster
}

// System is an immutable description of the machine topology.
// Build one with New and the Add* helpers, or use a preset from
// package platform.
type System struct {
	clusters []Cluster
	core2cl  []int // core id -> cluster index
	nodes    int
}

// New returns an empty system description.
func New() *System { return &System{} }

// AddCluster appends a cluster of n cores of the given class on the given
// NUMA node and returns the ids of the new cores.
func (s *System) AddCluster(node int, class CoreClass, n int) []CoreID {
	if n <= 0 {
		panic("topo: cluster must have at least one core")
	}
	ids := make([]CoreID, n)
	for i := range ids {
		id := CoreID(len(s.core2cl))
		ids[i] = id
		s.core2cl = append(s.core2cl, len(s.clusters))
	}
	s.clusters = append(s.clusters, Cluster{Node: node, Class: class, Cores: ids})
	if node+1 > s.nodes {
		s.nodes = node + 1
	}
	return ids
}

// NumCores reports the total number of cores.
func (s *System) NumCores() int { return len(s.core2cl) }

// NumClusters reports the number of clusters (bi-section boundaries).
func (s *System) NumClusters() int { return len(s.clusters) }

// NumNodes reports the number of NUMA nodes.
func (s *System) NumNodes() int { return s.nodes }

// Cluster returns the cluster index of core c.
func (s *System) Cluster(c CoreID) int {
	s.check(c)
	return s.core2cl[c]
}

// Node returns the NUMA node of core c.
func (s *System) Node(c CoreID) int {
	return s.clusters[s.Cluster(c)].Node
}

// Class returns the core class of core c.
func (s *System) Class(c CoreID) CoreClass {
	return s.clusters[s.Cluster(c)].Class
}

// ClusterCores returns the cores in cluster i.
func (s *System) ClusterCores(i int) []CoreID { return s.clusters[i].Cores }

// CoresOfClass returns all cores of the given class, in id order.
func (s *System) CoresOfClass(class CoreClass) []CoreID {
	var out []CoreID
	for _, cl := range s.clusters {
		if cl.Class == class {
			out = append(out, cl.Cores...)
		}
	}
	return out
}

// NodeCores returns all cores on NUMA node n, in id order.
func (s *System) NodeCores(n int) []CoreID {
	var out []CoreID
	for _, cl := range s.clusters {
		if cl.Node == n {
			out = append(out, cl.Cores...)
		}
	}
	return out
}

// Distance classifies the communication distance between two cores.
type Distance int

const (
	// SameCore means a == b.
	SameCore Distance = iota
	// SameCluster means the cores share a bi-section boundary.
	SameCluster
	// SameNode means the cores are in different clusters of one NUMA node.
	SameNode
	// CrossNode means the cores are on different NUMA nodes.
	CrossNode
)

func (d Distance) String() string {
	switch d {
	case SameCore:
		return "same-core"
	case SameCluster:
		return "same-cluster"
	case SameNode:
		return "same-node"
	case CrossNode:
		return "cross-node"
	default:
		return fmt.Sprintf("Distance(%d)", int(d))
	}
}

// DistanceBetween classifies the distance between cores a and b.
func (s *System) DistanceBetween(a, b CoreID) Distance {
	if a == b {
		return SameCore
	}
	ca, cb := s.Cluster(a), s.Cluster(b)
	if ca == cb {
		return SameCluster
	}
	if s.clusters[ca].Node == s.clusters[cb].Node {
		return SameNode
	}
	return CrossNode
}

func (s *System) check(c CoreID) {
	if c < 0 || int(c) >= len(s.core2cl) {
		panic(fmt.Sprintf("topo: core %d out of range [0,%d)", c, len(s.core2cl)))
	}
}
