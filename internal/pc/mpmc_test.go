package pc

import (
	"testing"

	"armbar/internal/platform"
)

func TestMPMCCorrectBothModes(t *testing.T) {
	for _, mode := range []MPMCMode{LockedRing, PilotFanIn} {
		r := RunMPMC(MPMCConfig{Plat: platform.Kunpeng916(), Producers: 4,
			Messages: 150, Mode: mode, Seed: 3})
		if !r.Valid {
			t.Errorf("%v: checksum mismatch", mode)
		}
	}
}

func TestMPMCPilotFanInBeatsLockedRing(t *testing.T) {
	// The per-pair Pilot channels avoid both the lock and the
	// publication barriers; with several producers the locked ring
	// serializes everything.
	lr := RunMPMC(MPMCConfig{Plat: platform.Kunpeng916(), Producers: 6,
		Messages: 150, Mode: LockedRing, Seed: 5}).Throughput()
	pf := RunMPMC(MPMCConfig{Plat: platform.Kunpeng916(), Producers: 6,
		Messages: 150, Mode: PilotFanIn, Seed: 5}).Throughput()
	if pf < 1.2*lr {
		t.Errorf("pilot fan-in (%g) should clearly beat the locked ring (%g)", pf, lr)
	}
}

func TestMPMCDeterministic(t *testing.T) {
	cfg := MPMCConfig{Plat: platform.Kunpeng916(), Producers: 3, Messages: 80,
		Mode: PilotFanIn, Seed: 9}
	if RunMPMC(cfg).Cycles != RunMPMC(cfg).Cycles {
		t.Fatal("non-deterministic")
	}
}

func TestPublicationBothModesConsistent(t *testing.T) {
	p := platform.Kunpeng916()
	for _, mode := range []PubMode{Seqlock, PilotBatch} {
		r := RunPub(PubConfig{Plat: p, Writer: 0, Reader: 32, Mode: mode,
			Words: 4, Updates: 300, Seed: 7})
		if r.Torn {
			t.Errorf("%v: torn snapshot observed", mode)
		}
		if r.Snapshots == 0 {
			t.Errorf("%v: reader took no snapshots", mode)
		}
	}
}

func TestPilotPublicationCompetitiveWithSeqlock(t *testing.T) {
	// The seqlock pays two DMB st per update plus reader retries under
	// write pressure; Pilot pays neither. With a fast writer the Pilot
	// reader should take at least comparably many consistent snapshots.
	p := platform.Kunpeng916()
	sq := RunPub(PubConfig{Plat: p, Writer: 0, Reader: 32, Mode: Seqlock,
		Words: 4, Updates: 400, Gap: 120, Seed: 9})
	pi := RunPub(PubConfig{Plat: p, Writer: 0, Reader: 32, Mode: PilotBatch,
		Words: 4, Updates: 400, Gap: 120, Seed: 9})
	if pi.SnapshotRate() < 0.5*sq.SnapshotRate() {
		t.Errorf("pilot snapshot rate (%g) should be competitive with seqlock (%g)",
			pi.SnapshotRate(), sq.SnapshotRate())
	}
	if pi.Torn || sq.Torn {
		t.Error("torn snapshots")
	}
}
