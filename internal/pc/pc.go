// Package pc implements the paper's producer-consumer study (§4,
// Figure 6): a single-producer single-consumer circular buffer
// (Algorithm 2) with configurable barrier choices, the Pilot variant
// that removes the publication barrier (§4.4), the Theoretical and
// Ideal reference points, and batched (multi-word) messages (§4.5).
package pc

import (
	"fmt"

	"armbar/internal/core"
	"armbar/internal/isa"
	"armbar/internal/platform"
	"armbar/internal/sim"
	"armbar/internal/topo"
)

// Combo is a Figure-6a legend entry "X - Y": the barrier at line 3 of
// Algorithm 2 (after the availability check) and the one at line 5
// (between filling the buffer and bumping the producer counter).
type Combo struct {
	Avail   isa.Barrier // line 3; LDAR turns the availability load into a load-acquire
	Publish isa.Barrier // line 5; STLR turns the counter bump into a store-release
}

// Name renders the paper's legend label.
func (c Combo) Name() string { return fmt.Sprintf("%s - %s", c.Avail, c.Publish) }

// Figure6aCombos returns the seven legend entries of Figure 6a.
func Figure6aCombos() []Combo {
	return []Combo{
		{Avail: isa.DMBFull, Publish: isa.DMBFull},
		{Avail: isa.DMBFull, Publish: isa.DMBSt},
		{Avail: isa.DMBLd, Publish: isa.DMBSt},
		{Avail: isa.LDAR, Publish: isa.DMBSt},
		{Avail: isa.DMBFull, Publish: isa.STLR},
		{Avail: isa.DMBLd, Publish: isa.None},
		{Avail: isa.None, Publish: isa.None}, // Ideal
	}
}

// Mode selects the buffer implementation.
type Mode int

const (
	// Classic is Algorithm 2 with the barriers of a Combo.
	Classic Mode = iota
	// Pilot replaces the slots with Pilot words: no publication
	// barrier, no producer counter, no consumer load barrier (§4.4).
	Pilot
	// Theoretical is Classic with the Pilot-avoidable barriers removed
	// but the original cache-line layout kept (§4.5's reference).
	Theoretical
)

func (m Mode) String() string {
	switch m {
	case Classic:
		return "classic"
	case Pilot:
		return "pilot"
	default:
		return "theoretical"
	}
}

// Config describes one producer-consumer run.
type Config struct {
	Plat     *platform.Platform
	Producer topo.CoreID
	Consumer topo.CoreID
	Mode     Mode
	Combo    Combo // Classic/Theoretical only (Theoretical forces Publish=None)
	Messages int
	BufSize  int // slots; power of two, default 8
	MsgWork  int // nops spent in produceMsg, default 40
	Batch    int // words per message, default 1 (Figure 6c sweeps this)
	// TSO runs the program on the x86-style model (no stale reads,
	// FIFO store buffer); combine with Combo zero value for the
	// barrier-free port the paper's introduction contrasts against.
	TSO  bool
	Seed int64
}

// Result is one run's outcome.
type Result struct {
	Config   Config
	Cycles   float64
	Elapsed  float64
	Messages int
	Valid    bool // every message arrived with the right payload
	Stats    sim.Stats
}

// Throughput returns messages per second.
func (r Result) Throughput() float64 {
	if r.Elapsed == 0 {
		return 0
	}
	return float64(r.Messages) / r.Elapsed
}

// Run executes one producer-consumer experiment.
func Run(cfg Config) Result {
	if cfg.Messages == 0 {
		cfg.Messages = 1000
	}
	if cfg.BufSize == 0 {
		cfg.BufSize = 8
	}
	if cfg.MsgWork == 0 {
		cfg.MsgWork = 40
	}
	if cfg.Batch == 0 {
		cfg.Batch = 1
	}
	if cfg.Mode == Theoretical {
		cfg.Combo.Publish = isa.None
	}
	mode := sim.WMM
	if cfg.TSO {
		mode = sim.TSO
	}
	m := sim.New(sim.Config{Plat: cfg.Plat, Mode: mode, Seed: cfg.Seed})
	var valid *bool
	switch cfg.Mode {
	case Pilot:
		valid = runPilot(m, cfg)
	default:
		valid = runClassic(m, cfg)
	}
	elapsedCycles := m.Run()
	return Result{
		Config:   cfg,
		Cycles:   elapsedCycles,
		Elapsed:  m.Seconds(elapsedCycles),
		Messages: cfg.Messages,
		Valid:    *valid,
		Stats:    m.Stats(),
	}
}

// payload generates the deterministic message stream both sides check.
func payload(i, j int) uint64 {
	return uint64(i)*2654435761 + uint64(j)*0x9E37 + 1
}

// runClassic wires Algorithm 2 with the configured barriers. The
// returned flag is meaningful only after Machine.Run completes.
func runClassic(m *sim.Machine, cfg Config) *bool {
	linesPerSlot := (cfg.Batch + 7) / 8
	prodCnt := m.Alloc(1)
	consCnt := m.Alloc(1)
	buf := m.Alloc(cfg.BufSize * linesPerSlot)
	slot := func(i, w int) uint64 {
		s := i % cfg.BufSize
		return buf + uint64(s*linesPerSlot)<<6 + uint64(w)*8
	}
	valid := true

	m.Spawn(cfg.Producer, func(t *sim.Thread) {
		produced := 0
		for produced < cfg.Messages {
			// Lines 1-2: wait for buffer space.
			if cfg.Combo.Avail == isa.LDAR {
				for uint64(produced)-t.LoadAcquire(consCnt) >= uint64(cfg.BufSize) {
					t.Nops(1)
				}
			} else {
				for uint64(produced)-t.Load(consCnt) >= uint64(cfg.BufSize) {
					t.Nops(1)
				}
				// Line 3: the availability barrier.
				if cfg.Combo.Avail != isa.None {
					t.Barrier(cfg.Combo.Avail)
				}
			}
			// Line 4: produceMsg and fill the (shared, likely-RMR) slot.
			t.Nops(cfg.MsgWork)
			for w := 0; w < cfg.Batch; w++ {
				t.Store(slot(produced, w), payload(produced, w))
			}
			// Line 5: the publication barrier; STLR folds it into the
			// counter store.
			switch cfg.Combo.Publish {
			case isa.None:
				t.Store(prodCnt, uint64(produced+1))
			case isa.STLR:
				t.StoreRelease(prodCnt, uint64(produced+1))
			default:
				t.Barrier(cfg.Combo.Publish)
				t.Store(prodCnt, uint64(produced+1))
			}
			produced++
		}
	})

	m.Spawn(cfg.Consumer, func(t *sim.Thread) {
		consumed := 0
		for consumed < cfg.Messages {
			// Observe the producer counter and drain every message it
			// covers (a realistic consumer amortizes the counter RMR).
			avail := t.Load(prodCnt)
			if avail == uint64(consumed) {
				t.Nops(1)
				continue
			}
			// The consumer's cheap load barrier (omitted for
			// Theoretical/Ideal, matching what Pilot avoids).
			if cfg.Combo.Publish != isa.None {
				t.Barrier(isa.DMBLd)
			}
			for uint64(consumed) < avail && consumed < cfg.Messages {
				for w := 0; w < cfg.Batch; w++ {
					if got := t.Load(slot(consumed, w)); got != payload(consumed, w) {
						valid = false
					}
				}
				consumed++
			}
			t.Store(consCnt, uint64(consumed))
		}
	})
	return &valid
}

// runPilot wires §4.4: slots are Pilot-encoded (per 64-bit slice), the
// producer counter disappears, and only the availability check's
// counter and barrier remain. The returned flag is meaningful only
// after Machine.Run completes.
func runPilot(m *sim.Machine, cfg Config) *bool {
	linesPerSlot := (cfg.Batch + 7) / 8
	consCnt := m.Alloc(1)
	dataLines := m.Alloc(cfg.BufSize * linesPerSlot)
	flagLines := m.Alloc(cfg.BufSize * linesPerSlot) // rarely touched
	word := func(i, w int) (data, flag uint64) {
		s := i % cfg.BufSize
		off := uint64(s*linesPerSlot)<<6 + uint64(w)*8
		return dataLines + off, flagLines + off
	}
	pool := core.HashPool(uint64(cfg.Seed) + 77)
	valid := true
	nWords := cfg.BufSize * cfg.Batch

	m.Spawn(cfg.Producer, func(t *sim.Thread) {
		oldData := make([]uint64, nWords)
		flags := make([]uint64, nWords)
		produced := 0
		for produced < cfg.Messages {
			// The availability check (line 3 barrier) survives; use the
			// cheap acquire form the paper recommends.
			for uint64(produced)-t.LoadAcquire(consCnt) >= uint64(cfg.BufSize) {
				t.Nops(1)
			}
			t.Nops(cfg.MsgWork)
			h := pool[produced%core.PoolSize]
			for w := 0; w < cfg.Batch; w++ {
				idx := (produced%cfg.BufSize)*cfg.Batch + w
				data, flag := word(produced, w)
				newData := payload(produced, w) ^ h
				t.Nops(1) // shuffle (one xor; bookkeeping is register-resident)
				if newData == oldData[idx] {
					flags[idx] ^= 1
					t.Store(flag, flags[idx])
				} else {
					t.Store(data, newData)
					oldData[idx] = newData
				}
			}
			// No publication barrier, no producer counter: done.
			produced++
		}
	})

	m.Spawn(cfg.Consumer, func(t *sim.Thread) {
		oldData := make([]uint64, nWords)
		oldFlags := make([]uint64, nWords)
		consumed := 0
		for consumed < cfg.Messages {
			h := pool[consumed%core.PoolSize]
			for w := 0; w < cfg.Batch; w++ {
				idx := (consumed%cfg.BufSize)*cfg.Batch + w
				data, flag := word(consumed, w)
				for {
					if d := t.Load(data); d != oldData[idx] {
						oldData[idx] = d
						break
					}
					if f := t.Load(flag); f != oldFlags[idx] {
						oldFlags[idx] = f
						break
					}
					t.Nops(1)
				}
				t.Nops(1)
				if oldData[idx]^h != payload(consumed, w) {
					valid = false
				}
			}
			consumed++
			t.Store(consCnt, uint64(consumed))
		}
	})
	return &valid
}
