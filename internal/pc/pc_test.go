package pc

import (
	"testing"

	"armbar/internal/isa"
	"armbar/internal/platform"
	"armbar/internal/topo"
)

type binding struct {
	name string
	p    *platform.Platform
	prod topo.CoreID
	cons topo.CoreID
}

func crossNode() binding {
	p := platform.Kunpeng916()
	return binding{"kunpeng-cross", p, p.Sys.NodeCores(0)[0], p.Sys.NodeCores(1)[0]}
}

func sameNode() binding {
	p := platform.Kunpeng916()
	n0 := p.Sys.NodeCores(0)
	return binding{"kunpeng-same", p, n0[0], n0[4]}
}

func run(b binding, mode Mode, combo Combo, msgs int) Result {
	return Run(Config{
		Plat: b.p, Producer: b.prod, Consumer: b.cons,
		Mode: mode, Combo: combo, Messages: msgs, Seed: 42,
	})
}

func TestClassicDeliversCorrectly(t *testing.T) {
	for _, combo := range Figure6aCombos()[:6] { // skip Ideal (no barriers)
		r := run(crossNode(), Classic, combo, 400)
		if !r.Valid {
			t.Errorf("%s: message corruption", combo.Name())
		}
	}
}

func TestPilotDeliversCorrectly(t *testing.T) {
	for _, b := range []binding{sameNode(), crossNode()} {
		r := run(b, Pilot, Combo{}, 800)
		if !r.Valid {
			t.Errorf("%s: Pilot lost or corrupted messages despite WMM", b.name)
		}
	}
}

func TestPilotBatchedDeliversCorrectly(t *testing.T) {
	for _, batch := range []int{2, 4, 8, 16, 32} {
		r := Run(Config{
			Plat: crossNode().p, Producer: 0, Consumer: 32,
			Mode: Pilot, Messages: 200, Batch: batch, Seed: 7,
		})
		if !r.Valid {
			t.Errorf("batch=%d: Pilot corrupted messages", batch)
		}
	}
}

func TestFig6aBestComboIsWeakPair(t *testing.T) {
	// Figure 6a: DMB ld - DMB st (or LDAR - DMB st) beats the full/full
	// and full/st combos.
	b := crossNode()
	fullFull := run(b, Classic, Combo{Avail: isa.DMBFull, Publish: isa.DMBFull}, 600).Throughput()
	ldSt := run(b, Classic, Combo{Avail: isa.DMBLd, Publish: isa.DMBSt}, 600).Throughput()
	ldarSt := run(b, Classic, Combo{Avail: isa.LDAR, Publish: isa.DMBSt}, 600).Throughput()
	if !(ldSt > fullFull) {
		t.Errorf("DMBld-DMBst (%g) should beat DMBfull-DMBfull (%g)", ldSt, fullFull)
	}
	if ratio := ldarSt / ldSt; ratio < 0.85 || ratio > 1.18 {
		t.Errorf("LDAR-DMBst (%g) should track DMBld-DMBst (%g)", ldarSt, ldSt)
	}
}

func TestFig6aSTLRNotBetterCrossNode(t *testing.T) {
	// Obs 3 in the PC setting: DMBfull-STLR does not beat
	// DMBfull-DMBfull cross-node.
	b := crossNode()
	stlr := run(b, Classic, Combo{Avail: isa.DMBFull, Publish: isa.STLR}, 600).Throughput()
	full := run(b, Classic, Combo{Avail: isa.DMBFull, Publish: isa.DMBFull}, 600).Throughput()
	if stlr > 1.1*full {
		t.Errorf("STLR (%g) should not outperform DMB full (%g) cross-node", stlr, full)
	}
}

func TestFig6aRemovingPublicationBarrierIsTheWin(t *testing.T) {
	// Obs 2 in the PC setting: dropping the line-5 barrier (DMB ld - No
	// Barrier) is a big jump over the best barriered combo, approaching
	// Ideal.
	b := crossNode()
	best := run(b, Classic, Combo{Avail: isa.DMBLd, Publish: isa.DMBSt}, 600).Throughput()
	removed := run(b, Classic, Combo{Avail: isa.DMBLd, Publish: isa.None}, 600).Throughput()
	ideal := run(b, Classic, Combo{Avail: isa.None, Publish: isa.None}, 600).Throughput()
	if removed < 1.5*best {
		t.Errorf("removing the publication barrier (%g) should crush the best combo (%g)", removed, best)
	}
	if removed < 0.6*ideal {
		t.Errorf("barrier removal (%g) should be close to Ideal (%g)", removed, ideal)
	}
}

func TestFig6bPilotBeatsBestComboEverywhere(t *testing.T) {
	// Figure 6b: Pilot improves on DMB ld - DMB st on every binding,
	// most dramatically cross-node, and lands close to Ideal.
	best := Combo{Avail: isa.DMBLd, Publish: isa.DMBSt}
	type res struct {
		name  string
		gain  float64
		ideal float64
	}
	var out []res
	for _, b := range []binding{sameNode(), crossNode()} {
		orig := run(b, Classic, best, 600).Throughput()
		pilot := run(b, Pilot, Combo{}, 600).Throughput()
		ideal := run(b, Classic, Combo{}, 600).Throughput()
		out = append(out, res{b.name, pilot / orig, pilot / ideal})
	}
	for _, r := range out {
		if r.gain < 1.10 {
			t.Errorf("%s: Pilot gain %.2fx, want ≥ 1.10x", r.name, r.gain)
		}
		if r.ideal < 0.55 {
			t.Errorf("%s: Pilot should approach Ideal, got %.2f of it", r.name, r.ideal)
		}
	}
	if out[1].gain < out[0].gain {
		t.Errorf("cross-node Pilot gain (%.2fx) should exceed same-node (%.2fx)",
			out[1].gain, out[0].gain)
	}
}

func TestFig6cBatchingDilutesPilotGain(t *testing.T) {
	// Figure 6c: the speedup declines as more 8-byte slices share one
	// message, but stays positive cross-node.
	b := crossNode()
	best := Combo{Avail: isa.DMBLd, Publish: isa.DMBSt}
	gain := func(batch int) float64 {
		orig := Run(Config{Plat: b.p, Producer: b.prod, Consumer: b.cons,
			Mode: Classic, Combo: best, Messages: 400, Batch: batch, Seed: 3}).Throughput()
		pilot := Run(Config{Plat: b.p, Producer: b.prod, Consumer: b.cons,
			Mode: Pilot, Messages: 400, Batch: batch, Seed: 3}).Throughput()
		return pilot / orig
	}
	g1, g8, g32 := gain(1), gain(8), gain(32)
	if !(g1 > g8 && g8 > g32*0.95) {
		t.Errorf("speedup should decline with batch size: g1=%.2f g8=%.2f g32=%.2f", g1, g8, g32)
	}
	if g32 < 0.95 {
		t.Errorf("worst-case Pilot overhead must stay small: g32=%.2f", g32)
	}
}

func TestTheoreticalBetweenBestAndPilot(t *testing.T) {
	b := crossNode()
	best := run(b, Classic, Combo{Avail: isa.DMBLd, Publish: isa.DMBSt}, 600).Throughput()
	theo := run(b, Theoretical, Combo{Avail: isa.DMBLd}, 600).Throughput()
	pilot := run(b, Pilot, Combo{}, 600).Throughput()
	if !(theo > best) {
		t.Errorf("Theoretical (%g) should beat the barriered original (%g)", theo, best)
	}
	if pilot < 0.9*theo {
		t.Errorf("Pilot (%g) should at least match Theoretical (%g) — it also drops a cache line", pilot, theo)
	}
}
