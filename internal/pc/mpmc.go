package pc

import (
	"armbar/internal/core"
	"armbar/internal/isa"
	"armbar/internal/platform"
	"armbar/internal/sim"
	"armbar/internal/topo"
)

// The paper's §4.1 notes that multiple producers or consumers sharing
// one circular buffer need locks (its §5 subject). This file provides
// that comparison as an extension: a lock-protected shared ring versus
// Pilot's lock-free alternative of one SPSC channel per producer with
// the consumer round-robining across them — the natural way to apply
// a single-producer mechanism to a fan-in topology.

// MPMCMode selects the fan-in implementation.
type MPMCMode int

const (
	// LockedRing is one shared ring guarded by a ticket lock.
	LockedRing MPMCMode = iota
	// PilotFanIn is one Pilot channel per producer, consumer polling
	// round-robin.
	PilotFanIn
)

func (m MPMCMode) String() string {
	if m == LockedRing {
		return "locked-ring"
	}
	return "pilot-fan-in"
}

// MPMCConfig describes a fan-in run: Producers threads each send
// Messages payloads to one consumer.
type MPMCConfig struct {
	Plat      *platform.Platform
	Producers int
	Messages  int // per producer
	MsgWork   int
	Mode      MPMCMode
	Seed      int64
}

// MPMCResult is one run's outcome.
type MPMCResult struct {
	Config  MPMCConfig
	Cycles  float64
	Elapsed float64
	Total   int
	Valid   bool
	Stats   sim.Stats
}

// Throughput returns messages per second.
func (r MPMCResult) Throughput() float64 {
	if r.Elapsed == 0 {
		return 0
	}
	return float64(r.Total) / r.Elapsed
}

// RunMPMC executes the fan-in experiment.
func RunMPMC(cfg MPMCConfig) MPMCResult {
	if cfg.Producers == 0 {
		cfg.Producers = 4
	}
	if cfg.Messages == 0 {
		cfg.Messages = 300
	}
	if cfg.MsgWork == 0 {
		cfg.MsgWork = 40
	}
	m := sim.New(sim.Config{Plat: cfg.Plat, Mode: sim.WMM, Seed: cfg.Seed})
	total := cfg.Producers * cfg.Messages

	prodCores := make([]topo.CoreID, cfg.Producers)
	for i := range prodCores {
		prodCores[i] = topo.CoreID((i * 4) % (cfg.Plat.Sys.NumCores() - 1))
	}
	consCore := topo.CoreID(cfg.Plat.Sys.NumCores() - 1)

	var sum uint64
	var want uint64
	for p := 0; p < cfg.Producers; p++ {
		for i := 0; i < cfg.Messages; i++ {
			want += payload(p*cfg.Messages+i, 0)
		}
	}

	switch cfg.Mode {
	case LockedRing:
		runLockedRing(m, cfg, prodCores, consCore, &sum)
	default:
		runPilotFanIn(m, cfg, prodCores, consCore, &sum)
	}
	cycles := m.Run()
	return MPMCResult{
		Config:  cfg,
		Cycles:  cycles,
		Elapsed: m.Seconds(cycles),
		Total:   total,
		Valid:   sum == want,
		Stats:   m.Stats(),
	}
}

// runLockedRing: a shared 16-slot ring with head/tail indices, all
// accesses under a ticket lock; the paper's "locks are required" case.
func runLockedRing(m *sim.Machine, cfg MPMCConfig, prodCores []topo.CoreID, consCore topo.CoreID, sum *uint64) {
	const slots = 16
	lockNext := m.Alloc(1)
	lockServing := m.Alloc(1)
	meta := m.Alloc(1) // +0 head, +8 tail
	buf := m.Alloc(slots)

	lock := func(t *sim.Thread) {
		my := t.FetchAdd(lockNext, 1)
		for t.LoadAcquire(lockServing) != my {
			t.Nops(8)
		}
	}
	unlock := func(t *sim.Thread) {
		t.Barrier(isa.DMBSt)
		s := t.Load(lockServing)
		t.Store(lockServing, s+1)
	}

	for p := range prodCores {
		p := p
		m.Spawn(prodCores[p], func(t *sim.Thread) {
			for i := 0; i < cfg.Messages; i++ {
				v := payload(p*cfg.Messages+i, 0)
				t.Nops(cfg.MsgWork)
				for {
					lock(t)
					head := t.Load(meta + 0)
					tail := t.Load(meta + 8)
					if tail-head < slots {
						t.Store(buf+(tail%slots)<<6, v)
						t.Barrier(isa.DMBSt)
						t.Store(meta+8, tail+1)
						unlock(t)
						break
					}
					unlock(t)
					t.Nops(16)
				}
			}
		})
	}
	total := len(prodCores) * cfg.Messages
	m.Spawn(consCore, func(t *sim.Thread) {
		got := 0
		for got < total {
			lock(t)
			head := t.Load(meta + 0)
			tail := t.Load(meta + 8)
			if tail > head {
				t.Barrier(isa.DMBLd)
				*sum += t.Load(buf + (head%slots)<<6)
				t.Store(meta+0, head+1)
				got++
			}
			unlock(t)
			if tail == head {
				t.Nops(16)
			}
		}
	})
}

// runPilotFanIn: one Pilot word per producer plus per-pair ack
// counters for backpressure; the consumer round-robins.
func runPilotFanIn(m *sim.Machine, cfg MPMCConfig, prodCores []topo.CoreID, consCore topo.CoreID, sum *uint64) {
	n := len(prodCores)
	words := make([]*core.SimWord, n)
	acks := make([]uint64, n)
	for i := 0; i < n; i++ {
		words[i] = core.NewSimWord(m, uint64(cfg.Seed)+uint64(i))
		acks[i] = m.Alloc(1)
	}
	for p := range prodCores {
		p := p
		m.Spawn(prodCores[p], func(t *sim.Thread) {
			s := words[p].Sender()
			for i := 0; i < cfg.Messages; i++ {
				t.Nops(cfg.MsgWork)
				s.Send(t, payload(p*cfg.Messages+i, 0))
				for t.Load(acks[p]) != uint64(i+1) {
					t.Nops(8)
				}
			}
		})
	}
	total := n * cfg.Messages
	m.Spawn(consCore, func(t *sim.Thread) {
		recvs := make([]*core.SimReceiver, n)
		done := make([]int, n)
		for i := range recvs {
			recvs[i] = words[i].Receiver()
		}
		got := 0
		for got < total {
			idle := true
			for p := 0; p < n; p++ {
				if done[p] == cfg.Messages {
					continue
				}
				if v, ok := recvs[p].TryRecv(t); ok {
					*sum += v
					done[p]++
					got++
					t.Store(acks[p], uint64(done[p]))
					idle = false
				}
			}
			if idle {
				t.Nops(8)
			}
		}
	})
}
