package pc

import (
	"armbar/internal/core"
	"armbar/internal/isa"
	"armbar/internal/platform"
	"armbar/internal/sim"
	"armbar/internal/topo"
)

// The seqlock is the classic single-writer publication pattern for
// multi-word records: the writer brackets the payload stores with an
// odd/even sequence counter and barriers; readers retry when the
// sequence moved under them. It needs two publication barriers per
// update on a weakly-ordered machine. Pilot publishes the same record
// with per-slice encoded stores and no barriers at all — this file
// compares the two as an extension of the paper's §4.

// PubMode selects the publication protocol.
type PubMode int

const (
	// Seqlock is the sequence-counter protocol (two DMB st per update,
	// DMB ld pairing on the reader).
	Seqlock PubMode = iota
	// PilotBatch publishes each 8-byte slice Pilot-encoded.
	PilotBatch
)

func (m PubMode) String() string {
	if m == Seqlock {
		return "seqlock"
	}
	return "pilot"
}

// PubConfig describes one publication run: a writer updating a Words-
// long record Updates times while a reader takes consistent snapshots.
type PubConfig struct {
	Plat    *platform.Platform
	Writer  topo.CoreID
	Reader  topo.CoreID
	Mode    PubMode
	Words   int // record length in 64-bit words (default 4)
	Updates int // total published updates (default 500)
	Gap     int // writer nops between updates (default 200)
	Seed    int64
}

// PubResult is one run's outcome.
type PubResult struct {
	Config    PubConfig
	Cycles    float64
	Elapsed   float64
	Snapshots int  // consistent reader snapshots taken
	Retries   int  // reader retries (seqlock) / partial polls (pilot)
	Torn      bool // a snapshot mixed words from different updates
}

// SnapshotRate returns consistent snapshots per second.
func (r PubResult) SnapshotRate() float64 {
	if r.Elapsed == 0 {
		return 0
	}
	return float64(r.Snapshots) / r.Elapsed
}

// pubValue is the deterministic record content for update u: every
// word derives from u, so torn snapshots are detectable.
func pubValue(u, w int) uint64 {
	return uint64(u)*0x9E3779B97F4A7C15 + uint64(w)
}

// RunPub executes the publication experiment.
func RunPub(cfg PubConfig) PubResult {
	if cfg.Words == 0 {
		cfg.Words = 4
	}
	if cfg.Updates == 0 {
		cfg.Updates = 500
	}
	if cfg.Gap == 0 {
		cfg.Gap = 200
	}
	m := sim.New(sim.Config{Plat: cfg.Plat, Mode: sim.WMM, Seed: cfg.Seed})
	res := PubResult{Config: cfg}

	switch cfg.Mode {
	case Seqlock:
		runSeqlock(m, cfg, &res)
	default:
		runPilotPub(m, cfg, &res)
	}
	cycles := m.Run()
	res.Cycles = cycles
	res.Elapsed = m.Seconds(cycles)
	return res
}

// runSeqlock wires the classic protocol.
func runSeqlock(m *sim.Machine, cfg PubConfig, res *PubResult) {
	seq := m.Alloc(1)
	rec := m.Alloc((cfg.Words + 7) / 8)
	stop := m.Alloc(1)
	word := func(w int) uint64 { return rec + uint64(w)*8 }

	m.Spawn(cfg.Writer, func(t *sim.Thread) {
		for u := 1; u <= cfg.Updates; u++ {
			s := t.Load(seq)
			t.Store(seq, s+1) // odd: update in progress
			t.Barrier(isa.DMBSt)
			for w := 0; w < cfg.Words; w++ {
				t.Store(word(w), pubValue(u, w))
			}
			t.Barrier(isa.DMBSt)
			t.Store(seq, s+2) // even: stable
			t.Nops(cfg.Gap)
		}
		t.Barrier(isa.DMBSt)
		t.Store(stop, 1)
	})

	m.Spawn(cfg.Reader, func(t *sim.Thread) {
		buf := make([]uint64, cfg.Words)
		for t.Load(stop) == 0 {
			s1 := t.Load(seq)
			if s1&1 == 1 {
				res.Retries++
				t.Nops(4)
				continue
			}
			t.Barrier(isa.DMBLd)
			for w := 0; w < cfg.Words; w++ {
				buf[w] = t.Load(word(w))
			}
			t.Barrier(isa.DMBLd)
			s2 := t.Load(seq)
			if s1 != s2 {
				res.Retries++
				continue
			}
			res.Snapshots++
			if tornRecord(buf) {
				res.Torn = true
			}
			t.Nops(8)
		}
	})
}

// runPilotPub publishes each slice Pilot-encoded; the reader assembles
// a snapshot from the per-slice decoded values. Consistency comes from
// the per-slice generation: a snapshot is taken only when every slice
// decodes to the same update index.
func runPilotPub(m *sim.Machine, cfg PubConfig, res *PubResult) {
	data := m.Alloc((cfg.Words + 7) / 8)
	flags := m.Alloc((cfg.Words + 7) / 8)
	stop := m.Alloc(1)
	pool := core.HashPool(uint64(cfg.Seed) + 5)
	word := func(w int) (uint64, uint64) { return data + uint64(w)*8, flags + uint64(w)*8 }

	m.Spawn(cfg.Writer, func(t *sim.Thread) {
		oldData := make([]uint64, cfg.Words)
		fb := make([]uint64, cfg.Words)
		for u := 1; u <= cfg.Updates; u++ {
			h := pool[u%core.PoolSize]
			for w := 0; w < cfg.Words; w++ {
				d, f := word(w)
				enc := pubValue(u, w) ^ h
				t.Nops(1)
				if enc == oldData[w] {
					fb[w] ^= 1
					t.Store(f, fb[w])
				} else {
					t.Store(d, enc)
					oldData[w] = enc
				}
			}
			t.Nops(cfg.Gap)
		}
		t.Store(stop, 1)
	})

	m.Spawn(cfg.Reader, func(t *sim.Thread) {
		lastData := make([]uint64, cfg.Words)
		lastFb := make([]uint64, cfg.Words)
		buf := make([]uint64, cfg.Words)
		lastU := 0
		for t.Load(stop) == 0 {
			// Refresh every slice's latest observation.
			for w := 0; w < cfg.Words; w++ {
				d, f := word(w)
				if v := t.Load(d); v != lastData[w] {
					lastData[w] = v
				} else if fl := t.Load(f); fl != lastFb[w] {
					lastFb[w] = fl
				}
			}
			// A consistent snapshot decodes every slice under one
			// update index ahead of the last snapshot.
			matched := false
			for u := lastU + 1; u <= cfg.Updates && !matched; u++ {
				h := pool[u%core.PoolSize]
				all := true
				for w := 0; w < cfg.Words; w++ {
					if lastData[w]^h != pubValue(u, w) {
						all = false
						break
					}
				}
				if all {
					for w := 0; w < cfg.Words; w++ {
						buf[w] = lastData[w] ^ h
					}
					res.Snapshots++
					if tornRecord(buf) {
						res.Torn = true
					}
					lastU = u
					matched = true
				}
			}
			if !matched {
				if lastU > 0 {
					// The previously decoded record is still the
					// current published value: a consistent snapshot
					// with zero revalidation cost — Pilot needs no
					// read-side sequence check.
					res.Snapshots++
					t.Nops(8)
				} else {
					res.Retries++
					t.Nops(4)
				}
			} else {
				t.Nops(8)
			}
		}
	})
}

// tornRecord checks that every word of the snapshot derives from one
// update index.
func tornRecord(buf []uint64) bool {
	base := buf[0]
	for w := 1; w < len(buf); w++ {
		if buf[w]-uint64(w) != base {
			return true
		}
	}
	return false
}
