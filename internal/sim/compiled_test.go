package sim

import (
	"reflect"
	"strings"
	"testing"

	"armbar/internal/isa"
	"armbar/internal/platform"
	"armbar/internal/prog"
)

// Tests of the compiled engine: the differential check against the
// interpreted engine (identical traces, stats, memory, and clock at
// several seeds), and the scheduler edge cases — store-buffer-full
// retry, the watchdog, a program finishing while peers are parked —
// rerun through SpawnProgram. These run under `make race`.

// recTracer records every event for byte-for-byte comparison.
type recTracer struct{ events []TraceEvent }

func (r *recTracer) Event(e TraceEvent) { r.events = append(r.events, e) }

// diffRun is one observation of the differential workload: everything
// the machine exposes, so any divergence between engines is caught.
type diffRun struct {
	elapsed float64
	stats   Stats
	final   []uint64
	events  []TraceEvent
}

// runDifferential runs a workload exercising every opcode — ring
// stores and loads in a counted loop, all three load flavors, both
// store flavors, standalone barriers, nops, all three atomics, and a
// cross-thread spin — on either engine and returns the full
// observation.
func runDifferential(t *testing.T, mode Mode, seed int64, compiled bool) diffRun {
	t.Helper()
	const iters, lines = 40, 4
	m := newTestMachine(mode, seed)
	tr := &recTracer{}
	m.SetTracer(tr)
	base := m.Alloc(2 * lines)
	ringA := make([]uint64, lines)
	ringB := make([]uint64, lines)
	for k := 0; k < lines; k++ {
		ringA[k] = base + uint64(k)<<6
		ringB[k] = base + uint64(lines+k)<<6
	}
	c := m.Alloc(1)
	d := m.Alloc(1)
	flag := m.Alloc(1)

	if compiled {
		b0 := prog.NewBuilder(m.cfg.Plat.Cost.IssueWidth)
		tabA, tabB := b0.Table(ringA), b0.Table(ringB)
		i := b0.Loop(iters)
		b0.Store(prog.Ring(tabA, i), prog.Counter(i))
		b0.Barrier(isa.DMBSt)
		b0.Nops(2)
		b0.LoadAcquirePC(prog.Ring(tabB, i))
		b0.FetchAdd(prog.Abs(c), prog.Imm(1))
		b0.EndLoop()
		b0.StoreRelease(prog.Abs(flag), prog.Imm(1))
		m.SpawnProgram(0, b0.MustBuild())

		b1 := prog.NewBuilder(m.cfg.Plat.Cost.IssueWidth)
		b1.SpinEQ(prog.Abs(flag), 1, 4)
		b1.LoadAcquire(prog.Abs(c))
		b1.Barrier(isa.DMBFull)
		b1.Swap(prog.Abs(d), prog.Imm(9))
		b1.CompareAndSwap(prog.Abs(d), 9, 11)
		b1.Work(5)
		b1.Store(prog.Abs(d), prog.Imm(12))
		m.SpawnProgram(4, b1.MustBuild())
	} else {
		m.Spawn(0, func(th *Thread) {
			for i := 0; i < iters; i++ {
				th.Store(ringA[i%lines], uint64(i))
				th.Barrier(isa.DMBSt)
				th.Nops(2)
				th.LoadAcquirePC(ringB[i%lines])
				th.FetchAdd(c, 1)
			}
			th.StoreRelease(flag, 1)
		})
		m.Spawn(4, func(th *Thread) {
			for th.Load(flag) != 1 {
				th.Nops(4)
			}
			th.LoadAcquire(c)
			th.Barrier(isa.DMBFull)
			th.Swap(d, 9)
			th.CompareAndSwap(d, 9, 11)
			th.Work(5)
			th.Store(d, 12)
		})
	}
	elapsed := m.Run()

	final := make([]uint64, 0, 2*lines+3)
	dir := m.Directory()
	for k := 0; k < lines; k++ {
		final = append(final, dir.Committed(ringA[k]), dir.Committed(ringB[k]))
	}
	final = append(final, dir.Committed(c), dir.Committed(d), dir.Committed(flag))
	return diffRun{elapsed: elapsed, stats: m.Stats(), final: final, events: tr.events}
}

// TestEngineDifferential proves the two engines produce byte-identical
// behavior: same traced event sequence, same stats, same final memory,
// same clock — in both memory modes, at two seeds (the rng draw
// sequence differs per seed, so agreement at both rules out
// accidental alignment).
func TestEngineDifferential(t *testing.T) {
	for _, mode := range []Mode{WMM, TSO} {
		for _, seed := range []int64{42, 7} {
			interp := runDifferential(t, mode, seed, false)
			comp := runDifferential(t, mode, seed, true)
			if interp.elapsed != comp.elapsed {
				t.Errorf("mode %v seed %d: elapsed interp %v != compiled %v",
					mode, seed, interp.elapsed, comp.elapsed)
			}
			if interp.stats != comp.stats {
				t.Errorf("mode %v seed %d: stats diverge\ninterp:   %+v\ncompiled: %+v",
					mode, seed, interp.stats, comp.stats)
			}
			if !reflect.DeepEqual(interp.final, comp.final) {
				t.Errorf("mode %v seed %d: final memory diverges\ninterp:   %v\ncompiled: %v",
					mode, seed, interp.final, comp.final)
			}
			if !reflect.DeepEqual(interp.events, comp.events) {
				n := len(interp.events)
				if len(comp.events) < n {
					n = len(comp.events)
				}
				for i := 0; i < n; i++ {
					if interp.events[i] != comp.events[i] {
						t.Fatalf("mode %v seed %d: trace diverges at event %d\ninterp:   %+v\ncompiled: %+v",
							mode, seed, i, interp.events[i], comp.events[i])
					}
				}
				t.Fatalf("mode %v seed %d: trace length %d (interp) != %d (compiled)",
					mode, seed, len(interp.events), len(comp.events))
			}
		}
	}
}

// TestCompiledSoloMatchesInterp checks the solo fast path (execSolo
// holds the machine for the whole program) against the interpreted
// solo loop.
func TestCompiledSoloMatchesInterp(t *testing.T) {
	run := func(compiled bool) (float64, Stats, uint64) {
		m := newTestMachine(WMM, 21)
		a := m.Alloc(1)
		if compiled {
			b := prog.NewBuilder(m.cfg.Plat.Cost.IssueWidth)
			i := b.Loop(300)
			b.Store(prog.Abs(a), prog.Counter(i))
			b.Barrier(isa.DMBSt)
			b.Nops(3)
			b.EndLoop()
			m.SpawnProgram(0, b.MustBuild())
		} else {
			m.Spawn(0, func(th *Thread) {
				for i := 0; i < 300; i++ {
					th.Store(a, uint64(i))
					th.Barrier(isa.DMBSt)
					th.Nops(3)
				}
			})
		}
		return m.Run(), m.Stats(), m.Directory().Committed(a)
	}
	ie, is, iv := run(false)
	ce, cs, cv := run(true)
	if ie != ce || is != cs || iv != cv {
		t.Fatalf("solo runs diverge:\ninterp:   %v %+v %d\ncompiled: %v %+v %d",
			ie, is, iv, ce, cs, cv)
	}
}

// TestCompiledStoreBufferFullRetry is TestStoreBufferFullRetry through
// SpawnProgram: the burst overruns the buffer, execStore returns false
// (clock advanced to the earliest commit), and the thread retries from
// the run queue without losing a store.
func TestCompiledStoreBufferFullRetry(t *testing.T) {
	m := newTestMachine(WMM, 9)
	entries := m.cfg.Plat.Cost.StoreBufferEntries
	burst := 6 * entries
	a := m.Alloc(burst)
	peer := m.Alloc(1)
	ring := make([]uint64, burst)
	for i := range ring {
		ring[i] = a + uint64(i)<<6
	}
	b0 := prog.NewBuilder(m.cfg.Plat.Cost.IssueWidth)
	tab := b0.Table(ring)
	i0 := b0.Loop(burst)
	b0.Store(prog.Ring(tab, i0), prog.Counter(i0))
	b0.EndLoop()
	m.SpawnProgram(0, b0.MustBuild())
	b1 := prog.NewBuilder(m.cfg.Plat.Cost.IssueWidth)
	i1 := b1.Loop(burst)
	b1.Store(prog.Abs(peer), prog.Counter(i1))
	b1.EndLoop()
	m.SpawnProgram(4, b1.MustBuild())
	m.Run()
	for i := 0; i < burst; i++ {
		if got := m.Directory().Committed(ring[i]); got != uint64(i) {
			t.Fatalf("committed(line %d) = %d, want %d", i, got, i)
		}
	}
	if got := m.Stats().MaxStoreBuf; got != entries {
		t.Fatalf("MaxStoreBuf = %d, want the full capacity %d", got, entries)
	}
}

// TestCompiledWatchdogFires pins two compiled spin programs on
// never-satisfied flags; the watchdog must surface from Run on the
// caller's goroutine, same as the interpreted dispatch path.
func TestCompiledWatchdogFires(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected watchdog panic")
		}
		if !strings.Contains(r.(string), "watchdog") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	m := New(Config{Plat: platform.RaspberryPi4(), Mode: WMM, Seed: 3, MaxTime: 1e6})
	a, b := m.Alloc(1), m.Alloc(1)
	spin := func(addr uint64) *prog.Program {
		pb := prog.NewBuilder(m.cfg.Plat.Cost.IssueWidth)
		pb.SpinEQ(prog.Abs(addr), 99, 0) // never satisfied
		return pb.MustBuild()
	}
	m.SpawnProgram(0, spin(a))
	m.SpawnProgram(1, spin(b))
	m.Run()
}

// TestCompiledWatchdogFiresSolo covers the execSolo watchdog check.
func TestCompiledWatchdogFiresSolo(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected watchdog panic")
		}
		if !strings.Contains(r.(string), "watchdog") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	m := New(Config{Plat: platform.RaspberryPi4(), Mode: WMM, Seed: 3, MaxTime: 1e6})
	a := m.Alloc(1)
	pb := prog.NewBuilder(m.cfg.Plat.Cost.IssueWidth)
	pb.SpinEQ(prog.Abs(a), 99, 4)
	m.SpawnProgram(0, pb.MustBuild())
	m.Run()
}

// TestCompiledThreadFinishesWhileOthersParked reruns the
// finish-while-parked edge case with every thread compiled: the short
// program retires first and finishThread must hand the machine to the
// new run-queue minimum.
func TestCompiledThreadFinishesWhileOthersParked(t *testing.T) {
	m := newTestMachine(WMM, 5)
	a, b, c := m.Alloc(1), m.Alloc(1), m.Alloc(1)
	short := prog.NewBuilder(m.cfg.Plat.Cost.IssueWidth)
	short.FetchAdd(prog.Abs(a), prog.Imm(1))
	m.SpawnProgram(0, short.MustBuild())
	long := func(addr uint64) *prog.Program {
		pb := prog.NewBuilder(m.cfg.Plat.Cost.IssueWidth)
		i := pb.Loop(200)
		pb.Store(prog.Abs(addr), prog.Counter(i))
		pb.Nops(3)
		pb.EndLoop()
		pb.Load(prog.Abs(addr))
		return pb.MustBuild()
	}
	m.SpawnProgram(4, long(b))
	m.SpawnProgram(8, long(c))
	if elapsed := m.Run(); elapsed <= 0 {
		t.Fatalf("elapsed = %v, want > 0", elapsed)
	}
	if m.Directory().Committed(a) != 1 {
		t.Fatalf("committed(a) = %d, want 1", m.Directory().Committed(a))
	}
	if got := m.Directory().Committed(b); got != 199 {
		t.Fatalf("committed(b) = %d, want 199", got)
	}
}

// TestMixedEngines runs one compiled and one interpreted thread in the
// same machine — SpawnProgram is just Spawn with a compiled body, so
// the engines must compose.
func TestMixedEngines(t *testing.T) {
	m := newTestMachine(WMM, 17)
	data, flag := m.Alloc(1), m.Alloc(1)
	pb := prog.NewBuilder(m.cfg.Plat.Cost.IssueWidth)
	pb.Store(prog.Abs(data), prog.Imm(77))
	pb.Barrier(isa.DMBSt)
	pb.Store(prog.Abs(flag), prog.Imm(1))
	m.SpawnProgram(0, pb.MustBuild())
	var got uint64
	m.Spawn(4, func(th *Thread) {
		for th.Load(flag) != 1 {
			th.Nops(4)
		}
		th.Barrier(isa.DMBLd)
		got = th.Load(data)
	})
	m.Run()
	if got != 77 {
		t.Fatalf("message passing across engines: got %d, want 77", got)
	}
}

// TestSpawnProgramRejectsInvalid pins the validation contract: a
// hand-built malformed program must be refused before it can run.
func TestSpawnProgramRejectsInvalid(t *testing.T) {
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("expected SpawnProgram to panic on an invalid program")
		}
	}()
	m := newTestMachine(WMM, 1)
	bad := &prog.Program{Ops: []prog.Op{{Code: prog.Jump, Target: -1}}}
	m.SpawnProgram(0, bad)
}
