package sim

import (
	"fmt"
	"runtime"
	"sync/atomic"
)

// This file is the direct-dispatch scheduler: the machine is a monitor
// (one mutex, per-thread wait slots) instead of a goroutine with
// request/reply channels. A thread performing an operation acquires
// the machine and, when it is the runnable thread with the smallest
// (virtual time, id), executes the op's semantics inline as a plain
// function call — no channel hop, no context switch. Otherwise it
// parks on its wait slot and is woken by whichever thread's inline
// processing (or completion) makes it the new minimum. On a machine
// with a single live thread — every single-core measurement loop —
// simulated operations therefore degenerate to function calls end to
// end.
//
// The service order is exactly the channel engine's: an op runs only
// once every live thread has an op pending (all are inside dispatch)
// and it belongs to the minimum-(now, id) thread, so the rng draw
// sequence — and with it every simulated number — is unchanged.

// dispatch submits the op staged in t.req, blocks (logically) until
// the scheduler's ordering rules let it run, and returns its result.
// The calling goroutine itself executes the op when it is eligible.
func (t *Thread) dispatch() uint64 {
	m := t.m
	m.mu.Lock()
	if m.started && m.alive == 1 {
		// Solo fast path: no other thread can become the minimum, so
		// skip the run queue entirely and retry-loop in place.
		for {
			if t.now > m.cfg.MaxTime {
				m.fatalStuck(t)
			}
			if m.safeProcess(&t.req) {
				break
			}
		}
		m.mu.Unlock()
		return t.req.result
	}
	m.runq.push(t)
	for {
		if m.started && m.runq.len() == m.alive {
			if m.runq.min() == t {
				if t.now > m.cfg.MaxTime {
					m.fatalStuck(t)
				}
				if !m.safeProcess(&t.req) {
					// The op only advanced this thread's clock (waiting
					// for its own store buffer); re-sort and retry once
					// it is the minimum again, so commits apply in
					// global time order.
					m.runq.fix(t.heapIdx)
					continue
				}
				m.runq.remove(t.heapIdx)
				m.mu.Unlock()
				return t.req.result
			}
			// Someone else must run first: hand them the machine.
			m.runq.min().grant()
		}
		m.mu.Unlock()
		t.park()
		m.mu.Lock()
	}
}

// Grant states (Thread.gstate). A parked thread spins through a few
// scheduler passes before committing to a channel sleep; the waker
// pays a channel send only when the sleep actually happened.
const (
	grantNone     int32 = iota // not granted; owner may be spinning
	grantReady                 // granted: the parked thread may run
	grantSleeping              // owner committed to a channel sleep
)

// spinRounds bounds the cooperative-yield phase of park. Each round
// costs one runtime.Gosched pass; in tightly alternating two-thread
// machines the grant arrives within a round or two, and the yield is
// several times cheaper than a channel sleep/wake pair. Threads that
// wait longer (wide fan-in sweeps) fall through to a real sleep, so
// parked threads never busy-poll for more than a few passes.
const spinRounds = 4

// park blocks until grant hands this thread the machine. Called with
// m.mu released.
func (t *Thread) park() {
	for i := 0; i < spinRounds; i++ {
		if atomic.LoadInt32(&t.gstate) == grantReady {
			atomic.StoreInt32(&t.gstate, grantNone)
			return
		}
		runtime.Gosched()
	}
	if atomic.CompareAndSwapInt32(&t.gstate, grantNone, grantSleeping) {
		<-t.wake
	}
	atomic.StoreInt32(&t.gstate, grantNone)
}

// grant wakes a parked thread. At most one grant is ever outstanding
// (only the unique minimum is woken), so the buffered send can never
// block. Mutual exclusion on machine state still comes from m.mu: the
// grantee re-acquires it before touching anything.
func (t *Thread) grant() {
	if atomic.SwapInt32(&t.gstate, grantReady) == grantSleeping {
		t.wake <- struct{}{}
	}
}

// finishThread retires a thread whose closure returned: its stores
// drain, and if every remaining live thread is already parked the new
// minimum is woken (or Run, when this was the last thread).
func (m *Machine) finishThread(t *Thread) {
	m.mu.Lock()
	t.finished = true
	m.alive--
	if t.now > m.finish {
		m.finish = t.now
	}
	m.retireStores(t.now)
	switch {
	case m.alive == 0:
		if m.started {
			close(m.runDone)
		}
	case m.started && m.runq.len() == m.alive:
		m.runq.min().grant()
	}
	m.mu.Unlock()
}

// safeProcess runs one op's semantics, converting a panic (the
// watchdog report, a bad barrier value) into a machine-fatal error so
// it surfaces from Run on the caller's goroutine — the contract the
// channel engine's central scheduler loop provided.
func (m *Machine) safeProcess(r *request) (ok bool) {
	defer func() { //armvet:ignore allocvet — open-coded defer; perf gate measures 0 allocs/op
		if p := recover(); p != nil {
			m.fatalLocked(p)
		}
	}()
	return m.process(r)
}

// fatalLocked records a fatal condition, wakes Run (which re-panics
// it), and parks the current thread goroutine for good. Must be called
// with m.mu held; it does not return.
//
// armvet:holds mu
func (m *Machine) fatalLocked(v any) {
	m.fatal = v
	if m.started {
		close(m.runDone)
	}
	m.mu.Unlock()
	select {}
}

// fatalStuck is the watchdog's exit: building the report string and
// boxing it into fatalLocked's any parameter stay out of dispatch,
// which must remain allocation-free on its live paths.
//
// armvet:holds mu
//
//go:noinline
func (m *Machine) fatalStuck(t *Thread) {
	m.fatalLocked(m.stuckReport(t))
}

// noteServed maintains the dispatch counters from the (deterministic)
// service sequence: consecutive ops by one thread need no handoff —
// the thread processed its own request inline on re-entry — while a
// change of thread implies a park on one side and a wake on the other.
// Deriving the split this way keeps Stats independent of real-time
// arrival order, so identical seeds still produce identical Stats.
//
// armvet:holds mu
func (m *Machine) noteServed(t *Thread) {
	if m.lastServed == t {
		m.stats.InlineDispatches++
		return
	}
	m.stats.ParkWakes++
	m.lastServed = t
}

// runHeap is an indexed min-heap of the threads currently parked in
// dispatch, keyed on (now, id) — (time, id) pairs are unique, so the
// minimum (the next thread to serve) is unambiguous. It replaces the
// channel engine's O(threads) scan over parked requests, which the
// 24–64-thread lock sweeps paid once per simulated op.
type runHeap struct{ s []*Thread }

func (h *runHeap) len() int { return len(h.s) }

// min returns the next thread to serve without removing it.
func (h *runHeap) min() *Thread { return h.s[0] }

func runLess(a, b *Thread) bool {
	if a.now != b.now {
		return a.now < b.now
	}
	return a.id < b.id
}

// push inserts t and records its index for later fix/remove.
func (h *runHeap) push(t *Thread) {
	h.s = append(h.s, t)
	t.heapIdx = len(h.s) - 1
	h.up(t.heapIdx)
}

// fix restores heap order around index i after its thread's time moved.
func (h *runHeap) fix(i int) {
	h.down(i)
	h.up(i)
}

// remove deletes the thread at index i.
func (h *runHeap) remove(i int) {
	s := h.s
	n := len(s) - 1
	if i > n || s[i] == nil {
		badRemove(i, n+1)
	}
	if i != n {
		s[i] = s[n]
		s[i].heapIdx = i
	}
	s[n] = nil
	h.s = s[:n]
	if i != n {
		h.fix(i)
	}
}

// badRemove reports an out-of-range heap removal. Separate from
// remove so the hot path carries no fmt machinery or boxing.
//
//go:noinline
func badRemove(i, n int) {
	panic(fmt.Sprintf("sim: runHeap.remove(%d) of %d", i, n))
}

func (h *runHeap) up(i int) {
	s := h.s
	for i > 0 {
		p := (i - 1) / 2
		if !runLess(s[i], s[p]) {
			break
		}
		s[i], s[p] = s[p], s[i]
		s[i].heapIdx, s[p].heapIdx = i, p
		i = p
	}
}

func (h *runHeap) down(i int) {
	s := h.s
	n := len(s)
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && runLess(s[l], s[small]) {
			small = l
		}
		if r < n && runLess(s[r], s[small]) {
			small = r
		}
		if small == i {
			return
		}
		s[i], s[small] = s[small], s[i]
		s[i].heapIdx, s[small].heapIdx = i, small
		i = small
	}
}
