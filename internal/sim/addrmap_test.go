package sim

import (
	"math/rand"
	"testing"
)

func TestAddrTimesBasics(t *testing.T) {
	a := newAddrTimes()
	if got := a.get(0x40); got != 0 {
		t.Fatalf("absent key: got %v, want 0", got)
	}
	a.put(0x40, 12.5)
	a.put(0x80, 99)
	a.put(0x40, 13.75) // overwrite
	if got := a.get(0x40); got != 13.75 {
		t.Fatalf("get(0x40) = %v, want 13.75", got)
	}
	if got := a.get(0x80); got != 99 {
		t.Fatalf("get(0x80) = %v, want 99", got)
	}
	if got := a.get(0xc0); got != 0 {
		t.Fatalf("get(absent) = %v, want 0", got)
	}
}

func TestAddrTimesZeroKey(t *testing.T) {
	a := newAddrTimes()
	if got := a.get(0); got != 0 {
		t.Fatalf("get(0) before put = %v, want 0", got)
	}
	a.put(0, 7)
	if got := a.get(0); got != 7 {
		t.Fatalf("get(0) = %v, want 7", got)
	}
	if a.n != 0 {
		t.Fatalf("zero key must not occupy a table slot, n = %d", a.n)
	}
}

// TestAddrTimesMatchesMap drives the table and a reference map through
// the same randomized workload, including enough distinct keys to
// force several growth cycles, and checks every lookup agrees.
func TestAddrTimesMatchesMap(t *testing.T) {
	a := newAddrTimes()
	ref := make(map[uint64]float64)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 20000; i++ {
		// Line-aligned addresses, as produced by Alloc.
		key := uint64(rng.Intn(4096)) << 6
		if rng.Intn(3) == 0 {
			if got, want := a.get(key), ref[key]; got != want {
				t.Fatalf("step %d: get(%#x) = %v, want %v", i, key, got, want)
			}
		} else {
			v := rng.Float64() * 1e9
			a.put(key, v)
			ref[key] = v
		}
	}
	for key, want := range ref {
		if got := a.get(key); got != want {
			t.Fatalf("final get(%#x) = %v, want %v", key, got, want)
		}
	}
}

func TestAddrTimesGrowth(t *testing.T) {
	a := newAddrTimes()
	const n = 1000
	for i := uint64(1); i <= n; i++ {
		a.put(i<<6, float64(i))
	}
	if len(a.keys) < n {
		t.Fatalf("table did not grow: cap %d for %d keys", len(a.keys), n)
	}
	if 4*a.n >= 3*len(a.keys) {
		t.Fatalf("load factor above 3/4 after growth: %d/%d", a.n, len(a.keys))
	}
	for i := uint64(1); i <= n; i++ {
		if got := a.get(i << 6); got != float64(i) {
			t.Fatalf("get(%#x) = %v, want %v after growth", i<<6, got, float64(i))
		}
	}
}

// The store hot path pays one get and one put per buffered store
// against a working set of a few lines. These two benchmarks compare
// the open-addressed table with the built-in map it replaced on
// exactly that access pattern (8 hot lines, mixed get/put).
const benchLines = 8

func BenchmarkLastStoreTable(b *testing.B) {
	a := newAddrTimes()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		key := uint64(i%benchLines+1) << 6
		v := a.get(key)
		a.put(key, v+1)
	}
}

func BenchmarkLastStoreMap(b *testing.B) {
	m := make(map[uint64]float64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		key := uint64(i%benchLines+1) << 6
		v := m[key]
		m[key] = v + 1
	}
}
