package sim

import "armbar/internal/topo"

// event is a scheduled store commit: at time, core's buffered store
// (entry sbSeq in its store buffer) becomes globally visible.
type event struct {
	time  float64
	seq   uint64 // global tie-breaker for determinism
	t     *Thread
	core  topo.CoreID
	sbSeq uint64
	addr  uint64
	value uint64
}

// eventHeap is a min-heap on (time, seq).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) { *h = append(*h, x.(*event)) }

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}
