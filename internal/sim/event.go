package sim

import "armbar/internal/topo"

// event is a scheduled store commit: at time, core's buffered store
// (entry sbSeq in its store buffer) becomes globally visible. Events
// are recycled through the machine's free list — the scheduler loop
// allocates none in steady state.
type event struct {
	time  float64
	seq   uint64 // global tie-breaker for determinism
	t     *Thread
	core  topo.CoreID
	sbSeq uint64
	addr  uint64
	value uint64
}

// eventHeap is a concrete min-heap on (time, seq). It deliberately does
// not go through container/heap: the interface indirection and any
// round trips were measurable in the commit drain, and the heap already
// yields events in order, so the drain needs no further sorting.
type eventHeap struct {
	s []*event
}

// shrinkCap is the backing-array size above which an emptying heap
// releases memory instead of retaining its high-water mark.
const shrinkCap = 64

func (h *eventHeap) len() int { return len(h.s) }

// min returns the earliest event without removing it.
func (h *eventHeap) min() *event { return h.s[0] }

func eventLess(a, b *event) bool {
	if a.time != b.time {
		return a.time < b.time
	}
	return a.seq < b.seq
}

// push inserts e, restoring the heap order by sifting up.
func (h *eventHeap) push(e *event) {
	h.s = append(h.s, e)
	i := len(h.s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !eventLess(h.s[i], h.s[parent]) {
			break
		}
		h.s[i], h.s[parent] = h.s[parent], h.s[i]
		i = parent
	}
}

// pop removes and returns the earliest event. When the live portion
// falls far below the backing array's capacity the array is reallocated
// at the smaller size, so a burst of pending stores does not pin its
// high-water memory for the rest of the run.
func (h *eventHeap) pop() *event {
	s := h.s
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s[n] = nil
	s = s[:n]
	// Sift down from the root.
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && eventLess(s[l], s[small]) {
			small = l
		}
		if r < n && eventLess(s[r], s[small]) {
			small = r
		}
		if small == i {
			break
		}
		s[i], s[small] = s[small], s[i]
		i = small
	}
	if cap(s) > shrinkCap && len(s)*4 <= cap(s) {
		ns := make([]*event, len(s), cap(s)/2) //armvet:ignore allocvet — deliberate rare shrink to release backing (TestEventHeapReleasesBacking)
		copy(ns, s)
		s = ns
	}
	h.s = s
	return top
}
