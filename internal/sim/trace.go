package sim

import "armbar/internal/topo"

// TraceKind classifies a traced operation.
type TraceKind int

const (
	// TraceLoad is a load (hit, stale hit, or miss; see Detail).
	TraceLoad TraceKind = iota
	// TraceStore is a store issue (its commit is a separate event).
	TraceStore
	// TraceCommit is a store commit becoming globally visible.
	TraceCommit
	// TraceBarrier is a standalone barrier/dependency instruction.
	TraceBarrier
	// TraceRMW is an atomic read-modify-write.
	TraceRMW
	// TraceWork is local computation (nops).
	TraceWork
)

func (k TraceKind) String() string {
	switch k {
	case TraceLoad:
		return "load"
	case TraceStore:
		return "store"
	case TraceCommit:
		return "commit"
	case TraceBarrier:
		return "barrier"
	case TraceRMW:
		return "rmw"
	case TraceWork:
		return "work"
	default:
		return "?"
	}
}

// TraceEvent is one operation as observed by the scheduler.
type TraceEvent struct {
	Thread int
	Core   topo.CoreID
	Kind   TraceKind
	Addr   uint64 // zero for work/barrier events
	Start  float64
	End    float64
	Detail string // "miss", "stale", "hit", barrier name, ...
}

// Tracer receives every simulated operation. Implementations must be
// fast; they run inline in the scheduler. Package trace provides a
// recorder and exporters.
type Tracer interface {
	Event(TraceEvent)
}

// SetTracer installs a tracer; call before Run. A nil tracer disables
// tracing (the default).
func (m *Machine) SetTracer(tr Tracer) {
	// Same discipline as SetInitial: spawned goroutines already
	// contend on m.mu, so the started read needs the lock.
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.started {
		panic("sim: SetTracer after Run")
	}
	m.tracer = tr
}

// emit sends an event to the tracer if one is installed.
func (m *Machine) emit(t *Thread, kind TraceKind, addr uint64, start, end float64, detail string) {
	if m.tracer == nil {
		return
	}
	m.tracer.Event(TraceEvent{
		Thread: t.id, Core: t.core, Kind: kind, Addr: addr,
		Start: start, End: end, Detail: detail,
	})
}
