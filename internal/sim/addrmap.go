package sim

// addrTimes maps addresses to the last scheduled commit time of the
// owning thread's stores there (the per-location coherence floor). It
// replaces a built-in map[uint64]float64 on the store hot path: every
// buffered store pays one lookup and one insert, and a thread's store
// working set is a handful of cache lines, so an open-addressed table
// with linear probing beats the runtime map's generic bucket machinery
// by a wide margin (see BenchmarkLastStoreTable/Map).
//
// Lookups of absent keys return 0, matching the map zero value the
// commit-floor logic was written against. Address 0 is representable
// (a dedicated slot) even though Alloc never hands it out, so the
// table is a drop-in replacement for any caller.
type addrTimes struct {
	keys []uint64  // 0 marks an empty slot
	vals []float64 // parallel to keys
	n    int       // occupied slots
	zero float64   // value for key 0, kept outside the table

	shift uint // 64 - log2(len(keys)), for the multiplicative hash

	// Inline backing for the initial table, so a Thread's embedded
	// addrTimes costs no separate allocations until it grows.
	ikeys [addrTimesMinCap]uint64
	ivals [addrTimesMinCap]float64
}

// addrTimesMinCap is the initial table size: bigger than the store
// working set of nearly every simulated loop, so growth is rare.
const addrTimesMinCap = 16

// init (re)initializes the table in place over its inline backing.
func (a *addrTimes) init() {
	a.ikeys = [addrTimesMinCap]uint64{}
	a.ivals = [addrTimesMinCap]float64{}
	a.keys = a.ikeys[:]
	a.vals = a.ivals[:]
	a.n = 0
	a.zero = 0
	a.shift = 64 - 4
}

func newAddrTimes() *addrTimes {
	a := &addrTimes{}
	a.init()
	return a
}

// hash spreads line-aligned addresses (low bits all zero) across the
// table with a Fibonacci multiplier.
func (a *addrTimes) hash(key uint64) int {
	return int((key * 0x9E3779B97F4A7C15) >> a.shift)
}

// get returns the recorded time for key, or 0 when absent.
func (a *addrTimes) get(key uint64) float64 {
	if key == 0 {
		return a.zero
	}
	mask := len(a.keys) - 1
	for i := a.hash(key); ; i = (i + 1) & mask {
		switch a.keys[i] {
		case key:
			return a.vals[i]
		case 0:
			return 0
		}
	}
}

// put records v for key, overwriting any previous value.
func (a *addrTimes) put(key uint64, v float64) {
	if key == 0 {
		a.zero = v
		return
	}
	mask := len(a.keys) - 1
	for i := a.hash(key); ; i = (i + 1) & mask {
		switch a.keys[i] {
		case key:
			a.vals[i] = v
			return
		case 0:
			a.keys[i], a.vals[i] = key, v
			a.n++
			// Grow at 3/4 load so probe chains stay short.
			if 4*a.n >= 3*len(a.keys) {
				a.grow()
			}
			return
		}
	}
}

// grow doubles the table and reinserts every live entry.
func (a *addrTimes) grow() {
	keys, vals := a.keys, a.vals
	a.keys = make([]uint64, 2*len(keys))
	a.vals = make([]float64, 2*len(vals))
	a.shift--
	mask := len(a.keys) - 1
	for j, key := range keys {
		if key == 0 {
			continue
		}
		i := a.hash(key)
		for a.keys[i] != 0 {
			i = (i + 1) & mask
		}
		a.keys[i], a.vals[i] = key, vals[j]
	}
}
