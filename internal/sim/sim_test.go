package sim

import (
	"strings"
	"testing"

	"armbar/internal/isa"
	"armbar/internal/platform"
	"armbar/internal/topo"
)

func newTestMachine(mode Mode, seed int64) *Machine {
	return New(Config{Plat: platform.Kunpeng916(), Mode: mode, Seed: seed})
}

func TestSingleThreadLoadStore(t *testing.T) {
	m := newTestMachine(WMM, 1)
	a := m.Alloc(1)
	var got uint64
	m.Spawn(0, func(th *Thread) {
		th.Store(a, 42)
		got = th.Load(a) // must forward from the store buffer
	})
	elapsed := m.Run()
	if got != 42 {
		t.Fatalf("forwarding failed: got %d, want 42", got)
	}
	if elapsed <= 0 {
		t.Fatalf("elapsed = %v, want > 0", elapsed)
	}
	if m.Directory().Committed(a) != 42 {
		t.Fatalf("final committed value = %d, want 42", m.Directory().Committed(a))
	}
}

func TestTwoThreadsMessagePassingWithBarriers(t *testing.T) {
	m := newTestMachine(WMM, 2)
	data := m.Alloc(1)
	flag := m.Alloc(1)
	var got uint64
	m.Spawn(0, func(th *Thread) {
		th.Store(data, 23)
		th.Barrier(isa.DMBSt)
		th.Store(flag, 1)
	})
	m.Spawn(32, func(th *Thread) { // other NUMA node
		for th.Load(flag) != 1 {
		}
		th.Barrier(isa.DMBLd)
		got = th.Load(data)
	})
	m.Run()
	if got != 23 {
		t.Fatalf("message passing with barriers: got %d, want 23", got)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (float64, Stats) {
		m := newTestMachine(WMM, 7)
		a := m.Alloc(4)
		for i := 0; i < 4; i++ {
			core := i * 8
			m.Spawn(topoCore(core), func(th *Thread) {
				for j := 0; j < 200; j++ {
					th.Store(a+uint64(j%4)*64, uint64(j))
					th.Barrier(isa.DMBFull)
					th.Load(a + uint64((j+1)%4)*64)
					th.Nops(20)
				}
			})
		}
		el := m.Run()
		return el, m.Stats()
	}
	e1, s1 := run()
	e2, s2 := run()
	if e1 != e2 {
		t.Fatalf("elapsed differs across identical runs: %v vs %v", e1, e2)
	}
	if s1 != s2 {
		t.Fatalf("stats differ across identical runs: %+v vs %+v", s1, s2)
	}
}

func TestWatchdogPanicsOnStuckSpin(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected watchdog panic")
		}
		if !strings.Contains(r.(string), "watchdog") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	m := New(Config{Plat: platform.RaspberryPi4(), Mode: WMM, Seed: 3, MaxTime: 1e6})
	a := m.Alloc(1)
	m.Spawn(0, func(th *Thread) {
		for th.Load(a) != 99 { // never satisfied
		}
	})
	m.Run()
}

func TestBarrierCostOrdering(t *testing.T) {
	// Obs 1/ordering: DSB > DMB full >= DMB st > DMB ld on a loop with
	// stores around the barrier.
	cost := func(b isa.Barrier) float64 {
		m := newTestMachine(WMM, 11)
		a := m.Alloc(2)
		peer := m.Alloc(2)
		m.Spawn(0, func(th *Thread) {
			for i := 0; i < 300; i++ {
				th.Store(a, uint64(i))
				th.Barrier(b)
				th.Store(a+64, uint64(i))
				th.Nops(10)
			}
		})
		m.Spawn(4, func(th *Thread) {
			for i := 0; i < 300; i++ {
				th.Store(peer, uint64(i))
				th.Nops(10)
			}
		})
		return m.Run()
	}
	dsb := cost(isa.DSBFull)
	full := cost(isa.DMBFull)
	st := cost(isa.DMBSt)
	ld := cost(isa.DMBLd)
	none := cost(isa.None)
	if !(dsb > full && full >= st && st > ld) {
		t.Fatalf("cost ordering violated: DSB=%v DMBfull=%v DMBst=%v DMBld=%v", dsb, full, st, ld)
	}
	if ld < none*0.9 {
		t.Fatalf("DMB ld cheaper than no barrier: %v vs %v", ld, none)
	}
}

// topoCore converts an int to a topo.CoreID.
func topoCore(i int) topo.CoreID { return topo.CoreID(i) }
