package sim

import (
	"fmt"

	"armbar/internal/prog"
	"armbar/internal/topo"
)

// This file is the compiled engine's executor. A thread spawned with
// SpawnProgram runs a precompiled micro-op program (package prog)
// instead of a Go closure: operands are pre-resolved, so each
// machine-visible op dispatches through the per-opcode function table
// below with no request staging and no per-op switch, and free control
// codes (jumps, counted-loop backedges) fold into pc updates between
// dispatches. The executor participates in the direct-dispatch
// scheduler (sched.go) exactly like the interpreted path: ops are
// serviced in global min-(now, id) order, retries advance only the
// thread's clock, and noteServed sees the identical service sequence —
// which is why the golden digests and the differential engine test
// hold bit-for-bit across engines.

// SpawnProgram starts a simulated thread pinned to the given core
// executing the compiled program. Like Spawn, it must be called before
// Run. The program must validate; programs built by prog.Builder
// always do.
func (m *Machine) SpawnProgram(core topo.CoreID, p *prog.Program) *Thread {
	if err := p.Validate(); err != nil {
		panic(fmt.Sprintf("sim: SpawnProgram: %v", err))
	}
	return m.Spawn(core, func(t *Thread) { t.exec(p) })
}

// execEnv is the executor's per-run state: the flat op array, the
// program counter, and the loop counters. It lives on the thread
// goroutine's stack — running a program allocates nothing.
type execEnv struct {
	ops      []prog.Op
	tables   [][]uint64
	pc       int32
	counters [prog.MaxLoopDepth]int64
}

// addr resolves a memory op's address: an immediate, or an address
// ring indexed by the op's loop counter.
func (e *execEnv) addr(op *prog.Op) uint64 {
	if op.AMode == prog.AddrImm {
		return op.Addr
	}
	tab := e.tables[op.Addr]
	return tab[uint64(e.counters[op.Dep])%uint64(len(tab))]
}

// value resolves a store/atomic value: an immediate or the iteration
// index.
func (e *execEnv) value(op *prog.Op) uint64 {
	if op.VMode == prog.ValImm {
		return op.Val
	}
	return uint64(e.counters[op.Dep])
}

// stepControl folds free control codes (Jump, LoopEnd) into pc and
// counter updates until the program counter rests on a machine-visible
// op or past the end. These correspond to Go-level control flow in the
// interpreted engine and consume no simulated time. The transition
// bound catches malformed control cycles (a program of only jumps)
// instead of hanging.
func (e *execEnv) stepControl() {
	steps := 0
	for int(e.pc) < len(e.ops) {
		op := &e.ops[e.pc]
		switch op.Code {
		case prog.Jump:
			e.pc = op.Target
		case prog.LoopEnd:
			c := e.counters[op.Dep] + 1
			if c < op.Count {
				e.counters[op.Dep] = c
				e.pc = op.Target
			} else {
				e.counters[op.Dep] = 0
				e.pc++
			}
		default:
			return
		}
		if steps++; steps > len(e.ops) {
			badControlCycle()
		}
	}
}

//go:noinline
func badControlCycle() {
	panic("sim: compiled program loops forever in free control ops")
}

// done reports whether the program has run to completion.
func (e *execEnv) done() bool { return int(e.pc) >= len(e.ops) }

// exec drives the program through the scheduler on the thread's own
// goroutine. It mirrors Thread.dispatch op for op: the solo fast path
// holds the machine for the whole program; the general path keeps the
// thread in the run queue between ops (re-keying it with fix), which
// yields the same min-(now, id) service order as the interpreted
// engine's remove-and-repush — (time, id) keys are unique, so the heap
// minimum is the same thread either way.
func (t *Thread) exec(p *prog.Program) {
	var e execEnv
	e.ops = p.Ops
	e.tables = p.Tables
	e.stepControl()
	if e.done() {
		return
	}
	m := t.m
	m.mu.Lock()
	if m.started && m.alive == 1 {
		m.execSolo(t, &e)
		m.mu.Unlock()
		return
	}
	m.runq.push(t)
	for {
		if m.started && m.runq.len() == m.alive {
			if m.runq.min() == t {
				if t.now > m.cfg.MaxTime {
					m.fatalStuck(t)
				}
				if m.safeExecStep(t, &e) && e.done() {
					m.runq.remove(t.heapIdx)
					m.mu.Unlock()
					return
				}
				// Retried (clock advanced) or more ops to run: re-key and
				// re-evaluate the gate.
				m.runq.fix(t.heapIdx)
				continue
			}
			// Someone else must run first: hand them the machine.
			m.runq.min().grant()
		}
		m.mu.Unlock()
		t.park()
		m.mu.Lock()
	}
}

// execSolo runs the whole program while holding the machine: with one
// live thread nothing can preempt it, so the per-op lock round trips
// of the interpreted solo path disappear entirely. One deferred
// recover covers the run (the watchdog report, a directory panic)
// because fatalLocked never returns.
//
// armvet:holds mu
func (m *Machine) execSolo(t *Thread, e *execEnv) {
	defer func() { //armvet:ignore allocvet — open-coded defer, once per program run
		if p := recover(); p != nil {
			m.fatalLocked(p)
		}
	}()
	for !e.done() {
		if t.now > m.cfg.MaxTime {
			m.fatalStuck(t)
		}
		m.execStep(t, e)
	}
}

// safeExecStep is execStep behind the panic-to-fatal contract of
// safeProcess: a panic while dispatching surfaces from Run on the
// caller's goroutine.
func (m *Machine) safeExecStep(t *Thread, e *execEnv) (ok bool) {
	defer func() { //armvet:ignore allocvet — open-coded defer; perf gate measures 0 allocs/op
		if p := recover(); p != nil {
			m.fatalLocked(p)
		}
	}()
	return m.execStep(t, e)
}

// execStep dispatches the machine-visible op at pc. It returns false
// when the op could not run yet and only advanced the thread's clock
// (same retry contract as process); on success it advances pc and
// folds any following control ops.
//
// armvet:holds mu
func (m *Machine) execStep(t *Thread, e *execEnv) bool {
	m.retireStores(t.now)
	m.now = t.now
	op := &e.ops[e.pc]
	if !opExec[op.Code](m, t, e, op) {
		return false
	}
	m.noteServed(t)
	e.stepControl()
	return true
}

// opExec is the compiled engine's dispatch table: one function per
// machine-visible opcode, mirroring the corresponding case of
// Machine.process exactly (clock updates, stats, trace emissions, rng
// draw order). Control codes never reach dispatch — stepControl folds
// them — so their slots stay nil.
var opExec = [prog.NumCodes]func(*Machine, *Thread, *execEnv, *prog.Op) bool{
	prog.Load:      execLoad,
	prog.LoadAcq:   execLoadAcq,
	prog.LoadAcqPC: execLoadAcqPC,
	prog.Store:     execStore,
	prog.StoreRel:  execStoreRel,
	prog.Barrier:   execBarrier,
	prog.Work:      execWork,
	prog.FetchAdd:  execFetchAdd,
	prog.Swap:      execSwap,
	prog.CAS:       execCAS,
	prog.SpinEQ:    execSpinEQ,
	prog.SpinNE:    execSpinNE,
	prog.SpinGE:    execSpinGE,
}

func execLoad(m *Machine, t *Thread, e *execEnv, op *prog.Op) bool {
	start := t.now
	a := e.addr(op)
	m.doLoad(t, a, false)
	m.emit(t, TraceLoad, a, start, t.now, "")
	e.pc++
	return true
}

func execLoadAcq(m *Machine, t *Thread, e *execEnv, op *prog.Op) bool {
	start := t.now
	a := e.addr(op)
	m.doLoad(t, a, true)
	m.emit(t, TraceLoad, a, start, t.now, "acquire")
	e.pc++
	return true
}

func execLoadAcqPC(m *Machine, t *Thread, e *execEnv, op *prog.Op) bool {
	start := t.now
	a := e.addr(op)
	m.doLoad(t, a, true)
	// RCpc: keep the in-flight horizon at the load's issue so later
	// independent misses still overlap it.
	t.prevLoadIssue = start
	m.emit(t, TraceLoad, a, start, t.now, "acquire-pc")
	e.pc++
	return true
}

// storeStall is the shared full-buffer retry: issue stalls until the
// earliest pending commit; the thread re-enters at its new time so
// intervening commits apply in order.
func storeStall(t *Thread) bool {
	if t.buf.Full() {
		if min := t.buf.MinCommit(); min > t.now {
			t.stats.BarrierStalled += min - t.now
			t.advTo(CauseSBDrain, min)
			return true
		}
	}
	return false
}

func execStore(m *Machine, t *Thread, e *execEnv, op *prog.Op) bool {
	if storeStall(t) {
		return false
	}
	start := t.now
	a := e.addr(op)
	m.doStore(t, a, e.value(op), false)
	m.emit(t, TraceStore, a, start, t.now, "")
	e.pc++
	return true
}

func execStoreRel(m *Machine, t *Thread, e *execEnv, op *prog.Op) bool {
	if storeStall(t) {
		return false
	}
	start := t.now
	a := e.addr(op)
	m.doStore(t, a, e.value(op), true)
	m.emit(t, TraceStore, a, start, t.now, "release")
	e.pc++
	return true
}

func execBarrier(m *Machine, t *Thread, e *execEnv, op *prog.Op) bool {
	start := t.now
	m.doBarrier(t, op.Bar)
	m.emit(t, TraceBarrier, 0, start, t.now, op.Bar.String())
	e.pc++
	return true
}

func execWork(m *Machine, t *Thread, e *execEnv, op *prog.Op) bool {
	start := t.now
	t.advBy(CauseWork, op.Cyc)
	m.emit(t, TraceWork, 0, start, t.now, "")
	e.pc++
	return true
}

// rmwStall is the shared release-half retry: earlier stores must have
// drained before an acquire-release atomic runs.
func rmwStall(t *Thread) bool {
	if need := maxf(t.buf.MaxCommit(), t.storeFloor); need > t.now {
		t.stats.BarrierStalled += need - t.now
		t.advTo(CauseSBDrain, need)
		return true
	}
	return false
}

func execFetchAdd(m *Machine, t *Thread, e *execEnv, op *prog.Op) bool {
	return execRMW(m, t, e, op, opFetchAdd)
}

func execSwap(m *Machine, t *Thread, e *execEnv, op *prog.Op) bool {
	return execRMW(m, t, e, op, opSwap)
}

func execCAS(m *Machine, t *Thread, e *execEnv, op *prog.Op) bool {
	return execRMW(m, t, e, op, opCAS)
}

func execRMW(m *Machine, t *Thread, e *execEnv, op *prog.Op, kind opKind) bool {
	if rmwStall(t) {
		return false
	}
	start := t.now
	a := e.addr(op)
	m.doRMW(t, kind, a, e.value(op), op.Val2)
	m.emit(t, TraceRMW, a, start, t.now, "")
	e.pc++
	return true
}

func execSpinEQ(m *Machine, t *Thread, e *execEnv, op *prog.Op) bool {
	start := t.now
	a := e.addr(op)
	// Spin-wait loads attribute to CauseSpin, not their service cause:
	// the spinning flag remaps inside the attribution helpers and never
	// touches the simulation itself.
	t.spinning = true
	v := m.doLoad(t, a, false)
	t.spinning = false
	m.emit(t, TraceLoad, a, start, t.now, "")
	if v == op.Val {
		e.pc = op.Target
	} else {
		e.pc++
	}
	return true
}

func execSpinNE(m *Machine, t *Thread, e *execEnv, op *prog.Op) bool {
	start := t.now
	a := e.addr(op)
	t.spinning = true
	v := m.doLoad(t, a, false)
	t.spinning = false
	m.emit(t, TraceLoad, a, start, t.now, "")
	if v != op.Val {
		e.pc = op.Target
	} else {
		e.pc++
	}
	return true
}

func execSpinGE(m *Machine, t *Thread, e *execEnv, op *prog.Op) bool {
	start := t.now
	a := e.addr(op)
	t.spinning = true
	v := m.doLoad(t, a, false)
	t.spinning = false
	m.emit(t, TraceLoad, a, start, t.now, "")
	if v >= op.Val {
		e.pc = op.Target
	} else {
		e.pc++
	}
	return true
}
