package sim

import (
	"sync/atomic"

	"armbar/internal/metrics"
)

// This file is the simulator's observability seam. Machines stay
// completely dark by default — the hot path pays one nil pointer load
// per Run and nothing per operation — but a process can opt in to two
// hooks before building machines:
//
//   - SetGlobalMetrics(reg): every Machine folds its Stats into reg at
//     the end of Run (a handful of atomic adds per *machine*, not per
//     op), so a grid of thousands of experiment cells aggregates into
//     one registry.
//   - SetMachineTracerFactory(f): every New machine gets f()'s tracer
//     installed, which is how cmd/armbar wires per-op latency
//     histograms (NewMetricsTracer) and the Chrome-trace collector
//     into runs whose machines are created deep inside experiment
//     packages.
//
// Both hooks are process-global by necessity (cells build their own
// machines), atomic for -par safety, and meant to be set once at
// startup by a main package, not toggled mid-run.

var (
	globalMetrics        atomic.Pointer[metrics.Registry]
	machineTracerFactory atomic.Pointer[func() Tracer]
)

// SetGlobalMetrics installs (or, with nil, removes) the registry every
// subsequent Machine.Run reports into.
func SetGlobalMetrics(reg *metrics.Registry) {
	globalMetrics.Store(reg)
}

// SetMachineTracerFactory installs (or, with nil, removes) a factory
// consulted by New: a non-nil returned Tracer is installed on the
// fresh machine as if by SetTracer. The factory runs on whichever
// goroutine builds the machine and must be safe for concurrent use.
func SetMachineTracerFactory(f func() Tracer) {
	if f == nil {
		machineTracerFactory.Store(nil)
		return
	}
	machineTracerFactory.Store(&f)
}

// MetricsInto folds the machine's counters into reg. Run calls it
// automatically when a global registry is installed; it can also be
// called directly after a standalone run.
func (m *Machine) MetricsInto(reg *metrics.Registry) {
	s := m.stats //armvet:ignore lockvet — post-Run snapshot, same contract as Stats()
	reg.Counter("sim_machines_total").Inc()
	reg.Counter("sim_loads_total").Add(s.Loads)
	reg.Counter("sim_stores_total").Add(s.Stores)
	reg.Counter("sim_hits_total").Add(s.Hits)
	reg.Counter("sim_misses_total").Add(s.Misses)
	reg.Counter("sim_stale_reads_total").Add(s.StaleReads)
	reg.Counter("sim_rmr_stores_total").Add(s.RMRStores)
	reg.Counter("sim_mem_txns_total").Add(s.MemTxns)
	reg.Counter("sim_sync_txns_total").Add(s.SyncTxns)
	reg.Counter("sim_event_allocs_total").Add(s.EventAllocs)
	reg.Counter("sim_event_reuses_total").Add(s.EventReuses)
	reg.Counter("sim_inline_dispatches_total").Add(s.InlineDispatches)
	reg.Counter("sim_park_wakes_total").Add(s.ParkWakes)
	reg.Gauge("sim_barrier_stall_cycles_total").Add(s.BarrierStalls)
	reg.Gauge("sim_virtual_cycles_total").Add(m.now) //armvet:ignore lockvet — post-Run snapshot
	reg.Gauge("sim_event_heap_depth_max").Max(float64(s.MaxEventHeap))
	reg.Gauge("sim_store_buffer_occupancy_max").Max(float64(s.MaxStoreBuf))
	if total := s.EventAllocs + s.EventReuses; total > 0 {
		// Cumulative hit rate across every machine reported so far.
		reuses := reg.Counter("sim_event_reuses_total").Value()
		allocs := reg.Counter("sim_event_allocs_total").Value()
		reg.Gauge("sim_event_freelist_hit_rate").Set(
			float64(reuses) / float64(reuses+allocs))
	}
	if total := s.InlineDispatches + s.ParkWakes; total > 0 {
		// Share of ops the direct-dispatch scheduler executed on the
		// requesting goroutine with no handoff, cumulative across
		// machines: 1.0 on single-thread machines, lower the more the
		// service order ping-pongs between threads.
		inline := reg.Counter("sim_inline_dispatches_total").Value()
		parked := reg.Counter("sim_park_wakes_total").Value()
		reg.Gauge("sim_inline_dispatch_rate").Set(
			float64(inline) / float64(inline+parked))
	}
}

// opCyclesBounds spans sub-cycle dependency costs up to cross-node
// DSB-grade stalls (~1e6 cycles) in powers of two.
var opCyclesBounds = metrics.ExpBuckets(0.5, 2, 22)

// MetricsTracer is a Tracer that feeds per-kind operation counts and
// latency (simulated cycles) histograms into a registry. One instance
// is safe to share across machines and -par workers: Observe is
// lock-free. Install it per machine with SetTracer, or process-wide
// with SetMachineTracerFactory.
type MetricsTracer struct {
	hists [TraceWork + 1]*metrics.Histogram
}

// NewMetricsTracer builds a tracer over reg, pre-resolving one
// histogram per trace kind so Event never touches the registry lock.
func NewMetricsTracer(reg *metrics.Registry) *MetricsTracer {
	mt := &MetricsTracer{}
	for k := TraceLoad; k <= TraceWork; k++ {
		mt.hists[k] = reg.Histogram(
			"sim_op_cycles{kind=\""+k.String()+"\"}", opCyclesBounds)
	}
	return mt
}

// Event implements Tracer.
func (mt *MetricsTracer) Event(ev TraceEvent) {
	if ev.Kind < 0 || int(ev.Kind) >= len(mt.hists) {
		return
	}
	mt.hists[ev.Kind].Observe(ev.End - ev.Start)
}
