package sim

import (
	"fmt"

	"armbar/internal/ace"
	"armbar/internal/isa"
	"armbar/internal/sb"
	"armbar/internal/topo"
)

// opKind enumerates the operations a thread can dispatch.
type opKind int

const (
	opLoad opKind = iota
	opLoadAcquire
	opLoadAcquirePC
	opStore
	opStoreRelease
	opBarrier
	opWork
	opFetchAdd
	opSwap
	opCAS
)

// request is one staged operation: the thread fills its own slot and
// processes it inline once the scheduler's ordering rules allow (see
// dispatch in sched.go).
type request struct {
	t      *Thread
	kind   opKind
	addr   uint64
	value  uint64
	value2 uint64
	bar    isa.Barrier
	cycles float64
	result uint64
}

// ThreadStats counts one thread's activity.
type ThreadStats struct {
	Loads, Stores  uint64
	Misses         uint64
	StaleReads     uint64
	RMRStores      uint64
	BarrierStalled float64
}

// Thread is the handle a simulated thread's closure uses to interact
// with the machine. All methods must be called only from the closure
// passed to Machine.Spawn.
type Thread struct {
	m    *Machine
	id   int
	core topo.CoreID

	now           float64
	buf           sb.Buffer // store buffer, embedded: lives in the machine's thread arena
	syncPoint     float64   // invalidations before this are processed: no stale reads older than it
	storeFloor    float64   // commits of future stores may not precede this
	lastLoadAt    float64   // completion time of the most recent load
	prevLoadIssue float64   // issue time of the most recent load (early-binding horizon)
	lastAddrStore addrTimes // per-address last scheduled commit (per-location coherence)

	finished bool
	stats    ThreadStats

	// Cycle-attribution profiler state (see profile.go). profOn is
	// latched from the machine at spawn; spinning remaps causes to
	// CauseSpin while a compiled spin-wait op is being serviced.
	prof     threadProfile
	profOn   bool
	spinning bool

	req     request
	heapIdx int   // position in the machine's run queue
	gstate  int32 // grant handshake state (see park/grant in sched.go)
	// wake is the thread's channel wait slot, used when a park outlasts
	// the spin phase. Capacity 1 makes the handoff a single buffered
	// send: the waker deposits the token and moves on; at most one wake
	// is ever outstanding because only the unique minimum thread is
	// granted the machine.
	wake chan struct{}
}

// newThread initializes a thread in place in the machine's arena: the
// store buffer and the per-address commit table are embedded values
// with inline backing, so spawning a thread costs one slab slot plus
// its wake channel instead of four separate heap objects.
func newThread(m *Machine, id int, core topo.CoreID) *Thread {
	t := m.threadSlot()
	t.m = m
	t.id = id
	t.core = core
	t.buf.Init(m.cost.StoreBufferEntries, m.cfg.Mode == TSO)
	t.lastAddrStore.init()
	t.wake = make(chan struct{}, 1)
	t.profOn = m.profc != nil
	return t
}

// run executes the user closure and signals completion.
func (t *Thread) run(fn func(*Thread)) {
	fn(t)
	t.m.finishThread(t)
}

// op stages one operation and dispatches it; the calling goroutine
// itself executes the semantics when eligible (no channel rendezvous,
// no context switch while this thread holds the minimum time).
func (t *Thread) op(kind opKind, addr, value uint64, bar isa.Barrier, cycles float64) uint64 {
	t.req = request{t: t, kind: kind, addr: addr, value: value, bar: bar, cycles: cycles}
	return t.dispatch()
}

// ID returns the thread's index in spawn order.
func (t *Thread) ID() int { return t.id }

// Core returns the core the thread is pinned to.
func (t *Thread) Core() topo.CoreID { return t.core }

// Now returns the thread's current virtual time in cycles. Valid
// between operations.
func (t *Thread) Now() float64 { return t.now }

// Stats returns the thread's counters so far.
func (t *Thread) Stats() ThreadStats { return t.stats }

// Load performs a relaxed 64-bit load.
func (t *Thread) Load(addr uint64) uint64 {
	return t.op(opLoad, addr, 0, isa.None, 0)
}

// LoadAcquire performs an LDAR: a load after which no later access may
// be satisfied before it, acting as an invalidation-processing point.
func (t *Thread) LoadAcquire(addr uint64) uint64 {
	return t.op(opLoadAcquire, addr, 0, isa.None, 0)
}

// LoadAcquirePC performs an ARMv8.3 LDAPR (RCpc acquire, the paper's
// Table-3 footnote): later accesses are ordered after it, but unlike
// LDAR the in-flight window is not reset, so independent misses keep
// overlapping across it.
func (t *Thread) LoadAcquirePC(addr uint64) uint64 {
	return t.op(opLoadAcquirePC, addr, 0, isa.None, 0)
}

// Store performs a relaxed 64-bit store (retires into the store buffer).
func (t *Thread) Store(addr, v uint64) {
	t.op(opStore, addr, v, isa.None, 0)
}

// StoreRelease performs an STLR: every earlier access is observable
// before the released value is.
func (t *Thread) StoreRelease(addr, v uint64) {
	t.op(opStoreRelease, addr, v, isa.None, 0)
}

// Barrier executes a standalone order-preserving instruction or
// dependency idiom. isa.None is a no-op. LDAR/STLR are not standalone;
// use LoadAcquire/StoreRelease (Barrier(LDAR/STLR) panics).
func (t *Thread) Barrier(b isa.Barrier) {
	if b == isa.None {
		return
	}
	if b == isa.LDAR || b == isa.STLR || b == isa.LDAPR {
		panic("sim: LDAR/LDAPR/STLR are operand barriers; use LoadAcquire/LoadAcquirePC/StoreRelease")
	}
	t.op(opBarrier, 0, 0, b, 0)
}

// Nops executes n trivial ALU instructions (the paper's nop padding).
func (t *Thread) Nops(n int) {
	if n <= 0 {
		return
	}
	t.op(opWork, 0, 0, isa.None, float64(n)/t.m.cost.IssueWidth)
}

// Work advances the thread by the given number of cycles of purely
// local computation.
func (t *Thread) Work(cycles float64) {
	if cycles <= 0 {
		return
	}
	t.op(opWork, 0, 0, isa.None, cycles)
}

// FetchAdd atomically adds delta to *addr and returns the old value.
// Like ARM LSE atomics it acts directly on the coherent copy (no store
// buffering) and is relaxed: it implies no ordering of other accesses.
func (t *Thread) FetchAdd(addr, delta uint64) uint64 {
	return t.op(opFetchAdd, addr, delta, isa.None, 0)
}

// Swap atomically stores v and returns the old value (relaxed).
func (t *Thread) Swap(addr, v uint64) uint64 {
	return t.op(opSwap, addr, v, isa.None, 0)
}

// CompareAndSwap atomically replaces old with new; it reports whether
// the swap happened (relaxed ordering).
func (t *Thread) CompareAndSwap(addr, old, new uint64) bool {
	t.req = request{t: t, kind: opCAS, addr: addr, value: old, value2: new}
	return t.dispatch() == 1
}

// --- scheduler-side op semantics -----------------------------------

// process executes one staged request. It runs on the goroutine of the
// thread the scheduler granted the machine to, with m.mu held; only
// here are machine structures mutated. It returns false when the op
// could not run yet and only advanced the thread's clock (the thread
// stays queued and retries at its new time) — this keeps directory
// mutations in global start-time order, which is what makes values
// read by one thread never come from another thread's future.
//
// armvet:holds mu
func (m *Machine) process(r *request) bool {
	t := r.t
	m.retireStores(t.now)
	m.now = t.now
	start := t.now
	switch r.kind {
	case opLoad:
		r.result = m.doLoad(t, r.addr, false)
		m.emit(t, TraceLoad, r.addr, start, t.now, "")
	case opLoadAcquire:
		r.result = m.doLoad(t, r.addr, true)
		m.emit(t, TraceLoad, r.addr, start, t.now, "acquire")
	case opLoadAcquirePC:
		r.result = m.doLoad(t, r.addr, true)
		// RCpc: keep the in-flight horizon at the load's issue so later
		// independent misses still overlap it.
		t.prevLoadIssue = start
		m.emit(t, TraceLoad, r.addr, start, t.now, "acquire-pc")
	case opStore, opStoreRelease:
		// A full buffer stalls issue until the earliest pending commit:
		// advance and retry so intervening commits apply in order.
		if t.buf.Full() {
			if min := t.buf.MinCommit(); min > t.now {
				t.stats.BarrierStalled += min - t.now
				t.advTo(CauseSBDrain, min)
				return false
			}
		}
		m.doStore(t, r.addr, r.value, r.kind == opStoreRelease)
		if r.kind == opStoreRelease {
			m.emit(t, TraceStore, r.addr, start, t.now, "release")
		} else {
			m.emit(t, TraceStore, r.addr, start, t.now, "")
		}
	case opBarrier:
		m.doBarrier(t, r.bar)
		m.emit(t, TraceBarrier, 0, start, t.now, r.bar.String())
	case opWork:
		t.advBy(CauseWork, r.cycles)
		m.emit(t, TraceWork, 0, start, t.now, "")
	case opFetchAdd, opSwap, opCAS:
		// Release half: earlier stores must have drained; wait by
		// retrying rather than reaching into the future.
		if need := maxf(t.buf.MaxCommit(), t.storeFloor); need > t.now {
			t.stats.BarrierStalled += need - t.now
			t.advTo(CauseSBDrain, need)
			return false
		}
		r.result = m.doRMW(t, r.kind, r.addr, r.value, r.value2)
		m.emit(t, TraceRMW, r.addr, start, t.now, "")
	default:
		badOp(r.kind)
	}
	m.noteServed(t)
	return true
}

// doRMW implements LSE-style acquire-release atomics (SWPAL, LDADDAL,
// CASAL — the variants lock implementations actually use): the line is
// acquired exclusively (paying the coherence distance) and the
// operation applies to the committed value at the op's processing
// point — the linearization order is the deterministic global
// start-time order. The release half (waiting out the store buffer)
// happened in the caller via clock-advance-and-retry.
//
// armvet:holds mu
func (m *Machine) doRMW(t *Thread, kind opKind, addr, value, value2 uint64) uint64 {
	if occ := m.cost.RMWOccupancy; occ > 0 {
		// Occupancy model (scale-out platforms): atomics to one line
		// serialize at the line's home. Queue behind the previous one
		// before reading the committed value.
		if start := m.dir.AcquireAtomic(addr, t.now, occ); start > t.now {
			t.advTo(CauseAtomic, start)
		}
	}
	old := m.dir.Committed(addr)
	commitAt := t.now + 1
	d := m.dir.AccessDistance(t.core, addr)
	t.advBy(CauseAtomic, m.cost.MissLatency(d)+2)
	// Acquire: later loads see at least this point.
	t.syncPoint = t.now
	t.prevLoadIssue = t.now
	t.lastLoadAt = t.now
	t.stats.Loads++
	t.stats.Stores++
	m.stats.Loads++
	m.stats.Stores++
	if m.dir.IsRMR(t.core, addr) {
		t.stats.RMRStores++
		m.stats.RMRStores++
	}
	var result uint64
	switch kind {
	case opFetchAdd:
		m.dir.CommitStore(t.core, addr, old+value, commitAt, m.invProc())
		result = old
	case opSwap:
		m.dir.CommitStore(t.core, addr, value, commitAt, m.invProc())
		result = old
	case opCAS:
		if old == value {
			m.dir.CommitStore(t.core, addr, value2, commitAt, m.invProc())
			result = 1
		}
	}
	if c := t.lastAddrStore.get(addr); commitAt > c {
		t.lastAddrStore.put(addr, commitAt)
	}
	return result
}

// doLoad implements relaxed and acquiring loads.
//
// armvet:holds mu
func (m *Machine) doLoad(t *Thread, addr uint64, acquire bool) uint64 {
	t.stats.Loads++
	m.stats.Loads++
	issue := t.now
	var val uint64
	fresh := false
	switch {
	case m.forward(t, addr, &val):
		// Store-to-load forwarding from the own buffer (both modes).
		t.advBy(CauseIssue, 1)
	case m.readCache(t, addr, &val):
		// Served by the local copy (possibly stale in WMM).
		t.advBy(CauseCacheHit, m.cost.CacheHit)
		fresh = m.dir.HasValidCopy(t.core, addr)
	default:
		// Miss: travel to the owner/farthest sharer. Independent misses
		// overlap (memory-level parallelism): with no ordering point
		// since the previous load, this request effectively entered the
		// memory system at that load's issue, so most of its latency has
		// already elapsed while the previous one completed.
		d := m.dir.AccessDistance(t.core, addr)
		lat := m.cost.MissLatency(d)
		if t.prevLoadIssue > t.syncPoint {
			begin := t.prevLoadIssue
			t.advTo(CauseMiss, maxf(begin+lat, t.now+m.cost.CacheHit))
		} else {
			t.advBy(CauseMiss, lat)
		}
		m.dir.Fetch(t.core, addr, t.now) // replaces any stale copy in place
		val = m.dir.Committed(addr)
		t.stats.Misses++
		m.stats.Misses++
		fresh = true
	}
	if fresh && m.cfg.Mode == WMM && !acquire {
		// Out-of-order satisfaction: with no ordering point since the
		// previous load, this load may have issued while the previous
		// one was still in flight, binding its value as of that earlier
		// time. If the address was committed between the two points the
		// core may (coin flip) observe the pre-commit value — the
		// mechanism behind WMM load-load reordering.
		horizon := maxf(t.syncPoint, t.prevLoadIssue)
		if prev, at := m.dir.PrevCommitted(addr); at > horizon && at <= issue && horizon > 0 &&
			m.dir.Owner(addr) != t.core {
			// Never reorder past the thread's own store: if this core
			// performed the last commit, program order already makes the
			// new value visible.
			if m.rng.Float64() < 0.5 {
				val = prev
				t.stats.StaleReads++
				m.stats.StaleReads++
			}
		}
	}
	t.lastLoadAt = t.now
	if acquire {
		// LDAR: later accesses cannot be satisfied before it; treat as
		// an invalidation-processing point.
		t.syncPoint = t.now
		t.prevLoadIssue = t.now
	} else {
		t.prevLoadIssue = issue
	}
	return val
}

// forward checks the thread's own store buffer.
func (m *Machine) forward(t *Thread, addr uint64, out *uint64) bool {
	v, ok := t.buf.Forward(addr)
	if ok {
		*out = v
	}
	return ok
}

// readCache serves a load from the local copy when permitted. In WMM a
// copy whose invalidation arrived after the thread's last sync point
// remains readable (stale) for InvalidationDelay cycles.
//
// armvet:holds mu
func (m *Machine) readCache(t *Thread, addr uint64, out *uint64) bool {
	cp := m.dir.CopyAt(t.core, addr)
	if cp == nil {
		return false
	}
	if cp.Valid() {
		*out = m.dir.Committed(addr)
		m.stats.Hits++
		return true
	}
	if m.cfg.Mode == TSO {
		return false
	}
	if cp.InvalidatedAt > t.syncPoint && t.now < cp.ProcessAt {
		if v, ok := cp.StaleValue(addr); ok {
			*out = v
		} else {
			*out = m.dir.Committed(addr)
		}
		t.stats.StaleReads++
		m.stats.StaleReads++
		m.stats.Hits++
		return true
	}
	return false
}

// doStore implements relaxed stores and STLR. The caller has already
// ensured the store buffer has room.
//
// armvet:holds mu
func (m *Machine) doStore(t *Thread, addr, value uint64, release bool) {
	t.stats.Stores++
	m.stats.Stores++
	rmr := m.dir.IsRMR(t.core, addr)
	if rmr {
		t.stats.RMRStores++
		m.stats.RMRStores++
	}
	d := m.dir.AccessDistance(t.core, addr)
	miss := 0.0
	if !m.dir.HasValidCopy(t.core, addr) || m.dir.Owner(addr) != t.core {
		miss = m.cost.MissLatency(d)
	}
	commit := t.now + m.cost.DrainDelay + miss
	if m.cfg.Mode == WMM {
		commit += m.rng.Float64() * m.cost.DrainJitter
	}
	if commit < t.storeFloor {
		commit = t.storeFloor
	}
	// Per-location coherence: the thread's own stores to one address
	// must commit in program order even under non-FIFO drain.
	if last := t.lastAddrStore.get(addr); commit <= last {
		commit = last + 1e-6
	}
	if release {
		// STLR: release ordering is a commit-side constraint — the
		// released store becomes visible only after every earlier
		// access. The *pipeline* cost is implementation-defined and
		// unstable (Obs 3): near-free on the Kirin SoCs, DSB-grade on
		// Kunpeng916 and the Pi; the platform's penalty band models
		// that stall.
		floor := maxf(t.buf.MaxCommit(), t.lastLoadAt)
		if floor >= commit {
			commit = floor + 1
		}
		pen := m.cost.STLRPenaltyMin +
			m.rng.Float64()*(m.cost.STLRPenaltyMax-m.cost.STLRPenaltyMin)
		t.stats.BarrierStalled += pen
		t.advBy(CauseSTLR, pen)
		if commit < t.now {
			commit = t.now
		}
	}
	t.lastAddrStore.put(addr, commit)
	e := t.buf.Push(addr, value, t.now, commit)
	if occ := t.buf.Len(); occ > m.stats.MaxStoreBuf {
		m.stats.MaxStoreBuf = occ
	}
	t.advBy(CauseIssue, m.cost.StoreBufferLatency)
	ev := m.newEvent()
	ev.time, ev.t, ev.core, ev.sbSeq, ev.addr, ev.value = e.Commit, t, t.core, e.Seq, addr, value
	m.schedule(ev)
}

// doBarrier implements the standalone ordering instructions.
//
// armvet:holds mu
func (m *Machine) doBarrier(t *Thread, b isa.Barrier) {
	start := t.now
	switch b {
	case isa.DMBFull:
		// With snooped stores still outstanding, the DMB waits for them
		// and then for a memory-barrier transaction round trip to the
		// spanned bi-section boundary; empirically it also stalls issue
		// (the paper's Obs 2 pipeline bottleneck), which is what halves
		// throughput at the tipping point (Fig 4). With nothing
		// outstanding the barrier terminates internally (the ACE5
		// recommendation the paper cites) at negligible cost — Obs 1:
		// the substantial impacts come from the memory operations
		// around a barrier, not from the barrier itself.
		if pend := t.buf.MaxCommit(); pend > t.now {
			resp := m.fab.Response(ace.MemoryBarrier, t.now, pend, m.span)
			t.storeFloor = maxf(t.storeFloor, resp)
			t.syncPoint = resp
			t.advTo(CauseDMBFull, resp)
		} else {
			t.syncPoint = t.now
			t.advBy(CauseDMBFull, 2)
		}

	case isa.DMBSt:
		// Does not block non-store instructions; later stores cannot
		// commit before the fence response.
		if pend := t.buf.MaxCommit(); pend > t.now {
			resp := m.fab.Response(ace.MemoryBarrier, t.now, pend, m.span)
			t.storeFloor = maxf(t.storeFloor, resp)
		}
		t.advBy(CauseDMBSt, 1) // issue cost only

	case isa.DMBLd:
		// Loads' completion is known core-locally: no bus transaction.
		t.syncPoint = maxf(t.syncPoint, t.lastLoadAt)
		t.advBy(CauseDMBLd, 2)

	case isa.DSBFull, isa.DSBSt, isa.DSBLd:
		// Blocks *all* later instructions until the synchronization
		// barrier transaction reaches the inner domain boundary; no
		// locality discount, and all options cost alike (Obs 1).
		resp := m.fab.Response(ace.SyncBarrier, t.now, t.buf.MaxCommit(), m.span)
		t.storeFloor = maxf(t.storeFloor, resp)
		t.syncPoint = resp
		t.advTo(CauseDSB, maxf(t.now, resp))

	case isa.ISB:
		t.advBy(CauseISB, m.cost.PipelineFlush)

	case isa.DataDep, isa.CtrlDep:
		// Bogus dependency construction: one ALU op; ordering of the
		// dependent store is automatic (stores never commit before
		// issue, and issue follows the load's completion).
		t.advBy(CauseDep, 1/m.cost.IssueWidth)

	case isa.AddrDep:
		// Orders the following loads after the previous load: the
		// dependent access is satisfied in order, so invalidations up
		// to the load's completion are honored.
		t.syncPoint = maxf(t.syncPoint, t.lastLoadAt)
		t.advBy(CauseDep, 1/m.cost.IssueWidth)

	case isa.CtrlISB:
		t.syncPoint = maxf(t.syncPoint, t.lastLoadAt)
		t.advBy(CauseISB, m.cost.PipelineFlush)

	default:
		badBarrier(b)
	}
	if t.now > start {
		t.stats.BarrierStalled += t.now - start
		m.stats.BarrierStalls += t.now - start
	}
}

// badOp and badBarrier report malformed requests. They live outside
// process/doBarrier so the dispatch switches carry no fmt machinery
// or panic-operand boxing.
//
//go:noinline
func badOp(k opKind) {
	panic(fmt.Sprintf("sim: bad op %d", k))
}

//go:noinline
func badBarrier(b isa.Barrier) {
	panic(fmt.Sprintf("sim: unsupported barrier %v", b))
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
